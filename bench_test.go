package degradedfirst

// The bench harness: one testing.B benchmark per table and figure of the
// paper. Each iteration regenerates the artifact (in Quick mode with a
// small seed count so `go test -bench=.` stays tractable) and reports the
// headline metric — typically EDF's runtime reduction over LF — via
// b.ReportMetric. Run `go run ./cmd/dfexp -all` for the full-fidelity
// tables (30 seeds, paper-scale workloads).

import (
	"strconv"
	"strings"
	"testing"
)

func benchOpts() ExperimentOptions {
	return ExperimentOptions{Quick: true, Seeds: 2}
}

// runArtifact regenerates an artifact once per b.N iteration and reports
// `metric` extracted from cell [row][col] (a percentage or ratio).
func runArtifact(b *testing.B, id string, row, col int, metric string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := RunExperiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
			b.Fatalf("%s: no cell [%d][%d]", id, row, col)
		}
		cell := strings.TrimSuffix(tab.Rows[row][col], "%")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			b.Fatalf("%s: cell %q not numeric: %v", id, tab.Rows[row][col], err)
		}
		last = v
	}
	b.ReportMetric(last, metric)
}

// --- Motivating examples ---

func BenchmarkFig3(b *testing.B) { runArtifact(b, "fig3", 2, 1, "saving_pct") }
func BenchmarkFig4(b *testing.B) { runArtifact(b, "fig4", 2, 2, "third_degraded_launch_s") }

// --- Figure 5: numerical analysis ---

func BenchmarkFig5a(b *testing.B) { runArtifact(b, "fig5a", 3, 3, "df_vs_lf_pct") }
func BenchmarkFig5b(b *testing.B) { runArtifact(b, "fig5b", 1, 3, "df_vs_lf_pct") }
func BenchmarkFig5c(b *testing.B) { runArtifact(b, "fig5c", 3, 3, "df_vs_lf_pct") }

// --- Figure 7: simulation, LF vs EDF ---

func BenchmarkFig7a(b *testing.B) { runArtifact(b, "fig7a", 3, 5, "edf_vs_lf_pct") }
func BenchmarkFig7b(b *testing.B) { runArtifact(b, "fig7b", 1, 5, "edf_vs_lf_pct") }
func BenchmarkFig7c(b *testing.B) { runArtifact(b, "fig7c", 1, 5, "edf_vs_lf_pct") }
func BenchmarkFig7d(b *testing.B) { runArtifact(b, "fig7d", 0, 5, "edf_vs_lf_pct") }
func BenchmarkFig7e(b *testing.B) { runArtifact(b, "fig7e", 0, 5, "edf_vs_lf_pct") }
func BenchmarkFig7f(b *testing.B) { runArtifact(b, "fig7f", 0, 4, "edf_vs_lf_pct") }

// --- Figure 8: BDF vs EDF ---

func BenchmarkFig8a(b *testing.B) { runArtifact(b, "fig8a", 0, 2, "edf_remote_delta_pct") }
func BenchmarkFig8b(b *testing.B) { runArtifact(b, "fig8b", 0, 2, "edf_readtime_cut_pct") }
func BenchmarkFig8c(b *testing.B) { runArtifact(b, "fig8c", 0, 2, "edf_runtime_cut_pct") }
func BenchmarkFig8d(b *testing.B) { runArtifact(b, "fig8d", 0, 2, "edf_runtime_cut_pct") }

// --- Figure 9 and Table I: real-execution testbed ---

func BenchmarkFig9a(b *testing.B)  { runArtifact(b, "fig9a", 0, 5, "edf_vs_lf_pct") }
func BenchmarkFig9b(b *testing.B)  { runArtifact(b, "fig9b", 0, 3, "edf_vs_lf_pct") }
func BenchmarkTable1(b *testing.B) { runArtifact(b, "table1", 1, 5, "degraded_map_cut_pct") }

// --- Ablations of design choices ---

func BenchmarkAblationNetMode(b *testing.B) {
	runArtifact(b, "ablation-netmode", 1, 3, "edf_vs_lf_hold_pct")
}
func BenchmarkAblationSources(b *testing.B) {
	runArtifact(b, "ablation-sources", 3, 3, "edf_samerack_read_s")
}
func BenchmarkAblationPacing(b *testing.B) { runArtifact(b, "ablation-pacing", 2, 3, "bdf_vs_lf_pct") }

// --- Core substrate micro-benchmarks ---

func BenchmarkSimulateDefaultLF(b *testing.B) {
	cfg := DefaultSimConfig()
	cfg.Seed = 1
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, DefaultJob()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateDefaultEDF(b *testing.B) {
	cfg := DefaultSimConfig()
	cfg.Scheduler = EnhancedDegradedFirst
	cfg.Seed = 1
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, DefaultJob()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension experiments ---

func BenchmarkExtLRC(b *testing.B)    { runArtifact(b, "ext-lrc", 1, 4, "edf_vs_lf_lrc_pct") }
func BenchmarkExtDelay(b *testing.B)  { runArtifact(b, "ext-delay", 2, 1, "edf_norm_runtime") }
func BenchmarkExtMidJob(b *testing.B) { runArtifact(b, "ext-midjob", 1, 3, "edf_vs_lf_pct") }
