package degradedfirst

import (
	"strings"
	"testing"
)

func TestFacadeSimulate(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Nodes = 12
	cfg.Racks = 3
	cfg.N, cfg.K = 6, 4
	cfg.NumBlocks = 120
	cfg.BlockSizeBytes = 16e6
	cfg.RackBps = 100 * Mbps
	cfg.Seed = 1

	cfg.Scheduler = LocalityFirst
	lf, err := Simulate(cfg, DefaultJob())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler = EnhancedDegradedFirst
	edf, err := Simulate(cfg, DefaultJob())
	if err != nil {
		t.Fatal(err)
	}
	if edf.Jobs[0].MeanDegradedReadTime() >= lf.Jobs[0].MeanDegradedReadTime() {
		t.Fatalf("EDF degraded-read time %.2f not below LF %.2f",
			edf.Jobs[0].MeanDegradedReadTime(), lf.Jobs[0].MeanDegradedReadTime())
	}
}

func TestFacadeAnalysis(t *testing.T) {
	p := DefaultAnalysisParams()
	if p.NormalizedDF() >= p.NormalizedLF() {
		t.Fatal("analysis: DF should beat LF")
	}
}

func TestFacadeTestbed(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewCode(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileSystem(cluster, code, TestbedBlockSize, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := GenerateCorpus(30, TestbedBlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("in.txt", corpus); err != nil {
		t.Fatal(err)
	}
	cluster.FailNode(4)
	rep, err := RunJobs(fs, MROptions{
		Scheduler: EnhancedDegradedFirst,
		RackBps:   TestbedRackBps,
	}, []MRJob{WordCount("in.txt", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs[0]) == 0 {
		t.Fatal("no output produced")
	}
	if rep.Outputs[0]["the"] == "" {
		t.Fatal("expected 'the' in word counts")
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := Experiments()
	if len(all) < 18 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	tab, err := RunExperiment("fig5a", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "fig5a") {
		t.Fatal("table rendering missing ID")
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestFacadeLRCAndTimeline(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		Nodes: 14, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lrc, err := NewLRC(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileSystemWithCoder(cluster, lrc, TestbedBlockSize, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := GenerateCorpus(20, TestbedBlockSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("in.txt", corpus); err != nil {
		t.Fatal(err)
	}
	cluster.FailNode(3)
	rep, err := RunJobs(fs, MROptions{
		Scheduler: EnhancedDegradedFirst,
		RackBps:   TestbedRackBps,
	}, []MRJob{Grep("in.txt", "the", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs[0]) == 0 {
		t.Fatal("no grep output over LRC store")
	}
	tl := MRTimeline(rep, 0, 60)
	if !strings.Contains(tl, "node0") {
		t.Fatalf("timeline missing: %q", tl)
	}
	if MRTimeline(nil, 0, 60) != "" || MRTimeline(rep, 9, 60) != "" {
		t.Fatal("bad timeline args must render empty")
	}
}

func TestFacadeMidJobFailure(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Nodes, cfg.Racks = 12, 3
	cfg.N, cfg.K = 6, 4
	cfg.NumBlocks = 120
	cfg.BlockSizeBytes = 16e6
	cfg.RackBps = 100 * Mbps
	cfg.Scheduler = EnhancedDegradedFirst
	cfg.FailAt = 20
	cfg.Seed = 3
	res, err := Simulate(cfg, DefaultJob())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed = %v", res.Failed)
	}
}
