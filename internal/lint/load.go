package lint

import (
	"bufio"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one coherent set of files analyzed together: a package's
// non-test files, its in-package _test.go files (type-checked against the
// package), or its external _test package.
type Unit struct {
	// PkgPath is the import path ("degradedfirst/internal/sim"); external
	// test packages carry the "_test" suffix.
	PkgPath string
	Dir     string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// Test marks units made of _test.go files.
	Test bool
}

// Loader loads and type-checks module packages from source. Module-local
// imports are resolved against the module tree; everything else (the
// standard library) goes through go/importer's source importer, so the
// whole pipeline needs nothing beyond the Go toolchain's own source.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModDir  string

	std  types.ImporterFrom
	mods map[string]*modPkg
}

// modPkg is the memoized per-directory load state.
type modPkg struct {
	path, dir string
	base      []*ast.File // non-test files
	inTest    []*ast.File // _test.go files in the package itself
	xTest     []*ast.File // _test.go files in the external <pkg>_test package
	tpkg      *types.Package
	info      *types.Info
	err       error
	done      bool // guards against import cycles
}

// NewLoader locates the enclosing module of startDir and returns a loader
// rooted there.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", startDir)
		}
		dir = parent
	}
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  dir,
		std:     std,
		mods:    make(map[string]*modPkg),
	}, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer: module-local paths load from the
// module tree, everything else from the standard library's source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		mp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return mp.tpkg, nil
	}
	return l.std.ImportFrom(path, l.ModDir, 0)
}

// load parses and type-checks the non-test files of one module package,
// memoizing the result.
func (l *Loader) load(path string) (*modPkg, error) {
	if mp, ok := l.mods[path]; ok {
		if !mp.done {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return mp, mp.err
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	mp := &modPkg{path: path, dir: filepath.Join(l.ModDir, filepath.FromSlash(rel))}
	l.mods[path] = mp
	defer func() { mp.done = true }()

	names, err := goFilesIn(mp.dir)
	if err != nil {
		mp.err = err
		return mp, mp.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(mp.dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			mp.err = fmt.Errorf("lint: %w", err)
			return mp, mp.err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			mp.base = append(mp.base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			mp.xTest = append(mp.xTest, f)
		default:
			mp.inTest = append(mp.inTest, f)
		}
	}
	if len(mp.base) == 0 {
		mp.err = fmt.Errorf("lint: no non-test Go files in %s", mp.dir)
		return mp, mp.err
	}
	mp.tpkg, mp.info, mp.err = l.check(path, mp.base)
	return mp, mp.err
}

// check type-checks files as one package and returns the package, its
// filled types.Info, and the first type error encountered (if any).
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		err = fmt.Errorf("lint: type-checking %s: %w", path, errors.Join(terrs...))
	} else if err != nil {
		err = fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return tpkg, info, err
}

// unitsFor loads a package directory and returns its analysis units:
// the package itself, its in-package tests, and its external test package.
func (l *Loader) unitsFor(path string) ([]*Unit, error) {
	mp, err := l.load(path)
	if err != nil {
		return nil, err
	}
	units := []*Unit{{
		PkgPath: path, Dir: mp.dir, Files: mp.base, Pkg: mp.tpkg, Info: mp.info,
	}}
	if len(mp.inTest) > 0 {
		all := make([]*ast.File, 0, len(mp.base)+len(mp.inTest))
		all = append(all, mp.base...)
		all = append(all, mp.inTest...)
		tpkg, info, err := l.check(path, all)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			PkgPath: path, Dir: mp.dir, Files: mp.inTest, Pkg: tpkg, Info: info, Test: true,
		})
	}
	if len(mp.xTest) > 0 {
		tpkg, info, err := l.check(path+"_test", mp.xTest)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			PkgPath: path + "_test", Dir: mp.dir, Files: mp.xTest, Pkg: tpkg, Info: info, Test: true,
		})
	}
	return units, nil
}

// Load expands package patterns into analysis units. A pattern is either
// a directory path or a directory followed by "/..." for the whole
// subtree; testdata, vendor and hidden directories are skipped during
// recursive walks, matching the go tool.
func (l *Loader) Load(patterns []string) ([]*Unit, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		if len(base) > 1 {
			base = strings.TrimSuffix(base, string(filepath.Separator))
			base = strings.TrimSuffix(base, "/")
		}
		if base == "" {
			base = "."
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if abs != l.ModDir && !strings.HasPrefix(abs, l.ModDir+string(filepath.Separator)) {
			return nil, fmt.Errorf("lint: %s is outside module %s", pat, l.ModDir)
		}
		if !recursive {
			dirSet[abs] = true
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFilesIn(p); err == nil && len(names) > 0 {
				dirSet[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var units []*Unit
	for _, dir := range dirs {
		us, err := l.unitsFor(l.pkgPathFor(dir))
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// pkgPathFor maps a directory inside the module to its import path.
func (l *Loader) pkgPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// relPath maps an import path to its module-relative form ("" for the
// module root package). External test package paths keep their suffix.
func (l *Loader) relPath(pkgPath string) string {
	return strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModPath), "/")
}

// relFile rewrites an absolute file position to a stable module-relative,
// slash-separated path.
func (l *Loader) relFile(filename string) string {
	if rel, err := filepath.Rel(l.ModDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// goFilesIn lists the .go files of one directory, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
