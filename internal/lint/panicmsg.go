package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Panicmsg enforces the codebase's panic convention: every panic message
// starts with the package name and a colon ("sim: invalid delay ...",
// "gf256: division by zero"). A bare panic(err) loses the package context
// that makes a crash inside a long experiment run attributable. The
// leftmost string — through fmt.Sprintf/Errorf formats and string
// concatenation — must carry the prefix. Package main and test files are
// exempt (commands report errors instead of panicking).
var Panicmsg = &Analyzer{
	Name:      "panicmsg",
	Doc:       "require package-prefixed panic messages",
	SkipTests: true,
	Run:       runPanicmsg,
}

func runPanicmsg(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" {
		return
	}
	prefix := pass.Pkg.Name() + ":"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			msg, found := leftmostString(pass, call.Args[0])
			switch {
			case !found:
				pass.Reportf(call.Pos(), "panic without a package-prefixed message; wrap it with %q context", prefix+" ...")
			case msg != prefix && !hasPrefixAndSpace(msg, prefix):
				pass.Reportf(call.Pos(), "panic message must start with %q", prefix+" ")
			}
			return true
		})
	}
}

func hasPrefixAndSpace(msg, prefix string) bool {
	return len(msg) > len(prefix)+1 && msg[:len(prefix)] == prefix && msg[len(prefix)] == ' '
}

// leftmostString finds the leading string of a panic argument: a constant
// string expression directly, or the format string of a fmt.Sprintf /
// fmt.Errorf / fmt.Sprint call.
func leftmostString(pass *Pass, expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch e := expr.(type) {
	case *ast.BinaryExpr:
		return leftmostString(pass, e.X)
	case *ast.CallExpr:
		fn := calleeFunc(pass.Info, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && len(e.Args) > 0 {
			switch fn.Name() {
			case "Sprintf", "Errorf", "Sprint":
				return leftmostString(pass, e.Args[0])
			}
		}
	}
	return "", false
}
