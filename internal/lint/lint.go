// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the standard library's go/ast, go/parser and
// go/types (no x/tools). It exists because the whole reproduction rests
// on determinism: the golden backend-equivalence test pins both engines
// to identical scheduler decisions, and runtime.BuildResult must rebuild
// the paper's figures byte-for-byte from a recorded trace. The analyzers
// in this package turn those runtime invariants — no wall-clock time, no
// global RNG, no map-iteration-order-dependent scheduling, every Launch
// trace event paired with a Finish — into compile-time checks.
//
// The driver (cmd/dflint) loads packages from source, runs every
// analyzer, honors //lint:ignore <analyzers> <reason> suppression
// comments, and exits non-zero on findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a type-checked set of files.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// SkipTests exempts _test.go files from this analyzer by policy.
	SkipTests bool
	// Packages restricts the analyzer to import paths (relative to the
	// module root) with one of these prefixes. Nil means every package.
	Packages []string
	// Exempt excludes import paths with one of these prefixes even when
	// Packages matches. It expresses "everywhere except": the netboundary
	// analyzer covers the whole module minus the packages whose job is
	// real I/O.
	Exempt []string
	// Run reports findings on one Unit via pass.Reportf.
	Run func(*Pass)
}

// appliesTo reports whether the analyzer covers the package with the
// given module-relative import path ("internal/sim", "cmd/dflint", ...).
func (a *Analyzer) appliesTo(relPath string) bool {
	for _, p := range a.Exempt {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return false
		}
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one unit of files.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the files to analyze. For test units these are only the
	// _test.go files, but Info covers the whole (test-augmented) package.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Test reports whether Files are _test.go files.
	Test bool

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding. File is module-relative and slash-separated
// once the driver has normalized it, so output is stable across machines.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzers returns every analyzer in the suite, sorted by name.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Errsink,
		Floateq,
		Maporder,
		Netboundary,
		Panicmsg,
		Tracepair,
	}
}

// inspectWithStack walks root like ast.Inspect but hands fn the stack of
// enclosing nodes (outermost first, not including n itself). Returning
// false prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package defining obj, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isTracePackage reports whether an import path is the repo's trace
// package (matched by suffix so fixtures and the real tree both work).
func isTracePackage(path string) bool {
	return strings.HasSuffix(path, "internal/trace")
}

// isSimPackage reports whether an import path is the repo's discrete-event
// engine package.
func isSimPackage(path string) bool {
	return strings.HasSuffix(path, "internal/sim")
}

var errorType = types.Universe.Lookup("error").Type()
