package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Maporder flags range loops over maps whose iteration order leaks into
// observable state: emitting trace events, scheduling simulation events,
// or appending to a slice that outlives the loop. Go randomizes map
// order, so any of these turns a run into a coin flip — exactly the
// nondeterminism the golden backend-equivalence test exists to catch.
// The canonical fix is to collect the keys, sort them, and iterate the
// sorted slice; a collect-then-sort loop is recognized and allowed when
// the collected slice is passed to a sort call later in the function.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order reaches traces, the event queue, or escaping slices",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
}

func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		reasons := mapLoopEffects(pass, fd, rs)
		if len(reasons) > 0 {
			pass.Reportf(rs.For, "map iteration order is randomized but this loop %s; iterate sorted keys instead",
				strings.Join(reasons, " and "))
		}
		return true
	})
}

// mapLoopEffects returns the order-sensitive effects of one map-range
// body, in stable order.
func mapLoopEffects(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) []string {
	set := make(map[string]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn == nil {
				return true
			}
			if strings.EqualFold(fn.Name(), "emit") {
				set["emits trace events"] = true
			}
			if (fn.Name() == "Schedule" || fn.Name() == "ScheduleAt") && isSimPackage(pkgPathOf(fn)) {
				set["schedules simulation events"] = true
			}
		case *ast.AssignStmt:
			if target := escapingAppend(pass, rs, n); target != nil && !sortedLater(pass, fd, rs, target) {
				set["appends to a slice that escapes the loop"] = true
			}
		}
		return true
	})
	reasons := make([]string, 0, len(set))
	for r := range set {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	return reasons
}

// escapingAppend returns the object of a slice declared outside the range
// statement that the assignment appends to, or nil.
func escapingAppend(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) types.Object {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			// Appending through a selector or index expression always
			// targets storage that outlives the loop.
			return &escapeMarker
		}
		obj := pass.Info.ObjectOf(lhs)
		if obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) {
			return obj
		}
	}
	return nil
}

// escapeMarker stands in for append targets that have no single named
// object (struct fields, map entries); those can never be excused by a
// later sort of a local variable.
var escapeMarker = types.Var{}

// sortedLater reports whether the object is passed to a sort call after
// the range loop within the same function — the collect-then-sort idiom,
// which restores a deterministic order before the slice is used.
func sortedLater(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target types.Object) bool {
	if target == &escapeMarker {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		path := pkgPathOf(fn)
		isSorter := path == "sort" || path == "slices" ||
			strings.Contains(strings.ToLower(fn.Name()), "sort")
		if !isSorter {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.ObjectOf(id) == target {
				found = true
			}
		}
		return true
	})
	return found
}
