package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Floateq flags == and != between two non-constant floating-point values
// outside an approved epsilon helper. Virtual times are float64 sums of
// many small durations, so exact equality between two independently
// accumulated times is a rounding accident — a scheduling decision hung
// on one flips between runs of a refactored (but semantically identical)
// engine. Comparisons against constants (sentinels like 0 and -1) are
// exact by construction and stay allowed, as are comparisons inside
// functions whose name marks them as the epsilon helper ("almost",
// "approx" or "eps" in the name). Exact comparisons that are genuinely
// intended — e.g. the event heap's (time, seq) tie-break — carry a
// //lint:ignore floateq annotation.
var Floateq = &Analyzer{
	Name:      "floateq",
	Doc:       "flag exact ==/!= between floating-point values outside an epsilon helper",
	SkipTests: true,
	Run:       runFloateq,
}

func runFloateq(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isEpsilonHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isNonConstFloat(pass, be.X) || !isNonConstFloat(pass, be.Y) {
					return true
				}
				pass.Reportf(be.OpPos, "exact floating-point %s comparison; use an epsilon helper or restructure the check", be.Op)
				return true
			})
		}
	}
}

// isEpsilonHelper reports whether a function name marks an approved
// approximate-comparison helper.
func isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "almost") ||
		strings.Contains(lower, "approx") ||
		strings.Contains(lower, "eps")
}

// isNonConstFloat reports whether expr is a float-typed value that is not
// a compile-time constant.
func isNonConstFloat(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
