package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Netboundary confines real I/O — opening sockets and reading the wall
// clock — to the packages whose job it is: the distributed runtime
// (internal/cluster) and the binaries (cmd/...). Everywhere else the
// codebase is a deterministic simulation: the engines run on a virtual
// clock and all "network transfer" is a bandwidth model. A stray net.Dial
// or time.Now in a simulation or library package is almost always a
// layering leak that lets real-world timing or connectivity influence a
// result that must be reproducible from a seed. Test files are exempt by
// policy: tests may time themselves or spin up loopback listeners.
var Netboundary = &Analyzer{
	Name:      "netboundary",
	Doc:       "confine real sockets and wall-clock reads to internal/cluster and cmd",
	SkipTests: true,
	Exempt: []string{
		"internal/cluster",
		"cmd",
	},
	Run: runNetboundary,
}

func runNetboundary(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "net":
				// Catches the package-level dialers and listeners and the
				// net.Dialer / net.ListenConfig methods alike.
				if strings.HasPrefix(fn.Name(), "Dial") || strings.HasPrefix(fn.Name(), "Listen") {
					pass.Reportf(sel.Pos(),
						"net.%s outside the distributed runtime; real sockets belong in internal/cluster or cmd",
						fn.Name())
				}
			case "time":
				if fn.Name() == "Now" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
					pass.Reportf(sel.Pos(),
						"time.Now outside the distributed runtime; simulated code reads the virtual clock")
				}
			}
			return true
		})
	}
}
