package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Tracepair statically mirrors the trace-invariant tests: every trace
// event kind that opens an interval (launch, start, plan) must have a
// closing emission (finish, cancel, requeue, reset) somewhere in the same
// package. A package that constructs EvTaskLaunch events but can never
// construct EvTaskFinish produces traces from which BuildResult cannot
// rebuild task records, so figure reproduction silently breaks. Only
// construction sites count — passing a constant to trace.New (or any
// wrapper returning trace.Event) or setting an Event's Type field;
// consumers that merely switch on event types are ignored.
var Tracepair = &Analyzer{
	Name:      "tracepair",
	Doc:       "require a matching Finish-kind emission for every Launch-kind trace emission",
	SkipTests: true,
	Run:       runTracepair,
}

// tracePairs maps each interval-opening event constant to the constants
// that may close it. EvTaskRequeue closes launch-side events because a
// requeued task's record is reset and rewritten on relaunch; the repair
// events close each other the same way — a queued stripe closes by
// launching, and a launched block closes by committing (EvRepairDone)
// or by being re-queued when a failure cancels the repair.
var tracePairs = map[string][]string{
	"EvRunStart":      {"EvRunEnd"},
	"EvJobSubmit":     {"EvJobFinish"},
	"EvJobQueued":     {"EvJobGrant", "EvJobFinish"},
	"EvTaskLaunch":    {"EvTaskFinish", "EvTaskRequeue"},
	"EvMapStart":      {"EvTaskFinish", "EvTaskRequeue"},
	"EvDegradedPlan":  {"EvDegradedDone", "EvTaskRequeue"},
	"EvHedgeLaunch":   {"EvFlowLatency", "EvTaskRequeue"},
	"EvReduceLaunch":  {"EvReduceFinish", "EvReduceReset"},
	"EvReduceStart":   {"EvReduceFinish", "EvReduceReset"},
	"EvTransferStart": {"EvTransferEnd", "EvTransferCancel"},
	"EvRepairQueued":  {"EvRepairLaunch"},
	"EvRepairLaunch":  {"EvRepairDone", "EvRepairQueued"},
}

func runTracepair(pass *Pass) {
	// built maps each trace event constant name to the positions where
	// this package constructs an event of that type.
	built := make(map[string][]token.Pos)
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			c, ok := pass.Info.Uses[id].(*types.Const)
			if !ok || !strings.HasPrefix(c.Name(), "Ev") || !isTracePackage(pkgPathOf(c)) {
				return true
			}
			if isEventConstruction(pass, id, stack) {
				built[c.Name()] = append(built[c.Name()], id.Pos())
			}
			return true
		})
	}

	launches := make([]string, 0, len(tracePairs))
	for name := range tracePairs {
		launches = append(launches, name)
	}
	sort.Strings(launches)
	for _, launch := range launches {
		sites := built[launch]
		if len(sites) == 0 {
			continue
		}
		closed := false
		for _, closer := range tracePairs[launch] {
			if len(built[closer]) > 0 {
				closed = true
				break
			}
		}
		if closed {
			continue
		}
		for _, pos := range sites {
			pass.Reportf(pos, "trace %s is emitted but no %s emission exists in this package; the interval can never close",
				launch, strings.Join(tracePairs[launch], " or "))
		}
	}
}

// isEventConstruction reports whether the constant reference builds an
// event: an argument to a call returning trace.Event (trace.New or a
// wrapper), the Type field of an Event composite literal, or an
// assignment to an Event's Type field.
func isEventConstruction(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	// Skip over the SelectorExpr wrapping a qualified trace.EvX reference.
	i := len(stack) - 1
	if i >= 0 {
		if sel, ok := stack[i].(*ast.SelectorExpr); ok && sel.Sel == id {
			i--
		}
	}
	if i < 0 {
		return false
	}
	switch parent := stack[i].(type) {
	case *ast.CallExpr:
		for _, arg := range parent.Args {
			if containsIdent(arg, id) {
				return isTraceEventType(pass.Info.TypeOf(parent))
			}
		}
	case *ast.KeyValueExpr:
		if key, ok := parent.Key.(*ast.Ident); ok && key.Name == "Type" {
			return true
		}
	case *ast.AssignStmt:
		for j, rhs := range parent.Rhs {
			if !containsIdent(rhs, id) || j >= len(parent.Lhs) {
				continue
			}
			if sel, ok := ast.Unparen(parent.Lhs[j]).(*ast.SelectorExpr); ok && sel.Sel.Name == "Type" {
				return isTraceEventType(pass.Info.TypeOf(sel.X))
			}
		}
	}
	return false
}

// containsIdent reports whether expr is id, possibly wrapped in a
// selector or parentheses.
func containsIdent(expr ast.Expr, id *ast.Ident) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e == id
	case *ast.SelectorExpr:
		return e.Sel == id
	}
	return false
}

// isTraceEventType reports whether t is the trace package's Event type.
func isTraceEventType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Event" && isTracePackage(pkgPathOf(named.Obj()))
}
