package lint

import (
	"go/ast"
	"go/types"
)

// Errsink flags error values discarded with the blank identifier in
// non-test code. The trace layer is the archetype: trace.JSONL.Flush
// returns the first write error, and a dropped Flush error means a
// silently truncated trace — which BuildResult then "successfully"
// rebuilds into wrong figures. Handle the error or suppress the finding
// with an explicit //lint:ignore errsink <reason>.
var Errsink = &Analyzer{
	Name:      "errsink",
	Doc:       "flag error values assigned to _ in non-test code",
	SkipTests: true,
	Run:       runErrsink,
}

func runErrsink(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// Multi-value call: v, _ := f()
				tuple, ok := pass.Info.TypeOf(as.Rhs[0]).(*types.Tuple)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if i < tuple.Len() && isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
						pass.Reportf(lhs.Pos(), "error result discarded with _; handle it (or //lint:ignore errsink with a reason)")
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if i < len(as.Rhs) && isBlank(lhs) && isErrorType(pass.Info.TypeOf(as.Rhs[i])) {
					pass.Reportf(lhs.Pos(), "error result discarded with _; handle it (or //lint:ignore errsink with a reason)")
				}
			}
			return true
		})
	}
}

func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
