package lint

import (
	"go/ast"
	"go/types"
)

// Determinism forbids wall-clock time and the global math/rand functions
// inside the simulation packages. Both are invisible inputs: a single
// time.Now or rand.Intn in a scheduling path makes two runs with the same
// seed diverge, which breaks the golden backend-equivalence test and the
// byte-for-byte trace rebuild of the paper's figures. Simulated code must
// read the engine's virtual clock (sim.Engine.Now) and draw from an
// injected seeded stats.RNG. Test files are exempt by policy: wall-clock
// timing of the simulator itself (perf tests) is legitimate there.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock time and global math/rand in simulation packages",
	SkipTests: true,
	Packages: []string{
		"internal/sim",
		"internal/runtime",
		"internal/mapred",
		"internal/minimr",
		"internal/sched",
		"internal/exp",
		"internal/topology",
		"internal/netsim",
	},
	Run: runDeterminism,
}

// wallClockFuncs are the package-level time functions that read or wait on
// the real clock. Duration arithmetic and formatting stay allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors build explicitly seeded generators and are therefore
// deterministic; everything else at package level draws from the global,
// racily shared source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. rand.Rand.Intn) are instance-scoped
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in a simulation package; use the engine's virtual clock (sim.Engine.Now)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global %s.%s in a simulation package; draw from an injected seeded stats.RNG",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}
