// Package fixture exercises the maporder analyzer: map iteration whose
// order reaches traces, the event queue, or escaping slices.
package fixture

import (
	"degradedfirst/internal/sim"
	"degradedfirst/internal/trace"
)

func emitUnsorted(sink trace.Sink, byNode map[int]trace.Event) {
	for _, e := range byNode { // want `emits trace events`
		sink.Emit(e)
	}
}

func scheduleUnsorted(eng *sim.Engine, delays map[int]float64) {
	for _, d := range delays { // want `schedules simulation events`
		eng.Schedule(d, func() {})
	}
}

func collectUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `appends to a slice that escapes`
		out = append(out, v)
	}
	return out
}

type holder struct{ names []string }

func collectIntoField(h *holder, m map[int]string) {
	for _, v := range m { // want `appends to a slice that escapes`
		h.names = append(h.names, v)
	}
}
