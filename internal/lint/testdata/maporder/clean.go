package fixture

import (
	"sort"

	"degradedfirst/internal/trace"
)

// The collect-then-sort idiom: the keys escape the loop, but a later sort
// call restores a deterministic order before they are used.
func sortedEmit(sink trace.Sink, byNode map[int]trace.Event) {
	keys := make([]int, 0, len(byNode))
	for k := range byNode {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		sink.Emit(byNode[k])
	}
}

// Pure in-loop accumulation into a scalar is order-insensitive.
func sumValues(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Appending to a slice declared inside the loop body never leaks the
// iteration order.
func localAppend(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
