// Package fixture exercises the floateq analyzer: exact equality between
// non-constant floating-point values.
package fixture

func sameTime(a, b float64) bool {
	return a == b // want `exact floating-point == comparison`
}

func differentTime(a, b float64) bool {
	return a != b // want `exact floating-point != comparison`
}

type event struct{ at float64 }

func collides(x, y event) bool {
	return x.at == y.at // want `exact floating-point == comparison`
}
