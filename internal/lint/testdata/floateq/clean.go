package fixture

// Comparisons against compile-time constants are exact by construction:
// sentinels like 0 and -1 are assigned, never computed.
func unset(t float64) bool {
	return t == -1
}

func zero(t float64) bool {
	return 0 == t
}

// Epsilon helpers are the approved home for float comparison logic.
func almostEqual(a, b float64) bool {
	const eps = 1e-9
	return a == b || (a-b < eps && b-a < eps)
}

// Ordering comparisons carry no equality cliff.
func before(a, b float64) bool {
	return a < b
}

// Integer equality is exact.
func sameCount(a, b int) bool {
	return a == b
}
