// Package fixture exercises the errsink analyzer: error values discarded
// with the blank identifier.
package fixture

import (
	"strconv"

	"degradedfirst/internal/trace"
)

func droppedFlush(j *trace.JSONL) {
	_ = j.Flush() // want `error result discarded`
}

func droppedPair(s string) int {
	n, _ := strconv.Atoi(s) // want `error result discarded`
	return n
}

func parse(s string) (int, error) {
	return strconv.Atoi(s)
}

func droppedBoth(s string) {
	_, _ = parse(s) // want `error result discarded`
}
