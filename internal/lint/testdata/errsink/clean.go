package fixture

import (
	"strconv"

	"degradedfirst/internal/trace"
)

// Handling the error, or discarding a non-error result, is fine.
func handledFlush(j *trace.JSONL) error {
	if err := j.Flush(); err != nil {
		return err
	}
	return nil
}

func discardedValue(s string) error {
	_, err := strconv.Atoi(s)
	return err
}
