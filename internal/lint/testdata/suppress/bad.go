// Package fixture exercises the suppression machinery, run under the
// errsink analyzer. Expectations live in lint_test.go rather than in
// want comments, because malformed directives are reported on their own
// comment line.
package fixture

import "degradedfirst/internal/trace"

func suppressedAbove(j *trace.JSONL) {
	//lint:ignore errsink best-effort flush on shutdown
	_ = j.Flush()
}

func suppressedInline(j *trace.JSONL) {
	_ = j.Flush() //lint:ignore errsink demo of same-line suppression
}

func missingReason(j *trace.JSONL) {
	//lint:ignore errsink
	_ = j.Flush()
}

func unknownAnalyzer(j *trace.JSONL) {
	//lint:ignore nosuchcheck the analyzer list must name real analyzers
	_ = j.Flush()
}
