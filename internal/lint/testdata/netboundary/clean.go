package fixture

import (
	"net"
	"time"
)

// Address formatting, parsing, and duration arithmetic never open a
// socket or read the clock; all stay allowed.

func hostPort(host string, port string) string {
	return net.JoinHostPort(host, port)
}

func parse(s string) net.IP {
	return net.ParseIP(s)
}

func deadlineBudget() time.Duration {
	return 3 * time.Second
}

func format(t time.Time) string {
	return t.Format(time.RFC3339)
}
