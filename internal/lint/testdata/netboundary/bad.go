// Package fixture exercises the netboundary analyzer: real sockets and
// wall-clock reads outside the distributed runtime.
package fixture

import (
	"context"
	"net"
	"time"
)

func dialOut(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net\.Dial outside the distributed runtime`
}

func dialDeadline(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second) // want `net\.DialTimeout outside the distributed runtime`
}

func dialViaDialer(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr) // want `net\.DialContext outside the distributed runtime`
}

func open(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr) // want `net\.Listen outside the distributed runtime`
}

func openPacket(addr string) (net.PacketConn, error) {
	return net.ListenPacket("udp", addr) // want `net\.ListenPacket outside the distributed runtime`
}

func stamp() time.Time {
	return time.Now() // want `time\.Now outside the distributed runtime`
}
