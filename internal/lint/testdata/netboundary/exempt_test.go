package fixture

import (
	"net"
	"time"
)

// Test files are exempt from the netboundary analyzer by policy: tests
// may time themselves and spin up loopback listeners.
func listenInTest() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func nowInTest() time.Time {
	return time.Now()
}
