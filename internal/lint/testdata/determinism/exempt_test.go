package fixture

import "time"

// Test files are exempt from the determinism analyzer by policy:
// wall-clock timing of the simulator itself (perf tests) is legitimate.
func nowInTest() time.Time {
	return time.Now()
}
