package fixture

import (
	"math/rand"
	"time"
)

// Explicitly seeded sources are deterministic and allowed; so is pure
// duration arithmetic, which never touches the wall clock.

func seededDraw(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

func seededPick(r *rand.Rand, n int) int {
	return r.Intn(n)
}

func interval() time.Duration {
	return 3 * time.Second
}
