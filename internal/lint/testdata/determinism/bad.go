// Package fixture exercises the determinism analyzer: wall-clock reads
// and global math/rand draws must be flagged.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since`
}

func sleepy() {
	time.Sleep(time.Second) // want `wall-clock time\.Sleep`
}

func waiter() <-chan time.Time {
	return time.After(time.Second) // want `wall-clock time\.After`
}

func globalDraw() float64 {
	return rand.Float64() // want `global rand\.Float64`
}

func globalPick(n int) int {
	return rand.Intn(n) // want `global rand\.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}
