// Package fixture exercises the panicmsg analyzer: panics must carry a
// package-prefixed message.
package fixture

import (
	"errors"
	"fmt"
)

func bareError() {
	panic(errors.New("boom")) // want `panic without a package-prefixed message`
}

func wrongPrefix() {
	panic("other: broken invariant") // want `panic message must start with "fixture: "`
}

func wrongFormatted(n int) {
	panic(fmt.Sprintf("bad count %d", n)) // want `panic message must start with "fixture: "`
}

func noSpaceAfterColon() {
	panic("fixture:broken") // want `panic message must start with "fixture: "`
}
