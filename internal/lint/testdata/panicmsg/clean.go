package fixture

import "fmt"

func plain() {
	panic("fixture: invariant violated")
}

func formatted(n int) {
	panic(fmt.Sprintf("fixture: bad count %d", n))
}

func wrapped(err error) {
	panic(fmt.Errorf("fixture: load failed: %w", err))
}

func concatenated(id string) {
	panic("fixture: duplicate id " + id)
}
