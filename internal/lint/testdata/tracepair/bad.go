// Package fixture exercises the tracepair analyzer: Launch-kind trace
// emissions with no matching Finish-kind emission in the package.
package fixture

import "degradedfirst/internal/trace"

func launchOnly(sink trace.Sink, t float64) {
	sink.Emit(trace.New(t, trace.EvTaskLaunch)) // want `EvTaskLaunch is emitted but no EvTaskFinish or EvTaskRequeue`
}

func reduceLaunchOnly(sink trace.Sink, t float64) {
	e := trace.Event{Type: trace.EvReduceLaunch} // want `EvReduceLaunch is emitted but no EvReduceFinish or EvReduceReset`
	e.T = t
	sink.Emit(e)
}

func queuedOnly(sink trace.Sink, t float64) {
	sink.Emit(trace.New(t, trace.EvJobQueued)) // want `EvJobQueued is emitted but no EvJobGrant or EvJobFinish`
}

// A repair launch with neither a commit nor a requeue in the package can
// never close: BuildResult would count the block as forever in flight.
// (EvRepairQueued itself would close it — a failure-cancelled repair
// re-queues — so the package must not emit that either.)
func repairLaunchOnly(sink trace.Sink, t float64) {
	sink.Emit(trace.New(t, trace.EvRepairLaunch)) // want `EvRepairLaunch is emitted but no EvRepairDone or EvRepairQueued`
}
