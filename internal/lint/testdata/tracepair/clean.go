package fixture

import "degradedfirst/internal/trace"

// A run interval that opens and closes is fine, as is a transfer closed
// by its cancel alternative.
func balancedRun(sink trace.Sink, t0, t1 float64) {
	sink.Emit(trace.New(t0, trace.EvRunStart))
	sink.Emit(trace.New(t1, trace.EvRunEnd))
}

func cancelledTransfer(sink trace.Sink, t0, t1 float64) {
	sink.Emit(trace.New(t0, trace.EvTransferStart))
	sink.Emit(trace.New(t1, trace.EvTransferCancel))
}

// Consumers that merely inspect event types are not emissions: switching
// on EvJobSubmit or EvRepairQueued here must neither demand a closing
// emission nor close repairLaunchOnly's open interval in bad.go.
func countSubmits(events []trace.Event) int {
	n := 0
	for _, e := range events {
		switch e.Type {
		case trace.EvJobSubmit, trace.EvRepairQueued:
			n++
		}
	}
	return n
}
