package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureLoader returns a loader rooted at the repository module.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runFixture loads testdata/<name> and runs one analyzer (with its
// package restriction lifted, since fixtures live under testdata) through
// the full driver, including suppression handling.
func runFixture(t *testing.T, az *Analyzer, name string) (*Loader, []*Unit, []Diagnostic) {
	t.Helper()
	l := fixtureLoader(t)
	units, err := l.Load([]string{filepath.Join("testdata", name)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	cp := *az
	cp.Packages = nil
	return l, units, Run(l, units, []*Analyzer{&cp})
}

// want is one expectation parsed from a `// want "regexp"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the expectations from every file of the units.
func parseWants(t *testing.T, l *Loader, units []*Unit) []*want {
	t.Helper()
	var wants []*want
	seen := make(map[*ast.File]bool)
	for _, u := range units {
		for _, f := range u.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pat, err := strconv.Unquote(strings.TrimSpace(rest))
					if err != nil {
						t.Fatalf("%s: bad want comment %q: %v", l.Fset.Position(c.Pos()), rest, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", l.Fset.Position(c.Pos()), pat, err)
					}
					pos := l.Fset.Position(c.Pos())
					wants = append(wants, &want{file: l.relFile(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkFixture asserts that every diagnostic matches a want on its line
// and every want is matched: the analyzer fires exactly where the fixture
// says and stays silent everywhere else (including the clean files).
func checkFixture(t *testing.T, az *Analyzer, name string) {
	t.Helper()
	l, units, diags := runFixture(t, az, name)
	wants := parseWants(t, l, units)
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q not matched by any diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) { checkFixture(t, Determinism, "determinism") }
func TestMaporderFixture(t *testing.T)    { checkFixture(t, Maporder, "maporder") }
func TestTracepairFixture(t *testing.T)   { checkFixture(t, Tracepair, "tracepair") }
func TestErrsinkFixture(t *testing.T)     { checkFixture(t, Errsink, "errsink") }
func TestNetboundaryFixture(t *testing.T) { checkFixture(t, Netboundary, "netboundary") }
func TestFloateqFixture(t *testing.T)     { checkFixture(t, Floateq, "floateq") }
func TestPanicmsgFixture(t *testing.T)    { checkFixture(t, Panicmsg, "panicmsg") }

// TestSuppression drives the suppression machinery over a fixture with
// two valid directives (above-line and same-line), one with a missing
// reason, and one naming an unknown analyzer. The valid ones silence
// errsink; the malformed ones are reported and do not suppress.
func TestSuppression(t *testing.T) {
	_, _, diags := runFixture(t, Errsink, "suppress")
	var lintDiags, errsinkDiags []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			lintDiags = append(lintDiags, d)
		case "errsink":
			errsinkDiags = append(errsinkDiags, d)
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	if len(lintDiags) != 2 || len(errsinkDiags) != 2 {
		t.Fatalf("got %d lint + %d errsink diagnostics, want 2 + 2:\n%v", len(lintDiags), len(errsinkDiags), diags)
	}
	if !strings.Contains(lintDiags[0].Message, "no reason") {
		t.Errorf("first lint diagnostic %q, want missing-reason report", lintDiags[0].Message)
	}
	if !strings.Contains(lintDiags[1].Message, "unknown analyzer nosuchcheck") {
		t.Errorf("second lint diagnostic %q, want unknown-analyzer report", lintDiags[1].Message)
	}
	// Each surviving errsink finding sits directly under a malformed
	// directive; the two well-formed directives suppressed theirs.
	for i, d := range errsinkDiags {
		if d.Line != lintDiags[i].Line+1 {
			t.Errorf("errsink diagnostic at line %d, want right under the malformed directive at line %d", d.Line, lintDiags[i].Line)
		}
	}
}

// TestJSONShape pins the -json output format so downstream diffs stay
// stable.
func TestJSONShape(t *testing.T) {
	diags := []Diagnostic{{
		File:     "internal/sim/engine.go",
		Line:     3,
		Col:      7,
		Analyzer: "floateq",
		Message:  "exact floating-point == comparison",
	}}
	got, err := EncodeJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	const wantJSON = `[
  {
    "file": "internal/sim/engine.go",
    "line": 3,
    "col": 7,
    "analyzer": "floateq",
    "message": "exact floating-point == comparison"
  }
]
`
	if string(got) != wantJSON {
		t.Errorf("JSON shape changed:\ngot:\n%s\nwant:\n%s", got, wantJSON)
	}
	empty, err := EncodeJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]\n" {
		t.Errorf("empty encoding %q, want %q", empty, "[]\n")
	}
}

// TestAppliesTo pins the package restriction of the determinism analyzer
// to the simulation packages.
func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"internal/sim":       true,
		"internal/sim/sub":   true,
		"internal/runtime":   true,
		"internal/mapred":    true,
		"internal/minimr":    true,
		"internal/sched":     true,
		"internal/exp":       true,
		"internal/topology":  true,
		"internal/netsim":    true,
		"internal/simulator": false,
		"internal/trace":     false,
		"internal/stats":     false,
		"cmd/dfexp":          false,
		"":                   false,
	} {
		if got := Determinism.appliesTo(path); got != want {
			t.Errorf("determinism.appliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	if !Maporder.appliesTo("internal/anything") {
		t.Error("maporder must apply to every package")
	}
	// Exempt inverts the restriction: netboundary covers everything
	// except the real-I/O packages.
	for path, want := range map[string]bool{
		"internal/cluster":     false,
		"internal/cluster/sub": false,
		"cmd":                  false,
		"cmd/dfmaster":         false,
		"cmd/dfworker":         false,
		"internal/sim":         true,
		"internal/trace":       true,
		"":                     true,
	} {
		if got := Netboundary.appliesTo(path); got != want {
			t.Errorf("netboundary.appliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestAnalyzerRoster pins the suite: at least six analyzers, sorted by
// name, each documented.
func TestAnalyzerRoster(t *testing.T) {
	azs := Analyzers()
	if len(azs) < 6 {
		t.Fatalf("suite has %d analyzers, want >= 6", len(azs))
	}
	for i, a := range azs {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d is missing name, doc, or run", i)
		}
		if i > 0 && azs[i-1].Name >= a.Name {
			t.Errorf("analyzers out of order: %s before %s", azs[i-1].Name, a.Name)
		}
	}
}

// TestRepoClean runs the full suite over the real tree: the repository
// must stay lint-clean, with intentional sites annotated. This is the
// same invariant CI enforces via `go run ./cmd/dflint ./...`.
func TestRepoClean(t *testing.T) {
	l := fixtureLoader(t)
	units, err := l.Load([]string{l.ModDir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, units, Analyzers())
	for _, d := range diags {
		t.Errorf("repository not lint-clean: %s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or annotate intentional sites with //lint:ignore <analyzer> <reason>")
	}
}

// TestDiagnosticString pins the human-readable diagnostic format.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 12, Col: 4, Analyzer: "maporder", Message: "map iteration"}
	if got, want := d.String(), "a/b.go:12:4: maporder: map iteration"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLoaderRejectsOutsideModule ensures patterns cannot escape the
// module root.
func TestLoaderRejectsOutsideModule(t *testing.T) {
	l := fixtureLoader(t)
	if _, err := l.Load([]string{string(filepath.Separator)}); err == nil {
		t.Error("loading / succeeded, want error")
	}
}

func ExampleDiagnostic_String() {
	d := Diagnostic{File: "internal/sim/engine.go", Line: 129, Col: 13, Analyzer: "floateq", Message: "exact comparison"}
	fmt.Println(d)
	// Output: internal/sim/engine.go:129:13: floateq: exact comparison
}
