package lint

import (
	"encoding/json"
	"go/ast"
	"sort"
	"strings"
)

// ignorePrefix is the suppression directive. The full form is
//
//	//lint:ignore analyzer1,analyzer2 reason for suppressing
//
// placed on the flagged line or on its own line directly above. The
// reason is mandatory: a suppression without one is itself reported,
// under the reserved analyzer name "lint".
const ignorePrefix = "//lint:ignore"

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzers map[string]bool
	line      int // the comment's own line; it covers line and line+1
}

// Run executes the analyzers over every unit, applies suppressions, and
// returns the surviving diagnostics sorted by file, line, column and
// analyzer. Malformed //lint:ignore comments are reported as diagnostics
// and cannot themselves be suppressed.
func Run(l *Loader, units []*Unit, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	sups := make(map[string][]suppression) // module-relative file -> directives
	seenFile := make(map[string]bool)
	for _, u := range units {
		for _, f := range u.Files {
			fname := l.relFile(l.Fset.Position(f.Pos()).Filename)
			if seenFile[fname] {
				continue
			}
			seenFile[fname] = true
			fileSups, malformed := parseSuppressions(l, u, f, known)
			sups[fname] = fileSups
			diags = append(diags, malformed...)
		}
	}

	for _, u := range units {
		for _, a := range analyzers {
			if a.SkipTests && u.Test {
				continue
			}
			if !a.appliesTo(l.relPath(u.PkgPath)) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				Test:     u.Test,
				report: func(d Diagnostic) {
					d.File = l.relFile(d.File)
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "lint" && suppressed(sups[d.File], d) {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return dedupe(kept)
}

// parseSuppressions extracts //lint:ignore directives from one file and
// reports malformed ones (missing analyzer list, unknown analyzer, or
// missing reason).
func parseSuppressions(l *Loader, u *Unit, f *ast.File, known map[string]bool) ([]suppression, []Diagnostic) {
	var sups []suppression
	var malformed []Diagnostic
	report := func(c *ast.Comment, msg string) {
		pos := l.Fset.Position(c.Pos())
		malformed = append(malformed, Diagnostic{
			File: l.relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
			Analyzer: "lint", Message: msg,
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(c, `suppression needs an analyzer list and a reason: "`+ignorePrefix+` <analyzers> <reason>"`)
				continue
			}
			names := strings.Split(fields[0], ",")
			bad := false
			for _, n := range names {
				if !known[n] {
					report(c, "suppression names unknown analyzer "+n)
					bad = true
				}
			}
			if bad {
				continue
			}
			if len(fields) < 2 {
				report(c, "suppression of "+fields[0]+" has no reason; say why the finding is intentional")
				continue
			}
			set := make(map[string]bool, len(names))
			for _, n := range names {
				set[n] = true
			}
			sups = append(sups, suppression{analyzers: set, line: l.Fset.Position(c.Pos()).Line})
		}
	}
	return sups, malformed
}

// suppressed reports whether a directive on the diagnostic's line or the
// line above covers it.
func suppressed(sups []suppression, d Diagnostic) bool {
	for _, s := range sups {
		if s.analyzers[d.Analyzer] && (s.line == d.Line || s.line == d.Line-1) {
			return true
		}
	}
	return false
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// EncodeJSON renders diagnostics as a stable, indented JSON array (ending
// in a newline) so lint output is diffable between runs; the diagnostics
// are expected to be pre-sorted by Run. The shape is pinned by a test.
func EncodeJSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	b, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
