package jobsched

import (
	"math/rand"
	"testing"

	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

// pendingJob returns a sched.Job with n never-drained map tasks, so the
// entry stays active() for the whole test.
func pendingJob(id, n int) *sched.Job {
	specs := make([]sched.TaskSpec, n)
	for i := range specs {
		specs[i].Holder = topology.NodeID(i % 4)
	}
	return sched.NewJob(id, specs)
}

func ids(jobs []*sched.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{Fifo, FairShare, Quota, Deadline} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != Fifo {
		t.Fatalf("empty string must parse as fifo, got %v, %v", k, err)
	}
	if _, err := ParseKind("lottery"); err == nil {
		t.Fatal("unknown policy must fail")
	}
	if Kind(42).String() == "" {
		t.Fatal("out-of-range String must not be empty")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Policy: Kind(9)},
		{QuotaSlots: -1},
		{Policy: Quota, TenantQuotas: map[string]int{"a": -2}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v must fail validation", bad)
		}
	}
	ok := Config{Policy: Quota, QuotaSlots: 2, TenantQuotas: map[string]int{"a": 0, "b": 3}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Policy: Kind(9)}); err == nil {
		t.Fatal("New must reject invalid config")
	}
}

func TestFifoViewMechanics(t *testing.T) {
	q, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		q.Add(JobMeta{}, 1)
	}
	sjs := []*sched.Job{pendingJob(0, 2), pendingJob(1, 2), pendingJob(2, 2)}
	for i, sj := range sjs {
		q.Submit(i, sj)
	}
	if !equalInts(ids(q.MapOrder()), []int{0, 1, 2}) {
		t.Fatalf("fifo order = %v", ids(q.MapOrder()))
	}

	// Requeue of a job already in the view is a no-op.
	q.Requeue(1)
	if !equalInts(ids(q.MapOrder()), []int{0, 1, 2}) {
		t.Fatalf("requeue-present changed view: %v", ids(q.MapOrder()))
	}

	// Drop job 1 from the view (as Prune does once its scheduling is
	// done); Requeue must re-insert it at the ID-sorted position.
	q.view = append(q.view[:1], q.view[2:]...)
	q.Requeue(1)
	if !equalInts(ids(q.MapOrder()), []int{0, 1, 2}) {
		t.Fatalf("requeue did not restore ID order: %v", ids(q.MapOrder()))
	}

	// Requeue of an unsubmitted or drained job is a no-op.
	q.Add(JobMeta{}, 0)
	q.Requeue(3)
	if len(q.MapOrder()) != 3 {
		t.Fatal("unsubmitted job must not be requeued")
	}
	q.Submit(3, sched.NewJob(3, nil)) // zero tasks: Done() immediately
	q.Prune()
	q.Requeue(3)
	for _, id := range ids(q.MapOrder()) {
		if id == 3 {
			t.Fatal("drained job must not be requeued")
		}
	}
}

func TestMapGrantedFirstGrantOnly(t *testing.T) {
	q, _ := New(Config{})
	q.Add(JobMeta{Tenant: "a"}, 0)
	if !q.MapGranted(0) {
		t.Fatal("first grant must report true")
	}
	if q.MapGranted(0) {
		t.Fatal("second grant must report false")
	}
	q.MapReleased(0)
	if q.MapGranted(0) {
		t.Fatal("grants are cumulative; release must not reset first-grant")
	}
}

func TestFairShareWeightedRotation(t *testing.T) {
	q, err := New(Config{Policy: FairShare})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a (weight 2) and tenant b (weight 1), one big job each.
	q.Add(JobMeta{Tenant: "a", Weight: 2}, 0)
	q.Add(JobMeta{Tenant: "b", Weight: 1}, 0)
	q.Submit(0, pendingJob(0, 100))
	q.Submit(1, pendingJob(1, 100))

	var seq []int
	for i := 0; i < 6; i++ {
		order := q.MapOrder()
		if len(order) != 2 {
			t.Fatalf("round %d: order = %v", i, ids(order))
		}
		seq = append(seq, order[0].ID)
		q.MapGranted(order[0].ID)
	}
	// Equal priority ties break by tenant name (a first); granting a
	// raises its grants-per-weight, so slots alternate 2:1 toward a.
	want := []int{0, 1, 0, 0, 1, 0}
	if !equalInts(seq, want) {
		t.Fatalf("fair-share grant sequence = %v, want %v", seq, want)
	}
}

func TestFairShareWeightDefaultsToOne(t *testing.T) {
	q, _ := New(Config{Policy: FairShare})
	q.Add(JobMeta{Tenant: "a"}, 0) // weight 0 -> 1
	q.Add(JobMeta{Tenant: "b", Weight: 1}, 0)
	q.Submit(0, pendingJob(0, 10))
	q.Submit(1, pendingJob(1, 10))
	seq := []int{}
	for i := 0; i < 4; i++ {
		order := q.MapOrder()
		seq = append(seq, order[0].ID)
		q.MapGranted(order[0].ID)
	}
	if !equalInts(seq, []int{0, 1, 0, 1}) {
		t.Fatalf("equal-weight rotation = %v", seq)
	}
}

func TestQuotaCapsMapSlots(t *testing.T) {
	q, err := New(Config{Policy: Quota, QuotaSlots: 1, TenantQuotas: map[string]int{"b": 2}})
	if err != nil {
		t.Fatal(err)
	}
	q.Add(JobMeta{Tenant: "a"}, 0)
	q.Add(JobMeta{Tenant: "b"}, 0)
	q.Submit(0, pendingJob(0, 10))
	q.Submit(1, pendingJob(1, 10))

	if !equalInts(ids(q.MapOrder()), []int{0, 1}) {
		t.Fatalf("initial order = %v", ids(q.MapOrder()))
	}
	q.MapGranted(0) // tenant a now at its cap of 1
	if !equalInts(ids(q.MapOrder()), []int{1}) {
		t.Fatalf("a at cap, order = %v", ids(q.MapOrder()))
	}
	q.MapGranted(1) // b at 1 of 2: still eligible
	if !equalInts(ids(q.MapOrder()), []int{1}) {
		t.Fatalf("b below override cap, order = %v", ids(q.MapOrder()))
	}
	q.MapGranted(1) // b at its override cap of 2
	if len(q.MapOrder()) != 0 {
		t.Fatalf("both at cap, order = %v", ids(q.MapOrder()))
	}
	q.MapReleased(0)
	if !equalInts(ids(q.MapOrder()), []int{0}) {
		t.Fatalf("a released, order = %v", ids(q.MapOrder()))
	}
}

func TestQuotaZeroMeansUnlimited(t *testing.T) {
	q, _ := New(Config{Policy: Quota}) // QuotaSlots 0
	q.Add(JobMeta{Tenant: "a"}, 0)
	q.Submit(0, pendingJob(0, 10))
	for i := 0; i < 5; i++ {
		if len(q.MapOrder()) != 1 {
			t.Fatalf("grant %d: unlimited quota filtered the job", i)
		}
		q.MapGranted(0)
	}
}

func TestQuotaCapsReduceSlots(t *testing.T) {
	q, _ := New(Config{Policy: Quota, QuotaSlots: 1})
	q.Add(JobMeta{Tenant: "a"}, 2)
	q.Add(JobMeta{Tenant: "b"}, 2)
	q.Submit(0, pendingJob(0, 1))
	q.Submit(1, pendingJob(1, 1))

	e := q.NextReduce()
	if e == nil || e.Idx != 0 {
		t.Fatalf("first reduce pick = %+v", e)
	}
	q.ReduceGranted(0) // tenant a at reduce cap
	e = q.NextReduce()
	if e == nil || e.Idx != 1 {
		t.Fatalf("a at cap, pick = %+v", e)
	}
	q.ReduceGranted(1)
	if q.NextReduce() != nil {
		t.Fatal("both at cap: no pick")
	}
	q.ReduceReleased(0)
	e = q.NextReduce()
	if e == nil || e.Idx != 0 {
		t.Fatalf("a released, pick = %+v", e)
	}
}

func TestDeadlineOrdering(t *testing.T) {
	q, err := New(Config{Policy: Deadline})
	if err != nil {
		t.Fatal(err)
	}
	q.Add(JobMeta{Tenant: "a", Deadline: 50}, 1)
	q.Add(JobMeta{Tenant: "b"}, 1) // no deadline: last
	q.Add(JobMeta{Tenant: "c", Deadline: 20}, 1)
	q.Add(JobMeta{Tenant: "d", Deadline: 20}, 1) // tie: submission order
	for i := 0; i < 4; i++ {
		q.Submit(i, pendingJob(i, 5))
	}
	if !equalInts(ids(q.MapOrder()), []int{2, 3, 0, 1}) {
		t.Fatalf("deadline order = %v", ids(q.MapOrder()))
	}
	if e := q.NextReduce(); e == nil || e.Idx != 2 {
		t.Fatalf("deadline reduce pick = %+v", e)
	}
	q.ReduceGranted(2)
	if e := q.NextReduce(); e == nil || e.Idx != 3 {
		t.Fatalf("after c assigned, pick = %+v", e)
	}
}

// TestCursorMatchesReferenceScan drives a queue through randomized
// lifecycle sequences and checks after every step that the indexed
// cursor picks exactly the job the seed runtime's full rescan would.
func TestCursorMatchesReferenceScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		q, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			q.Add(JobMeta{}, rng.Intn(4)) // some jobs map-only
		}
		next := 0 // next unsubmitted index (runtime submits in order)
		for step := 0; step < 120; step++ {
			switch op := rng.Intn(4); {
			case op == 0 && next < n:
				q.Submit(next, pendingJob(next, 1))
				next++
			case op == 1:
				if e := q.scanReduce(0); e != nil {
					q.ReduceGranted(e.Idx)
				}
			case op == 2:
				// Reset a random assigned reducer (failure recovery).
				var cands []int
				for _, e := range q.entries {
					if e.reducersAssigned > 0 && !e.finished {
						cands = append(cands, e.Idx)
					}
				}
				if len(cands) > 0 {
					q.ReduceReset(cands[rng.Intn(len(cands))])
				}
			case op == 3:
				// Finish a random submitted unfinished job.
				var cands []int
				for _, e := range q.entries {
					if e.submitted && !e.finished {
						cands = append(cands, e.Idx)
					}
				}
				if len(cands) > 0 {
					q.JobFinished(cands[rng.Intn(len(cands))])
				}
			}
			ref := q.scanReduce(0)
			got := q.cursorReduce()
			if ref != got {
				t.Fatalf("trial %d step %d: cursor picked %+v, reference %+v (cursor at %d)",
					trial, step, got, ref, q.redCursor)
			}
		}
	}
}

// TestRequeueKeepsTenantQueue checks the white-box half of the mid-storm
// failure property: a job whose tasks are requeued after a node failure
// re-enters its own tenant's ordering, not some other queue position.
func TestRequeueKeepsTenantQueue(t *testing.T) {
	q, _ := New(Config{Policy: FairShare})
	q.Add(JobMeta{Tenant: "a", Weight: 1}, 0)
	q.Add(JobMeta{Tenant: "b", Weight: 1}, 0)
	q.Submit(0, pendingJob(0, 4))
	q.Submit(1, pendingJob(1, 4))

	// Grant b twice: tenant a must come first now.
	q.MapGranted(1)
	q.MapGranted(1)
	order := q.MapOrder()
	if order[0].ID != 0 {
		t.Fatalf("a should lead after b's grants: %v", ids(order))
	}

	// A failure requeues one of b's running maps: Requeue is a no-op for
	// recomputing policies, MapReleased drops b's running count, and b's
	// job stays in b's position (grants are cumulative, so a still leads).
	q.Requeue(1)
	q.MapReleased(1)
	order = q.MapOrder()
	if !equalInts(ids(order), []int{0, 1}) {
		t.Fatalf("post-requeue order = %v", ids(order))
	}
	if got := q.Entry(1).GrantedMaps(); got != 2 {
		t.Fatalf("cumulative grants lost on requeue: %d", got)
	}
}
