package jobsched

import (
	"math"
	"sort"

	"degradedfirst/internal/sched"
)

// JobMeta is the policy-facing metadata of one job.
type JobMeta struct {
	// Tenant names the submitting tenant ("" is a tenant like any other:
	// single-tenant runs put every job in one bucket).
	Tenant string
	// Weight is the job's fair-share weight (<= 0 counts as 1).
	Weight float64
	// Deadline is the job's completion deadline in virtual seconds
	// (<= 0 = none) for the Deadline policy.
	Deadline float64
}

// Entry is the queue's view of one job. The runtime owns the task-level
// state; the entry tracks only what ordering policies need.
type Entry struct {
	// Idx is the job's submission index (== sched.Job.ID).
	Idx int
	// Meta is the job's policy metadata.
	Meta JobMeta
	// NumReducers is the job's reduce task count.
	NumReducers int
	// SJ is the scheduler-facing job handle, set at submission.
	SJ *sched.Job

	submitted        bool
	finished         bool
	grantedMaps      int // cumulative map-slot grants (never decremented)
	runningMaps      int // currently running map tasks
	reducersAssigned int // launched or completed reducers
	runningReduces   int // currently occupied reduce slots
}

// Submitted reports whether the job has been submitted.
func (e *Entry) Submitted() bool { return e.submitted }

// Finished reports whether the job has finished.
func (e *Entry) Finished() bool { return e.finished }

// GrantedMaps returns the job's cumulative map-slot grants.
func (e *Entry) GrantedMaps() int { return e.grantedMaps }

// ReducersAssigned returns the job's launched-or-done reducer count.
func (e *Entry) ReducersAssigned() int { return e.reducersAssigned }

// active reports whether the job can still take map slots.
func (e *Entry) active() bool {
	return e.submitted && !e.finished && e.SJ != nil && !e.SJ.Done()
}

// reduceEligible reports whether the job can take a reduce slot.
func (e *Entry) reduceEligible() bool {
	return e.submitted && !e.finished && e.NumReducers > 0 && e.reducersAssigned < e.NumReducers
}

func (e *Entry) weight() float64 {
	if e.Meta.Weight > 0 {
		return e.Meta.Weight
	}
	return 1
}

func (e *Entry) deadline() float64 {
	if e.Meta.Deadline > 0 {
		return e.Meta.Deadline
	}
	return math.Inf(1)
}

// Queue is the job-level scheduler. It is a passive component driven
// entirely by runtime notifications, so every policy stays deterministic
// under the virtual clock. Not safe for concurrent use; the runtime
// calls it from the simulation goroutine only.
type Queue struct {
	cfg     Config
	entries []*Entry

	// view is the Fifo policy's live job list, mutated with exactly the
	// seed runtime's env.Jobs mechanics: append on submit, ID-sorted
	// re-insert on requeue, compaction on prune. Non-Fifo policies
	// recompute their order per MapOrder call instead.
	view []*sched.Job

	// redCursor is the indexed reducer cursor: entries before it are
	// permanently reduce-ineligible (finished, map-only, or fully
	// assigned — ReduceReset rewinds it).
	redCursor int

	grants      map[string]int // per-tenant cumulative map grants (FairShare)
	mapsRunning map[string]int // per-tenant running maps (Quota)
	redRunning  map[string]int // per-tenant occupied reduce slots (Quota)

	order   []*sched.Job // MapOrder scratch (non-Fifo)
	scratch []*Entry     // ordering scratch (non-Fifo)
}

// New returns an empty queue after validating cfg.
func New(cfg Config) (*Queue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Queue{
		cfg:         cfg,
		grants:      make(map[string]int),
		mapsRunning: make(map[string]int),
		redRunning:  make(map[string]int),
	}, nil
}

// Add registers a job before the run starts and returns its index. Jobs
// must be added in submission-index order (the runtime's job slice).
func (q *Queue) Add(meta JobMeta, numReducers int) int {
	e := &Entry{Idx: len(q.entries), Meta: meta, NumReducers: numReducers}
	q.entries = append(q.entries, e)
	return e.Idx
}

// Len returns the number of registered jobs.
func (q *Queue) Len() int { return len(q.entries) }

// Entry returns the entry of job idx.
func (q *Queue) Entry(idx int) *Entry { return q.entries[idx] }

// Submit marks job idx submitted with its scheduler-facing handle.
func (q *Queue) Submit(idx int, sj *sched.Job) {
	e := q.entries[idx]
	e.SJ = sj
	e.submitted = true
	if q.cfg.Policy == Fifo {
		q.view = append(q.view, sj)
	}
}

// MapOrder returns the jobs eligible for map-slot assignment, most
// preferred first. The runtime installs the result as sched.Env.Jobs
// before calling the task scheduler; it stays valid until the next
// Queue mutation.
func (q *Queue) MapOrder() []*sched.Job {
	if q.cfg.Policy == Fifo {
		return q.view
	}
	q.scratch = q.scratch[:0]
	for _, e := range q.entries {
		if e.active() {
			q.scratch = append(q.scratch, e)
		}
	}
	switch q.cfg.Policy {
	case Quota:
		kept := q.scratch[:0]
		for _, e := range q.scratch {
			if c := q.capFor(e.Meta.Tenant); c > 0 && q.mapsRunning[e.Meta.Tenant] >= c {
				continue
			}
			kept = append(kept, e)
		}
		q.scratch = kept
	case Deadline:
		sort.Slice(q.scratch, func(i, j int) bool {
			di, dj := q.scratch[i].deadline(), q.scratch[j].deadline()
			if di < dj {
				return true
			}
			if dj < di {
				return false
			}
			return q.scratch[i].Idx < q.scratch[j].Idx
		})
	case FairShare:
		q.sortFairShare()
	}
	q.order = q.order[:0]
	for _, e := range q.scratch {
		q.order = append(q.order, e.SJ)
	}
	return q.order
}

// sortFairShare orders q.scratch so the tenant with the lowest
// grants-per-weight comes first (ties broken by tenant name), keeping
// submission order within each tenant. A tenant's weight is the sum of
// its active jobs' weights, so a tenant's share scales with what it is
// asking for, and granting it a slot immediately lowers its priority —
// the deficit/round-robin behavior.
func (q *Queue) sortFairShare() {
	type share struct {
		name     string
		priority float64
		entries  []*Entry
	}
	var tenants []share
	index := make(map[string]int)
	for _, e := range q.scratch {
		i, ok := index[e.Meta.Tenant]
		if !ok {
			i = len(tenants)
			index[e.Meta.Tenant] = i
			tenants = append(tenants, share{name: e.Meta.Tenant})
		}
		tenants[i].entries = append(tenants[i].entries, e)
	}
	for i := range tenants {
		var weight float64
		for _, e := range tenants[i].entries {
			weight += e.weight()
		}
		tenants[i].priority = float64(q.grants[tenants[i].name]) / weight
	}
	sort.Slice(tenants, func(i, j int) bool {
		if tenants[i].priority < tenants[j].priority {
			return true
		}
		if tenants[j].priority < tenants[i].priority {
			return false
		}
		return tenants[i].name < tenants[j].name
	})
	q.scratch = q.scratch[:0]
	for _, t := range tenants {
		q.scratch = append(q.scratch, t.entries...)
	}
}

// Prune drops finished-scheduling jobs from the Fifo view (the seed
// runtime's pruneScheduledJobs). Recomputing policies need no pruning.
func (q *Queue) Prune() {
	if q.cfg.Policy != Fifo {
		return
	}
	kept := q.view[:0]
	for _, j := range q.view {
		if !j.Done() {
			kept = append(kept, j)
		}
	}
	q.view = kept
}

// Requeue re-enters a job with pending tasks after failure recovery.
// Fifo mirrors the seed runtime's ensureScheduled exactly: re-insert at
// the ID-sorted position unless already present. Recomputing policies
// pick the job up automatically on the next MapOrder call.
func (q *Queue) Requeue(idx int) {
	e := q.entries[idx]
	if !e.submitted || e.SJ == nil || e.SJ.Done() {
		return
	}
	if q.cfg.Policy != Fifo {
		return
	}
	for _, j := range q.view {
		if j == e.SJ {
			return
		}
	}
	pos := len(q.view)
	for i, j := range q.view {
		if j.ID > e.Idx {
			pos = i
			break
		}
	}
	q.view = append(q.view, nil)
	copy(q.view[pos+1:], q.view[pos:])
	q.view[pos] = e.SJ
}

// MapGranted records one map-slot grant to job idx and reports whether
// it was the job's first ever grant (the runtime emits the job-grant
// trace event exactly once per job).
func (q *Queue) MapGranted(idx int) bool {
	e := q.entries[idx]
	e.grantedMaps++
	e.runningMaps++
	q.grants[e.Meta.Tenant]++
	q.mapsRunning[e.Meta.Tenant]++
	return e.grantedMaps == 1
}

// MapReleased records a map slot freed by job idx (task completion or
// requeue after failure).
func (q *Queue) MapReleased(idx int) {
	e := q.entries[idx]
	e.runningMaps--
	q.mapsRunning[e.Meta.Tenant]--
}

// NextReduce returns the job whose next unlaunched reducer should take
// a free reduce slot, or nil when no job can.
func (q *Queue) NextReduce() *Entry {
	switch q.cfg.Policy {
	case Fifo:
		if q.cfg.ReferenceReduceScan {
			return q.scanReduce(0)
		}
		return q.cursorReduce()
	case FairShare:
		// Fair-share arbitrates map-slot grants; reduce slots follow
		// submission order like the seed runtime.
		return q.scanReduce(0)
	case Quota:
		for _, e := range q.entries {
			if !e.reduceEligible() {
				continue
			}
			if c := q.capFor(e.Meta.Tenant); c > 0 && q.redRunning[e.Meta.Tenant] >= c {
				continue
			}
			return e
		}
		return nil
	case Deadline:
		var best *Entry
		for _, e := range q.entries {
			if !e.reduceEligible() {
				continue
			}
			if best == nil || e.deadline() < best.deadline() {
				best = e
			}
		}
		return best
	}
	return nil
}

// scanReduce is the seed runtime's full rescan: the first reduce-
// eligible job in submission order, starting at entry `from`.
func (q *Queue) scanReduce(from int) *Entry {
	for _, e := range q.entries[from:] {
		if e.reduceEligible() {
			return e
		}
	}
	return nil
}

// cursorReduce advances the indexed cursor past permanently-skippable
// entries, then scans from it. An entry is skippable when it is
// finished, map-only, or has all reducers assigned (ReduceReset rewinds
// the cursor when an assignment is undone); an unsubmitted job with
// reducers is *not* skippable — it can become the first eligible job
// later — so the cursor stops there and the residual scan covers the
// tail, exactly like the reference rescan.
func (q *Queue) cursorReduce() *Entry {
	for q.redCursor < len(q.entries) {
		e := q.entries[q.redCursor]
		if e.finished || e.NumReducers == 0 ||
			(e.submitted && e.reducersAssigned >= e.NumReducers) {
			q.redCursor++
			continue
		}
		break
	}
	return q.scanReduce(q.redCursor)
}

// ReduceGranted records a reduce-slot grant to job idx.
func (q *Queue) ReduceGranted(idx int) {
	e := q.entries[idx]
	e.reducersAssigned++
	e.runningReduces++
	q.redRunning[e.Meta.Tenant]++
}

// ReduceReleased records a reducer of job idx completing.
func (q *Queue) ReduceReleased(idx int) {
	e := q.entries[idx]
	e.runningReduces--
	q.redRunning[e.Meta.Tenant]--
}

// ReduceReset undoes a reducer assignment (failure recovery restarts
// the reducer elsewhere) and rewinds the cursor so the job is
// reconsidered.
func (q *Queue) ReduceReset(idx int) {
	e := q.entries[idx]
	e.reducersAssigned--
	e.runningReduces--
	q.redRunning[e.Meta.Tenant]--
	if idx < q.redCursor {
		q.redCursor = idx
	}
}

// JobFinished marks job idx finished; it leaves every ordering.
func (q *Queue) JobFinished(idx int) {
	q.entries[idx].finished = true
}

func (q *Queue) capFor(tenant string) int {
	if c, ok := q.cfg.TenantQuotas[tenant]; ok {
		return c
	}
	return q.cfg.QuotaSlots
}
