// Package jobsched is the job-level scheduling layer of the cluster
// runtime: the policy that decides which *jobs* may take map and reduce
// slots, sitting above the per-task placement schedulers of package
// sched (LF/BDF/EDF decide *where* a chosen job's tasks run). The
// runtime notifies the Queue of every job lifecycle transition — submit,
// slot grant/release, reducer reset, requeue after failure recovery,
// finish — and asks it per heartbeat for the ordered set of jobs
// eligible for assignment; sched.Env.Jobs is a view the policy produces
// rather than state the runtime mutates in place.
//
// Four policies ship: Fifo reproduces the seed runtime's submission-
// order queue bit-for-bit (pinned by the seed-golden trace tests),
// FairShare deficit-shares map-slot grants across tenants by weight,
// Quota caps each tenant's concurrent slots with overflow queueing, and
// Deadline orders jobs by earliest deadline (the paper's EDF naming
// lifted to the job layer).
package jobsched

import (
	"fmt"
	"sort"
)

// Kind selects a job-ordering policy.
type Kind int

const (
	// Fifo serves jobs in submission order, bit-identical to the
	// pre-jobsched runtime. The zero value, so existing callers that
	// leave Config empty keep their exact behavior.
	Fifo Kind = iota
	// FairShare orders tenants by weighted map-slot grants (lowest
	// grants-per-weight first), round-robining slots across tenants.
	FairShare
	// Quota serves jobs in submission order but skips tenants at their
	// concurrent-slot cap; their jobs queue until a slot frees.
	Quota
	// Deadline orders jobs by earliest deadline (jobs without one go
	// last, in submission order).
	Deadline
)

// String returns the flag-facing policy name.
func (k Kind) String() string {
	switch k {
	case Fifo:
		return "fifo"
	case FairShare:
		return "fairshare"
	case Quota:
		return "quota"
	case Deadline:
		return "deadline"
	}
	return fmt.Sprintf("jobsched.Kind(%d)", int(k))
}

// ParseKind parses a policy name as accepted by the -jobsched flags.
// The empty string selects Fifo.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "fifo":
		return Fifo, nil
	case "fairshare":
		return FairShare, nil
	case "quota":
		return Quota, nil
	case "deadline":
		return Deadline, nil
	}
	return 0, fmt.Errorf("jobsched: unknown policy %q (want fifo, fairshare, quota or deadline)", s)
}

// Config selects and parameterizes the job-level policy for one run.
// The zero value is the FIFO queue.
type Config struct {
	// Policy is the job-ordering policy.
	Policy Kind
	// QuotaSlots is the default per-tenant concurrent-slot cap under
	// Quota (0 = unlimited). The cap applies separately to map and
	// reduce slots and is enforced at heartbeat granularity: a single
	// heartbeat's batch of assignments to one eligible job may overshoot
	// by up to the node's free slots.
	QuotaSlots int
	// TenantQuotas overrides QuotaSlots per tenant.
	TenantQuotas map[string]int
	// ReferenceReduceScan selects the seed runtime's full rescan of all
	// jobs when picking the next reducer, instead of the indexed cursor.
	// The two are order-equivalent (pinned by tests); the rescan is kept
	// as the reference for equivalence testing and benchmarking.
	ReferenceReduceScan bool
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch c.Policy {
	case Fifo, FairShare, Quota, Deadline:
	default:
		return fmt.Errorf("jobsched: unknown policy %d", int(c.Policy))
	}
	if c.QuotaSlots < 0 {
		return fmt.Errorf("jobsched: QuotaSlots must be non-negative, got %d", c.QuotaSlots)
	}
	tenants := make([]string, 0, len(c.TenantQuotas))
	for t := range c.TenantQuotas {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if c.TenantQuotas[t] < 0 {
			return fmt.Errorf("jobsched: tenant %q quota must be non-negative, got %d", t, c.TenantQuotas[t])
		}
	}
	return nil
}
