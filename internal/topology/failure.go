package topology

import (
	"fmt"

	"degradedfirst/internal/stats"
)

// FailurePattern selects which failure scenario to inject, matching the
// patterns evaluated in Figure 7(d) of the paper.
type FailurePattern int

const (
	// NoFailure leaves the cluster in normal mode.
	NoFailure FailurePattern = iota
	// SingleNodeFailure fails one random node (the common case the paper
	// focuses on).
	SingleNodeFailure
	// DoubleNodeFailure fails two distinct random nodes.
	DoubleNodeFailure
	// RackFailure fails every node in one random rack.
	RackFailure
)

// String returns the pattern name.
func (p FailurePattern) String() string {
	switch p {
	case NoFailure:
		return "none"
	case SingleNodeFailure:
		return "single-node"
	case DoubleNodeFailure:
		return "double-node"
	case RackFailure:
		return "rack"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// FailedCount returns how many nodes the pattern fails in a cluster with
// the given per-rack node count (for RackFailure).
func (p FailurePattern) FailedCount(nodesPerRack int) int {
	switch p {
	case SingleNodeFailure:
		return 1
	case DoubleNodeFailure:
		return 2
	case RackFailure:
		return nodesPerRack
	default:
		return 0
	}
}

// InjectFailure applies the pattern to the cluster using rng for random
// choices, returning the failed node IDs. The cluster must have enough
// alive nodes; an error is returned otherwise.
func InjectFailure(c *Cluster, p FailurePattern, rng *stats.RNG) ([]NodeID, error) {
	switch p {
	case NoFailure:
		return nil, nil
	case SingleNodeFailure, DoubleNodeFailure:
		want := 1
		if p == DoubleNodeFailure {
			want = 2
		}
		alive := c.AliveNodes()
		if len(alive) <= want {
			return nil, fmt.Errorf("topology: cannot fail %d of %d alive nodes", want, len(alive))
		}
		var failed []NodeID
		for _, idx := range rng.PickK(len(alive), want) {
			id := alive[idx]
			c.FailNode(id)
			failed = append(failed, id)
		}
		return failed, nil
	case RackFailure:
		if c.NumRacks() < 2 {
			return nil, fmt.Errorf("topology: rack failure needs >= 2 racks, have %d", c.NumRacks())
		}
		r := RackID(rng.Intn(c.NumRacks()))
		failed := append([]NodeID(nil), c.RackNodes(r)...)
		c.FailRack(r)
		return failed, nil
	default:
		return nil, fmt.Errorf("topology: unknown failure pattern %v", p)
	}
}
