package topology

import (
	"testing"
	"testing/quick"

	"degradedfirst/internal/stats"
)

func defaultCfg() Config {
	return Config{Nodes: 40, Racks: 4, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Racks: 1, MapSlotsPerNode: 1},
		{Nodes: 4, Racks: 0, MapSlotsPerNode: 1},
		{Nodes: 2, Racks: 3, MapSlotsPerNode: 1},
		{Nodes: 4, Racks: 2, MapSlotsPerNode: 0},
		{Nodes: 4, Racks: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: -1},
		{Nodes: 4, Racks: 2, MapSlotsPerNode: 1, RackSizes: []int{4}},
		{Nodes: 4, Racks: 2, MapSlotsPerNode: 1, RackSizes: []int{3, 3}},
		{Nodes: 4, Racks: 2, MapSlotsPerNode: 1, RackSizes: []int{4, 0}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestEvenRackAssignment(t *testing.T) {
	c := MustNew(defaultCfg())
	if c.NumNodes() != 40 || c.NumRacks() != 4 {
		t.Fatalf("shape wrong: %d nodes %d racks", c.NumNodes(), c.NumRacks())
	}
	for r := 0; r < 4; r++ {
		if got := len(c.RackNodes(RackID(r))); got != 10 {
			t.Fatalf("rack %d has %d nodes, want 10", r, got)
		}
	}
	// Contiguous: node 0..9 rack 0, 10..19 rack 1, ...
	if c.RackOf(0) != 0 || c.RackOf(9) != 0 || c.RackOf(10) != 1 || c.RackOf(39) != 3 {
		t.Fatal("contiguous rack assignment violated")
	}
}

func TestUnevenRackAssignment(t *testing.T) {
	c := MustNew(Config{Nodes: 5, Racks: 2, MapSlotsPerNode: 2, RackSizes: []int{3, 2}})
	if len(c.RackNodes(0)) != 3 || len(c.RackNodes(1)) != 2 {
		t.Fatal("explicit rack sizes not honored")
	}
	// Round-robin fallback gives first racks the extra node.
	c2 := MustNew(Config{Nodes: 5, Racks: 2, MapSlotsPerNode: 2})
	if len(c2.RackNodes(0)) != 3 || len(c2.RackNodes(1)) != 2 {
		t.Fatal("uneven spread must differ by at most one, larger first")
	}
}

func TestFailureLifecycle(t *testing.T) {
	c := MustNew(defaultCfg())
	if len(c.AliveNodes()) != 40 || len(c.FailedNodes()) != 0 {
		t.Fatal("fresh cluster must be fully alive")
	}
	c.FailNode(7)
	c.FailNode(7) // idempotent
	if c.Alive(7) {
		t.Fatal("node 7 should be failed")
	}
	if len(c.AliveNodes()) != 39 || len(c.FailedNodes()) != 1 {
		t.Fatal("alive/failed counts wrong")
	}
	c.RecoverNode(7)
	if !c.Alive(7) {
		t.Fatal("node 7 should be recovered")
	}
	c.FailRack(2)
	if len(c.FailedNodes()) != 10 {
		t.Fatalf("rack failure should fail 10 nodes, got %d", len(c.FailedNodes()))
	}
	for _, id := range c.RackNodes(2) {
		if c.Alive(id) {
			t.Fatalf("node %d in failed rack still alive", id)
		}
	}
}

func TestLocalityOf(t *testing.T) {
	c := MustNew(Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
	if got := c.LocalityOf(0, 0); got != NodeLocal {
		t.Fatalf("self = %v", got)
	}
	if got := c.LocalityOf(0, 1); got != RackLocal {
		t.Fatalf("same rack = %v", got)
	}
	if got := c.LocalityOf(0, 2); got != Remote {
		t.Fatalf("cross rack = %v", got)
	}
	if !NodeLocal.IsLocal() || !RackLocal.IsLocal() || Remote.IsLocal() {
		t.Fatal("IsLocal classification wrong")
	}
	for _, l := range []Locality{NodeLocal, RackLocal, Remote, Locality(9)} {
		if l.String() == "" {
			t.Fatal("String must render")
		}
	}
}

func TestSlotTotalsExcludeFailed(t *testing.T) {
	c := MustNew(defaultCfg())
	if c.TotalMapSlots() != 160 || c.TotalReduceSlots() != 40 {
		t.Fatalf("slot totals wrong: %d/%d", c.TotalMapSlots(), c.TotalReduceSlots())
	}
	c.FailNode(0)
	if c.TotalMapSlots() != 156 || c.TotalReduceSlots() != 39 {
		t.Fatalf("slot totals after failure wrong: %d/%d", c.TotalMapSlots(), c.TotalReduceSlots())
	}
}

func TestSetSpeedFactor(t *testing.T) {
	c := MustNew(defaultCfg())
	if err := c.SetSpeedFactor(3, 2.0); err != nil {
		t.Fatal(err)
	}
	if c.Node(3).SpeedFactor != 2.0 {
		t.Fatal("speed factor not applied")
	}
	if err := c.SetSpeedFactor(3, 0); err == nil {
		t.Fatal("non-positive speed factor must error")
	}
}

func TestInjectFailurePatterns(t *testing.T) {
	rng := stats.NewRNG(1)
	c := MustNew(defaultCfg())
	if failed, err := InjectFailure(c, NoFailure, rng); err != nil || failed != nil {
		t.Fatalf("NoFailure: %v %v", failed, err)
	}
	failed, err := InjectFailure(c, SingleNodeFailure, rng)
	if err != nil || len(failed) != 1 {
		t.Fatalf("single: %v %v", failed, err)
	}
	c2 := MustNew(defaultCfg())
	failed, err = InjectFailure(c2, DoubleNodeFailure, rng)
	if err != nil || len(failed) != 2 || failed[0] == failed[1] {
		t.Fatalf("double: %v %v", failed, err)
	}
	c3 := MustNew(defaultCfg())
	failed, err = InjectFailure(c3, RackFailure, rng)
	if err != nil || len(failed) != 10 {
		t.Fatalf("rack: %v %v", failed, err)
	}
	r := c3.RackOf(failed[0])
	for _, id := range failed {
		if c3.RackOf(id) != r {
			t.Fatal("rack failure crossed racks")
		}
	}
}

func TestInjectFailureErrors(t *testing.T) {
	rng := stats.NewRNG(2)
	tiny := MustNew(Config{Nodes: 1, Racks: 1, MapSlotsPerNode: 1})
	if _, err := InjectFailure(tiny, SingleNodeFailure, rng); err == nil {
		t.Fatal("failing the only node must error")
	}
	if _, err := InjectFailure(tiny, RackFailure, rng); err == nil {
		t.Fatal("rack failure with one rack must error")
	}
	if _, err := InjectFailure(tiny, FailurePattern(42), rng); err == nil {
		t.Fatal("unknown pattern must error")
	}
}

func TestFailurePatternStrings(t *testing.T) {
	for _, p := range []FailurePattern{NoFailure, SingleNodeFailure, DoubleNodeFailure, RackFailure, FailurePattern(9)} {
		if p.String() == "" {
			t.Fatal("String must render")
		}
	}
	if SingleNodeFailure.FailedCount(10) != 1 || DoubleNodeFailure.FailedCount(10) != 2 ||
		RackFailure.FailedCount(10) != 10 || NoFailure.FailedCount(10) != 0 {
		t.Fatal("FailedCount wrong")
	}
}

func TestRackAssignmentProperty(t *testing.T) {
	// Property: every node is in exactly one rack and rack sizes differ by
	// at most one under round-robin assignment.
	f := func(nSeed, rSeed uint8) bool {
		n := 1 + int(nSeed)%60
		r := 1 + int(rSeed)%8
		if r > n {
			r = n
		}
		c, err := New(Config{Nodes: n, Racks: r, MapSlotsPerNode: 1})
		if err != nil {
			return false
		}
		count := 0
		minSz, maxSz := n+1, -1
		for rack := 0; rack < r; rack++ {
			sz := len(c.RackNodes(RackID(rack)))
			count += sz
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return count == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
