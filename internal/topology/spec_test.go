package topology

import (
	"math"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Nodes: 4},
		{Nodes: 0, Tiers: []Tier{{Name: "rack", Count: 2}}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 0}}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 5}}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 2}, {Name: "pod", Count: 3}}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 2, LinkBps: -1}}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 2}}, NodeBps: math.NaN()},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 2}}, LeafSizes: []int{4}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 2}}, LeafSizes: []int{3, 3}},
		{Nodes: 4, Tiers: []Tier{{Name: "rack", Count: 2}}, LeafSizes: []int{4, 0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d must fail validation: %+v", i, s)
		}
	}
	good := TwoLevel(5, 2, 0, 100, 0)
	good.LeafSizes = []int{3, 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestClosOversubscriptionHoldsByConstruction(t *testing.T) {
	// 4 pods x 4 edges x 4 nodes, 1.0 NIC units, edge 4:1, pod 2:1.
	spec, err := Clos(ClosConfig{
		Nodes:   64,
		NodeBps: 1000,
		Tiers: []ClosTier{
			{Name: "edge", Count: 16, Oversub: 4},
			{Name: "pod", Count: 4, Oversub: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Edge uplink carries 1/4 of its 4 NICs' aggregate.
	if got, want := spec.Tiers[0].LinkBps, 4*1000.0/4; got != want {
		t.Fatalf("edge uplink = %v, want %v", got, want)
	}
	// Pod uplink carries 1/2 of its 4 edge uplinks' aggregate.
	if got, want := spec.Tiers[1].LinkBps, 4*1000.0/2; got != want {
		t.Fatalf("pod uplink = %v, want %v", got, want)
	}
	// Non-blocking core: aggregate of the 4 pod uplinks.
	if got, want := spec.CoreBps, 4*2000.0; got != want {
		t.Fatalf("core = %v, want %v", got, want)
	}
	// The ratio invariant, directly: uplink * oversub == child aggregate.
	if spec.Tiers[0].LinkBps*4 != 4*1000.0 || spec.Tiers[1].LinkBps*2 != 4*spec.Tiers[0].LinkBps {
		t.Fatal("oversubscription ratios do not hold")
	}
}

func TestClosRejectsUnevenAndUnderivable(t *testing.T) {
	if _, err := Clos(ClosConfig{Nodes: 10, NodeBps: 1, Tiers: []ClosTier{{Name: "edge", Count: 4}}}); err == nil {
		t.Fatal("uneven node/edge split must fail")
	}
	if _, err := Clos(ClosConfig{Nodes: 8, Tiers: []ClosTier{{Name: "edge", Count: 4}}}); err == nil {
		t.Fatal("oversubscription without NodeBps must fail")
	}
	// Explicit LinkBps rescues the underivable case.
	if _, err := Clos(ClosConfig{Nodes: 8, Tiers: []ClosTier{{Name: "edge", Count: 4, LinkBps: 500}}, CoreBps: math.Inf(1)}); err != nil {
		t.Fatalf("explicit LinkBps must validate: %v", err)
	}
}

func TestFatTreeShape(t *testing.T) {
	spec, err := FatTree(FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3,
		NodeBps: 100, EdgeOversub: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 12 || len(spec.Tiers) != 2 {
		t.Fatalf("unexpected shape: %+v", spec)
	}
	if spec.Tiers[0].Count != 4 || spec.Tiers[0].Name != "edge" {
		t.Fatalf("edge tier wrong: %+v", spec.Tiers[0])
	}
	if spec.Tiers[1].Count != 2 || spec.Tiers[1].Name != "pod" {
		t.Fatalf("pod tier wrong: %+v", spec.Tiers[1])
	}
	if spec.Tiers[0].LinkBps != 100 { // 3*100/3
		t.Fatalf("edge uplink = %v, want 100", spec.Tiers[0].LinkBps)
	}
	if _, err := FatTree(FatTreeConfig{Pods: 0, EdgesPerPod: 1, NodesPerEdge: 1, NodeBps: 1}); err == nil {
		t.Fatal("zero pods must fail")
	}
	if _, err := FatTree(FatTreeConfig{Pods: 1, EdgesPerPod: 1, NodesPerEdge: 1}); err == nil {
		t.Fatal("missing NodeBps must fail")
	}
}

// fatTreeCluster is the shared 12-node 2x2x3 multi-tier test cluster.
func fatTreeCluster(t *testing.T) *Cluster {
	t.Helper()
	spec, err := FatTree(FatTreeConfig{Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3, NodeBps: 100})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFromSpec(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMultiTierClusterCoords(t *testing.T) {
	c := fatTreeCluster(t)
	if c.NumNodes() != 12 || c.NumRacks() != 4 || c.NumTiers() != 2 {
		t.Fatalf("shape: %d nodes, %d racks, %d tiers", c.NumNodes(), c.NumRacks(), c.NumTiers())
	}
	for id := 0; id < 12; id++ {
		wantEdge := id / 3
		wantPod := id / 6
		if got := c.GroupOf(NodeID(id), 0); got != wantEdge {
			t.Fatalf("node %d edge = %d, want %d", id, got, wantEdge)
		}
		if got := c.GroupOf(NodeID(id), 1); got != wantPod {
			t.Fatalf("node %d pod = %d, want %d", id, got, wantPod)
		}
		if got := c.RackOf(NodeID(id)); int(got) != wantEdge {
			t.Fatalf("node %d rack = %d, want edge %d", id, got, wantEdge)
		}
	}
	// Hierarchy invariant: same leaf implies same coordinates everywhere.
	for a := 0; a < 12; a++ {
		for b := 0; b < 12; b++ {
			if c.GroupOf(NodeID(a), 0) == c.GroupOf(NodeID(b), 0) &&
				c.GroupOf(NodeID(a), 1) != c.GroupOf(NodeID(b), 1) {
				t.Fatalf("nodes %d,%d share an edge but not a pod", a, b)
			}
		}
	}
}

func TestHopDistanceMetric(t *testing.T) {
	c := fatTreeCluster(t)
	// Same node 0; same edge 2; same pod (cross edge) 4; cross pod 7
	// (core fabric adds one).
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 2},  // edge 0, edge 0
		{0, 3, 4},  // edge 0 -> edge 1, pod 0
		{0, 6, 7},  // pod 0 -> pod 1
		{5, 11, 7}, // pod 0 -> pod 1
	}
	for _, tc := range cases {
		if got := c.HopDistance(NodeID(tc.a), NodeID(tc.b)); got != tc.want {
			t.Errorf("HopDistance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	// Symmetry and identity, exhaustively.
	for a := 0; a < 12; a++ {
		for b := 0; b < 12; b++ {
			d, r := c.HopDistance(NodeID(a), NodeID(b)), c.HopDistance(NodeID(b), NodeID(a))
			if d != r {
				t.Fatalf("asymmetric distance %d,%d: %d vs %d", a, b, d, r)
			}
			if (d == 0) != (a == b) {
				t.Fatalf("distance %d between %d and %d", d, a, b)
			}
		}
	}
}

func TestLocalityIsTwoLevelProjectionOfHopDistance(t *testing.T) {
	for _, c := range []*Cluster{
		fatTreeCluster(t),
		MustNew(Config{Nodes: 8, Racks: 3, MapSlotsPerNode: 1}),
	} {
		n := c.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := Remote
				switch c.HopDistance(NodeID(a), NodeID(b)) {
				case 0:
					want = NodeLocal
				case 2:
					want = RackLocal
				}
				if got := c.LocalityOf(NodeID(a), NodeID(b)); got != want {
					t.Fatalf("LocalityOf(%d,%d) = %v, want %v (dist %d)",
						a, b, got, want, c.HopDistance(NodeID(a), NodeID(b)))
				}
			}
		}
	}
}

func TestTwoLevelSpecMatchesLegacyConfig(t *testing.T) {
	legacy := MustNew(Config{Nodes: 10, Racks: 3, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1})
	spec := TwoLevel(10, 3, 0, 0, 0)
	fromSpec, err := NewFromSpec(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fromSpec.NumRacks() != legacy.NumRacks() {
		t.Fatalf("rack counts differ: %d vs %d", fromSpec.NumRacks(), legacy.NumRacks())
	}
	for id := 0; id < 10; id++ {
		if legacy.RackOf(NodeID(id)) != fromSpec.RackOf(NodeID(id)) {
			t.Fatalf("node %d rack differs: %d vs %d", id, legacy.RackOf(NodeID(id)), fromSpec.RackOf(NodeID(id)))
		}
		if legacy.HopDistance(0, NodeID(id)) != fromSpec.HopDistance(0, NodeID(id)) {
			t.Fatalf("node %d distance differs", id)
		}
	}
	// Legacy two-level distances: 0 same node, 2 same rack, 5 cross-rack
	// (NICs + rack up/down + core).
	if d := legacy.HopDistance(0, 1); d != 2 {
		t.Fatalf("same-rack distance = %d, want 2", d)
	}
	if d := legacy.HopDistance(0, 9); d != 5 {
		t.Fatalf("cross-rack distance = %d, want 5", d)
	}
}

func TestSpecExcludesLegacyFields(t *testing.T) {
	spec := TwoLevel(4, 2, 0, 0, 0)
	if _, err := New(Config{Nodes: 4, Spec: &spec, MapSlotsPerNode: 1}); err == nil {
		t.Fatal("Spec alongside Nodes must fail")
	}
}
