// Multi-tier topology specification. The paper's cluster model is a
// two-level star — per-node NICs under top-of-rack switches under one
// core — but production clusters are multi-tier Clos/fat-tree fabrics
// with oversubscription and heterogeneous link speeds. Spec generalizes
// the shape: nodes sit below a stack of switching tiers (racks / edge
// switches, pods / aggregation groups, ...) capped by an implicit core
// root. Membership is hierarchical and contiguous, so the fabric is a
// tree and every node pair has exactly one deterministic path:
//
//	node --(NIC)--> leaf group --(tier up)--> ... --(core)--> ... --> node
//
// climbing only as far as the lowest tier the two nodes share. The
// two-level cluster of the paper is the one-tier projection (Tiers =
// [rack]); TwoLevel builds it, and FatTree/Clos build deeper fabrics
// whose per-tier uplink capacities are derived from oversubscription
// ratios, so the ratios hold by construction.
//
// Capacities follow netsim's convention: bytes per second, 0 = unlimited.
// An aggregation tier models its group's whole switch layer as one
// up/down pipe (the standard flow-level simplification); the core is a
// single fabric link crossed by all root-crossing traffic, exactly like
// the legacy CoreBps.
package topology

import (
	"fmt"
	"math"
)

// Tier is one switching level above the nodes.
type Tier struct {
	// Name labels links of this tier ("rack", "edge", "pod", ...).
	Name string
	// Count is the number of groups at this tier.
	Count int
	// LinkBps is each group's up/down capacity toward the tier above
	// (bytes/sec each direction; 0 = unlimited).
	LinkBps float64
}

// Spec describes a multi-tier cluster fabric. The zero Spec is invalid;
// build one with TwoLevel, FatTree, Clos, or a literal.
type Spec struct {
	// Nodes is the server count.
	Nodes int
	// Tiers are the switching levels bottom-up: Tiers[0] groups nodes
	// (the paper's racks), each later tier groups the previous tier's
	// groups, and an implicit core root sits above the last tier.
	Tiers []Tier
	// NodeBps is each node's NIC capacity per direction (0 = unlimited).
	NodeBps float64
	// CoreBps is the root fabric capacity shared by all traffic whose
	// lowest common tier is the core (0 = unlimited).
	CoreBps float64
	// LeafSizes optionally sets explicit Tiers[0] group sizes (summing
	// to Nodes), overriding contiguous spreading — the generalization of
	// the legacy Config.RackSizes.
	LeafSizes []int
}

// Validate checks the spec's structural invariants.
func (s *Spec) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("topology: spec needs positive Nodes, got %d", s.Nodes)
	}
	if len(s.Tiers) == 0 {
		return fmt.Errorf("topology: spec needs at least one tier")
	}
	prev := s.Nodes
	for i, tier := range s.Tiers {
		if tier.Count <= 0 {
			return fmt.Errorf("topology: tier %d (%s) has non-positive count %d", i, tier.Name, tier.Count)
		}
		if tier.Count > prev {
			return fmt.Errorf("topology: tier %d (%s) has more groups (%d) than members below (%d)", i, tier.Name, tier.Count, prev)
		}
		if tier.LinkBps < 0 || math.IsNaN(tier.LinkBps) {
			return fmt.Errorf("topology: tier %d (%s) has invalid capacity %v", i, tier.Name, tier.LinkBps)
		}
		prev = tier.Count
	}
	if s.NodeBps < 0 || math.IsNaN(s.NodeBps) || s.CoreBps < 0 || math.IsNaN(s.CoreBps) {
		return fmt.Errorf("topology: spec has invalid node/core capacity (%v, %v)", s.NodeBps, s.CoreBps)
	}
	if len(s.LeafSizes) > 0 {
		if len(s.LeafSizes) != s.Tiers[0].Count {
			return fmt.Errorf("topology: LeafSizes has %d entries, want %d", len(s.LeafSizes), s.Tiers[0].Count)
		}
		total := 0
		for g, sz := range s.LeafSizes {
			if sz <= 0 {
				return fmt.Errorf("topology: leaf group %d has non-positive size %d", g, sz)
			}
			total += sz
		}
		if total != s.Nodes {
			return fmt.Errorf("topology: LeafSizes sum to %d, want %d nodes", total, s.Nodes)
		}
	}
	return nil
}

// NumLeaves returns the leaf (rack) group count.
func (s *Spec) NumLeaves() int { return s.Tiers[0].Count }

// spread assigns n children contiguously to m parents, the first
// (n mod m) parents one child larger — the legacy rack-spreading rule,
// applied at every tier. Returns the parent of each child.
func spread(n, m int) []int {
	out := make([]int, 0, n)
	base, extra := n/m, n%m
	for p := 0; p < m; p++ {
		sz := base
		if p < extra {
			sz++
		}
		for i := 0; i < sz; i++ {
			out = append(out, p)
		}
	}
	return out
}

// memberCoords derives every node's group index at every tier. The
// result is coords[node][tier]; higher-tier coordinates are a pure
// function of the leaf group, so the fabric is a tree.
func (s *Spec) memberCoords() [][]int {
	leafOf := make([]int, 0, s.Nodes)
	if len(s.LeafSizes) > 0 {
		for g, sz := range s.LeafSizes {
			for i := 0; i < sz; i++ {
				leafOf = append(leafOf, g)
			}
		}
	} else {
		leafOf = spread(s.Nodes, s.Tiers[0].Count)
	}
	// parentOf[t][g] = group of tier t+1 containing group g of tier t.
	parentOf := make([][]int, len(s.Tiers)-1)
	for t := 0; t < len(s.Tiers)-1; t++ {
		parentOf[t] = spread(s.Tiers[t].Count, s.Tiers[t+1].Count)
	}
	coords := make([][]int, s.Nodes)
	backing := make([]int, s.Nodes*len(s.Tiers))
	for id := 0; id < s.Nodes; id++ {
		c := backing[id*len(s.Tiers) : (id+1)*len(s.Tiers) : (id+1)*len(s.Tiers)]
		c[0] = leafOf[id]
		for t := 1; t < len(s.Tiers); t++ {
			c[t] = parentOf[t-1][c[t-1]]
		}
		coords[id] = c
	}
	return coords
}

// TwoLevel is the paper's shape as a Spec: racks under one core. Zero
// capacities mean unlimited, matching the legacy netsim Config fields.
func TwoLevel(nodes, racks int, nodeBps, rackBps, coreBps float64) Spec {
	return Spec{
		Nodes:   nodes,
		Tiers:   []Tier{{Name: "rack", Count: racks, LinkBps: rackBps}},
		NodeBps: nodeBps,
		CoreBps: coreBps,
	}
}

// ClosTier sizes one switching level of a Clos fabric, bottom-up.
type ClosTier struct {
	// Name labels the tier's links.
	Name string
	// Count is the group count at this tier.
	Count int
	// Oversub is the uplink oversubscription ratio: each group's uplink
	// capacity is (aggregate capacity of its children's uplinks) / Oversub.
	// Zero means 1 (non-blocking).
	Oversub float64
	// LinkBps, when positive, sets the uplink capacity explicitly
	// (heterogeneous fabrics), overriding the Oversub derivation.
	LinkBps float64
}

// ClosConfig describes a multi-tier Clos fabric to derive a Spec from.
type ClosConfig struct {
	// Nodes is the server count; NodeBps each NIC's capacity. NodeBps
	// must be positive unless every tier sets LinkBps explicitly, since
	// oversubscription ratios are anchored at the NIC capacity.
	Nodes   int
	NodeBps float64
	// Tiers are the switching levels bottom-up (racks/edge first).
	Tiers []ClosTier
	// CoreBps caps the root fabric; 0 derives a non-blocking core
	// (the aggregate uplink capacity of the top tier). Use math.Inf(1)
	// for an explicitly unlimited core.
	CoreBps float64
}

// Clos derives a Spec from per-tier oversubscription ratios, so the
// configured ratios hold by construction: a tier group's uplink carries
// 1/Oversub of the aggregate capacity entering it from below.
func Clos(cfg ClosConfig) (Spec, error) {
	if cfg.Nodes <= 0 {
		return Spec{}, fmt.Errorf("topology: Clos needs positive Nodes, got %d", cfg.Nodes)
	}
	if len(cfg.Tiers) == 0 {
		return Spec{}, fmt.Errorf("topology: Clos needs at least one tier")
	}
	spec := Spec{Nodes: cfg.Nodes, NodeBps: cfg.NodeBps, Tiers: make([]Tier, len(cfg.Tiers))}
	below := cfg.Nodes      // members per level below the current tier
	belowBps := cfg.NodeBps // each member's uplink capacity
	for i, ct := range cfg.Tiers {
		if ct.Count <= 0 {
			return Spec{}, fmt.Errorf("topology: Clos tier %d (%s) has non-positive count %d", i, ct.Name, ct.Count)
		}
		if below%ct.Count != 0 {
			return Spec{}, fmt.Errorf("topology: Clos tier %d (%s): %d members below do not divide evenly into %d groups", i, ct.Name, below, ct.Count)
		}
		oversub := ct.Oversub
		if oversub == 0 {
			oversub = 1
		}
		if oversub < 0 || math.IsNaN(oversub) {
			return Spec{}, fmt.Errorf("topology: Clos tier %d (%s) has invalid oversubscription %v", i, ct.Name, ct.Oversub)
		}
		bps := ct.LinkBps
		if bps == 0 {
			if belowBps <= 0 {
				return Spec{}, fmt.Errorf("topology: Clos tier %d (%s): cannot derive capacity from oversubscription without NodeBps (set LinkBps explicitly)", i, ct.Name)
			}
			bps = float64(below/ct.Count) * belowBps / oversub
		}
		spec.Tiers[i] = Tier{Name: ct.Name, Count: ct.Count, LinkBps: bps}
		below = ct.Count
		belowBps = bps
	}
	switch {
	case cfg.CoreBps == 0 && belowBps > 0:
		spec.CoreBps = float64(below) * belowBps // non-blocking root
	case math.IsInf(cfg.CoreBps, 1):
		spec.CoreBps = 0 // unlimited, in Spec's 0-means-unlimited convention
	default:
		spec.CoreBps = cfg.CoreBps
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// FatTreeConfig sizes a three-tier fat tree: nodes under edge (ToR)
// switches, edges grouped into pods, pods under the core.
type FatTreeConfig struct {
	Pods         int
	EdgesPerPod  int
	NodesPerEdge int
	// NodeBps is the NIC capacity the oversubscription ratios are
	// anchored at; must be positive.
	NodeBps float64
	// EdgeOversub and PodOversub are the uplink oversubscription ratios
	// at the edge and pod tiers (0 = 1, non-blocking).
	EdgeOversub float64
	PodOversub  float64
	// CoreBps caps the core; 0 derives a non-blocking core.
	CoreBps float64
}

// FatTree derives a pod/edge fat-tree Spec from oversubscription ratios.
func FatTree(cfg FatTreeConfig) (Spec, error) {
	if cfg.Pods <= 0 || cfg.EdgesPerPod <= 0 || cfg.NodesPerEdge <= 0 {
		return Spec{}, fmt.Errorf("topology: FatTree needs positive pods/edges/nodes, got %d/%d/%d",
			cfg.Pods, cfg.EdgesPerPod, cfg.NodesPerEdge)
	}
	if cfg.NodeBps <= 0 {
		return Spec{}, fmt.Errorf("topology: FatTree needs positive NodeBps to anchor oversubscription, got %v", cfg.NodeBps)
	}
	return Clos(ClosConfig{
		Nodes:   cfg.Pods * cfg.EdgesPerPod * cfg.NodesPerEdge,
		NodeBps: cfg.NodeBps,
		Tiers: []ClosTier{
			{Name: "edge", Count: cfg.Pods * cfg.EdgesPerPod, Oversub: cfg.EdgeOversub},
			{Name: "pod", Count: cfg.Pods, Oversub: cfg.PodOversub},
		},
		CoreBps: cfg.CoreBps,
	})
}
