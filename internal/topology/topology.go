// Package topology models the physical shape of the storage cluster: nodes
// (servers) grouped into racks connected by a two-level switch hierarchy
// (top-of-rack switches under a core switch), per-node task slots and
// processing speeds, and failure state.
//
// It corresponds to the cluster model of Section II-A / Figure 1 of the
// paper, including heterogeneous clusters (Section V-C) where some nodes
// have worse processing power.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a node; IDs are dense in [0, NumNodes).
type NodeID int

// RackID identifies a rack; IDs are dense in [0, NumRacks).
type RackID int

// Locality classifies where a map task's input block lives relative to the
// node the task runs on (Section II-A). NodeLocal and RackLocal are
// collectively "local" in the paper's terminology.
type Locality int

const (
	// NodeLocal: the block is stored on the same node.
	NodeLocal Locality = iota
	// RackLocal: the block is on another node of the same rack.
	RackLocal
	// Remote: the block is on a node in a different rack.
	Remote
)

// String returns the locality name.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("locality(%d)", int(l))
	}
}

// IsLocal reports whether l counts as "local" in the paper's sense
// (node-local or rack-local).
func (l Locality) IsLocal() bool { return l == NodeLocal || l == RackLocal }

// Node is one server in the cluster.
type Node struct {
	ID   NodeID
	Rack RackID
	// MapSlots and ReduceSlots bound concurrent map/reduce tasks.
	MapSlots    int
	ReduceSlots int
	// SpeedFactor scales task processing times on this node: 1.0 is the
	// baseline; 2.0 means tasks take twice as long (a "bad" node in the
	// paper's heterogeneous and extreme scenarios).
	SpeedFactor float64

	failed bool
}

// Failed reports whether the node is currently failed.
func (n *Node) Failed() bool { return n.failed }

// Config describes a cluster to build.
type Config struct {
	// Nodes is the total number of nodes (excluding the master, which is
	// not modelled as a storage/compute node).
	Nodes int
	// Racks is the number of racks; nodes are spread round-robin so racks
	// differ in size by at most one (the paper uses evenly divisible
	// configurations; the motivating example uses 3+2).
	Racks int
	// MapSlotsPerNode and ReduceSlotsPerNode set per-node slot counts.
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// RackSizes optionally sets explicit rack sizes (summing to Nodes),
	// overriding round-robin spreading — used for the paper's 3+2
	// motivating example.
	RackSizes []int
	// Spec, when set, builds a multi-tier cluster from the given fabric
	// spec instead of the two-level Nodes/Racks/RackSizes fields (which
	// must then be zero). Racks become the spec's leaf (tier-0) groups,
	// so all rack-keyed logic — placement constraints, EDF rack
	// awareness, failure patterns — operates on leaf groups unchanged.
	Spec *Spec
}

// Cluster is a set of nodes grouped into racks plus failure state. It is
// not safe for concurrent mutation; the simulator drives it from a single
// goroutine.
type Cluster struct {
	nodes []*Node
	racks [][]NodeID
	// spec is the fabric shape; legacy two-level configs get a one-tier
	// spec with unlimited capacities (netsim supplies legacy speeds).
	spec Spec
	// coords[node][tier] is the node's group index at each tier;
	// coords[node][0] is its rack. Rows are views into one backing
	// array, immutable after construction.
	coords [][]int
}

// New builds a cluster from the config. Every node starts alive with
// SpeedFactor 1.0.
func New(cfg Config) (*Cluster, error) {
	if cfg.MapSlotsPerNode <= 0 {
		return nil, errors.New("topology: MapSlotsPerNode must be positive")
	}
	if cfg.ReduceSlotsPerNode < 0 {
		return nil, errors.New("topology: ReduceSlotsPerNode must be non-negative")
	}
	spec := Spec{}
	if cfg.Spec != nil {
		if cfg.Nodes != 0 || cfg.Racks != 0 || len(cfg.RackSizes) != 0 {
			return nil, errors.New("topology: Spec excludes the Nodes/Racks/RackSizes fields")
		}
		spec = *cfg.Spec
	} else {
		if cfg.Nodes <= 0 {
			return nil, errors.New("topology: Nodes must be positive")
		}
		if cfg.Racks <= 0 {
			return nil, errors.New("topology: Racks must be positive")
		}
		if cfg.Racks > cfg.Nodes {
			return nil, fmt.Errorf("topology: more racks (%d) than nodes (%d)", cfg.Racks, cfg.Nodes)
		}
		if len(cfg.RackSizes) > 0 && len(cfg.RackSizes) != cfg.Racks {
			return nil, fmt.Errorf("topology: RackSizes has %d entries, want %d", len(cfg.RackSizes), cfg.Racks)
		}
		spec = TwoLevel(cfg.Nodes, cfg.Racks, 0, 0, 0)
		spec.LeafSizes = cfg.RackSizes
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	coords := spec.memberCoords()
	c := &Cluster{
		nodes:  make([]*Node, spec.Nodes),
		racks:  make([][]NodeID, spec.NumLeaves()),
		spec:   spec,
		coords: coords,
	}
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{
			ID:          NodeID(i),
			Rack:        RackID(coords[i][0]),
			MapSlots:    cfg.MapSlotsPerNode,
			ReduceSlots: cfg.ReduceSlotsPerNode,
			SpeedFactor: 1.0,
		}
		c.nodes[i] = n
		c.racks[n.Rack] = append(c.racks[n.Rack], n.ID)
	}
	return c, nil
}

// NewFromSpec builds a multi-tier cluster from a fabric spec.
func NewFromSpec(spec Spec, mapSlotsPerNode, reduceSlotsPerNode int) (*Cluster, error) {
	return New(Config{Spec: &spec, MapSlotsPerNode: mapSlotsPerNode, ReduceSlotsPerNode: reduceSlotsPerNode})
}

// MustNew is New but panics on error; for known-good literal configs.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("topology: MustNew(%d nodes, %d racks): %v", cfg.Nodes, cfg.Racks, err))
	}
	return c
}

// NumNodes returns the total node count (alive or failed).
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NumRacks returns the rack count.
func (c *Cluster) NumRacks() int { return len(c.racks) }

// Node returns the node with the given ID. Panics on out-of-range IDs:
// IDs are produced by this package, so that is a programming error.
func (c *Cluster) Node(id NodeID) *Node {
	return c.nodes[id]
}

// Nodes returns all nodes in ID order. The slice is shared; do not modify.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// RackNodes returns the IDs of the nodes in rack r, in ID order.
func (c *Cluster) RackNodes(r RackID) []NodeID { return c.racks[r] }

// RackOf returns the rack containing node id.
func (c *Cluster) RackOf(id NodeID) RackID { return c.nodes[id].Rack }

// Alive reports whether node id is not failed.
func (c *Cluster) Alive(id NodeID) bool { return !c.nodes[id].failed }

// AliveNodes returns the IDs of all non-failed nodes, in ID order.
func (c *Cluster) AliveNodes() []NodeID {
	out := make([]NodeID, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.failed {
			out = append(out, n.ID)
		}
	}
	return out
}

// FailedNodes returns the IDs of all failed nodes, in ID order.
func (c *Cluster) FailedNodes() []NodeID {
	var out []NodeID
	for _, n := range c.nodes {
		if n.failed {
			out = append(out, n.ID)
		}
	}
	return out
}

// FailNode marks node id as failed. Failing an already-failed node is a
// no-op.
func (c *Cluster) FailNode(id NodeID) { c.nodes[id].failed = true }

// RecoverNode clears the failed state of node id.
func (c *Cluster) RecoverNode(id NodeID) { c.nodes[id].failed = false }

// FailRack fails every node in rack r (the paper's rack-failure pattern).
func (c *Cluster) FailRack(r RackID) {
	for _, id := range c.racks[r] {
		c.nodes[id].failed = true
	}
}

// SetSpeedFactor sets the processing-time multiplier of node id.
func (c *Cluster) SetSpeedFactor(id NodeID, f float64) error {
	if f <= 0 {
		return fmt.Errorf("topology: speed factor must be positive, got %v", f)
	}
	c.nodes[id].SpeedFactor = f
	return nil
}

// LocalityOf classifies where block-holder `holder` is relative to
// executing node `exec`. It is the two-level projection of HopDistance:
// distance 0 is node-local, distance 2 (same leaf group) rack-local,
// anything farther remote.
func (c *Cluster) LocalityOf(exec, holder NodeID) Locality {
	switch {
	case exec == holder:
		return NodeLocal
	case c.nodes[exec].Rack == c.nodes[holder].Rack:
		return RackLocal
	default:
		return Remote
	}
}

// Spec returns the cluster's fabric spec. Legacy two-level configs carry
// a one-tier spec with unlimited capacities. The pointee is shared; do
// not modify.
func (c *Cluster) Spec() *Spec { return &c.spec }

// NumTiers returns the number of switching tiers above the nodes
// (excluding the implicit core root). Two-level clusters have 1.
func (c *Cluster) NumTiers() int { return len(c.spec.Tiers) }

// GroupOf returns node id's group index at the given tier (tier 0 is the
// rack/leaf tier).
func (c *Cluster) GroupOf(id NodeID, tier int) int { return c.coords[id][tier] }

// NodeCoords returns node id's group index at every tier, leaf first.
// The slice is shared and immutable; do not modify.
func (c *Cluster) NodeCoords(id NodeID) []int { return c.coords[id] }

// SharedTier returns the lowest switching tier a and b share: 0 when
// they are in the same leaf group (rack), len(Tiers) when only the core
// root connects them, and -1 when a == b. It is the path's turning
// point: traffic climbs exactly SharedTier up-links on each side.
func (c *Cluster) SharedTier(a, b NodeID) int {
	if a == b {
		return -1
	}
	ca, cb := c.coords[a], c.coords[b]
	for t := range ca {
		if ca[t] == cb[t] {
			return t
		}
	}
	return len(ca)
}

// HopDistance is the deterministic path length between two nodes in
// links (NICs and the core fabric included): 0 for the same node, 2
// within a leaf group, rising by 2 per tier climbed, plus 1 for the core
// fabric when only the root connects the pair. On two-level clusters the
// values 0/2/5 project exactly onto NodeLocal/RackLocal/Remote; netsim's
// per-pair link path has exactly this many links.
func (c *Cluster) HopDistance(a, b NodeID) int {
	if a == b {
		return 0
	}
	l := c.SharedTier(a, b)
	d := 2 + 2*l
	if l == len(c.spec.Tiers) {
		d++ // the core fabric link
	}
	return d
}

// TotalMapSlots returns the sum of map slots over alive nodes.
func (c *Cluster) TotalMapSlots() int {
	total := 0
	for _, n := range c.nodes {
		if !n.failed {
			total += n.MapSlots
		}
	}
	return total
}

// TotalReduceSlots returns the sum of reduce slots over alive nodes.
func (c *Cluster) TotalReduceSlots() int {
	total := 0
	for _, n := range c.nodes {
		if !n.failed {
			total += n.ReduceSlots
		}
	}
	return total
}
