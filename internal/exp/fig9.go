package exp

import (
	"context"
	"fmt"
	"sync"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig9a",
		Title: "Testbed (minimr): single-job runtimes, LF vs EDF",
		Paper: "EDF cuts runtime 27.0% (WordCount), 26.1% (Grep), 24.8% (LineCount); LF has higher variance (Fig. 9a)",
		Run:   runFig9a,
	})
	register(Experiment{
		ID:    "fig9b",
		Title: "Testbed (minimr): multi-job runtimes, LF vs EDF",
		Paper: "EDF cuts runtime 16.6% (WordCount), 28.4% (Grep), 22.6% (LineCount) (Fig. 9b)",
		Run:   runFig9b,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Testbed (minimr): per-task-type runtime breakdown",
		Paper: "EDF cuts degraded-map runtime 43.0%/34.6%/47.7% and reduce ~26%; normal maps unchanged (Table I)",
		Run:   runTable1,
	})
}

// testbedRun builds the Section VI testbed (12 slaves, 3 racks, (12,10)
// code, 240 scaled blocks of block-aligned text, round-robin placement),
// fails node `failNode`, and runs the given jobs.
func testbedRun(ctx context.Context, kind sched.Kind, failNode topology.NodeID, numBlocks int,
	seed int64, mkJobs func() []minimr.Job, sink trace.Sink, label string) (*minimr.Report, error) {

	cluster, err := topology.New(topology.Config{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	if err != nil {
		return nil, err
	}
	fs, err := dfs.New(cluster, erasure.MustNew(12, 10), minimr.TestbedBlockSize,
		placement.RoundRobin{}, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(numBlocks, minimr.TestbedBlockSize, seed)
	if err != nil {
		return nil, err
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		return nil, err
	}
	if failNode >= 0 {
		cluster.FailNode(failNode)
	}
	opts := minimr.Options{
		Scheduler:  kind,
		RackBps:    minimr.TestbedRackBps,
		Seed:       seed,
		Trace:      sink,
		TraceLabel: label,
	}
	return minimr.RunContext(ctx, fs, opts, mkJobs())
}

// fig9Jobs builds the three Section VI jobs with eight reducers each.
func fig9Jobs() map[string]func() []minimr.Job {
	return map[string]func() []minimr.Job{
		"WordCount": func() []minimr.Job { return []minimr.Job{minimr.WordCountJob("input.txt", 8)} },
		"Grep":      func() []minimr.Job { return []minimr.Job{minimr.GrepJob("input.txt", "whale", 8)} },
		"LineCount": func() []minimr.Job { return []minimr.Job{minimr.LineCountJob("input.txt", 8)} },
	}
}

var _fig9JobOrder = []string{"WordCount", "Grep", "LineCount"}

func fig9Blocks(o Options) int {
	if o.Quick {
		return 60
	}
	return minimr.TestbedNumBlocks
}

// testbedSamples runs `runs` repetitions (each failing a different random
// node) for both schedulers and returns per-scheduler reports.
func testbedSamples(ctx context.Context, o Options, runs, numBlocks int, mkJobs func() []minimr.Job,
	baseSeed int64) (map[sched.Kind][]*minimr.Report, error) {

	out := map[sched.Kind][]*minimr.Report{
		sched.KindLF:  make([]*minimr.Report, runs),
		sched.KindEDF: make([]*minimr.Report, runs),
	}
	var mu sync.Mutex
	type task struct {
		kind sched.Kind
		i    int
	}
	var tasks []task
	for i := 0; i < runs; i++ {
		tasks = append(tasks, task{sched.KindLF, i}, task{sched.KindEDF, i})
	}
	err := parallelMap(ctx, len(tasks), o.parallelism(), func(ti int) error {
		tk := tasks[ti]
		seed := baseSeed + int64(tk.i)
		failNode := topology.NodeID(stats.NewRNG(seed).Intn(12))
		label := fmt.Sprintf("%v/seed%d", tk.kind, seed)
		rep, err := testbedRun(ctx, tk.kind, failNode, numBlocks, seed, mkJobs, o.Trace, label)
		if err != nil {
			return err
		}
		mu.Lock()
		out[tk.kind][tk.i] = rep
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func runFig9a(ctx context.Context, o Options) (*Table, error) {
	runs := o.seeds(5, 2)
	numBlocks := fig9Blocks(o)
	t := &Table{
		ID:      "fig9a",
		Title:   "testbed single-job runtimes (virtual seconds)",
		Columns: []string{"job", "LF mean", "LF min/max", "EDF mean", "EDF min/max", "EDF vs LF"},
		Notes:   []string{"paper: 27.0% / 26.1% / 24.8% reductions; LF varies more across runs"},
	}
	jobs := fig9Jobs()
	for i, name := range _fig9JobOrder {
		samples, err := testbedSamples(ctx, o, runs, numBlocks, jobs[name], int64(9100+100*i))
		if err != nil {
			return nil, fmt.Errorf("fig9a %s: %w", name, err)
		}
		lf := runtimesOf(samples[sched.KindLF], 0)
		edf := runtimesOf(samples[sched.KindEDF], 0)
		sl, se := stats.Summarize(lf), stats.Summarize(edf)
		t.Rows = append(t.Rows, []string{
			name,
			f1(sl.Mean), fmt.Sprintf("%.1f/%.1f", sl.Min, sl.Max),
			f1(se.Mean), fmt.Sprintf("%.1f/%.1f", se.Min, se.Max),
			pct(stats.ReductionPercent(sl.Mean, se.Mean)),
		})
	}
	return t, nil
}

func runtimesOf(reps []*minimr.Report, jobIdx int) []float64 {
	out := make([]float64, 0, len(reps))
	for _, r := range reps {
		out = append(out, r.Jobs[jobIdx].Runtime())
	}
	return out
}

func runFig9b(ctx context.Context, o Options) (*Table, error) {
	runs := o.seeds(5, 2)
	numBlocks := fig9Blocks(o)
	mkJobs := func() []minimr.Job {
		jobs := []minimr.Job{
			minimr.WordCountJob("input.txt", 8),
			minimr.GrepJob("input.txt", "whale", 8),
			minimr.LineCountJob("input.txt", 8),
		}
		jobs[1].SubmitAt = 1
		jobs[2].SubmitAt = 2
		return jobs
	}
	samples, err := testbedSamples(ctx, o, runs, numBlocks, mkJobs, 9500)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9b",
		Title:   "testbed multi-job runtimes (virtual seconds)",
		Columns: []string{"job", "LF mean", "EDF mean", "EDF vs LF"},
		Notes:   []string{"paper: 16.6% / 28.4% / 22.6% reductions; WordCount gains least (its degraded tasks compete with nothing earlier)"},
	}
	for j, name := range _fig9JobOrder {
		lf := stats.Mean(runtimesOf(samples[sched.KindLF], j))
		edf := stats.Mean(runtimesOf(samples[sched.KindEDF], j))
		t.Rows = append(t.Rows, []string{
			name, f1(lf), f1(edf), pct(stats.ReductionPercent(lf, edf)),
		})
	}
	return t, nil
}

func runTable1(ctx context.Context, o Options) (*Table, error) {
	runs := o.seeds(5, 2)
	numBlocks := fig9Blocks(o)
	t := &Table{
		ID:      "table1",
		Title:   "average task runtimes by type, single-job scenario (virtual seconds)",
		Columns: []string{"job", "task type", "count", "LF", "EDF", "EDF vs LF"},
		Notes: []string{
			"paper Table I (64 MB real blocks): normal maps ~equal; degraded maps cut 43.0%/34.6%/47.7%; reduces cut ~26%",
		},
	}
	jobs := fig9Jobs()
	for i, name := range _fig9JobOrder {
		samples, err := testbedSamples(ctx, o, runs, numBlocks, jobs[name], int64(9800+100*i))
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", name, err)
		}
		type agg func(r *mapred.JobResult) float64
		rows := []struct {
			label string
			count int
			fn    agg
		}{
			{"normal map", 0, func(r *mapred.JobResult) float64 { return r.MeanNormalMapRuntime() }},
			{"degraded map", 0, func(r *mapred.JobResult) float64 { return r.MeanDegradedRuntime() }},
			{"reduce", 8, func(r *mapred.JobResult) float64 { return r.MeanReduceRuntime() }},
		}
		// Counts from the first LF sample.
		first := samples[sched.KindLF][0].Jobs[0]
		counts := first.CountByClass()
		deg := counts[sched.ClassDegraded]
		rows[0].count = len(first.Tasks) - deg
		rows[1].count = deg
		for _, row := range rows {
			var lfVals, edfVals []float64
			for _, rep := range samples[sched.KindLF] {
				lfVals = append(lfVals, row.fn(&rep.Jobs[0]))
			}
			for _, rep := range samples[sched.KindEDF] {
				edfVals = append(edfVals, row.fn(&rep.Jobs[0]))
			}
			lf, edf := stats.Mean(lfVals), stats.Mean(edfVals)
			t.Rows = append(t.Rows, []string{
				name, row.label, fmt.Sprintf("%d", row.count),
				f2(lf), f2(edf), pct(stats.ReductionPercent(lf, edf)),
			})
		}
	}
	return t, nil
}
