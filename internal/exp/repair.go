package exp

import (
	"context"
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "repair",
		Title: "Background repair vs foreground MapReduce: throttle sweep under a mid-run failure",
		Paper: "extension beyond the paper: the paper leaves lost blocks degraded for the whole run; this table adds a proactive healer that rebuilds them through the same network the job uses, sweeping the repair-bandwidth throttle against all three schedulers — more repair bandwidth heals sooner but competes with the foreground job, while healed blocks de-degrade queued map tasks",
		Run:   runRepair,
	})
}

// repairThrottles is the throttle sweep: disabled baseline, then the
// repair rate as a fraction of a node NIC's bandwidth.
var repairThrottles = []struct {
	name     string
	fraction float64
}{
	{"off", 0},
	{"5%", 0.05},
	{"25%", 0.25},
	{"100%", 1.0},
}

// repairScheds sweeps the three task schedulers: LF defers degraded
// tasks (so the healer can catch them while they queue), the
// degraded-first variants front-load them.
var repairScheds = []sched.Kind{mapred.LF, mapred.BDF, mapred.EDF}

// repairConfig builds the contended mid-run-failure scenario: a (6,4)
// code on 12 nodes across 3 racks (stripes leave free nodes to host
// rebuilt blocks), 40 MB/s NICs as the bottleneck, and one node failing
// at t=30 s while the map phase is in full swing.
func repairConfig() (mapred.Config, []mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 12
	cfg.Racks = 3 // (6,4) spreads at most n-k=2 blocks per rack: needs 3 racks
	cfg.MapSlotsPerNode = 2
	cfg.N, cfg.K = 6, 4
	cfg.NumBlocks = 240
	cfg.BlockSizeBytes = 64e6
	cfg.NodeBps = 5 * netsim.Mbps * 64 // 40 MB/s NICs: the bottleneck
	cfg.RackBps = netsim.Gbps
	cfg.FailNodes = []topology.NodeID{0}
	cfg.FailAt = 10 // early enough that most map waves still have to launch

	job := mapred.DefaultJob()
	job.MapTime = mapred.Dist{Mean: 4, Std: 0.4}
	job.NumReduceTasks = 0 // map-only: the table isolates the read path
	return cfg, []mapred.JobSpec{job}
}

// runRepair sweeps scheduler × repair throttle over seeded mid-run
// failures and reports the foreground makespan next to the healer's
// time-to-first-repair, time-to-full-redundancy, and read volume.
func runRepair(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(10, 3)
	quickBlocks := 0
	if o.Quick {
		quickBlocks = 120
	}

	// results[v][s] holds variant v (sched-major order), seed s.
	variants := len(repairScheds) * len(repairThrottles)
	results := make([][]*mapred.Result, variants)
	for v := range results {
		results[v] = make([]*mapred.Result, seeds)
	}
	err := parallelMap(ctx, variants*seeds, o.parallelism(), func(i int) error {
		v, s := i/seeds, i%seeds
		k, th := v/len(repairThrottles), v%len(repairThrottles)
		cfg, jobs := repairConfig()
		if quickBlocks > 0 {
			cfg.NumBlocks = quickBlocks
		}
		cfg.Seed = int64(s) + 1
		cfg.Scheduler = repairScheds[k]
		if f := repairThrottles[th].fraction; f > 0 {
			cfg.Repair = repair.Config{Enabled: true, RateFraction: f}
		}
		cfg.Trace = o.Trace
		cfg.TraceLabel = fmt.Sprintf("%s/repair-%s/seed%d",
			repairScheds[k], repairThrottles[th].name, cfg.Seed)
		res, err := mapred.RunContext(ctx, cfg, jobs)
		if err != nil {
			return fmt.Errorf("%s/repair-%s seed %d: %w",
				repairScheds[k], repairThrottles[th].name, cfg.Seed, err)
		}
		results[v][s] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	cfg, _ := repairConfig()
	blocks := cfg.NumBlocks
	if quickBlocks > 0 {
		blocks = quickBlocks
	}
	t := &Table{
		ID: "repair",
		Title: fmt.Sprintf("background repair under a t=%.0fs failure: %d nodes, (%d,%d) code, %d blocks, %d seeds",
			cfg.FailAt, cfg.Nodes, cfg.N, cfg.K, blocks, seeds),
		Columns: []string{"sched", "repair", "makespan", "degraded", "first fix", "healed at", "repaired", "read GB"},
		Notes: []string{
			"repair = healer rate cap as a fraction of one NIC's bandwidth (off = no healer, the paper's assumption)",
			"first fix / healed at = seconds from the failure to the first committed block and to full redundancy, averaged over seeds",
			"degraded = map tasks launched as degraded reads; a block the healer rebuilds before its task launches is read normally",
			"higher repair bandwidth heals sooner but competes with foreground reads on the same links",
		},
	}
	for v := 0; v < variants; v++ {
		k, th := v/len(repairThrottles), v%len(repairThrottles)
		var makespan, degraded float64
		var firstFix, healedAt, readGB float64
		var repaired, healedRuns int
		for _, res := range results[v] {
			makespan += res.Makespan
			for j := range res.Jobs {
				degraded += float64(res.Jobs[j].CountByClass()[sched.ClassDegraded])
			}
			if st := res.Repair; st != nil {
				repaired += st.BlocksRepaired
				readGB += st.RepairBytes / 1e9
				if st.FirstRepairAt >= 0 && st.FullRedundancyAt >= 0 {
					healedRuns++
					firstFix += st.FirstRepairAt - cfg.FailAt
					healedAt += st.FullRedundancyAt - cfg.FailAt
				}
			}
		}
		n := float64(seeds)
		row := []string{
			repairScheds[k].String(), repairThrottles[th].name,
			f1(makespan / n), f1(degraded / n),
		}
		if repairThrottles[th].fraction == 0 {
			row = append(row, "-", "-", "-", "-")
		} else if healedRuns < seeds {
			// A run that never healed has no redundancy time to average.
			row = append(row, "-", "-", fmt.Sprintf("%d", repaired), f2(readGB/n))
		} else {
			row = append(row,
				f1(firstFix/n), f1(healedAt/n),
				fmt.Sprintf("%d", repaired), f2(readGB/n))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
