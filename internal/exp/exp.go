// Package exp is the experiment registry: one runner per table and figure
// of the paper's evaluation. Each runner regenerates the corresponding
// artifact as a printable table; cmd/dfexp and the root bench suite drive
// them.
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"degradedfirst/internal/trace"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the paper's expectation and any caveats.
	Notes []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	// Size widths to the widest row, not just the header: a ragged row with
	// more cells than Columns previously made writeRow index past the end
	// of widths and panic.
	ncols := len(t.Columns)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first; notes
// omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			// \r must force quoting too: a bare carriage return inside an
			// unquoted field breaks RFC 4180 consumers.
			if strings.ContainsAny(cell, ",\"\r\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// MarshalJSON implements json.Marshaler with a stable field layout.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}

// Options tunes experiment cost.
type Options struct {
	// Seeds overrides each experiment's default sample count (0 keeps the
	// default — 30 for simulation figures, 5 for testbed figures, as in
	// the paper).
	Seeds int
	// Quick shrinks workloads (fewer seeds, smaller F) for smoke runs and
	// benchmarks. Shapes still hold; absolute precision drops.
	Quick bool
	// Parallelism bounds concurrent simulation runs (0 = NumCPU).
	Parallelism int
	// Trace receives every underlying run's structured lifecycle events
	// (nil = no tracing). Events are labeled per run (scheduler and seed)
	// so one sink can absorb a whole experiment.
	Trace trace.Sink
	// JobSched restricts the jobsched experiment to one job-level policy
	// ("fifo", "fairshare", "quota" or "deadline"; empty = sweep all).
	// Other experiments ignore it.
	JobSched string
}

func (o Options) seeds(def, quick int) int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Quick {
		return quick
	}
	return def
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// Experiment is one registered artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Run regenerates the artifact. The context cancels in-flight
	// simulation runs at their next heartbeat.
	Run func(context.Context, Options) (*Table, error)
}

var (
	_mu       sync.Mutex
	_registry = map[string]Experiment{}
)

func register(e Experiment) {
	_mu.Lock()
	defer _mu.Unlock()
	if _, dup := _registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	_registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	_mu.Lock()
	defer _mu.Unlock()
	e, ok := _registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	_mu.Lock()
	defer _mu.Unlock()
	out := make([]Experiment, 0, len(_registry))
	for _, e := range _registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// parallelMap runs fn for i in [0, n) with bounded parallelism, collecting
// the first error. Cancelling ctx stops dispatching new work; indices
// already dispatched still run to completion (their own ctx checks abort
// them promptly).
func parallelMap(ctx context.Context, n, parallelism int, fn func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	if firstEr == nil {
		firstEr = ctx.Err()
	}
	return firstEr
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
