package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"degradedfirst/internal/trace"
)

func quickOpts() Options {
	return Options{Quick: true, Seeds: 2}
}

func runExp(t *testing.T, id string, o Options) *Table {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := e.Run(context.Background(), o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
		t.Fatalf("%s: malformed table %+v", id, tab)
	}
	if tab.String() == "" {
		t.Fatalf("%s: empty rendering", id)
	}
	return tab
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5a", "fig5b", "fig5c",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "table1",
		"ablation-netmode", "ablation-sources", "ablation-pacing",
		"ext-lrc", "ext-delay", "ext-midjob",
		"jobsched", "hedge", "scale", "repair",
	}
	all := All()
	got := map[string]bool{}
	for _, e := range all {
		got[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get must miss unknown IDs")
	}
}

func TestFig3ReproducesPaper(t *testing.T) {
	tab := runExp(t, "fig3", quickOpts())
	lf := cellFloat(t, tab.Rows[0][1])
	df := cellFloat(t, tab.Rows[1][1])
	if lf < 39 || lf > 43 {
		t.Errorf("LF map phase %.1f not ~40 s", lf)
	}
	if df < 29 || df > 33 {
		t.Errorf("DF map phase %.1f not ~30 s", df)
	}
	saving := cellFloat(t, tab.Rows[2][1])
	if saving < 20 || saving > 30 {
		t.Errorf("saving %.1f%% not ~25%%", saving)
	}
}

func TestFig4ReproducesPaper(t *testing.T) {
	tab := runExp(t, "fig4", quickOpts())
	// Three degraded launches plus a map-phase-end row.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(tab.Rows), tab.Rows)
	}
	wantPos := []string{"#1", "#5", "#9"}
	wantTimes := []float64{0, 10, 30}
	for i := 0; i < 3; i++ {
		if tab.Rows[i][0] != wantPos[i] {
			t.Errorf("degraded launch %d at position %s, want %s", i, tab.Rows[i][0], wantPos[i])
		}
		at := cellFloat(t, tab.Rows[i][2])
		if at < wantTimes[i]-1.5 || at > wantTimes[i]+2.5 {
			t.Errorf("degraded launch %d at %.1f s, want ~%.0f s", i, at, wantTimes[i])
		}
	}
}

func TestFig5Family(t *testing.T) {
	for _, id := range []string{"fig5a", "fig5b", "fig5c"} {
		tab := runExp(t, id, quickOpts())
		for _, row := range tab.Rows {
			lf := cellFloat(t, row[1])
			df := cellFloat(t, row[2])
			if df >= lf {
				t.Errorf("%s %s: DF %.3f not below LF %.3f", id, row[0], df, lf)
			}
		}
	}
}

func TestFig7aShape(t *testing.T) {
	tab := runExp(t, "fig7a", quickOpts())
	var prev float64
	for i, row := range tab.Rows {
		red := cellFloat(t, row[5])
		if red <= 0 {
			t.Errorf("fig7a %s: EDF not better than LF (%.1f%%)", row[0], red)
		}
		if i > 0 && red < prev-12 {
			t.Errorf("fig7a: reduction collapsed between rows (%.1f%% -> %.1f%%)", prev, red)
		}
		prev = red
	}
}

func TestFig7dShape(t *testing.T) {
	tab := runExp(t, "fig7d", quickOpts())
	single := cellFloat(t, tab.Rows[0][5])
	rack := cellFloat(t, tab.Rows[2][5])
	if single <= 0 {
		t.Errorf("single-node reduction %.1f%% not positive", single)
	}
	if rack >= single {
		t.Errorf("rack-failure gain (%.1f%%) should trail single-node gain (%.1f%%)", rack, single)
	}
}

func TestFig7fShape(t *testing.T) {
	tab := runExp(t, "fig7f", quickOpts())
	positive := 0
	for _, row := range tab.Rows {
		if cellFloat(t, row[4]) > 0 {
			positive++
		}
	}
	if positive < len(tab.Rows)/2 {
		t.Errorf("EDF beat LF for only %d/%d jobs", positive, len(tab.Rows))
	}
}

func TestFig8Shapes(t *testing.T) {
	a := runExp(t, "fig8a", quickOpts())
	for _, row := range a.Rows {
		bdf := cellFloat(t, row[1])
		edf := cellFloat(t, row[2])
		if bdf <= edf {
			t.Errorf("fig8a %s: BDF remote increase (%.1f%%) should exceed EDF's (%.1f%%)", row[0], bdf, edf)
		}
	}
	b := runExp(t, "fig8b", quickOpts())
	for _, row := range b.Rows {
		if cellFloat(t, row[1]) < 30 || cellFloat(t, row[2]) < 30 {
			t.Errorf("fig8b %s: degraded-read cuts too small: %v", row[0], row)
		}
	}
	c := runExp(t, "fig8c", quickOpts())
	for _, row := range c.Rows {
		if cellFloat(t, row[2]) <= 0 {
			t.Errorf("fig8c %s: EDF runtime cut not positive", row[0])
		}
	}
	d := runExp(t, "fig8d", quickOpts())
	bdf := cellFloat(t, d.Rows[0][1])
	edf := cellFloat(t, d.Rows[0][2])
	if edf <= bdf {
		t.Errorf("fig8d: EDF (%.1f%%) should beat BDF (%.1f%%) in the extreme case", edf, bdf)
	}
}

func TestFig9aShape(t *testing.T) {
	tab := runExp(t, "fig9a", quickOpts())
	for _, row := range tab.Rows {
		if cellFloat(t, row[5]) <= 0 {
			t.Errorf("fig9a %s: EDF not better (%s)", row[0], row[5])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := runExp(t, "table1", quickOpts())
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 jobs x 3 task types)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "degraded map" {
			continue
		}
		if cellFloat(t, row[5]) <= 0 {
			t.Errorf("table1 %s: degraded-map runtime not reduced (%s)", row[0], row[5])
		}
	}
}

func TestAblationPacingShape(t *testing.T) {
	tab := runExp(t, "ablation-pacing", quickOpts())
	byName := map[string]float64{}
	for _, row := range tab.Rows {
		byName[row[0]] = cellFloat(t, row[1])
	}
	if byName["BDF"] >= byName["LF"] {
		t.Errorf("BDF (%.3f) should beat LF (%.3f)", byName["BDF"], byName["LF"])
	}
	if byName["EDF"] > byName["BDF"]+0.1 {
		t.Errorf("EDF (%.3f) should not trail BDF (%.3f) badly", byName["EDF"], byName["BDF"])
	}
}

func TestTableCSVAndJSON(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", `with "quote", and comma`}},
		Notes:   []string{"n"},
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "a,b\n") || !strings.Contains(csv, `"with ""quote"", and comma"`) {
		t.Fatalf("CSV rendering wrong: %q", csv)
	}
	js, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"x"`, `"columns":["a","b"]`, `"notes":["n"]`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("JSON missing %s: %s", want, js)
		}
	}
}

func TestExtLRCShape(t *testing.T) {
	tab := runExp(t, "ext-lrc", quickOpts())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	rsGain := cellFloat(t, tab.Rows[0][4])
	lrcGain := cellFloat(t, tab.Rows[1][4])
	if lrcGain <= 0 {
		t.Errorf("EDF should still beat LF under LRC (got %.1f%%)", lrcGain)
	}
	if lrcGain >= rsGain {
		t.Errorf("LRC gain (%.1f%%) should be smaller than RS gain (%.1f%%)", lrcGain, rsGain)
	}
	// LRC's LF degraded reads must be cheaper than RS's.
	if cellFloat(t, tab.Rows[1][5]) >= cellFloat(t, tab.Rows[0][5]) {
		t.Error("LRC degraded reads should be cheaper than RS")
	}
}

func TestExtDelayShape(t *testing.T) {
	tab := runExp(t, "ext-delay", quickOpts())
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	lf := cellFloat(t, byName["LF"][1])
	edf := cellFloat(t, byName["EDF"][1])
	if edf >= lf {
		t.Errorf("EDF (%.3f) should beat LF (%.3f)", edf, lf)
	}
	// Delay scheduling reduces remote tasks relative to LF.
	if cellFloat(t, byName["DelayLF"][2]) > cellFloat(t, byName["LF"][2]) {
		t.Error("delay scheduling should not increase remote tasks")
	}
}

func TestFig3TraceCarriesTransfers(t *testing.T) {
	var mem trace.Memory
	o := quickOpts()
	o.Trace = &mem
	runExp(t, "fig3", o)
	events := mem.Events()
	if len(events) == 0 {
		t.Fatal("fig3 produced no trace events")
	}
	labels := map[string]int{}
	for _, e := range events {
		if e.Type == trace.EvTransferEnd {
			labels[e.Run]++
		}
	}
	// Both scripted schedules issue four degraded-read downloads each.
	if labels["fig3/lf"] != 4 || labels["fig3/df"] != 4 {
		t.Fatalf("completed transfers per schedule = %v, want 4 under fig3/lf and fig3/df", labels)
	}
}

func TestExperimentTraceLabels(t *testing.T) {
	var mem trace.Memory
	o := quickOpts()
	o.Trace = &mem
	runExp(t, "fig4", o)
	events := mem.Events()
	if len(events) == 0 {
		t.Fatal("fig4 produced no trace events")
	}
	for _, e := range events {
		if e.Run != "fig4" {
			t.Fatalf("event label = %q, want fig4", e.Run)
		}
	}
}

func TestRunSeedsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, ok := Get("fig7a")
	if !ok {
		t.Fatal("fig7a not registered")
	}
	if _, err := e.Run(ctx, quickOpts()); err == nil {
		t.Fatal("cancelled context must abort the experiment")
	}
}

func TestExtMidJobShape(t *testing.T) {
	tab := runExp(t, "ext-midjob", quickOpts())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if cellFloat(t, row[3]) <= 0 {
			t.Errorf("%s: EDF should beat LF (got %s)", row[0], row[3])
		}
	}
}

func TestJobSchedShape(t *testing.T) {
	tab := runExp(t, "jobsched", quickOpts())
	// Four policies, each with an (all) row plus one row per tenant.
	if len(tab.Rows) != 4*4 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	byPolicy := map[string][][]string{}
	for _, row := range tab.Rows {
		byPolicy[row[0]] = append(byPolicy[row[0]], row)
	}
	for _, policy := range []string{"fifo", "fairshare", "quota", "deadline"} {
		rows := byPolicy[policy]
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows", policy, len(rows))
		}
		if rows[0][1] != "(all)" || rows[1][1] != "alpha" || rows[2][1] != "beta" || rows[3][1] != "gamma" {
			t.Fatalf("%s: tenant order wrong: %v", policy, rows)
		}
		// The summary row carries the makespan; percentiles are ordered.
		if cellFloat(t, rows[0][8]) <= 0 {
			t.Fatalf("%s: makespan %q not positive", policy, rows[0][8])
		}
		for _, row := range rows {
			p50, p90, p99 := cellFloat(t, row[3]), cellFloat(t, row[4]), cellFloat(t, row[5])
			if p50 < 0 || p90 < p50 || p99 < p90 {
				t.Fatalf("%s %s: wait percentiles not monotone: %v", policy, row[1], row[3:6])
			}
		}
	}
	// Fair-share must serve the heavy tenant at least as fast as the light
	// one at the median (that is the policy's whole point).
	fsAlpha := cellFloat(t, byPolicy["fairshare"][1][3])
	fsGamma := cellFloat(t, byPolicy["fairshare"][3][3])
	if fsAlpha > fsGamma {
		t.Errorf("fairshare: alpha median wait %.2f exceeds gamma's %.2f", fsAlpha, fsGamma)
	}
}

func TestJobSchedPolicyFilter(t *testing.T) {
	o := quickOpts()
	o.JobSched = "fairshare"
	tab := runExp(t, "jobsched", o)
	if len(tab.Rows) != 4 {
		t.Fatalf("filtered rows = %d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[0] != "fairshare" {
			t.Fatalf("filter leaked policy %q", row[0])
		}
	}
	o.JobSched = "lottery"
	e, _ := Get("jobsched")
	if _, err := e.Run(context.Background(), o); err == nil {
		t.Fatal("unknown policy filter must fail")
	}
}

// TestHedgeShape pins the hedge table's headline claims: under the
// queueing (hold) regime eager k+Δ races strictly cut the degraded-read
// tail, and under fair sharing the redundant flows' extra bytes are
// reported as waste. Unhedged rows must stay waste-free with no per-flow
// latency columns.
func TestHedgeShape(t *testing.T) {
	tab := runExp(t, "hedge", quickOpts())
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (2 net modes x 5 policies)", len(tab.Rows))
	}
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row
		p50, p90, p99 := cellFloat(t, row[3]), cellFloat(t, row[4]), cellFloat(t, row[5])
		if p50 <= 0 || p90 < p50 || p99 < p90 {
			t.Fatalf("%s/%s: read percentiles not monotone: %v", row[0], row[1], row[3:6])
		}
	}
	// The acceptance claim: under failure, Δ>=1 pulls the p99 degraded-read
	// latency strictly below the Δ=0 baseline.
	base := cellFloat(t, byKey["hold/delta=0"][5])
	d1 := cellFloat(t, byKey["hold/delta=1"][5])
	d2 := cellFloat(t, byKey["hold/delta=2"][5])
	if d1 >= base {
		t.Errorf("hold: delta=1 p99 %.1f not below delta=0 baseline %.1f", d1, base)
	}
	if d2 >= base {
		t.Errorf("hold: delta=2 p99 %.1f not below delta=0 baseline %.1f", d2, base)
	}
	// Unhedged rows record no per-flow latencies and waste nothing.
	for _, mode := range []string{"hold", "fluid"} {
		row := byKey[mode+"/delta=0"]
		if row[6] != "-" || row[7] != "-" {
			t.Errorf("%s/delta=0: flow columns %v, want '-'", mode, row[6:8])
		}
		if cellFloat(t, row[9]) != 0 {
			t.Errorf("%s/delta=0: wasted %s, want 0", mode, row[9])
		}
	}
	// Fair sharing pays for redundancy in reported extra bytes.
	if cellFloat(t, byKey["fluid/delta=1"][9]) <= 0 {
		t.Error("fluid/delta=1: no wasted bytes reported")
	}
	if cellFloat(t, byKey["fluid/delta=2"][9]) <= cellFloat(t, byKey["fluid/delta=1"][9]) {
		t.Error("fluid: delta=2 should waste more than delta=1")
	}
}

// TestRepairShape pins the repair table's headline trade-off: raising
// the healer's bandwidth cap monotonically shortens time-to-full-
// redundancy under every scheduler, the disabled baseline reports no
// repair columns, and every enabled run heals (moves repair bytes and
// commits blocks).
func TestRepairShape(t *testing.T) {
	tab := runExp(t, "repair", quickOpts())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 scheds x 4 throttles)", len(tab.Rows))
	}
	bySched := map[string][][]string{}
	for _, row := range tab.Rows {
		bySched[row[0]] = append(bySched[row[0]], row)
	}
	for schedName, rows := range bySched {
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows, want 4", schedName, len(rows))
		}
		if rows[0][1] != "off" {
			t.Fatalf("%s: first row %q, want the disabled baseline", schedName, rows[0][1])
		}
		for _, cell := range rows[0][4:8] {
			if cell != "-" {
				t.Errorf("%s/off: repair cell %q, want '-'", schedName, cell)
			}
		}
		prevHealed := -1.0
		for _, row := range rows[1:] {
			if cellFloat(t, row[6]) <= 0 || cellFloat(t, row[7]) <= 0 {
				t.Fatalf("%s/%s: no repair work reported: %v", schedName, row[1], row)
			}
			healed := cellFloat(t, row[5])
			if healed <= 0 {
				t.Fatalf("%s/%s: healed-at %.1f not after the failure", schedName, row[1], healed)
			}
			if cellFloat(t, row[4]) > healed {
				t.Errorf("%s/%s: first fix after full redundancy: %v", schedName, row[1], row)
			}
			if prevHealed >= 0 && healed > prevHealed {
				t.Errorf("%s: healed-at not monotone in throttle (%.1f after %.1f at %s)",
					schedName, healed, prevHealed, row[1])
			}
			prevHealed = healed
		}
		// The extreme ends of the sweep must be strictly ordered.
		if hi, lo := cellFloat(t, rows[1][5]), cellFloat(t, rows[3][5]); lo >= hi {
			t.Errorf("%s: 100%% throttle heals in %.1f, not below 5%%'s %.1f", schedName, lo, hi)
		}
	}
}

func TestTableStringRaggedRows(t *testing.T) {
	// Regression: a row wider than the header used to index past the end of
	// the widths slice and panic. Ragged tables must render, padding the
	// extra columns by their own width.
	tab := &Table{
		ID:      "ragged",
		Title:   "ragged rows",
		Columns: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2", "extra-wide-cell", "x"},
			{"3"},
		},
	}
	out := tab.String()
	if !strings.Contains(out, "extra-wide-cell") {
		t.Fatalf("ragged render lost cells:\n%s", out)
	}
	if !strings.Contains(out, "ragged rows") {
		t.Fatalf("render lost title:\n%s", out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := &Table{
		ID:      "csv",
		Title:   "quoting",
		Columns: []string{"plain", "comma", "quote", "newline", "cr"},
		Rows: [][]string{
			{"v", "a,b", `say "hi"`, "line1\nline2", "carriage\rreturn"},
		},
	}
	got := tab.CSV()
	wantRow := `v,"a,b","say ""hi""","line1` + "\n" + `line2","carriage` + "\r" + `return"` + "\n"
	lines := strings.SplitN(got, "\n", 2)
	if len(lines) != 2 || lines[0] != "plain,comma,quote,newline,cr" {
		t.Fatalf("CSV header wrong:\n%s", got)
	}
	if lines[1] != wantRow {
		t.Fatalf("CSV row = %q, want %q", lines[1], wantRow)
	}
}
