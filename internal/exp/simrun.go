package exp

import (
	"context"
	"fmt"
	"sync"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

// seedRun holds one seed's paired runs: the normal-mode reference and one
// failure-mode run per scheduler, all over the identical placement and
// failure choice.
type seedRun struct {
	normal *mapred.Result
	byKind map[sched.Kind]*mapred.Result
}

// runSeeds executes the paired runs for `seeds` seeds in parallel.
// baseSeed offsets the seed space so different experiments draw different
// scenarios. When opts.Trace is set every run's events flow into it,
// labeled "<scheduler>/seed<seed>" (or "normal/seed<seed>" for the
// failure-free reference run).
func runSeeds(ctx context.Context, cfg mapred.Config, jobs []mapred.JobSpec,
	kinds []sched.Kind, seeds int, baseSeed int64, opts Options, withNormal bool) ([]seedRun, error) {

	runs := make([]seedRun, seeds)
	var mu sync.Mutex
	err := parallelMap(ctx, seeds, opts.parallelism(), func(i int) error {
		sr := seedRun{byKind: make(map[sched.Kind]*mapred.Result, len(kinds))}
		seed := baseSeed + int64(i)
		if withNormal {
			c := cfg
			c.Seed = seed
			c.Failure = topology.NoFailure
			c.FailNodes = nil
			c.Scheduler = sched.KindLF
			c.Trace = opts.Trace
			c.TraceLabel = fmt.Sprintf("normal/seed%d", seed)
			res, err := mapred.RunContext(ctx, c, jobs)
			if err != nil {
				return fmt.Errorf("normal seed %d: %w", seed, err)
			}
			sr.normal = res
		}
		for _, k := range kinds {
			c := cfg
			c.Seed = seed
			c.Scheduler = k
			c.Trace = opts.Trace
			c.TraceLabel = fmt.Sprintf("%v/seed%d", k, seed)
			res, err := mapred.RunContext(ctx, c, jobs)
			if err != nil {
				return fmt.Errorf("%v seed %d: %w", k, seed, err)
			}
			sr.byKind[k] = res
		}
		mu.Lock()
		runs[i] = sr
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// normalizedRuntimes extracts, per seed, job jobIdx's failure-mode runtime
// divided by its normal-mode runtime for the given scheduler.
func normalizedRuntimes(runs []seedRun, k sched.Kind, jobIdx int) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.byKind[k].Jobs[jobIdx].Runtime()/r.normal.Jobs[jobIdx].Runtime())
	}
	return out
}
