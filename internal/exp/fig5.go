package exp

import (
	"context"

	"degradedfirst/internal/analysis"
	"degradedfirst/internal/netsim"
)

func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "Analysis: normalized runtime vs erasure coding scheme",
		Paper: "DF beats LF by 15-32%; LF worsens with k, DF flat (Fig. 5a)",
		Run:   runFig5a,
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "Analysis: normalized runtime vs number of blocks F",
		Paper: "normalized runtimes fall with F; DF saves 25-28% (Fig. 5b)",
		Run:   runFig5b,
	})
	register(Experiment{
		ID:    "fig5c",
		Title: "Analysis: normalized runtime vs rack download bandwidth W",
		Paper: "runtimes fall with W; DF flat past 500 Mbps; saves 18-43% (Fig. 5c)",
		Run:   runFig5c,
	})
}

func fig5Table(id, title string, pts []analysis.Point, notes ...string) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"setting", "LF norm", "DF norm", "DF vs LF"},
		Notes:   notes,
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{p.Label, f3(p.NormalizedLF), f3(p.NormalizedDF), pct(p.ReductionPct)})
	}
	return t
}

func runFig5a(context.Context, Options) (*Table, error) {
	pts, err := analysis.SweepCodes(analysis.Default(),
		[]int{6, 9, 12, 15},
		[]string{"(8,6)", "(12,9)", "(16,12)", "(20,15)"})
	if err != nil {
		return nil, err
	}
	return fig5Table("fig5a", "analysis vs coding scheme", pts,
		"paper: reduction 15%-32%, growing with k"), nil
}

func runFig5b(context.Context, Options) (*Table, error) {
	pts, err := analysis.SweepBlocks(analysis.Default(), []int{720, 1440, 2160, 2880})
	if err != nil {
		return nil, err
	}
	return fig5Table("fig5b", "analysis vs number of blocks", pts,
		"paper: reduction 25%-28%, normalized runtime decreasing in F"), nil
}

func runFig5c(context.Context, Options) (*Table, error) {
	pts, err := analysis.SweepBandwidth(analysis.Default(),
		[]float64{100 * netsim.Mbps, 250 * netsim.Mbps, 500 * netsim.Mbps, 1000 * netsim.Mbps},
		[]string{"100Mbps", "250Mbps", "500Mbps", "1Gbps"})
	if err != nil {
		return nil, err
	}
	return fig5Table("fig5c", "analysis vs rack bandwidth", pts,
		"paper: reduction 18%-43%; DF identical at 500 Mbps and 1 Gbps"), nil
}
