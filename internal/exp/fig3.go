package exp

import (
	"context"
	"fmt"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Motivating example: map-slot schedules of Figure 3",
		Paper: "LF map phase 40 s vs degraded-first 30 s — a 25% saving (Fig. 3)",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "BDF execution flow on the Figure 4 example",
		Paper: "degraded tasks are the 1st, 5th and 9th launches, at 0 s, 10 s and 30 s (Fig. 4)",
		Run:   runFig4,
	})
}

// fig3Flow is one degraded-read transfer in the scripted schedules.
type fig3Flow struct {
	at       float64
	src, dst topology.NodeID
}

// fig3Schedule replays one of Figure 3's schedules through the network
// model: locals process for T with no traffic; each degraded task issues
// its cross/intra-rack download at the scripted time and processes for T
// after the download completes. Returns the map-phase end time. A non-nil
// sink receives the schedule's flow lifecycle as transfer events.
func fig3Schedule(flows []fig3Flow, localEnd float64, sink trace.Sink) (float64, error) {
	// Figure 2's cluster: five nodes, racks of 3 and 2, 100 Mbps links.
	cluster, err := topology.New(topology.Config{
		Nodes: 5, Racks: 2, MapSlotsPerNode: 2, RackSizes: []int{3, 2},
	})
	if err != nil {
		return 0, err
	}
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		NodeBps: 100 * netsim.Mbps,
		RackBps: 100 * netsim.Mbps,
	})
	if err != nil {
		return 0, err
	}
	if sink != nil {
		flowEvent := func(typ trace.Type) func(*netsim.Flow) {
			return func(f *netsim.Flow) {
				e := trace.New(eng.Now(), typ)
				e.Src, e.Dst, e.Bytes, e.N = int(f.Src), int(f.Dst), f.Bytes, f.ID
				sink.Emit(e)
			}
		}
		net.SetHooks(netsim.Hooks{
			Start:  flowEvent(trace.EvTransferStart),
			Finish: flowEvent(trace.EvTransferEnd),
			Cancel: flowEvent(trace.EvTransferCancel),
		})
	}
	const (
		blockBytes = 128e6
		taskTime   = 10.0
	)
	end := localEnd
	for _, f := range flows {
		f := f
		eng.Schedule(f.at, func() {
			net.StartFlow(f.src, f.dst, blockBytes, func(*netsim.Flow) {
				done := eng.Now() + taskTime
				if done > end {
					end = done
				}
			})
		})
	}
	eng.Run()
	return end, nil
}

func runFig3(_ context.Context, o Options) (*Table, error) {
	// Node IDs: the paper's Node 1..5 are 0..4; node 0 fails. Lost blocks
	// B00,B10,B20,B30 are reconstructed on nodes 1..4. Each reader holds
	// one source block locally and downloads the other:
	//   node1 <- P00 @ node3 (cross-rack)
	//   node2 <- P10 @ node4 (cross-rack)
	//   node3 <- P20 @ node2 (cross-rack)
	//   node4 <- P30 @ node3 (same rack)
	reads := func(at float64) []fig3Flow {
		return []fig3Flow{
			{at, 3, 1}, {at, 4, 2}, {at, 2, 3}, {at, 3, 4},
		}
	}
	// Locality-first: two rounds of local tasks end at 10 s, then all four
	// degraded reads start together.
	lfEnd, err := fig3Schedule(reads(10), 10, trace.WithLabel(o.Trace, "fig3/lf"))
	if err != nil {
		return nil, err
	}
	// Degraded-first (Fig. 3b): degraded reads for B00 (node1) and B20
	// (node3) start at 0 alongside the locals; the other two start at 10 s.
	dfFlows := []fig3Flow{
		{0, 3, 1}, {0, 2, 3},
		{10, 4, 2}, {10, 3, 4},
	}
	dfEnd, err := fig3Schedule(dfFlows, 20, trace.WithLabel(o.Trace, "fig3/df")) // node1/node3 run locals until 20 s
	if err != nil {
		return nil, err
	}
	saving := 100 * (lfEnd - dfEnd) / lfEnd
	t := &Table{
		ID:      "fig3",
		Title:   "motivating example map-phase durations",
		Columns: []string{"schedule", "map phase end (s)", "paper (s)"},
		Rows: [][]string{
			{"locality-first (Fig. 3a)", f1(lfEnd), "40"},
			{"degraded-first (Fig. 3b)", f1(dfEnd), "30"},
			{"saving", pct(saving), "25%"},
		},
		Notes: []string{
			"transfers take 10.24 s (128 MB over 100 Mbps), so ends land slightly past the paper's idealized 10 s multiples",
		},
	}
	return t, nil
}

// fig4Placement builds Figure 4(a): four nodes, (4,2) code, six stripes.
// Node 0 (the paper's Node 1) holds B00,B10,B20; node 1 holds B30,B40,B50;
// node 2 holds B01,B11,B21; node 3 holds B31,B41,B51; parity fills the
// remaining two nodes of each stripe.
func fig4Placement() placement.Explicit {
	assign := make([][]topology.NodeID, 6)
	for i := 0; i < 6; i++ {
		var b0, b1, p0, p1 topology.NodeID
		if i < 3 {
			b0, b1, p0, p1 = 0, 2, 1, 3
		} else {
			b0, b1, p0, p1 = 1, 3, 0, 2
		}
		assign[i] = []topology.NodeID{b0, b1, p0, p1}
	}
	return placement.Explicit{Assignments: assign}
}

func runFig4(ctx context.Context, o Options) (*Table, error) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 4
	cfg.Racks = 2
	cfg.MapSlotsPerNode = 1
	cfg.ReduceSlotsPerNode = 0
	cfg.N, cfg.K = 4, 2
	cfg.NumBlocks = 12
	cfg.BlockSizeBytes = 128e6
	cfg.RackBps = 100 * netsim.Mbps
	cfg.NodeBps = 100 * netsim.Mbps
	cfg.Policy = fig4Placement()
	cfg.Scheduler = mapred.BDF
	cfg.FailNodes = []topology.NodeID{0}
	cfg.HeartbeatInterval = 0.25
	cfg.OutOfBandHeartbeats = true
	cfg.SourceStrategy = dfs.PreferSameRack // readers hold one source locally
	job := mapred.JobSpec{
		Name:    "fig4",
		MapTime: mapred.Dist{Mean: 10, Std: 0},
	}
	cfg.Trace = o.Trace
	cfg.TraceLabel = "fig4"
	res, err := mapred.RunContext(ctx, cfg, []mapred.JobSpec{job})
	if err != nil {
		return nil, err
	}
	return fig4Table(res)
}

func fig4Table(res *mapred.Result) (*Table, error) {
	recs := append([]mapred.TaskRecord(nil), res.Jobs[0].Tasks...)
	// Sort by launch time (stable: record order is task index).
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].LaunchTime < recs[j-1].LaunchTime; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	t := &Table{
		ID:      "fig4",
		Title:   "BDF launch order on the Figure 4 example",
		Columns: []string{"launch #", "class", "launch time (s)", "node"},
		Notes: []string{
			"paper: degraded launches are #1, #5, #9 at 0 s, 10 s, 30 s",
		},
	}
	for i, r := range recs {
		if r.Class != sched.ClassDegraded {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("#%d", i+1),
			r.Class.String(),
			f1(r.LaunchTime),
			fmt.Sprintf("node%d", r.Node),
		})
	}
	t.Rows = append(t.Rows, []string{"map phase end", "", f1(res.Jobs[0].MapPhaseEnd), ""})
	return t, nil
}
