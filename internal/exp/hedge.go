package exp

import (
	"context"
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "hedge",
		Title: "Degraded-read tail latency under hedged fan-ins (k+Δ races, deadline hedging)",
		Paper: "extension beyond the paper: the paper's degraded reads wait for all k sources; this table quantifies redundant-request fan-ins — fetch k+Δ and keep the first k, or hedge a flow past a latency-quantile deadline — trading extra network volume for tail latency",
		Run:   runHedge,
	})
}

// hedgePolicies is the policy sweep of the hedge table: the unhedged
// baseline, eager k+Δ races, and deadline hedging at the p90 of observed
// per-flow latencies.
var hedgePolicies = []struct {
	name   string
	policy runtime.HedgePolicy
}{
	{"delta=0", runtime.HedgePolicy{}},
	{"delta=1", runtime.HedgePolicy{Extra: 1}},
	{"delta=2", runtime.HedgePolicy{Extra: 2}},
	{"hedge-p90", runtime.HedgePolicy{HedgeQuantile: 0.9, HedgeMinSamples: 8}},
	{"delta=1+p90", runtime.HedgePolicy{Extra: 1, HedgeQuantile: 0.9, HedgeMinSamples: 8}},
}

// hedgeModes runs the sweep under both contention models. Under
// ExclusiveHold the fan-in tail is queueing delay at the busiest source
// NIC, which a spare skips for free (a queued loser has moved no bytes):
// hedging strictly improves the tail. Under FluidFairSharing every extra
// flow dilutes the reader's own NIC share, so the same policies pay a
// latency and wasted-volume price — the table shows both regimes.
var hedgeModes = []netsim.Mode{netsim.ExclusiveHold, netsim.FluidFairSharing}

// hedgeConfig builds the contended scenario the sweep runs in: one map
// slot per node so the reader NIC is not self-saturated, 40 MB/s NICs as
// the bottleneck links, one failed node, and locality-first scheduling,
// which defers degraded tasks until the end of the map phase where their
// fan-ins pile onto the surviving sources at once.
func hedgeConfig(mode netsim.Mode) (mapred.Config, []mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 12
	cfg.Racks = 2
	cfg.MapSlotsPerNode = 1
	cfg.N, cfg.K = 6, 3
	cfg.NumBlocks = 240
	cfg.BlockSizeBytes = 64e6
	cfg.NodeBps = 5 * netsim.Mbps * 64 // 40 MB/s NICs: the bottleneck
	cfg.RackBps = netsim.Gbps
	cfg.NetMode = mode
	cfg.FailNodes = []topology.NodeID{0}

	job := mapred.DefaultJob()
	job.MapTime = mapred.Dist{Mean: 2, Std: 0.2}
	job.NumReduceTasks = 0 // map-only: the table isolates read latency
	return cfg, []mapred.JobSpec{job}
}

// runHedge sweeps the hedge policies over seeded failure runs in both
// contention modes and reports degraded-read and per-flow latency
// percentiles next to the network volume each policy moved and wasted.
func runHedge(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(10, 3)
	quickBlocks := 0
	if o.Quick {
		quickBlocks = 120
	}

	// results[m][v][s] holds mode m, policy v, seed s; aggregation happens
	// sequentially afterwards so the table is deterministic.
	results := make([][][]*mapred.Result, len(hedgeModes))
	for m := range results {
		results[m] = make([][]*mapred.Result, len(hedgePolicies))
		for v := range results[m] {
			results[m][v] = make([]*mapred.Result, seeds)
		}
	}
	perMode := len(hedgePolicies) * seeds
	err := parallelMap(ctx, len(hedgeModes)*perMode, o.parallelism(), func(i int) error {
		m, v, s := i/perMode, (i%perMode)/seeds, i%seeds
		cfg, jobs := hedgeConfig(hedgeModes[m])
		if quickBlocks > 0 {
			cfg.NumBlocks = quickBlocks
		}
		cfg.Seed = int64(s) + 1
		cfg.Hedge = hedgePolicies[v].policy
		cfg.Trace = o.Trace
		cfg.TraceLabel = fmt.Sprintf("%v/%s/seed%d", hedgeModes[m], hedgePolicies[v].name, cfg.Seed)
		res, err := mapred.RunContext(ctx, cfg, jobs)
		if err != nil {
			return fmt.Errorf("%v/%s seed %d: %w", hedgeModes[m], hedgePolicies[v].name, cfg.Seed, err)
		}
		results[m][v][s] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	cfg, _ := hedgeConfig(hedgeModes[0])
	blocks := cfg.NumBlocks
	if quickBlocks > 0 {
		blocks = quickBlocks
	}
	t := &Table{
		ID: "hedge",
		Title: fmt.Sprintf("hedged degraded reads: %d nodes, (%d,%d) code, %d blocks, %d seeds",
			cfg.Nodes, cfg.N, cfg.K, blocks, seeds),
		Columns: []string{"net", "policy", "degraded", "read p50", "read p90", "read p99",
			"flow p50", "flow p99", "moved GB", "wasted GB", "extra", "makespan"},
		Notes: []string{
			"read pXX = percentiles of per-task degraded-read durations (launch to k-th source block), pooled across seeds",
			"flow pXX = percentiles of per-source-flow fan-in latencies (hedged runs only; '-' when unhedged)",
			"extra = wasted bytes (redundant flows cancelled after the k-th arrival) over useful bytes moved",
			"delta=D races k+D eager sources; hedge-p90 launches a standby when a flow outlives the p90 of observed latencies",
			"hold: spares skip the queue at the busiest source NIC and queued losers move no bytes, so the tail shrinks for free; fluid: every extra flow dilutes the reader's fair share, so hedging trades latency and wasted volume",
		},
	}
	for m, mode := range hedgeModes {
		for v, variant := range hedgePolicies {
			var reads, flows []float64
			var moved, wasted, makespan float64
			for _, res := range results[m][v] {
				for j := range res.Jobs {
					reads = append(reads, res.Jobs[j].DegradedReadTimes()...)
					flows = append(flows, res.Jobs[j].DegradedFlowLatencies()...)
				}
				moved += res.BytesMoved
				wasted += res.WastedBytes
				makespan += res.Makespan
			}
			n := float64(len(results[m][v]))
			rq := stats.Quantiles(reads, 0.5, 0.9, 0.99)
			flowP50, flowP99 := "-", "-"
			if len(flows) > 0 {
				fq := stats.Quantiles(flows, 0.5, 0.99)
				flowP50, flowP99 = f1(fq[0]), f1(fq[1])
			}
			extra := "-"
			if moved > 0 {
				extra = pct(wasted / moved * 100)
			}
			t.Rows = append(t.Rows, []string{
				mode.String(), variant.name, fmt.Sprintf("%d", len(reads)),
				f1(rq[0]), f1(rq[1]), f1(rq[2]),
				flowP50, flowP99,
				f2(moved / n / 1e9), f2(wasted / n / 1e9), extra,
				f1(makespan / n),
			})
		}
	}
	return t, nil
}
