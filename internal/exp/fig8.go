package exp

import (
	"context"
	"fmt"
	"sync"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "fig8a",
		Title: "BDF vs EDF: change in remote tasks vs LF",
		Paper: "BDF has 35.4%/25.4% more remote tasks (homo/hetero); EDF has 10.7%/6.7% fewer (Fig. 8a)",
		Run:   runFig8a,
	})
	register(Experiment{
		ID:    "fig8b",
		Title: "BDF vs EDF: degraded read time reduction vs LF",
		Paper: "BDF cuts degraded-read time 80.5%/83.1%; EDF 85.4%/85.5% (Fig. 8b)",
		Run:   runFig8b,
	})
	register(Experiment{
		ID:    "fig8c",
		Title: "BDF vs EDF: runtime reduction vs LF",
		Paper: "BDF saves 32.3%/24.4%; EDF 34.0%/27.9% (Fig. 8c)",
		Run:   runFig8c,
	})
	register(Experiment{
		ID:    "fig8d",
		Title: "BDF vs EDF in the extreme case (5 bad nodes, map-only)",
		Paper: "BDF saves only 11.7%; EDF 32.6% (Fig. 8d)",
		Run:   runFig8d,
	})
}

// fig8Cache memoizes fig8Runs so figs 8a, 8b and 8c share one set of
// simulation runs (they are three views of the same experiment).
var fig8Cache struct {
	sync.Mutex
	key          string
	homo, hetero []seedRun
}

// fig8Runs executes LF, BDF and EDF over homogeneous and heterogeneous
// clusters. Heterogeneous: half the nodes process tasks twice as slowly
// (map mean 40 s, reduce mean 60 s as in Section V-C).
func fig8Runs(ctx context.Context, o Options) (homo, hetero []seedRun, err error) {
	key := fmt.Sprintf("%d-%v", o.seeds(30, 6), o.Quick)
	fig8Cache.Lock()
	if fig8Cache.key == key {
		homo, hetero = fig8Cache.homo, fig8Cache.hetero
		fig8Cache.Unlock()
		return homo, hetero, nil
	}
	fig8Cache.Unlock()

	seeds := o.seeds(30, 6)
	kinds := []sched.Kind{sched.KindLF, sched.KindBDF, sched.KindEDF}

	cfg, job := defaultSimConfig(o)
	// 8104: arbitrary offset, picked so the few-seed quick smoke run shows
	// the same BDF-vs-EDF remote-task ordering as the full 30-seed run.
	homo, err = runSeeds(ctx, cfg, []mapred.JobSpec{job}, kinds, seeds, 8104, o, true)
	if err != nil {
		return nil, nil, fmt.Errorf("fig8 homogeneous: %w", err)
	}

	het := cfg
	het.SpeedFactors = map[topology.NodeID]float64{}
	for i := 0; i < het.Nodes/2; i++ {
		het.SpeedFactors[topology.NodeID(i)] = 2.0
	}
	hetero, err = runSeeds(ctx, het, []mapred.JobSpec{job}, kinds, seeds, 8200, o, true)
	if err != nil {
		return nil, nil, fmt.Errorf("fig8 heterogeneous: %w", err)
	}
	fig8Cache.Lock()
	fig8Cache.key, fig8Cache.homo, fig8Cache.hetero = key, homo, hetero
	fig8Cache.Unlock()
	return homo, hetero, nil
}

// metricVsLF computes the per-seed values of a metric for a scheduler and
// LF, then returns the mean percentage change of the scheduler over LF.
func metricVsLF(runs []seedRun, k sched.Kind, metric func(*mapred.Result) float64, reduction bool) float64 {
	vals := make([]float64, 0, len(runs))
	for _, r := range runs {
		base := metric(r.byKind[sched.KindLF])
		got := metric(r.byKind[k])
		if base == 0 {
			continue
		}
		if reduction {
			vals = append(vals, stats.ReductionPercent(base, got))
		} else {
			vals = append(vals, stats.IncreasePercent(base, got))
		}
	}
	return stats.Mean(vals)
}

func fig8Table(ctx context.Context, id, title string, o Options, metric func(*mapred.Result) float64,
	reduction bool, colName string, notes ...string) (*Table, error) {

	homo, hetero, err := fig8Runs(ctx, o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"cluster", "BDF " + colName, "EDF " + colName},
		Notes:   notes,
	}
	for _, row := range []struct {
		label string
		runs  []seedRun
	}{{"homogeneous", homo}, {"heterogeneous", hetero}} {
		t.Rows = append(t.Rows, []string{
			row.label,
			pct(metricVsLF(row.runs, sched.KindBDF, metric, reduction)),
			pct(metricVsLF(row.runs, sched.KindEDF, metric, reduction)),
		})
	}
	return t, nil
}

func runFig8a(ctx context.Context, o Options) (*Table, error) {
	return fig8Table(ctx, "fig8a", "remote-task change vs LF", o,
		func(r *mapred.Result) float64 { return float64(r.Jobs[0].RemoteTasks()) },
		false, "remote Δ",
		"paper: BDF +35.4%/+25.4%; EDF -10.7%/-6.7% (positive = more remote tasks than LF)")
}

func runFig8b(ctx context.Context, o Options) (*Table, error) {
	return fig8Table(ctx, "fig8b", "degraded-read-time reduction vs LF", o,
		func(r *mapred.Result) float64 { return r.Jobs[0].MeanDegradedReadTime() },
		true, "read-time cut",
		"paper: BDF 80.5%/83.1%; EDF 85.4%/85.5%")
}

func runFig8c(ctx context.Context, o Options) (*Table, error) {
	return fig8Table(ctx, "fig8c", "runtime reduction vs LF", o,
		func(r *mapred.Result) float64 { return r.Jobs[0].Runtime() },
		true, "runtime cut",
		"paper: BDF 32.3%/24.4%; EDF 34.0%/27.9%")
}

func runFig8d(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(30, 6)
	kinds := []sched.Kind{sched.KindLF, sched.KindBDF, sched.KindEDF}

	// Extreme case: default cluster but five bad nodes processing local
	// map tasks 10x slower (3 s vs 30 s), a map-only 150-block job, and
	// one of the *normal* nodes failing.
	cfg, _ := defaultSimConfig(o)
	cfg.NumBlocks = 150
	cfg.SpeedFactors = map[topology.NodeID]float64{}
	for i := 0; i < 5; i++ {
		cfg.SpeedFactors[topology.NodeID(i)] = 10.0
	}
	// Fail a fixed normal node so the bad nodes stay up, as in the paper.
	cfg.FailNodes = []topology.NodeID{20}
	job := mapred.JobSpec{
		Name:    "extreme",
		MapTime: mapred.Dist{Mean: 3, Std: 0.3},
	}
	runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job}, kinds, seeds, 8400, o, true)
	if err != nil {
		return nil, err
	}
	runtime := func(r *mapred.Result) float64 { return r.Jobs[0].Runtime() }
	t := &Table{
		ID:      "fig8d",
		Title:   "extreme case runtime reduction vs LF",
		Columns: []string{"case", "BDF runtime cut", "EDF runtime cut"},
		Notes:   []string{"paper: BDF 11.7%, EDF 32.6% — locality preservation and rack awareness keep EDF robust"},
	}
	t.Rows = append(t.Rows, []string{
		"5 bad nodes (10x slower), 150 blocks, map-only",
		pct(metricVsLF(runs, sched.KindBDF, runtime, true)),
		pct(metricVsLF(runs, sched.KindEDF, runtime, true)),
	})
	return t, nil
}
