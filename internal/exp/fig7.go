package exp

import (
	"context"
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig7a",
		Title: "Simulation: LF vs EDF across erasure coding schemes",
		Paper: "EDF cuts LF's normalized runtime 17.4% for (8,6) up to 32.9% for (20,15) (Fig. 7a)",
		Run:   runFig7a,
	})
	register(Experiment{
		ID:    "fig7b",
		Title: "Simulation: LF vs EDF across block counts F",
		Paper: "reduction drops as F grows but stays 34.8%-39.6% (Fig. 7b)",
		Run:   runFig7b,
	})
	register(Experiment{
		ID:    "fig7c",
		Title: "Simulation: LF vs EDF across rack bandwidths",
		Paper: "normalized runtimes rise as bandwidth falls; up to 35.1% mean reduction at 500 Mbps (Fig. 7c)",
		Run:   runFig7c,
	})
	register(Experiment{
		ID:    "fig7d",
		Title: "Simulation: LF vs EDF across failure patterns",
		Paper: "mean reductions 33.2% (single node), 22.3% (double node), 5.9% (rack) (Fig. 7d)",
		Run:   runFig7d,
	})
	register(Experiment{
		ID:    "fig7e",
		Title: "Simulation: LF vs EDF across shuffle ratios",
		Paper: "LF roughly unaffected; EDF degrades with shuffle volume but still saves 20.0%-33.2% (Fig. 7e)",
		Run:   runFig7e,
	})
	register(Experiment{
		ID:    "fig7f",
		Title: "Simulation: LF vs EDF with 10 concurrent jobs (FIFO)",
		Paper: "EDF reduces per-job normalized runtime 28.6%-48.6% (Fig. 7f)",
		Run:   runFig7f,
	})
}

// defaultSimConfig is the Section V-B default scenario.
func defaultSimConfig(o Options) (mapred.Config, mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	job := mapred.DefaultJob()
	if o.Quick {
		cfg.NumBlocks = 720
	}
	return cfg, job
}

// fig7Sweep runs LF and EDF over a parameter sweep and renders boxplot
// rows.
func fig7Sweep(ctx context.Context, id, title string, o Options, labels []string,
	mutate func(i int, cfg *mapred.Config, job *mapred.JobSpec), notes ...string) (*Table, error) {

	seeds := o.seeds(30, 6)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"setting", "LF mean", "LF box [min q1 med q3 max]", "EDF mean", "EDF box [min q1 med q3 max]", "EDF vs LF"},
		Notes:   notes,
	}
	for i, label := range labels {
		cfg, job := defaultSimConfig(o)
		mutate(i, &cfg, &job)
		runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job},
			[]sched.Kind{sched.KindLF, sched.KindEDF}, seeds, int64(1000*(i+1)), o, true)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, label, err)
		}
		lf := stats.Summarize(normalizedRuntimes(runs, sched.KindLF, 0))
		edf := stats.Summarize(normalizedRuntimes(runs, sched.KindEDF, 0))
		t.Rows = append(t.Rows, []string{
			label,
			f3(lf.Mean), boxCells(lf),
			f3(edf.Mean), boxCells(edf),
			pct(stats.ReductionPercent(lf.Mean, edf.Mean)),
		})
	}
	return t, nil
}

func boxCells(s stats.Summary) string {
	return fmt.Sprintf("[%.2f %.2f %.2f %.2f %.2f]", s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

func runFig7a(ctx context.Context, o Options) (*Table, error) {
	codes := []struct{ n, k int }{{8, 6}, {12, 9}, {16, 12}, {20, 15}}
	labels := []string{"(8,6)", "(12,9)", "(16,12)", "(20,15)"}
	return fig7Sweep(ctx, "fig7a", "simulation vs coding scheme", o, labels,
		func(i int, cfg *mapred.Config, job *mapred.JobSpec) {
			cfg.N, cfg.K = codes[i].n, codes[i].k
		},
		"paper: reduction grows with (n,k), 17.4% to 32.9%")
}

func runFig7b(ctx context.Context, o Options) (*Table, error) {
	fs := []int{720, 1440, 2160, 2880}
	labels := []string{"F=720", "F=1440", "F=2160", "F=2880"}
	if o.Quick {
		fs = []int{360, 720, 1080}
		labels = []string{"F=360", "F=720", "F=1080"}
	}
	return fig7Sweep(ctx, "fig7b", "simulation vs block count", o, labels,
		func(i int, cfg *mapred.Config, job *mapred.JobSpec) {
			cfg.NumBlocks = fs[i]
		},
		"paper: reduction 34.8%-39.6%, shrinking as F grows")
}

func runFig7c(ctx context.Context, o Options) (*Table, error) {
	ws := []float64{250 * netsim.Mbps, 500 * netsim.Mbps, 750 * netsim.Mbps, 1000 * netsim.Mbps}
	labels := []string{"250Mbps", "500Mbps", "750Mbps", "1Gbps"}
	return fig7Sweep(ctx, "fig7c", "simulation vs rack bandwidth", o, labels,
		func(i int, cfg *mapred.Config, job *mapred.JobSpec) {
			cfg.RackBps = ws[i]
		},
		"paper: normalized runtimes rise as W falls; up to 35.1% mean reduction at 500 Mbps")
}

func runFig7d(ctx context.Context, o Options) (*Table, error) {
	patterns := []topology.FailurePattern{
		topology.SingleNodeFailure, topology.DoubleNodeFailure, topology.RackFailure,
	}
	labels := []string{"single-node", "double-node", "rack"}
	return fig7Sweep(ctx, "fig7d", "simulation vs failure pattern", o, labels,
		func(i int, cfg *mapred.Config, job *mapred.JobSpec) {
			cfg.Failure = patterns[i]
		},
		"paper: mean reductions 33.2%, 22.3%, 5.9%")
}

func runFig7e(ctx context.Context, o Options) (*Table, error) {
	ratios := []float64{0.01, 0.10, 0.20, 0.30}
	labels := []string{"1%", "10%", "20%", "30%"}
	return fig7Sweep(ctx, "fig7e", "simulation vs shuffle ratio", o, labels,
		func(i int, cfg *mapred.Config, job *mapred.JobSpec) {
			job.ShuffleRatio = ratios[i]
		},
		"paper: EDF's gain narrows with shuffle volume but stays 20.0%-33.2%")
}

func runFig7f(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(10, 3)
	cfg, job := defaultSimConfig(o)
	numJobs := 10
	if o.Quick {
		numJobs = 4
	}
	job.NumBlocks = cfg.NumBlocks
	jobs, err := workload.GenerateMultiJob(workload.MultiJobOptions{
		NumJobs:          numJobs,
		MeanInterArrival: 120,
		Template:         job,
		VaryBlocks:       3,
		Seed:             99,
	})
	if err != nil {
		return nil, err
	}
	runs, err := runSeeds(ctx, cfg, jobs, []sched.Kind{sched.KindLF, sched.KindEDF},
		seeds, 7000, o, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7f",
		Title:   "simulation, multi-job FIFO",
		Columns: []string{"job", "blocks", "LF mean norm", "EDF mean norm", "EDF vs LF"},
		Notes:   []string{"paper: per-job reductions 28.6%-48.6%"},
	}
	for j := range jobs {
		lf := stats.Mean(normalizedRuntimes(runs, sched.KindLF, j))
		edf := stats.Mean(normalizedRuntimes(runs, sched.KindEDF, j))
		t.Rows = append(t.Rows, []string{
			jobs[j].Name,
			fmt.Sprintf("%d", jobs[j].NumBlocks),
			f3(lf), f3(edf),
			pct(stats.ReductionPercent(lf, edf)),
		})
	}
	return t, nil
}
