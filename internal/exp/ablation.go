package exp

import (
	"context"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
)

// Ablation benches for the design choices DESIGN.md calls out: the
// network-contention model, the degraded-read source-selection strategy,
// and the pacing rule itself.

func init() {
	register(Experiment{
		ID:    "ablation-netmode",
		Title: "Ablation: fluid fair sharing vs exclusive-hold network model",
		Paper: "not in paper — contention-model sensitivity of the headline result",
		Run:   runAblationNetMode,
	})
	register(Experiment{
		ID:    "ablation-sources",
		Title: "Ablation: degraded-read source selection (random-k vs prefer-same-rack)",
		Paper: "not in paper — the analysis assumes random-k; rack-local sources shrink degraded reads",
		Run:   runAblationSources,
	})
	register(Experiment{
		ID:    "ablation-pacing",
		Title: "Ablation: BDF pacing vs unpaced all-degraded-first",
		Paper: "not in paper — motivates Algorithm 2's m/M >= m_d/M_d rule",
		Run:   runAblationPacing,
	})
}

func runAblationNetMode(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(15, 4)
	t := &Table{
		ID:      "ablation-netmode",
		Title:   "contention model sensitivity",
		Columns: []string{"net model", "LF mean norm", "EDF mean norm", "EDF vs LF"},
		Notes:   []string{"the EDF-beats-LF shape must hold under both contention models"},
	}
	for _, mode := range []netsim.Mode{netsim.FluidFairSharing, netsim.ExclusiveHold} {
		cfg, job := defaultSimConfig(o)
		cfg.NetMode = mode
		runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job},
			[]sched.Kind{sched.KindLF, sched.KindEDF}, seeds, 8800, o, true)
		if err != nil {
			return nil, err
		}
		lf := stats.Mean(normalizedRuntimes(runs, sched.KindLF, 0))
		edf := stats.Mean(normalizedRuntimes(runs, sched.KindEDF, 0))
		t.Rows = append(t.Rows, []string{
			mode.String(), f3(lf), f3(edf), pct(stats.ReductionPercent(lf, edf)),
		})
	}
	return t, nil
}

func runAblationSources(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(15, 4)
	t := &Table{
		ID:      "ablation-sources",
		Title:   "degraded-read source selection",
		Columns: []string{"strategy", "scheduler", "mean norm runtime", "mean degraded read (s)"},
		Notes:   []string{"prefer-same-rack reduces cross-rack volume and degraded-read time for both schedulers"},
	}
	for _, strat := range []dfs.SelectionStrategy{dfs.RandomK, dfs.PreferSameRack} {
		cfg, job := defaultSimConfig(o)
		cfg.SourceStrategy = strat
		runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job},
			[]sched.Kind{sched.KindLF, sched.KindEDF}, seeds, 8900, o, true)
		if err != nil {
			return nil, err
		}
		for _, k := range []sched.Kind{sched.KindLF, sched.KindEDF} {
			var reads []float64
			for _, r := range runs {
				reads = append(reads, r.byKind[k].Jobs[0].MeanDegradedReadTime())
			}
			t.Rows = append(t.Rows, []string{
				strat.String(), k.String(),
				f3(stats.Mean(normalizedRuntimes(runs, k, 0))),
				f2(stats.Mean(reads)),
			})
		}
	}
	return t, nil
}

func runAblationPacing(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(15, 4)
	cfg, job := defaultSimConfig(o)
	kinds := []sched.Kind{sched.KindLF, sched.KindEagerDF, sched.KindBDF, sched.KindEDF}
	runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job}, kinds, seeds, 9000, o, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-pacing",
		Title:   "pacing rule ablation",
		Columns: []string{"scheduler", "mean norm runtime", "mean degraded read (s)", "vs LF"},
		Notes: []string{
			"EagerDF launches every degraded task immediately (no pacing): degraded reads collide at the start instead of the end",
		},
	}
	lfMean := stats.Mean(normalizedRuntimes(runs, sched.KindLF, 0))
	for _, k := range kinds {
		var reads []float64
		for _, r := range runs {
			reads = append(reads, r.byKind[k].Jobs[0].MeanDegradedReadTime())
		}
		mean := stats.Mean(normalizedRuntimes(runs, k, 0))
		t.Rows = append(t.Rows, []string{
			k.String(), f3(mean), f2(stats.Mean(reads)),
			pct(stats.ReductionPercent(lfMean, mean)),
		})
	}
	return t, nil
}
