package exp

import (
	"context"
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Title: "Simulation: degraded-first vs locality-first under fat-tree oversubscription",
		Paper: "extension beyond the paper: the paper's two-level network (Fig. 1) has one cross-rack bottleneck; this sweep rebuilds the cluster as a 2-pod fat tree and tightens the edge-uplink oversubscription ratio",
		Run:   runScale,
	})
}

// scaleOversubs is the edge-uplink oversubscription sweep: 1:1 is a
// non-blocking fabric, 10:1 starves cross-edge traffic.
var scaleOversubs = []float64{1, 2.5, 5, 10}

// runScale runs the paper's default single-job/single-failure scenario
// on a 40-node fat tree (2 pods x 4 edges x 5 nodes), sweeping the edge
// oversubscription ratio and comparing LF, BDF and EDF. Degraded reads
// ride the oversubscribed edge uplinks, so degraded-first's head start
// matters more as the ratio grows.
func runScale(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(20, 4)
	kinds := []sched.Kind{sched.KindLF, sched.KindBDF, sched.KindEDF}

	t := &Table{
		ID:    "scale",
		Title: "fat-tree oversubscription sweep: 40 nodes, 2 pods x 4 edges x 5 nodes, single-node failure",
		Columns: []string{"edge oversub", "LF mean", "BDF mean", "EDF mean",
			"BDF vs LF", "EDF vs LF"},
		Notes: []string{
			"normalized runtime = failure-mode job runtime / failure-free runtime, averaged over seeds",
			"gigabit NICs; edge uplink = 5 Gbps / oversub; pod uplink 2:1 over the edges; non-blocking core",
		},
	}
	for i, oversub := range scaleOversubs {
		spec, err := topology.FatTree(topology.FatTreeConfig{
			Pods: 2, EdgesPerPod: 4, NodesPerEdge: 5,
			NodeBps:     netsim.Gbps,
			EdgeOversub: oversub,
			PodOversub:  2,
		})
		if err != nil {
			return nil, err
		}
		cfg := mapred.DefaultConfig()
		cfg.Nodes, cfg.Racks, cfg.RackBps = 0, 0, 0
		cfg.Topology = &spec
		cfg.NumBlocks = 720
		if o.Quick {
			cfg.NumBlocks = 240
		}
		job := mapred.DefaultJob()

		runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job}, kinds, seeds, int64(12000*(i+1)), o, true)
		if err != nil {
			return nil, fmt.Errorf("scale oversub %v: %w", oversub, err)
		}
		lf := stats.Summarize(normalizedRuntimes(runs, sched.KindLF, 0))
		bdf := stats.Summarize(normalizedRuntimes(runs, sched.KindBDF, 0))
		edf := stats.Summarize(normalizedRuntimes(runs, sched.KindEDF, 0))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g:1", oversub),
			f3(lf.Mean), f3(bdf.Mean), f3(edf.Mean),
			pct(stats.ReductionPercent(lf.Mean, bdf.Mean)),
			pct(stats.ReductionPercent(lf.Mean, edf.Mean)),
		})
	}
	return t, nil
}
