package exp

import (
	"context"
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
)

// Extension experiments beyond the paper's artifacts: the LRC study that
// footnote 1 gestures at, and the delay-scheduling baseline from the
// related work.

func init() {
	register(Experiment{
		ID:    "ext-lrc",
		Title: "Extension: RS(16,12) vs LRC(12,2,2) under LF and EDF",
		Paper: "footnote 1: degraded-first also applies to repair-efficient codes; LRC repairs from k/l=6 blocks so LF's end-of-phase pain shrinks but EDF still wins",
		Run:   runExtLRC,
	})
	register(Experiment{
		ID:    "ext-delay",
		Title: "Extension: delay scheduling baseline (Zaharia et al. 2010) in failure mode",
		Paper: "related work [35]: delay scheduling optimizes locality, not degraded reads — it behaves like LF in failure mode while EDF wins",
		Run:   runExtDelay,
	})
}

func runExtLRC(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(15, 4)
	t := &Table{
		ID:    "ext-lrc",
		Title: "repair-efficient codes: degraded-read cost vs scheduling gains",
		Columns: []string{"code", "repair blocks", "LF mean norm", "EDF mean norm",
			"EDF vs LF", "LF deg read (s)", "EDF deg read (s)"},
		Notes: []string{
			"LRC(12,2,2) repairs a single lost block from its 6-block local group instead of k=12 blocks",
			"cheaper repairs shrink LF's degraded-read tail, so EDF's margin narrows — but never inverts",
		},
	}
	cases := []struct {
		label  string
		n, k   int
		repair int
	}{
		{"RS(16,12)", 16, 12, 12},
		{"LRC(12,2,2)", 16, 12, 6}, // same stripe width/rate; local-group repair
	}
	for i, cse := range cases {
		cfg, job := defaultSimConfig(o)
		cfg.N, cfg.K = cse.n, cse.k
		cfg.RepairBlockCount = cse.repair
		runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job},
			[]sched.Kind{sched.KindLF, sched.KindEDF}, seeds, int64(9600+100*i), o, true)
		if err != nil {
			return nil, err
		}
		lf := stats.Mean(normalizedRuntimes(runs, sched.KindLF, 0))
		edf := stats.Mean(normalizedRuntimes(runs, sched.KindEDF, 0))
		var lfRead, edfRead []float64
		for _, r := range runs {
			lfRead = append(lfRead, r.byKind[sched.KindLF].Jobs[0].MeanDegradedReadTime())
			edfRead = append(edfRead, r.byKind[sched.KindEDF].Jobs[0].MeanDegradedReadTime())
		}
		t.Rows = append(t.Rows, []string{
			cse.label, f1(float64(cse.repair)),
			f3(lf), f3(edf), pct(stats.ReductionPercent(lf, edf)),
			f2(stats.Mean(lfRead)), f2(stats.Mean(edfRead)),
		})
	}
	return t, nil
}

func runExtDelay(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(15, 4)
	cfg, job := defaultSimConfig(o)
	kinds := []sched.Kind{sched.KindLF, sched.KindDelayLF, sched.KindEDF}
	runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job}, kinds, seeds, 9700, o, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-delay",
		Title:   "delay scheduling vs degraded-first in failure mode",
		Columns: []string{"scheduler", "mean norm runtime", "remote tasks (mean)", "deg read (s)"},
		Notes: []string{
			"delay scheduling trades slot idleness for locality; it does nothing about degraded-read bunching",
		},
	}
	for _, k := range kinds {
		var remotes, reads []float64
		for _, r := range runs {
			remotes = append(remotes, float64(r.byKind[k].Jobs[0].RemoteTasks()))
			reads = append(reads, r.byKind[k].Jobs[0].MeanDegradedReadTime())
		}
		t.Rows = append(t.Rows, []string{
			k.String(),
			f3(stats.Mean(normalizedRuntimes(runs, k, 0))),
			f1(stats.Mean(remotes)),
			f2(stats.Mean(reads)),
		})
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "ext-midjob",
		Title: "Extension: node fails mid-job (Hadoop-style recovery)",
		Paper: "not in paper (it fails the node before the job): with a mid-map-phase failure EDF still beats LF, though both pay the re-execution cost",
		Run:   runExtMidJob,
	})
}

func runExtMidJob(ctx context.Context, o Options) (*Table, error) {
	seeds := o.seeds(15, 4)
	t := &Table{
		ID:      "ext-midjob",
		Title:   "mid-job failure: runtime vs failure time",
		Columns: []string{"failure time", "LF mean norm", "EDF mean norm", "EDF vs LF"},
		Notes: []string{
			"failure injected while the job runs; running tasks on the dead node re-execute, lost map outputs regenerate, reducers restart",
			"the paper's experiments fail the node before the job starts (first row reproduces that)",
		},
	}
	// The default map phase is roughly 180-250 s of virtual time. Quick mode
	// halves the block count (and so the phase length): the mid-phase
	// injection times scale with it, otherwise the late injection can land
	// after the job already finished and measure nothing.
	failTimes := []float64{0, 60, 150}
	if o.Quick {
		failTimes = []float64{0, 30, 75}
	}
	for i, failAt := range failTimes {
		cfg, job := defaultSimConfig(o)
		cfg.FailAt = failAt
		runs, err := runSeeds(ctx, cfg, []mapred.JobSpec{job},
			[]sched.Kind{sched.KindLF, sched.KindEDF}, seeds, int64(9900+100*i), o, true)
		if err != nil {
			return nil, err
		}
		lf := stats.Mean(normalizedRuntimes(runs, sched.KindLF, 0))
		edf := stats.Mean(normalizedRuntimes(runs, sched.KindEDF, 0))
		label := "before job (t=0)"
		if failAt > 0 {
			label = fmt.Sprintf("t=%.0fs (mid map phase)", failAt)
		}
		t.Rows = append(t.Rows, []string{
			label, f3(lf), f3(edf), pct(stats.ReductionPercent(lf, edf)),
		})
	}
	return t, nil
}
