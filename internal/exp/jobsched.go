package exp

import (
	"context"
	"fmt"
	"sort"

	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "jobsched",
		Title: "Multi-tenant job storm across job-level scheduling policies",
		Paper: "extension beyond the paper: the paper fixes FIFO job order (Fig. 7f); this table stresses the pluggable job-level layer with per-tenant queueing-delay percentiles",
		Run:   runJobSched,
	})
}

// stormPolicies is the policy sweep order of the jobsched table.
var stormPolicies = []jobsched.Kind{
	jobsched.Fifo, jobsched.FairShare, jobsched.Quota, jobsched.Deadline,
}

// runJobSched floods a small cluster with thousands of tiny jobs from
// three tenants of unequal weight and share, runs the storm under every
// job-level policy, and reports per-tenant wait (queueing delay) and
// runtime percentiles plus the storm makespan.
func runJobSched(ctx context.Context, o Options) (*Table, error) {
	numJobs := 1200
	if o.Quick {
		numJobs = 150
	}

	cfg := mapred.DefaultConfig()
	cfg.Nodes = 8
	cfg.Racks = 2
	cfg.N, cfg.K = 4, 2
	cfg.NumBlocks = 64
	cfg.BlockSizeBytes = 16e6
	cfg.RackBps = netsim.Gbps

	tpl := mapred.DefaultJob()
	tpl.NumBlocks = 4
	tpl.MapTime = mapred.Dist{Mean: 3, Std: 0.3}
	tpl.ReduceTime = mapred.Dist{Mean: 2, Std: 0.2}
	tpl.NumReduceTasks = 1
	tpl.ShuffleRatio = 0.05

	jobs, err := workload.GenerateStorm(workload.StormOptions{
		NumJobs: numJobs,
		Tenants: []workload.TenantSpec{
			{Name: "alpha", Weight: 4, Share: 0.5},
			{Name: "beta", Weight: 2, Share: 0.3},
			{Name: "gamma", Weight: 1, Share: 0.2},
		},
		MeanInterArrival: 0.5,
		Template:         tpl,
		VaryBlocks:       4,
		DeadlineSlack:    60,
		Seed:             42,
	})
	if err != nil {
		return nil, err
	}

	policies := stormPolicies
	if o.JobSched != "" {
		k, err := jobsched.ParseKind(o.JobSched)
		if err != nil {
			return nil, err
		}
		policies = []jobsched.Kind{k}
	}

	results := make([]*mapred.Result, len(policies))
	err = parallelMap(ctx, len(policies), o.parallelism(), func(i int) error {
		c := cfg
		c.Seed = 1
		c.Trace = o.Trace
		c.TraceLabel = policies[i].String()
		c.JobSched = jobsched.Config{Policy: policies[i], QuotaSlots: 4}
		res, err := mapred.RunContext(ctx, c, jobs)
		if err != nil {
			return fmt.Errorf("%v: %w", policies[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "jobsched",
		Title: fmt.Sprintf("job storm: %d jobs, 3 tenants, 8 nodes", numJobs),
		Columns: []string{"policy", "tenant", "jobs", "wait p50", "wait p90",
			"wait p99", "run p50", "run p90", "makespan"},
		Notes: []string{
			"wait = queueing delay from submission to first map-slot grant, rebuilt from job-queued/job-grant trace pairs",
			"tenants: alpha weight 4 share 0.5, beta weight 2 share 0.3, gamma weight 1 share 0.2; quota policy caps 4 concurrent slots per tenant",
		},
	}
	for i, policy := range policies {
		res := results[i]
		byTenant := map[string][]int{}
		for j := range res.Jobs {
			byTenant[res.Jobs[j].Tenant] = append(byTenant[res.Jobs[j].Tenant], j)
		}
		tenants := make([]string, 0, len(byTenant))
		for name := range byTenant {
			tenants = append(tenants, name)
		}
		sort.Strings(tenants)

		all := make([]int, len(res.Jobs))
		for j := range all {
			all[j] = j
		}
		t.Rows = append(t.Rows, stormRow(policy.String(), "(all)", res, all, f1(res.Makespan)))
		for _, name := range tenants {
			t.Rows = append(t.Rows, stormRow(policy.String(), name, res, byTenant[name], ""))
		}
	}
	return t, nil
}

// stormRow renders one policy x tenant percentile row over job indices.
func stormRow(policy, tenant string, res *mapred.Result, idx []int, makespan string) []string {
	waits := make([]float64, 0, len(idx))
	runtimes := make([]float64, 0, len(idx))
	for _, j := range idx {
		waits = append(waits, res.Jobs[j].QueueDelay)
		runtimes = append(runtimes, res.Jobs[j].Runtime())
	}
	w := stats.Quantiles(waits, 0.5, 0.9, 0.99)
	r := stats.Quantiles(runtimes, 0.5, 0.9)
	return []string{
		policy, tenant, fmt.Sprintf("%d", len(idx)),
		f2(w[0]), f2(w[1]), f2(w[2]),
		f1(r[0]), f1(r[1]),
		makespan,
	}
}
