package mapred

import (
	"testing"

	"degradedfirst/internal/netsim"
	"degradedfirst/internal/topology"
)

// fatTreeConfig is smallConfig on a 12-node fat-tree fabric instead of
// the two-level shape: 2 pods x 2 edges x 3 nodes with a 4:1
// oversubscribed edge tier.
func fatTreeConfig(t *testing.T) Config {
	t.Helper()
	spec, err := topology.FatTree(topology.FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3,
		NodeBps: 1 * netsim.Gbps, EdgeOversub: 4, PodOversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Nodes, cfg.Racks, cfg.RackBps = 0, 0, 0
	cfg.Topology = &spec
	return cfg
}

// TestMultiTierRun exercises the simulator end to end on a fat-tree
// cluster: all three schedulers finish, results are deterministic, and
// degraded-first still beats locality-first under failure.
func TestMultiTierRun(t *testing.T) {
	for _, kind := range []SchedulerKind{LF, BDF, EDF} {
		cfg := fatTreeConfig(t)
		cfg.Scheduler = kind
		cfg.Seed = 7
		res := mustRun(t, cfg, smallJob())
		if res.Makespan <= 0 {
			t.Fatalf("%v: non-positive makespan %v", kind, res.Makespan)
		}
		again := mustRun(t, cfg, smallJob())
		if res.Makespan != again.Makespan {
			t.Fatalf("%v: non-deterministic makespan: %v vs %v", kind, res.Makespan, again.Makespan)
		}
	}
}

// TestMultiTierConfigValidation pins the Topology/legacy-field
// exclusion and spec validation in the run config.
func TestMultiTierConfigValidation(t *testing.T) {
	cfg := fatTreeConfig(t)
	cfg.Nodes = 12 // conflicts with Topology
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("Topology alongside Nodes must fail")
	}
	cfg = fatTreeConfig(t)
	cfg.Topology = &topology.Spec{Nodes: -1}
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("invalid spec must fail")
	}
}

// TestTwoLevelSpecRunMatchesLegacy pins the projection property at the
// simulator level: a run configured through a TwoLevel spec (capacities
// carried by the spec) is bit-identical to the same run configured
// through the legacy Nodes/Racks/RackBps fields.
func TestTwoLevelSpecRunMatchesLegacy(t *testing.T) {
	for _, kind := range []SchedulerKind{LF, BDF, EDF} {
		legacy := smallConfig()
		legacy.Scheduler = kind
		legacy.Seed = 11

		spec := topology.TwoLevel(legacy.Nodes, legacy.Racks, 0, legacy.RackBps, 0)
		viaSpec := legacy
		viaSpec.Nodes, viaSpec.Racks, viaSpec.RackBps = 0, 0, 0
		viaSpec.Topology = &spec

		want := mustRun(t, legacy, smallJob())
		got := mustRun(t, viaSpec, smallJob())
		if got.Makespan != want.Makespan {
			t.Fatalf("%v: spec-configured makespan %v differs from legacy %v", kind, got.Makespan, want.Makespan)
		}
		if got.BytesMoved != want.BytesMoved || got.TotalRuntime() != want.TotalRuntime() {
			t.Fatalf("%v: spec-configured run diverged: %+v vs %+v", kind, got, want)
		}
	}
}
