package mapred

import (
	"reflect"
	"testing"

	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

func TestMidRunFailureCompletes(t *testing.T) {
	// Fail a node a third of the way into the map phase: the job must
	// still finish, with no task or reduce record on the dead node after
	// the failure time.
	cfg := smallConfig()
	cfg.Seed = 61
	cfg.FailNodes = []topology.NodeID{4}
	cfg.FailAt = 20
	cfg.Scheduler = EDF
	res := mustRun(t, cfg, smallJob())
	if len(res.Failed) != 1 || res.Failed[0] != 4 {
		t.Fatalf("failed = %v", res.Failed)
	}
	jr := res.Jobs[0]
	for _, rec := range jr.Tasks {
		if rec.FinishTime == 0 {
			t.Fatalf("task %d never completed", rec.Task)
		}
		if rec.Node == 4 && rec.FinishTime > cfg.FailAt {
			t.Fatalf("task %d finished on the dead node at %.1f", rec.Task, rec.FinishTime)
		}
	}
	if len(jr.Reduces) != smallJob().NumReduceTasks {
		t.Fatalf("reduces = %d", len(jr.Reduces))
	}
	for _, r := range jr.Reduces {
		if r.Node == 4 {
			t.Fatal("reduce completed on the dead node")
		}
	}
	// Degraded tasks exist: blocks on node 4 became degraded mid-run.
	if jr.CountByClass()[sched.ClassDegraded] == 0 {
		t.Fatal("mid-run failure produced no degraded tasks")
	}
}

func TestMidRunFailureMapOnly(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 67
	cfg.FailNodes = []topology.NodeID{1}
	cfg.FailAt = 15
	job := smallJob()
	job.NumReduceTasks = 0
	job.ShuffleRatio = 0
	res := mustRun(t, cfg, job)
	jr := res.Jobs[0]
	// Map-only outputs go to the DFS: completed maps on the failed node
	// are NOT re-executed; only running/pending work moves.
	for _, rec := range jr.Tasks {
		if rec.FinishTime == 0 {
			t.Fatalf("task %d never completed", rec.Task)
		}
	}
	if jr.MapPhaseEnd != jr.FinishTime {
		t.Fatal("map-only job must end with map phase")
	}
}

func TestMidRunFailureLateInReducePhase(t *testing.T) {
	// Failure long after the map phase: outputs on the dead node that
	// reducers still need force map re-execution, and the job still ends.
	cfg := smallConfig()
	cfg.Seed = 71
	cfg.FailNodes = []topology.NodeID{7}
	cfg.FailAt = 60 // map phase of the small job ends around 30-50 s
	cfg.Scheduler = LF
	res := mustRun(t, cfg, smallJob())
	jr := res.Jobs[0]
	if jr.FinishTime <= cfg.FailAt {
		t.Skip("job finished before the injected failure; nothing to recover")
	}
	for _, r := range jr.Reduces {
		if r.Node == 7 {
			t.Fatal("reduce record on dead node")
		}
	}
}

func TestMidRunFailureDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 73
	cfg.FailAt = 25
	cfg.Scheduler = EDF
	a := mustRun(t, cfg, smallJob())
	b := mustRun(t, cfg, smallJob())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("mid-run failure runs must be deterministic")
	}
}

func TestMidRunFailureBeforeAnythingEqualsTimeZero(t *testing.T) {
	// Failing at t=0 via FailAt must behave like immediate failure for
	// job-level outcomes (modulo the instant of classification, which for
	// a t=0 event precedes submission exactly as the immediate path does).
	base := smallConfig()
	base.Seed = 79
	base.FailNodes = []topology.NodeID{3}
	base.Scheduler = EDF
	immediate := mustRun(t, base, smallJob())
	// FailAt tiny but positive: everything still pending at injection.
	mid := base
	mid.FailAt = 1e-9
	viaEvent := mustRun(t, mid, smallJob())
	if immediate.Jobs[0].CountByClass()[sched.ClassDegraded] !=
		viaEvent.Jobs[0].CountByClass()[sched.ClassDegraded] {
		t.Fatalf("degraded counts diverge: %v vs %v",
			immediate.Jobs[0].CountByClass(), viaEvent.Jobs[0].CountByClass())
	}
}

func TestFailAtValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.FailAt = -1
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("negative FailAt must fail")
	}
}

func TestMidRunDoubleFailure(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 83
	cfg.Failure = topology.DoubleNodeFailure
	cfg.FailAt = 18
	cfg.Scheduler = EDF
	res := mustRun(t, cfg, smallJob())
	if len(res.Failed) != 2 {
		t.Fatalf("failed = %v", res.Failed)
	}
	for _, rec := range res.Jobs[0].Tasks {
		if rec.FinishTime == 0 {
			t.Fatal("unfinished task after double mid-run failure")
		}
		if !topologyAlive(res.Failed, rec.Node) && rec.FinishTime > cfg.FailAt {
			t.Fatal("task finished on dead node after failure")
		}
	}
}
