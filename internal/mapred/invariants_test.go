package mapred

import (
	"sort"
	"testing"
	"testing/quick"

	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// checkSlotInvariant verifies that at no instant did a node run more map
// tasks than its map slots (a task occupies its slot from launch to
// finish, including transfer time), and likewise for reduce slots.
func checkSlotInvariant(t *testing.T, res *Result, mapSlots, reduceSlots int) {
	t.Helper()
	type interval struct{ start, end float64 }
	mapBusy := map[topology.NodeID][]interval{}
	redBusy := map[topology.NodeID][]interval{}
	for _, jr := range res.Jobs {
		for _, rec := range jr.Tasks {
			if rec.FinishTime > 0 {
				mapBusy[rec.Node] = append(mapBusy[rec.Node], interval{rec.LaunchTime, rec.FinishTime})
			}
		}
		for _, rr := range jr.Reduces {
			redBusy[rr.Node] = append(redBusy[rr.Node], interval{rr.LaunchTime, rr.FinishTime})
		}
	}
	check := func(busy map[topology.NodeID][]interval, cap int, kind string) {
		for node, ivs := range busy {
			// Sweep line over start/end events; ends sort before starts at
			// equal times (a slot freed at t is reusable at t).
			type ev struct {
				at    float64
				delta int
			}
			var evs []ev
			for _, iv := range ivs {
				evs = append(evs, ev{iv.start, +1}, ev{iv.end, -1})
			}
			sort.Slice(evs, func(i, j int) bool {
				if evs[i].at != evs[j].at {
					return evs[i].at < evs[j].at
				}
				return evs[i].delta < evs[j].delta
			})
			depth := 0
			for _, e := range evs {
				depth += e.delta
				if depth > cap {
					t.Fatalf("node %d exceeded %s slots: %d > %d at t=%.2f", node, kind, depth, cap, e.at)
				}
			}
		}
	}
	check(mapBusy, mapSlots, "map")
	check(redBusy, reduceSlots, "reduce")
}

func TestSlotInvariantAcrossSchedulersAndFailures(t *testing.T) {
	// Property: over random seeds, schedulers, failure patterns and
	// failure times, no node is ever overcommitted, every task completes
	// exactly once, and tasks never finish on nodes that were dead when
	// they ran.
	kinds := []SchedulerKind{LF, BDF, EDF, sched.KindEagerDF, sched.KindDelayLF}
	patterns := []topology.FailurePattern{
		topology.NoFailure, topology.SingleNodeFailure, topology.DoubleNodeFailure,
	}
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		cfg := smallConfig()
		cfg.Seed = seed
		cfg.Scheduler = kinds[rng.Intn(len(kinds))]
		cfg.Failure = patterns[rng.Intn(len(patterns))]
		cfg.OutOfBandHeartbeats = rng.Intn(2) == 1
		if rng.Intn(3) == 0 && cfg.Failure != topology.NoFailure {
			cfg.FailAt = 5 + 30*rng.Float64()
		}
		job := smallJob()
		job.NumBlocks = 60 + rng.Intn(60)
		if rng.Intn(4) == 0 {
			job.NumReduceTasks = 0
			job.ShuffleRatio = 0
		}
		res, err := Run(cfg, []JobSpec{job})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		checkSlotInvariant(t, res, cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
		jr := res.Jobs[0]
		if len(jr.Tasks) != job.NumBlocks {
			return false
		}
		for _, rec := range jr.Tasks {
			if rec.FinishTime <= rec.LaunchTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMakespanDominatesJobTimes(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 97
	j1, j2 := smallJob(), smallJob()
	j2.SubmitAt = 5
	res := mustRun(t, cfg, j1, j2)
	for _, jr := range res.Jobs {
		if jr.FinishTime > res.Makespan {
			t.Fatal("job finished after makespan")
		}
		if jr.FirstMapLaunch < jr.SubmitTime {
			t.Fatal("map launched before submission")
		}
		if jr.MapPhaseEnd > jr.FinishTime {
			t.Fatal("map phase ended after job finish")
		}
	}
}
