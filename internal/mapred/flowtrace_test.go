package mapred_test

import (
	"encoding/json"
	"math"
	"testing"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// shuffleHeavyConfig is a 12-node cluster with finite rack bandwidth and a
// job whose shuffle keeps the network busy for most of the run.
func shuffleHeavyConfig() (mapred.Config, mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 12
	cfg.Racks = 3
	cfg.N = 6
	cfg.K = 4
	cfg.BlockSizeBytes = 16e6
	cfg.NumBlocks = 120
	cfg.RackBps = 100 * netsim.Mbps
	cfg.Failure = topology.NoFailure
	job := mapred.DefaultJob()
	job.MapTime = mapred.Dist{Mean: 5, Std: 0.5}
	job.ReduceTime = mapred.Dist{Mean: 8, Std: 1}
	job.NumReduceTasks = 6
	job.ShuffleRatio = 4 // long shuffle transfers, so failures land mid-flight
	return cfg, job
}

func TestTraceFlowRateEvents(t *testing.T) {
	var mem trace.Memory
	cfg, job := shuffleHeavyConfig()
	cfg.Seed = 11
	cfg.Trace = &mem
	cfg.TraceFlowRates = true
	if _, err := mapred.Run(cfg, []mapred.JobSpec{job}); err != nil {
		t.Fatal(err)
	}
	var rates []trace.Event
	for _, e := range mem.Events() {
		if e.Type == trace.EvFlowRate {
			rates = append(rates, e)
		}
	}
	if len(rates) == 0 {
		t.Fatal("TraceFlowRates produced no flow-rate events")
	}
	sawFinite, sawUnlimited := false, false
	for _, e := range rates {
		if math.IsInf(e.Bytes, 0) || math.IsNaN(e.Bytes) {
			t.Fatalf("flow-rate event with non-marshalable rate %v", e.Bytes)
		}
		if e.Bytes > 0 {
			sawFinite = true
		}
		if e.Bytes == -1 {
			sawUnlimited = true // intra-rack flow over unlimited NICs
		}
		if _, err := json.Marshal(e); err != nil {
			t.Fatalf("flow-rate event not JSON-marshalable: %v", err)
		}
	}
	if !sawFinite {
		t.Fatal("no finite rate recorded")
	}
	if !sawUnlimited {
		t.Fatal("no unlimited-rate (-1) record despite unlimited NICs")
	}

	// Off by default: the same run without the flag emits none.
	var quiet trace.Memory
	cfg2, job2 := shuffleHeavyConfig()
	cfg2.Seed = 11
	cfg2.Trace = &quiet
	if _, err := mapred.Run(cfg2, []mapred.JobSpec{job2}); err != nil {
		t.Fatal(err)
	}
	for _, e := range quiet.Events() {
		if e.Type == trace.EvFlowRate {
			t.Fatal("flow-rate event emitted with tracing disabled")
		}
	}
}

func TestMidRunFailureCancelsInFlightTransfers(t *testing.T) {
	// Fail a node while its shuffle transfers are in flight: the runtime
	// must cancel the affected flows, requeue the interrupted work, and
	// still complete the job. The shuffle is nearly continuous in this
	// configuration, so at least one of the candidate failure instants
	// catches a transfer mid-flight.
	sawCancel, sawRequeue := false, false
	for _, failAt := range []float64{6, 8, 10} {
		var mem trace.Memory
		cfg, job := shuffleHeavyConfig()
		cfg.Seed = 13
		cfg.Trace = &mem
		cfg.FailNodes = []topology.NodeID{5}
		cfg.FailAt = failAt
		res, err := mapred.Run(cfg, []mapred.JobSpec{job})
		if err != nil {
			t.Fatalf("failAt=%v: %v", failAt, err)
		}
		jr := res.Jobs[0]
		for _, rec := range jr.Tasks {
			if rec.FinishTime == 0 {
				t.Fatalf("failAt=%v: task %d never completed", failAt, rec.Task)
			}
			if rec.Node == 5 && rec.FinishTime > failAt {
				t.Fatalf("failAt=%v: task %d finished on the dead node", failAt, rec.Task)
			}
		}
		for _, e := range mem.Events() {
			switch e.Type {
			case trace.EvTransferCancel:
				sawCancel = true
				if e.T < failAt {
					t.Fatalf("transfer cancelled at %v, before the failure at %v", e.T, failAt)
				}
			case trace.EvTaskRequeue:
				sawRequeue = true
			}
		}
	}
	if !sawCancel {
		t.Fatal("no in-flight transfer was cancelled by the mid-run failure")
	}
	if !sawRequeue {
		t.Fatal("no task was requeued by the mid-run failure")
	}
}
