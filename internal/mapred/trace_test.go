package mapred_test

import (
	"bytes"
	"reflect"
	"testing"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// fig4TraceConfig replicates the exp package's Figure 4 worked example:
// four nodes in two racks, one map slot each, (4,2) code, twelve blocks
// with the paper's explicit placement, node 0 failed, BDF scheduling.
func fig4TraceConfig(sink trace.Sink) (mapred.Config, []mapred.JobSpec) {
	assign := make([][]topology.NodeID, 6)
	for i := 0; i < 6; i++ {
		if i < 3 {
			assign[i] = []topology.NodeID{0, 2, 1, 3}
		} else {
			assign[i] = []topology.NodeID{1, 3, 0, 2}
		}
	}
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 4
	cfg.Racks = 2
	cfg.MapSlotsPerNode = 1
	cfg.ReduceSlotsPerNode = 0
	cfg.N, cfg.K = 4, 2
	cfg.NumBlocks = 12
	cfg.BlockSizeBytes = 128e6
	cfg.RackBps = 100 * netsim.Mbps
	cfg.NodeBps = 100 * netsim.Mbps
	cfg.Policy = placement.Explicit{Assignments: assign}
	cfg.Scheduler = mapred.BDF
	cfg.FailNodes = []topology.NodeID{0}
	cfg.HeartbeatInterval = 0.25
	cfg.OutOfBandHeartbeats = true
	cfg.SourceStrategy = dfs.PreferSameRack
	cfg.Trace = sink
	job := mapred.JobSpec{
		Name:    "fig4",
		MapTime: mapred.Dist{Mean: 10, Std: 0},
	}
	return cfg, []mapred.JobSpec{job}
}

func runFig4Trace(t *testing.T) (*mapred.Result, []trace.Event) {
	t.Helper()
	var mem trace.Memory
	cfg, jobs := fig4TraceConfig(&mem)
	res, err := mapred.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res, mem.Events()
}

func TestTraceMonotoneVirtualTime(t *testing.T) {
	_, events := runFig4Trace(t)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Type != trace.EvRunStart {
		t.Errorf("first event %q, want %q", events[0].Type, trace.EvRunStart)
	}
	if events[len(events)-1].Type != trace.EvRunEnd {
		t.Errorf("last event %q, want %q", events[len(events)-1].Type, trace.EvRunEnd)
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("virtual time went backwards at event %d: %v after %v",
				i, events[i], events[i-1])
		}
	}
}

func TestTraceLaunchBeforeFinish(t *testing.T) {
	_, events := runFig4Trace(t)
	type key struct{ job, task int }
	launched := map[key]bool{}
	finished := map[key]int{}
	for _, e := range events {
		k := key{e.Job, e.Task}
		switch e.Type {
		case trace.EvTaskLaunch:
			launched[k] = true
		case trace.EvTaskFinish:
			if !launched[k] {
				t.Fatalf("task %v finished without a launch", k)
			}
			finished[k]++
		}
	}
	if len(finished) != 12 {
		t.Fatalf("finished tasks = %d, want 12", len(finished))
	}
	for k, n := range finished {
		if n != 1 {
			t.Errorf("task %v finished %d times", k, n)
		}
	}
}

func TestTraceOneDegradedPlanPerDegradedLaunch(t *testing.T) {
	_, events := runFig4Trace(t)
	type key struct{ job, task int }
	degradedLaunches := map[key]int{}
	plans := map[key]int{}
	for _, e := range events {
		k := key{e.Job, e.Task}
		switch e.Type {
		case trace.EvTaskLaunch:
			if e.Class == sched.ClassDegraded.String() {
				degradedLaunches[k]++
			}
		case trace.EvDegradedPlan:
			plans[k]++
			// The fig4 degraded reads download k=2 source blocks.
			if e.N != 2 {
				t.Errorf("degraded plan for %v has %d sources, want 2", k, e.N)
			}
		}
	}
	if len(degradedLaunches) != 3 {
		t.Fatalf("degraded launches = %d, want 3 (fig4's lost blocks)", len(degradedLaunches))
	}
	if !reflect.DeepEqual(plans, degradedLaunches) {
		t.Fatalf("degraded-read plans %v != degraded launches %v", plans, degradedLaunches)
	}
}

// TestTraceJSONLRoundTripRebuildsResult is the acceptance check for the
// trace layer: serialize the fig4 run's events as JSONL, read them back,
// and rebuild the Result and ASCII timeline purely from the trace — both
// must match the engine's own output exactly (the timeline byte for byte).
func TestTraceJSONLRoundTripRebuildsResult(t *testing.T) {
	res, events := runFig4Trace(t)

	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, events) {
		t.Fatal("JSONL round trip altered the event stream")
	}

	rebuilt := runtime.BuildResult(decoded)
	if !reflect.DeepEqual(rebuilt, res) {
		t.Fatalf("rebuilt result differs:\n got %+v\nwant %+v", rebuilt, res)
	}
	want := mapred.Timeline(res, 0, 80)
	got := mapred.Timeline(rebuilt, 0, 80)
	if want == "" {
		t.Fatal("empty reference timeline")
	}
	if got != want {
		t.Fatalf("timeline reconstructed from trace differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}
