// Background-repair planning for the simulated backend: the healer's
// engine-specific half over the per-job placements. No bytes exist in
// this engine, so a "repair" is pure bookkeeping — pick survivors to
// read, pick a destination, and move the placement when the runtime's
// repair flows complete — while the network cost of the reads is what
// actually competes with foreground traffic.

package mapred

import (
	"fmt"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/topology"
)

// jobFile is the synthetic DFS name of one job's input file in repair
// plans and trace events. The job index prefix keeps names unique even
// when two jobs share a spec name.
func (b *simBackend) jobFile(job int) string {
	return fmt.Sprintf("job%d/%s", job, b.specs[job].Name)
}

// fileJob resolves a synthetic file name back to its job index.
func (b *simBackend) fileJob(file string) (int, error) {
	if b.fileIdx == nil {
		b.fileIdx = make(map[string]int, len(b.specs))
		for i := range b.specs {
			b.fileIdx[b.jobFile(i)] = i
		}
	}
	job, ok := b.fileIdx[file]
	if !ok {
		return 0, fmt.Errorf("mapred: unknown repair file %q", file)
	}
	return job, nil
}

// planStripe builds the repair plan for one stripe of one job's file.
// Source selection models the configured code without real shards: a
// full reconstruction reads the k lowest-index survivors, and when
// RepairBlockCount < k (a locality-aware code per footnote 1) a
// single-loss stripe repairs locally from RepairBlockCount survivors.
// Multi-loss stripes always fall back to the full k-source path — a
// local group with two losses cannot self-heal.
func (b *simBackend) planStripe(job, s int) (repair.StripePlan, error) {
	place := b.places[job]
	plan := repair.StripePlan{
		Key: repair.Key{File: b.jobFile(job), Stripe: s},
		N:   place.N(),
		K:   place.K(),
	}
	var lost []int
	survivors := make([]repair.Source, 0, place.N())
	for i, h := range place.StripeHolders(s) {
		if b.cluster.Alive(h) {
			survivors = append(survivors, repair.Source{Node: h, Index: i})
		} else {
			lost = append(lost, i)
		}
	}
	plan.Lost = len(lost)
	if len(lost) == 0 {
		return plan, nil
	}
	if len(lost) > plan.N-plan.K {
		plan.Unrepairable = true
		return plan, nil
	}
	reads := plan.K
	local := false
	if len(lost) == 1 && b.cfg.RepairBlockCount < plan.K {
		reads = b.cfg.RepairBlockCount
		local = true
	}
	taken := make(map[topology.NodeID]bool, len(lost))
	for _, idx := range lost {
		dest, err := dfs.PickRepairDestination(b.cluster, place, s, taken)
		if err != nil {
			return plan, err
		}
		taken[dest] = true
		plan.Blocks = append(plan.Blocks, repair.BlockPlan{
			Index:   idx,
			Dest:    dest,
			Sources: append([]repair.Source(nil), survivors[:reads]...),
			Local:   local,
		})
	}
	return plan, nil
}

// ScanLostBlocks implements runtime.RepairBackend: every stripe of every
// job's file that lost a block to one of the failed nodes, in job then
// stripe order. Each plan covers all of its stripe's losses, so a rescan
// after a second failure subsumes earlier pending work.
func (b *simBackend) ScanLostBlocks(failed []topology.NodeID) ([]repair.StripePlan, error) {
	failedSet := make(map[topology.NodeID]bool, len(failed))
	for _, id := range failed {
		failedSet[id] = true
	}
	var plans []repair.StripePlan
	for job := range b.places {
		place := b.places[job]
		for s := 0; s < place.NumStripes(); s++ {
			hit := false
			for _, h := range place.StripeHolders(s) {
				if b.cluster.Alive(h) {
					continue
				}
				if len(failedSet) == 0 || failedSet[h] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			plan, err := b.planStripe(job, s)
			if err != nil {
				return nil, err
			}
			if plan.Lost > 0 {
				plans = append(plans, plan)
			}
		}
	}
	return plans, nil
}

// PlanStripeRepair implements runtime.RepairBackend: a launch-time
// re-plan from the live placement, so blocks repaired since the stripe
// was queued are not rebuilt twice.
func (b *simBackend) PlanStripeRepair(key repair.Key) (repair.StripePlan, error) {
	job, err := b.fileJob(key.File)
	if err != nil {
		return repair.StripePlan{}, err
	}
	if key.Stripe < 0 || key.Stripe >= b.places[job].NumStripes() {
		return repair.StripePlan{}, fmt.Errorf("mapred: job %d has no stripe %d", job, key.Stripe)
	}
	return b.planStripe(job, key.Stripe)
}

// CommitRepair implements runtime.RepairBackend: move the block's
// placement to its rebuilt copy and report the foreground task (if any —
// parity blocks back no task) whose input just came back.
func (b *simBackend) CommitRepair(key repair.Key, bp repair.BlockPlan) ([]runtime.RepairedTask, error) {
	job, err := b.fileJob(key.File)
	if err != nil {
		return nil, err
	}
	place := b.places[job]
	block := erasure.BlockID{Stripe: key.Stripe, Index: bp.Index}
	if b.cluster.Alive(place.Holder(block)) {
		return nil, fmt.Errorf("mapred: block %v of job %d is not lost (holder %d alive)",
			block, job, place.Holder(block))
	}
	if !b.cluster.Alive(bp.Dest) {
		return nil, &runtime.DeadNodeError{Nodes: []topology.NodeID{bp.Dest}}
	}
	place.Reassign(block, bp.Dest)
	var refs []runtime.RepairedTask
	for t, tb := range b.blocks[job] {
		if tb == block {
			refs = append(refs, runtime.RepairedTask{Job: job, Task: t})
		}
	}
	return refs, nil
}

// RepairBlockBytes implements runtime.RepairBackend.
func (b *simBackend) RepairBlockBytes() float64 { return b.cfg.BlockSizeBytes }
