package mapred

import (
	"reflect"
	"testing"

	"degradedfirst/internal/repair"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

// repairConfig is smallConfig with a mid-run failure and the healer on.
func repairConfig(fraction float64) Config {
	cfg := smallConfig()
	cfg.Seed = 91
	cfg.FailNodes = []topology.NodeID{4}
	cfg.FailAt = 20
	cfg.Scheduler = LF
	cfg.Repair = repair.Config{
		Enabled:      true,
		RateFraction: fraction,
	}
	return cfg
}

func TestRepairDisabledLeavesResultUntouched(t *testing.T) {
	cfg := repairConfig(0.5)
	cfg.Repair = repair.Config{}
	res := mustRun(t, cfg, smallJob())
	if res.Repair != nil {
		t.Fatalf("repair disabled but Result.Repair = %+v", res.Repair)
	}
}

func TestRepairHealsToFullRedundancy(t *testing.T) {
	res := mustRun(t, repairConfig(0.5), smallJob())
	st := res.Repair
	if st == nil {
		t.Fatal("repair enabled with failures but Result.Repair is nil")
	}
	if st.StripesQueued == 0 || st.BlocksRepaired == 0 {
		t.Fatalf("no repair activity: %+v", st)
	}
	if st.Unrepairable != 0 {
		t.Fatalf("single-node failure produced unrepairable stripes: %+v", st)
	}
	if st.FirstRepairAt < 20 {
		t.Fatalf("first repair at %.2f, before the failure at 20", st.FirstRepairAt)
	}
	if st.FullRedundancyAt < st.FirstRepairAt {
		t.Fatalf("FullRedundancyAt %.2f < FirstRepairAt %.2f", st.FullRedundancyAt, st.FirstRepairAt)
	}
	if n := len(st.AtRisk); n == 0 || st.AtRisk[n-1].Lost != 0 {
		t.Fatalf("at-risk timeline does not end at zero: %+v", st.AtRisk)
	}
	if st.RepairBytes <= 0 {
		t.Fatalf("RepairBytes = %v", st.RepairBytes)
	}
	// Repair reads travel the shared network, so they are part of the
	// run's total moved volume.
	if res.BytesMoved < st.RepairBytes {
		t.Fatalf("BytesMoved %.0f < RepairBytes %.0f", res.BytesMoved, st.RepairBytes)
	}
}

func TestRepairDeterministic(t *testing.T) {
	a := mustRun(t, repairConfig(0.5), smallJob())
	b := mustRun(t, repairConfig(0.5), smallJob())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repair-enabled runs must be deterministic")
	}
}

func TestRepairThrottleMonotone(t *testing.T) {
	// More repair bandwidth must not lengthen time to full redundancy.
	slow := mustRun(t, repairConfig(0.05), smallJob())
	fast := mustRun(t, repairConfig(1.0), smallJob())
	if slow.Repair == nil || fast.Repair == nil {
		t.Fatal("missing repair stats")
	}
	if fast.Repair.FullRedundancyAt > slow.Repair.FullRedundancyAt {
		t.Fatalf("full redundancy at %.2f with full bandwidth vs %.2f throttled",
			fast.Repair.FullRedundancyAt, slow.Repair.FullRedundancyAt)
	}
}

func TestRepairPoliciesHealEverything(t *testing.T) {
	for _, pol := range []repair.Policy{repair.FIFO, repair.MostAtRisk, repair.Deadline} {
		cfg := repairConfig(0.5)
		cfg.Repair.Policy = pol
		res := mustRun(t, cfg, smallJob())
		if res.Repair == nil || res.Repair.FullRedundancyAt < 0 {
			t.Fatalf("policy %v did not heal to full redundancy: %+v", pol, res.Repair)
		}
	}
}

func TestRepairModeledLocalRepairsMoveFewerBytes(t *testing.T) {
	// RepairBlockCount < k models a locality-aware code: single-loss
	// stripes repair from fewer sources, strictly cheaper than the full
	// k-source reconstruction.
	full := mustRun(t, repairConfig(0.5), smallJob())
	lrc := repairConfig(0.5)
	lrc.RepairBlockCount = 2
	local := mustRun(t, lrc, smallJob())
	if full.Repair.LocalRepairs != 0 || full.Repair.GlobalRepairs == 0 {
		t.Fatalf("k-source run misclassified: %+v", full.Repair)
	}
	if local.Repair.LocalRepairs == 0 || local.Repair.GlobalRepairs != 0 {
		t.Fatalf("single-node losses should all repair locally: %+v", local.Repair)
	}
	if local.Repair.BlocksRepaired != full.Repair.BlocksRepaired {
		t.Fatalf("repaired %d blocks locally vs %d globally",
			local.Repair.BlocksRepaired, full.Repair.BlocksRepaired)
	}
	if local.Repair.RepairBytes >= full.Repair.RepairBytes {
		t.Fatalf("local repair bytes %.0f not below full reconstruction bytes %.0f",
			local.Repair.RepairBytes, full.Repair.RepairBytes)
	}
}

func TestRepairRestoresPendingDegradedTasks(t *testing.T) {
	// With an aggressive healer the scheduler should see no more degraded
	// launches than without one: blocks repaired before their task runs
	// revert to normal reads.
	cfg := repairConfig(1.0)
	without := cfg
	without.Repair = repair.Config{}
	healed := mustRun(t, cfg, smallJob())
	bare := mustRun(t, without, smallJob())
	h := healed.Jobs[0].CountByClass()[sched.ClassDegraded]
	b := bare.Jobs[0].CountByClass()[sched.ClassDegraded]
	if h > b {
		t.Fatalf("healer increased degraded launches: %d with repair vs %d without", h, b)
	}
	if healed.Repair.BlocksRepaired == 0 {
		t.Fatal("no blocks repaired")
	}
}

func TestRepairValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Repair = repair.Config{Enabled: true, RateFraction: 2}
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("RateFraction > 1 must fail validation")
	}
}
