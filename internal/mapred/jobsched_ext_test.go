package mapred_test

// Job-storm tests live in an external test package so they can drive the
// simulator with workload.GenerateStorm (package workload imports mapred,
// so the in-package tests cannot import it back).

import (
	"reflect"
	"testing"

	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

func stormConfig() mapred.Config {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 8
	cfg.Racks = 2
	cfg.N = 4
	cfg.K = 2
	cfg.BlockSizeBytes = 16e6
	cfg.NumBlocks = 64
	cfg.RackBps = netsim.Gbps
	return cfg
}

func stormJobs(t *testing.T, n int, slack float64) []mapred.JobSpec {
	t.Helper()
	tpl := mapred.DefaultJob()
	tpl.NumBlocks = 4
	tpl.MapTime = mapred.Dist{Mean: 2, Std: 0.2}
	tpl.ReduceTime = mapred.Dist{Mean: 1.5, Std: 0.1}
	tpl.NumReduceTasks = 1
	tpl.ShuffleRatio = 0.1
	jobs, err := workload.GenerateStorm(workload.StormOptions{
		NumJobs: n,
		Tenants: []workload.TenantSpec{
			{Name: "alpha", Weight: 4, Share: 0.5},
			{Name: "beta", Weight: 2, Share: 0.3},
			{Name: "gamma", Weight: 1, Share: 0.2},
		},
		MeanInterArrival: 1,
		Template:         tpl,
		VaryBlocks:       4,
		DeadlineSlack:    slack,
		Seed:             17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestCursorEquivalentToReferenceScan pins the satellite claim that the
// indexed reducer cursor reproduces the seed runtime's full rescan: the
// same FIFO storm traced under both produces bit-identical events.
func TestCursorEquivalentToReferenceScan(t *testing.T) {
	jobs := stormJobs(t, 60, 0)
	run := func(reference bool) (*mapred.Result, []trace.Event) {
		var mem trace.Memory
		cfg := stormConfig()
		cfg.Seed = 5
		cfg.Trace = &mem
		cfg.JobSched = jobsched.Config{ReferenceReduceScan: reference}
		res, err := mapred.Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res, mem.Events()
	}
	cursorRes, cursorEvents := run(false)
	refRes, refEvents := run(true)

	if len(cursorEvents) != len(refEvents) {
		t.Fatalf("event counts diverge: cursor %d, reference %d", len(cursorEvents), len(refEvents))
	}
	for i := range cursorEvents {
		if cursorEvents[i] != refEvents[i] {
			t.Fatalf("event %d diverges:\ncursor    %+v\nreference %+v", i, cursorEvents[i], refEvents[i])
		}
	}
	if !reflect.DeepEqual(cursorRes.Jobs, refRes.Jobs) {
		t.Fatal("job results diverge between cursor and reference scan")
	}
}

// TestMidStormFailureRequeuesTenantJobs kills a node in the middle of a
// fair-share storm and checks that every re-executed task re-enters its
// own job's (and so its tenant's) queue: the storm completes, each
// requeued task is scheduled again later, and tenant metadata survives
// the failure path.
func TestMidStormFailureRequeuesTenantJobs(t *testing.T) {
	jobs := stormJobs(t, 40, 0)
	// Long maps keep tasks in flight on the doomed node at failure time.
	for i := range jobs {
		jobs[i].MapTime = mapred.Dist{Mean: 12, Std: 1}
	}
	tenantOf := map[int]string{}
	for i, j := range jobs {
		tenantOf[i] = j.Tenant
	}

	var mem trace.Memory
	cfg := stormConfig()
	cfg.Seed = 9
	cfg.Trace = &mem
	cfg.JobSched = jobsched.Config{Policy: jobsched.FairShare}
	// Node 0 launches several 12-second maps at t=0 under this seed, so
	// failing it at t=5 is guaranteed to catch tasks in flight (the
	// vacuity check below trips if a future change moves them).
	cfg.FailNodes = []topology.NodeID{0}
	cfg.FailAt = 5
	res, err := mapred.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}

	// The storm completes despite the failure.
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("jobs = %d, want %d", len(res.Jobs), len(jobs))
	}
	for i, jr := range res.Jobs {
		if jr.FinishTime == 0 {
			t.Fatalf("job %d never finished", i)
		}
		if jr.Tenant != tenantOf[i] {
			t.Fatalf("job %d tenant = %q, want %q (metadata lost in failure path)", i, jr.Tenant, tenantOf[i])
		}
		if jr.QueueDelay < 0 {
			t.Fatalf("job %d has no queueing delay", i)
		}
	}

	// Every requeued task is rescheduled strictly later, for the same job.
	events := mem.Events()
	requeues := 0
	for i, e := range events {
		if e.Type != trace.EvTaskRequeue {
			continue
		}
		requeues++
		found := false
		for _, later := range events[i+1:] {
			if later.Type == trace.EvTaskScheduled && later.Job == e.Job && later.Task == e.Task {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("requeued task %d of job %d (tenant %s) never rescheduled",
				e.Task, e.Job, tenantOf[e.Job])
		}
	}
	if requeues == 0 {
		t.Fatal("failure requeued nothing; the test is vacuous — adjust FailAt/FailNodes")
	}
}

// TestStormPoliciesComplete runs the same storm under every policy and
// checks completion plus policy-specific invariants.
func TestStormPoliciesComplete(t *testing.T) {
	jobs := stormJobs(t, 50, 120)
	for _, policy := range []jobsched.Kind{jobsched.Fifo, jobsched.FairShare, jobsched.Quota, jobsched.Deadline} {
		cfg := stormConfig()
		cfg.Seed = 3
		cfg.JobSched = jobsched.Config{Policy: policy, QuotaSlots: 4}
		res, err := mapred.Run(cfg, jobs)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i, jr := range res.Jobs {
			if jr.FinishTime == 0 {
				t.Fatalf("%v: job %d never finished", policy, i)
			}
		}
	}
}
