package mapred

import (
	"strings"
	"testing"
)

func TestTimelineRendering(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 5
	cfg.Scheduler = LF
	res := mustRun(t, cfg, smallJob())

	out := Timeline(res, 0, 60)
	if out == "" {
		t.Fatal("empty timeline")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header plus one row per node.
	if len(lines) != 1+cfg.Nodes {
		t.Fatalf("timeline has %d lines, want %d", len(lines), 1+cfg.Nodes)
	}
	joined := out
	// Failure mode must show the failed node and degraded activity.
	if !strings.Contains(joined, "x") {
		t.Error("failed node not marked")
	}
	if !strings.Contains(joined, "D") {
		t.Error("degraded tasks not rendered")
	}
	if !strings.Contains(joined, "L") {
		t.Error("local tasks not rendered")
	}
	// LF signature: the degraded burst is at the right edge of the phase.
	var lastD, lastCol int
	for _, line := range lines[1:] {
		body := strings.Trim(line[strings.Index(line, "|")+1:], "|")
		for col, ch := range body {
			if ch == 'D' && col > lastD {
				lastD = col
			}
			if ch != '.' && ch != 'x' && col > lastCol {
				lastCol = col
			}
		}
	}
	if lastD < lastCol-2 {
		t.Errorf("under LF the degraded burst should end the map phase (lastD=%d lastCol=%d)", lastD, lastCol)
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	if Timeline(nil, 0, 80) != "" {
		t.Fatal("nil result must render empty")
	}
	cfg := smallConfig()
	cfg.Seed = 6
	res := mustRun(t, cfg, smallJob())
	if Timeline(res, -1, 80) != "" || Timeline(res, 5, 80) != "" {
		t.Fatal("bad job index must render empty")
	}
	if Timeline(res, 0, 5) != "" {
		t.Fatal("tiny width must render empty")
	}
}

func TestJobTimelineDirect(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 101
	res := mustRun(t, cfg, smallJob())
	direct := JobTimeline(&res.Jobs[0], res.Failed, 50)
	viaResult := Timeline(res, 0, 50)
	if direct == "" || direct != viaResult {
		t.Fatal("JobTimeline must match Timeline for the same job")
	}
	if JobTimeline(nil, nil, 50) != "" {
		t.Fatal("nil job must render empty")
	}
}
