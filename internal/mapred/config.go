// Package mapred is the discrete-event MapReduce simulator of Section V:
// a master with a FIFO job queue, slaves with map/reduce slots sending
// periodic heartbeats, map tasks that read blocks (locally, remotely, or
// via degraded reads), a shuffle phase, and reduce tasks — all timed
// through the netsim network model and scheduled by one of the three
// algorithms in package sched.
package mapred

import (
	"errors"
	"fmt"
	"math"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// SchedulerKind selects the scheduling algorithm for a run. It is an alias
// for sched.Kind so the simulator and the real-execution engine share one
// enum.
type SchedulerKind = sched.Kind

const (
	// LF is locality-first scheduling (Hadoop default, Algorithm 1).
	LF = sched.KindLF
	// BDF is basic degraded-first scheduling (Algorithm 2).
	BDF = sched.KindBDF
	// EDF is enhanced degraded-first scheduling (Algorithm 3).
	EDF = sched.KindEDF
)

// Dist is a (truncated) normal distribution of task processing times.
type Dist struct {
	Mean, Std float64
}

// JobSpec describes one MapReduce job. Each job processes its own
// erasure-coded file of NumBlocks native blocks; every native block is one
// map task.
type JobSpec struct {
	// Name labels the job in results.
	Name string
	// NumBlocks is the job's native block count (its map task count).
	// Zero means Config.NumBlocks.
	NumBlocks int
	// MapTime is the per-map-task processing-time distribution, scaled by
	// the executing node's SpeedFactor.
	MapTime Dist
	// ReduceTime is the per-reduce-task processing-time distribution.
	ReduceTime Dist
	// NumReduceTasks is the reduce task count (0 = map-only job).
	NumReduceTasks int
	// ShuffleRatio is intermediate data per map task as a fraction of the
	// block size, spread evenly over the reduce tasks.
	ShuffleRatio float64
	// SubmitAt is the job's submission time.
	SubmitAt float64

	// Tenant, Weight and Deadline feed the job-level scheduling
	// policies (Config.JobSched): fair-share weighting, per-tenant
	// quotas, EDF deadlines. Optional; zero values mean an anonymous
	// tenant, weight 1, and no deadline.
	Tenant   string
	Weight   float64
	Deadline float64
}

// Config describes one simulation run.
type Config struct {
	// Cluster shape.
	Nodes, Racks       int
	RackSizes          []int // optional explicit rack sizes
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// Topology, when set, builds a multi-tier cluster fabric (fat-tree /
	// Clos, see topology.FatTree and topology.Clos) instead of the
	// two-level Nodes/Racks shape; those fields must then stay zero. The
	// spec's per-tier capacities drive the network; the legacy
	// RackBps/NodeBps/CoreBps fields still override the NIC, leaf, and
	// core layers when non-zero.
	Topology *topology.Spec
	// SpeedFactors optionally overrides per-node processing speed
	// multipliers (heterogeneous clusters, Section V-C).
	SpeedFactors map[topology.NodeID]float64

	// Network.
	RackBps, NodeBps, CoreBps float64
	NetMode                   netsim.Mode

	// Storage.
	N, K           int
	BlockSizeBytes float64
	NumBlocks      int // default F per job
	Policy         placement.Policy
	SourceStrategy dfs.SelectionStrategy
	// RepairBlockCount is how many blocks one degraded read downloads
	// (default K). Codes with locality, like LRC, repair a single failure
	// from fewer blocks — set k/l here to model them (footnote 1 of the
	// paper).
	RepairBlockCount int

	// Scheduling.
	Scheduler SchedulerKind
	// JobSched selects the job-level scheduling policy (which jobs may
	// take slots, above the task-placement Scheduler). The zero value
	// is the FIFO queue of the paper's master.
	JobSched jobsched.Config
	// Hedge configures redundant degraded-read fan-ins (k+Δ races,
	// deadline hedging). The zero value disables hedging and keeps runs
	// bit-identical to the unhedged simulator.
	Hedge runtime.HedgePolicy
	// Repair configures the background repair subsystem (the proactive
	// healer competing with foreground traffic). The zero value disables
	// it and keeps runs bit-identical to the healer-free simulator. When
	// the throttle is expressed as a RateFraction and no LinkBps is set,
	// the node (falling back to rack) bandwidth is used as the reference
	// link capacity.
	Repair            repair.Config
	HeartbeatInterval float64 // default 3 s
	// OutOfBandHeartbeats triggers an immediate heartbeat from a slave
	// whenever one of its tasks completes (Hadoop's optional
	// mapreduce.tasktracker.outofband.heartbeat). Off by default, as in
	// the paper's simulator.
	OutOfBandHeartbeats bool

	// Failure scenario, injected at time zero (after placement).
	Failure topology.FailurePattern
	// FailNodes, when non-empty, fails exactly these nodes instead of
	// drawing them from Failure — used to reproduce the paper's worked
	// examples where the failed node is fixed.
	FailNodes []topology.NodeID
	// FailAt, when positive, injects the failure at this virtual time
	// instead of time zero. Mid-run failures trigger Hadoop-style
	// recovery: running tasks on the failed node are re-executed, lost
	// map outputs are regenerated, and reducers restart elsewhere.
	FailAt float64

	// Seed drives all randomness (placement, failure choice, task times).
	Seed int64

	// MaxSimTime aborts a run exceeding this virtual time (safety net
	// against scheduling bugs). Zero means a generous default.
	MaxSimTime float64

	// Trace receives the run's structured lifecycle events (nil = no
	// tracing); TraceLabel stamps each event's Run field so several runs
	// can share one sink.
	Trace      trace.Sink
	TraceLabel string

	// TraceFlowRates additionally emits a flow-rate event for every
	// bandwidth reallocation. High-volume; off by default.
	TraceFlowRates bool
}

// DefaultConfig returns the paper's default simulation configuration
// (Section V-B): 40 nodes in 4 racks, 4 map + 1 reduce slots per node,
// 1 Gbps rack bandwidth, 128 MB blocks, (20,15) code, 1440 blocks,
// single-node failure, LF scheduling (callers override Scheduler).
func DefaultConfig() Config {
	return Config{
		Nodes:              40,
		Racks:              4,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 1,
		RackBps:            netsim.Gbps,
		NetMode:            netsim.FluidFairSharing,
		N:                  20,
		K:                  15,
		BlockSizeBytes:     128e6,
		NumBlocks:          1440,
		SourceStrategy:     dfs.RandomK,
		Scheduler:          LF,
		HeartbeatInterval:  3,
		Failure:            topology.SingleNodeFailure,
	}
}

// DefaultJob returns the paper's default job: map times N(20 s, 1 s),
// reduce times N(30 s, 2 s), 30 reduce tasks, 1% shuffle ratio.
func DefaultJob() JobSpec {
	return JobSpec{
		Name:           "job",
		MapTime:        Dist{Mean: 20, Std: 1},
		ReduceTime:     Dist{Mean: 30, Std: 2},
		NumReduceTasks: 30,
		ShuffleRatio:   0.01,
	}
}

// validate checks the configuration and applies defaults in place.
func (c *Config) validate() error {
	if c.Topology != nil {
		if c.Nodes != 0 || c.Racks != 0 || len(c.RackSizes) != 0 {
			return errors.New("mapred: Topology excludes the Nodes/Racks/RackSizes fields")
		}
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	} else if c.Nodes <= 0 || c.Racks <= 0 {
		return errors.New("mapred: Nodes and Racks must be positive")
	}
	if c.MapSlotsPerNode <= 0 {
		return errors.New("mapred: MapSlotsPerNode must be positive")
	}
	if c.ReduceSlotsPerNode < 0 {
		return errors.New("mapred: ReduceSlotsPerNode must be non-negative")
	}
	if c.K <= 0 || c.N <= c.K {
		return fmt.Errorf("mapred: invalid code (%d,%d)", c.N, c.K)
	}
	if c.BlockSizeBytes <= 0 {
		return errors.New("mapred: BlockSizeBytes must be positive")
	}
	if c.NumBlocks <= 0 {
		return errors.New("mapred: NumBlocks must be positive")
	}
	if c.Scheduler == 0 {
		c.Scheduler = LF
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3
	}
	if c.Policy == nil {
		c.Policy = placement.RackConstrainedRandom{}
	}
	if c.SourceStrategy == 0 {
		c.SourceStrategy = dfs.RandomK
	}
	if c.RepairBlockCount == 0 {
		c.RepairBlockCount = c.K
	}
	if c.RepairBlockCount < 0 || c.RepairBlockCount > c.N-1 {
		return fmt.Errorf("mapred: RepairBlockCount %d outside [1, n-1]", c.RepairBlockCount)
	}
	if c.NetMode == 0 {
		c.NetMode = netsim.FluidFairSharing
	}
	if c.FailAt < 0 {
		return errors.New("mapred: FailAt must be non-negative")
	}
	if err := c.JobSched.Validate(); err != nil {
		return err
	}
	if err := c.Hedge.Validate(); err != nil {
		return fmt.Errorf("mapred: %w", err)
	}
	if err := c.Repair.Validate(); err != nil {
		return fmt.Errorf("mapred: %w", err)
	}
	if c.Repair.Active() && c.Repair.RateBps == 0 && c.Repair.LinkBps == 0 {
		if c.NodeBps > 0 {
			c.Repair.LinkBps = c.NodeBps
		} else {
			c.Repair.LinkBps = c.RackBps
		}
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 1e7
	}
	return nil
}

// validateJob checks a job spec and applies defaults in place.
func (c *Config) validateJob(j *JobSpec) error {
	if j.NumBlocks == 0 {
		j.NumBlocks = c.NumBlocks
	}
	if j.NumBlocks <= 0 {
		return fmt.Errorf("mapred: job %q has invalid block count %d", j.Name, j.NumBlocks)
	}
	if j.MapTime.Mean <= 0 {
		return fmt.Errorf("mapred: job %q needs a positive map time", j.Name)
	}
	if j.NumReduceTasks < 0 || j.ShuffleRatio < 0 || j.SubmitAt < 0 {
		return fmt.Errorf("mapred: job %q has negative parameters", j.Name)
	}
	if j.Weight < 0 || math.IsNaN(j.Weight) {
		return fmt.Errorf("mapred: job %q has invalid weight %v", j.Name, j.Weight)
	}
	if j.Deadline < 0 || math.IsNaN(j.Deadline) {
		return fmt.Errorf("mapred: job %q has invalid deadline %v", j.Name, j.Deadline)
	}
	if j.NumReduceTasks > 0 && j.ReduceTime.Mean <= 0 {
		return fmt.Errorf("mapred: job %q needs a positive reduce time", j.Name)
	}
	return nil
}

// ExpectedDegradedReadTime returns the analysis estimate of one degraded
// read, (R-1)·k·S / (R·W) — used as EDF's rack-awareness threshold. R is
// the rack (leaf group) count and W the rack download bandwidth; on
// multi-tier topologies both come from the spec's leaf tier unless the
// legacy fields override them.
func (c *Config) ExpectedDegradedReadTime() float64 {
	racks, rackBps := c.Racks, c.RackBps
	if c.Topology != nil {
		racks = c.Topology.NumLeaves()
		if rackBps == 0 {
			rackBps = c.Topology.Tiers[0].LinkBps
		}
	}
	r := float64(racks)
	if rackBps == 0 {
		return 0
	}
	repair := c.RepairBlockCount
	if repair <= 0 {
		repair = c.K
	}
	return (r - 1) / r * float64(repair) * c.BlockSizeBytes / rackBps
}
