package mapred

import (
	"degradedfirst/internal/runtime"
)

// The result model lives in the shared cluster runtime; these aliases keep
// the mapred API (and every figure runner built on it) unchanged.

// TaskRecord captures one map task's life cycle.
type TaskRecord = runtime.TaskRecord

// ReduceRecord captures one reduce task's life cycle.
type ReduceRecord = runtime.ReduceRecord

// JobResult aggregates one job's outcome.
type JobResult = runtime.JobResult

// Result is the outcome of one simulation run.
type Result = runtime.Result
