package mapred

import (
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/topology"
)

// Timeline renders a job's map-slot activity as ASCII art in the style of
// the paper's Figure 3 (see runtime.Timeline).
func Timeline(res *Result, jobIdx, width int) string {
	return runtime.Timeline(res, jobIdx, width)
}

// JobTimeline renders one JobResult's map-slot activity; the minimr
// engine's reports use it directly.
func JobTimeline(jr *JobResult, failedNodes []topology.NodeID, width int) string {
	return runtime.JobTimeline(jr, failedNodes, width)
}
