package mapred

import (
	"math"
	"reflect"
	"testing"

	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

// smallConfig is a scaled-down cluster that keeps unit tests fast:
// 12 nodes in 3 racks, (6,4) code, 16 MB blocks, 120 blocks.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 12
	cfg.Racks = 3
	cfg.N = 6
	cfg.K = 4
	cfg.BlockSizeBytes = 16e6
	cfg.NumBlocks = 120
	cfg.RackBps = 100 * netsim.Mbps // degraded reads cost ~3-4 s, so contention matters
	return cfg
}

func smallJob() JobSpec {
	j := DefaultJob()
	j.MapTime = Dist{Mean: 5, Std: 0.5}
	j.ReduceTime = Dist{Mean: 8, Std: 1}
	j.NumReduceTasks = 6
	return j
}

func mustRun(t *testing.T, cfg Config, jobs ...JobSpec) *Result {
	t.Helper()
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidationErrors(t *testing.T) {
	good := smallConfig()
	if _, err := Run(good, nil); err == nil {
		t.Fatal("no jobs must fail")
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.MapSlotsPerNode = 0 },
		func(c *Config) { c.ReduceSlotsPerNode = -1 },
		func(c *Config) { c.K = 9 },
		func(c *Config) { c.BlockSizeBytes = 0 },
		func(c *Config) { c.NumBlocks = 0 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	badJobs := []func(*JobSpec){
		func(j *JobSpec) { j.MapTime.Mean = 0 },
		func(j *JobSpec) { j.NumReduceTasks = -1 },
		func(j *JobSpec) { j.ShuffleRatio = -0.1 },
		func(j *JobSpec) { j.SubmitAt = -1 },
		func(j *JobSpec) { j.NumReduceTasks = 2; j.ReduceTime.Mean = 0 },
	}
	for i, mutate := range badJobs {
		j := smallJob()
		mutate(&j)
		if _, err := Run(smallConfig(), []JobSpec{j}); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if LF.String() != "LF" || BDF.String() != "BDF" || EDF.String() != "EDF" || SchedulerKind(9).String() == "" {
		t.Fatal("kind strings wrong")
	}
	cfg := smallConfig()
	cfg.Scheduler = SchedulerKind(9)
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
}

func TestMapOnlyNormalModeRuntime(t *testing.T) {
	// Map-only job, no failure: runtime should approximate F*T/(N*L),
	// the analysis formula (Section IV-B) plus heartbeat quantization.
	cfg := smallConfig()
	cfg.Failure = topology.NoFailure
	cfg.Seed = 1
	cfg.OutOfBandHeartbeats = true // avoid heartbeat quantization in the bound check
	cfg.RackBps = netsim.Gbps      // keep remote stealing cheap so the ideal bound applies
	j := smallJob()
	j.NumReduceTasks = 0
	j.ShuffleRatio = 0
	res := mustRun(t, cfg, j)
	jr := res.Jobs[0]
	ideal := float64(cfg.NumBlocks) * j.MapTime.Mean / float64(cfg.Nodes*cfg.MapSlotsPerNode)
	if jr.Runtime() < ideal*0.9 || jr.Runtime() > ideal*1.8 {
		t.Fatalf("map-only runtime %.1f not near ideal %.1f", jr.Runtime(), ideal)
	}
	if len(jr.Tasks) != cfg.NumBlocks {
		t.Fatalf("task records = %d", len(jr.Tasks))
	}
	for _, rec := range jr.Tasks {
		if rec.FinishTime <= rec.LaunchTime {
			t.Fatal("task with non-positive runtime")
		}
		if rec.Class == sched.ClassDegraded {
			t.Fatal("degraded task in normal mode")
		}
	}
	if jr.MapPhaseEnd != jr.FinishTime {
		t.Fatal("map-only job must finish with its map phase")
	}
}

func TestNormalModeAllSchedulersIdenticalRuntime(t *testing.T) {
	// Without failures the three schedulers produce identical schedules.
	var runtimes []float64
	for _, k := range []SchedulerKind{LF, BDF, EDF} {
		cfg := smallConfig()
		cfg.Failure = topology.NoFailure
		cfg.Scheduler = k
		cfg.Seed = 7
		res := mustRun(t, cfg, smallJob())
		runtimes = append(runtimes, res.Jobs[0].Runtime())
	}
	if runtimes[0] != runtimes[1] || runtimes[0] != runtimes[2] {
		t.Fatalf("normal-mode runtimes differ: %v", runtimes)
	}
}

func TestFailureModeProducesDegradedTasks(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 3
	res := mustRun(t, cfg, smallJob())
	if len(res.Failed) != 1 {
		t.Fatalf("failed nodes = %v", res.Failed)
	}
	jr := res.Jobs[0]
	counts := jr.CountByClass()
	deg := counts[sched.ClassDegraded]
	if deg == 0 {
		t.Fatal("no degraded tasks in failure mode")
	}
	// Roughly F/N blocks were on the failed node.
	expect := float64(cfg.NumBlocks) / float64(cfg.Nodes)
	if float64(deg) < expect*0.4 || float64(deg) > expect*2.5 {
		t.Fatalf("degraded count %d far from F/N = %.1f", deg, expect)
	}
	// Degraded tasks carry degraded-read times; normal tasks don't.
	for _, rec := range jr.Tasks {
		if rec.Class == sched.ClassDegraded && rec.DegradedReadTime <= 0 {
			t.Fatal("degraded task without degraded-read time")
		}
		if rec.Class != sched.ClassDegraded && rec.DegradedReadTime != 0 {
			t.Fatal("non-degraded task with degraded-read time")
		}
		if !topologyAlive(res.Failed, rec.Node) {
			t.Fatal("task ran on failed node")
		}
	}
	if got := len(jr.DegradedReadTimes()); got != deg {
		t.Fatalf("DegradedReadTimes len %d, want %d", got, deg)
	}
}

func topologyAlive(failed []topology.NodeID, id topology.NodeID) bool {
	for _, f := range failed {
		if f == id {
			return false
		}
	}
	return true
}

func TestEDFBeatsLFInFailureMode(t *testing.T) {
	// The headline result: EDF reduces runtime vs LF in failure mode.
	// Compare mean over a few seeds to be robust to placement variance.
	var lfSum, edfSum float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		for _, k := range []SchedulerKind{LF, EDF} {
			cfg := smallConfig()
			cfg.Scheduler = k
			cfg.Seed = 100 + seed
			res := mustRun(t, cfg, smallJob())
			if k == LF {
				lfSum += res.Jobs[0].Runtime()
			} else {
				edfSum += res.Jobs[0].Runtime()
			}
		}
	}
	if edfSum >= lfSum {
		t.Fatalf("EDF (%.1f) did not beat LF (%.1f) in failure mode", edfSum/seeds, lfSum/seeds)
	}
}

func TestEDFCutsDegradedReadTime(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 42
	cfg.Scheduler = LF
	lf := mustRun(t, cfg, smallJob())
	cfg.Scheduler = EDF
	edf := mustRun(t, cfg, smallJob())
	lfRead := lf.Jobs[0].MeanDegradedReadTime()
	edfRead := edf.Jobs[0].MeanDegradedReadTime()
	if edfRead >= lfRead {
		t.Fatalf("EDF degraded-read time %.2f not below LF %.2f", edfRead, lfRead)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduler = EDF
	cfg.Seed = 9
	a := mustRun(t, cfg, smallJob())
	b := mustRun(t, cfg, smallJob())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical results")
	}
	cfg.Seed = 10
	c := mustRun(t, cfg, smallJob())
	if reflect.DeepEqual(a.Jobs[0].Runtime(), c.Jobs[0].Runtime()) && reflect.DeepEqual(a.Failed, c.Failed) {
		t.Log("different seeds gave equal runtime (possible but unlikely)")
	}
}

func TestMultiJobFIFO(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 11
	j1 := smallJob()
	j1.Name = "first"
	j2 := smallJob()
	j2.Name = "second"
	j2.SubmitAt = 10
	res := mustRun(t, cfg, j1, j2)
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	a, b := res.Jobs[0], res.Jobs[1]
	if a.Name != "first" || b.Name != "second" {
		t.Fatal("job order wrong")
	}
	if b.FirstMapLaunch < a.FirstMapLaunch {
		t.Fatal("second job started mapping before first")
	}
	if res.Makespan != math.Max(a.FinishTime, b.FinishTime) {
		t.Fatal("makespan wrong")
	}
}

func TestReducePhaseSemantics(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 13
	j := smallJob()
	res := mustRun(t, cfg, j)
	jr := res.Jobs[0]
	if len(jr.Reduces) != j.NumReduceTasks {
		t.Fatalf("reduce records = %d, want %d", len(jr.Reduces), j.NumReduceTasks)
	}
	for _, r := range jr.Reduces {
		// A reduce task cannot finish before the map phase ends plus its
		// processing time (minus tolerance for the truncated normal).
		if r.FinishTime < jr.MapPhaseEnd {
			t.Fatalf("reduce finished at %.1f before map phase end %.1f", r.FinishTime, jr.MapPhaseEnd)
		}
		if !topologyAlive(res.Failed, r.Node) {
			t.Fatal("reduce ran on failed node")
		}
	}
	if jr.FinishTime < jr.MapPhaseEnd {
		t.Fatal("job finished before its map phase")
	}
	if jr.MeanReduceRuntime() <= 0 {
		t.Fatal("reduce runtime not recorded")
	}
}

func TestHeterogeneousSpeedFactors(t *testing.T) {
	cfg := smallConfig()
	cfg.Failure = topology.NoFailure
	cfg.Seed = 17
	cfg.OutOfBandHeartbeats = true
	cfg.RackBps = netsim.Gbps
	j := smallJob()
	j.NumReduceTasks = 0
	j.ShuffleRatio = 0
	fast := mustRun(t, cfg, j)
	cfg.SpeedFactors = map[topology.NodeID]float64{}
	for i := 0; i < 5; i++ {
		cfg.SpeedFactors[topology.NodeID(i)] = 2.0
	}
	slow := mustRun(t, cfg, j)
	if slow.Jobs[0].Runtime() <= fast.Jobs[0].Runtime() {
		t.Fatalf("heterogeneous cluster (%.1f) not slower than homogeneous (%.1f)",
			slow.Jobs[0].Runtime(), fast.Jobs[0].Runtime())
	}
	cfg.SpeedFactors = map[topology.NodeID]float64{0: -1}
	if _, err := Run(cfg, []JobSpec{j}); err == nil {
		t.Fatal("negative speed factor must fail")
	}
}

func TestMaxSimTimeAborts(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxSimTime = 5 // far too short
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("MaxSimTime overrun must error")
	}
}

func TestExpectedDegradedReadTime(t *testing.T) {
	cfg := DefaultConfig()
	// (R-1)/R * k * S / W = 3/4 * 15 * 128e6 / 125e6 = 11.52 s.
	want := 0.75 * 15 * 128e6 / netsim.Gbps
	if got := cfg.ExpectedDegradedReadTime(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedDegradedReadTime = %v, want %v", got, want)
	}
	cfg.RackBps = 0
	if cfg.ExpectedDegradedReadTime() != 0 {
		t.Fatal("zero bandwidth must return 0")
	}
}

func TestOutOfBandHeartbeats(t *testing.T) {
	// OOB heartbeats can only speed things up (slots refill immediately).
	cfg := smallConfig()
	cfg.Failure = topology.NoFailure
	cfg.Seed = 23
	base := mustRun(t, cfg, smallJob())
	cfg.OutOfBandHeartbeats = true
	oob := mustRun(t, cfg, smallJob())
	if oob.Jobs[0].Runtime() > base.Jobs[0].Runtime()+1e-9 {
		t.Fatalf("OOB heartbeats slowed the job: %.2f vs %.2f",
			oob.Jobs[0].Runtime(), base.Jobs[0].Runtime())
	}
}

func TestResultAggregates(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 29
	res := mustRun(t, cfg, smallJob())
	jr := res.Jobs[0]
	if jr.MeanNormalMapRuntime() <= 0 || jr.MeanDegradedRuntime() <= 0 {
		t.Fatal("mean runtimes not recorded")
	}
	byClass := jr.MeanRuntimeByClass()
	if len(byClass) == 0 {
		t.Fatal("MeanRuntimeByClass empty")
	}
	if jr.RemoteTasks() != jr.CountByClass()[sched.ClassRemote] {
		t.Fatal("RemoteTasks inconsistent")
	}
	if res.BytesMoved <= 0 {
		t.Fatal("no bytes moved despite remote/degraded/shuffle traffic")
	}
	if res.TotalRuntime() != jr.Runtime() {
		t.Fatal("TotalRuntime wrong for single job")
	}
	// Degraded tasks should have longer mean runtime than normal ones
	// (they pay for the degraded read).
	if jr.MeanDegradedRuntime() <= jr.MeanNormalMapRuntime() {
		t.Fatalf("degraded mean %.2f not above normal mean %.2f",
			jr.MeanDegradedRuntime(), jr.MeanNormalMapRuntime())
	}
}

func TestHoldModeRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.NetMode = netsim.ExclusiveHold
	cfg.Seed = 31
	res := mustRun(t, cfg, smallJob())
	if res.Jobs[0].Runtime() <= 0 {
		t.Fatal("hold-mode run produced no runtime")
	}
}

func TestRepairBlockCountShortensDegradedReads(t *testing.T) {
	// LRC-style repairs (fewer source blocks) must shorten degraded reads
	// under identical placement and failure.
	base := smallConfig()
	base.Seed = 37
	base.Scheduler = LF
	full := mustRun(t, base, smallJob())
	lrc := base
	lrc.RepairBlockCount = 2 // vs K=4
	cheap := mustRun(t, lrc, smallJob())
	if cheap.Jobs[0].MeanDegradedReadTime() >= full.Jobs[0].MeanDegradedReadTime() {
		t.Fatalf("repair=2 read %.2f not below repair=k read %.2f",
			cheap.Jobs[0].MeanDegradedReadTime(), full.Jobs[0].MeanDegradedReadTime())
	}
	bad := base
	bad.RepairBlockCount = 99
	if _, err := Run(bad, []JobSpec{smallJob()}); err == nil {
		t.Fatal("out-of-range RepairBlockCount must fail")
	}
}

func TestDelaySchedulerRunsInSimulator(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduler = sched.KindDelayLF
	cfg.Seed = 41
	res := mustRun(t, cfg, smallJob())
	if res.Scheduler != "DelayLF" {
		t.Fatalf("scheduler = %s", res.Scheduler)
	}
	if res.Jobs[0].Runtime() <= 0 {
		t.Fatal("no runtime")
	}
	// Delay scheduling must not increase remote tasks relative to LF.
	cfg.Scheduler = LF
	lf := mustRun(t, cfg, smallJob())
	if res.Jobs[0].RemoteTasks() > lf.Jobs[0].RemoteTasks() {
		t.Fatalf("DelayLF remote tasks %d exceed LF's %d",
			res.Jobs[0].RemoteTasks(), lf.Jobs[0].RemoteTasks())
	}
}

func TestDoubleNodeFailure(t *testing.T) {
	cfg := smallConfig()
	cfg.Failure = topology.DoubleNodeFailure
	cfg.Seed = 43
	cfg.Scheduler = EDF
	res := mustRun(t, cfg, smallJob())
	if len(res.Failed) != 2 {
		t.Fatalf("failed = %v", res.Failed)
	}
	deg := res.Jobs[0].CountByClass()[sched.ClassDegraded]
	if deg == 0 {
		t.Fatal("no degraded tasks under double failure")
	}
	for _, rec := range res.Jobs[0].Tasks {
		if !topologyAlive(res.Failed, rec.Node) {
			t.Fatal("task placed on failed node")
		}
	}
}

func TestExplicitFailNodes(t *testing.T) {
	cfg := smallConfig()
	cfg.FailNodes = []topology.NodeID{2, 7}
	cfg.Seed = 47
	res := mustRun(t, cfg, smallJob())
	if len(res.Failed) != 2 || res.Failed[0] != 2 || res.Failed[1] != 7 {
		t.Fatalf("failed = %v", res.Failed)
	}
	cfg.FailNodes = []topology.NodeID{99}
	if _, err := Run(cfg, []JobSpec{smallJob()}); err == nil {
		t.Fatal("out-of-range FailNodes must error")
	}
}

func TestRackFailureRuns(t *testing.T) {
	// With (6,4) over 3 racks a whole rack can fail and stripes still have
	// >= k=4 survivors (at most 2 blocks per rack per stripe).
	cfg := smallConfig()
	cfg.Failure = topology.RackFailure
	cfg.Seed = 53
	cfg.Scheduler = EDF
	res := mustRun(t, cfg, smallJob())
	if len(res.Failed) != 4 {
		t.Fatalf("rack failure should kill 4 nodes, got %v", res.Failed)
	}
	if res.Jobs[0].CountByClass()[sched.ClassDegraded] == 0 {
		t.Fatal("no degraded tasks under rack failure")
	}
}

func TestBytesMovedScalesWithShuffle(t *testing.T) {
	cfg := smallConfig()
	cfg.Failure = topology.NoFailure
	cfg.Seed = 59
	lean := smallJob()
	lean.ShuffleRatio = 0.01
	fat := smallJob()
	fat.ShuffleRatio = 0.30
	a := mustRun(t, cfg, lean)
	b := mustRun(t, cfg, fat)
	if b.BytesMoved <= a.BytesMoved {
		t.Fatalf("30%% shuffle (%.0f) should move more bytes than 1%% (%.0f)",
			b.BytesMoved, a.BytesMoved)
	}
}
