package mapred

import (
	"testing"
	"time"
)

// TestPaperScalePerf is a smoke/performance check at the paper's default
// scale (40 nodes, 1440 blocks, 30 reducers). Skipped in -short mode.
func TestPaperScalePerf(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in short mode")
	}
	for _, k := range []SchedulerKind{LF, EDF} {
		cfg := DefaultConfig()
		cfg.Scheduler = k
		cfg.Seed = 1
		start := time.Now()
		res, err := Run(cfg, []JobSpec{DefaultJob()})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: runtime=%.1fs wall=%v degraded=%d remote=%d degRead=%.2fs",
			k, res.Jobs[0].Runtime(), time.Since(start).Round(time.Millisecond),
			res.Jobs[0].CountByClass()[4], res.Jobs[0].RemoteTasks(),
			res.Jobs[0].MeanDegradedReadTime())
	}
}
