package mapred

import (
	"context"
	"fmt"
	"sort"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Run executes one simulation: builds the cluster, places every job's
// blocks while the cluster is healthy, injects the configured failure
// (at time zero, or mid-run when FailAt is set), then delegates the
// heartbeat-driven master loop — scheduling, block transfers, degraded
// reads, shuffle, reduce processing, and mid-run failure recovery — to
// the shared cluster runtime with a simulated-cost backend.
func Run(cfg Config, jobs []JobSpec) (*Result, error) {
	return RunContext(context.Background(), cfg, jobs)
}

// RunContext is Run with cancellation: ctx aborts the simulation at the
// next heartbeat.
func RunContext(ctx context.Context, cfg Config, jobs []JobSpec) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("mapred: no jobs")
	}
	specs := make([]JobSpec, len(jobs))
	copy(specs, jobs)
	for i := range specs {
		if err := cfg.validateJob(&specs[i]); err != nil {
			return nil, err
		}
	}

	rng := stats.NewRNG(cfg.Seed)
	cluster, err := topology.New(topology.Config{
		Nodes:              cfg.Nodes,
		Racks:              cfg.Racks,
		RackSizes:          cfg.RackSizes,
		Spec:               cfg.Topology,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
	})
	if err != nil {
		return nil, err
	}
	// Deterministic application of heterogeneous speed factors.
	ids := make([]int, 0, len(cfg.SpeedFactors))
	for id := range cfg.SpeedFactors {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := cluster.SetSpeedFactor(topology.NodeID(id), cfg.SpeedFactors[topology.NodeID(id)]); err != nil {
			return nil, err
		}
	}

	// Place all job files while the cluster is healthy.
	placeRNG := rng.Fork()
	backend := &simBackend{cfg: cfg, specs: specs, cluster: cluster}
	rjobs := make([]runtime.JobSpec, len(specs))
	for i := range specs {
		numStripes := (specs[i].NumBlocks + cfg.K - 1) / cfg.K
		place, err := cfg.Policy.Place(cluster, numStripes, cfg.N, cfg.K, placeRNG)
		if err != nil {
			return nil, fmt.Errorf("mapred: placing job %q: %w", specs[i].Name, err)
		}
		blocks := place.NativeBlocks()[:specs[i].NumBlocks]
		tasks := make([]sched.TaskSpec, len(blocks))
		for t, b := range blocks {
			tasks[t] = sched.TaskSpec{Block: b, Holder: place.Holder(b)}
		}
		backend.places = append(backend.places, place)
		backend.blocks = append(backend.blocks, blocks)
		rjobs[i] = runtime.JobSpec{
			Name:        specs[i].Name,
			SubmitAt:    specs[i].SubmitAt,
			Tasks:       tasks,
			NumReducers: specs[i].NumReduceTasks,
			Tenant:      specs[i].Tenant,
			Weight:      specs[i].Weight,
			Deadline:    specs[i].Deadline,
		}
	}

	failRNG := rng.Fork()
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    cfg.NetMode,
		NodeBps: cfg.NodeBps,
		RackBps: cfg.RackBps,
		CoreBps: cfg.CoreBps,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := cfg.Scheduler.New(cluster.NumRacks())
	if err != nil {
		return nil, err
	}
	backend.rng = rng.Fork()

	env := &sched.Env{
		Cluster: cluster,
		PerTaskTime: func(id topology.NodeID) float64 {
			return specs[0].MapTime.Mean * cluster.Node(id).SpeedFactor
		},
		DegradedReadTime: cfg.ExpectedDegradedReadTime(),
	}

	// Failure injection: immediately, or scheduled mid-run.
	pickFailures := func() ([]topology.NodeID, error) {
		if len(cfg.FailNodes) > 0 {
			for _, id := range cfg.FailNodes {
				if int(id) < 0 || int(id) >= cluster.NumNodes() {
					return nil, fmt.Errorf("mapred: FailNodes entry %d out of range", id)
				}
			}
			return cfg.FailNodes, nil
		}
		// Pick per the pattern without failing yet (InjectFailure fails
		// them; recover immediately and let the runtime fail at its time).
		failed, err := topology.InjectFailure(cluster, cfg.Failure, failRNG)
		if err != nil {
			return nil, err
		}
		for _, id := range failed {
			cluster.RecoverNode(id)
		}
		return failed, nil
	}
	toFail, err := pickFailures()
	if err != nil {
		return nil, err
	}

	return runtime.Run(runtime.Params{
		Name:                "mapred",
		Ctx:                 ctx,
		Engine:              eng,
		Cluster:             cluster,
		Net:                 net,
		Scheduler:           scheduler,
		Env:                 env,
		JobSched:            cfg.JobSched,
		HeartbeatInterval:   cfg.HeartbeatInterval,
		OutOfBandHeartbeats: cfg.OutOfBandHeartbeats,
		MaxSimTime:          cfg.MaxSimTime,
		Hedge:               cfg.Hedge,
		Repair:              cfg.Repair,
		FailAt:              cfg.FailAt,
		ToFail:              toFail,
		Sink:                cfg.Trace,
		Label:               cfg.TraceLabel,
		TraceFlowRates:      cfg.TraceFlowRates,
	}, backend, rjobs)
}

// simBackend is the simulated-cost runtime backend: no real data moves,
// task costs are drawn from the configured distributions, and degraded
// reads are planned against the placement without decoding anything.
type simBackend struct {
	cfg     Config
	specs   []JobSpec
	cluster *topology.Cluster
	rng     *stats.RNG
	places  []*placement.Placement
	blocks  [][]erasure.BlockID
	// picked remembers each degraded task's latest primary sources so
	// SpareSources can exclude them. Keyed by (job, task).
	picked map[[2]int][]dfs.Source
	// fileIdx maps synthetic repair file names back to job indices
	// (lazily built by fileJob's inverse, see repair.go).
	fileIdx map[string]int
}

func (b *simBackend) speed(id topology.NodeID) float64 {
	return b.cluster.Node(id).SpeedFactor
}

// PlanInput implements runtime.Backend: node-local inputs need no
// transfers, rack-local/remote inputs one block transfer from the holder,
// and degraded inputs one transfer per repair source.
func (b *simBackend) PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]runtime.Transfer, any, error) {
	block := b.blocks[job][task]
	switch class {
	case sched.ClassNodeLocal:
		return nil, nil, nil
	case sched.ClassRackLocal, sched.ClassRemote:
		holder := b.places[job].Holder(block)
		return []runtime.Transfer{{Src: holder, Bytes: b.cfg.BlockSizeBytes}}, nil, nil
	case sched.ClassDegraded:
		sources, err := dfs.PickNSources(b.cluster, b.places[job], block, node,
			b.cfg.RepairBlockCount, b.cfg.SourceStrategy, b.rng)
		if err != nil {
			return nil, nil, fmt.Errorf("mapred: degraded read plan for %v: %w", block, err)
		}
		if b.picked == nil {
			b.picked = make(map[[2]int][]dfs.Source)
		}
		b.picked[[2]int{job, task}] = sources
		transfers := make([]runtime.Transfer, len(sources))
		for i, src := range sources {
			transfers[i] = runtime.Transfer{Src: src.Node, Bytes: b.cfg.BlockSizeBytes}
		}
		return transfers, nil, nil
	default:
		return nil, nil, fmt.Errorf("mapred: unknown assignment class %v", class)
	}
}

// SpareSources implements runtime.HedgedBackend: surviving stripe blocks
// beyond the primaries picked by the latest PlanInput, deterministically
// ordered by stripe index (no RNG draws).
func (b *simBackend) SpareSources(job, task int, node topology.NodeID, max int) ([]runtime.Transfer, error) {
	primaries := b.picked[[2]int{job, task}]
	if len(primaries) != b.cfg.K {
		// RepairBlockCount != K models a locality-aware code whose repair
		// sets are not any-k substitutable, so no spares.
		return nil, nil
	}
	block := b.blocks[job][task]
	spares := dfs.SpareSources(b.cluster, b.places[job], block, primaries, max)
	transfers := make([]runtime.Transfer, len(spares))
	for i, src := range spares {
		transfers[i] = runtime.Transfer{Src: src.Node, Bytes: b.cfg.BlockSizeBytes}
	}
	return transfers, nil
}

// Execute implements runtime.Backend: charge a sampled map duration.
func (b *simBackend) Execute(job, task int, node topology.NodeID, input any) (float64, any) {
	spec := &b.specs[job]
	return b.rng.Normal(spec.MapTime.Mean, spec.MapTime.Std) * b.speed(node), nil
}

// Partitions implements runtime.Backend: every reducer receives an equal
// share of the map output (ShuffleRatio of the block size).
func (b *simBackend) Partitions(job, task int, output any) []runtime.Chunk {
	n := b.specs[job].NumReduceTasks
	chunk := b.specs[job].ShuffleRatio * b.cfg.BlockSizeBytes / float64(n)
	parts := make([]runtime.Chunk, n)
	for i := range parts {
		parts[i] = runtime.Chunk{Bytes: chunk}
	}
	return parts
}

// Deliver implements runtime.Backend: simulated shuffle carries no data.
func (b *simBackend) Deliver(job, reducer int, node topology.NodeID, c runtime.Chunk) error {
	return nil
}

// ReduceDuration implements runtime.Backend: charge a sampled reduce
// duration, independent of the received volume.
func (b *simBackend) ReduceDuration(job, reducer int, node topology.NodeID, receivedBytes float64) float64 {
	spec := &b.specs[job]
	return b.rng.Normal(spec.ReduceTime.Mean, spec.ReduceTime.Std) * b.speed(node)
}

// ReduceReset implements runtime.Backend: nothing buffered to discard.
func (b *simBackend) ReduceReset(job, reducer int) {}

// ReduceFinish implements runtime.Backend: nothing to finalize.
func (b *simBackend) ReduceFinish(job, reducer int) {}
