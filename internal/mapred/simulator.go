package mapred

import (
	"fmt"
	"sort"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Run executes one simulation: builds the cluster, places every job's
// blocks while the cluster is healthy, injects the configured failure
// (at time zero, or mid-run when FailAt is set), then simulates
// heartbeat-driven scheduling, block transfers, degraded reads, shuffle,
// and reduce processing until every job finishes.
//
// Mid-run failures follow Hadoop's recovery semantics: map tasks running
// on the failed node are re-executed elsewhere, completed map outputs
// stored on the failed node are lost and their tasks re-run if reducers
// still need them, and reduce tasks on the failed node restart and
// re-fetch every map output.
func Run(cfg Config, jobs []JobSpec) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("mapred: no jobs")
	}
	specs := make([]JobSpec, len(jobs))
	copy(specs, jobs)
	for i := range specs {
		if err := cfg.validateJob(&specs[i]); err != nil {
			return nil, err
		}
	}

	rng := stats.NewRNG(cfg.Seed)
	cluster, err := topology.New(topology.Config{
		Nodes:              cfg.Nodes,
		Racks:              cfg.Racks,
		RackSizes:          cfg.RackSizes,
		MapSlotsPerNode:    cfg.MapSlotsPerNode,
		ReduceSlotsPerNode: cfg.ReduceSlotsPerNode,
	})
	if err != nil {
		return nil, err
	}
	// Deterministic application of heterogeneous speed factors.
	ids := make([]int, 0, len(cfg.SpeedFactors))
	for id := range cfg.SpeedFactors {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := cluster.SetSpeedFactor(topology.NodeID(id), cfg.SpeedFactors[topology.NodeID(id)]); err != nil {
			return nil, err
		}
	}

	// Place all job files while the cluster is healthy.
	placeRNG := rng.Fork()
	jobStates := make([]*jobState, len(specs))
	for i := range specs {
		numStripes := (specs[i].NumBlocks + cfg.K - 1) / cfg.K
		place, err := cfg.Policy.Place(cluster, numStripes, cfg.N, cfg.K, placeRNG)
		if err != nil {
			return nil, fmt.Errorf("mapred: placing job %q: %w", specs[i].Name, err)
		}
		blocks := place.NativeBlocks()[:specs[i].NumBlocks]
		js := &jobState{
			idx:            i,
			spec:           specs[i],
			place:          place,
			blocks:         blocks,
			firstMapLaunch: -1,
			tasks:          make([]TaskRecord, len(blocks)),
			reducers:       make([]*reducerState, specs[i].NumReduceTasks),
			pendingShuffle: make([][]pendingChunk, specs[i].NumReduceTasks),
		}
		for r := range js.reducers {
			js.reducers[r] = &reducerState{job: js, idx: r, got: make([]bool, len(blocks))}
		}
		jobStates[i] = js
	}

	failRNG := rng.Fork()
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    cfg.NetMode,
		NodeBps: cfg.NodeBps,
		RackBps: cfg.RackBps,
		CoreBps: cfg.CoreBps,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := cfg.Scheduler.New(cluster.NumRacks())
	if err != nil {
		return nil, err
	}

	st := &state{
		cfg:       cfg,
		eng:       eng,
		cluster:   cluster,
		net:       net,
		rng:       rng.Fork(),
		scheduler: scheduler,
		jobs:      jobStates,
		slaves:    make([]*slaveState, cfg.Nodes),
		running:   make(map[*sched.Task]*runningMap),
	}
	st.env = &sched.Env{
		Cluster: cluster,
		PerTaskTime: func(id topology.NodeID) float64 {
			return specs[0].MapTime.Mean * cluster.Node(id).SpeedFactor
		},
		DegradedReadTime: cfg.ExpectedDegradedReadTime(),
	}
	for i := range st.slaves {
		node := cluster.Node(topology.NodeID(i))
		st.slaves[i] = &slaveState{
			id:         node.ID,
			freeMap:    node.MapSlots,
			freeReduce: node.ReduceSlots,
		}
	}

	// Failure injection: immediately, or scheduled mid-run.
	pickFailures := func() ([]topology.NodeID, error) {
		if len(cfg.FailNodes) > 0 {
			for _, id := range cfg.FailNodes {
				if int(id) < 0 || int(id) >= cluster.NumNodes() {
					return nil, fmt.Errorf("mapred: FailNodes entry %d out of range", id)
				}
			}
			return cfg.FailNodes, nil
		}
		// Pick per the pattern without failing yet (InjectFailure fails
		// them; recover immediately and let the caller fail at its time).
		failed, err := topology.InjectFailure(cluster, cfg.Failure, failRNG)
		if err != nil {
			return nil, err
		}
		for _, id := range failed {
			cluster.RecoverNode(id)
		}
		return failed, nil
	}
	toFail, err := pickFailures()
	if err != nil {
		return nil, err
	}
	if cfg.FailAt <= 0 {
		for _, id := range toFail {
			cluster.FailNode(id)
		}
	} else {
		eng.Schedule(cfg.FailAt, func() { st.injectFailure(toFail) })
	}

	// Job submissions.
	for _, js := range jobStates {
		js := js
		eng.Schedule(js.spec.SubmitAt, func() { st.submitJob(js) })
	}
	// Slave heartbeats, staggered across the interval for determinism
	// without lockstep artifacts.
	for i := 0; i < cfg.Nodes; i++ {
		id := topology.NodeID(i)
		offset := cfg.HeartbeatInterval * float64(i) / float64(cfg.Nodes)
		eng.Schedule(offset, func() { st.heartbeat(id) })
	}

	eng.Run()
	if st.err != nil {
		return nil, st.err
	}
	if st.finished != len(jobStates) {
		return nil, fmt.Errorf("mapred: simulation drained with %d/%d jobs finished", st.finished, len(jobStates))
	}

	res := &Result{
		Scheduler:  scheduler.Name(),
		Failed:     cluster.FailedNodes(),
		BytesMoved: net.BytesMoved,
	}
	for _, js := range jobStates {
		jr := JobResult{
			Name:           js.spec.Name,
			SubmitTime:     js.spec.SubmitAt,
			FirstMapLaunch: js.firstMapLaunch,
			MapPhaseEnd:    js.mapPhaseEnd,
			FinishTime:     js.finishTime,
			Tasks:          js.tasks,
			Reduces:        js.reduceRecs,
		}
		if jr.FinishTime > res.Makespan {
			res.Makespan = jr.FinishTime
		}
		res.Jobs = append(res.Jobs, jr)
	}
	return res, nil
}

type pendingChunk struct {
	src    topology.NodeID
	bytes  float64
	mapIdx int
}

type reducerState struct {
	job        *jobState
	idx        int
	node       topology.NodeID
	launched   bool
	launchTime float64
	// got[mapIdx] marks map outputs fully received; received counts them.
	got      []bool
	received int
	started  bool
	done     bool
	procEv   *sim.Event
}

// shuffleRef tracks one in-flight shuffle transfer for failure recovery.
type shuffleRef struct {
	flow   *netsim.Flow
	r      *reducerState
	mapIdx int
	src    topology.NodeID
}

type jobState struct {
	idx   int
	spec  JobSpec
	place *placement.Placement
	// blocks are the job's native input blocks in task-index order.
	blocks []erasure.BlockID
	sj     *sched.Job

	submitted bool
	finishedJ bool

	mapsCompleted  int
	firstMapLaunch float64
	mapPhaseEnd    float64
	finishTime     float64

	reducersAssigned int
	reducersDone     int
	reducers         []*reducerState
	pendingShuffle   [][]pendingChunk
	shuffleFlows     []*shuffleRef

	tasks      []TaskRecord
	reduceRecs []ReduceRecord
}

func (j *jobState) totalMaps() int { return len(j.blocks) }

// mapOutputAvailable reports whether task mapIdx has completed and its
// output still exists (its executing node is alive).
func (j *jobState) mapOutputAvailable(c *topology.Cluster, mapIdx int) bool {
	rec := j.tasks[mapIdx]
	return rec.FinishTime > 0 && c.Alive(rec.Node)
}

type slaveState struct {
	id         topology.NodeID
	freeMap    int
	freeReduce int
	oobPending bool
}

// runningMap tracks one in-flight map task for failure recovery.
type runningMap struct {
	js     *jobState
	task   *sched.Task
	rec    *TaskRecord
	node   topology.NodeID
	flows  []*netsim.Flow
	procEv *sim.Event
}

type state struct {
	cfg       Config
	eng       *sim.Engine
	cluster   *topology.Cluster
	net       *netsim.Net
	rng       *stats.RNG
	scheduler sched.Scheduler
	env       *sched.Env
	jobs      []*jobState
	slaves    []*slaveState
	running   map[*sched.Task]*runningMap
	finished  int
	err       error
}

func (s *state) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *state) allDone() bool { return s.finished == len(s.jobs) }

func (s *state) speed(id topology.NodeID) float64 { return s.cluster.Node(id).SpeedFactor }

// submitJob builds the job's scheduler view from the current failure state
// and enqueues it FIFO.
func (s *state) submitJob(js *jobState) {
	specs := make([]sched.TaskSpec, len(js.blocks))
	for i, b := range js.blocks {
		holder := js.place.Holder(b)
		specs[i] = sched.TaskSpec{
			Block:  b,
			Holder: holder,
			Lost:   !s.cluster.Alive(holder),
		}
	}
	js.sj = sched.NewJob(js.idx, specs)
	js.submitted = true
	s.env.Jobs = append(s.env.Jobs, js.sj)
}

// ensureScheduled re-inserts a job into the scheduler's view (in FIFO
// position) after a failure requeued some of its tasks.
func (s *state) ensureScheduled(js *jobState) {
	if !js.submitted || js.sj == nil || js.sj.Done() {
		return
	}
	for _, j := range s.env.Jobs {
		if j == js.sj {
			return
		}
	}
	pos := len(s.env.Jobs)
	for i, j := range s.env.Jobs {
		if j.ID > js.idx {
			pos = i
			break
		}
	}
	s.env.Jobs = append(s.env.Jobs, nil)
	copy(s.env.Jobs[pos+1:], s.env.Jobs[pos:])
	s.env.Jobs[pos] = js.sj
}

// heartbeat is one slave's periodic request for work.
func (s *state) heartbeat(id topology.NodeID) {
	if s.err != nil || s.allDone() {
		return // stop rescheduling; engine drains
	}
	now := s.eng.Now()
	if now > s.cfg.MaxSimTime {
		s.fail(fmt.Errorf("mapred: exceeded MaxSimTime %.0fs with %d/%d jobs finished",
			s.cfg.MaxSimTime, s.finished, len(s.jobs)))
		return
	}
	if s.cluster.Alive(id) {
		s.serveSlave(id)
	}
	s.eng.Schedule(s.cfg.HeartbeatInterval, func() { s.heartbeat(id) })
}

// oobHeartbeat is an out-of-band heartbeat triggered by task completion
// (deduplicated per slave).
func (s *state) oobHeartbeat(id topology.NodeID) {
	slave := s.slaves[id]
	if slave.oobPending || s.err != nil || s.allDone() {
		return
	}
	slave.oobPending = true
	s.eng.Schedule(0, func() {
		slave.oobPending = false
		if s.err == nil && !s.allDone() && s.cluster.Alive(id) {
			s.serveSlave(id)
		}
	})
}

// serveSlave assigns map and reduce tasks to a slave's free slots.
func (s *state) serveSlave(id topology.NodeID) {
	slave := s.slaves[id]
	now := s.eng.Now()
	if slave.freeMap > 0 && len(s.env.Jobs) > 0 {
		assignments := s.scheduler.Assign(s.env, sched.Heartbeat{
			Now:          now,
			Node:         id,
			FreeMapSlots: slave.freeMap,
		})
		for _, a := range assignments {
			s.launchMap(a, id)
		}
		s.pruneScheduledJobs()
	}
	for slave.freeReduce > 0 {
		r := s.nextReducerToAssign()
		if r == nil {
			break
		}
		s.launchReducer(r, id)
	}
}

// pruneScheduledJobs drops fully-assigned jobs from the scheduler's view.
func (s *state) pruneScheduledJobs() {
	kept := s.env.Jobs[:0]
	for _, j := range s.env.Jobs {
		if !j.Done() {
			kept = append(kept, j)
		}
	}
	s.env.Jobs = kept
}

// nextReducerToAssign returns the first unassigned reducer of the first
// submitted unfinished job, in FIFO order.
func (s *state) nextReducerToAssign() *reducerState {
	for _, js := range s.jobs {
		if !js.submitted || js.finishedJ {
			continue
		}
		if js.reducersAssigned < len(js.reducers) {
			for _, r := range js.reducers {
				if !r.launched && !r.done {
					return r
				}
			}
		}
	}
	return nil
}

// launchMap starts executing an assigned map task on node id.
func (s *state) launchMap(a sched.Assignment, id topology.NodeID) {
	js := s.jobs[a.Task.Job]
	now := s.eng.Now()
	slave := s.slaves[id]
	if slave.freeMap <= 0 {
		s.fail(fmt.Errorf("mapred: scheduler overcommitted node %d", id))
		return
	}
	slave.freeMap--
	if js.firstMapLaunch < 0 {
		js.firstMapLaunch = now
	}
	rec := &js.tasks[a.Task.Index]
	*rec = TaskRecord{
		Job:        js.idx,
		Task:       a.Task.Index,
		Class:      a.Class,
		Node:       id,
		LaunchTime: now,
	}
	rm := &runningMap{js: js, task: a.Task, rec: rec, node: id}
	s.running[a.Task] = rm
	block := a.Task.Block

	switch a.Class {
	case sched.ClassNodeLocal:
		s.startMapProcessing(rm)
	case sched.ClassRackLocal, sched.ClassRemote:
		f := s.net.StartFlow(a.Task.Holder, id, s.cfg.BlockSizeBytes, func(*netsim.Flow) {
			s.startMapProcessing(rm)
		})
		rm.flows = append(rm.flows, f)
	case sched.ClassDegraded:
		sources, err := dfs.PickNSources(s.cluster, js.place, block, id, s.cfg.RepairBlockCount, s.cfg.SourceStrategy, s.rng)
		if err != nil {
			s.fail(fmt.Errorf("mapred: degraded read plan for %v: %w", block, err))
			return
		}
		remaining := len(sources)
		for _, src := range sources {
			f := s.net.StartFlow(src.Node, id, s.cfg.BlockSizeBytes, func(*netsim.Flow) {
				remaining--
				if remaining == 0 {
					rec.DegradedReadTime = s.eng.Now() - rec.LaunchTime
					s.startMapProcessing(rm)
				}
			})
			rm.flows = append(rm.flows, f)
		}
	default:
		s.fail(fmt.Errorf("mapred: unknown assignment class %v", a.Class))
	}
}

// startMapProcessing charges the map's CPU time after its input is ready.
func (s *state) startMapProcessing(rm *runningMap) {
	dur := s.rng.Normal(rm.js.spec.MapTime.Mean, rm.js.spec.MapTime.Std) * s.speed(rm.node)
	rm.procEv = s.eng.Schedule(dur, func() { s.completeMap(rm) })
}

// completeMap finishes a map task: frees the slot, emits shuffle flows to
// launched reducers (queueing for unlaunched ones), and closes the map
// phase when this was the last map task.
func (s *state) completeMap(rm *runningMap) {
	js, rec, id := rm.js, rm.rec, rm.node
	now := s.eng.Now()
	rec.FinishTime = now
	delete(s.running, rm.task)
	s.slaves[id].freeMap++
	js.mapsCompleted++

	if n := len(js.reducers); n > 0 {
		chunk := js.spec.ShuffleRatio * s.cfg.BlockSizeBytes / float64(n)
		for _, r := range js.reducers {
			if r.got[rec.Task] || r.done {
				continue
			}
			if r.launched {
				s.sendShuffle(id, r, rec.Task, chunk)
			} else {
				js.pendingShuffle[r.idx] = append(js.pendingShuffle[r.idx],
					pendingChunk{src: id, bytes: chunk, mapIdx: rec.Task})
			}
		}
	}

	if js.mapsCompleted == js.totalMaps() {
		js.mapPhaseEnd = now
		if len(js.reducers) == 0 {
			s.finishJob(js)
		} else {
			for _, r := range js.reducers {
				s.checkReducer(r)
			}
		}
	}
	if s.cfg.OutOfBandHeartbeats {
		s.oobHeartbeat(id)
	}
}

// sendShuffle starts one map-output transfer and records it for failure
// recovery.
func (s *state) sendShuffle(src topology.NodeID, r *reducerState, mapIdx int, bytes float64) {
	ref := &shuffleRef{r: r, mapIdx: mapIdx, src: src}
	ref.flow = s.net.StartFlow(src, r.node, bytes, func(*netsim.Flow) {
		if !r.got[mapIdx] && !r.done {
			r.got[mapIdx] = true
			r.received++
		}
		s.checkReducer(r)
	})
	r.job.shuffleFlows = append(r.job.shuffleFlows, ref)
}

// launchReducer assigns reducer r to node id and starts fetching any map
// outputs that completed before the launch.
func (s *state) launchReducer(r *reducerState, id topology.NodeID) {
	slave := s.slaves[id]
	slave.freeReduce--
	r.launched = true
	r.node = id
	r.launchTime = s.eng.Now()
	r.job.reducersAssigned++
	pending := r.job.pendingShuffle[r.idx]
	r.job.pendingShuffle[r.idx] = nil
	for _, chunk := range pending {
		if r.got[chunk.mapIdx] {
			continue
		}
		s.sendShuffle(chunk.src, r, chunk.mapIdx, chunk.bytes)
	}
}

// checkReducer starts reduce processing once the map phase is over and all
// map outputs have arrived.
func (s *state) checkReducer(r *reducerState) {
	js := r.job
	if !r.launched || r.started || r.done {
		return
	}
	if js.mapsCompleted != js.totalMaps() || r.received != js.totalMaps() {
		return
	}
	r.started = true
	dur := s.rng.Normal(js.spec.ReduceTime.Mean, js.spec.ReduceTime.Std) * s.speed(r.node)
	r.procEv = s.eng.Schedule(dur, func() { s.completeReducer(r) })
}

func (s *state) completeReducer(r *reducerState) {
	now := s.eng.Now()
	r.done = true
	r.procEv = nil
	js := r.job
	js.reduceRecs = append(js.reduceRecs, ReduceRecord{
		Job:        js.idx,
		Index:      r.idx,
		Node:       r.node,
		LaunchTime: r.launchTime,
		FinishTime: now,
	})
	s.slaves[r.node].freeReduce++
	js.reducersDone++
	if s.cfg.OutOfBandHeartbeats {
		s.oobHeartbeat(r.node)
	}
	if js.reducersDone == len(js.reducers) {
		s.finishJob(js)
	}
}

func (s *state) finishJob(js *jobState) {
	if js.finishedJ {
		return
	}
	js.finishedJ = true
	js.finishTime = s.eng.Now()
	s.finished++
}
