package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.R = 0 },
		func(p *Params) { p.L = 0 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.F = 0 },
		func(p *Params) { p.T = 0 },
		func(p *Params) { p.S = 0 },
		func(p *Params) { p.W = 0 },
		func(p *Params) { p.R = 100 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestKnownValues(t *testing.T) {
	p := Default()
	// Normal: 1440*20/(40*4) = 180 s.
	if got := p.NormalRuntime(); math.Abs(got-180) > 1e-9 {
		t.Fatalf("NormalRuntime = %v, want 180", got)
	}
	// Degraded read: 0.75 * 12 * 128e6 / 125e6 = 9.216 s.
	if got := p.DegradedReadTime(); math.Abs(got-9.216) > 1e-9 {
		t.Fatalf("DegradedReadTime = %v, want 9.216", got)
	}
	// LF: 180 + 9*9.216 + 20 = 282.944 s.
	if got := p.LocalityFirstRuntime(); math.Abs(got-282.944) > 1e-6 {
		t.Fatalf("LF runtime = %v, want 282.944", got)
	}
	// DF: max(1440*20/(39*4)+20, 9*9.216+20) = max(204.615, 102.944).
	if got := p.DegradedFirstRuntime(); math.Abs(got-204.6153846) > 1e-6 {
		t.Fatalf("DF runtime = %v", got)
	}
	if got := p.ReductionPercent(); got < 27 || got > 28 {
		t.Fatalf("reduction = %v%%, want ~27.7%%", got)
	}
}

func TestPaperReductionRange(t *testing.T) {
	// Figure 5(a): reductions between 15% and 32% over the code sweep.
	pts, err := SweepCodes(Default(), []int{6, 9, 12, 15},
		[]string{"(8,6)", "(12,9)", "(16,12)", "(20,15)"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.ReductionPct < 14 || pt.ReductionPct > 33 {
			t.Errorf("%s: reduction %.1f%% outside the paper's 15-32%% band", pt.Label, pt.ReductionPct)
		}
		if pt.NormalizedDF >= pt.NormalizedLF {
			t.Errorf("%s: DF not better than LF", pt.Label)
		}
	}
	// LF worsens with k; DF stays flat (degraded reads fit in one round).
	for i := 1; i < len(pts); i++ {
		if pts[i].NormalizedLF <= pts[i-1].NormalizedLF {
			t.Error("LF should increase with k")
		}
		if math.Abs(pts[i].NormalizedDF-pts[i-1].NormalizedDF) > 1e-9 {
			t.Error("DF should be flat across the code sweep in the default setting")
		}
	}
}

func TestSweepBlocksShape(t *testing.T) {
	// Figure 5(b): normalized runtimes decrease with F; reduction 25-28%.
	pts, err := SweepBlocks(Default(), []int{720, 1440, 2160, 2880})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.ReductionPct < 24 || pt.ReductionPct > 29 {
			t.Errorf("%s: reduction %.1f%% outside 25-28%%", pt.Label, pt.ReductionPct)
		}
		if i > 0 && pt.NormalizedLF >= pts[i-1].NormalizedLF {
			t.Error("normalized LF should decrease with F")
		}
	}
}

func TestSweepBandwidthShape(t *testing.T) {
	// Figure 5(c): runtime decreases with W; DF equal at 500 Mbps and
	// 1 Gbps (degraded reads fit in one round); reduction 18-43%.
	ws := []float64{100e6 / 8, 250e6 / 8, 500e6 / 8, 1e9 / 8}
	labels := []string{"100Mbps", "250Mbps", "500Mbps", "1Gbps"}
	pts, err := SweepBandwidth(Default(), ws, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.ReductionPct < 17 || pt.ReductionPct > 45 {
			t.Errorf("%s: reduction %.1f%% outside the paper's ~18-43%% band", pt.Label, pt.ReductionPct)
		}
		if i > 0 && pt.NormalizedLF > pts[i-1].NormalizedLF {
			t.Error("normalized LF should not increase with W")
		}
	}
	if math.Abs(pts[2].NormalizedDF-pts[3].NormalizedDF) > 1e-9 {
		t.Error("DF should be identical at 500 Mbps and 1 Gbps")
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := SweepCodes(Default(), []int{6}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := SweepCodes(Default(), []int{0}, []string{"bad"}); err == nil {
		t.Fatal("invalid k must fail")
	}
	if _, err := SweepBlocks(Default(), []int{0}); err == nil {
		t.Fatal("invalid F must fail")
	}
	if _, err := SweepBandwidth(Default(), []float64{1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := SweepBandwidth(Default(), []float64{0}, []string{"bad"}); err == nil {
		t.Fatal("invalid W must fail")
	}
}

func TestDFNeverWorseProperty(t *testing.T) {
	// Property: over random valid parameters, degraded-first is never
	// slower than locality-first in this model, and both are at least the
	// normal-mode runtime.
	f := func(nSeed, rSeed, lSeed, kSeed, fSeed uint8, tSeed, sSeed, wSeed uint16) bool {
		p := Params{
			N: 2 + int(nSeed)%99,
			R: 1 + int(rSeed)%8,
			L: 1 + int(lSeed)%8,
			K: 1 + int(kSeed)%20,
			F: 10 + int(fSeed)*10,
			T: 1 + float64(tSeed%100),
			S: 1e6 * (1 + float64(sSeed%500)),
			W: 1e6 * (1 + float64(wSeed%1000)),
		}
		if p.R > p.N {
			p.R = p.N
		}
		if p.Validate() != nil {
			return true
		}
		lf, df := p.LocalityFirstRuntime(), p.DegradedFirstRuntime()
		// LF always pays normal-mode compute plus degraded reads plus T.
		if lf < p.NormalRuntime()+p.T-1e-9 {
			return false
		}
		// DF can exceed LF only via its (N-1)-node compute term; whenever
		// that term is within LF's budget, DF must not be slower.
		compute := float64(p.F)*p.T/float64((p.N-1)*p.L) + p.T
		if compute <= lf+1e-9 && df > lf+1e-9 {
			return false
		}
		// Both models include the trailing slot duration.
		return df >= p.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
