// Package analysis implements the closed-form MapReduce runtime models of
// Section IV-B: the normal-mode runtime, the failure-mode runtime under
// locality-first scheduling, and the failure-mode runtime under
// degraded-first scheduling. It regenerates the numerical results of
// Figure 5.
package analysis

import (
	"errors"
	"fmt"
)

// Params are the analysis parameters, in the paper's notation.
type Params struct {
	// N is the number of homogeneous nodes.
	N int
	// R is the number of racks (N/R nodes each).
	R int
	// L is the number of map slots per node.
	L int
	// T is the processing time of one map task (seconds).
	T float64
	// S is the input block size (bytes).
	S float64
	// W is the download bandwidth of each rack (bytes/second).
	W float64
	// K is the erasure code's k (native blocks per stripe).
	K int
	// F is the total number of native blocks processed by the job.
	F int
}

// Default returns the paper's default analysis setting: N=40, R=4, L=4,
// S=128 MB, W=1 Gbps, T=20 s, F=1440, (n,k)=(16,12).
func Default() Params {
	return Params{
		N: 40, R: 4, L: 4,
		T: 20,
		S: 128e6,
		W: 1e9 / 8,
		K: 12,
		F: 1440,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.N <= 1 || p.R <= 0 || p.L <= 0 || p.K <= 0 || p.F <= 0:
		return errors.New("analysis: N>1, R, L, K, F must be positive")
	case p.T <= 0 || p.S <= 0 || p.W <= 0:
		return errors.New("analysis: T, S, W must be positive")
	case p.R > p.N:
		return fmt.Errorf("analysis: more racks (%d) than nodes (%d)", p.R, p.N)
	default:
		return nil
	}
}

// NormalRuntime is the map-only runtime without failures: F·T / (N·L).
func (p Params) NormalRuntime() float64 {
	return float64(p.F) * p.T / float64(p.N*p.L)
}

// DegradedReadTime is the expected inter-rack download time of one
// degraded read: (R-1)·k·S / (R·W).
func (p Params) DegradedReadTime() float64 {
	r := float64(p.R)
	return (r - 1) / r * float64(p.K) * p.S / p.W
}

// degradedPerRack is F/(N·R), the degraded tasks per rack.
func (p Params) degradedPerRack() float64 {
	return float64(p.F) / float64(p.N*p.R)
}

// LocalityFirstRuntime is the failure-mode runtime under locality-first
// scheduling:
//
//	F·T/(N·L)  +  F/(N·R) · (R-1)·k·S/(R·W)  +  T
//
// (all local tasks, then all degraded reads serialized per rack, then one
// slot-duration of parallel processing).
func (p Params) LocalityFirstRuntime() float64 {
	return p.NormalRuntime() + p.degradedPerRack()*p.DegradedReadTime() + p.T
}

// DegradedFirstRuntime is the failure-mode runtime under degraded-first
// scheduling:
//
//	max( F·T/((N-1)·L) + T ,  F/(N·R) · (R-1)·k·S/(R·W) + T )
//
// — the slower of the compute-bound lock-step rounds and the inter-rack
// transfer bound.
func (p Params) DegradedFirstRuntime() float64 {
	compute := float64(p.F)*p.T/float64((p.N-1)*p.L) + p.T
	network := p.degradedPerRack()*p.DegradedReadTime() + p.T
	if compute > network {
		return compute
	}
	return network
}

// Normalized runtimes (over the normal-mode runtime), as plotted in Fig. 5.

// NormalizedLF returns LocalityFirstRuntime / NormalRuntime.
func (p Params) NormalizedLF() float64 {
	return p.LocalityFirstRuntime() / p.NormalRuntime()
}

// NormalizedDF returns DegradedFirstRuntime / NormalRuntime.
func (p Params) NormalizedDF() float64 {
	return p.DegradedFirstRuntime() / p.NormalRuntime()
}

// ReductionPercent is the runtime reduction of degraded-first over
// locality-first, in percent.
func (p Params) ReductionPercent() float64 {
	lf := p.LocalityFirstRuntime()
	return 100 * (lf - p.DegradedFirstRuntime()) / lf
}

// Point is one model evaluation, used by the figure sweeps.
type Point struct {
	Label        string
	Params       Params
	NormalizedLF float64
	NormalizedDF float64
	ReductionPct float64
}

func (p Params) point(label string) Point {
	return Point{
		Label:        label,
		Params:       p,
		NormalizedLF: p.NormalizedLF(),
		NormalizedDF: p.NormalizedDF(),
		ReductionPct: p.ReductionPercent(),
	}
}

// SweepCodes evaluates the model across erasure-coding schemes, as in
// Figure 5(a). Each element of ks is a k value (the paper sweeps (8,6),
// (12,9), (16,12), (20,15), i.e. k = 6, 9, 12, 15).
func SweepCodes(base Params, ks []int, labels []string) ([]Point, error) {
	if len(ks) != len(labels) {
		return nil, errors.New("analysis: ks and labels length mismatch")
	}
	out := make([]Point, 0, len(ks))
	for i, k := range ks {
		p := base
		p.K = k
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p.point(labels[i]))
	}
	return out, nil
}

// SweepBlocks evaluates the model across total block counts F, as in
// Figure 5(b).
func SweepBlocks(base Params, fs []int) ([]Point, error) {
	out := make([]Point, 0, len(fs))
	for _, f := range fs {
		p := base
		p.F = f
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p.point(fmt.Sprintf("F=%d", f)))
	}
	return out, nil
}

// SweepBandwidth evaluates the model across rack bandwidths W (bytes/s),
// as in Figure 5(c).
func SweepBandwidth(base Params, ws []float64, labels []string) ([]Point, error) {
	if len(ws) != len(labels) {
		return nil, errors.New("analysis: ws and labels length mismatch")
	}
	out := make([]Point, 0, len(ws))
	for i, w := range ws {
		p := base
		p.W = w
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p.point(labels[i]))
	}
	return out, nil
}
