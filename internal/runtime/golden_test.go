package runtime_test

import (
	"fmt"
	"testing"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/minimr"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// The golden scenario pins both engines to the same cluster, placement,
// failure and deterministic task costs, with unlimited bandwidth so the
// engines' only RNG divergence (degraded-read source choice) cannot affect
// timing. Both backends must then drive the shared runtime to the exact
// same scheduler decision sequence.
const (
	goldenNodes     = 8
	goldenRacks     = 2
	goldenMapSlots  = 2
	goldenBlocks    = 16
	goldenBlockSize = 64 * 1024
	goldenMapTime   = 5.0
	goldenHeartbeat = 1.0
)

// decision is one scheduler choice: which task went where, and why.
type decision struct {
	Job, Task, Node int
	Class           string
}

func decisionsOf(events []trace.Event) []decision {
	var out []decision
	for _, e := range trace.FilterType(events, trace.EvTaskScheduled) {
		out = append(out, decision{Job: e.Job, Task: e.Task, Node: e.Node, Class: e.Class})
	}
	return out
}

// goldenSim runs the simulated-cost backend (mapred) over the scenario.
func goldenSim(t *testing.T, kind sched.Kind) []decision {
	t.Helper()
	var mem trace.Memory
	cfg := mapred.Config{
		Nodes:             goldenNodes,
		Racks:             goldenRacks,
		MapSlotsPerNode:   goldenMapSlots,
		N:                 4,
		K:                 2,
		BlockSizeBytes:    goldenBlockSize,
		NumBlocks:         goldenBlocks,
		Policy:            placement.RoundRobin{},
		Scheduler:         kind,
		HeartbeatInterval: goldenHeartbeat,
		FailNodes:         []topology.NodeID{0},
		Seed:              1,
		Trace:             &mem,
	}
	job := mapred.JobSpec{
		Name:    "golden",
		MapTime: mapred.Dist{Mean: goldenMapTime, Std: 0},
	}
	if _, err := mapred.Run(cfg, []mapred.JobSpec{job}); err != nil {
		t.Fatalf("mapred %v: %v", kind, err)
	}
	return decisionsOf(mem.Events())
}

// goldenReal runs the real-bytes backend (minimr) over the same scenario.
func goldenReal(t *testing.T, kind sched.Kind) []decision {
	t.Helper()
	cluster, err := topology.New(topology.Config{
		Nodes:           goldenNodes,
		Racks:           goldenRacks,
		MapSlotsPerNode: goldenMapSlots,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cluster, erasure.MustNew(4, 2), goldenBlockSize,
		placement.RoundRobin{}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input", make([]byte, goldenBlocks*goldenBlockSize)); err != nil {
		t.Fatal(err)
	}
	cluster.FailNode(0)

	var mem trace.Memory
	opts := minimr.Options{
		Scheduler:         kind,
		HeartbeatInterval: goldenHeartbeat,
		Seed:              1,
		Trace:             &mem,
	}
	job := minimr.Job{
		Name:    "golden",
		Input:   "input",
		Map:     func(block []byte, emit func(k, v string)) {},
		MapCost: minimr.Cost{Fixed: goldenMapTime},
	}
	if _, err := minimr.Run(fs, opts, []minimr.Job{job}); err != nil {
		t.Fatalf("minimr %v: %v", kind, err)
	}
	return decisionsOf(mem.Events())
}

// TestGoldenBackendEquivalence is the refactor's keystone: on a shared
// scenario, the simulated-cost and real-bytes backends must produce
// identical scheduler decision sequences through the shared runtime, for
// every scheduling algorithm.
func TestGoldenBackendEquivalence(t *testing.T) {
	for _, kind := range []sched.Kind{sched.KindLF, sched.KindBDF, sched.KindEDF} {
		t.Run(kind.String(), func(t *testing.T) {
			sim := goldenSim(t, kind)
			real := goldenReal(t, kind)
			if len(sim) != goldenBlocks || len(real) != goldenBlocks {
				t.Fatalf("decision counts: sim=%d real=%d, want %d each",
					len(sim), len(real), goldenBlocks)
			}
			var degraded int
			for i := range sim {
				if sim[i] != real[i] {
					t.Errorf("decision %d diverges:\n  sim:  %+v\n  real: %+v", i, sim[i], real[i])
				}
				if sim[i].Class == sched.ClassDegraded.String() {
					degraded++
				}
			}
			// Node 0 holds four native blocks under round-robin (16
			// natives over 8 stripes of (4,2) on 8 nodes); all four must
			// go degraded.
			if degraded != 4 {
				t.Errorf("degraded decisions = %d, want 4", degraded)
			}
		})
	}
}

// TestGoldenSchedulersDiffer guards the guard: if every scheduler made the
// same decisions the equivalence test would be vacuous.
func TestGoldenSchedulersDiffer(t *testing.T) {
	seqs := map[sched.Kind][]decision{}
	for _, kind := range []sched.Kind{sched.KindLF, sched.KindBDF} {
		seqs[kind] = goldenSim(t, kind)
	}
	if fmt.Sprint(seqs[sched.KindLF]) == fmt.Sprint(seqs[sched.KindBDF]) {
		t.Fatal("LF and BDF made identical decision sequences; scenario too weak")
	}
}
