package runtime

import (
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// TaskRecord captures one map task's life cycle.
type TaskRecord struct {
	Job   int
	Task  int
	Class sched.Class
	Node  topology.NodeID
	// LaunchTime is when the task was assigned; FinishTime when its
	// processing completed. Runtime (Finish-Launch) includes transfer
	// time, as in the paper's Table I.
	LaunchTime, FinishTime float64
	// DegradedReadTime is the span from launch until the first k source
	// blocks arrived (degraded tasks only; all sources when hedging is
	// off).
	DegradedReadTime float64
	// FlowLatencies are the observed per-source-flow latencies of the
	// task's degraded fan-in, one per winning flow. Recorded only under
	// an active hedge policy (nil otherwise).
	FlowLatencies []float64
	// WastedBytes is the volume moved by redundant fan-in flows that
	// were cancelled after the first k completed (hedged runs only).
	WastedBytes float64
}

// Runtime returns FinishTime - LaunchTime.
func (r TaskRecord) Runtime() float64 { return r.FinishTime - r.LaunchTime }

// ReduceRecord captures one reduce task's life cycle.
type ReduceRecord struct {
	Job   int
	Index int
	Node  topology.NodeID
	// LaunchTime is when the reduce slot was taken; FinishTime when the
	// reduce processing completed.
	LaunchTime, FinishTime float64
}

// Runtime returns FinishTime - LaunchTime.
func (r ReduceRecord) Runtime() float64 { return r.FinishTime - r.LaunchTime }

// JobResult aggregates one job's outcome.
type JobResult struct {
	Name string
	// Tenant is the submitting tenant ("" for single-tenant runs).
	Tenant     string
	SubmitTime float64
	// QueueDelay is the span from queue entry to the job's first
	// map-slot grant, or -1 when the job never received a grant (or the
	// trace predates the queue-entry/grant event pair).
	QueueDelay float64
	// FirstMapLaunch..FinishTime is the paper's job runtime ("the time
	// interval between the launch of the first map task and the
	// completion of the last reduce task").
	FirstMapLaunch float64
	MapPhaseEnd    float64
	FinishTime     float64

	Tasks   []TaskRecord
	Reduces []ReduceRecord
}

// Runtime returns the paper's job-runtime metric.
func (j *JobResult) Runtime() float64 { return j.FinishTime - j.FirstMapLaunch }

// CountByClass returns how many map tasks ran in each class.
func (j *JobResult) CountByClass() map[sched.Class]int {
	out := make(map[sched.Class]int, 4)
	for _, t := range j.Tasks {
		out[t.Class]++
	}
	return out
}

// RemoteTasks returns the number of remote map tasks (Figure 8a metric).
func (j *JobResult) RemoteTasks() int { return j.CountByClass()[sched.ClassRemote] }

// MeanRuntimeByClass returns the mean task runtime per class (Table I).
// "Normal" map tasks in the paper are local+remote; compute that with
// MeanNormalMapRuntime.
func (j *JobResult) MeanRuntimeByClass() map[sched.Class]float64 {
	sums := make(map[sched.Class]float64, 4)
	counts := make(map[sched.Class]int, 4)
	for _, t := range j.Tasks {
		sums[t.Class] += t.Runtime()
		counts[t.Class]++
	}
	out := make(map[sched.Class]float64, len(sums))
	for c, s := range sums {
		out[c] = s / float64(counts[c])
	}
	return out
}

// MeanNormalMapRuntime returns the mean runtime over local and remote
// (non-degraded) map tasks.
func (j *JobResult) MeanNormalMapRuntime() float64 {
	var sum float64
	n := 0
	for _, t := range j.Tasks {
		if t.Class != sched.ClassDegraded {
			sum += t.Runtime()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanDegradedRuntime returns the mean runtime of degraded map tasks.
func (j *JobResult) MeanDegradedRuntime() float64 {
	var sum float64
	n := 0
	for _, t := range j.Tasks {
		if t.Class == sched.ClassDegraded {
			sum += t.Runtime()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanReduceRuntime returns the mean reduce task runtime.
func (j *JobResult) MeanReduceRuntime() float64 {
	if len(j.Reduces) == 0 {
		return 0
	}
	var sum float64
	for _, r := range j.Reduces {
		sum += r.Runtime()
	}
	return sum / float64(len(j.Reduces))
}

// DegradedReadTimes returns the degraded-read durations of all degraded
// tasks (Figure 8b metric).
func (j *JobResult) DegradedReadTimes() []float64 {
	var out []float64
	for _, t := range j.Tasks {
		if t.Class == sched.ClassDegraded {
			out = append(out, t.DegradedReadTime)
		}
	}
	return out
}

// MeanDegradedReadTime returns the mean degraded-read duration, or 0 when
// there were no degraded tasks.
func (j *JobResult) MeanDegradedReadTime() float64 {
	ts := j.DegradedReadTimes()
	if len(ts) == 0 {
		return 0
	}
	return stats.Mean(ts)
}

// DegradedFlowLatencies returns every recorded per-source-flow latency
// across the job's degraded tasks (hedged runs only; empty otherwise).
func (j *JobResult) DegradedFlowLatencies() []float64 {
	var out []float64
	for _, t := range j.Tasks {
		out = append(out, t.FlowLatencies...)
	}
	return out
}

// DegradedReadQuantiles returns the given quantiles over the job's
// degraded-read durations, or nil when the job had no degraded tasks —
// never NaN or Inf, so the values marshal cleanly to JSON.
func (j *JobResult) DegradedReadQuantiles(qs ...float64) []float64 {
	xs := j.DegradedReadTimes()
	if len(xs) == 0 {
		return nil
	}
	return stats.Quantiles(xs, qs...)
}

// FlowLatencyQuantiles returns the given quantiles over the job's
// per-source-flow degraded-read latencies, or nil when none were
// recorded (hedging off) — never NaN or Inf.
func (j *JobResult) FlowLatencyQuantiles(qs ...float64) []float64 {
	xs := j.DegradedFlowLatencies()
	if len(xs) == 0 {
		return nil
	}
	return stats.Quantiles(xs, qs...)
}

// AtRiskPoint is one step of the stripes-at-risk timeline: at time T the
// healer knew of Lost lost blocks still awaiting repair (over repairable
// and unrepairable stripes alike).
type AtRiskPoint struct {
	T    float64
	Lost int
}

// RepairStats aggregates the background repair subsystem's outcome,
// rebuilt purely from the repair trace events.
type RepairStats struct {
	// StripesQueued counts distinct stripes that entered the repair
	// queue; Unrepairable counts distinct stripes reported past their
	// code's loss tolerance (never launched).
	StripesQueued int
	Unrepairable  int
	// BlocksRepaired counts committed block rebuilds, split into LRC
	// local-group repairs and full (global) reconstructions.
	BlocksRepaired int
	LocalRepairs   int
	GlobalRepairs  int
	// RepairBytes is the network read volume of committed repairs.
	RepairBytes float64
	// FirstRepairAt is the commit time of the first rebuilt block, -1 if
	// none committed. FullRedundancyAt is when the last known-lost block
	// of a repairable stripe healed; -1 while losses remain or any
	// stripe is unrepairable.
	FirstRepairAt    float64
	FullRedundancyAt float64
	// AtRisk is the stripes-at-risk timeline: one point per change of
	// the healer's known lost-block count.
	AtRisk []AtRiskPoint
}

// Result is the outcome of one run.
type Result struct {
	Scheduler string
	// Failed lists the failed nodes (pre-run and mid-run).
	Failed []topology.NodeID
	Jobs   []JobResult
	// Makespan is when the last job finished.
	Makespan float64
	// BytesMoved is the total network volume of completed transfers
	// (repair flows included; RepairBytes isolates the repair share).
	BytesMoved float64
	// WastedBytes is the extra volume moved by redundant degraded-read
	// flows cancelled after the first k completed (hedged runs only).
	// Disjoint from BytesMoved, which counts completed flows.
	WastedBytes float64
	// Repair holds the background healer's metrics; nil when the run
	// emitted no repair events (repair disabled, or no failures).
	Repair *RepairStats
}

// TotalRuntime sums job runtimes (single-job runs: the job runtime).
func (r *Result) TotalRuntime() float64 {
	var sum float64
	for i := range r.Jobs {
		sum += r.Jobs[i].Runtime()
	}
	return sum
}
