package runtime

import (
	"errors"

	"degradedfirst/internal/topology"

	"degradedfirst/internal/trace"
)

// injectFailure fails the given nodes mid-run and applies Hadoop's
// recovery semantics:
//
//  1. pending map tasks whose input block lived on a failed node become
//     degraded tasks;
//  2. running map tasks on a failed node — or reading from one — are
//     cancelled and requeued;
//  3. completed map tasks that ran on a failed node lose their output;
//     they are re-executed if any unfinished reducer still needs it;
//  4. reduce tasks on a failed node restart from scratch on another node
//     and re-fetch every map output.
func (s *state) injectFailure(nodes []topology.NodeID) {
	for _, id := range nodes {
		s.cluster.FailNode(id)
		e := s.ev(trace.EvNodeFail)
		e.Node = int(id)
		s.emit(e)
	}
	dead := func(id topology.NodeID) bool { return !s.cluster.Alive(id) }

	// (1) Reclassify pending tasks of every submitted job.
	for _, js := range s.jobs {
		if js.sj == nil || js.finishedJ {
			continue
		}
		for _, id := range nodes {
			js.sj.MarkHolderLost(id)
		}
	}

	// (2) Cancel and requeue affected running map tasks. Collect first:
	// requeueing mutates s.running.
	var affected []*runningMap
	for _, rm := range s.running {
		if dead(rm.node) {
			affected = append(affected, rm)
			continue
		}
		for _, f := range rm.flows {
			if !f.Finished() && (dead(f.Src) || dead(f.Dst)) {
				affected = append(affected, rm)
				break
			}
		}
	}
	// Deterministic order: by job then task index.
	sortRunning(affected)
	for _, rm := range affected {
		s.requeueRunning(rm)
	}

	// (3) + (4) per job: shuffle flows, lost outputs, dead reducers.
	for _, js := range s.jobs {
		if js.sj == nil || js.finishedJ {
			continue
		}
		s.recoverShuffle(js, dead)
		s.recoverReducers(js, dead)
		s.reexecuteLostOutputs(js, dead)
		s.ensureScheduled(js)
	}

	// (5) The background healer cancels in-flight repairs touching the
	// dead nodes, re-queues their stripes boosted, and arms a rescan.
	if s.repairMgr != nil {
		s.repairMgr.onFailure(nodes)
	}
}

// injectNewlyDead filters ids down to nodes not already failed and
// injects those. Duplicate reports are common in the distributed
// runtime: a worker's death surfaces through heartbeat deadlines, RPC
// timeouts, and dropped connections, in any order.
func (s *state) injectNewlyDead(ids []topology.NodeID) {
	var fresh []topology.NodeID
	for _, id := range ids {
		if s.cluster.Alive(id) {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) > 0 {
		s.injectFailure(fresh)
	}
}

// asyncMapFailure handles an AwaitOutput error at a map task's virtual
// completion instant.
func (s *state) asyncMapFailure(rm *runningMap, err error) {
	var dn *DeadNodeError
	if !errors.As(err, &dn) {
		s.fail(err)
		return
	}
	s.injectNewlyDead(dn.Nodes)
	if s.running[rm.task] == rm {
		// Injection did not requeue this task — only a remote peer died
		// (e.g. a degraded-read source already marked dead) — so abort
		// and requeue it explicitly.
		s.requeueRunning(rm)
		s.ensureScheduled(rm.js)
	}
}

// asyncReduceFailure handles an AwaitReduce error at a reducer's virtual
// completion instant.
func (s *state) asyncReduceFailure(r *reducerState, err error) {
	var dn *DeadNodeError
	if !errors.As(err, &dn) {
		s.fail(err)
		return
	}
	s.injectNewlyDead(dn.Nodes)
	if r.started && !r.done {
		// Injection did not reset this reducer (its node is considered
		// alive): restart it manually so it can relaunch and retry.
		s.resetReducer(r.job, r)
	}
}

// deliverFailure handles a Backend.Deliver error raised inside a network
// completion callback. Failure injection cancels flows, which must not
// happen while the network is mid-callback, so it runs on a zero-delay
// event.
func (s *state) deliverFailure(err error) {
	var dn *DeadNodeError
	if !errors.As(err, &dn) {
		s.fail(err)
		return
	}
	nodes := dn.Nodes
	s.eng.Schedule(0, func() { s.injectNewlyDead(nodes) })
}

func sortRunning(rms []*runningMap) {
	for i := 1; i < len(rms); i++ {
		for j := i; j > 0 && less(rms[j], rms[j-1]); j-- {
			rms[j], rms[j-1] = rms[j-1], rms[j]
		}
	}
}

func less(a, b *runningMap) bool {
	if a.js.idx != b.js.idx {
		return a.js.idx < b.js.idx
	}
	return a.task.Index < b.task.Index
}

// requeueRunning aborts a running map task and returns it to the
// scheduler's pending pool.
func (s *state) requeueRunning(rm *runningMap) {
	for _, f := range rm.flows {
		s.net.Cancel(f)
	}
	// A hedged fan-in also holds pending deadline timers and a standby
	// pool; drop both so a stale timer cannot fire for the aborted
	// attempt (hedgeFire additionally checks s.running). No EvFlowLatency
	// is emitted for the aborted flows: a requeue is a failure artifact,
	// not a latency observation.
	s.cancelHedgeTimers(rm)
	rm.standby = nil
	if rm.procEv != nil {
		s.eng.Cancel(rm.procEv)
		rm.procEv = nil
	}
	delete(s.running, rm.task)
	s.queue.MapReleased(rm.js.idx)
	if s.cluster.Alive(rm.node) {
		s.slaves[rm.node].freeMap++
	}
	// The record is rewritten when the task relaunches.
	e := s.ev(trace.EvTaskRequeue)
	e.Job = rm.js.idx
	e.Task = rm.task.Index
	e.Node = int(rm.node)
	s.emit(e)
	rm.js.mapDone[rm.task.Index] = false
	rm.js.parts[rm.task.Index] = nil
	rm.js.sj.Requeue(rm.task, !s.cluster.Alive(rm.task.Holder))
}

// recoverShuffle cancels in-flight shuffle transfers that touch a failed
// node and prunes finished references.
func (s *state) recoverShuffle(js *jobState, dead func(topology.NodeID) bool) {
	kept := js.shuffleFlows[:0]
	for _, ref := range js.shuffleFlows {
		if ref.flow.Finished() {
			continue // arrived (or cancelled) already
		}
		if dead(ref.src) || (ref.r.launched && dead(ref.r.node)) {
			s.net.Cancel(ref.flow)
			continue
		}
		kept = append(kept, ref)
	}
	js.shuffleFlows = kept
}

// recoverReducers restarts reduce tasks that were running on failed nodes.
func (s *state) recoverReducers(js *jobState, dead func(topology.NodeID) bool) {
	for _, r := range js.reducers {
		if !r.launched || r.done || !dead(r.node) {
			continue
		}
		s.resetReducer(js, r)
	}
}

// resetReducer returns a launched reducer to the unassigned pool: its
// received state is dropped and every still-available map output is
// queued for re-fetch. Lost outputs are handled by reexecuteLostOutputs.
func (s *state) resetReducer(js *jobState, r *reducerState) {
	if r.procEv != nil {
		s.eng.Cancel(r.procEv)
		r.procEv = nil
	}
	e := s.ev(trace.EvReduceReset)
	e.Job = js.idx
	e.Task = r.idx
	e.Node = int(r.node)
	s.emit(e)
	r.launched = false
	r.started = false
	r.received = 0
	r.receivedBytes = 0
	for i := range r.got {
		r.got[i] = false
	}
	s.backend.ReduceReset(js.idx, r.idx)
	s.queue.ReduceReset(js.idx)
	if s.cluster.Alive(r.node) {
		// Reset on a live node (async backend retry): free its slot. A
		// dead node's slots are gone with it.
		s.slaves[r.node].freeReduce++
	}
	js.pendingShuffle[r.idx] = nil
	for mapIdx := range js.mapDone {
		if s.mapOutputAvailable(js, mapIdx) {
			js.pendingShuffle[r.idx] = append(js.pendingShuffle[r.idx],
				pendingChunk{src: js.mapNode[mapIdx], mapIdx: mapIdx, chunk: js.parts[mapIdx][r.idx]})
		}
	}
}

// reexecuteLostOutputs requeues completed map tasks whose outputs died
// with their node, when some unfinished reducer still needs them.
func (s *state) reexecuteLostOutputs(js *jobState, dead func(topology.NodeID) bool) {
	if len(js.reducers) == 0 {
		return // map-only jobs write straight to the DFS; output survives
	}
	for mapIdx := range js.mapDone {
		if !js.mapDone[mapIdx] || !dead(js.mapNode[mapIdx]) {
			continue
		}
		needed := false
		for _, r := range js.reducers {
			if !r.done && !r.got[mapIdx] {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		// Remove any queued chunks from the dead node for this map.
		for rIdx := range js.pendingShuffle {
			kept := js.pendingShuffle[rIdx][:0]
			for _, pc := range js.pendingShuffle[rIdx] {
				if pc.mapIdx != mapIdx || !dead(pc.src) {
					kept = append(kept, pc)
				}
			}
			js.pendingShuffle[rIdx] = kept
		}
		task := js.sj.Tasks()[mapIdx]
		js.mapsCompleted--
		e := s.ev(trace.EvTaskRequeue)
		e.Job = js.idx
		e.Task = mapIdx
		e.Node = int(js.mapNode[mapIdx])
		s.emit(e)
		js.mapDone[mapIdx] = false
		js.parts[mapIdx] = nil
		js.sj.Requeue(task, !s.cluster.Alive(task.Holder))
	}
}
