// Package runtime is the shared cluster runtime behind both MapReduce
// engines: it owns the master loop — heartbeat scheduling, slot
// accounting, the FIFO job queue, map/reduce task lifecycle, shuffle
// dispatch, and failure/re-execution handling — while a small Backend
// supplies what differs between the discrete-event simulator
// (internal/mapred: simulated costs, no data) and the real-execution
// engine (internal/minimr: real bytes, real map/reduce functions).
//
// Every lifecycle transition is emitted as a trace.Event; the per-task
// metrics (Result) are built by a Builder consuming that stream, so a
// recorded trace reconstructs the run's results exactly.
package runtime

import (
	"fmt"

	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

// Transfer is one network read a map task needs before processing: Bytes
// from Src to the task's execution node.
type Transfer struct {
	Src   topology.NodeID
	Bytes float64
}

// Chunk is one map-output partition bound for one reducer. Data carries
// backend payload (real intermediate records for minimr, nil for the
// simulator); the runtime only moves Bytes through the network model and
// hands Data back via Backend.Deliver.
type Chunk struct {
	Bytes float64
	Data  any
}

// JobSpec describes one job to the runtime: its map tasks (one per input
// block, with the block's holder; Lost is recomputed at submission time
// from the cluster's failure state) and its reducer count.
type JobSpec struct {
	Name        string
	SubmitAt    float64
	Tasks       []sched.TaskSpec
	NumReducers int

	// Tenant, Weight and Deadline feed the job-level scheduling
	// policies (Params.JobSched): fair-share weighting, per-tenant
	// quotas, and EDF deadlines. All optional; the zero values mean an
	// anonymous tenant, weight 1, and no deadline.
	Tenant   string
	Weight   float64
	Deadline float64
}

// Backend supplies the engine-specific halves of the task lifecycle: task
// input access and cost. Methods are keyed by (job, task/reducer) indices
// matching the JobSpec slice passed to Run. All methods are called from
// the simulation goroutine.
type Backend interface {
	// PlanInput prepares task `task` of job `job` to run on `node` with
	// the given scheduling class: it returns the network transfers the
	// input requires (empty for node-local inputs) and an opaque input
	// payload handed back to Execute. For degraded tasks this plans the
	// degraded read (k source blocks). Errors abort the run verbatim, so
	// backends return them pre-wrapped with their engine prefix.
	PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]Transfer, any, error)
	// Execute runs the map task once its input is available, returning
	// the processing duration (seconds, already scaled by the node's
	// speed factor) and an opaque output payload for Partitions.
	Execute(job, task int, node topology.NodeID, input any) (dur float64, output any)
	// Partitions splits a completed map task's output into one Chunk per
	// reducer (len == NumReducers). Called only for jobs with reducers.
	Partitions(job, task int, output any) []Chunk
	// Deliver hands one received shuffle chunk to reducer `reducer`
	// running on `node`. A *DeadNodeError marks the chunk undelivered and
	// feeds the named nodes into failure recovery (the distributed backend
	// returns it when the real transfer fails); any other error aborts the
	// run.
	Deliver(job, reducer int, node topology.NodeID, c Chunk) error
	// ReduceDuration returns the reduce processing time on `node` given
	// the shuffle volume received.
	ReduceDuration(job, reducer int, node topology.NodeID, receivedBytes float64) float64
	// ReduceReset discards a reducer's received state when its node fails
	// and the reducer restarts elsewhere.
	ReduceReset(job, reducer int)
	// ReduceFinish finalizes a reducer (minimr runs the real reduce
	// function here).
	ReduceFinish(job, reducer int)
}

// AsyncBackend is an optional Backend extension for engines whose task
// work runs outside the simulation goroutine (the distributed runtime
// dispatches it to worker processes). The runtime calls these blocking
// hooks at the task's virtual completion instant, so real wall-clock
// time passes only inside them while the virtual schedule stays put.
type AsyncBackend interface {
	// AwaitOutput blocks until the real map work behind Execute's output
	// payload has finished and returns the resolved output (handed to
	// Partitions in place of the original). A *DeadNodeError requeues the
	// task via failure recovery; any other error aborts the run.
	AwaitOutput(job, task int, node topology.NodeID, output any) (any, error)
	// AwaitReduce blocks until the real reduce work for the reducer on
	// `node` has finished, immediately before ReduceFinish. Errors follow
	// the AwaitOutput contract (DeadNodeError restarts the reducer).
	AwaitReduce(job, reducer int, node topology.NodeID) error
}

// DeadNodeError reports nodes discovered dead during a backend
// operation: an RPC to them timed out, their connection dropped, or a
// peer transfer from them failed. The runtime feeds the nodes into the
// same injectFailure path as heartbeat-detected deaths.
type DeadNodeError struct {
	Nodes []topology.NodeID
}

func (e *DeadNodeError) Error() string {
	return fmt.Sprintf("runtime: nodes %v found dead during backend operation", e.Nodes)
}
