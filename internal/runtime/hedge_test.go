package runtime_test

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// The hedge scenario drives runtime.Run directly with a synthetic
// backend: node 0 holds every block and is failed before the run, so all
// tasks are degraded fan-ins of k source flows. Finite per-node
// bandwidth stretches the fan-ins over several virtual seconds, leaving
// room to inject a second failure mid-fan-in through PollFailures —
// something the mapred/minimr frontends cannot express.
const (
	hedgeNodes      = 6
	hedgeRacks      = 2
	hedgeK          = 2
	hedgeTasks      = 3
	hedgeBlockBytes = 1e6
	hedgeNodeBps    = 1e6
	hedgeMapTime    = 5.0
	hedgeHeartbeat  = 1.0
)

// hedgeBackend picks the k lowest-ID alive nodes (excluding the reader)
// as primaries and the following ones as spares — deterministic, no RNG.
type hedgeBackend struct {
	cluster *topology.Cluster
	picked  map[[2]int][]topology.NodeID
}

func (b *hedgeBackend) alive(exclude map[topology.NodeID]bool) []topology.NodeID {
	var out []topology.NodeID
	for i := 0; i < b.cluster.NumNodes(); i++ {
		id := topology.NodeID(i)
		if b.cluster.Alive(id) && !exclude[id] {
			out = append(out, id)
		}
	}
	return out
}

func (b *hedgeBackend) PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]runtime.Transfer, any, error) {
	switch class {
	case sched.ClassNodeLocal:
		return nil, nil, nil
	case sched.ClassRackLocal, sched.ClassRemote:
		return []runtime.Transfer{{Src: 0, Bytes: hedgeBlockBytes}}, nil, nil
	default: // degraded
		srcs := b.alive(map[topology.NodeID]bool{node: true})
		if len(srcs) > hedgeK {
			srcs = srcs[:hedgeK]
		}
		if b.picked == nil {
			b.picked = make(map[[2]int][]topology.NodeID)
		}
		b.picked[[2]int{job, task}] = srcs
		transfers := make([]runtime.Transfer, len(srcs))
		for i, s := range srcs {
			transfers[i] = runtime.Transfer{Src: s, Bytes: hedgeBlockBytes}
		}
		return transfers, nil, nil
	}
}

func (b *hedgeBackend) SpareSources(job, task int, node topology.NodeID, max int) ([]runtime.Transfer, error) {
	exclude := map[topology.NodeID]bool{node: true}
	for _, s := range b.picked[[2]int{job, task}] {
		exclude[s] = true
	}
	spares := b.alive(exclude)
	if len(spares) > max {
		spares = spares[:max]
	}
	transfers := make([]runtime.Transfer, len(spares))
	for i, s := range spares {
		transfers[i] = runtime.Transfer{Src: s, Bytes: hedgeBlockBytes}
	}
	return transfers, nil
}

func (b *hedgeBackend) Execute(job, task int, node topology.NodeID, input any) (float64, any) {
	return hedgeMapTime, nil
}
func (b *hedgeBackend) Partitions(job, task int, output any) []runtime.Chunk { return nil }
func (b *hedgeBackend) Deliver(job, reducer int, node topology.NodeID, c runtime.Chunk) error {
	return nil
}
func (b *hedgeBackend) ReduceDuration(job, reducer int, node topology.NodeID, bytes float64) float64 {
	return 1
}
func (b *hedgeBackend) ReduceReset(job, reducer int)  {}
func (b *hedgeBackend) ReduceFinish(job, reducer int) {}

// runHedgeScenario runs the scenario once. poll, when non-nil, receives
// the engine and returns the PollFailures hook (for mid-run kills).
func runHedgeScenario(t *testing.T, hedge runtime.HedgePolicy,
	poll func(*sim.Engine) func() []topology.NodeID) (*runtime.Result, []trace.Event) {
	t.Helper()
	cluster, err := topology.New(topology.Config{
		Nodes:           hedgeNodes,
		Racks:           hedgeRacks,
		MapSlotsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    netsim.FluidFairSharing,
		NodeBps: hedgeNodeBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := sched.KindLF.New(cluster.NumRacks())
	if err != nil {
		t.Fatal(err)
	}
	env := &sched.Env{
		Cluster:          cluster,
		PerTaskTime:      func(topology.NodeID) float64 { return hedgeMapTime },
		DegradedReadTime: 2,
	}
	tasks := make([]sched.TaskSpec, hedgeTasks)
	for i := range tasks {
		tasks[i] = sched.TaskSpec{
			Block:  erasure.BlockID{Stripe: i, Index: 0},
			Holder: 0,
		}
	}
	var mem trace.Memory
	p := runtime.Params{
		Name:              "hedge-test",
		Engine:            eng,
		Cluster:           cluster,
		Net:               net,
		Scheduler:         scheduler,
		Env:               env,
		HeartbeatInterval: hedgeHeartbeat,
		MaxSimTime:        1e5,
		Hedge:             hedge,
		ToFail:            []topology.NodeID{0},
		Sink:              &mem,
	}
	if poll != nil {
		p.PollFailures = poll(eng)
	}
	res, err := runtime.Run(p, &hedgeBackend{cluster: cluster},
		[]runtime.JobSpec{{Name: "j", Tasks: tasks}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, mem.Events()
}

// killAfter fails id at the first heartbeat at or after t.
func killAfter(t float64, id topology.NodeID) func(*sim.Engine) func() []topology.NodeID {
	return func(eng *sim.Engine) func() []topology.NodeID {
		return func() []topology.NodeID {
			if float64(eng.Now()) >= t {
				return []topology.NodeID{id}
			}
			return nil
		}
	}
}

// fanInWindow returns task 0's degraded-plan time, degraded-done time,
// its node, and its first planned source, from a discovery run's trace.
func fanInWindow(t *testing.T, events []trace.Event) (plan, done float64, node, src int) {
	t.Helper()
	plan, done = -1, -1
	node, src = -1, -1
	for _, e := range events {
		switch e.Type {
		case trace.EvDegradedPlan:
			if plan < 0 && e.Job == 0 && e.Task == 0 {
				plan, node = e.T, e.Node
			}
		case trace.EvTransferStart:
			// Transfer events carry no job/task; the fan-in's flows are
			// the ones arriving at the task's node.
			if plan >= 0 && src < 0 && e.Dst == node {
				src = e.Src
			}
		case trace.EvDegradedDone:
			if done < 0 && e.Job == 0 && e.Task == 0 {
				done = e.T
			}
		}
	}
	if plan < 0 || done <= plan || node < 0 || src < 0 {
		t.Fatalf("no usable fan-in window: plan=%v done=%v node=%d src=%d", plan, done, node, src)
	}
	return plan, done, node, src
}

func countEvents(events []trace.Event, typ trace.Type, job, task int) int {
	n := 0
	for _, e := range events {
		if e.Type == typ && e.Job == job && e.Task == task {
			n++
		}
	}
	return n
}

func TestHedgedFanInRacesAndCancelsLosers(t *testing.T) {
	res, events := runHedgeScenario(t, runtime.HedgePolicy{Extra: 1}, nil)
	jr := res.Jobs[0]
	if got := jr.CountByClass()[sched.ClassDegraded]; got != hedgeTasks {
		t.Fatalf("degraded tasks = %d, want %d", got, hedgeTasks)
	}
	for _, rec := range jr.Tasks {
		if rec.FinishTime == 0 {
			t.Fatalf("task %d never finished", rec.Task)
		}
		if len(rec.FlowLatencies) != hedgeK {
			t.Fatalf("task %d recorded %d flow latencies, want %d (the k winners)",
				rec.Task, len(rec.FlowLatencies), hedgeK)
		}
		if rec.DegradedReadTime <= 0 {
			t.Fatalf("task %d degraded read time = %v", rec.Task, rec.DegradedReadTime)
		}
	}
	// k+Δ flows raced; the loser's partial progress is waste, disjoint
	// from BytesMoved.
	if res.WastedBytes <= 0 {
		t.Fatalf("wasted bytes = %v, want > 0", res.WastedBytes)
	}
	won := len(trace.FilterType(events, trace.EvFlowLatency))
	if won != hedgeTasks*(hedgeK+1) {
		t.Fatalf("flow-latency events = %d, want %d (k winners + 1 loser per task)",
			won, hedgeTasks*(hedgeK+1))
	}
	// Quantile accessors are finite and JSON-safe.
	for _, q := range jr.FlowLatencyQuantiles(0, 0.5, 0.99, 1) {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("non-finite flow latency quantile %v", q)
		}
	}
}

func TestHedgedRunDeterministic(t *testing.T) {
	h := runtime.HedgePolicy{Extra: 1, HedgeQuantile: 0.9, HedgeMinSamples: 2}
	resA, evA := runHedgeScenario(t, h, nil)
	resB, evB := runHedgeScenario(t, h, nil)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("hedged results diverge across identical runs")
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Fatal("hedged traces diverge across identical runs")
	}
}

// TestSourceDeathMidFanInRequeues pins the failure-recovery contract for
// a degraded fan-in losing a source node mid-flight: the task is
// requeued (not hung, not double-started), relaunches, and finishes
// exactly once — with and without hedging.
func TestSourceDeathMidFanInRequeues(t *testing.T) {
	for _, tc := range []struct {
		name  string
		hedge runtime.HedgePolicy
	}{
		{name: "unhedged"},
		{name: "hedged", hedge: runtime.HedgePolicy{Extra: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, probe := runHedgeScenario(t, tc.hedge, nil)
			plan, done, _, src := fanInWindow(t, probe)
			mid := (plan + done) / 2

			res, events := runHedgeScenario(t, tc.hedge, killAfter(mid, topology.NodeID(src)))
			if n := countEvents(events, trace.EvTaskRequeue, 0, 0); n < 1 {
				t.Fatalf("no requeue after source node %d died mid-fan-in", src)
			}
			if n := countEvents(events, trace.EvTaskFinish, 0, 0); n != 1 {
				t.Fatalf("task finished %d times, want exactly 1", n)
			}
			for _, rec := range res.Jobs[0].Tasks {
				if rec.FinishTime == 0 {
					t.Fatalf("task %d never finished after source death", rec.Task)
				}
				if rec.Node == topology.NodeID(src) {
					t.Fatalf("task %d finished on the dead source node", rec.Task)
				}
			}
		})
	}
}

// TestTaskNodeDeathMidFanIn kills the degraded task's own node while its
// hedged fan-in is in flight: the attempt is abandoned, the relaunch
// completes, and the rebuilt degraded-read time pairs with the latest
// launch — never the stale pre-requeue one.
func TestTaskNodeDeathMidFanIn(t *testing.T) {
	hedge := runtime.HedgePolicy{Extra: 1}
	_, probe := runHedgeScenario(t, hedge, nil)
	plan, done, node, _ := fanInWindow(t, probe)
	mid := (plan + done) / 2

	res, events := runHedgeScenario(t, hedge, killAfter(mid, topology.NodeID(node)))
	if n := countEvents(events, trace.EvTaskRequeue, 0, 0); n < 1 {
		t.Fatalf("no requeue after task node %d died mid-fan-in", node)
	}
	rec := res.Jobs[0].Tasks[0]
	if rec.FinishTime == 0 {
		t.Fatal("task never finished after its node died")
	}
	if rec.Node == topology.NodeID(node) {
		t.Fatal("task record still on the dead node")
	}
	// The degraded-read time must match latest-launch → degraded-done in
	// the trace, and replaying the trace must reproduce the live Result.
	var lastLaunch, lastDone float64
	for _, e := range events {
		if e.Job != 0 || e.Task != 0 {
			continue
		}
		switch e.Type {
		case trace.EvTaskLaunch:
			lastLaunch = e.T
		case trace.EvDegradedDone:
			lastDone = e.T
		}
	}
	if want := lastDone - lastLaunch; rec.DegradedReadTime != want {
		t.Fatalf("degraded read time %v paired with a stale launch (want %v)",
			rec.DegradedReadTime, want)
	}
	if rebuilt := runtime.BuildResult(events); !reflect.DeepEqual(rebuilt, res) {
		t.Fatal("trace replay diverges from the live result")
	}
}

// TestRebuildIgnoresStaleDegradedEvents is the rebuild regression test:
// degraded-done and flow-latency events straggling after a requeue (the
// attempt they belong to was abandoned) must not pair with the zeroed
// record or a later relaunch's times.
func TestRebuildIgnoresStaleDegradedEvents(t *testing.T) {
	mk := func(typ trace.Type, at float64) trace.Event {
		e := trace.New(at, typ)
		e.Job, e.Task = 0, 0
		return e
	}
	submit := mk(trace.EvJobSubmit, 0)
	submit.N = 1

	launch1 := mk(trace.EvTaskLaunch, 2)
	launch1.Node = 3
	launch1.Class = sched.ClassDegraded.String()

	requeue := mk(trace.EvTaskRequeue, 5)

	staleDone := mk(trace.EvDegradedDone, 6)
	staleWon := mk(trace.EvFlowLatency, 6)
	staleWon.Class = "won"
	staleWon.Dur = 4
	staleLost := mk(trace.EvFlowLatency, 6)
	staleLost.Class = "lost"
	staleLost.Bytes = 1e5

	launch2 := mk(trace.EvTaskLaunch, 10)
	launch2.Node = 2
	launch2.Class = sched.ClassDegraded.String()

	won := mk(trace.EvFlowLatency, 11.5)
	won.Class = "won"
	won.Dur = 1.5
	lost := mk(trace.EvFlowLatency, 12)
	lost.Class = "lost"
	lost.Bytes = 100

	done2 := mk(trace.EvDegradedDone, 12)
	finish := mk(trace.EvTaskFinish, 15)

	res := runtime.BuildResult([]trace.Event{
		submit, launch1, requeue, staleDone, staleWon, staleLost,
		launch2, won, lost, done2, finish,
	})
	rec := res.Jobs[0].Tasks[0]
	if rec.DegradedReadTime != 2 {
		t.Fatalf("degraded read time = %v, want 2 (12 - relaunch at 10); stale pairing?",
			rec.DegradedReadTime)
	}
	if !reflect.DeepEqual(rec.FlowLatencies, []float64{1.5}) {
		t.Fatalf("flow latencies = %v, want [1.5] (stale sample must be dropped)", rec.FlowLatencies)
	}
	if rec.WastedBytes != 100 || res.WastedBytes != 100 {
		t.Fatalf("wasted bytes = %v/%v, want 100/100 (stale waste must be dropped)",
			rec.WastedBytes, res.WastedBytes)
	}
	if rec.FinishTime != 15 || rec.LaunchTime != 10 {
		t.Fatalf("record times launch=%v finish=%v", rec.LaunchTime, rec.FinishTime)
	}
}

// TestRebuildStragglerWithoutRelaunch: a degraded-done with no live
// launch at all (requeue, then nothing) must leave the record untouched.
func TestRebuildStragglerWithoutRelaunch(t *testing.T) {
	mk := func(typ trace.Type, at float64) trace.Event {
		e := trace.New(at, typ)
		e.Job, e.Task = 0, 0
		return e
	}
	submit := mk(trace.EvJobSubmit, 0)
	submit.N = 1
	launch := mk(trace.EvTaskLaunch, 2)
	launch.Class = sched.ClassDegraded.String()
	requeue := mk(trace.EvTaskRequeue, 5)
	stale := mk(trace.EvDegradedDone, 7)

	res := runtime.BuildResult([]trace.Event{submit, launch, requeue, stale})
	if got := res.Jobs[0].Tasks[0].DegradedReadTime; got != 0 {
		t.Fatalf("degraded read time = %v, want 0: straggler paired with zeroed record", got)
	}
}

// TestLatencyQuantileEdgeCases: empty, single-sample and all-equal
// latency sets must produce nil or constant quantiles — never NaN or
// Inf — and marshal cleanly to JSON.
func TestLatencyQuantileEdgeCases(t *testing.T) {
	qs := []float64{0, 0.5, 0.9, 0.99, 1}

	empty := &runtime.JobResult{Tasks: []runtime.TaskRecord{{}}}
	if got := empty.FlowLatencyQuantiles(qs...); got != nil {
		t.Fatalf("empty samples: quantiles = %v, want nil", got)
	}
	if got := empty.DegradedReadQuantiles(qs...); got != nil {
		t.Fatalf("no degraded tasks: quantiles = %v, want nil", got)
	}

	single := &runtime.JobResult{Tasks: []runtime.TaskRecord{{FlowLatencies: []float64{7}}}}
	for _, q := range single.FlowLatencyQuantiles(qs...) {
		if q != 7 {
			t.Fatalf("single sample: quantile = %v, want 7", q)
		}
	}

	equal := &runtime.JobResult{Tasks: []runtime.TaskRecord{
		{FlowLatencies: []float64{3, 3}}, {FlowLatencies: []float64{3}},
	}}
	for _, q := range equal.FlowLatencyQuantiles(qs...) {
		if q != 3 {
			t.Fatalf("all-equal samples: quantile = %v, want 3", q)
		}
	}

	for _, xs := range [][]float64{
		nil,
		single.FlowLatencyQuantiles(qs...),
		equal.FlowLatencyQuantiles(qs...),
	} {
		if _, err := json.Marshal(xs); err != nil {
			t.Fatalf("quantiles %v not JSON-marshalable: %v", xs, err)
		}
	}
}

func TestHedgePolicyValidate(t *testing.T) {
	bad := []runtime.HedgePolicy{
		{Extra: -1},
		{HedgeQuantile: 1},
		{HedgeQuantile: -0.1},
		{HedgeQuantile: math.NaN()},
		{HedgeQuantile: 0.9, HedgeMinSamples: -1},
		{HedgeQuantile: 0.9, HedgeMultiplier: math.NaN()},
		{Extra: 1, HedgeMultiplier: -2},
	}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Fatalf("policy %+v validated", h)
		}
	}
	good := []runtime.HedgePolicy{
		{},
		{Extra: 2},
		{HedgeQuantile: 0.95, HedgeMinSamples: 4, HedgeMultiplier: 1.5},
	}
	for _, h := range good {
		if err := h.Validate(); err != nil {
			t.Fatalf("policy %+v rejected: %v", h, err)
		}
	}
}
