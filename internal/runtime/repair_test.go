package runtime_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// The repair scenario drives runtime.Run with a synthetic store backend:
// a hand-written stripe map, deterministic planning (k lowest-index
// survivors, lowest-ID free destination), and a commit log that records
// every block write — the probe for the no-double-write guarantee.
const (
	repNodes      = 8
	repRacks      = 2
	repN          = 4
	repK          = 2
	repBlockBytes = 1e6
	repNodeBps    = 1e6
)

// repairStore is the fake RepairBackend plus a minimal foreground
// Backend (every job input is a single holder read, as in hedge tests).
type repairStore struct {
	cluster *topology.Cluster
	// holders[s] are stripe s's current block holders, index order.
	holders [][]topology.NodeID
	// taskOf maps (stripe, block index) to the foreground task reading it.
	taskOf map[[2]int]runtime.RepairedTask
	// commits counts CommitRepair calls per "stripe/index".
	commits map[string]int
	// commitOrder records commit identities in commit order.
	commitOrder []string
}

func newRepairStore(c *topology.Cluster, holders [][]topology.NodeID) *repairStore {
	return &repairStore{
		cluster: c,
		holders: holders,
		taskOf:  make(map[[2]int]runtime.RepairedTask),
		commits: make(map[string]int),
	}
}

func (b *repairStore) planStripe(s int) (repair.StripePlan, error) {
	plan := repair.StripePlan{
		Key: repair.Key{File: "f", Stripe: s},
		N:   repN,
		K:   repK,
	}
	var lost []int
	var survivors []repair.Source
	for i, h := range b.holders[s] {
		if b.cluster.Alive(h) {
			survivors = append(survivors, repair.Source{Node: h, Index: i})
		} else {
			lost = append(lost, i)
		}
	}
	plan.Lost = len(lost)
	if len(lost) == 0 {
		return plan, nil
	}
	if len(lost) > repN-repK {
		plan.Unrepairable = true
		return plan, nil
	}
	taken := make(map[topology.NodeID]bool)
	for _, idx := range lost {
		dest := topology.NodeID(-1)
		for i := 0; i < b.cluster.NumNodes(); i++ {
			id := topology.NodeID(i)
			if !b.cluster.Alive(id) || taken[id] {
				continue
			}
			holds := false
			for _, h := range b.holders[s] {
				if h == id {
					holds = true
					break
				}
			}
			if !holds {
				dest = id
				break
			}
		}
		if dest < 0 {
			return plan, fmt.Errorf("no destination for stripe %d", s)
		}
		taken[dest] = true
		plan.Blocks = append(plan.Blocks, repair.BlockPlan{
			Index:   idx,
			Dest:    dest,
			Sources: append([]repair.Source(nil), survivors[:repK]...),
		})
	}
	return plan, nil
}

func (b *repairStore) ScanLostBlocks(failed []topology.NodeID) ([]repair.StripePlan, error) {
	var plans []repair.StripePlan
	for s := range b.holders {
		plan, err := b.planStripe(s)
		if err != nil {
			return nil, err
		}
		if plan.Lost > 0 {
			plans = append(plans, plan)
		}
	}
	return plans, nil
}

func (b *repairStore) PlanStripeRepair(key repair.Key) (repair.StripePlan, error) {
	return b.planStripe(key.Stripe)
}

func (b *repairStore) CommitRepair(key repair.Key, bp repair.BlockPlan) ([]runtime.RepairedTask, error) {
	id := fmt.Sprintf("s%d/b%d", key.Stripe, bp.Index)
	b.commits[id]++
	b.commitOrder = append(b.commitOrder, id)
	if b.cluster.Alive(b.holders[key.Stripe][bp.Index]) {
		return nil, fmt.Errorf("store: block %s is not lost", id)
	}
	if !b.cluster.Alive(bp.Dest) {
		return nil, &runtime.DeadNodeError{Nodes: []topology.NodeID{bp.Dest}}
	}
	b.holders[key.Stripe][bp.Index] = bp.Dest
	if ref, ok := b.taskOf[[2]int{key.Stripe, bp.Index}]; ok {
		return []runtime.RepairedTask{ref}, nil
	}
	return nil, nil
}

func (b *repairStore) RepairBlockBytes() float64 { return repBlockBytes }

func (b *repairStore) PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]runtime.Transfer, any, error) {
	switch class {
	case sched.ClassNodeLocal:
		return nil, nil, nil
	case sched.ClassRackLocal, sched.ClassRemote:
		return nil, nil, nil // keep foreground reads free of network noise
	default: // degraded: read from the k lowest alive nodes
		var transfers []runtime.Transfer
		for i := 0; i < b.cluster.NumNodes() && len(transfers) < repK; i++ {
			id := topology.NodeID(i)
			if b.cluster.Alive(id) && id != node {
				transfers = append(transfers, runtime.Transfer{Src: id, Bytes: repBlockBytes})
			}
		}
		return transfers, nil, nil
	}
}

func (b *repairStore) Execute(job, task int, node topology.NodeID, input any) (float64, any) {
	return 1, nil
}
func (b *repairStore) Partitions(job, task int, output any) []runtime.Chunk { return nil }
func (b *repairStore) Deliver(job, reducer int, node topology.NodeID, c runtime.Chunk) error {
	return nil
}
func (b *repairStore) ReduceDuration(job, reducer int, node topology.NodeID, bytes float64) float64 {
	return 1
}
func (b *repairStore) ReduceReset(job, reducer int)  {}
func (b *repairStore) ReduceFinish(job, reducer int) {}

// runRepairScenario runs one job (a single task on alive node 7's data)
// against the given store with repair configured.
func runRepairScenario(t *testing.T, store *repairStore, cfg repair.Config,
	toFail []topology.NodeID, poll func(*sim.Engine) func() []topology.NodeID,
	extraJobs ...runtime.JobSpec) (*runtime.Result, []trace.Event, error) {
	t.Helper()
	eng := sim.New()
	net, err := netsim.New(eng, store.cluster, netsim.Config{
		Mode:    netsim.FluidFairSharing,
		NodeBps: repNodeBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := sched.KindLF.New(store.cluster.NumRacks())
	if err != nil {
		t.Fatal(err)
	}
	env := &sched.Env{
		Cluster:          store.cluster,
		PerTaskTime:      func(topology.NodeID) float64 { return 1 },
		DegradedReadTime: 2,
	}
	jobs := append([]runtime.JobSpec{{
		Name:  "fg",
		Tasks: []sched.TaskSpec{{Block: erasure.BlockID{Stripe: 99, Index: 0}, Holder: 7}},
	}}, extraJobs...)
	var mem trace.Memory
	p := runtime.Params{
		Name:              "repair-test",
		Engine:            eng,
		Cluster:           store.cluster,
		Net:               net,
		Scheduler:         scheduler,
		Env:               env,
		HeartbeatInterval: 1,
		MaxSimTime:        1e5,
		Repair:            cfg,
		ToFail:            toFail,
		Sink:              &mem,
	}
	if poll != nil {
		p.PollFailures = poll(eng)
	}
	res, err := runtime.Run(p, store, jobs)
	return res, mem.Events(), err
}

func repairCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	c, err := topology.New(topology.Config{
		Nodes:           repNodes,
		Racks:           repRacks,
		MapSlotsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func repairEvents(events []trace.Event, typ trace.Type) []trace.Event {
	var out []trace.Event
	for _, e := range events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestSecondFailureMidRepair is the white-box recovery scenario: node 0
// dies at t=0 and, while stripe 0's repair flows are in flight, node 1
// (a repair source) dies too. The in-flight repair must be cancelled,
// its stripe re-queued boosted, and no block ever committed twice.
func TestSecondFailureMidRepair(t *testing.T) {
	c := repairCluster(t)
	store := newRepairStore(c, [][]topology.NodeID{
		{0, 1, 2, 3},
		{0, 1, 2, 5},
	})
	res, events, err := runRepairScenario(t, store,
		repair.Config{Enabled: true}, // unthrottled
		[]topology.NodeID{0},
		killAfter(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Repair
	if st == nil {
		t.Fatal("no repair stats")
	}
	// Both stripes lost blocks 0 and 1 (nodes 0 and 1): four rebuilds.
	if st.BlocksRepaired != 4 {
		t.Fatalf("BlocksRepaired = %d, want 4", st.BlocksRepaired)
	}
	if st.FullRedundancyAt < 0 {
		t.Fatalf("never reached full redundancy: %+v", st)
	}
	// The second failure must have interrupted an in-flight repair.
	requeued := 0
	for _, e := range repairEvents(events, trace.EvRepairQueued) {
		if e.Class == "requeue" {
			requeued++
		}
	}
	if requeued == 0 {
		t.Fatal("second failure cancelled no in-flight repair (no requeue event)")
	}
	// No block is written twice: every commit identity is unique.
	for id, n := range store.commits {
		if n != 1 {
			t.Fatalf("block %s committed %d times: order %v", id, n, store.commitOrder)
		}
	}
	// Final placements are all alive.
	for s, hs := range store.holders {
		for i, h := range hs {
			if !c.Alive(h) {
				t.Fatalf("stripe %d block %d still on dead node %d", s, i, h)
			}
		}
	}
	// The cancelled flows' bytes never completed, so they are not part of
	// RepairBytes (which counts committed repairs only).
	if want := 4 * repK * repBlockBytes; st.RepairBytes != float64(want) {
		t.Fatalf("RepairBytes = %v, want %v", st.RepairBytes, want)
	}
}

// TestRepairRequeueBoostWins: after the second failure, the re-queued
// stripe must launch before queued-but-never-launched work.
func TestRepairRequeueBoostRelaunchesFirst(t *testing.T) {
	c := repairCluster(t)
	store := newRepairStore(c, [][]topology.NodeID{
		{0, 1, 2, 3},
		{0, 1, 2, 5},
	})
	_, events, err := runRepairScenario(t, store,
		repair.Config{Enabled: true},
		[]topology.NodeID{0},
		killAfter(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Find the requeue, then the next launch: it must be the same stripe.
	launches := repairEvents(events, trace.EvRepairQueued)
	var requeuedStripe = -1
	var requeueAt float64
	for _, e := range launches {
		if e.Class == "requeue" {
			requeuedStripe, requeueAt = e.Task, e.T
			break
		}
	}
	if requeuedStripe < 0 {
		t.Fatal("no requeue event")
	}
	for _, e := range repairEvents(events, trace.EvRepairLaunch) {
		if e.T < requeueAt {
			continue
		}
		if e.Task != requeuedStripe {
			t.Fatalf("first launch after requeue is stripe %d, want boosted stripe %d", e.Task, requeuedStripe)
		}
		break
	}
}

func TestUnrepairableReportedOnceNeverLaunched(t *testing.T) {
	c := repairCluster(t)
	store := newRepairStore(c, [][]topology.NodeID{
		{0, 1, 2, 3}, // loses 3 of 4 blocks: beyond n-k = 2
	})
	res, events, err := runRepairScenario(t, store,
		repair.Config{Enabled: true},
		[]topology.NodeID{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Repair
	if st == nil || st.Unrepairable != 1 || st.StripesQueued != 0 {
		t.Fatalf("repair stats = %+v, want exactly one unrepairable stripe", st)
	}
	if st.FullRedundancyAt >= 0 {
		t.Fatalf("FullRedundancyAt = %v with an unrepairable stripe", st.FullRedundancyAt)
	}
	unrep := 0
	for _, e := range repairEvents(events, trace.EvRepairQueued) {
		if e.Class == "unrepairable" {
			unrep++
		}
	}
	if unrep != 1 {
		t.Fatalf("unrepairable reported %d times, want once", unrep)
	}
	if n := len(repairEvents(events, trace.EvRepairLaunch)); n != 0 {
		t.Fatalf("unrepairable stripe launched %d block repairs", n)
	}
	if len(store.commitOrder) != 0 {
		t.Fatalf("commits on an unrepairable stripe: %v", store.commitOrder)
	}
}

func TestMostAtRiskLaunchesWorstStripeFirst(t *testing.T) {
	// Stripe 0 loses one block (node 0); stripe 1 loses two (nodes 0, 1).
	order := func(policy repair.Policy) int {
		store := newRepairStore(repairCluster(t), [][]topology.NodeID{
			{0, 4, 5, 6},
			{0, 1, 6, 7},
		})
		_, events, err := runRepairScenario(t, store,
			repair.Config{Enabled: true, Policy: policy},
			[]topology.NodeID{0, 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		launches := repairEvents(events, trace.EvRepairLaunch)
		if len(launches) == 0 {
			t.Fatal("no launches")
		}
		return launches[0].Task
	}
	if first := order(repair.FIFO); first != 0 {
		t.Fatalf("FIFO launched stripe %d first, want 0 (scan order)", first)
	}
	if first := order(repair.MostAtRisk); first != 1 {
		t.Fatalf("MostAtRisk launched stripe %d first, want 1 (zero spare blocks)", first)
	}
}

func TestThrottleDelaysLaunch(t *testing.T) {
	c := repairCluster(t)
	store := newRepairStore(c, [][]topology.NodeID{{0, 1, 2, 3}})
	// One stripe, one lost block: need = k reads = 2e6 bytes. The bucket
	// starts with burst 0.5e6 and refills at 0.5e6/s, so the launch waits
	// (2e6-0.5e6)/0.5e6 = 3 virtual seconds.
	res, events, err := runRepairScenario(t, store,
		repair.Config{Enabled: true, RateBps: 0.5e6},
		[]topology.NodeID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	launches := repairEvents(events, trace.EvRepairLaunch)
	if len(launches) != 1 {
		t.Fatalf("launches = %d, want 1", len(launches))
	}
	if got := launches[0].T; math.Abs(got-3) > 1e-6 {
		t.Fatalf("throttled launch at %v, want t=3", got)
	}
	if res.Repair.FullRedundancyAt <= 3 {
		t.Fatalf("repair finished at %v, before its flows could run", res.Repair.FullRedundancyAt)
	}
}

func TestRepairedBlockRestoresLateJobTask(t *testing.T) {
	c := repairCluster(t)
	store := newRepairStore(c, [][]topology.NodeID{{0, 1, 2, 3}})
	// Job 1 (index 1) submits at t=50, long after the unthrottled repair
	// of stripe 0 block 0 commits; its task must launch non-degraded.
	store.taskOf[[2]int{0, 0}] = runtime.RepairedTask{Job: 1, Task: 0}
	late := runtime.JobSpec{
		Name:     "late",
		SubmitAt: 50,
		Tasks:    []sched.TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0}},
	}
	res, _, err := runRepairScenario(t, store,
		repair.Config{Enabled: true},
		[]topology.NodeID{0}, nil, late)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repair == nil || res.Repair.FullRedundancyAt < 0 || res.Repair.FullRedundancyAt > 50 {
		t.Fatalf("repair did not finish before the late job: %+v", res.Repair)
	}
	rec := res.Jobs[1].Tasks[0]
	if rec.Class == sched.ClassDegraded {
		t.Fatal("late job's task ran degraded despite its block being repaired")
	}
	if rec.FinishTime == 0 {
		t.Fatal("late job's task never finished")
	}
}

func TestRepairConfigRequiresRepairBackend(t *testing.T) {
	// A backend without the RepairBackend extension must be rejected when
	// repair is enabled.
	cluster, err := topology.New(topology.Config{
		Nodes:           hedgeNodes,
		Racks:           hedgeRacks,
		MapSlotsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    netsim.FluidFairSharing,
		NodeBps: hedgeNodeBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := sched.KindLF.New(cluster.NumRacks())
	if err != nil {
		t.Fatal(err)
	}
	env := &sched.Env{
		Cluster:          cluster,
		PerTaskTime:      func(topology.NodeID) float64 { return 1 },
		DegradedReadTime: 2,
	}
	_, err = runtime.Run(runtime.Params{
		Name:              "repair-test",
		Engine:            eng,
		Cluster:           cluster,
		Net:               net,
		Scheduler:         scheduler,
		Env:               env,
		HeartbeatInterval: 1,
		MaxSimTime:        1e5,
		Repair:            repair.Config{Enabled: true},
	}, &hedgeBackend{cluster: cluster}, []runtime.JobSpec{{
		Name:  "j",
		Tasks: []sched.TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1}},
	}})
	if err == nil || !strings.Contains(err.Error(), "repair") {
		t.Fatalf("err = %v, want repair-backend rejection", err)
	}
}
