package runtime

import (
	"fmt"
	"sort"

	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// Builder folds a single run's trace stream into a Result. The runtime
// feeds it live (Result metrics are trace consumers, not ad-hoc
// bookkeeping), and BuildResult replays a recorded trace — e.g. one read
// back from a JSONL file — into the identical Result: virtual times and
// byte counts survive the JSON round-trip exactly, and BytesMoved is
// re-accumulated in the original event order.
type Builder struct {
	res    Result
	failed map[topology.NodeID]bool
	// reduceLaunch remembers each reducer's latest launch time until its
	// finish event appends the ReduceRecord.
	reduceLaunch map[[2]int]float64
	// launched tracks map tasks with a live launch (set on EvTaskLaunch,
	// cleared on EvTaskRequeue). Degraded-read events pair with the
	// latest launch only: without this guard, an EvDegradedDone straggling
	// after a requeue would be measured against the zeroed record's
	// LaunchTime and yield a bogus read time.
	launched map[[2]int]bool
	// repairPending tracks each queued stripe's lost-block count (keyed
	// "file#stripe"); repairLost is their running sum plus the losses of
	// unrepairable stripes — the at-risk timeline's value.
	repairPending map[string]int
	repairUnrep   map[string]int
	repairLost    int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		failed:        make(map[topology.NodeID]bool),
		reduceLaunch:  make(map[[2]int]float64),
		launched:      make(map[[2]int]bool),
		repairPending: make(map[string]int),
		repairUnrep:   make(map[string]int),
	}
}

func (b *Builder) job(idx int) *JobResult {
	if idx < 0 || idx >= len(b.res.Jobs) {
		return nil
	}
	return &b.res.Jobs[idx]
}

func (b *Builder) task(job, task int) *TaskRecord {
	jr := b.job(job)
	if jr == nil || task < 0 || task >= len(jr.Tasks) {
		return nil
	}
	return &jr.Tasks[task]
}

// Consume folds one event. Events that don't shape the Result (heartbeats,
// scheduling decisions, transfer starts) are ignored.
func (b *Builder) Consume(e trace.Event) {
	switch e.Type {
	case trace.EvRunStart:
		b.res.Scheduler = e.Name
	case trace.EvNodeFail:
		b.failed[topology.NodeID(e.Node)] = true
	case trace.EvJobSubmit:
		for len(b.res.Jobs) <= e.Job {
			b.res.Jobs = append(b.res.Jobs, JobResult{})
		}
		b.res.Jobs[e.Job] = JobResult{
			Name:           e.Name,
			SubmitTime:     e.T,
			QueueDelay:     -1,
			FirstMapLaunch: -1,
			Tasks:          make([]TaskRecord, e.N),
		}
	case trace.EvJobQueued:
		if jr := b.job(e.Job); jr != nil {
			jr.Tenant = e.Name
		}
	case trace.EvJobGrant:
		if jr := b.job(e.Job); jr != nil {
			jr.QueueDelay = e.T - jr.SubmitTime
		}
	case trace.EvTaskLaunch:
		jr := b.job(e.Job)
		rec := b.task(e.Job, e.Task)
		if jr == nil || rec == nil {
			return
		}
		if jr.FirstMapLaunch < 0 {
			jr.FirstMapLaunch = e.T
		}
		class, _ := sched.ParseClass(e.Class)
		*rec = TaskRecord{
			Job:        e.Job,
			Task:       e.Task,
			Class:      class,
			Node:       topology.NodeID(e.Node),
			LaunchTime: e.T,
		}
		b.launched[[2]int{e.Job, e.Task}] = true
	case trace.EvDegradedDone:
		if rec := b.task(e.Job, e.Task); rec != nil && b.launched[[2]int{e.Job, e.Task}] {
			rec.DegradedReadTime = e.T - rec.LaunchTime
		}
	case trace.EvFlowLatency:
		rec := b.task(e.Job, e.Task)
		if rec == nil || !b.launched[[2]int{e.Job, e.Task}] {
			return
		}
		switch e.Class {
		case "won":
			rec.FlowLatencies = append(rec.FlowLatencies, e.Dur)
		case "lost":
			rec.WastedBytes += e.Bytes
			b.res.WastedBytes += e.Bytes
		}
	case trace.EvTaskFinish:
		if rec := b.task(e.Job, e.Task); rec != nil {
			rec.FinishTime = e.T
		}
	case trace.EvTaskRequeue:
		jr := b.job(e.Job)
		rec := b.task(e.Job, e.Task)
		if jr == nil || rec == nil {
			return
		}
		if rec.FinishTime > 0 {
			// A completed map is re-executed: the map phase reopens.
			jr.MapPhaseEnd = 0
		}
		*rec = TaskRecord{Job: e.Job, Task: e.Task}
		delete(b.launched, [2]int{e.Job, e.Task})
	case trace.EvMapPhaseEnd:
		if jr := b.job(e.Job); jr != nil {
			jr.MapPhaseEnd = e.T
		}
	case trace.EvReduceLaunch:
		b.reduceLaunch[[2]int{e.Job, e.Task}] = e.T
	case trace.EvReduceReset:
		delete(b.reduceLaunch, [2]int{e.Job, e.Task})
	case trace.EvReduceFinish:
		if jr := b.job(e.Job); jr != nil {
			jr.Reduces = append(jr.Reduces, ReduceRecord{
				Job:        e.Job,
				Index:      e.Task,
				Node:       topology.NodeID(e.Node),
				LaunchTime: b.reduceLaunch[[2]int{e.Job, e.Task}],
				FinishTime: e.T,
			})
		}
	case trace.EvJobFinish:
		if jr := b.job(e.Job); jr != nil {
			jr.FinishTime = e.T
		}
	case trace.EvTransferEnd:
		b.res.BytesMoved += e.Bytes
	case trace.EvRepairQueued:
		st := b.repairStats()
		key := repairKey(e)
		switch e.Class {
		case "unrepairable":
			if _, ok := b.repairUnrep[key]; !ok {
				st.Unrepairable++
			}
			if prev, ok := b.repairPending[key]; ok {
				b.repairLost -= prev
				delete(b.repairPending, key)
			}
			b.repairLost += e.N - b.repairUnrep[key]
			b.repairUnrep[key] = e.N
		default: // "scan" or "requeue": refresh the stripe's lost count
			if _, ok := b.repairPending[key]; !ok {
				st.StripesQueued++
			}
			b.repairLost += e.N - b.repairPending[key]
			b.repairPending[key] = e.N
		}
		b.pushAtRisk(e.T)
	case trace.EvRepairDone:
		st := b.repairStats()
		st.BlocksRepaired++
		if e.Class == "local" {
			st.LocalRepairs++
		} else {
			st.GlobalRepairs++
		}
		st.RepairBytes += e.Bytes
		if st.FirstRepairAt < 0 {
			st.FirstRepairAt = e.T
		}
		key := repairKey(e)
		if n, ok := b.repairPending[key]; ok {
			b.repairLost--
			if n <= 1 {
				delete(b.repairPending, key)
			} else {
				b.repairPending[key] = n - 1
			}
		}
		if b.repairLost == 0 {
			st.FullRedundancyAt = e.T
		}
		b.pushAtRisk(e.T)
	}
}

// repairKey is the Builder's stripe identity for repair events.
func repairKey(e trace.Event) string {
	return fmt.Sprintf("%s#%d", e.Name, e.Task)
}

// repairStats returns the lazily-allocated repair aggregate: it exists
// exactly when the run emitted repair events.
func (b *Builder) repairStats() *RepairStats {
	if b.res.Repair == nil {
		b.res.Repair = &RepairStats{FirstRepairAt: -1, FullRedundancyAt: -1}
	}
	return b.res.Repair
}

// pushAtRisk appends a timeline point when the known lost-block count
// changed (or the timeline is empty).
func (b *Builder) pushAtRisk(t float64) {
	st := b.repairStats()
	if n := len(st.AtRisk); n > 0 && st.AtRisk[n-1].Lost == b.repairLost {
		return
	}
	st.AtRisk = append(st.AtRisk, AtRiskPoint{T: t, Lost: b.repairLost})
}

// Result returns the folded Result. Call once, after the run's last event.
func (b *Builder) Result() *Result {
	if len(b.failed) > 0 {
		ids := make([]topology.NodeID, 0, len(b.failed))
		for id := range b.failed {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b.res.Failed = ids
	}
	b.res.Makespan = 0
	for i := range b.res.Jobs {
		if ft := b.res.Jobs[i].FinishTime; ft > b.res.Makespan {
			b.res.Makespan = ft
		}
	}
	if st := b.res.Repair; st != nil {
		// Full redundancy is only reached when every repairable stripe
		// healed and nothing is beyond repair.
		if len(b.repairUnrep) > 0 || len(b.repairPending) > 0 {
			st.FullRedundancyAt = -1
		}
	}
	return &b.res
}

// BuildResult replays a recorded single-run trace into its Result. For a
// JSONL file holding several runs, filter by the Run label first.
func BuildResult(events []trace.Event) *Result {
	b := NewBuilder()
	for _, e := range events {
		b.Consume(e)
	}
	return b.Result()
}
