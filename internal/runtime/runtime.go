package runtime

import (
	"context"
	"fmt"
	"math"

	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// Params wires a run: the engine-agnostic pieces are built by the caller
// (validated config, cluster, network, scheduler) and the runtime owns
// everything that happens between submission and the last job finishing.
type Params struct {
	// Name prefixes error messages ("mapred", "minimr").
	Name string
	// Ctx cancels the run at the next heartbeat (nil = background).
	Ctx       context.Context
	Engine    *sim.Engine
	Cluster   *topology.Cluster
	Net       *netsim.Net
	Scheduler sched.Scheduler
	// Env must carry Cluster, PerTaskTime and DegradedReadTime; the
	// runtime installs the job queue's eligibility view as Env.Jobs.
	Env *sched.Env

	// JobSched selects the job-level scheduling policy and its
	// parameters. The zero value is the FIFO queue, bit-identical to
	// the pre-jobsched runtime (pinned by the seed-golden tests).
	JobSched jobsched.Config

	// Hedge configures redundant degraded-read fan-ins (k+Δ races and
	// deadline hedging). The zero value disables hedging and keeps the
	// fan-in path bit-identical to the unhedged runtime (pinned by the
	// seed-golden tests). An active policy requires the backend to
	// implement HedgedBackend.
	Hedge HedgePolicy

	// Repair configures the background repair subsystem: a proactive
	// healer that scans for lost blocks after node failures and rebuilds
	// them over the same network links foreground jobs use. The zero
	// value disables it and keeps the run bit-identical to a build
	// without the subsystem (pinned by the seed-golden tests). An active
	// config requires the backend to implement RepairBackend.
	Repair repair.Config

	HeartbeatInterval   float64
	OutOfBandHeartbeats bool
	MaxSimTime          float64

	// ToFail are failure-injection targets: failed before the run when
	// FailAt <= 0, otherwise at virtual time FailAt.
	FailAt float64
	ToFail []topology.NodeID

	// PollFailures, when set, is drained at every heartbeat: any returned
	// node not already failed is fed into the same failure-recovery path
	// as ToFail. The distributed runtime uses it to surface workers whose
	// real heartbeats missed their deadline.
	PollFailures func() []topology.NodeID

	// Sink receives the run's trace events (nil = no external sink; the
	// internal Result builder always consumes them). Label stamps each
	// event's Run field.
	Sink  trace.Sink
	Label string

	// TraceFlowRates additionally emits an EvFlowRate event whenever a
	// flow's allocated bandwidth changes. Off by default: a fluid-mode
	// recomputation can reallocate every active flow, so this multiplies
	// trace volume.
	TraceFlowRates bool
}

func (p *Params) name() string {
	if p.Name == "" {
		return "runtime"
	}
	return p.Name
}

// Run drives the master loop over the given jobs until all finish, fail,
// or MaxSimTime passes, and returns the Result rebuilt from the run's
// trace stream.
func Run(p Params, backend Backend, jobs []JobSpec) (*Result, error) {
	if p.Engine == nil || p.Cluster == nil || p.Net == nil || p.Scheduler == nil || p.Env == nil {
		return nil, fmt.Errorf("%s: incomplete runtime params", p.name())
	}
	if backend == nil {
		return nil, fmt.Errorf("%s: nil backend", p.name())
	}
	if p.Ctx == nil {
		p.Ctx = context.Background()
	}

	st := &state{
		p:         p,
		name:      p.name(),
		backend:   backend,
		eng:       p.Engine,
		cluster:   p.Cluster,
		net:       p.Net,
		scheduler: p.Scheduler,
		env:       p.Env,
		running:   make(map[*sched.Task]*runningMap),
		builder:   NewBuilder(),
	}
	st.async, _ = backend.(AsyncBackend)
	if p.Hedge.Active() {
		if err := p.Hedge.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", p.name(), err)
		}
		hb, ok := backend.(HedgedBackend)
		if !ok {
			return nil, fmt.Errorf("%s: hedge policy active but backend %T cannot supply spare sources", p.name(), backend)
		}
		st.hedged = hb
	}
	if p.Repair.Active() {
		if err := p.Repair.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", p.name(), err)
		}
		rb, ok := backend.(RepairBackend)
		if !ok {
			return nil, fmt.Errorf("%s: repair config active but backend %T cannot plan stripe repairs", p.name(), backend)
		}
		st.repairMgr = newRepairManager(st, rb)
	}

	numNodes := st.cluster.NumNodes()
	st.slaves = make([]*slaveState, numNodes)
	for i := 0; i < numNodes; i++ {
		node := st.cluster.Node(topology.NodeID(i))
		st.slaves[i] = &slaveState{
			freeMap:    node.MapSlots,
			freeReduce: node.ReduceSlots,
		}
	}

	queue, err := jobsched.New(p.JobSched)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.name(), err)
	}
	st.queue = queue

	st.jobs = make([]*jobState, len(jobs))
	for i := range jobs {
		if w := jobs[i].Weight; w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("%s: job %q has invalid weight %v", p.name(), jobs[i].Name, w)
		}
		if d := jobs[i].Deadline; d < 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%s: job %q has invalid deadline %v", p.name(), jobs[i].Name, d)
		}
		queue.Add(jobsched.JobMeta{
			Tenant:   jobs[i].Tenant,
			Weight:   jobs[i].Weight,
			Deadline: jobs[i].Deadline,
		}, jobs[i].NumReducers)
		js := &jobState{
			idx:     i,
			spec:    jobs[i],
			mapDone: make([]bool, len(jobs[i].Tasks)),
			mapNode: make([]topology.NodeID, len(jobs[i].Tasks)),
			parts:   make([][]Chunk, len(jobs[i].Tasks)),
		}
		if n := jobs[i].NumReducers; n > 0 {
			js.reducers = make([]*reducerState, n)
			for r := 0; r < n; r++ {
				js.reducers[r] = &reducerState{
					job: js,
					idx: r,
					got: make([]bool, len(jobs[i].Tasks)),
				}
			}
			js.pendingShuffle = make([][]pendingChunk, n)
		}
		st.jobs[i] = js
	}

	hooks := netsim.Hooks{
		Start: func(f *netsim.Flow) {
			e := st.ev(trace.EvTransferStart)
			e.Src, e.Dst, e.Bytes, e.N = int(f.Src), int(f.Dst), f.Bytes, f.ID
			st.emit(e)
		},
		Finish: func(f *netsim.Flow) {
			e := st.ev(trace.EvTransferEnd)
			e.Src, e.Dst, e.Bytes, e.N = int(f.Src), int(f.Dst), f.Bytes, f.ID
			st.emit(e)
		},
		Cancel: func(f *netsim.Flow) {
			e := st.ev(trace.EvTransferCancel)
			e.Src, e.Dst, e.Bytes, e.N = int(f.Src), int(f.Dst), f.Bytes, f.ID
			st.emit(e)
		},
	}
	if p.TraceFlowRates {
		hooks.RateChange = func(f *netsim.Flow) {
			e := st.ev(trace.EvFlowRate)
			e.Src, e.Dst, e.N = int(f.Src), int(f.Dst), f.ID
			rate := f.Rate()
			if math.IsInf(rate, 1) {
				rate = -1 // JSON has no +Inf; -1 marks an unlimited allocation
			}
			e.Bytes = rate
			st.emit(e)
		}
	}
	st.net.SetHooks(hooks)

	// Failure injection first so a FailAt event precedes same-time
	// submissions and heartbeats in the engine's tie-breaking order.
	if p.FailAt > 0 {
		toFail := p.ToFail
		st.eng.Schedule(p.FailAt, func() { st.injectFailure(toFail) })
	} else {
		for _, id := range p.ToFail {
			st.cluster.FailNode(id)
		}
	}

	rs := st.ev(trace.EvRunStart)
	rs.Name = st.scheduler.Name()
	st.emit(rs)
	for _, id := range st.cluster.FailedNodes() {
		e := st.ev(trace.EvNodeFail)
		e.Node = int(id)
		st.emit(e)
	}
	if st.repairMgr != nil {
		if failed := st.cluster.FailedNodes(); len(failed) > 0 {
			st.repairMgr.scheduleScan(failed)
		}
	}

	for _, js := range st.jobs {
		js := js
		st.eng.Schedule(js.spec.SubmitAt, func() { st.submitJob(js) })
	}

	// Stagger the first heartbeats across the interval so slaves don't
	// report in lockstep.
	for i := 0; i < numNodes; i++ {
		id := topology.NodeID(i)
		offset := p.HeartbeatInterval * float64(i) / float64(numNodes)
		st.eng.Schedule(offset, func() { st.heartbeat(id) })
	}

	st.eng.Run()

	if st.err != nil {
		return nil, st.err
	}
	if !st.allDone() {
		return nil, fmt.Errorf("%s: drained with %d/%d jobs finished", st.name, st.finished, len(st.jobs))
	}
	if err := st.net.Drained(); err != nil {
		// All jobs claim to be done yet flows remain: a transfer was
		// admitted and then silently starved (never rescheduled).
		return nil, fmt.Errorf("%s: %w", st.name, err)
	}
	st.emit(st.ev(trace.EvRunEnd))
	return st.builder.Result(), nil
}

type slaveState struct {
	freeMap    int
	freeReduce int
	oobPending bool
}

type pendingChunk struct {
	src    topology.NodeID
	mapIdx int
	chunk  Chunk
}

// shuffleRef tracks an in-flight shuffle flow so failure recovery can
// cancel transfers touching a dead node.
type shuffleRef struct {
	r      *reducerState
	mapIdx int
	src    topology.NodeID
	flow   *netsim.Flow
}

type reducerState struct {
	job      *jobState
	idx      int
	node     topology.NodeID
	launched bool
	started  bool
	done     bool
	// got guards against duplicate shuffle deliveries per map task.
	got           []bool
	received      int
	receivedBytes float64
	procEv        *sim.Event
}

type jobState struct {
	idx       int
	spec      JobSpec
	sj        *sched.Job
	submitted bool
	finishedJ bool

	mapsCompleted int
	// mapDone/mapNode/parts track completed map output for shuffle
	// recovery: output of task i lives on mapNode[i] and splits into
	// parts[i] (one Chunk per reducer).
	mapDone []bool
	mapNode []topology.NodeID
	parts   [][]Chunk

	reducers       []*reducerState
	reducersDone   int
	pendingShuffle [][]pendingChunk
	shuffleFlows   []*shuffleRef

	// repairedHolder overrides task holders for jobs not yet submitted:
	// the background healer rebuilt the task's input block on a new node
	// before the job arrived, so submission classifies against the
	// repaired placement rather than the spec's stale holder.
	repairedHolder map[int]topology.NodeID
}

func (js *jobState) totalMaps() int { return len(js.spec.Tasks) }

// mapOutputAvailable reports whether task i's output can still feed the
// shuffle (completed and its node alive).
func (st *state) mapOutputAvailable(js *jobState, i int) bool {
	return js.mapDone[i] && st.cluster.Alive(js.mapNode[i])
}

type runningMap struct {
	js     *jobState
	task   *sched.Task
	node   topology.NodeID
	flows  []*netsim.Flow
	procEv *sim.Event
	input  any
	output any

	// Hedged fan-in state (active hedge policy only): the read completes
	// at the need-th flow completion (got counts them), standby holds
	// unlaunched spare sources for deadline hedges, and hedgeTimers the
	// pending per-flow deadline checks.
	need        int
	got         int
	standby     []Transfer
	hedgeTimers []*sim.Event
}

type state struct {
	p         Params
	name      string
	backend   Backend
	async     AsyncBackend  // backend's optional async half, nil otherwise
	hedged    HedgedBackend // backend's spare-source half, nil unless Hedge.Active()
	eng       *sim.Engine
	cluster   *topology.Cluster
	net       *netsim.Net
	scheduler sched.Scheduler
	env       *sched.Env

	jobs    []*jobState
	queue   *jobsched.Queue
	slaves  []*slaveState
	running map[*sched.Task]*runningMap

	builder   *Builder
	finished  int
	err       error
	repairMgr *repairManager // background healer, nil unless Repair.Active()

	// hedgeLat accumulates observed per-flow fan-in latencies; the
	// deadline-hedging estimator reads its quantiles. Only populated
	// under an active hedge policy.
	hedgeLat []float64
}

// ev returns a fresh event stamped with the current virtual time.
func (s *state) ev(typ trace.Type) trace.Event {
	return trace.New(s.eng.Now(), typ)
}

// emit feeds the internal Result builder and the external sink.
func (s *state) emit(e trace.Event) {
	if s.p.Label != "" && e.Run == "" {
		e.Run = s.p.Label
	}
	s.builder.Consume(e)
	if s.p.Sink != nil {
		s.p.Sink.Emit(e)
	}
}

func (s *state) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *state) allDone() bool { return s.finished == len(s.jobs) }

func (s *state) submitJob(js *jobState) {
	specs := make([]sched.TaskSpec, len(js.spec.Tasks))
	for i, t := range js.spec.Tasks {
		if h, ok := js.repairedHolder[i]; ok {
			t.Holder = h
		}
		t.Lost = !s.cluster.Alive(t.Holder)
		specs[i] = t
	}
	js.sj = sched.NewJob(js.idx, specs)
	js.submitted = true
	s.queue.Submit(js.idx, js.sj)
	e := s.ev(trace.EvJobSubmit)
	e.Job = js.idx
	e.Name = js.spec.Name
	e.N = len(specs)
	s.emit(e)
	qe := s.ev(trace.EvJobQueued)
	qe.Job = js.idx
	qe.Name = js.spec.Tenant
	s.emit(qe)
}

// ensureScheduled re-enters a job with pending tasks into the job queue
// after failure recovery requeued work.
func (s *state) ensureScheduled(js *jobState) {
	s.queue.Requeue(js.idx)
}

func (s *state) heartbeat(id topology.NodeID) {
	if s.err != nil || s.allDone() {
		return
	}
	if err := s.p.Ctx.Err(); err != nil {
		s.fail(fmt.Errorf("%s: %w", s.name, err))
		return
	}
	if s.eng.Now() > s.p.MaxSimTime {
		s.fail(fmt.Errorf("%s: exceeded MaxSimTime %.0fs with %d/%d jobs finished",
			s.name, s.p.MaxSimTime, s.finished, len(s.jobs)))
		return
	}
	if s.p.PollFailures != nil {
		s.injectNewlyDead(s.p.PollFailures())
	}
	if s.cluster.Alive(id) {
		s.serveSlave(id)
	}
	s.eng.Schedule(s.p.HeartbeatInterval, func() { s.heartbeat(id) })
}

// oobHeartbeat schedules an immediate extra heartbeat for a node that just
// freed a slot (models Hadoop's out-of-band heartbeat optimization).
func (s *state) oobHeartbeat(id topology.NodeID) {
	slave := s.slaves[id]
	if slave.oobPending || s.err != nil || s.allDone() {
		return
	}
	slave.oobPending = true
	s.eng.Schedule(0, func() {
		slave.oobPending = false
		if s.err == nil && !s.allDone() && s.cluster.Alive(id) {
			s.serveSlave(id)
		}
	})
}

func (s *state) serveSlave(id topology.NodeID) {
	slave := s.slaves[id]
	hb := s.ev(trace.EvHeartbeat)
	hb.Node = int(id)
	hb.N = slave.freeMap
	s.emit(hb)

	if slave.freeMap > 0 {
		s.env.Jobs = s.queue.MapOrder()
		if len(s.env.Jobs) > 0 {
			assignments := s.scheduler.Assign(s.env, sched.Heartbeat{
				Now:          s.eng.Now(),
				Node:         id,
				FreeMapSlots: slave.freeMap,
			})
			for _, a := range assignments {
				e := s.ev(trace.EvTaskScheduled)
				e.Job = a.Task.Job
				e.Task = a.Task.Index
				e.Node = int(id)
				e.Class = a.Class.String()
				s.emit(e)
				if s.queue.MapGranted(a.Task.Job) {
					g := s.ev(trace.EvJobGrant)
					g.Job = a.Task.Job
					g.Node = int(id)
					g.Name = s.jobs[a.Task.Job].spec.Tenant
					s.emit(g)
				}
				s.launchMap(a, id)
				if s.err != nil {
					return
				}
			}
			s.queue.Prune()
			s.env.Jobs = s.queue.MapOrder()
			if slave.freeMap > 0 && len(s.env.Jobs) > 0 {
				e := s.ev(trace.EvSlotIdle)
				e.Node = int(id)
				e.N = slave.freeMap
				s.emit(e)
			}
		}
	}

	for slave.freeReduce > 0 {
		r := s.nextReducerToAssign()
		if r == nil {
			break
		}
		s.launchReducer(r, id)
	}
}

// nextReducerToAssign asks the job queue which job should take the next
// free reduce slot and picks its first unlaunched reducer.
func (s *state) nextReducerToAssign() *reducerState {
	e := s.queue.NextReduce()
	if e == nil {
		return nil
	}
	for _, r := range s.jobs[e.Idx].reducers {
		if !r.launched && !r.done {
			return r
		}
	}
	return nil
}

func (s *state) launchMap(a sched.Assignment, id topology.NodeID) {
	js := s.jobs[a.Task.Job]
	slave := s.slaves[id]
	if slave.freeMap <= 0 {
		s.fail(fmt.Errorf("%s: scheduler overcommitted node %d", s.name, id))
		return
	}
	slave.freeMap--

	e := s.ev(trace.EvTaskLaunch)
	e.Job = js.idx
	e.Task = a.Task.Index
	e.Node = int(id)
	e.Class = a.Class.String()
	s.emit(e)

	js.mapNode[a.Task.Index] = id
	rm := &runningMap{js: js, task: a.Task, node: id}
	s.running[a.Task] = rm

	transfers, input, err := s.backend.PlanInput(js.idx, a.Task.Index, a.Class, id)
	if err != nil {
		s.fail(err)
		return
	}
	rm.input = input

	degraded := a.Class == sched.ClassDegraded
	if degraded && s.hedged != nil {
		// Active hedge policy: the fan-in races k+Δ sources and may
		// launch deadline hedges; EvDegradedPlan covers the eager pool.
		s.launchHedgedFanIn(rm, transfers, id)
		return
	}
	if degraded {
		var total float64
		for _, t := range transfers {
			total += t.Bytes
		}
		pe := s.ev(trace.EvDegradedPlan)
		pe.Job = js.idx
		pe.Task = a.Task.Index
		pe.Node = int(id)
		pe.N = len(transfers)
		pe.Bytes = total
		s.emit(pe)
	}

	if len(transfers) == 0 {
		s.startProcessing(rm)
		return
	}
	// The whole input fan-in (surviving blocks + parity for a degraded
	// read) is admitted as one batch: a single bandwidth recomputation
	// instead of one per source.
	remaining := len(transfers)
	gathered := func(*netsim.Flow) {
		remaining--
		if remaining > 0 {
			return
		}
		if degraded {
			de := s.ev(trace.EvDegradedDone)
			de.Job = rm.js.idx
			de.Task = rm.task.Index
			de.Node = int(rm.node)
			s.emit(de)
		}
		s.startProcessing(rm)
	}
	reqs := make([]netsim.FlowReq, len(transfers))
	for i, tr := range transfers {
		reqs[i] = netsim.FlowReq{Src: tr.Src, Dst: id, Bytes: tr.Bytes, Done: gathered}
	}
	rm.flows = s.net.StartFlows(reqs)
}

func (s *state) startProcessing(rm *runningMap) {
	e := s.ev(trace.EvMapStart)
	e.Job = rm.js.idx
	e.Task = rm.task.Index
	e.Node = int(rm.node)
	s.emit(e)
	dur, output := s.backend.Execute(rm.js.idx, rm.task.Index, rm.node, rm.input)
	rm.input = nil
	rm.output = output
	rm.procEv = s.eng.Schedule(dur, func() { s.completeMap(rm) })
}

func (s *state) completeMap(rm *runningMap) {
	if s.err != nil {
		return
	}
	js := rm.js
	id := rm.node

	if s.async != nil {
		// The virtual completion instant: block here until the real map
		// work has finished (or its worker died).
		out, err := s.async.AwaitOutput(js.idx, rm.task.Index, id, rm.output)
		if err != nil {
			s.asyncMapFailure(rm, err)
			return
		}
		rm.output = out
	}

	e := s.ev(trace.EvTaskFinish)
	e.Job = js.idx
	e.Task = rm.task.Index
	e.Node = int(id)
	s.emit(e)

	delete(s.running, rm.task)
	s.slaves[id].freeMap++
	s.queue.MapReleased(js.idx)
	js.mapsCompleted++
	js.mapDone[rm.task.Index] = true

	if len(js.reducers) > 0 {
		parts := s.backend.Partitions(js.idx, rm.task.Index, rm.output)
		js.parts[rm.task.Index] = parts
		var sends []shuffleSend
		for rIdx, c := range parts {
			r := js.reducers[rIdx]
			if r.got[rm.task.Index] || r.done {
				continue
			}
			if r.launched {
				sends = append(sends, shuffleSend{src: id, r: r, mapIdx: rm.task.Index, chunk: c})
			} else {
				js.pendingShuffle[rIdx] = append(js.pendingShuffle[rIdx],
					pendingChunk{src: id, mapIdx: rm.task.Index, chunk: c})
			}
		}
		s.sendShuffles(sends)
	}
	rm.output = nil

	if js.mapsCompleted == js.totalMaps() {
		pe := s.ev(trace.EvMapPhaseEnd)
		pe.Job = js.idx
		s.emit(pe)
		if len(js.reducers) == 0 {
			s.finishJob(js)
		} else {
			for _, r := range js.reducers {
				s.checkReducer(r)
			}
		}
	}
	if s.p.OutOfBandHeartbeats {
		s.oobHeartbeat(id)
	}
}

// shuffleSend is one map-output chunk headed for a launched reducer.
type shuffleSend struct {
	src    topology.NodeID
	r      *reducerState
	mapIdx int
	chunk  Chunk
}

// sendShuffles starts the given shuffle transfers as one batch, costing a
// single bandwidth recomputation however wide the fan-out.
func (s *state) sendShuffles(sends []shuffleSend) {
	if len(sends) == 0 {
		return
	}
	reqs := make([]netsim.FlowReq, len(sends))
	for i, sd := range sends {
		sd := sd
		reqs[i] = netsim.FlowReq{Src: sd.src, Dst: sd.r.node, Bytes: sd.chunk.Bytes,
			Done: func(*netsim.Flow) {
				r := sd.r
				if !r.got[sd.mapIdx] && !r.done {
					if err := s.backend.Deliver(r.job.idx, r.idx, r.node, sd.chunk); err != nil {
						// got stays false so re-execution still considers
						// this output owed to the reducer.
						s.deliverFailure(err)
						return
					}
					r.got[sd.mapIdx] = true
					r.received++
					r.receivedBytes += sd.chunk.Bytes
				}
				s.checkReducer(r)
			}}
	}
	for i, f := range s.net.StartFlows(reqs) {
		sd := sends[i]
		sd.r.job.shuffleFlows = append(sd.r.job.shuffleFlows,
			&shuffleRef{r: sd.r, mapIdx: sd.mapIdx, src: sd.src, flow: f})
	}
}

func (s *state) launchReducer(r *reducerState, id topology.NodeID) {
	slave := s.slaves[id]
	slave.freeReduce--
	r.launched = true
	r.node = id
	s.queue.ReduceGranted(r.job.idx)

	e := s.ev(trace.EvReduceLaunch)
	e.Job = r.job.idx
	e.Task = r.idx
	e.Node = int(id)
	s.emit(e)

	pending := r.job.pendingShuffle[r.idx]
	r.job.pendingShuffle[r.idx] = nil
	var sends []shuffleSend
	for _, pc := range pending {
		if r.got[pc.mapIdx] {
			continue
		}
		sends = append(sends, shuffleSend{src: pc.src, r: r, mapIdx: pc.mapIdx, chunk: pc.chunk})
	}
	s.sendShuffles(sends)
}

func (s *state) checkReducer(r *reducerState) {
	js := r.job
	if !r.launched || r.started || r.done {
		return
	}
	if js.mapsCompleted != js.totalMaps() || r.received != js.totalMaps() {
		return
	}
	r.started = true
	e := s.ev(trace.EvReduceStart)
	e.Job = js.idx
	e.Task = r.idx
	e.Node = int(r.node)
	e.Bytes = r.receivedBytes
	s.emit(e)
	dur := s.backend.ReduceDuration(js.idx, r.idx, r.node, r.receivedBytes)
	r.procEv = s.eng.Schedule(dur, func() { s.completeReducer(r) })
}

func (s *state) completeReducer(r *reducerState) {
	if s.err != nil {
		return
	}
	js := r.job
	if s.async != nil {
		if err := s.async.AwaitReduce(js.idx, r.idx, r.node); err != nil {
			s.asyncReduceFailure(r, err)
			return
		}
	}
	s.backend.ReduceFinish(js.idx, r.idx)
	r.done = true
	r.procEv = nil

	e := s.ev(trace.EvReduceFinish)
	e.Job = js.idx
	e.Task = r.idx
	e.Node = int(r.node)
	s.emit(e)

	s.slaves[r.node].freeReduce++
	s.queue.ReduceReleased(js.idx)
	js.reducersDone++
	if s.p.OutOfBandHeartbeats {
		s.oobHeartbeat(r.node)
	}
	if js.reducersDone == len(js.reducers) {
		s.finishJob(js)
	}
}

func (s *state) finishJob(js *jobState) {
	if js.finishedJ {
		return
	}
	js.finishedJ = true
	s.queue.JobFinished(js.idx)
	s.finished++
	e := s.ev(trace.EvJobFinish)
	e.Job = js.idx
	s.emit(e)
}
