package runtime

import (
	"fmt"
	"strings"

	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
)

// Timeline renders a job's map-slot activity as ASCII art in the style of
// the paper's Figure 3: one row per node, time flowing left to right,
// with each column showing what dominates that node at that instant —
// 'D' a degraded task, 'R' a remote task, 'r' rack-local, 'L' node-local,
// '.' idle, 'x' a failed node. Degraded > remote > rack-local > local in
// display priority so contention phases stand out. Since Result itself is
// rebuilt from the trace stream, a recorded JSONL trace reconstructs this
// rendering byte-identically via BuildResult.
func Timeline(res *Result, jobIdx, width int) string {
	if res == nil || jobIdx < 0 || jobIdx >= len(res.Jobs) {
		return ""
	}
	return JobTimeline(&res.Jobs[jobIdx], res.Failed, width)
}

// JobTimeline renders one JobResult's map-slot activity; the minimr
// engine's reports use it directly.
func JobTimeline(jr *JobResult, failedNodes []topology.NodeID, width int) string {
	if jr == nil || width < 10 {
		return ""
	}
	start := jr.FirstMapLaunch
	end := jr.MapPhaseEnd
	if end <= start {
		return ""
	}
	failed := make(map[topology.NodeID]bool, len(failedNodes))
	maxNode := topology.NodeID(0)
	for _, id := range failedNodes {
		failed[id] = true
		if id > maxNode {
			maxNode = id
		}
	}
	for _, t := range jr.Tasks {
		if t.Node > maxNode {
			maxNode = t.Node
		}
	}

	// rank maps a class to display priority (higher wins per column).
	rank := func(c sched.Class) int {
		switch c {
		case sched.ClassDegraded:
			return 4
		case sched.ClassRemote:
			return 3
		case sched.ClassRackLocal:
			return 2
		case sched.ClassNodeLocal:
			return 1
		default:
			return 0
		}
	}
	glyph := [5]byte{'.', 'L', 'r', 'R', 'D'}

	rows := make([][]int, int(maxNode)+1)
	for i := range rows {
		rows[i] = make([]int, width)
	}
	colOf := func(t float64) int {
		c := int((t - start) / (end - start) * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, t := range jr.Tasks {
		r := rank(t.Class)
		for col := colOf(t.LaunchTime); col <= colOf(t.FinishTime); col++ {
			if r > rows[t.Node][col] {
				rows[t.Node][col] = r
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "map phase %.1fs..%.1fs (L=local r=rack-local R=remote D=degraded)\n", start, end)
	for id := topology.NodeID(0); id <= maxNode; id++ {
		fmt.Fprintf(&b, "node%-3d |", id)
		if failed[id] {
			b.WriteString(strings.Repeat("x", width))
		} else {
			line := make([]byte, width)
			for col, r := range rows[id] {
				line[col] = glyph[r]
			}
			b.Write(line)
		}
		b.WriteString("|\n")
	}
	return b.String()
}
