package runtime

import (
	"fmt"
	"sort"

	"degradedfirst/internal/netsim"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// RepairedTask references one foreground map task whose lost input block
// a background repair just rebuilt: the task can drop its degraded
// classification and read the block normally from the new holder.
type RepairedTask struct {
	Job  int
	Task int
}

// RepairBackend is the optional Backend extension required when
// Params.Repair is active: the engine-specific half of the background
// healer. Implementations must be deterministic — no fresh RNG draws,
// no map-iteration-order dependence — so enabling repair perturbs the
// foreground run only through the extra network traffic it admits.
type RepairBackend interface {
	// ScanLostBlocks returns a repair plan for every stripe that lost a
	// block to one of the failed nodes (all lost blocks of a touched
	// stripe, including earlier losses; Unrepairable set for stripes
	// past n-k losses). An empty failed set scans the whole store.
	ScanLostBlocks(failed []topology.NodeID) ([]repair.StripePlan, error)
	// PlanStripeRepair re-plans one stripe from live placement state.
	// The healer calls it at launch time so blocks committed since the
	// stripe was queued are not rebuilt again.
	PlanStripeRepair(key repair.Key) (repair.StripePlan, error)
	// CommitRepair finalizes one rebuilt block after its source flows
	// complete: reconstruct (for engines holding real bytes), store on
	// bp.Dest, and move the placement. It returns the foreground tasks
	// whose input block this was, so the runtime can restore them. A
	// *DeadNodeError feeds failure recovery; other errors abort the run.
	CommitRepair(key repair.Key, bp repair.BlockPlan) ([]RepairedTask, error)
	// RepairBlockBytes is the network volume of reading one block.
	RepairBlockBytes() float64
}

// activeRepair is one stripe repair in flight: its launch-time plan,
// per-block gather countdowns, and commit state.
type activeRepair struct {
	key  repair.Key
	plan repair.StripePlan
	// gather[i] counts block i's source flows still in flight.
	gather []int
	// done[i] marks block i committed — the no-double-write guard.
	done      []bool
	remaining int
	boosted   bool
	flows     []*netsim.Flow
}

// readBytes returns the planned read volume of block i.
func (ar *activeRepair) readBytes(i int, blockBytes float64) float64 {
	return float64(len(ar.plan.Blocks[i].Sources)) * blockBytes
}

// pendingReadBytes returns the read volume of the not-yet-committed
// blocks.
func (ar *activeRepair) pendingReadBytes(blockBytes float64) float64 {
	var total float64
	for i := range ar.plan.Blocks {
		if !ar.done[i] {
			total += ar.readBytes(i, blockBytes)
		}
	}
	return total
}

// repairManager drives the background healer inside the master loop:
// scans after failures, a policy-ordered stripe queue, a token-bucket
// throttle, and repairs executed as real flows on the shared network.
type repairManager struct {
	s      *state
	cfg    repair.Config
	rb     RepairBackend
	queue  *repair.Queue
	bucket *repair.Bucket

	active map[repair.Key]*activeRepair
	// unrep records stripes already reported unrepairable, so the
	// distinct report is emitted once per stripe.
	unrep map[repair.Key]bool

	// waitEv is the pending token-refill retry; pumpPending coalesces
	// deferred pump calls (StartFlows must not run inside net callbacks).
	waitEv      *sim.Event
	pumpPending bool
}

func newRepairManager(s *state, rb RepairBackend) *repairManager {
	cfg := s.p.Repair
	return &repairManager{
		s:      s,
		cfg:    cfg,
		rb:     rb,
		queue:  repair.NewQueue(cfg.Policy),
		bucket: repair.NewBucket(cfg.EffectiveRate(), cfg.Burst),
		active: make(map[repair.Key]*activeRepair),
		unrep:  make(map[repair.Key]bool),
	}
}

// blockBytes returns the per-block transfer volume.
func (m *repairManager) blockBytes() float64 { return m.rb.RepairBlockBytes() }

// evStripe returns a repair event stamped with a stripe's identity.
func (m *repairManager) evStripe(typ trace.Type, key repair.Key) trace.Event {
	e := m.s.ev(typ)
	e.Name = key.File
	e.Task = key.Stripe
	return e
}

// scheduleScan arms a DFS scan for the given failures after the
// configured detection delay.
func (m *repairManager) scheduleScan(nodes []topology.NodeID) {
	nodes = append([]topology.NodeID(nil), nodes...)
	m.s.eng.Schedule(m.cfg.DetectDelay, func() {
		if m.s.err == nil {
			m.scan(nodes)
		}
	})
}

// scan asks the backend for the stripes degraded by the given failures
// and queues their repairs. Stripes already being repaired are queued
// too (the pump skips them while active): a failure can add lost blocks
// to a stripe whose earlier losses are mid-repair, and the re-plan at
// next launch picks up whatever the in-flight pass does not heal.
func (m *repairManager) scan(nodes []topology.NodeID) {
	plans, err := m.rb.ScanLostBlocks(nodes)
	if err != nil {
		m.s.fail(fmt.Errorf("%s: repair scan: %w", m.s.name, err))
		return
	}
	for _, plan := range plans {
		if plan.Unrepairable {
			m.markUnrepairable(plan.Key, plan.Lost)
			continue
		}
		if plan.Lost == 0 {
			continue
		}
		m.enqueue(plan, "scan", false)
	}
	m.pump()
}

// enqueue upserts a stripe into the repair queue and emits the queue
// event. class is "scan" for scanner findings and "requeue" for stripes
// whose in-flight repair was cancelled by a failure.
func (m *repairManager) enqueue(plan repair.StripePlan, class string, boost bool) {
	now := m.s.eng.Now()
	deadline := now + m.cfg.Horizon()*float64(plan.Spare()+1)
	m.queue.Upsert(plan.Key, plan.Lost, plan.Spare(), now, deadline, boost)
	e := m.evStripe(trace.EvRepairQueued, plan.Key)
	e.Class = class
	e.N = plan.Lost
	e.Bytes = plan.ReadBytes(m.blockBytes())
	m.s.emit(e)
}

// markUnrepairable reports a stripe past its code's loss tolerance —
// once, distinctly, and never launched.
func (m *repairManager) markUnrepairable(key repair.Key, lost int) {
	if m.unrep[key] {
		return
	}
	m.unrep[key] = true
	m.queue.Remove(key)
	e := m.evStripe(trace.EvRepairQueued, key)
	e.Class = "unrepairable"
	e.N = lost
	m.s.emit(e)
}

// schedulePump defers a pump to a zero-delay event: launches call
// StartFlows, which must not run inside a network completion callback.
func (m *repairManager) schedulePump() {
	if m.pumpPending {
		return
	}
	m.pumpPending = true
	m.s.eng.Schedule(0, func() {
		m.pumpPending = false
		if m.s.err == nil {
			m.pump()
		}
	})
}

// pump launches queued repairs until the concurrency cap or the token
// bucket blocks. The bucket gates the queue's head only: while the
// highest-priority stripe waits for tokens nothing lower launches
// (head-of-line blocking is the throttle semantics).
func (m *repairManager) pump() {
	if m.s.err != nil {
		return
	}
	if m.waitEv != nil {
		m.s.eng.Cancel(m.waitEv)
		m.waitEv = nil
	}
	skip := func(k repair.Key) bool { _, ok := m.active[k]; return ok }
	for len(m.active) < m.cfg.Concurrency() {
		it := m.queue.Peek(skip)
		if it == nil {
			return
		}
		plan, err := m.rb.PlanStripeRepair(it.Key)
		if err != nil {
			m.s.fail(fmt.Errorf("%s: repair plan for %s: %w", m.s.name, it.Key, err))
			return
		}
		if plan.Unrepairable {
			m.markUnrepairable(plan.Key, plan.Lost)
			continue
		}
		if len(plan.Blocks) == 0 {
			// Healed (or re-planned empty) since it was queued.
			m.queue.Remove(it.Key)
			continue
		}
		need := plan.ReadBytes(m.blockBytes())
		now := m.s.eng.Now()
		ok, readyAt := m.bucket.Take(now, need)
		if !ok {
			m.waitEv = m.s.eng.Schedule(readyAt-now, func() {
				m.waitEv = nil
				if m.s.err == nil {
					m.pump()
				}
			})
			return
		}
		boosted := it.Boosted
		m.queue.Remove(it.Key)
		m.launch(plan, boosted)
	}
}

// launch starts one stripe repair: every lost block's source reads are
// admitted as a single batch through the shared network, and each block
// commits when its last source flow lands.
func (m *repairManager) launch(plan repair.StripePlan, boosted bool) {
	ar := &activeRepair{
		key:       plan.Key,
		plan:      plan,
		gather:    make([]int, len(plan.Blocks)),
		done:      make([]bool, len(plan.Blocks)),
		remaining: len(plan.Blocks),
		boosted:   boosted,
	}
	m.active[plan.Key] = ar

	var reqs []netsim.FlowReq
	var zeroSrc []int
	for i, bp := range plan.Blocks {
		e := m.evStripe(trace.EvRepairLaunch, plan.Key)
		e.N = bp.Index
		e.Node = int(bp.Dest)
		e.Bytes = ar.readBytes(i, m.blockBytes())
		e.Class = repairClass(bp)
		m.s.emit(e)
		if len(bp.Sources) == 0 {
			zeroSrc = append(zeroSrc, i)
			continue
		}
		ar.gather[i] = len(bp.Sources)
		i := i
		for _, src := range bp.Sources {
			reqs = append(reqs, netsim.FlowReq{
				Src:   src.Node,
				Dst:   bp.Dest,
				Bytes: m.blockBytes(),
				Done:  func(*netsim.Flow) { m.blockGathered(ar, i) },
			})
		}
	}
	if len(reqs) > 0 {
		ar.flows = m.s.net.StartFlows(reqs)
	}
	// Degenerate zero-source blocks (nothing to read) commit directly;
	// pump never runs inside a network callback, so this is safe.
	for _, i := range zeroSrc {
		m.commitBlock(ar, i)
	}
}

// repairClass labels a block plan for traces: "local" for LRC
// local-group repairs, "global" for full reconstructions.
func repairClass(bp repair.BlockPlan) string {
	if bp.Local {
		return "local"
	}
	return "global"
}

// blockGathered is the per-source-flow completion callback: the block
// commits at its last flow's arrival.
func (m *repairManager) blockGathered(ar *activeRepair, i int) {
	if m.s.err != nil || ar.done[i] {
		return
	}
	ar.gather[i]--
	if ar.gather[i] > 0 {
		return
	}
	m.commitBlock(ar, i)
}

// commitBlock finalizes one rebuilt block. Runs inside a network
// completion callback, so it must not start or cancel flows: failures
// defer into injectNewlyDead on a zero-delay event, and stripe
// completion defers the next pump the same way.
func (m *repairManager) commitBlock(ar *activeRepair, i int) {
	refs, err := m.rb.CommitRepair(ar.key, ar.plan.Blocks[i])
	if err != nil {
		m.s.deliverFailure(fmt.Errorf("%s: repair commit for %s: %w", m.s.name, ar.key, err))
		return
	}
	ar.done[i] = true
	ar.remaining--
	bp := ar.plan.Blocks[i]
	e := m.evStripe(trace.EvRepairDone, ar.key)
	e.N = bp.Index
	e.Node = int(bp.Dest)
	e.Bytes = ar.readBytes(i, m.blockBytes())
	e.Class = repairClass(bp)
	m.s.emit(e)
	for _, ref := range refs {
		m.restoreTask(ref, bp.Dest)
	}
	if ar.remaining == 0 {
		delete(m.active, ar.key)
		m.schedulePump()
	}
}

// restoreTask returns a repaired block to the foreground scheduler's
// view: a pending degraded task whose input just came back reverts to a
// normal task reading from the new holder. Running and finished tasks
// are untouched — their degraded read already happened — and jobs not
// yet submitted pick the new holder up at submission.
func (m *repairManager) restoreTask(ref RepairedTask, holder topology.NodeID) {
	if ref.Job < 0 || ref.Job >= len(m.s.jobs) {
		return
	}
	js := m.s.jobs[ref.Job]
	if ref.Task < 0 || ref.Task >= len(js.spec.Tasks) {
		return
	}
	if !js.submitted {
		if js.repairedHolder == nil {
			js.repairedHolder = make(map[int]topology.NodeID)
		}
		js.repairedHolder[ref.Task] = holder
		return
	}
	if js.finishedJ {
		return
	}
	t := js.sj.Tasks()[ref.Task]
	if !t.Assigned() && t.Lost {
		js.sj.Recover(t, holder)
		m.s.ensureScheduled(js)
	}
}

// onFailure reacts to a mid-run failure: in-flight repairs touching a
// dead node are cancelled and their stripes re-queued at boosted
// priority, then a fresh scan is armed for the new losses. Called from
// injectFailure, which never runs inside a network callback, so flow
// cancellation is safe here.
func (m *repairManager) onFailure(nodes []topology.NodeID) {
	if m.s.err != nil {
		return
	}
	dead := func(id topology.NodeID) bool { return !m.s.cluster.Alive(id) }

	keys := make([]repair.Key, 0, len(m.active))
	for k := range m.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Stripe < keys[j].Stripe
	})
	for _, k := range keys {
		ar := m.active[k]
		if !m.repairAffected(ar, dead) {
			continue
		}
		for _, f := range ar.flows {
			m.s.net.Cancel(f)
		}
		delete(m.active, k)
		remaining := 0
		for i := range ar.plan.Blocks {
			if !ar.done[i] {
				remaining++
			}
		}
		if remaining == 0 {
			continue
		}
		// Re-queue boosted. Lost/spare reflect the pre-failure plan; the
		// scan below refreshes them (Upsert keeps the boost and queue
		// position), and the launch-time re-plan decides what is actually
		// left to rebuild.
		requeued := repair.StripePlan{
			Key:  k,
			N:    ar.plan.N,
			K:    ar.plan.K,
			Lost: remaining,
		}
		for i, bp := range ar.plan.Blocks {
			if !ar.done[i] {
				requeued.Blocks = append(requeued.Blocks, bp)
			}
		}
		m.enqueue(requeued, "requeue", true)
	}
	m.scheduleScan(nodes)
	m.schedulePump()
}

// repairAffected reports whether a failure touched this repair: a
// source flow still in flight lost an endpoint, or an uncommitted
// block's destination died.
func (m *repairManager) repairAffected(ar *activeRepair, dead func(topology.NodeID) bool) bool {
	for _, f := range ar.flows {
		if !f.Finished() && (dead(f.Src) || dead(f.Dst)) {
			return true
		}
	}
	for i, bp := range ar.plan.Blocks {
		if !ar.done[i] && dead(bp.Dest) {
			return true
		}
	}
	return false
}
