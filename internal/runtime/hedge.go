package runtime

import (
	"fmt"
	"math"

	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// HedgePolicy configures redundant-request handling for degraded-read
// fan-ins, after the fork-join analyses of the MDS-queue line of work: a
// degraded task needs any k blocks of its stripe, so fetching more than k
// and keeping the first k to arrive trades extra network volume for tail
// latency. The zero value disables both mechanisms and leaves the fan-in
// path bit-identical to the unhedged runtime (pinned by the seed-golden
// tests).
type HedgePolicy struct {
	// Extra (the Δ of k+Δ) is the number of spare sources launched
	// eagerly alongside the k required ones. The read completes when any
	// k of the k+Δ flows finish; the stragglers are cancelled.
	Extra int
	// HedgeQuantile, when > 0, enables deadline hedging: each fan-in
	// flow gets a deadline at this quantile of the observed per-flow
	// latencies (scaled by HedgeMultiplier), and a flow that outlives
	// its deadline triggers a standby source launch. Deadlines are only
	// armed once HedgeMinSamples latencies have been observed.
	HedgeQuantile float64
	// HedgeMinSamples is the number of observed flow latencies required
	// before deadline hedging arms (default 8).
	HedgeMinSamples int
	// HedgeMultiplier scales the quantile estimate into the deadline
	// (default 1). Values > 1 hedge later and waste less; < 1 hedges
	// eagerly.
	HedgeMultiplier float64
}

// Active reports whether any hedging mechanism is enabled. When false the
// runtime takes the original fan-in path untouched.
func (h HedgePolicy) Active() bool { return h.Extra > 0 || h.HedgeQuantile > 0 }

// Validate rejects malformed policies.
func (h HedgePolicy) Validate() error {
	if h.Extra < 0 {
		return fmt.Errorf("hedge: Extra must be >= 0, got %d", h.Extra)
	}
	if h.HedgeQuantile < 0 || h.HedgeQuantile >= 1 || math.IsNaN(h.HedgeQuantile) {
		return fmt.Errorf("hedge: HedgeQuantile must be in [0,1), got %v", h.HedgeQuantile)
	}
	if h.HedgeMinSamples < 0 {
		return fmt.Errorf("hedge: HedgeMinSamples must be >= 0, got %d", h.HedgeMinSamples)
	}
	if h.HedgeMultiplier < 0 || math.IsNaN(h.HedgeMultiplier) {
		return fmt.Errorf("hedge: HedgeMultiplier must be >= 0, got %v", h.HedgeMultiplier)
	}
	return nil
}

// minSamples returns HedgeMinSamples with its default applied.
func (h HedgePolicy) minSamples() int {
	if h.HedgeMinSamples <= 0 {
		return 8
	}
	return h.HedgeMinSamples
}

// multiplier returns HedgeMultiplier with its default applied.
func (h HedgePolicy) multiplier() float64 {
	if h.HedgeMultiplier <= 0 {
		return 1
	}
	return h.HedgeMultiplier
}

// HedgedBackend is an optional Backend extension required when a
// HedgePolicy is active: SpareSources returns up to max additional
// degraded-read transfers for the fan-in most recently planned by
// PlanInput for (job, task) on node — surviving stripe blocks beyond the
// k already picked. Implementations must be deterministic (no fresh RNG
// draws) so hedged and unhedged runs share identical random streams, and
// may return fewer than max (or none) when the stripe has no spares
// left.
type HedgedBackend interface {
	SpareSources(job, task int, node topology.NodeID, max int) ([]Transfer, error)
}

// launchHedgedFanIn admits a degraded fan-in under an active hedge
// policy: the k required transfers plus up to Extra eager spares race,
// the first k completions win, and the rest are cancelled with their
// partial bytes recorded as waste. Remaining spares form the standby
// pool for deadline hedges. Emits EvDegradedPlan for the eager pool.
func (s *state) launchHedgedFanIn(rm *runningMap, transfers []Transfer, id topology.NodeID) {
	h := s.p.Hedge
	wantSpares := h.Extra
	if h.HedgeQuantile > 0 {
		// At most one hedge per in-flight flow can ever fire.
		wantSpares += len(transfers) + h.Extra
	}
	spares, err := s.hedged.SpareSources(rm.js.idx, rm.task.Index, id, wantSpares)
	if err != nil {
		s.fail(err)
		return
	}
	eager := h.Extra
	if eager > len(spares) {
		eager = len(spares)
	}
	pool := make([]Transfer, 0, len(transfers)+eager)
	pool = append(pool, transfers...)
	pool = append(pool, spares[:eager]...)
	rm.standby = spares[eager:]
	rm.need = len(transfers)

	var total float64
	for _, t := range pool {
		total += t.Bytes
	}
	pe := s.ev(trace.EvDegradedPlan)
	pe.Job = rm.js.idx
	pe.Task = rm.task.Index
	pe.Node = int(id)
	pe.N = len(pool)
	pe.Bytes = total
	s.emit(pe)

	if rm.need == 0 {
		s.startProcessing(rm)
		return
	}
	reqs := make([]netsim.FlowReq, len(pool))
	for i, tr := range pool {
		reqs[i] = netsim.FlowReq{Src: tr.Src, Dst: id, Bytes: tr.Bytes,
			Done: func(f *netsim.Flow) { s.hedgedFlowDone(rm, f) }}
	}
	rm.flows = s.net.StartFlows(reqs)
	if deadline, ok := s.hedgeDeadline(); ok {
		for _, f := range rm.flows {
			s.armHedgeTimer(rm, f, deadline)
		}
	}
}

// hedgedFlowDone is the per-flow completion callback of a hedged fan-in:
// it records the flow's latency, and on the need-th completion cancels
// the still-running losers (recording their waste), closes the degraded
// read, and starts processing.
func (s *state) hedgedFlowDone(rm *runningMap, f *netsim.Flow) {
	now := s.eng.Now()
	rm.got++
	lat := now - f.StartedAt
	s.hedgeLat = append(s.hedgeLat, lat)
	e := s.ev(trace.EvFlowLatency)
	e.Job = rm.js.idx
	e.Task = rm.task.Index
	e.Node = int(rm.node)
	e.Src = int(f.Src)
	e.Class = "won"
	e.Bytes = f.Bytes
	e.N = f.ID
	e.Dur = lat
	s.emit(e)
	if rm.got < rm.need {
		return
	}
	// The k-th source arrived: every other flow is now redundant. The
	// network recomputed before this callback, so Remaining() is exact
	// and Bytes-Remaining() is the volume a loser already moved (waste).
	for _, lf := range rm.flows {
		if lf.Finished() {
			continue
		}
		le := s.ev(trace.EvFlowLatency)
		le.Job = rm.js.idx
		le.Task = rm.task.Index
		le.Node = int(rm.node)
		le.Src = int(lf.Src)
		le.Class = "lost"
		le.Bytes = lf.Bytes - lf.Remaining()
		le.N = lf.ID
		le.Dur = now - lf.StartedAt
		s.emit(le)
		s.net.Cancel(lf)
	}
	s.cancelHedgeTimers(rm)
	de := s.ev(trace.EvDegradedDone)
	de.Job = rm.js.idx
	de.Task = rm.task.Index
	de.Node = int(rm.node)
	s.emit(de)
	s.startProcessing(rm)
}

// hedgeDeadline returns the current per-flow deadline estimate, or false
// while hedging is off or too few latencies have been observed.
func (s *state) hedgeDeadline() (float64, bool) {
	h := s.p.Hedge
	if h.HedgeQuantile <= 0 || len(s.hedgeLat) < h.minSamples() {
		return 0, false
	}
	return stats.Quantile(s.hedgeLat, h.HedgeQuantile) * h.multiplier(), true
}

// armHedgeTimer schedules a deadline check for one fan-in flow. Timers
// are tracked on the running map so requeueRunning can cancel them.
func (s *state) armHedgeTimer(rm *runningMap, f *netsim.Flow, deadline float64) {
	var ev *sim.Event
	ev = s.eng.Schedule(deadline, func() {
		rm.dropHedgeTimer(ev)
		s.hedgeFire(rm, f, deadline)
	})
	rm.hedgeTimers = append(rm.hedgeTimers, ev)
}

// hedgeFire launches a standby source for a flow that outlived its
// deadline. No-ops when the run errored, the task is no longer running
// (requeued), the flow finished in time, or the standby pool is dry.
func (s *state) hedgeFire(rm *runningMap, f *netsim.Flow, deadline float64) {
	if s.err != nil || s.running[rm.task] != rm {
		return
	}
	if f.Finished() || rm.got >= rm.need || len(rm.standby) == 0 {
		return
	}
	sp := rm.standby[0]
	rm.standby = rm.standby[1:]
	he := s.ev(trace.EvHedgeLaunch)
	he.Job = rm.js.idx
	he.Task = rm.task.Index
	he.Node = int(rm.node)
	he.Src = int(sp.Src)
	he.Bytes = sp.Bytes
	he.N = f.ID
	he.Dur = deadline
	s.emit(he)
	nf := s.net.StartFlows([]netsim.FlowReq{{Src: sp.Src, Dst: rm.node, Bytes: sp.Bytes,
		Done: func(g *netsim.Flow) { s.hedgedFlowDone(rm, g) }}})
	rm.flows = append(rm.flows, nf...)
	if deadline, ok := s.hedgeDeadline(); ok {
		s.armHedgeTimer(rm, nf[0], deadline)
	}
}

// cancelHedgeTimers cancels every pending deadline check of a fan-in.
func (s *state) cancelHedgeTimers(rm *runningMap) {
	for _, ev := range rm.hedgeTimers {
		s.eng.Cancel(ev)
	}
	rm.hedgeTimers = nil
}

// dropHedgeTimer forgets a timer that just fired, keeping the tracked
// set to pending timers only.
func (rm *runningMap) dropHedgeTimer(ev *sim.Event) {
	for i, t := range rm.hedgeTimers {
		if t == ev {
			rm.hedgeTimers = append(rm.hedgeTimers[:i], rm.hedgeTimers[i+1:]...)
			return
		}
	}
}
