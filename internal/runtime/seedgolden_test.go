package runtime_test

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// The seed-golden tests pin the FIFO job-scheduling policy to the exact
// trace streams the pre-jobsched runtime produced (committed under
// testdata/ before the refactor). Unlike the decision-level golden tests
// above, these compare *every* event — heartbeats, slot-idle markers,
// transfers, shuffle, reduce lifecycle — over a multi-job scenario with
// staggered submissions, reducers, and a mid-run failure, so any drift in
// queue ordering, pruning, requeue insertion, or reducer assignment shows
// up as a diff. Events introduced after the seed (the job-queue pair) are
// filtered out before comparing.
//
// Regenerate with: go test ./internal/runtime -run SeedGolden -update-seed-golden
var updateSeedGolden = flag.Bool("update-seed-golden", false,
	"rewrite the seed golden trace files under testdata/")

// seedNewEventTypes are event types added after the seed traces were
// recorded; they are stripped from live streams before comparison.
var seedNewEventTypes = []trace.Type{"job-queued", "job-grant", "flow-latency", "hedge-launch"}

func dropSeedNewEvents(events []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(events))
	for _, e := range events {
		skip := false
		for _, typ := range seedNewEventTypes {
			if e.Type == typ {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, e)
		}
	}
	return out
}

var seedGoldenKinds = []sched.Kind{sched.KindLF, sched.KindBDF, sched.KindEDF}

// seedTraceMapred runs the simulated backend over a three-job scenario —
// staggered arrivals, two tenants, reducers, a map-only job, and a node
// failure injected mid-map-phase — once per scheduler kind, all into one
// labeled stream.
func seedTraceMapred(t *testing.T) []trace.Event {
	t.Helper()
	var all []trace.Event
	for _, kind := range seedGoldenKinds {
		var mem trace.Memory
		cfg := mapred.Config{
			Nodes:              goldenNodes,
			Racks:              goldenRacks,
			MapSlotsPerNode:    goldenMapSlots,
			ReduceSlotsPerNode: 1,
			RackBps:            netsim.Gbps,
			N:                  4,
			K:                  2,
			BlockSizeBytes:     64e6,
			NumBlocks:          goldenBlocks,
			Policy:             placement.RoundRobin{},
			Scheduler:          kind,
			HeartbeatInterval:  goldenHeartbeat,
			FailNodes:          []topology.NodeID{1},
			FailAt:             8,
			Seed:               7,
			Trace:              &mem,
			TraceLabel:         kind.String(),
		}
		jobs := []mapred.JobSpec{
			{
				Name:           "tenant-a/j0",
				NumBlocks:      16,
				MapTime:        mapred.Dist{Mean: 5, Std: 0.5},
				ReduceTime:     mapred.Dist{Mean: 4, Std: 0.4},
				NumReduceTasks: 2,
				ShuffleRatio:   0.2,
				SubmitAt:       0,
			},
			{
				Name:           "tenant-b/j1",
				NumBlocks:      8,
				MapTime:        mapred.Dist{Mean: 4, Std: 0.3},
				ReduceTime:     mapred.Dist{Mean: 3, Std: 0.2},
				NumReduceTasks: 1,
				ShuffleRatio:   0.3,
				SubmitAt:       6,
			},
			{
				Name:      "tenant-a/j2",
				NumBlocks: 6,
				MapTime:   mapred.Dist{Mean: 3, Std: 0.2},
				SubmitAt:  11,
			},
		}
		if _, err := mapred.Run(cfg, jobs); err != nil {
			t.Fatalf("mapred %v: %v", kind, err)
		}
		all = append(all, mem.Events()...)
	}
	return all
}

// seedTraceMinimr runs the real-bytes backend over the matching scenario:
// three staggered jobs (two with reducers, one map-only) on a DFS with a
// pre-failed node, once per scheduler kind.
func seedTraceMinimr(t *testing.T) []trace.Event {
	t.Helper()
	var all []trace.Event
	for _, kind := range seedGoldenKinds {
		cluster, err := topology.New(topology.Config{
			Nodes:              goldenNodes,
			Racks:              goldenRacks,
			MapSlotsPerNode:    goldenMapSlots,
			ReduceSlotsPerNode: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := dfs.New(cluster, erasure.MustNew(4, 2), goldenBlockSize,
			placement.RoundRobin{}, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		text := strings.Repeat("alpha beta gamma delta epsilon\n", 40)
		for _, f := range []struct {
			name   string
			blocks int
		}{{"in0", 16}, {"in1", 8}, {"in2", 6}} {
			data := []byte(strings.Repeat(text, f.blocks*goldenBlockSize/len(text)+1))[:f.blocks*goldenBlockSize]
			if _, err := fs.Write(f.name, data); err != nil {
				t.Fatal(err)
			}
		}
		cluster.FailNode(1)

		var mem trace.Memory
		opts := minimr.Options{
			Scheduler:         kind,
			RackBps:           netsim.Gbps,
			HeartbeatInterval: goldenHeartbeat,
			Seed:              2,
			Trace:             &mem,
			TraceLabel:        kind.String(),
		}
		wordCount := func(block []byte, emit func(k, v string)) {
			for _, w := range strings.Fields(string(block)) {
				emit(w, "1")
			}
		}
		countReduce := func(key string, values []string, emit func(k, v string)) {
			emit(key, strconv.Itoa(len(values)))
		}
		jobs := []minimr.Job{
			{
				Name: "tenant-a/j0", Input: "in0",
				Map: wordCount, Reduce: countReduce, NumReducers: 2,
				MapCost:    minimr.Cost{Fixed: 5},
				ReduceCost: minimr.Cost{Fixed: 4},
				SubmitAt:   0,
			},
			{
				Name: "tenant-b/j1", Input: "in1",
				Map: wordCount, Reduce: countReduce, NumReducers: 1,
				MapCost:    minimr.Cost{Fixed: 4},
				ReduceCost: minimr.Cost{Fixed: 3},
				SubmitAt:   6,
			},
			{
				Name: "tenant-a/j2", Input: "in2",
				Map:      wordCount,
				MapCost:  minimr.Cost{Fixed: 3},
				SubmitAt: 11,
			},
		}
		if _, err := minimr.Run(fs, opts, jobs); err != nil {
			t.Fatalf("minimr %v: %v", kind, err)
		}
		all = append(all, mem.Events()...)
	}
	return all
}

func seedGoldenCompare(t *testing.T, file string, run func(*testing.T) []trace.Event) {
	t.Helper()
	path := filepath.Join("testdata", file)
	live := dropSeedNewEvents(run(t))

	if *updateSeedGolden {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		sink := trace.NewJSONL(f)
		for _, e := range live {
			sink.Emit(e)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d events to %s", len(live), path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("seed golden missing (regenerate with -update-seed-golden): %v", err)
	}
	defer f.Close()
	want, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}

	if len(live) != len(want) {
		t.Errorf("event count %d, want %d (seed)", len(live), len(want))
	}
	n := len(live)
	if len(want) < n {
		n = len(want)
	}
	diffs := 0
	for i := 0; i < n; i++ {
		if live[i] != want[i] {
			t.Errorf("event %d diverges from seed:\n  live: %+v\n  seed: %+v", i, live[i], want[i])
			if diffs++; diffs >= 10 {
				t.Fatalf("more than 10 divergent events; aborting")
			}
		}
	}

	// The rebuilt results must also agree per scheduler kind: identical
	// events imply identical makespan/bytes-moved, but check explicitly so
	// a filtering bug here can't mask a regression.
	for _, kind := range seedGoldenKinds {
		label := kind.String()
		var lk, wk []trace.Event
		for _, e := range live {
			if e.Run == label {
				lk = append(lk, e)
			}
		}
		for _, e := range want {
			if e.Run == label {
				wk = append(wk, e)
			}
		}
		lr, wr := runtime.BuildResult(lk), runtime.BuildResult(wk)
		if lr.Makespan != wr.Makespan || lr.BytesMoved != wr.BytesMoved {
			t.Errorf("%s: makespan/bytes = %.6f/%.0f, seed %.6f/%.0f",
				label, lr.Makespan, lr.BytesMoved, wr.Makespan, wr.BytesMoved)
		}
	}
}

func TestSeedGoldenFIFOMapred(t *testing.T) {
	seedGoldenCompare(t, "seed_fifo_mapred.jsonl", seedTraceMapred)
}

func TestSeedGoldenFIFOMinimr(t *testing.T) {
	seedGoldenCompare(t, "seed_fifo_minimr.jsonl", seedTraceMinimr)
}
