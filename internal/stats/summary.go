package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is the five-number summary plus mean and outliers, matching the
// boxplots in the paper's Figures 7 and 8 (min, lower quartile, median,
// upper quartile, max, and 1.5*IQR outliers).
type Summary struct {
	N        int
	Mean     float64
	Min      float64
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64
	Outliers []float64
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (NaN for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// xs need not be sorted. Returns NaN when xs is empty.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile on already-sorted input, skipping the copy and
// sort. Callers that hold a sorted slice (Summarize sorts once and needs
// three quantiles) use this to avoid re-copying and re-sorting per call.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantiles returns the q-quantile of xs for every q in qs, sorting xs
// once (Quantile copies and sorts per call; percentile tables over large
// samples want one sort). Each result matches Quantile(xs, q) exactly,
// including the NaN-for-empty and clamping behavior.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summarize computes the boxplot summary of xs. Whiskers extend to the most
// extreme points within 1.5*IQR of the quartiles; points beyond are
// reported as outliers (and excluded from Min/Max, as in standard boxplots).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1 := quantileSorted(s, 0.25)
	q3 := quantileSorted(s, 0.75)
	iqr := q3 - q1
	loFence := q1 - 1.5*iqr
	hiFence := q3 + 1.5*iqr
	sum := Summary{
		N:      len(s),
		Mean:   Mean(s),
		Q1:     q1,
		Median: quantileSorted(s, 0.5),
		Q3:     q3,
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	for _, x := range s {
		if x < loFence || x > hiFence {
			sum.Outliers = append(sum.Outliers, x)
			continue
		}
		if x < sum.Min {
			sum.Min = x
		}
		if x > sum.Max {
			sum.Max = x
		}
	}
	if math.IsInf(sum.Min, 1) { // everything was an outlier (degenerate)
		sum.Min, sum.Max = s[0], s[len(s)-1]
		sum.Outliers = nil
	}
	// Whiskers extend outward from the quartiles: when every point on one
	// side of a quartile is an outlier, the whisker collapses onto the
	// quartile rather than crossing it.
	if sum.Min > sum.Q1 {
		sum.Min = sum.Q1
	}
	if sum.Max < sum.Q3 {
		sum.Max = sum.Q3
	}
	return sum
}

// String renders the summary on one line, e.g.
// "n=30 mean=1.52 box=[1.31 1.44 1.50 1.58 1.73] outliers=2".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f box=[%.3f %.3f %.3f %.3f %.3f] outliers=%d",
		s.N, s.Mean, s.Min, s.Q1, s.Median, s.Q3, s.Max, len(s.Outliers))
}

// ReductionPercent returns the percentage reduction of got relative to base:
// 100 * (base - got) / base. The paper reports e.g. "EDF reduces the
// runtime of LF by 32.9%".
func ReductionPercent(base, got float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (base - got) / base
}

// IncreasePercent returns 100 * (got - base) / base.
func IncreasePercent(base, got float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (got - base) / base
}

// Ratios divides each element of num by the matching element of den
// (element-wise normalization, e.g. failure-mode runtime over normal-mode
// runtime). Panics on length mismatch: that is a harness bug.
func Ratios(num, den []float64) []float64 {
	if len(num) != len(den) {
		panic(fmt.Sprintf("stats: Ratios length mismatch %d vs %d", len(num), len(den)))
	}
	out := make([]float64, len(num))
	for i := range num {
		out[i] = num[i] / den[i]
	}
	return out
}

// AsciiBox renders a crude one-line ASCII boxplot of the summary scaled to
// [lo, hi] over width characters. Used by cmd/dfexp for eyeballing figures
// without a plotting stack.
func AsciiBox(s Summary, lo, hi float64, width int) string {
	if width < 10 || hi <= lo {
		return ""
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := pos(s.Min); i <= pos(s.Max); i++ {
		row[i] = '-'
	}
	for i := pos(s.Q1); i <= pos(s.Q3); i++ {
		row[i] = '='
	}
	row[pos(s.Min)] = '|'
	row[pos(s.Max)] = '|'
	row[pos(s.Median)] = '#'
	return strings.TrimRight(string(row), " ")
}
