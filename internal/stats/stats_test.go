package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestNormalMomentsAndTruncation(t *testing.T) {
	g := NewRNG(1)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Normal(20, 1)
		if v <= 0 {
			t.Fatal("Normal must be positive")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-20) > 0.1 {
		t.Fatalf("Normal(20,1) mean = %v", mean)
	}
	// Heavy truncation: mean 1, std 10 — all draws still positive.
	for i := 0; i < 1000; i++ {
		if v := g.Normal(1, 10); v <= 0 {
			t.Fatalf("truncated draw %v <= 0", v)
		}
	}
	if v := g.Normal(0, 1); v <= 0 {
		t.Fatal("zero-mean draws still must be positive")
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(2)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Exponential(120)
		if v < 0 {
			t.Fatal("Exponential must be non-negative")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-120) > 3 {
		t.Fatalf("Exponential(120) mean = %v", mean)
	}
}

func TestPickK(t *testing.T) {
	g := NewRNG(3)
	got := g.PickK(10, 4)
	if len(got) != 4 {
		t.Fatalf("PickK(10,4) len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad pick %v", got)
		}
		seen[v] = true
	}
	if len(g.PickK(3, 5)) != 3 {
		t.Fatal("PickK must clamp k to n")
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(4)
	f1 := g.Fork()
	g2 := NewRNG(4)
	f2 := g2.Fork()
	if f1.Float64() != f2.Float64() {
		t.Fatal("forks of identical parents must match")
	}
}

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Median(xs); m != 3 {
		t.Fatalf("Median = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("degenerate inputs must give NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25}, {-1, 1}, {2, 4},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	qs := []float64{-1, 0, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 2}
	inputs := [][]float64{
		{4, 1, 3, 2},
		{7},
		{2, 2, 2, 2, 2},
		{5, math.NaN(), 1, 3}, // NaN input: whatever Quantile does, match it
	}
	for _, xs := range inputs {
		got := Quantiles(xs, qs...)
		if len(got) != len(qs) {
			t.Fatalf("Quantiles(%v) returned %d values, want %d", xs, len(got), len(qs))
		}
		for i, q := range qs {
			want := Quantile(xs, q)
			same := got[i] == want || (math.IsNaN(got[i]) && math.IsNaN(want))
			if !same {
				t.Errorf("Quantiles(%v)[%v] = %v, Quantile = %v", xs, q, got[i], want)
			}
		}
	}
}

func TestQuantilesEmpty(t *testing.T) {
	for _, got := range Quantiles(nil, 0, 0.5, 1) {
		if !math.IsNaN(got) {
			t.Fatalf("empty Quantiles must be all-NaN, got %v", got)
		}
	}
	if got := Quantiles([]float64{1, 2, 3}); len(got) != 0 {
		t.Fatalf("no quantiles requested, got %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	s := Summarize(xs)
	if s.N != 10 {
		t.Fatalf("N = %d", s.N)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Fatalf("outliers = %v", s.Outliers)
	}
	if s.Max != 9 {
		t.Fatalf("Max (whisker) = %v, want 9", s.Max)
	}
	if s.Min != 1 {
		t.Fatalf("Min = %v", s.Min)
	}
	if s.Median != 5.5 {
		t.Fatalf("Median = %v", s.Median)
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
}

func TestSummarizeEmptyAndDegenerate(t *testing.T) {
	s := Summarize(nil)
	if !math.IsNaN(s.Mean) {
		t.Fatal("empty summary must be NaN")
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Fatalf("singleton summary wrong: %+v", one)
	}
}

func TestSummarizeProperty(t *testing.T) {
	// Invariants: Min <= Q1 <= Median <= Q3 <= Max, whiskers within data
	// range, all points accounted for.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		s := Summarize(raw)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReductionIncreasePercent(t *testing.T) {
	if got := ReductionPercent(100, 75); got != 25 {
		t.Fatalf("ReductionPercent = %v", got)
	}
	if got := IncreasePercent(100, 135); got != 35 {
		t.Fatalf("IncreasePercent = %v", got)
	}
	if !math.IsNaN(ReductionPercent(0, 5)) || !math.IsNaN(IncreasePercent(0, 5)) {
		t.Fatal("zero base must be NaN")
	}
}

func TestRatios(t *testing.T) {
	got := Ratios([]float64{2, 9}, []float64{1, 3})
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("Ratios = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	Ratios([]float64{1}, []float64{1, 2})
}

func TestAsciiBox(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	box := AsciiBox(s, 0, 6, 40)
	if box == "" {
		t.Fatal("AsciiBox must render")
	}
	if AsciiBox(s, 0, 6, 5) != "" || AsciiBox(s, 6, 0, 40) != "" {
		t.Fatal("invalid params must render empty")
	}
}

func TestSummarizeWhiskerCollapseCorner(t *testing.T) {
	// All points below Q1 are outliers: the low whisker collapses onto Q1
	// instead of crossing it (regression for a property-test finding).
	s := Summarize([]float64{0, 10, 10, 10})
	if s.Min > s.Q1 {
		t.Fatalf("whisker min %.2f crossed Q1 %.2f", s.Min, s.Q1)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 0 {
		t.Fatalf("outliers = %v, want [0]", s.Outliers)
	}
	// Mirror case for the high whisker.
	h := Summarize([]float64{10, 10, 10, 100})
	if h.Max < h.Q3 {
		t.Fatalf("whisker max %.2f below Q3 %.2f", h.Max, h.Q3)
	}
}

func TestPickKDeterminism(t *testing.T) {
	// Pins the exact draw stream of the partial-Fisher-Yates PickK for a
	// fixed seed: any change to the sampling algorithm (or to how many
	// draws it consumes) shows up here as a regression.
	g := NewRNG(42)
	cases := []struct {
		n, k int
		want []int
	}{
		{10, 4, []int{5, 9, 6, 4}},
		{100, 5, []int{23, 80, 71, 26, 84}},
		{7, 7, []int{0, 1, 5, 4, 3, 2, 6}},
	}
	for _, c := range cases {
		got := g.PickK(c.n, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("PickK(%d,%d) len = %d, want %d", c.n, c.k, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("PickK(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
	}
}

func TestPickKFullEqualsPerm(t *testing.T) {
	// k >= n must delegate to Perm: identical elements AND identical draw
	// stream, so callers that relied on PickK(n, n) keep byte-for-byte
	// reproducibility.
	for _, n := range []int{1, 2, 7, 20} {
		a := NewRNG(int64(n)).PickK(n, n)
		b := NewRNG(int64(n)).Perm(n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: PickK(n,n) = %v, Perm = %v", n, a, b)
			}
		}
		over := NewRNG(int64(n)).PickK(n, n+3)
		if len(over) != n {
			t.Fatalf("PickK must clamp k>n to n, got len %d", len(over))
		}
	}
}

func TestPickKDistinctAndUniform(t *testing.T) {
	g := NewRNG(7)
	const n, k, trials = 12, 5, 20000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		got := g.PickK(n, k)
		if len(got) != k {
			t.Fatalf("len = %d", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("bad pick %v", got)
			}
			seen[v] = true
			counts[v]++
		}
	}
	// Each element appears with probability k/n; allow 5% relative slack.
	want := float64(trials) * float64(k) / float64(n)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("element %d picked %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestPickKZeroAndNegative(t *testing.T) {
	g := NewRNG(1)
	if got := g.PickK(5, 0); len(got) != 0 {
		t.Fatalf("PickK(5,0) = %v, want empty", got)
	}
	if got := g.PickK(5, -2); len(got) != 0 {
		t.Fatalf("PickK(5,-2) = %v, want empty", got)
	}
}

func TestSummarizeQuartilesMatchQuantile(t *testing.T) {
	// Summarize's sorted-input fast path must emit exactly the same
	// quartiles as the public Quantile on the raw (unsorted) data.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Q1 == Quantile(xs, 0.25) &&
			s.Median == Quantile(xs, 0.5) &&
			s.Q3 == Quantile(xs, 0.75)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
