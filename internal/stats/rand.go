// Package stats provides the statistical utilities used across the
// reproduction: deterministic seeded random sources, the distributions the
// paper's simulator draws from (truncated normal task times, exponential
// job inter-arrivals), and boxplot-style summaries matching the paper's
// figures.
package stats

import "math/rand"

// RNG wraps math/rand.Rand with the distributions the simulator needs. All
// draws are deterministic given the seed, which the experiment harness
// relies on for reproducible boxplots.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Normal draws from N(mean, std) truncated at a small positive floor.
// The paper draws map/reduce processing times from normal distributions
// (e.g. mean 20 s, std 1 s); a non-positive sample would be meaningless, so
// draws are clamped to mean/100 (strictly positive for positive means).
func (g *RNG) Normal(mean, std float64) float64 {
	v := g.r.NormFloat64()*std + mean
	floor := mean / 100
	if floor <= 0 {
		floor = 1e-9
	}
	if v < floor {
		return floor
	}
	return v
}

// Exponential draws from an exponential distribution with the given mean
// (used for multi-job inter-arrival times, mean 120 s in the paper).
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Fork derives a new independent RNG from this one; useful to give each
// simulated component its own stream while staying reproducible.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// PickK returns k distinct uniformly chosen elements of [0, n).
//
// It runs a partial Fisher-Yates shuffle: O(k) time and O(k) space instead
// of the O(n) permutation it previously built and truncated. For k == n it
// delegates to Perm, which is the same distribution and draw stream as
// before. For k < n the result distribution is unchanged (each k-subset
// ordering remains equally likely) but the *draw stream* differs from the
// old implementation: only k Intn draws are consumed instead of n, so
// sequences of later draws from the same RNG shift relative to older
// versions. Committed experiment artifacts generated before this change may
// therefore differ textually; all tests and the golden backend-equivalence
// check are insensitive to the stream change.
func (g *RNG) PickK(n, k int) []int {
	if k >= n {
		return g.Perm(n)
	}
	if k <= 0 {
		return []int{}
	}
	// displaced[j] holds the current occupant of slot j for the slots we
	// have touched; untouched slots implicitly hold their own index.
	displaced := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + g.r.Intn(n-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}
