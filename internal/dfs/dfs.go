// Package dfs implements an in-memory erasure-coded distributed file
// system in the style of HDFS + HDFS-RAID: files are split into fixed-size
// blocks, grouped into stripes of k blocks, encoded into n-k parity blocks,
// and placed on cluster nodes by a placement policy.
//
// It serves two roles in the reproduction:
//
//   - degraded-read *planning* (PickDegradedSources), shared by the
//     discrete-event simulator, which only needs to know which nodes a
//     degraded task downloads from; and
//   - a real-bytes store used by the real-execution engine
//     (internal/minimr), where degraded reads genuinely reconstruct lost
//     blocks with Reed-Solomon arithmetic.
package dfs

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Source identifies one surviving block a degraded read downloads: the node
// holding it and its index within the stripe.
type Source struct {
	Node  topology.NodeID
	Index int
}

// SelectionStrategy chooses which k survivors a degraded read downloads.
type SelectionStrategy int

const (
	// RandomK picks k survivors uniformly at random — the conventional
	// degraded-read behaviour the paper's analysis assumes ("each degraded
	// task randomly picks k out of n-1 blocks").
	RandomK SelectionStrategy = iota + 1
	// PreferSameRack greedily prefers survivors in the reader's rack, then
	// fills with random remote survivors. Provided as an ablation of the
	// source-selection design choice.
	PreferSameRack
)

// String returns the strategy name.
func (s SelectionStrategy) String() string {
	switch s {
	case RandomK:
		return "random-k"
	case PreferSameRack:
		return "prefer-same-rack"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// PickDegradedSources selects the k surviving blocks of the stripe
// containing lost block b that a degraded read executing on node reader
// will download. It never selects block b itself (its holder failed).
func PickDegradedSources(c *topology.Cluster, p *placement.Placement, b erasure.BlockID,
	reader topology.NodeID, strategy SelectionStrategy, rng *stats.RNG) ([]Source, error) {
	return PickNSources(c, p, b, reader, p.K(), strategy, rng)
}

// PickNSources is PickDegradedSources with an explicit source count: codes
// with cheaper repairs (e.g. LRC local groups) read fewer than k blocks.
// The simulator uses it with Config.RepairBlockCount.
func PickNSources(c *topology.Cluster, p *placement.Placement, b erasure.BlockID,
	reader topology.NodeID, count int, strategy SelectionStrategy, rng *stats.RNG) ([]Source, error) {

	idx, holders := p.SurvivorsOf(c, b.Stripe)
	// SurvivorsOf only returns alive holders; the lost block's holder is
	// failed, but guard against a mid-recovery race where it is alive.
	survivors := make([]Source, 0, len(idx))
	for i := range idx {
		if idx[i] == b.Index {
			continue
		}
		survivors = append(survivors, Source{Node: holders[i], Index: idx[i]})
	}
	k := count
	if k <= 0 || k > p.N()-1 {
		return nil, fmt.Errorf("dfs: invalid source count %d for stripe width %d", count, p.N())
	}
	if len(survivors) < k {
		return nil, fmt.Errorf("dfs: stripe %d has %d survivors, need %d", b.Stripe, len(survivors), k)
	}
	switch strategy {
	case RandomK:
		picked := make([]Source, 0, k)
		for _, i := range rng.PickK(len(survivors), k) {
			picked = append(picked, survivors[i])
		}
		sort.Slice(picked, func(a, b int) bool { return picked[a].Index < picked[b].Index })
		return picked, nil
	case PreferSameRack:
		myRack := c.RackOf(reader)
		var near, far []Source
		for _, s := range survivors {
			if c.RackOf(s.Node) == myRack {
				near = append(near, s)
			} else {
				far = append(far, s)
			}
		}
		picked := make([]Source, 0, k)
		picked = append(picked, near...)
		if len(picked) > k {
			picked = picked[:k]
		} else if len(picked) < k {
			need := k - len(picked)
			for _, i := range rng.PickK(len(far), need) {
				picked = append(picked, far[i])
			}
		}
		sort.Slice(picked, func(a, b int) bool { return picked[a].Index < picked[b].Index })
		return picked, nil
	default:
		return nil, fmt.Errorf("dfs: unknown selection strategy %v", strategy)
	}
}

// SpareSources returns up to max surviving blocks of lost block b's
// stripe beyond the ones already picked as primary sources — candidates
// for redundant (hedged) degraded reads. The selection is deterministic:
// survivors not in used, in stripe-index order, no RNG draws, so hedged
// and unhedged runs consume identical random streams. Returns fewer than
// max (possibly none) when the stripe has no spares left.
func SpareSources(c *topology.Cluster, p *placement.Placement, b erasure.BlockID,
	used []Source, max int) []Source {

	if max <= 0 {
		return nil
	}
	taken := make(map[int]bool, len(used)+1)
	taken[b.Index] = true
	for _, s := range used {
		taken[s.Index] = true
	}
	idx, holders := p.SurvivorsOf(c, b.Stripe)
	spares := make([]Source, 0, len(idx))
	for i := range idx {
		if taken[idx[i]] {
			continue
		}
		spares = append(spares, Source{Node: holders[i], Index: idx[i]})
	}
	sort.Slice(spares, func(a, b int) bool { return spares[a].Index < spares[b].Index })
	if len(spares) > max {
		spares = spares[:max]
	}
	return spares
}

// PickRepairSources plans a degraded read under an arbitrary code: if the
// code is a LocalRepairer (e.g. LRC) and lost block b's entire local
// repair group survives, those blocks are read — typically far fewer than
// k. Otherwise it falls back to PickDegradedSources (any k survivors).
func PickRepairSources(c *topology.Cluster, code erasure.Coder, p *placement.Placement,
	b erasure.BlockID, reader topology.NodeID, strategy SelectionStrategy, rng *stats.RNG) ([]Source, error) {

	if lr, ok := code.(erasure.LocalRepairer); ok {
		if group, ok := lr.LocalRepairGroup(b.Index); ok {
			sources := make([]Source, 0, len(group))
			allAlive := true
			for _, idx := range group {
				holder := p.Holder(erasure.BlockID{Stripe: b.Stripe, Index: idx})
				if !c.Alive(holder) {
					allAlive = false
					break
				}
				sources = append(sources, Source{Node: holder, Index: idx})
			}
			if allAlive {
				return sources, nil
			}
		}
	}
	return PickDegradedSources(c, p, b, reader, strategy, rng)
}

// CrossRackSources counts how many of the sources are outside the reader's
// rack — the transfers that consume rack up/down bandwidth.
func CrossRackSources(c *topology.Cluster, reader topology.NodeID, sources []Source) int {
	cnt := 0
	for _, s := range sources {
		if c.RackOf(s.Node) != c.RackOf(reader) {
			cnt++
		}
	}
	return cnt
}

// File is one erasure-coded file: its placement plus (optionally) the
// actual block contents, including parity.
type File struct {
	Name string
	// Size is the original byte length (before padding).
	Size int
	// Placement maps every block of every stripe to its node.
	Placement *placement.Placement

	// blocks[stripe][index] holds the block bytes; nil in metadata-only
	// files.
	blocks [][][]byte
}

// NumStripes returns the stripe count.
func (f *File) NumStripes() int { return f.Placement.NumStripes() }

// NativeBlocks returns the file's native BlockIDs in order.
func (f *File) NativeBlocks() []erasure.BlockID { return f.Placement.NativeBlocks() }

// HasData reports whether block contents are stored.
func (f *File) HasData() bool { return f.blocks != nil }

// FS is the file system. It is not safe for concurrent use.
type FS struct {
	cluster   *topology.Cluster
	code      erasure.Coder
	blockSize int
	policy    placement.Policy
	rng       *stats.RNG

	files map[string]*File
	names []string

	// encodeParallelism is the worker count for stripe encoding in Write.
	// 0 means GOMAXPROCS. Stripes are independent, so the worker count
	// changes wall-clock time only, never the encoded bytes.
	encodeParallelism int
}

// New builds an empty file system over the cluster. policy defaults to
// RackConstrainedRandom when nil.
func New(c *topology.Cluster, code erasure.Coder, blockSize int, policy placement.Policy, rng *stats.RNG) (*FS, error) {
	if c == nil || code == nil {
		return nil, errors.New("dfs: nil cluster or code")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %d", blockSize)
	}
	if policy == nil {
		policy = placement.RackConstrainedRandom{}
	}
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	return &FS{
		cluster:   c,
		code:      code,
		blockSize: blockSize,
		policy:    policy,
		rng:       rng,
		files:     make(map[string]*File),
	}, nil
}

// Code returns the erasure code in use.
func (fs *FS) Code() erasure.Coder { return fs.code }

// BlockSize returns the block size in bytes.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Cluster returns the underlying cluster.
func (fs *FS) Cluster() *topology.Cluster { return fs.cluster }

// SetEncodeParallelism sets the number of workers Write uses to encode
// stripes. p <= 0 restores the default (GOMAXPROCS). The encoded output is
// byte-identical for every worker count: placement and RNG draws happen
// before encoding, and each stripe is encoded independently.
func (fs *FS) SetEncodeParallelism(p int) {
	if p < 0 {
		p = 0
	}
	fs.encodeParallelism = p
}

// encodeWorkers resolves the effective worker count for n stripes.
func (fs *FS) encodeWorkers(n int) int {
	w := fs.encodeParallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Write stores data as an erasure-coded file: split into stripes, encode
// parity for real, and place blocks via the policy. Overwriting an existing
// name is an error.
func (fs *FS) Write(name string, data []byte) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("dfs: empty file %q", name)
	}
	stripes, err := erasure.SplitStripes(data, fs.code.K(), fs.blockSize)
	if err != nil {
		return nil, err
	}
	place, err := fs.policy.Place(fs.cluster, len(stripes), fs.code.N(), fs.code.K(), fs.rng)
	if err != nil {
		return nil, fmt.Errorf("dfs: placing %q: %w", name, err)
	}
	blocks, err := fs.encodeStripes(name, stripes)
	if err != nil {
		return nil, err
	}
	f := &File{Name: name, Size: len(data), Placement: place, blocks: blocks}
	fs.files[name] = f
	fs.names = append(fs.names, name)
	return f, nil
}

// encodeStripes encodes every stripe, fanning out across encodeWorkers
// goroutines. Each worker owns a disjoint set of stripe indices, so the
// result is byte-identical to a serial loop; errors are collected per
// stripe and the lowest-index error is reported, matching what a serial
// loop would have surfaced first.
func (fs *FS) encodeStripes(name string, stripes [][][]byte) ([][][]byte, error) {
	blocks := make([][][]byte, len(stripes))
	errs := make([]error, len(stripes))
	workers := fs.encodeWorkers(len(stripes))
	if workers <= 1 {
		for s, native := range stripes {
			blocks[s], errs[s] = fs.code.EncodeStripe(native)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= len(stripes) {
						return
					}
					blocks[s], errs[s] = fs.code.EncodeStripe(stripes[s])
				}
			}()
		}
		wg.Wait()
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dfs: encoding stripe %d of %q: %w", s, name, err)
		}
	}
	return blocks, nil
}

// CreateMeta registers a metadata-only file of numBlocks native blocks
// (no contents). Used by the discrete-event simulator, which only needs
// placement.
func (fs *FS) CreateMeta(name string, numBlocks int) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if numBlocks <= 0 {
		return nil, fmt.Errorf("dfs: file %q needs positive block count", name)
	}
	numStripes := (numBlocks + fs.code.K() - 1) / fs.code.K()
	place, err := fs.policy.Place(fs.cluster, numStripes, fs.code.N(), fs.code.K(), fs.rng)
	if err != nil {
		return nil, fmt.Errorf("dfs: placing %q: %w", name, err)
	}
	f := &File{Name: name, Size: numBlocks * fs.blockSize, Placement: place}
	fs.files[name] = f
	fs.names = append(fs.names, name)
	return f, nil
}

// File returns the named file.
func (fs *FS) File(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	return f, nil
}

// Files returns file names in creation order.
func (fs *FS) Files() []string { return append([]string(nil), fs.names...) }

// ErrBlockLost is returned by ReadBlock when the holder has failed; the
// caller should fall back to DegradedRead.
var ErrBlockLost = errors.New("dfs: block holder failed; degraded read required")

// ReadBlock returns the stored bytes of a block whose holder is alive.
func (fs *FS) ReadBlock(name string, b erasure.BlockID) ([]byte, error) {
	f, err := fs.File(name)
	if err != nil {
		return nil, err
	}
	if !f.HasData() {
		return nil, fmt.Errorf("dfs: file %q is metadata-only", name)
	}
	if !fs.cluster.Alive(f.Placement.Holder(b)) {
		return nil, fmt.Errorf("%w: %v", ErrBlockLost, b)
	}
	return f.blocks[b.Stripe][b.Index], nil
}

// DegradedRead reconstructs a lost block for real: it picks k surviving
// sources, decodes with the Reed-Solomon code, and returns the recovered
// bytes plus the sources used (for the caller to charge network time).
// It never touches the failed holder's copy.
func (fs *FS) DegradedRead(name string, b erasure.BlockID, reader topology.NodeID,
	strategy SelectionStrategy, rng *stats.RNG) ([]byte, []Source, error) {

	f, err := fs.File(name)
	if err != nil {
		return nil, nil, err
	}
	if !f.HasData() {
		return nil, nil, fmt.Errorf("dfs: file %q is metadata-only", name)
	}
	sources, err := PickRepairSources(fs.cluster, fs.code, f.Placement, b, reader, strategy, rng)
	if err != nil {
		return nil, nil, err
	}
	srcIdx := make([]int, len(sources))
	shards := make([][]byte, len(sources))
	for i, s := range sources {
		srcIdx[i] = s.Index
		shards[i] = f.blocks[b.Stripe][s.Index]
	}
	data, err := fs.code.ReconstructBlock(b.Index, srcIdx, shards)
	if err != nil {
		return nil, nil, fmt.Errorf("dfs: reconstructing %v of %q: %w", b, name, err)
	}
	return data, sources, nil
}

// ReadBlockUnsafe returns the stored bytes of a block regardless of its
// holder's failure state. It exists for verification (comparing a degraded
// read's output against ground truth); production reads must use ReadBlock
// or DegradedRead.
func (fs *FS) ReadBlockUnsafe(name string, b erasure.BlockID) ([]byte, error) {
	f, err := fs.File(name)
	if err != nil {
		return nil, err
	}
	if !f.HasData() {
		return nil, fmt.Errorf("dfs: file %q is metadata-only", name)
	}
	return f.blocks[b.Stripe][b.Index], nil
}

// StoredBlock is one block a node holds: the owning file, the block's
// identity, and its stored bytes (native or parity).
type StoredBlock struct {
	File  string
	Block erasure.BlockID
	Data  []byte
}

// NodeContents returns every stored block held by node id across all
// files with data, in file-creation then placement order. The
// distributed runtime ships these to the worker process playing that
// node, so workers serve exactly the blocks the placement assigned them.
func (fs *FS) NodeContents(id topology.NodeID) []StoredBlock {
	var out []StoredBlock
	for _, name := range fs.names {
		f := fs.files[name]
		if !f.HasData() {
			continue
		}
		for _, b := range f.Placement.NodeBlocks(id) {
			out = append(out, StoredBlock{File: name, Block: b, Data: f.blocks[b.Stripe][b.Index]})
		}
	}
	return out
}

// FileBytes reassembles the original file contents from native blocks
// (using stored copies; intended for verification in tests and examples).
func (fs *FS) FileBytes(name string) ([]byte, error) {
	f, err := fs.File(name)
	if err != nil {
		return nil, err
	}
	if !f.HasData() {
		return nil, fmt.Errorf("dfs: file %q is metadata-only", name)
	}
	natives := make([][][]byte, f.NumStripes())
	for s := range natives {
		natives[s] = f.blocks[s][:fs.code.K()]
	}
	return erasure.JoinStripes(natives, f.Size)
}
