package dfs

import (
	"strings"
	"testing"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// failHolders fails the holders of the given blocks of f and returns the
// failed node IDs.
func failHolders(c *topology.Cluster, f *File, blocks ...erasure.BlockID) []topology.NodeID {
	var failed []topology.NodeID
	for _, b := range blocks {
		h := f.Placement.Holder(b)
		if c.Alive(h) {
			c.FailNode(h)
			failed = append(failed, h)
		}
	}
	return failed
}

func TestLostBlocksSingleFailure(t *testing.T) {
	fs := testFS(t)
	f, err := fs.Write("a", makeData(4*64*3)) // 3 stripes of (6,4)
	if err != nil {
		t.Fatal(err)
	}
	failed := failHolders(fs.Cluster(), f, erasure.BlockID{Stripe: 1, Index: 2})
	plans, err := fs.LostBlocks(failed)
	if err != nil {
		t.Fatal(err)
	}
	// The failed node may hold blocks of other stripes too; every plan
	// must be repairable, reference this file, and carry full k-source
	// block plans with distinct destinations.
	if len(plans) == 0 {
		t.Fatal("no plans for a failed holder")
	}
	sawStripe1 := false
	for _, p := range plans {
		if p.Key.File != "a" {
			t.Fatalf("plan for unexpected file %q", p.Key.File)
		}
		if p.Unrepairable {
			t.Fatalf("single failure marked unrepairable: %+v", p)
		}
		if p.Key.Stripe == 1 {
			sawStripe1 = true
		}
		if p.Lost != len(p.Blocks) {
			t.Fatalf("Lost=%d but %d block plans", p.Lost, len(p.Blocks))
		}
		for _, bp := range p.Blocks {
			if len(bp.Sources) != 4 {
				t.Fatalf("RS repair should read k=4 sources, got %d", len(bp.Sources))
			}
			if !fs.Cluster().Alive(bp.Dest) {
				t.Fatalf("dest %d dead", bp.Dest)
			}
			for _, s := range bp.Sources {
				if !fs.Cluster().Alive(s.Node) {
					t.Fatalf("source on dead node %d", s.Node)
				}
			}
		}
	}
	if !sawStripe1 {
		t.Fatal("stripe 1 missing from scan")
	}
}

func TestLostBlocksMultiNodeLossAndUnrepairable(t *testing.T) {
	// (6,4) tolerates 2 losses. Fail 3 holders of stripe 0: that stripe
	// must be reported unrepairable — distinctly, without panicking —
	// while stripes that lost <= 2 blocks stay repairable.
	fs := testFS(t)
	f, err := fs.Write("a", makeData(4*64*2))
	if err != nil {
		t.Fatal(err)
	}
	failed := failHolders(fs.Cluster(), f,
		erasure.BlockID{Stripe: 0, Index: 0},
		erasure.BlockID{Stripe: 0, Index: 1},
		erasure.BlockID{Stripe: 0, Index: 4})
	if len(failed) != 3 {
		t.Fatalf("expected 3 distinct holders, got %d", len(failed))
	}
	plans, err := fs.LostBlocks(failed)
	if err != nil {
		t.Fatal(err)
	}
	var stripe0 *repair.StripePlan
	for i := range plans {
		p := &plans[i]
		if p.Key.Stripe == 0 {
			stripe0 = p
			continue
		}
		if p.Unrepairable && p.Lost <= 2 {
			t.Fatalf("stripe %d with %d losses marked unrepairable", p.Key.Stripe, p.Lost)
		}
		if !p.Unrepairable && p.Lost != len(p.Blocks) {
			t.Fatalf("stripe %d: Lost=%d, blocks=%d", p.Key.Stripe, p.Lost, len(p.Blocks))
		}
	}
	if stripe0 == nil {
		t.Fatal("stripe 0 missing from scan")
	}
	if !stripe0.Unrepairable {
		t.Fatalf("stripe 0 with 3 losses not unrepairable: %+v", stripe0)
	}
	if stripe0.Lost != 3 || len(stripe0.Blocks) != 0 {
		t.Fatalf("unrepairable plan should report Lost=3 with no block plans: %+v", stripe0)
	}
}

func TestLostBlocksSubsumesEarlierFailures(t *testing.T) {
	// A rescan keyed on the second failed node still plans the block
	// lost to the first failure: plans cover every lost block of a
	// touched stripe.
	fs := testFS(t)
	f, err := fs.Write("a", makeData(4*64))
	if err != nil {
		t.Fatal(err)
	}
	first := failHolders(fs.Cluster(), f, erasure.BlockID{Stripe: 0, Index: 0})
	second := failHolders(fs.Cluster(), f, erasure.BlockID{Stripe: 0, Index: 3})
	_ = first
	plans, err := fs.LostBlocks(second)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Key.Stripe != 0 {
			continue
		}
		if p.Lost != 2 || len(p.Blocks) != 2 {
			t.Fatalf("rescan should plan both lost blocks, got %+v", p)
		}
		if p.Blocks[0].Dest == p.Blocks[1].Dest {
			t.Fatalf("two rebuilt blocks of one stripe placed on one node %d", p.Blocks[0].Dest)
		}
		return
	}
	t.Fatal("stripe 0 missing from rescan")
}

func TestLostBlocksDeterministic(t *testing.T) {
	build := func() ([]repair.StripePlan, error) {
		fs, err := New(testCluster(), erasure.MustNew(6, 4), 64, nil, stats.NewRNG(1))
		if err != nil {
			return nil, err
		}
		f, err := fs.Write("a", makeData(4*64*4))
		if err != nil {
			return nil, err
		}
		failed := failHolders(fs.Cluster(), f,
			erasure.BlockID{Stripe: 0, Index: 1},
			erasure.BlockID{Stripe: 2, Index: 5})
		return fs.LostBlocks(failed)
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Lost != b[i].Lost || len(a[i].Blocks) != len(b[i].Blocks) {
			t.Fatalf("plan %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Blocks {
			x, y := a[i].Blocks[j], b[i].Blocks[j]
			if x.Index != y.Index || x.Dest != y.Dest || len(x.Sources) != len(y.Sources) {
				t.Fatalf("block plan %d/%d differs: %+v vs %+v", i, j, x, y)
			}
			for m := range x.Sources {
				if x.Sources[m] != y.Sources[m] {
					t.Fatalf("sources differ: %+v vs %+v", x, y)
				}
			}
		}
	}
}

func TestLRCLocalRepairReadsStrictlyFewerBytes(t *testing.T) {
	// LRC(4, 2, 1): 4 data blocks in 2 local groups of 2, one local
	// parity each, one global parity — n=7. A single data-block loss
	// repairs from its local group (2 sources) versus k=4 for the same
	// loss under RS(7, 4): strictly fewer bytes moved.
	lrc := erasure.MustNewLRC(4, 2, 1)
	rs := erasure.MustNew(lrc.N(), lrc.K())
	lost := erasure.BlockID{Stripe: 0, Index: 1}

	plan := func(code erasure.Coder) repair.StripePlan {
		c := topology.MustNew(topology.Config{Nodes: 12, Racks: 4, MapSlotsPerNode: 1})
		fs, err := New(c, code, 64, nil, stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Write("a", makeData(4*64))
		if err != nil {
			t.Fatal(err)
		}
		failHolders(c, f, lost)
		p, err := fs.PlanStripeRepair(repair.Key{File: "a", Stripe: 0})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	lp, rp := plan(lrc), plan(rs)
	if len(lp.Blocks) != 1 || len(rp.Blocks) != 1 {
		t.Fatalf("expected one block plan each: %+v / %+v", lp, rp)
	}
	if !lp.Blocks[0].Local {
		t.Fatalf("LRC single-loss plan not local: %+v", lp.Blocks[0])
	}
	if rp.Blocks[0].Local {
		t.Fatalf("RS plan marked local: %+v", rp.Blocks[0])
	}
	lb, rb := lp.ReadBytes(64), rp.ReadBytes(64)
	if !(lb < rb) {
		t.Fatalf("LRC local repair read %v bytes, RS read %v: want strictly fewer", lb, rb)
	}
}

func TestLRCBrokenGroupFallsBackToAllSurvivors(t *testing.T) {
	// Lose a data block AND its local parity: the local group is broken,
	// so the plan reads every survivor for the global decode.
	lrc := erasure.MustNewLRC(4, 2, 1)
	c := topology.MustNew(topology.Config{Nodes: 12, Racks: 4, MapSlotsPerNode: 1})
	fs, err := New(c, lrc, 64, nil, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Write("a", makeData(4*64))
	if err != nil {
		t.Fatal(err)
	}
	group, ok := lrc.LocalRepairGroup(0)
	if !ok {
		t.Fatal("data block 0 has no local group")
	}
	// group = mates of block 0 plus its local parity; fail block 0 and
	// the parity (last entry).
	failHolders(c, f,
		erasure.BlockID{Stripe: 0, Index: 0},
		erasure.BlockID{Stripe: 0, Index: group[len(group)-1]})
	p, err := fs.PlanStripeRepair(repair.Key{File: "a", Stripe: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Unrepairable {
		t.Fatalf("2 losses within n-k=3 marked unrepairable")
	}
	for _, bp := range p.Blocks {
		if bp.Local {
			t.Fatalf("broken-group block %d planned as local", bp.Index)
		}
		if len(bp.Sources) != lrc.N()-2 {
			t.Fatalf("fallback should read all %d survivors, got %d", lrc.N()-2, len(bp.Sources))
		}
	}
}

func TestRepairBlockReconstructsAndReassigns(t *testing.T) {
	fs := testFS(t)
	f, err := fs.Write("a", makeData(4*64))
	if err != nil {
		t.Fatal(err)
	}
	lost := erasure.BlockID{Stripe: 0, Index: 2}
	failHolders(fs.Cluster(), f, lost)
	plan, err := fs.PlanStripeRepair(repair.Key{File: "a", Stripe: 0})
	if err != nil {
		t.Fatal(err)
	}
	bp := plan.Blocks[0]
	local, err := fs.RepairBlock("a", lost, bp.Dest, bp.Sources)
	if err != nil {
		t.Fatal(err)
	}
	if local {
		t.Fatal("RS repair reported as local")
	}
	if got := f.Placement.Holder(lost); got != bp.Dest {
		t.Fatalf("holder = %d, want %d", got, bp.Dest)
	}
	// The block is live again: a plain read succeeds and the stripe has
	// nothing left to repair.
	if _, err := fs.ReadBlock("a", lost); err != nil {
		t.Fatalf("repaired block unreadable: %v", err)
	}
	p2, err := fs.PlanStripeRepair(repair.Key{File: "a", Stripe: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Lost != 0 {
		t.Fatalf("stripe still reports %d lost after repair", p2.Lost)
	}
	// Double repair is rejected: the holder is alive now.
	if _, err := fs.RepairBlock("a", lost, bp.Dest, bp.Sources); err == nil {
		t.Fatal("second repair of a live block must fail")
	} else if !strings.Contains(err.Error(), "not lost") {
		t.Fatalf("unexpected double-repair error: %v", err)
	}
}

func TestRepairBlockGuards(t *testing.T) {
	fs := testFS(t)
	f, err := fs.Write("a", makeData(4*64))
	if err != nil {
		t.Fatal(err)
	}
	lost := erasure.BlockID{Stripe: 0, Index: 0}
	failHolders(fs.Cluster(), f, lost)
	plan, err := fs.PlanStripeRepair(repair.Key{File: "a", Stripe: 0})
	if err != nil {
		t.Fatal(err)
	}
	bp := plan.Blocks[0]
	// Dead destination.
	if _, err := fs.RepairBlock("a", lost, f.Placement.Holder(lost), bp.Sources); err == nil {
		t.Fatal("dead destination accepted")
	}
	// Destination already holding a block of the stripe.
	other := f.Placement.Holder(erasure.BlockID{Stripe: 0, Index: 1})
	if _, err := fs.RepairBlock("a", lost, other, bp.Sources); err == nil {
		t.Fatal("stripe-colliding destination accepted")
	}
	// Unknown file.
	if _, err := fs.RepairBlock("nope", lost, bp.Dest, bp.Sources); err == nil {
		t.Fatal("unknown file accepted")
	}
}

func TestRepairBlockMetadataOnly(t *testing.T) {
	fs := testFS(t)
	f, err := fs.CreateMeta("m", 8)
	if err != nil {
		t.Fatal(err)
	}
	lost := erasure.BlockID{Stripe: 1, Index: 3}
	failHolders(fs.Cluster(), f, lost)
	plan, err := fs.PlanStripeRepair(repair.Key{File: "m", Stripe: 1})
	if err != nil {
		t.Fatal(err)
	}
	bp := plan.Blocks[0]
	if _, err := fs.RepairBlock("m", lost, bp.Dest, bp.Sources); err != nil {
		t.Fatal(err)
	}
	if got := f.Placement.Holder(lost); got != bp.Dest {
		t.Fatalf("metadata repair holder = %d, want %d", got, bp.Dest)
	}
}

func TestPickRepairDestinationPrefersRackConstraint(t *testing.T) {
	// Explicit placement: stripe of (3,2) on nodes 0,1,2 with nodes 0-2
	// in rack 0 impossible under the constraint; use 2 racks of 3.
	c := topology.MustNew(topology.Config{Nodes: 6, Racks: 3, MapSlotsPerNode: 1})
	fs, err := New(c, erasure.MustNew(3, 2), 64, nil, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Write("a", makeData(2*64))
	if err != nil {
		t.Fatal(err)
	}
	lost := erasure.BlockID{Stripe: 0, Index: 0}
	failHolders(c, f, lost)
	dest, err := PickRepairDestination(c, f.Placement, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Alive(dest) {
		t.Fatalf("dest %d not alive", dest)
	}
	for _, h := range f.Placement.StripeHolders(0) {
		if h == dest {
			t.Fatalf("dest %d already holds a block of the stripe", dest)
		}
	}
	// Rack constraint: the two survivors' racks constrain dest when the
	// limit (n-k=1 per rack) would be exceeded. With limit 1, dest's
	// rack must hold no live block of the stripe if any such node exists.
	perRack := make(map[topology.RackID]int)
	for _, h := range f.Placement.StripeHolders(0) {
		if c.Alive(h) {
			perRack[c.RackOf(h)]++
		}
	}
	if perRack[c.RackOf(dest)] >= 1 {
		// Only acceptable when every candidate rack was full.
		for _, node := range c.Nodes() {
			taken := false
			for _, h := range f.Placement.StripeHolders(0) {
				if h == node.ID {
					taken = true
				}
			}
			if !taken && !node.Failed() && perRack[node.Rack] < 1 {
				t.Fatalf("dest %d violates rack constraint while node %d satisfied it", dest, node.ID)
			}
		}
	}
}
