package dfs

import (
	"bytes"
	"testing"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// TestParallelWriteMatchesSerial writes the same file through a serial FS
// and a parallel FS (explicit worker count > 1 so the goroutine pool runs
// even on single-CPU hosts, and so the CI -race run exercises it). Every
// stored block — native and parity, every stripe — must be byte-identical.
func TestParallelWriteMatchesSerial(t *testing.T) {
	data := makeData(64 * 4 * 9) // 9 stripes of k=4

	build := func(parallelism int) *FS {
		fs, err := New(testCluster(), erasure.MustNew(6, 4), 64, nil, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		fs.SetEncodeParallelism(parallelism)
		if _, err := fs.Write("f", data); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	serial := build(1)
	for _, workers := range []int{2, 4, 16} {
		parallel := build(workers)
		sf, _ := serial.File("f")
		pf, _ := parallel.File("f")
		if sf.NumStripes() != pf.NumStripes() {
			t.Fatalf("workers=%d: stripe count diverged", workers)
		}
		for s := 0; s < sf.NumStripes(); s++ {
			for i := 0; i < 6; i++ {
				b := erasure.BlockID{Stripe: s, Index: i}
				want, err := serial.ReadBlockUnsafe("f", b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := parallel.ReadBlockUnsafe("f", b)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: block %v differs from serial encode", workers, b)
				}
			}
		}
	}
}

// TestSetEncodeParallelismDefault checks that 0 and negative values restore
// the GOMAXPROCS default and that Write still round-trips.
func TestSetEncodeParallelismDefault(t *testing.T) {
	fs := testFS(t)
	fs.SetEncodeParallelism(-3)
	if fs.encodeParallelism != 0 {
		t.Fatalf("negative parallelism must normalize to 0, got %d", fs.encodeParallelism)
	}
	data := makeData(64 * 4 * 2)
	if _, err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	back, err := fs.FileBytes("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip with default parallelism failed")
	}
}

// benchFS builds an FS over the paper's RS(14,10) with 64 KiB blocks and a
// written file large enough for several stripes.
func benchFS(b *testing.B, parallelism int) (*FS, *File) {
	b.Helper()
	c := topology.MustNew(topology.Config{Nodes: 20, Racks: 4, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1})
	fs, err := New(c, erasure.MustNew(14, 10), 64*1024, nil, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	fs.SetEncodeParallelism(parallelism)
	data := make([]byte, 64*1024*10*4) // 4 stripes of k=10
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	f, err := fs.Write("bench", data)
	if err != nil {
		b.Fatal(err)
	}
	return fs, f
}

// BenchmarkEncodeWrite measures the full Write path (split + place +
// encode) at both parallelism settings.
func BenchmarkEncodeWrite(b *testing.B) {
	for _, bc := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			c := topology.MustNew(topology.Config{Nodes: 20, Racks: 4, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1})
			data := make([]byte, 64*1024*10*4)
			for i := range data {
				data[i] = byte(i*31 + 7)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs, err := New(c, erasure.MustNew(14, 10), 64*1024, nil, stats.NewRNG(1))
				if err != nil {
					b.Fatal(err)
				}
				fs.SetEncodeParallelism(bc.parallelism)
				b.StartTimer()
				if _, err := fs.Write("bench", data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDegradedRead is the macro benchmark: a degraded read of one
// 64 KiB block through the full FS path (source selection + download plan
// + real Reed-Solomon decode).
func BenchmarkDegradedRead(b *testing.B) {
	fs, f := benchFS(b, 0)
	blk := erasure.BlockID{Stripe: 0, Index: 0}
	fs.Cluster().FailNode(f.Placement.Holder(blk))
	rng := stats.NewRNG(9)
	b.SetBytes(64 * 1024 * 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fs.DegradedRead("bench", blk, 0, PreferSameRack, rng); err != nil {
			b.Fatal(err)
		}
	}
}
