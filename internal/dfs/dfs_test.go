package dfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

func testCluster() *topology.Cluster {
	return topology.MustNew(topology.Config{Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1})
}

func testFS(t *testing.T) *FS {
	t.Helper()
	fs, err := New(testCluster(), erasure.MustNew(6, 4), 64, nil, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func makeData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	return data
}

func TestNewValidation(t *testing.T) {
	c := testCluster()
	code := erasure.MustNew(6, 4)
	if _, err := New(nil, code, 64, nil, nil); err == nil {
		t.Fatal("nil cluster must fail")
	}
	if _, err := New(c, nil, 64, nil, nil); err == nil {
		t.Fatal("nil code must fail")
	}
	if _, err := New(c, code, 0, nil, nil); err == nil {
		t.Fatal("zero block size must fail")
	}
	fs, err := New(c, code, 64, nil, nil) // nil policy and rng default
	if err != nil || fs.Code() != code || fs.BlockSize() != 64 || fs.Cluster() != c {
		t.Fatalf("defaults wrong: %v", err)
	}
}

func TestWriteAndReadBack(t *testing.T) {
	fs := testFS(t)
	data := makeData(1000)
	f, err := fs.Write("input.txt", data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasData() || f.Size != 1000 {
		t.Fatal("file metadata wrong")
	}
	// 1000 bytes / 64 per block = 16 blocks -> 4 stripes of k=4.
	if f.NumStripes() != 4 {
		t.Fatalf("stripes = %d, want 4", f.NumStripes())
	}
	if len(f.NativeBlocks()) != 16 {
		t.Fatalf("native blocks = %d", len(f.NativeBlocks()))
	}
	back, err := fs.FileBytes("input.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("file round trip mismatch")
	}
	if got := fs.Files(); len(got) != 1 || got[0] != "input.txt" {
		t.Fatalf("Files() = %v", got)
	}
}

func TestWriteErrors(t *testing.T) {
	fs := testFS(t)
	if _, err := fs.Write("a", nil); err == nil {
		t.Fatal("empty file must fail")
	}
	if _, err := fs.Write("a", makeData(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("a", makeData(10)); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := fs.File("missing"); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestReadBlock(t *testing.T) {
	fs := testFS(t)
	data := makeData(64 * 4) // exactly one stripe
	if _, err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	b := erasure.BlockID{Stripe: 0, Index: 1}
	got, err := fs.ReadBlock("f", b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[64:128]) {
		t.Fatal("block contents wrong")
	}
	// Fail the holder: read must report ErrBlockLost.
	f, _ := fs.File("f")
	fs.Cluster().FailNode(f.Placement.Holder(b))
	if _, err := fs.ReadBlock("f", b); err == nil {
		t.Fatal("lost block read must fail")
	}
}

func TestDegradedReadReconstructsForReal(t *testing.T) {
	fs := testFS(t)
	data := makeData(64 * 8) // two stripes
	if _, err := fs.Write("f", data); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.File("f")
	b := erasure.BlockID{Stripe: 1, Index: 2}
	holder := f.Placement.Holder(b)
	fs.Cluster().FailNode(holder)
	rng := stats.NewRNG(9)
	for _, strategy := range []SelectionStrategy{RandomK, PreferSameRack} {
		got, sources, err := fs.DegradedRead("f", b, 0, strategy, rng)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		want := data[(1*4+2)*64 : (1*4+3)*64]
		if !bytes.Equal(got, want) {
			t.Fatalf("%v: reconstructed bytes wrong", strategy)
		}
		if len(sources) != 4 {
			t.Fatalf("%v: %d sources, want k=4", strategy, len(sources))
		}
		for _, s := range sources {
			if s.Node == holder {
				t.Fatalf("%v: degraded read touched the failed holder", strategy)
			}
			if s.Index == b.Index {
				t.Fatalf("%v: degraded read selected the lost block", strategy)
			}
		}
	}
}

func TestPickDegradedSourcesRandomK(t *testing.T) {
	c := testCluster()
	p, err := placement.RackConstrainedRandom{}.Place(c, 10, 6, 4, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	b := erasure.BlockID{Stripe: 0, Index: 0}
	c.FailNode(p.Holder(b))
	rng := stats.NewRNG(3)
	seen := map[int]bool{}
	for trial := 0; trial < 30; trial++ {
		srcs, err := PickDegradedSources(c, p, b, 0, RandomK, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(srcs) != 4 {
			t.Fatalf("got %d sources", len(srcs))
		}
		for _, s := range srcs {
			if !c.Alive(s.Node) || s.Index == 0 {
				t.Fatalf("bad source %+v", s)
			}
			seen[s.Index] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("random selection never varied: %v", seen)
	}
}

func TestPickDegradedSourcesPreferSameRack(t *testing.T) {
	c := testCluster()
	p, err := placement.ParityDeclustered{}.Place(c, 10, 6, 4, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	b := erasure.BlockID{Stripe: 0, Index: 0}
	holder := p.Holder(b)
	c.FailNode(holder)
	rng := stats.NewRNG(5)
	reader := topology.NodeID(1)
	if reader == holder {
		reader = 2
	}
	srcsNear, err := PickDegradedSources(c, p, b, reader, PreferSameRack, rng)
	if err != nil {
		t.Fatal(err)
	}
	srcsRand, err := PickDegradedSources(c, p, b, reader, RandomK, rng)
	if err != nil {
		t.Fatal(err)
	}
	if CrossRackSources(c, reader, srcsNear) > CrossRackSources(c, reader, srcsRand) {
		t.Fatalf("PreferSameRack picked more cross-rack sources (%d) than RandomK (%d)",
			CrossRackSources(c, reader, srcsNear), CrossRackSources(c, reader, srcsRand))
	}
}

func TestPickDegradedSourcesErrors(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 6, Racks: 3, MapSlotsPerNode: 1})
	p, err := placement.RackConstrainedRandom{}.Place(c, 2, 6, 4, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	// Fail 3 nodes: stripes lose 3 of 6 blocks, leaving 3 < k=4 survivors.
	c.FailNode(0)
	c.FailNode(1)
	c.FailNode(2)
	b := erasure.BlockID{Stripe: 0, Index: 0}
	if _, err := PickDegradedSources(c, p, b, 3, RandomK, stats.NewRNG(7)); err == nil {
		t.Fatal("too few survivors must fail")
	}
	c2 := testCluster()
	p2, _ := placement.RackConstrainedRandom{}.Place(c2, 2, 6, 4, stats.NewRNG(8))
	if _, err := PickDegradedSources(c2, p2, b, 0, SelectionStrategy(42), stats.NewRNG(9)); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

func TestCreateMeta(t *testing.T) {
	fs := testFS(t)
	f, err := fs.CreateMeta("meta", 17)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasData() {
		t.Fatal("meta file must not have data")
	}
	// ceil(17/4) = 5 stripes.
	if f.NumStripes() != 5 {
		t.Fatalf("stripes = %d", f.NumStripes())
	}
	if _, err := fs.ReadBlock("meta", erasure.BlockID{}); err == nil {
		t.Fatal("reading a metadata-only file must fail")
	}
	if _, _, err := fs.DegradedRead("meta", erasure.BlockID{}, 0, RandomK, stats.NewRNG(1)); err == nil {
		t.Fatal("degraded read on metadata-only file must fail")
	}
	if _, err := fs.CreateMeta("meta", 3); err == nil {
		t.Fatal("duplicate meta must fail")
	}
	if _, err := fs.CreateMeta("meta2", 0); err == nil {
		t.Fatal("zero blocks must fail")
	}
}

func TestSelectionStrategyString(t *testing.T) {
	for _, s := range []SelectionStrategy{RandomK, PreferSameRack, SelectionStrategy(9)} {
		if s.String() == "" {
			t.Fatal("empty strategy string")
		}
	}
}

func TestDegradedReadRoundTripProperty(t *testing.T) {
	// Property: for random file sizes and any single lost native block,
	// the degraded read reproduces the original block bytes exactly.
	f := func(seed int64, sizeSeed uint16) bool {
		size := 100 + int(sizeSeed)%5000
		rng := stats.NewRNG(seed)
		c := testCluster()
		fs, err := New(c, erasure.MustNew(6, 4), 128, nil, rng)
		if err != nil {
			return false
		}
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(int(seed) + i)
		}
		file, err := fs.Write("f", data)
		if err != nil {
			return false
		}
		natives := file.NativeBlocks()
		b := natives[rng.Intn(len(natives))]
		holder := file.Placement.Holder(b)
		c.FailNode(holder)
		got, _, err := fs.DegradedRead("f", b, 0, RandomK, rng)
		if err != nil {
			return false
		}
		want, err := fs.ReadBlockUnsafe("f", b)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPickRepairSourcesLRCLocalGroup(t *testing.T) {
	// With an LRC code and the whole local group alive, PickRepairSources
	// returns exactly the group (k/l+1 blocks), not k survivors.
	c := topology.MustNew(topology.Config{Nodes: 14, Racks: 2, MapSlotsPerNode: 1})
	code := erasure.MustNewLRC(10, 2, 2)
	fs, err := New(c, code, 64, placement.RoundRobin{}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Write("f", makeData(64*10))
	if err != nil {
		t.Fatal(err)
	}
	b := erasure.BlockID{Stripe: 0, Index: 0}
	holder := f.Placement.Holder(b)
	c.FailNode(holder)
	srcs, err := PickRepairSources(c, code, f.Placement, b, 0, RandomK, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	group, _ := code.LocalRepairGroup(0)
	if len(srcs) != len(group) {
		t.Fatalf("got %d sources, want local group of %d", len(srcs), len(group))
	}
	// Degraded read through the FS actually uses the group and returns
	// the right bytes.
	got, sources, err := fs.DegradedRead("f", b, 0, RandomK, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != len(group) {
		t.Fatalf("DegradedRead used %d sources, want %d", len(sources), len(group))
	}
	want, _ := fs.ReadBlockUnsafe("f", b)
	if !bytes.Equal(got, want) {
		t.Fatal("LRC degraded read returned wrong bytes")
	}
}

func TestPickRepairSourcesFallsBackWhenGroupBroken(t *testing.T) {
	// If a group member is also failed, planning falls back to k-of-n.
	c := topology.MustNew(topology.Config{Nodes: 14, Racks: 2, MapSlotsPerNode: 1})
	code := erasure.MustNewLRC(10, 2, 2)
	fs, err := New(c, code, 64, placement.RoundRobin{}, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Write("f", makeData(64*10))
	b := erasure.BlockID{Stripe: 0, Index: 0}
	c.FailNode(f.Placement.Holder(b))
	// Fail another member of block 0's local group.
	group, _ := code.LocalRepairGroup(0)
	c.FailNode(f.Placement.Holder(erasure.BlockID{Stripe: 0, Index: group[0]}))
	srcs, err := PickRepairSources(c, code, f.Placement, b, 0, RandomK, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != code.K() {
		t.Fatalf("fallback should read k=%d sources, got %d", code.K(), len(srcs))
	}
	// And RS codes (no LocalRepairer) always use the fallback.
	c2 := testCluster()
	rs := erasure.MustNew(6, 4)
	p2, _ := placement.RoundRobin{}.Place(c2, 2, 6, 4, stats.NewRNG(6))
	b2 := erasure.BlockID{Stripe: 0, Index: 1}
	c2.FailNode(p2.Holder(b2))
	srcs2, err := PickRepairSources(c2, rs, p2, b2, 0, RandomK, stats.NewRNG(7))
	if err != nil || len(srcs2) != 4 {
		t.Fatalf("RS fallback: %v %v", srcs2, err)
	}
}

func TestPickNSourcesCountValidation(t *testing.T) {
	c := testCluster()
	p, _ := placement.RoundRobin{}.Place(c, 2, 6, 4, stats.NewRNG(8))
	b := erasure.BlockID{Stripe: 0, Index: 0}
	c.FailNode(p.Holder(b))
	if _, err := PickNSources(c, p, b, 0, 0, RandomK, stats.NewRNG(9)); err == nil {
		t.Fatal("count 0 must fail")
	}
	if _, err := PickNSources(c, p, b, 0, 6, RandomK, stats.NewRNG(9)); err == nil {
		t.Fatal("count n must fail (only n-1 other blocks exist)")
	}
	srcs, err := PickNSources(c, p, b, 0, 2, RandomK, stats.NewRNG(9))
	if err != nil || len(srcs) != 2 {
		t.Fatalf("count 2: %v %v", srcs, err)
	}
}
