// Background-repair planning and commit: the DFS side of the proactive
// healer. The scan APIs turn node failures into repair.StripePlans —
// which lost blocks each degraded stripe has, which survivors to read,
// and where to write the rebuilt copies — reusing the same source
// selection the degraded-read path uses (LRC local groups when the
// whole group survives, otherwise a full k-source reconstruction). The
// commit API performs the reconstruction for real on data-bearing files
// and moves the block's placement to its new holder.

package dfs

import (
	"fmt"
	"sort"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/topology"
)

// PickRepairDestination chooses the node a rebuilt block of stripe s is
// written to: the lowest-ID alive node that holds no block of the
// stripe and is not already taken by another block of the same repair.
// A first pass keeps the Section III rack constraint (at most n-k
// blocks of a stripe per rack, counting taken destinations); when no
// node satisfies it the constraint is dropped, matching how HDFS
// re-replication degrades on small clusters. The choice is
// deterministic — no RNG — so repair planning never perturbs the random
// streams of the foreground run.
func PickRepairDestination(c *topology.Cluster, p *placement.Placement, s int,
	taken map[topology.NodeID]bool) (topology.NodeID, error) {

	holders := make(map[topology.NodeID]bool, p.N())
	perRack := make(map[topology.RackID]int)
	for _, h := range p.StripeHolders(s) {
		holders[h] = true
		if c.Alive(h) {
			perRack[c.RackOf(h)]++
		}
	}
	for id := range taken {
		perRack[c.RackOf(id)]++
	}
	limit := p.N() - p.K()
	for _, strict := range []bool{true, false} {
		for _, node := range c.Nodes() {
			if node.Failed() || holders[node.ID] || taken[node.ID] {
				continue
			}
			if strict && perRack[node.Rack] >= limit {
				continue
			}
			return node.ID, nil
		}
	}
	return -1, fmt.Errorf("dfs: no alive node can host a rebuilt block of stripe %d", s)
}

// PlanStripe builds the repair plan for stripe s of the placed file:
// one BlockPlan per lost block (data or parity), or an unrepairable
// verdict when more than n-k blocks are gone. For MDS codes the bound
// is exact; for LRC it is necessary but not sufficient (some loss
// patterns within n-k are undecodable), and such stripes surface as
// reconstruction errors at commit time rather than here.
//
// Source selection mirrors the degraded-read path but stays
// deterministic: an LRC local repair reads the lost block's surviving
// local group; a plain MDS repair reads the k lowest-index survivors;
// an LRC repair whose local group is broken reads every survivor, since
// an arbitrary k of them need not span the lost block.
func PlanStripe(c *topology.Cluster, code erasure.Coder, p *placement.Placement,
	file string, s int) (repair.StripePlan, error) {

	plan := repair.StripePlan{
		Key: repair.Key{File: file, Stripe: s},
		N:   p.N(),
		K:   p.K(),
	}
	var lost []int
	survivors := make([]repair.Source, 0, p.N())
	for i, h := range p.StripeHolders(s) {
		if c.Alive(h) {
			survivors = append(survivors, repair.Source{Node: h, Index: i})
		} else {
			lost = append(lost, i)
		}
	}
	plan.Lost = len(lost)
	if len(lost) == 0 {
		return plan, nil
	}
	if len(lost) > plan.N-plan.K {
		plan.Unrepairable = true
		return plan, nil
	}
	lr, isLRC := code.(erasure.LocalRepairer)
	taken := make(map[topology.NodeID]bool, len(lost))
	for _, idx := range lost {
		dest, err := PickRepairDestination(c, p, s, taken)
		if err != nil {
			return plan, err
		}
		taken[dest] = true
		bp := repair.BlockPlan{Index: idx, Dest: dest}
		if isLRC {
			if group, ok := lr.LocalRepairGroup(idx); ok && groupAlive(c, p, s, group) {
				for _, gi := range group {
					h := p.Holder(erasure.BlockID{Stripe: s, Index: gi})
					bp.Sources = append(bp.Sources, repair.Source{Node: h, Index: gi})
				}
				bp.Local = true
			} else {
				// Broken local group (or a global parity): read every
				// survivor so the global decode always has enough
				// equations.
				bp.Sources = append(bp.Sources, survivors...)
			}
		} else {
			bp.Sources = append(bp.Sources, survivors[:plan.K]...)
		}
		plan.Blocks = append(plan.Blocks, bp)
	}
	return plan, nil
}

// groupAlive reports whether every block of the local repair group is on
// an alive node.
func groupAlive(c *topology.Cluster, p *placement.Placement, s int, group []int) bool {
	for _, gi := range group {
		if !c.Alive(p.Holder(erasure.BlockID{Stripe: s, Index: gi})) {
			return false
		}
	}
	return true
}

// LostBlocks scans every file for stripes that lost a block to one of
// the failed nodes and returns their repair plans, in file-creation
// then stripe order. Each plan covers all lost blocks of its stripe —
// including losses from earlier failures — so re-scanning after a
// second failure subsumes the first scan's pending work. Stripes with
// more than n-k losses come back with Unrepairable set rather than an
// error: the healer reports them distinctly and never launches them. A
// nil or empty failed set scans for every lost block in the system.
func (fs *FS) LostBlocks(failed []topology.NodeID) ([]repair.StripePlan, error) {
	failedSet := make(map[topology.NodeID]bool, len(failed))
	for _, id := range failed {
		failedSet[id] = true
	}
	var plans []repair.StripePlan
	for _, name := range fs.names {
		f := fs.files[name]
		for s := 0; s < f.NumStripes(); s++ {
			hit := false
			for _, h := range f.Placement.StripeHolders(s) {
				if fs.cluster.Alive(h) {
					continue
				}
				if len(failedSet) == 0 || failedSet[h] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			plan, err := PlanStripe(fs.cluster, fs.code, f.Placement, name, s)
			if err != nil {
				return nil, err
			}
			if plan.Lost > 0 {
				plans = append(plans, plan)
			}
		}
	}
	return plans, nil
}

// PlanStripeRepair re-plans one stripe from the live placement. The
// healer calls it at launch time (not enqueue time) so blocks already
// committed by an earlier pass are no longer planned — the guarantee
// that no block is ever written twice.
func (fs *FS) PlanStripeRepair(key repair.Key) (repair.StripePlan, error) {
	f, err := fs.File(key.File)
	if err != nil {
		return repair.StripePlan{}, err
	}
	if key.Stripe < 0 || key.Stripe >= f.NumStripes() {
		return repair.StripePlan{}, fmt.Errorf("dfs: file %q has no stripe %d", key.File, key.Stripe)
	}
	return PlanStripe(fs.cluster, fs.code, f.Placement, key.File, key.Stripe)
}

// RepairBlock commits the reconstruction of lost block b onto dst: for
// data-bearing files it decodes the block from the given sources for
// real, verifies the result against the stored ground truth, and only
// then moves the placement; metadata-only files move the placement
// directly. Reports whether the repair used an LRC local group (fewer
// than k reads). It is an error to repair a block whose holder is alive
// — the double-write guard.
func (fs *FS) RepairBlock(file string, b erasure.BlockID, dst topology.NodeID,
	sources []repair.Source) (local bool, err error) {

	f, err := fs.File(file)
	if err != nil {
		return false, err
	}
	if fs.cluster.Alive(f.Placement.Holder(b)) {
		return false, fmt.Errorf("dfs: block %v of %q is not lost (holder %d alive)", b, file, f.Placement.Holder(b))
	}
	if !fs.cluster.Alive(dst) {
		return false, fmt.Errorf("dfs: repair destination %d for %v of %q is dead", dst, b, file)
	}
	for _, h := range f.Placement.StripeHolders(b.Stripe) {
		if h == dst {
			return false, fmt.Errorf("dfs: destination %d already holds a block of stripe %d of %q", dst, b.Stripe, file)
		}
	}
	if f.HasData() {
		srcIdx := make([]int, len(sources))
		shards := make([][]byte, len(sources))
		for i, s := range sources {
			srcIdx[i] = s.Index
			shards[i] = f.blocks[b.Stripe][s.Index]
		}
		data, err := fs.code.ReconstructBlock(b.Index, srcIdx, shards)
		if err != nil {
			return false, fmt.Errorf("dfs: repairing %v of %q: %w", b, file, err)
		}
		want := f.blocks[b.Stripe][b.Index]
		if len(data) != len(want) {
			return false, fmt.Errorf("dfs: repaired %v of %q has %d bytes, want %d", b, file, len(data), len(want))
		}
		for i := range data {
			if data[i] != want[i] {
				return false, fmt.Errorf("dfs: repaired %v of %q differs from ground truth at byte %d", b, file, i)
			}
		}
	}
	f.Placement.Reassign(b, dst)
	return isLocalRepair(fs.code, b.Index, sources), nil
}

// isLocalRepair reports whether sources is exactly the lost block's LRC
// local repair group.
func isLocalRepair(code erasure.Coder, lostIdx int, sources []repair.Source) bool {
	lr, ok := code.(erasure.LocalRepairer)
	if !ok {
		return false
	}
	group, ok := lr.LocalRepairGroup(lostIdx)
	if !ok || len(group) != len(sources) {
		return false
	}
	got := make([]int, len(sources))
	for i, s := range sources {
		got[i] = s.Index
	}
	sort.Ints(got)
	want := append([]int(nil), group...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
