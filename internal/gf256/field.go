// Package gf256 implements arithmetic over the Galois field GF(2^8) and
// dense matrix operations over that field. It is the algebraic substrate for
// the Reed-Solomon erasure codes in package erasure.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// storage-oriented Reed-Solomon implementations. Multiplication and
// division are table-driven via discrete logarithms.
package gf256

// fieldSize is the number of elements in GF(2^8).
const fieldSize = 256

// primitivePoly is the reduction polynomial x^8+x^4+x^3+x^2+1.
const primitivePoly = 0x11d

// generator is a primitive element of the field; powers of it enumerate all
// non-zero field elements.
const generator = 2

var (
	_expTable [2 * fieldSize]byte // exp[i] = generator^i, doubled to avoid mod 255 in Mul
	_logTable [fieldSize]byte     // log[x] = i such that generator^i = x, for x != 0
)

func init() {
	x := 1
	for i := 0; i < fieldSize-1; i++ {
		_expTable[i] = byte(x)
		_logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= primitivePoly
		}
	}
	// Duplicate the table so Mul can index exp[log(a)+log(b)] without a
	// modular reduction.
	for i := fieldSize - 1; i < 2*fieldSize; i++ {
		_expTable[i] = _expTable[i-(fieldSize-1)]
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _expTable[int(_logTable[a])+int(_logTable[b])]
}

// Div returns a/b in GF(2^8). Division by zero panics: it indicates a
// programming error in matrix construction, never a data-dependent state.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	diff := int(_logTable[a]) - int(_logTable[b])
	if diff < 0 {
		diff += fieldSize - 1
	}
	return _expTable[diff]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return _expTable[(fieldSize-1)-int(_logTable[a])]
}

// Exp returns generator^n for n >= 0.
func Exp(n int) byte {
	if n < 0 {
		panic("gf256: negative exponent")
	}
	return _expTable[n%(fieldSize-1)]
}

// Pow returns a^n in GF(2^8) for n >= 0, with 0^0 = 1.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	logA := int(_logTable[a])
	return _expTable[(logA*n)%(fieldSize-1)]
}

// MulSlice, MulSliceSet, AddSlice and MulAddSlices — the bulk slice
// kernels — live in kernels.go.
