package gf256

import "testing"

// benchShard is the shard size named by the perf acceptance criteria.
const benchShard = 64 * 1024

// benchData returns a src/dst pair of the given density: frac is the
// probability a src byte is non-zero. Sparse shards (zero-padded stripe
// tails, sparse records) are where the reference loop's data-dependent
// branch mispredicts.
func benchData(nonZeroFrac float64) (src, dst []byte) {
	src = make([]byte, benchShard)
	dst = make([]byte, benchShard)
	x := uint32(12345)
	for i := range src {
		x = x*1664525 + 1013904223
		if float64(x%1000)/1000 < nonZeroFrac {
			src[i] = byte(x>>8) | 1
		}
		dst[i] = byte(x >> 16)
	}
	return src, dst
}

// BenchmarkMulSlice compares the bulk kernel against the retained scalar
// reference on 64 KiB shards, across the coefficient classes (general c,
// c == 1 XOR) and data densities that matter on the erasure path.
func BenchmarkMulSlice(b *testing.B) {
	cases := []struct {
		name string
		c    byte
		frac float64
		fn   func(c byte, src, dst []byte)
	}{
		{"dense/kernel", 0xd7, 1.0, MulSlice},
		{"dense/scalar", 0xd7, 1.0, RefMulSlice},
		{"sparse/kernel", 0xd7, 0.5, MulSlice},
		{"sparse/scalar", 0xd7, 0.5, RefMulSlice},
		{"xor/kernel", 1, 1.0, MulSlice},
		{"xor/scalar", 1, 1.0, RefMulSlice},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src, dst := benchData(tc.frac)
			b.SetBytes(benchShard)
			for i := 0; i < b.N; i++ {
				tc.fn(tc.c, src, dst)
			}
		})
	}
}

func BenchmarkMulSliceSet(b *testing.B) {
	for _, tc := range []struct {
		name string
		fn   func(c byte, src, dst []byte)
	}{
		{"kernel", MulSliceSet},
		{"scalar", RefMulSliceSet},
	} {
		b.Run(tc.name, func(b *testing.B) {
			src, dst := benchData(1.0)
			b.SetBytes(benchShard)
			for i := 0; i < b.N; i++ {
				tc.fn(0x53, src, dst)
			}
		})
	}
}

func BenchmarkAddSlice(b *testing.B) {
	src, dst := benchData(1.0)
	b.SetBytes(benchShard)
	for i := 0; i < b.N; i++ {
		AddSlice(src, dst)
	}
}

// BenchmarkMulAddSlices measures the fused k-source accumulation (one
// decode output block from k = 10 sources), kernel vs serial reference.
func BenchmarkMulAddSlices(b *testing.B) {
	const k = 10
	coeffs := make([]byte, k)
	srcs := make([][]byte, k)
	var dst []byte
	for j := 0; j < k; j++ {
		coeffs[j] = byte(2*j + 3)
		srcs[j], dst = benchData(1.0)
	}
	b.Run("kernel", func(b *testing.B) {
		b.SetBytes(benchShard * k)
		for i := 0; i < b.N; i++ {
			MulAddSlices(coeffs, srcs, dst)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(benchShard * k)
		for i := 0; i < b.N; i++ {
			for j := range srcs {
				RefMulSlice(coeffs[j], srcs[j], dst)
			}
		}
	})
}
