package gf256

import (
	"encoding/binary"
	"sync"
)

// This file holds the bulk kernels: the slice-level GF(2^8) routines that
// move every byte of the erasure path (encode, degraded read, repair).
//
// Three techniques replace the per-byte log/exp loop of RefMulSlice:
//
//  1. A lazily built 256x256 product table. One row of it (256 bytes,
//     L1-resident) turns c*s into a single branch-free lookup, immune to
//     the data-dependent `s != 0` branch of the log/exp loop, which
//     mispredicts badly on shards with interleaved zero bytes (zero-padded
//     stripe tails, sparse records).
//  2. Batched 8-byte processing: eight table lookups are assembled into one
//     uint64 and applied with a single load/xor/store against dst,
//     quartering the per-byte memory operations.
//  3. A word-wide XOR fast path for c == 1 (AddSlice): pure uint64 XOR via
//     encoding/binary, 8 bytes per operation — the dominant path for
//     parity-style codes (LRC local groups) and identity coefficients.
//
// MulAddSlices fuses the k-source accumulation loop of encode/decode so dst
// stays cache-hot across sources. The former per-byte implementations are
// retained verbatim as RefMulSlice/RefMulSliceSet: property tests and the
// fuzz target pin the kernels to them byte-for-byte.

// mulTable[c][a] = c*a in GF(2^8). 64 KiB, built once on first use: the
// simulator-only paths never touch bulk arithmetic and should not pay for
// the table at init.
var (
	mulTableOnce sync.Once
	mulTable     *[256][256]byte
)

func productTable() *[256][256]byte {
	mulTableOnce.Do(func() {
		t := new([256][256]byte)
		for c := 1; c < 256; c++ {
			logC := int(_logTable[c])
			row := &t[c]
			for a := 1; a < 256; a++ {
				row[a] = _expTable[logC+int(_logTable[a])]
			}
		}
		mulTable = t
	})
	return mulTable
}

// MulTableRow returns the 256-entry product row for coefficient c:
// row[a] == Mul(c, a). The returned array is shared and must not be
// modified.
func MulTableRow(c byte) *[256]byte {
	return &productTable()[c]
}

// AddSlice computes dst[i] ^= src[i] for all i (GF addition), 8 bytes at a
// time. It is the c == 1 fast path of MulSlice and the whole story for XOR
// parities. dst and src must have equal length.
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddSlice length mismatch")
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulAddRow is the general-coefficient accumulate kernel: dst[i] ^= t[src[i]]
// with t the product row for some c >= 2. Eight lookups are packed into one
// uint64 so dst sees one load and one store per 8 bytes.
func mulAddRow(t *[256]byte, src, dst []byte) {
	n := len(src) &^ 7
	s8, d8 := src[:n], dst[:n]
	for i := 0; i < len(s8); i += 8 {
		v := binary.LittleEndian.Uint64(s8[i:])
		r := uint64(t[byte(v)]) |
			uint64(t[byte(v>>8)])<<8 |
			uint64(t[byte(v>>16)])<<16 |
			uint64(t[byte(v>>24)])<<24 |
			uint64(t[byte(v>>32)])<<32 |
			uint64(t[byte(v>>40)])<<40 |
			uint64(t[byte(v>>48)])<<48 |
			uint64(t[byte(v>>56)])<<56
		binary.LittleEndian.PutUint64(d8[i:], binary.LittleEndian.Uint64(d8[i:])^r)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= t[src[i]]
	}
}

// mulSetRow is mulAddRow without the accumulate: dst[i] = t[src[i]].
func mulSetRow(t *[256]byte, src, dst []byte) {
	n := len(src) &^ 7
	s8, d8 := src[:n], dst[:n]
	for i := 0; i < len(s8); i += 8 {
		v := binary.LittleEndian.Uint64(s8[i:])
		r := uint64(t[byte(v)]) |
			uint64(t[byte(v>>8)])<<8 |
			uint64(t[byte(v>>16)])<<16 |
			uint64(t[byte(v>>24)])<<24 |
			uint64(t[byte(v>>32)])<<32 |
			uint64(t[byte(v>>40)])<<40 |
			uint64(t[byte(v>>48)])<<48 |
			uint64(t[byte(v>>56)])<<56
		binary.LittleEndian.PutUint64(d8[i:], r)
	}
	for i := n; i < len(src); i++ {
		dst[i] = t[src[i]]
	}
}

// MulSlice computes dst[i] ^= c * src[i] for all i. It is the inner kernel
// of Reed-Solomon encoding: accumulate a scaled source block into an output
// block. dst and src must have equal length.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(src, dst)
		return
	}
	mulAddRow(&productTable()[c], src, dst)
}

// MulSliceSet computes dst[i] = c * src[i] for all i (overwriting dst).
func MulSliceSet(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceSet length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	mulSetRow(&productTable()[c], src, dst)
}

// fuseBlock is the dst window the fused kernel processes per pass across
// all sources: small enough to stay L1-resident while k source streams are
// accumulated into it.
const fuseBlock = 8 << 10

// MulAddSlices computes the fused accumulation
//
//	dst[i] ^= coeffs[0]*srcs[0][i] ^ coeffs[1]*srcs[1][i] ^ ...
//
// — one output block of a matrix-vector product over shards, the core of
// Encode and ReconstructBlock. It processes dst in L1-sized windows so the
// accumulator is read and written from cache regardless of how many source
// shards are folded in. Every source must have dst's length; zero
// coefficients are skipped and unit coefficients take the XOR fast path.
func MulAddSlices(coeffs []byte, srcs [][]byte, dst []byte) {
	if len(coeffs) != len(srcs) {
		panic("gf256: MulAddSlices coefficient/source count mismatch")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf256: MulAddSlices length mismatch")
		}
	}
	t := productTable()
	for lo := 0; lo < len(dst); lo += fuseBlock {
		hi := min(lo+fuseBlock, len(dst))
		d := dst[lo:hi]
		for j, c := range coeffs {
			switch c {
			case 0:
			case 1:
				AddSlice(srcs[j][lo:hi], d)
			default:
				mulAddRow(&t[c], srcs[j][lo:hi], d)
			}
		}
	}
}

// RefMulSlice is the retained scalar reference for MulSlice: the original
// per-byte log/exp loop, with its data-dependent `s != 0` branch. It exists
// so property tests, the fuzz target, and cmd/dfbench can pin and compare
// the bulk kernels against the pre-kernel behaviour byte-for-byte. Not for
// production paths.
func RefMulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: RefMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(_logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= _expTable[logC+int(_logTable[s])]
		}
	}
}

// RefMulSliceSet is the retained scalar reference for MulSliceSet.
func RefMulSliceSet(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: RefMulSliceSet length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	logC := int(_logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = _expTable[logC+int(_logTable[s])]
		}
	}
}
