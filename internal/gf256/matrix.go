package gf256

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSingular is returned when attempting to invert a singular matrix.
var ErrSingular = errors.New("gf256: matrix is singular")

// Matrix is a dense rows x cols matrix over GF(2^8). The zero value is an
// empty matrix; use NewMatrix or one of the constructors.
type Matrix struct {
	rows, cols int
	data       []byte // row-major
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gf256: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// MatrixFromRows builds a matrix from explicit row data. All rows must have
// equal length. The rows are copied.
func MatrixFromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("gf256: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols Vandermonde matrix with entry
// (i, j) = i^j. Any k rows of a Vandermonde matrix with distinct generators
// are linearly independent, which is the property Reed-Solomon relies on.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, Pow(byte(i), j))
		}
	}
	return m
}

// Cauchy returns the rows x cols Cauchy matrix with entry
// (i, j) = 1 / (x_i + y_j) where x_i = i and y_j = rows + j. Every square
// submatrix of a Cauchy matrix is invertible, so it can be used directly as
// the parity part of an encoding matrix.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > fieldSize {
		panic("gf256: Cauchy matrix too large for GF(256)")
	}
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, Inv(byte(i)^byte(rows+j)))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns a mutable view of row r.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and other have identical shape and contents.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if other.data[i] != v {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("gf256: cannot multiply %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out := NewMatrix(m.rows, other.cols)
	srcs := make([][]byte, m.cols)
	for k := 0; k < m.cols; k++ {
		srcs[k] = other.Row(k)
	}
	for i := 0; i < m.rows; i++ {
		MulAddSlices(m.Row(i), srcs, out.Row(i))
	}
	return out, nil
}

// SubMatrix returns the matrix consisting of the given rows of m, in order.
func (m *Matrix) SubMatrix(rowIdx []int) (*Matrix, error) {
	out := NewMatrix(len(rowIdx), m.cols)
	for i, r := range rowIdx {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("gf256: row index %d out of range [0,%d)", r, m.rows)
		}
		copy(out.Row(i), m.Row(r))
	}
	return out, nil
}

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale the pivot row so the pivot is 1.
		if p := work.At(col, col); p != 1 {
			pinv := Inv(p)
			scaleRow(work, col, pinv)
			scaleRow(inv, col, pinv)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			MulSlice(f, work.Row(col), work.Row(r))
			MulSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

// MulVec multiplies m by a set of "symbol vectors" laid out as shards:
// in has m.Cols() shards, each of equal length; the result has m.Rows()
// shards. out shards must be preallocated to the shard length.
func (m *Matrix) MulVec(in, out [][]byte) error {
	if len(in) != m.cols {
		return fmt.Errorf("gf256: MulVec got %d input shards, want %d", len(in), m.cols)
	}
	if len(out) != m.rows {
		return fmt.Errorf("gf256: MulVec got %d output shards, want %d", len(out), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		for j := range out[i] {
			out[i][j] = 0
		}
		MulAddSlices(m.Row(i), in, out[i])
	}
	return nil
}

// String renders the matrix in a compact hex form, for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *Matrix, r int, c byte) {
	row := m.Row(r)
	for i, v := range row {
		row[i] = Mul(v, c)
	}
}
