package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// testLengths exercises the uint64 batching edges: empty, sub-word, exact
// words, and odd tails.
var testLengths = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 1000, 4096, 8191, 8192, 8193, 65536}

// fillPattern writes deterministic data with interleaved zeros so both the
// zero-skip and the general path of the reference loop are exercised.
func fillPattern(b []byte, seed byte) {
	x := uint32(seed) + 1
	for i := range b {
		x = x*1664525 + 1013904223
		if x&3 == 0 {
			b[i] = 0
		} else {
			b[i] = byte(x >> 8)
		}
	}
}

func TestMulSliceMatchesReference(t *testing.T) {
	for _, n := range testLengths {
		for _, c := range []byte{0, 1, 2, 3, 37, 0x80, 0xd7, 0xff} {
			src := make([]byte, n)
			fillPattern(src, c)
			dst := make([]byte, n)
			fillPattern(dst, c+1)
			want := append([]byte(nil), dst...)
			RefMulSlice(c, src, want)
			MulSlice(c, src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSlice(c=%#x, n=%d) diverges from scalar reference", c, n)
			}
		}
	}
}

func TestMulSliceSetMatchesReference(t *testing.T) {
	for _, n := range testLengths {
		for _, c := range []byte{0, 1, 2, 37, 0xff} {
			src := make([]byte, n)
			fillPattern(src, c)
			dst := make([]byte, n)
			fillPattern(dst, 99)
			want := append([]byte(nil), dst...)
			RefMulSliceSet(c, src, want)
			MulSliceSet(c, src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSliceSet(c=%#x, n=%d) diverges from scalar reference", c, n)
			}
		}
	}
}

func TestAddSliceMatchesXOR(t *testing.T) {
	for _, n := range testLengths {
		src := make([]byte, n)
		fillPattern(src, 5)
		dst := make([]byte, n)
		fillPattern(dst, 6)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("AddSlice(n=%d) wrong", n)
		}
	}
}

func TestMulAddSlicesMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 255, 4096, 8193, 70000} {
		for _, k := range []int{1, 2, 3, 10} {
			coeffs := make([]byte, k)
			srcs := make([][]byte, k)
			for j := range srcs {
				coeffs[j] = byte(rng.Intn(256))
				srcs[j] = make([]byte, n)
				fillPattern(srcs[j], byte(j))
			}
			// Force the special coefficients into the mix.
			if k >= 3 {
				coeffs[0], coeffs[1] = 0, 1
			}
			dst := make([]byte, n)
			fillPattern(dst, 0xee)
			want := append([]byte(nil), dst...)
			for j := range srcs {
				RefMulSlice(coeffs[j], srcs[j], want)
			}
			MulAddSlices(coeffs, srcs, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlices(n=%d, k=%d, coeffs=%v) diverges from serial reference", n, k, coeffs)
			}
		}
	}
}

func TestKernelsProperty(t *testing.T) {
	// For arbitrary coefficient and data, the batched kernel and the scalar
	// reference are byte-identical, and MulSlice agrees with per-byte Mul.
	f := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		fillPattern(dst, c)
		ref := append([]byte(nil), dst...)
		perByte := append([]byte(nil), dst...)
		MulSlice(c, src, dst)
		RefMulSlice(c, src, ref)
		for i, s := range src {
			perByte[i] ^= Mul(c, s)
		}
		return bytes.Equal(dst, ref) && bytes.Equal(dst, perByte)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulTableRowMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := MulTableRow(byte(c))
		for a := 0; a < 256; a++ {
			if row[a] != Mul(byte(c), byte(a)) {
				t.Fatalf("MulTableRow(%#x)[%#x] = %#x, want %#x", c, a, row[a], Mul(byte(c), byte(a)))
			}
		}
	}
}

func TestMulAddSlicesPanicsOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"coeff-count": func() { MulAddSlices([]byte{1, 2}, [][]byte{{1}}, []byte{0}) },
		"src-length":  func() { MulAddSlices([]byte{1}, [][]byte{{1, 2}}, []byte{0}) },
		"add-length":  func() { AddSlice([]byte{1, 2}, []byte{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzMulSliceEquivalence pins the bulk kernels to the retained scalar
// reference: for arbitrary coefficient and data (any length, including odd
// uint64 tails), MulSlice, MulSliceSet and MulAddSlices must be
// byte-identical to the per-byte log/exp loop.
func FuzzMulSliceEquivalence(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{1, 2, 3})
	f.Add(byte(2), []byte{0, 0xff, 0, 7, 0, 0, 9})            // odd length, zeros
	f.Add(byte(37), bytes.Repeat([]byte{0xab, 0, 0xcd}, 100)) // 300 bytes: 8-tail of 4
	f.Add(byte(0xff), bytes.Repeat([]byte{1}, 17))            // two words + 1
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		// Split the input into src and a starting dst so both operands vary.
		half := len(data) / 2
		src, dstInit := data[:half], data[half:half+half]

		dst := append([]byte(nil), dstInit...)
		ref := append([]byte(nil), dstInit...)
		MulSlice(c, src, dst)
		RefMulSlice(c, src, ref)
		if !bytes.Equal(dst, ref) {
			t.Fatalf("MulSlice(c=%#x) diverges from reference on %d bytes", c, half)
		}

		set := append([]byte(nil), dstInit...)
		refSet := append([]byte(nil), dstInit...)
		MulSliceSet(c, src, set)
		RefMulSliceSet(c, src, refSet)
		if !bytes.Equal(set, refSet) {
			t.Fatalf("MulSliceSet(c=%#x) diverges from reference on %d bytes", c, half)
		}

		// Fused kernel over three sources: src scaled by c, c^1, and 1.
		coeffs := []byte{c, c ^ 1, 1}
		srcs := [][]byte{src, refSet, dstInit}
		fused := append([]byte(nil), dstInit...)
		refFused := append([]byte(nil), dstInit...)
		MulAddSlices(coeffs, srcs, fused)
		for j := range srcs {
			RefMulSlice(coeffs[j], srcs[j], refFused)
		}
		if !bytes.Equal(fused, refFused) {
			t.Fatalf("MulAddSlices diverges from serial reference on %d bytes", half)
		}
	})
}
