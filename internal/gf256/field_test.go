package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if got := Add(0x53, 0xca); got != 0x53^0xca {
		t.Fatalf("Add(0x53, 0xca) = %#x, want %#x", got, 0x53^0xca)
	}
}

func TestMulKnownValues(t *testing.T) {
	tests := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{0, 7, 0},
		{7, 0, 0},
		{1, 1, 1},
		{1, 0xff, 0xff},
		{2, 2, 4},
		{2, 0x80, 0x1d},    // x * x^7 = x^8 = poly remainder 0x1d
		{0x53, 0xca, 0x8f}, // under 0x11d (AES's 0x11b would give 0x01)
	}
	for _, tc := range tests {
		if got := Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

// mulSlow is a bitwise reference multiplication (Russian peasant) used to
// validate the table-driven implementation exhaustively.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= byte(primitivePoly & 0xff)
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesReferenceExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	// Commutativity of multiplication.
	if err := quick.Check(func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }, nil); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}
	// Associativity of multiplication.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, nil); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}
	// Distributivity over addition.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Errorf("multiplication not distributive: %v", err)
	}
	// Multiplicative inverse: a * Inv(a) == 1 for a != 0.
	if err := quick.Check(func(a byte) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}, nil); err != nil {
		t.Errorf("inverse law violated: %v", err)
	}
	// Division round-trip: Div(Mul(a,b), b) == a for b != 0.
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}, nil); err != nil {
		t.Errorf("division round-trip violated: %v", err)
	}
}

func TestInvExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a=%#x: a*Inv(a) = %#x, want 1", a, got)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	tests := []struct {
		a    byte
		n    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{5, 0, 1},
		{2, 1, 2},
		{2, 8, 0x1d},
	}
	for _, tc := range tests {
		if got := Pow(tc.a, tc.n); got != tc.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", tc.a, tc.n, got, tc.want)
		}
	}
	// Pow by repeated multiplication, spot-check.
	for a := byte(1); a < 20; a++ {
		acc := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(a, n); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, n, got, acc)
			}
			acc = Mul(acc, a)
		}
	}
}

func TestExpPeriodic(t *testing.T) {
	if Exp(0) != 1 {
		t.Fatalf("Exp(0) = %#x, want 1", Exp(0))
	}
	if Exp(255) != Exp(0) {
		t.Fatalf("Exp not periodic with period 255")
	}
	// Powers of the generator enumerate all non-zero elements.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator has order %d, want 255", len(seen))
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = dst[i] ^ Mul(7, src[i])
	}
	MulSlice(7, src, dst)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice index %d: got %#x, want %#x", i, dst[i], want[i])
		}
	}
}

func TestMulSliceIdentityAndZero(t *testing.T) {
	src := []byte{5, 6, 7}
	dst := []byte{1, 2, 3}
	MulSlice(0, src, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatal("MulSlice with c=0 must leave dst unchanged")
	}
	MulSlice(1, src, dst)
	if dst[0] != 1^5 || dst[1] != 2^6 || dst[2] != 3^7 {
		t.Fatal("MulSlice with c=1 must XOR src into dst")
	}
}

func TestMulSliceSet(t *testing.T) {
	src := []byte{9, 0, 27}
	dst := make([]byte, 3)
	MulSliceSet(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSliceSet index %d: got %#x, want %#x", i, dst[i], Mul(3, src[i]))
		}
	}
	MulSliceSet(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatal("MulSliceSet with c=0 must zero dst")
		}
	}
	MulSliceSet(1, src, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatal("MulSliceSet with c=1 must copy src")
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulSlice with mismatched lengths did not panic")
		}
	}()
	MulSlice(2, []byte{1, 2}, []byte{1})
}
