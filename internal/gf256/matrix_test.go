package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(4)[%d][%d] = %d, want %d", r, c, id.At(r, c), want)
			}
		}
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected matrix: %v", m)
	}
	if _, err := MatrixFromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty rows: m=%v err=%v", empty, err)
	}
}

func TestMulIdentity(t *testing.T) {
	m := Vandermonde(3, 3)
	id := Identity(3)
	got, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("M * I != M:\n%v\nvs\n%v", got, m)
	}
	got2, err := id.Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(m) {
		t.Fatal("I * M != M")
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("2x3 * 2x3 must error")
	}
}

func TestInvertIdentity(t *testing.T) {
	id := Identity(5)
	inv, err := id.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(id) {
		t.Fatal("Identity inverse must be identity")
	}
}

func TestInvertSingular(t *testing.T) {
	m, _ := MatrixFromRows([][]byte{{1, 2}, {1, 2}})
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("got err=%v, want ErrSingular", err)
	}
	z := NewMatrix(3, 3)
	if _, err := z.Invert(); err != ErrSingular {
		t.Fatalf("zero matrix: got err=%v, want ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Invert(); err == nil {
		t.Fatal("non-square invert must error")
	}
}

func TestInvertRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for {
			for i := range m.data {
				m.data[i] = byte(rng.Intn(256))
			}
			if _, err := m.Clone().Invert(); err == nil {
				break
			}
		}
		inv, err := m.Invert()
		if err != nil {
			t.Fatal(err)
		}
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(Identity(n)) {
			t.Fatalf("trial %d: M * M^-1 != I for n=%d", trial, n)
		}
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	// Any k rows of a Vandermonde matrix with distinct generators must be
	// invertible; this is the foundation of RS decoding.
	const n, k = 12, 8
	v := Vandermonde(n, k)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		rows := rng.Perm(n)[:k]
		sub, err := v.SubMatrix(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Vandermonde submatrix rows %v not invertible: %v", rows, err)
		}
	}
}

func TestCauchySubmatricesInvertible(t *testing.T) {
	const rows, cols = 6, 6
	c := Cauchy(rows, cols)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		// Random square submatrix: pick cols rows... here matrix is square,
		// test full inversion and random row subsets of a taller Cauchy.
		_ = trial
		if _, err := c.Invert(); err != nil {
			t.Fatalf("Cauchy matrix not invertible: %v", err)
		}
	}
	tall := Cauchy(10, 4)
	for trial := 0; trial < 50; trial++ {
		sel, err := tall.SubMatrix(rng.Perm(10)[:4])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sel.Invert(); err != nil {
			t.Fatalf("Cauchy 4x4 submatrix not invertible: %v", err)
		}
	}
}

func TestSubMatrixOutOfRange(t *testing.T) {
	m := Identity(3)
	if _, err := m.SubMatrix([]int{0, 5}); err == nil {
		t.Fatal("out-of-range row index must error")
	}
}

func TestMulVec(t *testing.T) {
	// y = A x over shards of length 3.
	a, _ := MatrixFromRows([][]byte{{1, 0}, {0, 1}, {1, 1}})
	in := [][]byte{{1, 2, 3}, {4, 5, 6}}
	out := [][]byte{make([]byte, 3), make([]byte, 3), make([]byte, 3)}
	if err := a.MulVec(in, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if out[0][i] != in[0][i] || out[1][i] != in[1][i] || out[2][i] != in[0][i]^in[1][i] {
			t.Fatalf("MulVec wrong at %d: %v", i, out)
		}
	}
	if err := a.MulVec(in[:1], out); err == nil {
		t.Fatal("shard count mismatch must error")
	}
	if err := a.MulVec(in, out[:2]); err == nil {
		t.Fatal("output shard count mismatch must error")
	}
}

func TestMatrixMulAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) for random small square matrices.
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		mk := func() *Matrix {
			m := NewMatrix(n, n)
			for i := range m.data {
				m.data[i] = byte(rng.Intn(256))
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("matrix multiplication not associative: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	m, _ := MatrixFromRows([][]byte{{0x0a, 0xff}})
	if got := m.String(); got != "0a ff\n" {
		t.Fatalf("String() = %q", got)
	}
}
