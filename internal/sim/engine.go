// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock and an event queue ordered by (time, insertion sequence).
// It replaces the CSIM20 library the paper's simulator was built on.
//
// The engine is single-goroutine by design: all simulated "processes"
// (master, slaves, network flows) are event callbacks. Determinism — the
// same seed always yields the same schedule — is guaranteed by breaking
// time ties with a monotone sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. Cancel it via Engine.Cancel.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	fn    func()
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e.index >= 0 }

// Engine is the simulation core. The zero value is not usable; call New.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nsteps uint64
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns how many events have been dispatched; useful in tests and
// for detecting runaway simulations.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule queues fn to run after delay seconds of virtual time. A negative
// or NaN delay panics: it would corrupt the causal order and always
// indicates a bug in the caller.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step dispatches the next event, advancing the clock. It returns false if
// the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.nsteps++
	ev.fn()
	return true
}

// Run dispatches events until the queue is empty and returns the final
// clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq exact comparison is the point: equal times fall through to the monotone seq tie-break
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
