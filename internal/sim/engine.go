// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock and an event queue ordered by (time, insertion sequence).
// It replaces the CSIM20 library the paper's simulator was built on.
//
// The engine is single-goroutine by design: all simulated "processes"
// (master, slaves, network flows) are event callbacks. Determinism — the
// same seed always yields the same schedule — is guaranteed by breaking
// time ties with a monotone sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. Cancel it via Engine.Cancel.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	fn    func()
	dead  bool // tombstoned by a lazy Cancel, discarded on pop
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e.index >= 0 && !e.dead }

// Engine is the simulation core. The zero value is not usable; call New.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nsteps uint64
	ndead  int  // tombstoned events still sitting in the queue
	eager  bool // remove cancelled events from the heap immediately

	// slab carves Event allocations out of fixed-size chunks: event churn
	// (one cancel + reschedule per flow per bandwidth recomputation) would
	// otherwise pay one heap allocation per Schedule call. Entries are
	// never reused; a chunk is reclaimed when all its events are.
	slab []Event
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns how many events have been dispatched; useful in tests and
// for detecting runaway simulations.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule queues fn to run after delay seconds of virtual time. A negative
// or NaN delay panics: it would corrupt the causal order and always
// indicates a bug in the caller.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at absolute virtual time t (>= Now).
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	if len(e.slab) == 0 {
		e.slab = make([]Event, 256)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	*ev = Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
//
// By default cancellation is lazy: the event is tombstoned in place (O(1))
// and silently discarded when it reaches the top of the heap. Tombstones
// are compacted in one pass whenever they outnumber live events 3:1, so
// the queue stays within 4x its live size. SetEagerCancel(true) restores
// the old O(log n) heap.Remove behavior; dispatch order is identical
// either way, since tombstoned events never run.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.dead {
		return
	}
	if e.eager {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
		return
	}
	ev.dead = true
	ev.fn = nil // release the closure now; the tombstone may linger
	e.ndead++
	if e.ndead > 3*(len(e.queue)-e.ndead) {
		e.compact()
	}
}

// SetEagerCancel toggles between lazy (default) and eager cancellation.
// Switching to eager flushes any existing tombstones.
func (e *Engine) SetEagerCancel(eager bool) {
	e.eager = eager
	if eager && e.ndead > 0 {
		e.compact()
	}
}

// compact rebuilds the queue without its tombstoned events. heap.Init
// re-establishes the heap property; pop order is unaffected because it is
// fully determined by the (time, seq) comparator.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.dead {
			ev.index = -1
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	for i, ev := range live {
		ev.index = i
	}
	e.queue = live
	e.ndead = 0
	heap.Init(&e.queue)
}

// Step dispatches the next live event, advancing the clock. It returns
// false if no live events remain. Tombstoned events are discarded without
// advancing the clock or counting a step.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			e.ndead--
			continue
		}
		e.now = ev.at
		e.nsteps++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty and returns the final
// clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			e.ndead--
			continue
		}
		e.now = ev.at
		e.nsteps++
		ev.fn()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of live queued events (tombstones excluded).
func (e *Engine) Pending() int { return e.queue.Len() - e.ndead }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq exact comparison is the point: equal times fall through to the monotone seq tie-break
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
