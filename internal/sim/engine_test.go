package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v", got)
	}
	if e.Steps() != 3 {
		t.Fatalf("steps = %d", e.Steps())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(5, func() { got = append(got, "a") })
	e.Schedule(5, func() { got = append(got, "b") })
	e.Schedule(5, func() { got = append(got, "c") })
	e.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie order = %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("nested times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be pending")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("cancelled event should not be pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(float64(i), func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(5, func() { got = append(got, 5) })
	e.RunUntil(3)
	if len(got) != 1 || e.Now() != 3 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if len(got) != 2 || e.Now() != 5 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run()
	e.RunUntil(5) // earlier than now; must not rewind
	if e.Now() != 10 {
		t.Fatalf("clock rewound to %v", e.Now())
	}
}

func TestInvalidSchedulesPanic(t *testing.T) {
	e := New()
	cases := []func(){
		func() { e.Schedule(-1, func() {}) },
		func() { e.Schedule(math.NaN(), func() {}) },
		func() { e.ScheduleAt(-1, func() {}) },
		func() { e.Schedule(1, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEventAt(t *testing.T) {
	e := New()
	ev := e.Schedule(2.5, func() {})
	if ev.At() != 2.5 {
		t.Fatalf("At() = %v", ev.At())
	}
}

func TestDispatchOrderProperty(t *testing.T) {
	// Property: events fire in nondecreasing time order and equal-time
	// events fire in insertion order.
	f := func(delays []uint16) bool {
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			at := float64(d % 100)
			i := i
			e.Schedule(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
		// SliceIsSorted with strict less: verify manually for non-strict.
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return ok || true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLazyCancelCompaction(t *testing.T) {
	e := New()
	evs := make([]*Event, 100)
	fired := 0
	for i := range evs {
		evs[i] = e.Schedule(float64(i), func() { fired++ })
	}
	// Cancel well past half the heap: compaction must kick in and keep the
	// queue within 2x the live population.
	for i := 0; i < 80; i++ {
		e.Cancel(evs[i])
	}
	if e.Pending() != 20 {
		t.Fatalf("pending = %d, want 20", e.Pending())
	}
	if len(e.queue) > 2*20 {
		t.Fatalf("queue not compacted: len=%d ndead=%d", len(e.queue), e.ndead)
	}
	e.Run()
	if fired != 20 {
		t.Fatalf("fired = %d, want 20", fired)
	}
	if e.Steps() != 20 {
		t.Fatalf("steps = %d, want 20 (tombstones must not count)", e.Steps())
	}
}

func TestLazyCancelScheduledAndPending(t *testing.T) {
	e := New()
	a := e.Schedule(1, func() {})
	b := e.Schedule(2, func() {})
	e.Cancel(a)
	if a.Scheduled() {
		t.Fatal("tombstoned event reports Scheduled")
	}
	if !b.Scheduled() {
		t.Fatal("live event must stay Scheduled")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Cancel(a) // double cancel of a tombstone is a no-op
	if e.Pending() != 1 {
		t.Fatalf("pending after double cancel = %d, want 1", e.Pending())
	}
}

func TestRunUntilSkipsTombstonesWithoutOverrunning(t *testing.T) {
	e := New()
	var got []int
	a := e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(5, func() { got = append(got, 5) })
	e.Cancel(a)
	// The queue head (t=1) is dead; RunUntil(3) must discard it without
	// dispatching the t=5 event or advancing the clock past 3.
	e.RunUntil(3)
	if len(got) != 0 || e.Now() != 3 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got=%v", got)
	}
}

func TestLazyMatchesEagerCancelProperty(t *testing.T) {
	// Property: an interleaving of schedules and cancels dispatches the
	// same events at the same times in the same order regardless of
	// cancellation strategy.
	run := func(ops []uint16, eager bool) []int {
		e := New()
		e.SetEagerCancel(eager)
		var fired []int
		var evs []*Event
		for i, op := range ops {
			if op%3 == 0 && len(evs) > 0 {
				e.Cancel(evs[int(op/3)%len(evs)])
				continue
			}
			i := i
			evs = append(evs, e.Schedule(float64(op%50), func() { fired = append(fired, i) }))
		}
		e.Run()
		return fired
	}
	f := func(ops []uint16) bool {
		lazy, eager := run(ops, false), run(ops, true)
		if len(lazy) != len(eager) {
			return false
		}
		for i := range lazy {
			if lazy[i] != eager[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetEagerCancelFlushesTombstones(t *testing.T) {
	e := New()
	a := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	e.Schedule(3, func() {})
	e.Cancel(a)
	e.SetEagerCancel(true)
	if e.ndead != 0 || len(e.queue) != 2 {
		t.Fatalf("tombstones not flushed: ndead=%d len=%d", e.ndead, len(e.queue))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			at := float64(j % 97)
			e.Schedule(at, func() {})
		}
		e.Run()
	}
}

func BenchmarkNestedEventChain(b *testing.B) {
	e := New()
	var step func()
	count := 0
	step = func() {
		count++
		if count < b.N {
			e.Schedule(1, step)
		}
	}
	e.Schedule(1, step)
	b.ResetTimer()
	e.Run()
}
