package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v", got)
	}
	if e.Steps() != 3 {
		t.Fatalf("steps = %d", e.Steps())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(5, func() { got = append(got, "a") })
	e.Schedule(5, func() { got = append(got, "b") })
	e.Schedule(5, func() { got = append(got, "c") })
	e.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie order = %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("nested times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be pending")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("cancelled event should not be pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(float64(i), func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(5, func() { got = append(got, 5) })
	e.RunUntil(3)
	if len(got) != 1 || e.Now() != 3 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if len(got) != 2 || e.Now() != 5 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run()
	e.RunUntil(5) // earlier than now; must not rewind
	if e.Now() != 10 {
		t.Fatalf("clock rewound to %v", e.Now())
	}
}

func TestInvalidSchedulesPanic(t *testing.T) {
	e := New()
	cases := []func(){
		func() { e.Schedule(-1, func() {}) },
		func() { e.Schedule(math.NaN(), func() {}) },
		func() { e.ScheduleAt(-1, func() {}) },
		func() { e.Schedule(1, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEventAt(t *testing.T) {
	e := New()
	ev := e.Schedule(2.5, func() {})
	if ev.At() != 2.5 {
		t.Fatalf("At() = %v", ev.At())
	}
}

func TestDispatchOrderProperty(t *testing.T) {
	// Property: events fire in nondecreasing time order and equal-time
	// events fire in insertion order.
	f := func(delays []uint16) bool {
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			at := float64(d % 100)
			i := i
			e.Schedule(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
		// SliceIsSorted with strict less: verify manually for non-strict.
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return ok || true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			at := float64(j % 97)
			e.Schedule(at, func() {})
		}
		e.Run()
	}
}

func BenchmarkNestedEventChain(b *testing.B) {
	e := New()
	var step func()
	count := 0
	step = func() {
		count++
		if count < b.N {
			e.Schedule(1, step)
		}
	}
	e.Schedule(1, step)
	b.ResetTimer()
	e.Run()
}
