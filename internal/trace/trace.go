// Package trace is the structured event layer of the cluster runtime:
// every lifecycle transition of a run — job submission, task scheduling
// decisions, transfers, degraded reads, shuffle, reduce processing,
// heartbeats — is emitted as a typed Event to a pluggable Sink. The
// per-task metrics (Result, the Table I breakdown) and the ASCII timeline
// are consumers of this stream rather than ad-hoc bookkeeping, so a
// recorded trace reconstructs them exactly. Beyond the paper's aggregate
// figures, the stream supports the per-request latency analyses of the
// MDS-queue line of work.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Type names one lifecycle event kind.
type Type string

// Event types emitted by the cluster runtime.
const (
	// EvRunStart opens a run; Name carries the scheduler name.
	EvRunStart Type = "run-start"
	// EvNodeFail marks a node failure (T=0 for pre-run failures).
	EvNodeFail Type = "node-fail"
	// EvJobSubmit enters a job into the job queue; N is its map count.
	EvJobSubmit Type = "job-submit"
	// EvJobQueued marks the job entering the job-scheduler queue (same
	// instant as its submission); Name carries the job's tenant. Closed
	// by EvJobGrant (first map-slot grant) or, for jobs that never get
	// one, EvJobFinish.
	EvJobQueued Type = "job-queued"
	// EvJobGrant marks a job's first map-slot grant: Node is the
	// granting slave, Name the tenant. T minus the matching EvJobQueued
	// T is the job's queueing delay (Result.Jobs[i].QueueDelay).
	EvJobGrant Type = "job-grant"
	// EvTaskScheduled is one scheduler decision: job/task assigned to a
	// node with a locality class. The golden backend-equivalence test
	// compares these sequences.
	EvTaskScheduled Type = "task-scheduled"
	// EvTaskLaunch starts the map task on its node (same instant as the
	// scheduling decision in the heartbeat model).
	EvTaskLaunch Type = "task-launch"
	// EvDegradedPlan records a planned degraded read: N sources, Bytes
	// total download volume. Exactly one per degraded task launch.
	EvDegradedPlan Type = "degraded-read-planned"
	// EvDegradedDone marks the completion of a degraded read: the first k
	// sources have arrived (all sources when hedging is off).
	EvDegradedDone Type = "degraded-read-done"
	// EvFlowLatency records one degraded-read source flow's outcome under
	// an active hedge policy. Dur is the flow's observed latency (start to
	// completion, or start to cancellation for losers), Src the source
	// node, N the flow ID. Class is "won" for a flow whose bytes fed the
	// reconstruction and "lost" for a redundant flow cancelled after the
	// first k completed; for lost flows Bytes is the wasted volume already
	// moved. Emitted only when a hedge policy is active.
	EvFlowLatency Type = "flow-latency"
	// EvHedgeLaunch records a hedge: a standby source launched because an
	// in-flight flow exceeded its percentile deadline. Src is the standby
	// source node, N the flow ID of the slow flow being hedged, Bytes the
	// deadline that was exceeded (virtual seconds). Closed by the matching
	// EvFlowLatency of the hedge flow (or EvTaskRequeue on failure).
	// Emitted only when a hedge policy is active.
	EvHedgeLaunch Type = "hedge-launch"
	// EvMapStart begins map processing (input ready).
	EvMapStart Type = "map-start"
	// EvTaskFinish completes a map task.
	EvTaskFinish Type = "task-finish"
	// EvTaskRequeue returns a task to the pending pool (failure recovery).
	EvTaskRequeue Type = "task-requeue"
	// EvMapPhaseEnd closes a job's map phase.
	EvMapPhaseEnd Type = "map-phase-end"
	// EvReduceLaunch assigns a reduce task (Task is the reducer index).
	EvReduceLaunch Type = "reduce-launch"
	// EvReduceStart begins reduce processing; Bytes is the shuffle volume
	// received.
	EvReduceStart Type = "reduce-start"
	// EvReduceFinish completes a reduce task.
	EvReduceFinish Type = "reduce-finish"
	// EvReduceReset restarts a reducer lost to a node failure.
	EvReduceReset Type = "reduce-reset"
	// EvJobFinish completes a job.
	EvJobFinish Type = "job-finish"
	// EvTransferStart begins a network flow (N is the flow ID).
	EvTransferStart Type = "transfer-start"
	// EvTransferEnd completes a network flow.
	EvTransferEnd Type = "transfer-finish"
	// EvTransferCancel aborts a network flow (failure recovery).
	EvTransferCancel Type = "transfer-cancel"
	// EvFlowRate records a flow's reallocated bandwidth after a network
	// recomputation (N is the flow ID, Bytes the rate in bytes/sec, -1
	// when the flow crosses only unlimited links: JSON has no +Inf).
	// Emitted only when flow-rate tracing is enabled.
	EvFlowRate Type = "flow-rate"
	// EvRepairQueued marks one stripe entering (or re-entering) the
	// background repair queue. Name is the file, Task the stripe index, N
	// the number of lost blocks still pending repair, Bytes the estimated
	// network read volume of the repair. Class is "scan" for a fresh scan
	// finding, "requeue" for a stripe whose in-flight repair was cancelled
	// by another failure (re-queued at boosted priority), or
	// "unrepairable" for a stripe with more than n-k losses — reported,
	// never launched. Emitted only when a repair config is active.
	EvRepairQueued Type = "repair-queued"
	// EvRepairLaunch starts the reconstruction of one lost block: Name is
	// the file, Task the stripe index, N the block index within the
	// stripe, Node the destination holder of the rebuilt block, Bytes the
	// total source read volume, and Class "local" (LRC local-group
	// repair) or "global" (full k-source reconstruction). Closed by the
	// matching EvRepairDone, or by an EvRepairQueued requeue when a
	// failure cancels the repair. Emitted only when repair is active.
	EvRepairLaunch Type = "repair-launch"
	// EvRepairDone commits one rebuilt block, with the same identity
	// fields as its EvRepairLaunch. Emitted only when repair is active.
	EvRepairDone Type = "repair-done"
	// EvHeartbeat is one slave heartbeat being served; N is its free map
	// slots before assignment.
	EvHeartbeat Type = "heartbeat"
	// EvSlotIdle marks map slots left idle by a heartbeat while
	// unassigned work remained (the cost the pacing rule trades against).
	EvSlotIdle Type = "slot-idle"
	// EvRunEnd closes a run.
	EvRunEnd Type = "run-end"
)

// Wire-level events emitted by the distributed runtime (internal/
// cluster). Unlike the lifecycle events above, their T field carries
// *real* seconds since the emitting process's run epoch — worker
// processes have no view of the master's virtual clock. The Result
// builder ignores them, so a merged stream still rebuilds the same
// Result as the virtual events alone; their Run label tells the two
// clocks apart.
const (
	// EvWorkerJoin marks a worker registering with the master; Node is
	// its assigned node ID, Name its peer address.
	EvWorkerJoin Type = "worker-join"
	// EvWorkerLost marks the master declaring a worker dead; Name carries
	// the reason (missed heartbeats, connection error).
	EvWorkerLost Type = "worker-lost"
	// EvWireFetch is one real block (or degraded-read source) fetch by a
	// worker; Src is the peer node, Bytes the payload size.
	EvWireFetch Type = "wire-fetch"
	// EvWireMap marks a worker finishing the real map function; Bytes is
	// the input size.
	EvWireMap Type = "wire-map"
	// EvWireShuffle is one real shuffle-partition pull by a reducer's
	// worker; Src is the mapper's node, Bytes the partition size.
	EvWireShuffle Type = "wire-shuffle"
	// EvWireReduce marks a worker finishing the real reduce function; N
	// is the output record count.
	EvWireReduce Type = "wire-reduce"
	// EvWireRepair marks a worker finishing a real block reconstruction
	// on the master's command: it fetched the source blocks from peers,
	// decoded the lost block, and stored it. Name is the file, Task the
	// stripe, N the block index, Bytes the rebuilt block size.
	EvWireRepair Type = "wire-repair"
)

// Event is one structured lifecycle event. Integer fields use -1 for "not
// applicable" so that node/job/task 0 stays unambiguous; New presets them.
// Times are virtual seconds. The JSON field order is fixed by this struct,
// and float64 values round-trip exactly through encoding/json, so a JSONL
// trace reconstructs in-memory results bit-for-bit.
type Event struct {
	T     float64 `json:"t"`
	Type  Type    `json:"ev"`
	Run   string  `json:"run,omitempty"` // label of the run (experiment/seed/scheduler)
	Job   int     `json:"job"`
	Task  int     `json:"task"` // map index, or reducer index for reduce events
	Node  int     `json:"node"`
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Class string  `json:"class,omitempty"`
	Bytes float64 `json:"bytes"`
	N     int     `json:"n"`             // generic count: sources, slots, flow ID, maps
	Dur   float64 `json:"dur,omitempty"` // interval length (flow latency); 0 omits
	Name  string  `json:"name,omitempty"`
}

// New returns an event at time t with every integer field preset to -1.
func New(t float64, typ Type) Event {
	return Event{T: t, Type: typ, Job: -1, Task: -1, Node: -1, Src: -1, Dst: -1, N: -1}
}

// Sink receives events. Implementations must tolerate concurrent Emit
// calls when runs execute in parallel (the JSONL writer locks; Memory
// locks; Null does nothing).
type Sink interface {
	Emit(Event)
}

// Null discards every event. The zero value is ready to use.
type Null struct{}

// Emit implements Sink.
func (Null) Emit(Event) {}

// Memory buffers events in order, for tests and in-process analysis.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (m *Memory) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the buffered events.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Reset drops all buffered events.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}

// JSONL writes one JSON object per line. Lines are written atomically
// under a mutex so parallel runs interleave whole events, never bytes.
type JSONL struct {
	mu     sync.Mutex
	w      *bufio.Writer
	out    io.Writer
	err    error
	closed bool
}

// NewJSONL returns a JSONL sink over w. Call Close (or at least Flush)
// before discarding the sink, or buffered events are lost.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), out: w}
}

// Emit implements Sink. The first write error is retained (see Err) and
// subsequent events are dropped, as are events emitted after Close.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Flush drains the buffer to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Close flushes buffered events, closes the underlying writer when it
// implements io.Closer, and returns the first error the sink hit at any
// point — so a short write detected only at flush time surfaces here
// rather than vanishing at process exit. Close is idempotent: repeated
// calls return the same error, and events emitted after Close are
// dropped.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if ferr := j.w.Flush(); ferr != nil && j.err == nil {
		j.err = ferr
	}
	if c, ok := j.out.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}

// Err returns the first error encountered while writing.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL parses a JSONL trace back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// labeled stamps a run label onto every event before forwarding.
type labeled struct {
	sink  Sink
	label string
}

// Emit implements Sink.
func (l labeled) Emit(e Event) {
	if e.Run == "" {
		e.Run = l.label
	}
	l.sink.Emit(e)
}

// WithLabel wraps sink so every event carries the given run label (unless
// already labeled). A nil sink stays nil.
func WithLabel(sink Sink, label string) Sink {
	if sink == nil || label == "" {
		return sink
	}
	return labeled{sink: sink, label: label}
}

// Multi fans events out to several sinks; nil entries are skipped.
func Multi(sinks ...Sink) Sink {
	var kept []Sink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multi(kept)
}

type multi []Sink

// Emit implements Sink.
func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// FilterType returns the events of the given type, in order.
func FilterType(events []Event, typ Type) []Event {
	var out []Event
	for _, e := range events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}
