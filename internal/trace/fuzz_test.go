package trace

import (
	"bytes"
	"math"
	"testing"
	"unicode/utf8"
)

// FuzzJSONLRoundTrip fuzzes every Event field and asserts the invariant
// figure reproduction rests on: a JSONL trace written, read back, and
// written again is byte-identical, and (for encodable inputs) the decoded
// event equals the original — virtual times and byte counts survive the
// JSON round-trip exactly.
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add(0.0, string(EvRunStart), "", -1, -1, -1, -1, -1, "", 0.0, -1, "lf")
	f.Add(12.75, string(EvTaskLaunch), "fig4/lf", 0, 3, 7, -1, -1, "degraded", 0.0, -1, "")
	f.Add(99.5, string(EvTransferEnd), "exp", 1, -1, -1, 2, 9, "", 64e6, 17, "")
	f.Add(1e-9, string(EvHeartbeat), "run \"quoted\"", 0, 0, 0, 0, 0, "local\nnewline", -0.5, 2, "wc")
	f.Fuzz(func(t *testing.T, tm float64, typ, run string, job, task, node, src, dst int, class string, bytesF float64, n int, name string) {
		e := Event{
			T: tm, Type: Type(typ), Run: run,
			Job: job, Task: task, Node: node, Src: src, Dst: dst,
			Class: class, Bytes: bytesF, N: n, Name: name,
		}

		var buf1 bytes.Buffer
		w1 := NewJSONL(&buf1)
		w1.Emit(e)
		if err := w1.Flush(); err != nil {
			// NaN/Inf are not encodable in JSON; the sink retains the
			// error instead of corrupting the stream.
			if !math.IsNaN(tm) && !math.IsInf(tm, 0) && !math.IsNaN(bytesF) && !math.IsInf(bytesF, 0) {
				t.Fatalf("Flush failed on encodable event %+v: %v", e, err)
			}
			return
		}

		events, err := ReadJSONL(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("ReadJSONL failed on %q: %v", buf1.Bytes(), err)
		}
		if len(events) != 1 {
			t.Fatalf("read %d events, want 1 (stream %q)", len(events), buf1.Bytes())
		}

		var buf2 bytes.Buffer
		w2 := NewJSONL(&buf2)
		w2.Emit(events[0])
		if err := w2.Flush(); err != nil {
			t.Fatalf("re-encoding decoded event: %v", err)
		}

		if utf8.ValidString(typ) && utf8.ValidString(run) && utf8.ValidString(class) && utf8.ValidString(name) {
			// The invariant the figures rest on: for the events the
			// runtime actually emits (valid UTF-8 strings), the stream
			// and the event round-trip exactly.
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				t.Fatalf("write-read-write not byte-identical:\n first: %q\nsecond: %q", buf1.Bytes(), buf2.Bytes())
			}
			if events[0] != e {
				t.Fatalf("decoded event %+v != original %+v", events[0], e)
			}
			return
		}

		// encoding/json replaces invalid UTF-8 with U+FFFD, so the first
		// write is lossy; the round-trip must still reach a fixed point
		// after one write.
		events2, err := ReadJSONL(bytes.NewReader(buf2.Bytes()))
		if err != nil || len(events2) != 1 {
			t.Fatalf("re-reading sanitized stream %q: %d events, %v", buf2.Bytes(), len(events2), err)
		}
		var buf3 bytes.Buffer
		w3 := NewJSONL(&buf3)
		w3.Emit(events2[0])
		if err := w3.Flush(); err != nil {
			t.Fatalf("third encoding: %v", err)
		}
		if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
			t.Fatalf("sanitized stream is not a fixed point:\nsecond: %q\n third: %q", buf2.Bytes(), buf3.Bytes())
		}
	})
}
