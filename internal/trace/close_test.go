package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// failAfterWriter accepts n bytes, then fails every write.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// closerBuffer records whether Close was called and can fail it.
type closerBuffer struct {
	bytes.Buffer
	closed   bool
	closeErr error
}

func (c *closerBuffer) Close() error {
	c.closed = true
	return c.closeErr
}

func TestJSONLCloseFlushesAndClosesWriter(t *testing.T) {
	out := &closerBuffer{}
	j := NewJSONL(out)
	j.Emit(Event{Type: EvJobSubmit})
	// Emit buffers; nothing reaches the writer until flush or close.
	if out.Len() != 0 {
		t.Fatal("Emit bypassed the buffer")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close() = %v", err)
	}
	if !out.closed {
		t.Fatal("Close did not close the underlying writer")
	}
	if lines := strings.Count(out.String(), "\n"); lines != 1 {
		t.Fatalf("flushed %d events, want 1", lines)
	}
}

func TestJSONLCloseSurfacesDeferredWriteError(t *testing.T) {
	// The sink buffers, so a full writer is invisible to Emit — the
	// error must surface at Close instead of vanishing at process exit.
	boom := errors.New("disk full")
	j := NewJSONL(&failAfterWriter{n: 4, err: boom})
	j.Emit(Event{Type: EvJobSubmit})
	if err := j.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the deferred write error", err)
	}
}

func TestJSONLCloseSurfacesCloserError(t *testing.T) {
	boom := errors.New("close failed")
	out := &closerBuffer{closeErr: boom}
	j := NewJSONL(out)
	j.Emit(Event{Type: EvJobSubmit})
	if err := j.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the closer's error", err)
	}
}

func TestJSONLCloseIdempotentAndDropsLateEvents(t *testing.T) {
	out := &closerBuffer{closeErr: errors.New("once")}
	j := NewJSONL(out)
	j.Emit(Event{Type: EvJobSubmit})
	first := j.Close()
	if first == nil {
		t.Fatal("Close() = nil, want the closer's error")
	}
	out.closeErr = nil // a second Close must not re-close the writer
	if again := j.Close(); !errors.Is(again, first) {
		t.Fatalf("second Close() = %v, want the first error %v", again, first)
	}
	before := out.Len()
	j.Emit(Event{Type: EvTaskFinish})
	if err := j.Flush(); err == nil {
		t.Fatal("Flush() after a failed Close = nil, want the retained error")
	}
	if out.Len() != before {
		t.Fatal("event emitted after Close reached the writer")
	}
}
