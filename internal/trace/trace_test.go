package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestNewPresetsUnsetFields(t *testing.T) {
	e := New(1.5, EvTaskLaunch)
	if e.T != 1.5 || e.Type != EvTaskLaunch {
		t.Fatalf("header wrong: %+v", e)
	}
	for name, v := range map[string]int{
		"Job": e.Job, "Task": e.Task, "Node": e.Node, "Src": e.Src, "Dst": e.Dst, "N": e.N,
	} {
		if v != -1 {
			t.Errorf("%s = %d, want -1", name, v)
		}
	}
}

func TestMemorySink(t *testing.T) {
	var m Memory
	m.Emit(New(0, EvRunStart))
	m.Emit(New(1, EvRunEnd))
	got := m.Events()
	if len(got) != 2 || got[0].Type != EvRunStart || got[1].Type != EvRunEnd {
		t.Fatalf("events = %v", got)
	}
	// The returned slice is a copy.
	got[0].Type = EvNodeFail
	if m.Events()[0].Type != EvRunStart {
		t.Fatal("Events must return a copy")
	}
	m.Reset()
	if len(m.Events()) != 0 {
		t.Fatal("Reset must drop events")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		New(0, EvRunStart),
		{T: 3.25, Type: EvTaskScheduled, Run: "r", Job: 0, Task: 7, Node: 2,
			Src: -1, Dst: -1, Class: "degraded", Bytes: 128e6, N: 2},
		New(9.5, EvRunEnd),
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(events) {
		t.Fatalf("lines = %d, want %d", lines, len(events))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip altered events:\n got %+v\nwant %+v", got, events)
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader("\n" + `{"t":1,"ev":"run-end"}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != EvRunEnd {
		t.Fatalf("events = %v", got)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage must fail")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should name the line: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLRetainsFirstError(t *testing.T) {
	sink := NewJSONL(failWriter{})
	for i := 0; i < 10000; i++ {
		sink.Emit(New(float64(i), EvHeartbeat))
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("flush over a failing writer must error")
	}
	if sink.Err() == nil || !strings.Contains(sink.Err().Error(), "disk full") {
		t.Fatalf("Err = %v", sink.Err())
	}
}

func TestWithLabel(t *testing.T) {
	if WithLabel(nil, "x") != nil {
		t.Fatal("nil sink must stay nil")
	}
	var m Memory
	if got := WithLabel(&m, ""); got != Sink(&m) {
		t.Fatal("empty label must return the sink unchanged")
	}
	s := WithLabel(&m, "runA")
	s.Emit(New(0, EvRunStart))
	pre := New(1, EvRunEnd)
	pre.Run = "already"
	s.Emit(pre)
	events := m.Events()
	if events[0].Run != "runA" {
		t.Errorf("unlabeled event got %q", events[0].Run)
	}
	if events[1].Run != "already" {
		t.Errorf("pre-labeled event overwritten to %q", events[1].Run)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("no live sinks must collapse to nil")
	}
	var a Memory
	if got := Multi(nil, &a); got != Sink(&a) {
		t.Fatal("single live sink must be returned directly")
	}
	var b Memory
	s := Multi(&a, nil, &b)
	s.Emit(New(0, EvRunStart))
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("event not fanned out to all sinks")
	}
}

func TestFilterType(t *testing.T) {
	events := []Event{New(0, EvRunStart), New(1, EvHeartbeat), New(2, EvHeartbeat), New(3, EvRunEnd)}
	got := FilterType(events, EvHeartbeat)
	if len(got) != 2 || got[0].T != 1 || got[1].T != 2 {
		t.Fatalf("filtered = %v", got)
	}
	if FilterType(events, EvNodeFail) != nil {
		t.Fatal("no matches must return nil")
	}
}
