// Incremental fluid solver. Progressive filling is restructured so the
// per-iteration work is driven by per-link active-flow indexes instead of
// sweeps over every flow and every link:
//
//   - Each finite link keeps the list of contending flows crossing it, so
//     the freeze step visits only the saturated link's flows.
//   - Per-flow rate accumulation (`f.rate += inc` per iteration) is
//     replaced by one running water level: the partial sums are the same
//     float64 additions in the same order, so assigning `f.rate = level`
//     at freeze time is bitwise identical to the reference solver.
//   - Frozen flags are solve-epoch stamps, eliminating the O(flows) reset
//     pass.
//
// Completion events are deliberately cancelled and rescheduled for every
// flow, exactly like the reference solver, rather than left in place when
// a flow's rate (or even its bitwise completion time) is unchanged.
// Keeping an event preserves its old sequence number, and equal completion
// times are common (equal block sizes at equal rates), so a kept event
// would fire *before* a same-instant rescheduled one where the reference
// schedule fires it after — flipping the finish order inside a time tie
// and sending every subsequent advance down a different rounding path.
// Rescheduling everything keeps the Schedule-call sequence — and therefore
// every (time, seq) pair — identical to the reference engine run; the
// engine's lazy cancellation makes the cancel side O(1).
//
// Equivalence with RefRecompute is pinned by TestIncrementalMatchesReference
// and FuzzNetsimEquivalence.

package netsim

import "math"

// indexFlow registers a contending fluid flow in the active list of each
// finite link it crosses, recording its position for O(1) removal.
// Unlimited links never constrain the solve and are not indexed.
func (n *Net) indexFlow(f *Flow) {
	if len(f.path) <= len(f.linkPosBuf) {
		f.linkPos = f.linkPosBuf[:len(f.path)]
	} else {
		f.linkPos = make([]int, len(f.path))
	}
	for i, l := range f.path {
		if !l.finite {
			f.linkPos[i] = -1
			continue
		}
		if len(l.active) == 0 && !l.inActive {
			l.inActive = true
			n.activeLinks = append(n.activeLinks, l)
		}
		f.linkPos[i] = len(l.active)
		l.active = append(l.active, f)
	}
	n.ncontending++
}

// unindexFlow removes f from its links' active lists by swapping with the
// last entry; the moved flow's recorded position is patched (paths are a
// handful of links — 2 per tier plus NICs and core — all distinct).
func (n *Net) unindexFlow(f *Flow) {
	for i, l := range f.path {
		pos := f.linkPos[i]
		if pos < 0 {
			continue
		}
		last := len(l.active) - 1
		moved := l.active[last]
		l.active[pos] = moved
		l.active[last] = nil
		l.active = l.active[:last]
		if moved != f {
			for j, ml := range moved.path {
				if ml == l {
					moved.linkPos[j] = pos
					break
				}
			}
		}
	}
	f.linkPos = nil
	n.ncontending--
}

// pruneActiveLinks drops links whose active lists have emptied and returns
// the live set. Order is first-activation order, which only affects the
// order saturated links are visited — freezing is commutative, so the
// solve result is unchanged.
func (n *Net) pruneActiveLinks() []*link {
	kept := n.activeLinks[:0]
	for _, l := range n.activeLinks {
		if len(l.active) == 0 {
			l.inActive = false
			continue
		}
		kept = append(kept, l)
	}
	for i := len(kept); i < len(n.activeLinks); i++ {
		n.activeLinks[i] = nil
	}
	n.activeLinks = kept
	return kept
}

// incRecompute is the incremental fluid solver; see the package comment
// above for the restructuring and the bitwise-equivalence argument.
func (n *Net) incRecompute() {
	now := n.eng.Now()
	// Advance progress at the old rates. This full pass is kept: advancing
	// a flow in one step versus several intermediate steps rounds
	// differently, so lazily advancing only touched flows would drift off
	// the reference schedule.
	for _, f := range n.flows {
		//lint:ignore floateq exact match is required: only a bitwise-equal timestamp guarantees rate*(now-updateTime) is exactly rate*0
		if f.updateTime == now {
			// Same-instant recompute: the advance would subtract rate*0,
			// which leaves `remaining` bitwise unchanged, so skip the
			// arithmetic. Same-instant cascades (batch admissions,
			// zero-byte completions) make this the common case.
			continue
		}
		if f.rate > 0 && !math.IsInf(f.rate, 1) {
			f.remaining -= f.rate * (now - f.updateTime)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.updateTime = now
	}
	// Progressive filling over the link indexes. The filling loop works on
	// a compacting copy of the active set: a link whose flows have all
	// frozen can never bound a later water-level increment or freeze
	// anything again, so it is dropped instead of re-skipped every
	// iteration — at 10k-node scale most links freeze their flows in the
	// first iteration and the sweeps shrink accordingly. Dropping is
	// bitwise-neutral: min() over shares is order-independent, residual
	// updates touch only links with unfrozen flows, and freezing is
	// commutative.
	n.epoch++
	epoch := n.epoch
	links := n.pruneActiveLinks()
	work := n.workLinks[:0]
	for _, l := range links {
		l.residual = l.capacity
		l.unfrozen = len(l.active)
		work = append(work, l)
	}
	n.workLinks = work
	unfrozen := n.ncontending
	level := 0.0
	for unfrozen > 0 {
		inc := math.Inf(1)
		for _, l := range work {
			if l.unfrozen == 0 {
				continue
			}
			if share := l.residual / float64(l.unfrozen); share < inc {
				inc = share
			}
		}
		if math.IsInf(inc, 1) {
			// Remaining flows cross only unlimited links.
			for _, f := range n.flows {
				if len(f.path) > 0 && f.frozenEpoch != epoch {
					f.rate = math.Inf(1)
					f.frozenEpoch = epoch
				}
			}
			break
		}
		level += inc
		for _, l := range work {
			if l.unfrozen > 0 {
				l.residual -= inc * float64(l.unfrozen)
			}
		}
		// Freeze the flows crossing saturated links, compacting the
		// working set as links run out of unfrozen flows. A kept link
		// whose count a later freeze zeroes lingers one iteration and is
		// dropped on the next sweep.
		kept := work[:0]
		for _, l := range work {
			if l.unfrozen > 0 && l.residual <= 1e-9*l.capacity {
				for _, g := range l.active {
					if g.frozenEpoch == epoch {
						continue
					}
					g.frozenEpoch = epoch
					g.rate = level
					unfrozen--
					for _, gl := range g.path {
						if gl.finite {
							gl.unfrozen--
						}
					}
				}
			}
			if l.unfrozen > 0 {
				kept = append(kept, l)
			}
		}
		for i := len(kept); i < len(work); i++ {
			work[i] = nil
		}
		work = kept
	}
	// Reschedule every completion (see the header comment for why events
	// are never kept in place). Cancellation is an O(1) tombstone.
	for _, f := range n.flows {
		if f.ev != nil {
			n.eng.Cancel(f.ev)
			f.ev = nil
		}
		var dt float64
		switch {
		case len(f.path) == 0:
			dt = 0 // node-local transfers complete immediately
		case f.remaining <= 0:
			dt = 0
		case math.IsInf(f.rate, 1):
			dt = 0
		case f.rate <= 0:
			continue // starved; will be rescheduled by a later recompute
		default:
			dt = f.remaining / f.rate
		}
		f.ev = n.eng.Schedule(dt, f.finishFn)
	}
	n.emitRateChanges()
}

// noteRate reports f's rate through Hooks.RateChange if it changed since
// the last report.
func (n *Net) noteRate(f *Flow) {
	if n.hooks.RateChange == nil {
		return
	}
	//lint:ignore floateq rate-change hooks fire on exact allocation changes; tolerance would suppress real reallocations
	if f.rate != f.prevRate {
		f.prevRate = f.rate
		n.hooks.RateChange(f)
	}
}

// emitRateChanges reports every changed rate after a solve, in flow
// admission order.
func (n *Net) emitRateChanges() {
	if n.hooks.RateChange == nil {
		return
	}
	for _, f := range n.flows {
		n.noteRate(f)
	}
}
