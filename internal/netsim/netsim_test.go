package netsim

import (
	"math"
	"testing"

	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

// twoRacks builds the paper's Figure 2 shape: 5 nodes, racks of 3 and 2.
func twoRacks() *topology.Cluster {
	return topology.MustNew(topology.Config{
		Nodes: 5, Racks: 2, MapSlotsPerNode: 2, RackSizes: []int{3, 2},
	})
}

func mustNet(t *testing.T, eng *sim.Engine, c *topology.Cluster, cfg Config) *Net {
	t.Helper()
	n, err := New(eng, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	c := twoRacks()
	if _, err := New(nil, c, Config{}); err == nil {
		t.Fatal("nil engine must fail")
	}
	if _, err := New(eng, nil, Config{}); err == nil {
		t.Fatal("nil cluster must fail")
	}
	if _, err := New(eng, c, Config{Mode: Mode(9)}); err == nil {
		t.Fatal("bad mode must fail")
	}
	if _, err := New(eng, c, Config{RackBps: -1}); err == nil {
		t.Fatal("negative capacity must fail")
	}
	n := mustNet(t, eng, c, Config{})
	if n.Mode() != FluidFairSharing {
		t.Fatal("default mode must be fluid")
	}
}

func TestModeString(t *testing.T) {
	if FluidFairSharing.String() != "fluid" || ExclusiveHold.String() != "hold" || Mode(7).String() == "" {
		t.Fatal("mode strings wrong")
	}
}

func TestSingleCrossRackFlowMatchesMotivatingExample(t *testing.T) {
	// Paper Section III: 100 Mbps switches, 128 MB block -> ~10 s.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	var doneAt sim.Time = -1
	n.StartFlow(3, 0, 128e6, func(*Flow) { doneAt = eng.Now() })
	eng.Run()
	want := 128e6 / (100 * Mbps) // 10.24 s
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("cross-rack transfer took %v, want %v", doneAt, want)
	}
}

func TestTwoFlowsShareRackDownlinkFluid(t *testing.T) {
	// Two cross-rack flows into the same rack share its downlink: both
	// complete at 2x the solo time (the "10 s becomes 20 s" effect).
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	var t1, t2 sim.Time = -1, -1
	n.StartFlow(3, 0, 128e6, func(*Flow) { t1 = eng.Now() })
	n.StartFlow(4, 1, 128e6, func(*Flow) { t2 = eng.Now() })
	eng.Run()
	want := 2 * 128e6 / (100 * Mbps)
	if math.Abs(t1-want) > 1e-6 || math.Abs(t2-want) > 1e-6 {
		t.Fatalf("shared-downlink flows finished at %v and %v, want both %v", t1, t2, want)
	}
}

func TestTwoFlowsSerializeInHoldMode(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	var t1, t2 sim.Time = -1, -1
	n.StartFlow(3, 0, 128e6, func(*Flow) { t1 = eng.Now() })
	n.StartFlow(4, 1, 128e6, func(*Flow) { t2 = eng.Now() })
	eng.Run()
	solo := 128e6 / (100 * Mbps)
	if math.Abs(t1-solo) > 1e-6 {
		t.Fatalf("first hold flow finished at %v, want %v", t1, solo)
	}
	if math.Abs(t2-2*solo) > 1e-6 {
		t.Fatalf("second hold flow finished at %v, want %v", t2, 2*solo)
	}
}

func TestDisjointRacksDoNotContend(t *testing.T) {
	// Rack0 -> rack1 and rack1 -> rack0 use different up/down links:
	// both complete in solo time in both modes.
	for _, mode := range []Mode{FluidFairSharing, ExclusiveHold} {
		eng := sim.New()
		n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: mode})
		var t1, t2 sim.Time = -1, -1
		n.StartFlow(0, 3, 128e6, func(*Flow) { t1 = eng.Now() })
		n.StartFlow(4, 1, 128e6, func(*Flow) { t2 = eng.Now() })
		eng.Run()
		solo := 128e6 / (100 * Mbps)
		if math.Abs(t1-solo) > 1e-6 || math.Abs(t2-solo) > 1e-6 {
			t.Fatalf("mode %v: disjoint flows finished at %v/%v, want %v", mode, t1, t2, solo)
		}
	}
}

func TestIntraRackUsesNICOnly(t *testing.T) {
	// Within a rack only the NICs constrain; with unlimited NICs the
	// transfer is instantaneous, with 1 Gbps NICs it takes bytes/Gbps.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	var doneAt sim.Time = -1
	n.StartFlow(0, 1, 128e6, func(*Flow) { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 0 {
		t.Fatalf("intra-rack with unlimited NICs took %v, want 0", doneAt)
	}

	eng2 := sim.New()
	n2 := mustNet(t, eng2, twoRacks(), Config{RackBps: 100 * Mbps, NodeBps: Gbps})
	doneAt = -1
	n2.StartFlow(0, 1, 128e6, func(*Flow) { doneAt = eng2.Now() })
	eng2.Run()
	want := 128e6 / Gbps
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("intra-rack with 1Gbps NICs took %v, want %v", doneAt, want)
	}
}

func TestNodeLocalFlowInstant(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: Mbps, NodeBps: Mbps})
	var doneAt sim.Time = -1
	n.StartFlow(2, 2, 1e9, func(*Flow) { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 0 {
		t.Fatalf("node-local flow took %v", doneAt)
	}
}

func TestZeroByteFlow(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: Mbps})
	fired := false
	n.StartFlow(0, 3, 0, func(*Flow) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte flow must still complete")
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative bytes did not panic")
		}
	}()
	n.StartFlow(0, 1, -5, nil)
}

func TestMaxMinUnevenSharing(t *testing.T) {
	// Three flows from distinct rack-0 nodes into rack 1: they share the
	// rack-0 uplink (and rack-1 downlink) three ways.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 120 * Mbps})
	var done []sim.Time
	bytes := 15e6 // solo time = 1 s at 120 Mbps = 15 MB/s
	for i := 0; i < 3; i++ {
		dst := topology.NodeID(3 + i%2)
		n.StartFlow(topology.NodeID(i), dst, bytes, func(*Flow) { done = append(done, eng.Now()) })
	}
	eng.Run()
	// All three share the uplink equally: each gets 5 MB/s -> 3 s.
	for _, d := range done {
		if math.Abs(d-3) > 1e-6 {
			t.Fatalf("three-way shared flows done at %v, want 3", done)
		}
	}
}

func TestRateReallocationAfterCompletion(t *testing.T) {
	// Flow A: 15 MB, flow B: 30 MB, same bottleneck (cap 15 MB/s).
	// Phase 1: both at 7.5 MB/s. A finishes at 2 s (15/7.5). B then speeds
	// up to 15 MB/s with 15 MB left -> finishes at 3 s.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 120 * Mbps})
	var ta, tb sim.Time
	n.StartFlow(0, 3, 15e6, func(*Flow) { ta = eng.Now() })
	n.StartFlow(1, 4, 30e6, func(*Flow) { tb = eng.Now() })
	eng.Run()
	if math.Abs(ta-2) > 1e-6 {
		t.Fatalf("flow A done at %v, want 2", ta)
	}
	if math.Abs(tb-3) > 1e-6 {
		t.Fatalf("flow B done at %v, want 3", tb)
	}
}

func TestLateArrivalSlowsExistingFlow(t *testing.T) {
	// A starts alone (15 MB/s); B arrives at t=1 when A has 15 MB left.
	// They then share at 7.5 MB/s: A finishes at 1 + 2 = 3 s.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 120 * Mbps})
	var ta, tb sim.Time
	n.StartFlow(0, 3, 30e6, func(*Flow) { ta = eng.Now() })
	eng.Schedule(1, func() {
		n.StartFlow(1, 4, 30e6, func(*Flow) { tb = eng.Now() })
	})
	eng.Run()
	if math.Abs(ta-3) > 1e-6 {
		t.Fatalf("flow A done at %v, want 3", ta)
	}
	// B: shares 7.5 until t=3 (15 MB moved), then 15 MB/s for remaining
	// 15 MB -> t=4.
	if math.Abs(tb-4) > 1e-6 {
		t.Fatalf("flow B done at %v, want 4", tb)
	}
}

func TestNICBottleneckOverRack(t *testing.T) {
	// NIC slower than rack link: single flow limited by NIC.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: Gbps, NodeBps: 100 * Mbps})
	var doneAt sim.Time
	n.StartFlow(0, 3, 12.5e6, func(*Flow) { doneAt = eng.Now() })
	eng.Run()
	want := 12.5e6 / (100 * Mbps) // 1 s
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("NIC-limited flow took %v, want %v", doneAt, want)
	}
}

func TestCoreCapacityShared(t *testing.T) {
	// Core limited to 100 Mbps; two cross-rack flows in the same direction
	// through different rack links still share the core.
	c := topology.MustNew(topology.Config{Nodes: 6, Racks: 3, MapSlotsPerNode: 1})
	eng := sim.New()
	n := mustNet(t, eng, c, Config{RackBps: Gbps, CoreBps: 100 * Mbps})
	var t1, t2 sim.Time
	n.StartFlow(0, 2, 12.5e6, func(*Flow) { t1 = eng.Now() }) // rack0 -> rack1
	n.StartFlow(4, 3, 12.5e6, func(*Flow) { t2 = eng.Now() }) // rack2 -> rack1... shares rack1 down too
	eng.Run()
	// Both share the core (and rack-1 downlink): 2 s each.
	if math.Abs(t1-2) > 1e-6 || math.Abs(t2-2) > 1e-6 {
		t.Fatalf("core-shared flows done at %v/%v, want 2", t1, t2)
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	n.StartFlow(0, 3, 1e6, nil)
	n.StartFlow(1, 4, 2e6, nil)
	eng.Run()
	if n.BytesMoved != 3e6 {
		t.Fatalf("BytesMoved = %v, want 3e6", n.BytesMoved)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after completion", n.ActiveFlows())
	}
}

func TestFlowAccessors(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	f := n.StartFlow(0, 3, 1e6, nil)
	if f.Finished() || f.Remaining() != 1e6 || f.Rate() <= 0 {
		t.Fatalf("fresh flow state wrong: fin=%v rem=%v rate=%v", f.Finished(), f.Remaining(), f.Rate())
	}
	eng.Run()
	if !f.Finished() || f.Remaining() != 0 {
		t.Fatal("completed flow state wrong")
	}
}

func TestHoldModeFIFOOrder(t *testing.T) {
	// Three flows over the same path serialize in submission order.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		n.StartFlow(0, 3, 12.5e6, func(*Flow) { order = append(order, i) })
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("hold FIFO order = %v", order)
	}
}

func TestConservationProperty(t *testing.T) {
	// Property-style check: N random flows all eventually complete and
	// total bytes moved equals the sum of flow sizes, in both modes.
	for _, mode := range []Mode{FluidFairSharing, ExclusiveHold} {
		c := topology.MustNew(topology.Config{Nodes: 12, Racks: 3, MapSlotsPerNode: 1})
		eng := sim.New()
		n := mustNet(t, eng, c, Config{RackBps: 100 * Mbps, NodeBps: Gbps, Mode: mode})
		var total float64
		completed := 0
		for i := 0; i < 50; i++ {
			src := topology.NodeID(i % 12)
			dst := topology.NodeID((i*7 + 3) % 12)
			bytes := float64((i%9)+1) * 1e6
			total += bytes
			at := float64(i%13) * 0.25
			eng.Schedule(at, func() {
				n.StartFlow(src, dst, bytes, func(*Flow) { completed++ })
			})
		}
		eng.Run()
		if completed != 50 {
			t.Fatalf("mode %v: only %d/50 flows completed", mode, completed)
		}
		if math.Abs(n.BytesMoved-total) > 1 {
			t.Fatalf("mode %v: BytesMoved=%v want %v", mode, n.BytesMoved, total)
		}
	}
}

func TestThroughputNeverExceedsCapacity(t *testing.T) {
	// Invariant: M equal flows through one bottleneck complete no earlier
	// than total-bytes / capacity, in both contention modes.
	for _, mode := range []Mode{FluidFairSharing, ExclusiveHold} {
		for _, m := range []int{1, 2, 5, 9} {
			eng := sim.New()
			n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: mode})
			const bytes = 5e6
			var last sim.Time
			for i := 0; i < m; i++ {
				src := topology.NodeID(i % 3)       // rack 0
				dst := topology.NodeID(3 + (i % 2)) // rack 1
				n.StartFlow(src, dst, bytes, func(*Flow) {
					if eng.Now() > last {
						last = eng.Now()
					}
				})
			}
			eng.Run()
			lower := float64(m) * bytes / (100 * Mbps)
			if last < lower-1e-6 {
				t.Fatalf("mode %v m=%d: finished at %.3f, capacity bound %.3f", mode, m, last, lower)
			}
		}
	}
}

func TestFluidWorkConservation(t *testing.T) {
	// A single bottleneck link is work-conserving under fluid sharing:
	// M equal flows finish exactly at total/capacity.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	const m, bytes = 4, 5e6
	var last sim.Time
	for i := 0; i < m; i++ {
		n.StartFlow(topology.NodeID(i%3), 3, bytes, func(*Flow) { last = eng.Now() })
	}
	eng.Run()
	want := m * bytes / (100 * Mbps)
	if math.Abs(last-want) > 1e-6 {
		t.Fatalf("work conservation violated: %.4f vs %.4f", last, want)
	}
}

func TestManySmallFlowsDrain(t *testing.T) {
	// Stress: hundreds of staggered small flows all complete and the
	// network ends empty (guards against the starved-flow regression).
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, NodeBps: 200 * Mbps})
	completed := 0
	const total = 400
	for i := 0; i < total; i++ {
		i := i
		eng.Schedule(float64(i)*0.05, func() {
			src := topology.NodeID(i % 5)
			dst := topology.NodeID((i + 2) % 5)
			n.StartFlow(src, dst, float64(1+i%7)*1e5, func(*Flow) { completed++ })
		})
	}
	eng.Run()
	if completed != total {
		t.Fatalf("only %d/%d flows completed", completed, total)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after drain", n.ActiveFlows())
	}
}

func TestCancelFlow(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	fired := false
	f := n.StartFlow(0, 3, 100e6, func(*Flow) { fired = true })
	// A second flow shares the bottleneck; cancelling the first must
	// return full bandwidth to it.
	var doneAt sim.Time
	n.StartFlow(1, 4, 12.5e6, func(*Flow) { doneAt = eng.Now() })
	eng.Schedule(0.5, func() { n.Cancel(f) })
	eng.Run()
	if fired {
		t.Fatal("cancelled flow fired its callback")
	}
	if !f.Finished() {
		t.Fatal("cancelled flow should read as finished")
	}
	// Second flow: 0.5 s at half rate (6.25 MB/s -> 3.125 MB moved), then
	// full 12.5 MB/s for the remaining 9.375 MB -> 0.5 + 0.75 = 1.25 s.
	if math.Abs(doneAt-1.25) > 1e-6 {
		t.Fatalf("survivor finished at %v, want 1.25", doneAt)
	}
	if n.BytesMoved != 12.5e6 {
		t.Fatalf("cancelled bytes counted: %v", n.BytesMoved)
	}
	n.Cancel(f) // double-cancel no-op
	n.Cancel(nil)
}

func TestCancelQueuedHoldFlow(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	var order []int
	n.StartFlow(0, 3, 12.5e6, func(*Flow) { order = append(order, 0) })
	f1 := n.StartFlow(0, 3, 12.5e6, func(*Flow) { order = append(order, 1) })
	n.StartFlow(0, 3, 12.5e6, func(*Flow) { order = append(order, 2) })
	eng.Schedule(0.1, func() { n.Cancel(f1) }) // cancel while queued
	eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("order = %v, want [0 2]", order)
	}
}

func TestCancelHoldingFlowReleasesLinks(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	f0 := n.StartFlow(0, 3, 125e6, nil) // would take 10 s
	var doneAt sim.Time
	n.StartFlow(0, 3, 12.5e6, func(*Flow) { doneAt = eng.Now() })
	eng.Schedule(1, func() { n.Cancel(f0) })
	eng.Run()
	// Queued flow starts at 1 s, runs 1 s.
	if math.Abs(doneAt-2) > 1e-6 {
		t.Fatalf("queued flow finished at %v, want 2", doneAt)
	}
}

func TestActiveAndWaitingFlowsSplit(t *testing.T) {
	// Hold mode: one flow holds the path, the rest queue. The two counters
	// must partition them; fluid mode never queues.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	n.StartFlow(0, 3, 12.5e6, nil)
	n.StartFlow(0, 3, 12.5e6, nil)
	n.StartFlow(0, 3, 12.5e6, nil)
	if n.ActiveFlows() != 1 || n.WaitingFlows() != 2 {
		t.Fatalf("hold mode: active=%d waiting=%d, want 1/2", n.ActiveFlows(), n.WaitingFlows())
	}
	eng.Run()
	if n.ActiveFlows() != 0 || n.WaitingFlows() != 0 {
		t.Fatalf("after drain: active=%d waiting=%d", n.ActiveFlows(), n.WaitingFlows())
	}

	eng2 := sim.New()
	n2 := mustNet(t, eng2, twoRacks(), Config{RackBps: 100 * Mbps})
	n2.StartFlow(0, 3, 12.5e6, nil)
	n2.StartFlow(0, 3, 12.5e6, nil)
	if n2.ActiveFlows() != 2 || n2.WaitingFlows() != 0 {
		t.Fatalf("fluid mode: active=%d waiting=%d, want 2/0", n2.ActiveFlows(), n2.WaitingFlows())
	}
	eng2.Run()
}

func TestCancelWaitingAndHolderUnderExclusiveHold(t *testing.T) {
	// Four flows contend for the same path: f0 holds, f1..f3 queue. Cancel
	// a queued flow and then the holder mid-transfer; the queue must
	// dispatch the survivors in FIFO order at the release instant.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	var order []int
	var times []sim.Time
	record := func(id int) func(*Flow) {
		return func(*Flow) { order = append(order, id); times = append(times, eng.Now()) }
	}
	f0 := n.StartFlow(0, 3, 125e6, record(0)) // would hold for 10 s
	n.StartFlow(0, 3, 12.5e6, record(1))
	f2 := n.StartFlow(0, 3, 12.5e6, record(2))
	n.StartFlow(0, 3, 12.5e6, record(3))
	eng.Schedule(0.5, func() { n.Cancel(f2) }) // cancel while waiting
	eng.Schedule(1.0, func() { n.Cancel(f0) }) // cancel the link holder
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("completion order = %v, want [1 3]", order)
	}
	// f1 dispatches when f0's links release at t=1 and runs 1 s; f3 follows.
	if math.Abs(times[0]-2) > 1e-6 || math.Abs(times[1]-3) > 1e-6 {
		t.Fatalf("completion times = %v, want [2 3]", times)
	}
	if n.BytesMoved != 25e6 {
		t.Fatalf("BytesMoved = %v, want 25e6", n.BytesMoved)
	}
}

func TestDrainedDetectsLeftoverFlows(t *testing.T) {
	// Normal drain: no error.
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	n.StartFlow(0, 3, 12.5e6, nil)
	eng.Run()
	if err := n.Drained(); err != nil {
		t.Fatalf("clean drain reported error: %v", err)
	}

	// Starved flow (white-box): a flow stripped of its completion event
	// — the shape a rate<=0 allocation bug would leave behind — must be
	// reported once the engine runs dry instead of silently vanishing.
	eng2 := sim.New()
	n2 := mustNet(t, eng2, twoRacks(), Config{RackBps: 100 * Mbps})
	f := n2.StartFlow(0, 3, 12.5e6, nil)
	eng2.Cancel(f.ev)
	f.ev = nil
	f.rate = 0
	eng2.Run()
	if err := n2.Drained(); err == nil {
		t.Fatal("Drained missed an unfinished flow")
	}

	// Leftover hold-mode queue entry (white-box).
	eng3 := sim.New()
	n3 := mustNet(t, eng3, twoRacks(), Config{RackBps: 100 * Mbps, Mode: ExclusiveHold})
	n3.waiting = append(n3.waiting, &Flow{ID: 7, net: n3, queued: true})
	if err := n3.Drained(); err == nil {
		t.Fatal("Drained missed a queued flow")
	}
}

func TestRateChangeHook(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	type change struct {
		id   int
		rate float64
	}
	var got []change
	n.SetHooks(Hooks{RateChange: func(f *Flow) { got = append(got, change{f.ID, f.Rate()}) }})
	a := n.StartFlow(0, 3, 12.5e6, nil) // full rate alone
	n.StartFlow(1, 4, 6.25e6, nil)      // shares rack0-up: both halve
	eng.Run()
	// Admission of a: a=12.5 MB/s. Admission of b: both 6.25 MB/s. b
	// finishes at 1 s: a back to 12.5 MB/s. a's own finish changes nothing.
	want := []change{{a.ID, 12.5e6}, {a.ID, 6.25e6}, {a.ID + 1, 6.25e6}, {a.ID, 12.5e6}}
	if len(got) != len(want) {
		t.Fatalf("rate changes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].id != want[i].id || math.Abs(got[i].rate-want[i].rate) > 1 {
			t.Fatalf("rate change %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStartFlowsBatch(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	var doneIDs []int
	done := func(f *Flow) { doneIDs = append(doneIDs, f.ID) }
	flows := n.StartFlows([]FlowReq{
		{Src: 0, Dst: 3, Bytes: 128e6, Done: done},
		{Src: 1, Dst: 4, Bytes: 128e6, Done: done}, // shares rack0-up
		{Src: 2, Dst: 2, Bytes: 5e6, Done: done},   // node-local: instant
	})
	if len(flows) != 3 || flows[1].ID != flows[0].ID+1 || flows[2].ID != flows[0].ID+2 {
		t.Fatalf("batch IDs not sequential: %v %v %v", flows[0].ID, flows[1].ID, flows[2].ID)
	}
	end := eng.Run()
	if len(doneIDs) != 3 {
		t.Fatalf("%d completions, want 3", len(doneIDs))
	}
	// The two cross-rack flows halve the shared uplink: 2x solo time.
	want := 2 * 128e6 / (100 * Mbps)
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("batch drained at %v, want %v", end, want)
	}
	if n.BytesMoved != 128e6+128e6+5e6 {
		t.Fatalf("BytesMoved = %v", n.BytesMoved)
	}
	if got := n.StartFlows(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d flows", len(got))
	}
}

func TestReferenceSolverSelectable(t *testing.T) {
	eng := sim.New()
	n := mustNet(t, eng, twoRacks(), Config{RackBps: 100 * Mbps})
	n.SetSolver(ReferenceSolver)
	var doneAt sim.Time = -1
	n.StartFlow(3, 0, 128e6, func(*Flow) { doneAt = eng.Now() })
	eng.Run()
	want := 128e6 / (100 * Mbps)
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("reference solver transfer took %v, want %v", doneAt, want)
	}
}
