package netsim

// Equivalence harness pinning the incremental solver + lazy-cancel engine
// + batched admission against the reference configuration (RefRecompute +
// eager cancellation + one StartFlow per transfer). The two worlds must
// produce bitwise-identical completion schedules, rate allocations, and
// byte accounting for arbitrary interleavings of flow arrivals, batch
// arrivals, and cancellations.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

type flowSpec struct {
	src, dst topology.NodeID
	bytes    float64
}

type scenarioOp struct {
	at     float64
	batch  []flowSpec // non-empty: start these flows; empty: cancel
	victim int        // cancel target, index into flows started so far
}

// equivCluster is the legacy scenario cluster: 12 nodes over 3 racks.
func equivCluster() *topology.Cluster {
	return topology.MustNew(topology.Config{Nodes: 12, Racks: 3, MapSlotsPerNode: 1})
}

// equivFatTree is the multi-tier scenario cluster: 12 nodes in a 2-pod
// fat tree with oversubscribed edge and pod tiers and a finite core, so
// every tier's links can saturate.
func equivFatTree() *topology.Cluster {
	spec, err := topology.FatTree(topology.FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3,
		NodeBps: 200 * Mbps, EdgeOversub: 4, PodOversub: 2, CoreBps: 150 * Mbps,
	})
	if err != nil {
		panic(err)
	}
	c, err := topology.NewFromSpec(spec, 1, 1)
	if err != nil {
		panic(err)
	}
	return c
}

// equivWorld picks one of six scenario worlds: four legacy two-level
// network shapes (finite and unlimited NICs, a finite core, and
// exclusive-hold mode) plus the fat-tree cluster in both contention
// modes, exercising the multi-tier link graph.
func equivWorld(sel byte) (*topology.Cluster, Config) {
	switch sel % 6 {
	case 0:
		return equivCluster(), Config{RackBps: 100 * Mbps, NodeBps: 200 * Mbps}
	case 1:
		return equivCluster(), Config{RackBps: 100 * Mbps} // unlimited NICs
	case 2:
		return equivCluster(), Config{RackBps: 120 * Mbps, NodeBps: 150 * Mbps, CoreBps: 200 * Mbps}
	case 3:
		return equivCluster(), Config{RackBps: 100 * Mbps, NodeBps: 200 * Mbps, Mode: ExclusiveHold}
	case 4:
		return equivFatTree(), Config{} // capacities from the spec
	default:
		return equivFatTree(), Config{Mode: ExclusiveHold}
	}
}

// decodeOps turns fuzz bytes into a scenario: each 4-byte group is one
// op. Zero-byte flows, node-local flows, same-instant ops, and cancels of
// arbitrary (possibly finished) flows are all reachable on purpose.
func decodeOps(data []byte) []scenarioOp {
	var ops []scenarioOp
	at := 0.0
	for i := 0; i+4 <= len(data) && len(ops) < 64; i += 4 {
		kind, a, b, dt := data[i], data[i+1], data[i+2], data[i+3]
		at += float64(dt%8) * 0.35 // %8==0 keeps the next op at the same instant
		switch kind % 4 {
		case 0, 1: // single-flow start
			ops = append(ops, scenarioOp{at: at, batch: []flowSpec{specFrom(a, b)}})
		case 2: // batch start (fan-in/fan-out burst)
			k := int(a%5) + 2
			batch := make([]flowSpec, k)
			for j := range batch {
				batch[j] = specFrom(a+byte(j*41), b+byte(j*17))
			}
			ops = append(ops, scenarioOp{at: at, batch: batch})
		case 3: // cancel
			ops = append(ops, scenarioOp{at: at, victim: int(a)})
		}
	}
	return ops
}

func specFrom(a, b byte) flowSpec {
	return flowSpec{
		src:   topology.NodeID(a % 12),
		dst:   topology.NodeID((a / 12) % 12),
		bytes: float64(b%16) * 2.5e6, // includes zero-byte flows
	}
}

// runScenario executes ops on a fresh engine+net and returns an exact
// fingerprint of everything observable: per-flow completion times (bits),
// post-op rate snapshots (bits), flow counts, and bytes moved.
func runScenario(ops []scenarioOp, c *topology.Cluster, cfg Config, solver Solver, eager, batched bool) (finishes []string, snaps []string, bytesMoved float64) {
	eng := sim.New()
	eng.SetEagerCancel(eager)
	n, err := New(eng, c, cfg)
	if err != nil {
		panic(err)
	}
	n.SetSolver(solver)
	var created []*Flow
	type fin struct {
		id int
		at sim.Time
	}
	var fins []fin
	for _, op := range ops {
		op := op
		eng.ScheduleAt(op.at, func() {
			if len(op.batch) == 0 {
				if len(created) > 0 {
					n.Cancel(created[op.victim%len(created)])
				}
			} else if batched {
				reqs := make([]FlowReq, len(op.batch))
				for i, s := range op.batch {
					reqs[i] = FlowReq{Src: s.src, Dst: s.dst, Bytes: s.bytes,
						Done: func(f *Flow) { fins = append(fins, fin{f.ID, eng.Now()}) }}
				}
				created = append(created, n.StartFlows(reqs)...)
			} else {
				for _, s := range op.batch {
					created = append(created, n.StartFlow(s.src, s.dst, s.bytes,
						func(f *Flow) { fins = append(fins, fin{f.ID, eng.Now()}) }))
				}
			}
		})
		// Snapshot at an off-grid instant (ops land on multiples of 0.35)
		// so every same-instant cascade has settled: mid-instant rates are
		// transient — e.g. a zero-byte batch member contends until its
		// dt=0 completion fires later in the same instant — and never
		// govern any progress, so only quiescent state must match.
		eng.ScheduleAt(op.at+0.175, func() {
			snap := fmt.Sprintf("t=%x n=%d/%d:", math.Float64bits(eng.Now()), n.ActiveFlows(), n.WaitingFlows())
			for _, f := range created {
				if f.Finished() {
					snap += fmt.Sprintf(" %d:done", f.ID)
				} else {
					snap += fmt.Sprintf(" %d:%x", f.ID, math.Float64bits(f.Rate()))
				}
			}
			snaps = append(snaps, snap)
		})
	}
	eng.Run()
	// Same-instant finish order may legitimately differ between batched
	// and sequential admission (a batch admits every flow before
	// dispatching, so immediate completions and hold dispatches swap
	// sequence numbers), so normalize equal-time finishes by flow ID.
	// The times themselves must match bit-for-bit.
	sort.SliceStable(fins, func(i, j int) bool {
		if fins[i].at != fins[j].at {
			return fins[i].at < fins[j].at
		}
		return fins[i].id < fins[j].id
	})
	for _, x := range fins {
		finishes = append(finishes, fmt.Sprintf("%d@%x", x.id, math.Float64bits(x.at)))
	}
	return finishes, snaps, n.BytesMoved
}

// checkEquivalence runs the optimized and reference worlds over the same
// scenario and reports the first divergence.
func checkEquivalence(t *testing.T, data []byte) {
	t.Helper()
	if len(data) == 0 {
		return
	}
	cluster, cfg := equivWorld(data[0])
	ops := decodeOps(data[1:])
	gotFin, gotSnap, gotBytes := runScenario(ops, cluster, cfg, IncrementalSolver, false, true)
	wantFin, wantSnap, wantBytes := runScenario(ops, cluster, cfg, ReferenceSolver, true, false)
	if gotBytes != wantBytes {
		t.Fatalf("BytesMoved diverged: incremental=%v reference=%v (cfg %+v)", gotBytes, wantBytes, cfg)
	}
	if len(gotFin) != len(wantFin) {
		t.Fatalf("finish count diverged: %d vs %d (cfg %+v)", len(gotFin), len(wantFin), cfg)
	}
	for i := range gotFin {
		if gotFin[i] != wantFin[i] {
			t.Fatalf("finish %d diverged: incremental %s, reference %s (cfg %+v)", i, gotFin[i], wantFin[i], cfg)
		}
	}
	for i := range gotSnap {
		if gotSnap[i] != wantSnap[i] {
			t.Fatalf("snapshot %d diverged:\nincremental: %s\nreference:   %s\n(cfg %+v)", i, gotSnap[i], wantSnap[i], cfg)
		}
	}
}

// TestIncrementalMatchesReference drives many deterministic pseudo-random
// scenarios through checkEquivalence — the always-on version of the
// fuzzer below.
func TestIncrementalMatchesReference(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return byte(rng)
	}
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 1+4*40)
		for i := range data {
			data[i] = next()
		}
		data[0] = byte(trial) // sweep all six scenario worlds
		checkEquivalence(t, data)
	}
}

// TestBatchedStartMatchesSequential pins the StartFlows contract directly:
// same IDs and completion schedule as one StartFlow per request, holding
// engine and solver fixed.
func TestBatchedStartMatchesSequential(t *testing.T) {
	ops := []scenarioOp{
		{at: 0, batch: []flowSpec{{0, 4, 10e6}, {1, 4, 20e6}, {5, 4, 10e6}, {4, 4, 1e6}, {8, 4, 0}}},
		{at: 1.5, batch: []flowSpec{{9, 2, 30e6}, {10, 2, 30e6}}},
	}
	for _, cfg := range []Config{
		{RackBps: 100 * Mbps, NodeBps: 200 * Mbps},
		{RackBps: 100 * Mbps, Mode: ExclusiveHold},
	} {
		batFin, _, batBytes := runScenario(ops, equivCluster(), cfg, IncrementalSolver, false, true)
		seqFin, _, seqBytes := runScenario(ops, equivCluster(), cfg, IncrementalSolver, false, false)
		if batBytes != seqBytes || len(batFin) != len(seqFin) {
			t.Fatalf("cfg %+v: batched run diverged in volume/count", cfg)
		}
		for i := range batFin {
			if batFin[i] != seqFin[i] {
				t.Fatalf("cfg %+v: finish %d: batched %s vs sequential %s", cfg, i, batFin[i], seqFin[i])
			}
		}
	}
}

// FuzzNetsimEquivalence explores arbitrary arrival/departure/cancel
// sequences. Any divergence between the incremental and reference worlds
// is a bug in the incremental solver, the lazy-cancel engine, or the
// batch admission path.
func FuzzNetsimEquivalence(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 7, 9, 0, 2, 30, 4, 1, 3, 1, 0, 0})
	f.Add([]byte{2, 2, 200, 15, 0, 2, 100, 3, 3, 0, 50, 200, 2, 3, 0, 0, 0})
	f.Add([]byte{3, 1, 13, 8, 4, 1, 26, 8, 0, 3, 0, 0, 1, 1, 40, 12, 7})
	f.Add([]byte{4, 0, 7, 9, 0, 2, 30, 4, 1, 1, 80, 11, 3, 3, 1, 0, 0})
	f.Add([]byte{5, 2, 200, 15, 0, 1, 100, 3, 3, 0, 50, 200, 2, 3, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		checkEquivalence(t, data)
	})
}
