package netsim

import (
	"fmt"
	"testing"

	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

func mustFatTreeCluster(t testing.TB, cfg topology.FatTreeConfig) *topology.Cluster {
	t.Helper()
	spec, err := topology.FatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := topology.NewFromSpec(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLegacyLinkSetUnchanged pins the generic graph builder to the
// historical hardwired link arrays: a legacy two-level cluster must
// produce the very same links — names, capacities, construction order —
// that the pre-refactor netsim.New built. Legacy schedules depend on
// this order (it drives solver iteration), so the list is spelled out
// literally rather than derived.
func TestLegacyLinkSetUnchanged(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 5, Racks: 2, MapSlotsPerNode: 1})
	n, err := New(sim.New(), c, Config{NodeBps: 200 * Mbps, RackBps: 100 * Mbps, CoreBps: 400 * Mbps})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"node0-up 2.5e+07", "node0-down 2.5e+07",
		"node1-up 2.5e+07", "node1-down 2.5e+07",
		"node2-up 2.5e+07", "node2-down 2.5e+07",
		"node3-up 2.5e+07", "node3-down 2.5e+07",
		"node4-up 2.5e+07", "node4-down 2.5e+07",
		"rack0-up 1.25e+07", "rack0-down 1.25e+07",
		"rack1-up 1.25e+07", "rack1-down 1.25e+07",
		"core 5e+07",
	}
	got := n.DebugLinks()
	if len(got) != len(want) {
		t.Fatalf("link count = %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("link %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Zero legacy capacities mean unlimited, exactly as before.
	n, err = New(sim.New(), c, Config{RackBps: 100 * Mbps})
	if err != nil {
		t.Fatal(err)
	}
	got = n.DebugLinks()
	if got[0] != "node0-up +Inf" || got[14] != "core +Inf" || got[10] != "rack0-up 1.25e+07" {
		t.Fatalf("unlimited layers wrong: %v", got)
	}
}

// TestLegacyPathShape pins the two-level projection of pathFor: NICs
// only within a rack, NICs + rack up/down + core across racks.
func TestLegacyPathShape(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 6, Racks: 2, MapSlotsPerNode: 1})
	n, err := New(sim.New(), c, Config{RackBps: 100 * Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if p := n.pathFor(2, 2); p != nil {
		t.Fatalf("node-local path = %v, want nil", pathNames(n, p))
	}
	if got, want := fmt.Sprint(pathNames(n, n.pathFor(0, 1))), "[node0-up node1-down]"; got != want {
		t.Fatalf("same-rack path = %v, want %v", got, want)
	}
	if got, want := fmt.Sprint(pathNames(n, n.pathFor(0, 4))), "[node0-up rack0-up core rack1-down node4-down]"; got != want {
		t.Fatalf("cross-rack path = %v, want %v", got, want)
	}
}

func pathNames(n *Net, p []*link) []string {
	out := make([]string, len(p))
	for i, l := range p {
		out[i] = n.linkName(l)
	}
	return out
}

// TestEveryPairUniquePath checks the central path property on a
// multi-tier fabric: every node pair gets exactly one path, it is
// reproducible across independently built networks, its length equals
// the cluster's HopDistance, and it runs NIC-up ... NIC-down with each
// intermediate hop on the expected tier.
func TestEveryPairUniquePath(t *testing.T) {
	c := mustFatTreeCluster(t, topology.FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3, NodeBps: 100 * Mbps, EdgeOversub: 4,
	})
	n1, err := New(sim.New(), c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := New(sim.New(), c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < c.NumNodes(); src++ {
		for dst := 0; dst < c.NumNodes(); dst++ {
			s, d := topology.NodeID(src), topology.NodeID(dst)
			p := n1.pathFor(s, d)
			if got, want := len(p), c.HopDistance(s, d); got != want {
				t.Fatalf("path %d->%d has %d links, HopDistance says %d", src, dst, got, want)
			}
			if src == dst {
				continue
			}
			if p[0] != n1.nodeUp[src] || p[len(p)-1] != n1.nodeDn[dst] {
				t.Fatalf("path %d->%d does not run NIC to NIC: %v", src, dst, pathNames(n1, p))
			}
			for _, l := range p[1 : len(p)-1] {
				if l.kind == linkNodeUp || l.kind == linkNodeDn {
					t.Fatalf("path %d->%d crosses a third NIC: %v", src, dst, pathNames(n1, p))
				}
			}
			// Deterministic: an independent build yields the same links.
			q := n2.pathFor(s, d)
			if fmt.Sprint(pathNames(n1, p)) != fmt.Sprint(pathNames(n2, q)) {
				t.Fatalf("path %d->%d differs across builds: %v vs %v",
					src, dst, pathNames(n1, p), pathNames(n2, q))
			}
		}
	}
}

// TestPathInterning pins the flow-path reuse satellite: repeat (src,
// dst) pairs share one immutable slice, so churn over known pairs
// allocates no path memory.
func TestPathInterning(t *testing.T) {
	c := mustFatTreeCluster(t, topology.FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3, NodeBps: 100 * Mbps,
	})
	n, err := New(sim.New(), c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p1 := n.pathFor(0, 7)
	p2 := n.pathFor(0, 7)
	if &p1[0] != &p2[0] || len(p1) != len(p2) {
		t.Fatal("repeat pair did not return the interned path")
	}
	f1 := n.StartFlow(0, 7, 1e6, nil)
	f2 := n.StartFlow(0, 7, 2e6, nil)
	if &f1.path[0] != &f2.path[0] {
		t.Fatal("flows between the same pair do not share the interned path")
	}
	if n.pathFor(7, 0)[0] == p1[0] {
		t.Fatal("reverse direction must be a distinct path")
	}
}

// TestMultiTierContention exercises oversubscribed fat-tree capacities
// end to end: a 4:1 edge tier halves a lone cross-edge flow relative to
// the NIC rate and halves it again when two flows share the uplink.
func TestMultiTierContention(t *testing.T) {
	// 2 pods x 2 edges x 2 nodes; NIC 100 Mbps, edge uplink 2*100/4 =
	// 50 Mbps, pod uplink 2*50 = 100 Mbps, core non-blocking.
	c := mustFatTreeCluster(t, topology.FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 2, NodeBps: 100 * Mbps, EdgeOversub: 4,
	})
	const bytes = 50 * Mbps // one second at the edge-uplink rate

	run := func(flows [][2]topology.NodeID) map[int]float64 {
		eng := sim.New()
		n, err := New(eng, c, Config{})
		if err != nil {
			t.Fatal(err)
		}
		done := make(map[int]float64)
		for _, fl := range flows {
			n.StartFlow(fl[0], fl[1], bytes, func(f *Flow) { done[f.ID] = float64(eng.Now()) })
		}
		eng.Run()
		return done
	}

	// Same edge: NIC-limited, 0.5 s.
	if got := run([][2]topology.NodeID{{0, 1}})[0]; got != 0.5 {
		t.Fatalf("same-edge transfer took %v s, want 0.5", got)
	}
	// Cross edge within the pod: edge-uplink-limited, 1 s.
	if got := run([][2]topology.NodeID{{0, 2}})[0]; got != 1.0 {
		t.Fatalf("cross-edge transfer took %v s, want 1.0", got)
	}
	// Cross pod: pod uplink (100) is not the bottleneck; still 1 s.
	if got := run([][2]topology.NodeID{{0, 4}})[0]; got != 1.0 {
		t.Fatalf("cross-pod transfer took %v s, want 1.0", got)
	}
	// Two flows out of edge 0 share its 50 Mbps uplink: 2 s each.
	done := run([][2]topology.NodeID{{0, 2}, {1, 3}})
	if done[0] != 2.0 || done[1] != 2.0 {
		t.Fatalf("contending transfers took %v / %v s, want 2.0 each", done[0], done[1])
	}
}

// benchSpec builds the 10k-node fat tree used by the scale benchmarks:
// 10 pods x 10 edges x 100 nodes.
func benchFatTree10k(tb testing.TB) *topology.Cluster {
	tb.Helper()
	spec, err := topology.FatTree(topology.FatTreeConfig{
		Pods: 10, EdgesPerPod: 10, NodesPerEdge: 100,
		NodeBps: Gbps, EdgeOversub: 4, PodOversub: 2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	c, err := topology.NewFromSpec(spec, 2, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// BenchmarkNew10k pins the lazy-name construction satellite: building
// the 10k-node network must stay a handful of slab allocations with no
// per-link name formatting.
func BenchmarkNew10k(b *testing.B) {
	c := benchFatTree10k(b)
	eng := sim.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(eng, c, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchChurn10k runs one deterministic burst/cancel churn storm on the
// 10k-node fat tree (the dfbench scale workload in miniature).
func benchChurn10k(b *testing.B, c *topology.Cluster, nflows int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		eng := sim.New()
		n, err := New(eng, c, Config{})
		if err != nil {
			b.Fatal(err)
		}
		rng := uint64(0x2545F4914F6CDD1D)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		nodes := uint64(c.NumNodes())
		var created []*Flow
		for i := 0; i < nflows; i += 10 {
			at := float64(i) * 0.002
			dst := topology.NodeID(next() % nodes)
			reqs := make([]FlowReq, 10)
			for j := range reqs {
				reqs[j] = FlowReq{
					Src:   topology.NodeID(next() % nodes),
					Dst:   dst,
					Bytes: float64(1+next()%64) * 1e6,
				}
			}
			eng.ScheduleAt(at, func() { created = append(created, n.StartFlows(reqs)...) })
			if i/10%2 == 1 {
				victim := int(next() >> 33)
				eng.ScheduleAt(at+0.001, func() {
					if len(created) > 0 {
						n.Cancel(created[victim%len(created)])
					}
				})
			}
		}
		eng.Run()
		if err := n.Drained(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn10k measures flow churn on the 10k-node fat tree; its
// bytes/op figure is dominated by per-flow state, not paths, because
// repeat (src, dst) pairs reuse interned path templates.
func BenchmarkChurn10k(b *testing.B) {
	c := benchFatTree10k(b)
	benchChurn10k(b, c, 5000)
}
