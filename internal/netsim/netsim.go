// Package netsim models the cluster fabric as a generic tiered link
// graph driven by the topology's path provider. The paper's network of
// Figure 1 — node NICs connected to top-of-rack switches, connected by a
// core switch — is the one-tier instance; multi-tier specs (fat-tree /
// Clos, built with topology.FatTree / topology.Clos) add aggregation
// tiers with their own up/down links and oversubscribed capacities. The
// graph plays the role of the paper's NodeTree structure ("handles all
// intra-rack and inter-rack transmission requests").
//
// Every node pair has exactly one deterministic path: up the source's
// NIC, up one link per tier below the lowest tier the pair shares,
// across the core fabric when only the root connects them, then down the
// mirror-image links to the destination. Paths are immutable after
// construction and interned per (src, dst) pair, so starting a flow on a
// previously seen pair allocates no path memory; link names are derived
// lazily from (kind, index), so building a 10k-node network performs no
// per-link formatting.
//
// Two contention modes are provided:
//
//   - FluidFairSharing (default): active flows share every link max-min
//     fairly, recomputed whenever a flow starts or ends. This matches the
//     motivating example, where two concurrent cross-rack degraded reads
//     "double the download time from 10s to 20s" for both readers.
//   - ExclusiveHold: a flow holds every link on its path exclusively for
//     the whole transfer; contending flows queue FIFO. This matches the
//     paper's literal CSIM description ("hold the communication link for a
//     duration needed for the data transmission").
package netsim

import (
	"fmt"
	"math"

	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

// Bandwidth helpers: link capacities are bytes per second; the paper quotes
// bits per second.
const (
	// Mbps is one megabit per second expressed in bytes per second.
	Mbps = 1e6 / 8.0
	// Gbps is one gigabit per second expressed in bytes per second.
	Gbps = 1e9 / 8.0
)

// Mode selects the contention model.
type Mode int

const (
	// FluidFairSharing shares links max-min fairly among active flows.
	FluidFairSharing Mode = iota + 1
	// ExclusiveHold serializes flows that share any link (FIFO).
	ExclusiveHold
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case FluidFairSharing:
		return "fluid"
	case ExclusiveHold:
		return "hold"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config sets link capacities in bytes per second. Zero means "take the
// cluster spec's capacity for that layer" — which is unlimited for
// legacy two-level clusters, whose specs carry no speeds of their own.
type Config struct {
	Mode Mode
	// NodeBps is each node's NIC capacity, applied independently to its
	// send and receive directions. Overrides the spec's NodeBps.
	NodeBps float64
	// RackBps is each leaf (tier-0) group's uplink and downlink capacity
	// — the paper's "download bandwidth of each rack", W. Overrides the
	// spec's tier-0 capacity; higher tiers always take the spec's.
	RackBps float64
	// CoreBps is the aggregate core-fabric capacity shared by all
	// root-crossing traffic. Overrides the spec's CoreBps.
	CoreBps float64
}

// Flow is one in-flight transfer.
type Flow struct {
	ID        int
	Src, Dst  topology.NodeID
	Bytes     float64
	StartedAt sim.Time

	remaining  float64
	rate       float64
	updateTime sim.Time // when `remaining` was last advanced
	frozen     bool     // scratch state for RefRecompute
	path       []*link
	done       func(*Flow)
	ev         *sim.Event
	net        *Net
	queued     bool // ExclusiveHold: waiting for links
	finished   bool

	// Incremental-solver state.
	linkPos     []int   // index of this flow in path[i].active, -1 for unlimited links
	linkPosBuf  [9]int  // inline backing for linkPos: paths up to 3 tiers fit without allocating
	frozenEpoch uint64  // solve epoch at which the flow was last frozen
	prevRate    float64 // last rate reported via Hooks.RateChange
	finishFn    func()  // built once; rescheduled on every recompute
}

// Rate returns the flow's current allocated rate in bytes/sec (0 while
// queued in hold mode).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet transferred as of the last network
// recomputation.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// linkKind identifies a link's layer; with tier and index it determines
// the link's name, which is derived lazily (10k-node construction must
// not pay O(nodes) fmt.Sprintf calls for names nobody may ever read).
type linkKind uint8

const (
	linkNodeUp linkKind = iota
	linkNodeDn
	linkTierUp
	linkTierDn
	linkCore
)

type link struct {
	kind     linkKind
	tier     int32   // tier index for linkTierUp/linkTierDn
	index    int32   // node or group index
	capacity float64 // bytes/sec, +Inf when unlimited
	finite   bool    // precomputed !IsInf(capacity): only finite links constrain

	// Fluid mode scratch state.
	residual float64
	unfrozen int

	// Incremental-solver index: the contending flows crossing this link
	// (finite links only), plus membership in Net.activeLinks.
	active   []*Flow
	inActive bool

	// Hold mode state.
	holder *Flow
}

// Net is the simulated network. All methods must be called from the
// simulation goroutine (engine callbacks).
type Net struct {
	eng    *sim.Engine
	mode   Mode
	cfg    Config
	nodeUp []*link
	nodeDn []*link
	// tierUp/tierDn[t][g] are group g of tier t's links toward the tier
	// above; tier 0 is the rack/leaf tier (the legacy rackUp/rackDn).
	tierUp [][]*link
	tierDn [][]*link
	core   *link
	links  []*link
	// tierNames label tier links lazily (linkName).
	tierNames []string
	// coords[node][tier] is the node's group index per tier, shared with
	// the cluster (immutable after construction).
	coords [][]int
	// pathCache interns the unique link path per (src, dst) pair, keyed
	// src*numNodes+dst. Paths are immutable after build, so every flow
	// between the same pair shares one slice. pathLens[sharedTier] is the
	// precomputed template length, sizing each build exactly.
	pathCache map[int64][]*link
	pathLens  []int
	flows     []*Flow // active flows, insertion order
	waiting   []*Flow // hold mode FIFO
	nextID    int

	// Incremental-solver state: which solver runs, the finite links that
	// currently carry contending flows, the count of contending flows,
	// and the monotone solve epoch used to mark frozen flows without a
	// reset pass.
	solver      Solver
	activeLinks []*link
	// workLinks is the filling loop's compacting scratch copy of
	// activeLinks, retained across solves to avoid reallocation.
	workLinks   []*link
	ncontending int
	epoch       uint64

	// BytesMoved accumulates completed-transfer volume, for metrics.
	BytesMoved float64

	hooks Hooks
}

// Solver selects the fluid max-min fair-sharing implementation.
type Solver int

const (
	// IncrementalSolver (default) solves progressive filling over
	// per-link active-flow indexes with a running water level, so each
	// recompute costs O(active flows + active links) per filling
	// iteration instead of O(all flows + all links). Produces
	// bit-identical schedules to ReferenceSolver; pinned by property
	// tests and FuzzNetsimEquivalence.
	IncrementalSolver Solver = iota
	// ReferenceSolver runs the original full recomputation
	// (RefRecompute) on every flow change. Retained as the ground truth
	// for equivalence tests and benchmarks, like the RefMulSlice scalar
	// kernels in internal/gf256.
	ReferenceSolver
)

// SetSolver selects the fluid-mode solver. Both solvers may be used on
// the same Net interchangeably; they maintain identical flow state.
func (n *Net) SetSolver(s Solver) { n.solver = s }

// Hooks observe the flow lifecycle, for trace instrumentation. Start fires
// when a flow is created (even if queued in hold mode), Finish right after
// its bytes are accounted to BytesMoved and before its completion callback,
// Cancel after an abort. RateChange fires after a bandwidth recomputation
// for each flow whose allocated rate changed (in flow admission order).
// Nil entries are skipped.
type Hooks struct {
	Start      func(*Flow)
	Finish     func(*Flow)
	Cancel     func(*Flow)
	RateChange func(*Flow)
}

// SetHooks installs lifecycle observers (replacing any previous set).
func (n *Net) SetHooks(h Hooks) { n.hooks = h }

// New builds the network for the given cluster shape: a link graph over
// the cluster's fabric spec (NIC pairs per node, up/down pairs per group
// per tier, one core fabric link), in deterministic construction order —
// nodes, then tiers bottom-up, then the core. For legacy two-level
// clusters the resulting link set is identical to the historical
// hardwired arrays (same links, same order, same capacities), so legacy
// schedules are bit-for-bit unchanged; see TestLegacyLinkSetUnchanged.
func New(eng *sim.Engine, c *topology.Cluster, cfg Config) (*Net, error) {
	if eng == nil || c == nil {
		return nil, fmt.Errorf("netsim: nil engine or cluster")
	}
	if cfg.Mode == 0 {
		cfg.Mode = FluidFairSharing
	}
	if cfg.Mode != FluidFairSharing && cfg.Mode != ExclusiveHold {
		return nil, fmt.Errorf("netsim: unknown mode %v", cfg.Mode)
	}
	if cfg.NodeBps < 0 || cfg.RackBps < 0 || cfg.CoreBps < 0 {
		return nil, fmt.Errorf("netsim: negative capacity")
	}
	spec := c.Spec()
	// Per-layer capacities: the legacy Config fields override the spec's
	// node, tier-0, and core capacities; intermediate tiers always come
	// from the spec. Zero (from both) means unlimited.
	capOf := func(override, fromSpec float64) float64 {
		v := fromSpec
		if override != 0 {
			v = override
		}
		if v == 0 || math.IsInf(v, 1) {
			return math.Inf(1)
		}
		return v
	}
	nodes := c.NumNodes()
	tiers := c.NumTiers()
	totalGroups := 0
	for _, tier := range spec.Tiers {
		totalGroups += tier.Count
	}
	n := &Net{
		eng:       eng,
		mode:      cfg.Mode,
		cfg:       cfg,
		nodeUp:    make([]*link, nodes),
		nodeDn:    make([]*link, nodes),
		tierUp:    make([][]*link, tiers),
		tierDn:    make([][]*link, tiers),
		tierNames: make([]string, tiers),
		coords:    make([][]int, nodes),
		pathCache: make(map[int64][]*link),
		pathLens:  make([]int, tiers+1),
		links:     make([]*link, 0, 2*nodes+2*totalGroups+1),
	}
	// One slab holds every link: 10k-node construction is two large
	// allocations (slab + pointer table), not O(links) small ones.
	slab := make([]link, 2*nodes+2*totalGroups+1)
	next := 0
	addLink := func(kind linkKind, tier, index int, capacity float64) *link {
		l := &slab[next]
		next++
		*l = link{kind: kind, tier: int32(tier), index: int32(index),
			capacity: capacity, finite: !math.IsInf(capacity, 1)}
		n.links = append(n.links, l)
		return l
	}
	nodeBps := capOf(cfg.NodeBps, spec.NodeBps)
	for i := 0; i < nodes; i++ {
		n.nodeUp[i] = addLink(linkNodeUp, 0, i, nodeBps)
		n.nodeDn[i] = addLink(linkNodeDn, 0, i, nodeBps)
		n.coords[i] = c.NodeCoords(topology.NodeID(i))
	}
	for t, tier := range spec.Tiers {
		override := 0.0
		if t == 0 {
			override = cfg.RackBps
		}
		bps := capOf(override, tier.LinkBps)
		n.tierNames[t] = tier.Name
		n.tierUp[t] = make([]*link, tier.Count)
		n.tierDn[t] = make([]*link, tier.Count)
		for g := 0; g < tier.Count; g++ {
			n.tierUp[t][g] = addLink(linkTierUp, t, g, bps)
			n.tierDn[t][g] = addLink(linkTierDn, t, g, bps)
		}
	}
	n.core = addLink(linkCore, tiers, 0, capOf(cfg.CoreBps, spec.CoreBps))
	// Path-template lengths per shared tier: 2 NICs + one up/down pair
	// per climbed tier + the core fabric when crossing the root.
	for shared := 0; shared <= tiers; shared++ {
		n.pathLens[shared] = 2 + 2*shared
		if shared == tiers {
			n.pathLens[shared]++
		}
	}
	return n, nil
}

// linkName derives a link's display name from its kind and index.
func (n *Net) linkName(l *link) string {
	switch l.kind {
	case linkNodeUp:
		return fmt.Sprintf("node%d-up", l.index)
	case linkNodeDn:
		return fmt.Sprintf("node%d-down", l.index)
	case linkTierUp:
		return fmt.Sprintf("%s%d-up", n.tierNames[l.tier], l.index)
	case linkTierDn:
		return fmt.Sprintf("%s%d-down", n.tierNames[l.tier], l.index)
	default:
		return "core"
	}
}

// DebugLinks returns every link as "name capacity" in construction
// order, for diagnostics and the legacy link-set equivalence test.
func (n *Net) DebugLinks() []string {
	out := make([]string, len(n.links))
	for i, l := range n.links {
		out[i] = fmt.Sprintf("%s %v", n.linkName(l), l.capacity)
	}
	return out
}

// Mode returns the contention mode in use.
func (n *Net) Mode() Mode { return n.mode }

// ActiveFlows returns the number of flows currently transferring: sharing
// bandwidth (fluid mode) or holding links (hold mode). Hold-mode flows
// still queued for busy links are counted by WaitingFlows instead.
func (n *Net) ActiveFlows() int { return len(n.flows) }

// WaitingFlows returns the number of hold-mode flows queued for links.
func (n *Net) WaitingFlows() int { return len(n.waiting) }

// StartFlow begins transferring bytes from src to dst. done (may be nil) is
// invoked from the engine when the transfer completes. Transfers between a
// node and itself complete after zero simulated time (still via an event,
// preserving causal ordering).
func (n *Net) StartFlow(src, dst topology.NodeID, bytes float64, done func(*Flow)) *Flow {
	f, contends := n.addFlow(src, dst, bytes, done)
	if contends {
		n.solveAfterAdmit()
	}
	return f
}

// FlowReq describes one transfer in a StartFlows batch.
type FlowReq struct {
	Src, Dst topology.NodeID
	Bytes    float64
	Done     func(*Flow)
}

// StartFlows admits a batch of flows at the current instant with a single
// bandwidth recomputation (fluid mode) or queue dispatch (hold mode).
// It is equivalent to calling StartFlow once per request in order — same
// flow IDs, rates, and completion schedule — because same-instant
// intermediate recomputations advance no progress and their rate
// assignments are overwritten by the final solve. Launching a fan-in of N
// degraded-read or shuffle flows this way costs one solve instead of N.
func (n *Net) StartFlows(reqs []FlowReq) []*Flow {
	flows := make([]*Flow, len(reqs))
	solve := false
	for i, r := range reqs {
		f, contends := n.addFlow(r.Src, r.Dst, r.Bytes, r.Done)
		flows[i] = f
		solve = solve || contends
	}
	if solve {
		n.solveAfterAdmit()
	}
	return flows
}

// addFlow validates and admits one flow without solving. The second return
// reports whether the flow contends for bandwidth, i.e. whether the caller
// must recompute (fluid) or dispatch the queue (hold).
func (n *Net) addFlow(src, dst topology.NodeID, bytes float64, done func(*Flow)) (*Flow, bool) {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("netsim: invalid flow size %v", bytes))
	}
	f := &Flow{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		StartedAt: n.eng.Now(),
		remaining: bytes,
		done:      done,
		net:       n,
		path:      n.pathFor(src, dst),
	}
	n.nextID++
	f.finishFn = func() { n.finish(f) }
	if n.hooks.Start != nil {
		n.hooks.Start(f)
	}
	if bytes == 0 || len(f.path) == 0 {
		// Local or empty transfer: complete immediately. A zero-byte flow
		// with a nonempty path still occupies a fair share until its
		// completion event fires, so it is indexed like any other.
		f.ev = n.eng.Schedule(0, f.finishFn)
		n.flows = append(n.flows, f)
		if n.mode == FluidFairSharing && len(f.path) > 0 {
			n.indexFlow(f)
		}
		return f, false
	}
	switch n.mode {
	case FluidFairSharing:
		n.flows = append(n.flows, f)
		n.indexFlow(f)
	case ExclusiveHold:
		f.queued = true
		n.waiting = append(n.waiting, f)
	}
	return f, true
}

func (n *Net) solveAfterAdmit() {
	switch n.mode {
	case FluidFairSharing:
		n.recompute()
	case ExclusiveHold:
		n.dispatchHold()
	}
}

// pathFor returns the unique link path between src and dst: nothing for
// a node-local transfer, otherwise NICs plus one up/down link per tier
// below the lowest tier the pair shares, crossing the core fabric only
// when the root alone connects them. In the two-level projection this is
// exactly the legacy shape: NICs only within a rack, NICs + rack up/down
// + core across racks. Paths are interned per (src, dst) pair: they are
// immutable after build, so repeat pairs share one slice and allocate
// nothing.
func (n *Net) pathFor(src, dst topology.NodeID) []*link {
	if src == dst {
		return nil
	}
	key := int64(src)*int64(len(n.nodeUp)) + int64(dst)
	if p, ok := n.pathCache[key]; ok {
		return p
	}
	cs, cd := n.coords[src], n.coords[dst]
	shared := len(cs)
	for t := range cs {
		if cs[t] == cd[t] {
			shared = t
			break
		}
	}
	p := make([]*link, 0, n.pathLens[shared])
	p = append(p, n.nodeUp[src])
	for t := 0; t < shared; t++ {
		p = append(p, n.tierUp[t][cs[t]])
	}
	if shared == len(cs) {
		p = append(p, n.core)
	}
	for t := shared - 1; t >= 0; t-- {
		p = append(p, n.tierDn[t][cd[t]])
	}
	p = append(p, n.nodeDn[dst])
	n.pathCache[key] = p
	return p
}

// Cancel aborts an in-flight or queued flow without firing its callback
// or counting its bytes; bandwidth is redistributed immediately.
// Cancelling a finished flow is a no-op.
func (n *Net) Cancel(f *Flow) {
	if f == nil || f.finished || f.net != n {
		return
	}
	f.finished = true
	if f.ev != nil {
		n.eng.Cancel(f.ev)
		f.ev = nil
	}
	if f.queued {
		for i, g := range n.waiting {
			if g == f {
				n.waiting = append(n.waiting[:i], n.waiting[i+1:]...)
				break
			}
		}
		if n.hooks.Cancel != nil {
			n.hooks.Cancel(f)
		}
		return
	}
	n.removeFlow(f)
	switch n.mode {
	case FluidFairSharing:
		n.recompute()
	case ExclusiveHold:
		for _, l := range f.path {
			if l.holder == f {
				l.holder = nil
			}
		}
		n.dispatchHold()
	}
	if n.hooks.Cancel != nil {
		n.hooks.Cancel(f)
	}
}

// finish completes a flow: removes it, accounts bytes, redistributes
// bandwidth, and fires the callback.
func (n *Net) finish(f *Flow) {
	if f.finished {
		return
	}
	f.finished = true
	f.remaining = 0
	f.ev = nil
	n.removeFlow(f)
	n.BytesMoved += f.Bytes
	if n.hooks.Finish != nil {
		n.hooks.Finish(f)
	}
	switch n.mode {
	case FluidFairSharing:
		n.recompute()
	case ExclusiveHold:
		for _, l := range f.path {
			if l.holder == f {
				l.holder = nil
			}
		}
		n.dispatchHold()
	}
	if f.done != nil {
		f.done(f)
	}
}

func (n *Net) removeFlow(f *Flow) {
	if n.mode == FluidFairSharing && len(f.path) > 0 {
		n.unindexFlow(f)
	}
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			return
		}
	}
}

// recompute reruns the max-min fair allocation with the selected solver.
func (n *Net) recompute() {
	if n.solver == ReferenceSolver {
		n.RefRecompute()
		return
	}
	n.incRecompute()
}

// RefRecompute is the reference fluid solver: advance all flows to the
// current time, rerun progressive filling from scratch over every link
// and flow, and cancel + reschedule every completion event. It is the
// original implementation, retained verbatim as ground truth for the
// incremental solver (selected via SetSolver; see FuzzNetsimEquivalence).
func (n *Net) RefRecompute() {
	now := n.eng.Now()
	// Advance progress at the old rates.
	for _, f := range n.flows {
		if f.rate > 0 && !math.IsInf(f.rate, 1) {
			f.remaining -= f.rate * (now - f.updateTime)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.updateTime = now
	}
	// Progressive-filling max-min.
	for _, l := range n.links {
		l.residual = l.capacity
		l.unfrozen = 0
	}
	unfrozen := 0
	for _, f := range n.flows {
		f.rate = 0
		f.frozen = len(f.path) == 0 // local flows don't contend
		if !f.frozen {
			unfrozen++
			for _, l := range f.path {
				l.unfrozen++
			}
		}
	}
	for unfrozen > 0 {
		inc := math.Inf(1)
		for _, l := range n.links {
			if l.unfrozen == 0 || math.IsInf(l.capacity, 1) {
				continue
			}
			if share := l.residual / float64(l.unfrozen); share < inc {
				inc = share
			}
		}
		if math.IsInf(inc, 1) {
			// Remaining flows cross only unlimited links.
			for _, f := range n.flows {
				if !f.frozen {
					f.rate = math.Inf(1)
					f.frozen = true
				}
			}
			break
		}
		for _, f := range n.flows {
			if !f.frozen {
				f.rate += inc
			}
		}
		for _, l := range n.links {
			if l.unfrozen > 0 && !math.IsInf(l.capacity, 1) {
				l.residual -= inc * float64(l.unfrozen)
			}
		}
		// Freeze flows crossing a saturated link.
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			for _, l := range f.path {
				if !math.IsInf(l.capacity, 1) && l.residual <= 1e-9*l.capacity {
					f.frozen = true
					break
				}
			}
			if f.frozen {
				unfrozen--
				for _, l := range f.path {
					l.unfrozen--
				}
			}
		}
	}
	// Reschedule completions.
	for _, f := range n.flows {
		if f.ev != nil {
			n.eng.Cancel(f.ev)
			f.ev = nil
		}
		var dt float64
		switch {
		case len(f.path) == 0:
			dt = 0 // node-local transfers complete immediately
		case f.remaining <= 0:
			dt = 0
		case math.IsInf(f.rate, 1):
			dt = 0
		case f.rate <= 0:
			continue // starved; will be rescheduled by a later recompute
		default:
			dt = f.remaining / f.rate
		}
		f := f
		f.ev = n.eng.Schedule(dt, func() { n.finish(f) })
	}
	n.emitRateChanges()
}

// dispatchHold starts waiting flows (in FIFO order) whose links are all
// free, holding those links until completion.
func (n *Net) dispatchHold() {
	remaining := n.waiting[:0]
	for _, f := range n.waiting {
		// Unlimited links never serialize: only finite links are held.
		free := true
		for _, l := range f.path {
			if !math.IsInf(l.capacity, 1) && l.holder != nil {
				free = false
				break
			}
		}
		if !free {
			remaining = append(remaining, f)
			continue
		}
		for _, l := range f.path {
			if !math.IsInf(l.capacity, 1) {
				l.holder = f
			}
		}
		f.queued = false
		rate := math.Inf(1)
		for _, l := range f.path {
			if l.capacity < rate {
				rate = l.capacity
			}
		}
		f.rate = rate
		n.noteRate(f)
		var dt float64
		if !math.IsInf(rate, 1) {
			dt = f.remaining / rate
		}
		n.flows = append(n.flows, f)
		f := f
		f.ev = n.eng.Schedule(dt, func() { n.finish(f) })
	}
	n.waiting = append([]*Flow(nil), remaining...)
}

// Drained verifies the network emptied out alongside the event engine: no
// active or waiting flows remain. The runtime calls it after the engine
// runs dry — a leftover flow means a transfer was admitted but never
// scheduled for completion (for example a flow starved at rate 0 whose
// revival recompute never came), which would otherwise silently vanish
// from the results.
func (n *Net) Drained() error {
	if len(n.flows) > 0 {
		f := n.flows[0]
		return fmt.Errorf("netsim: drained with %d unfinished flows (first: flow %d %d->%d, %.0f bytes left, rate %v)",
			len(n.flows), f.ID, f.Src, f.Dst, f.remaining, f.rate)
	}
	if len(n.waiting) > 0 {
		f := n.waiting[0]
		return fmt.Errorf("netsim: drained with %d flows still queued (first: flow %d %d->%d)",
			len(n.waiting), f.ID, f.Src, f.Dst)
	}
	return nil
}

// DebugFlows returns a snapshot of active flow state for diagnostics.
func (n *Net) DebugFlows() []string {
	var out []string
	for _, f := range n.flows {
		out = append(out, fmt.Sprintf("flow %d %d->%d rem=%.1f rate=%.1f ev=%v fin=%v",
			f.ID, f.Src, f.Dst, f.remaining, f.rate, f.ev != nil, f.finished))
	}
	for _, f := range n.waiting {
		out = append(out, fmt.Sprintf("waiting flow %d %d->%d", f.ID, f.Src, f.Dst))
	}
	return out
}
