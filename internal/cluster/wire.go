// Package cluster is the distributed runtime: a wire-level master/worker
// layer that executes minimr jobs across real OS processes. The master
// keeps the deterministic virtual-clock master loop of internal/runtime
// — scheduling decisions, locality classes, failure recovery are the
// in-process ones — while a cluster backend turns each task's work into
// real RPCs: workers hold their node's erasure-coded blocks, fetch
// inputs peer-to-peer (reconstructing lost blocks from k sources for
// degraded reads), run the real map/reduce functions, and pull shuffle
// partitions from each other. Real heartbeats with deadlines feed dead
// workers into the same failure/re-execution path a simulated failure
// takes. See DESIGN.md §11.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"degradedfirst/internal/trace"
)

// maxFrame bounds one wire frame; a block plus JSON overhead fits far
// under this, so anything larger is a corrupt or hostile stream.
const maxFrame = 64 << 20

// frame is the single envelope every wire message travels in. Kind
// routes it: "register"/"registered" (handshake), "hb" (heartbeat),
// "event" (trace streaming), "req"/"resp" (RPCs, matched by Seq).
type frame struct {
	Kind   string          `json:"kind"`
	Seq    uint64          `json:"seq,omitempty"`
	Method string          `json:"method,omitempty"` // req only
	Error  string          `json:"err,omitempty"`    // resp only
	Dead   []int           `json:"dead,omitempty"`   // resp only: implicated node IDs
	Body   json.RawMessage `json:"body,omitempty"`
}

// writeFrame marshals f and writes it length-prefixed (4-byte big-endian
// payload length). Callers serialize writes themselves.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("cluster: encoding frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader, f *frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, f); err != nil {
		return fmt.Errorf("cluster: decoding frame: %w", err)
	}
	return nil
}

// registerMsg is the worker's opening message: where peers can reach it.
type registerMsg struct {
	PeerAddr string `json:"peer_addr"`
}

// registeredMsg is the master's handshake reply: the worker's identity,
// the code/block geometry it needs for reconstruction, the real
// heartbeat period, and its node's share of every stored file.
type registeredMsg struct {
	Node         int           `json:"node"`
	NumNodes     int           `json:"num_nodes"`
	CodeN        int           `json:"code_n"`
	CodeK        int           `json:"code_k"`
	Construction int           `json:"construction"`
	BlockSize    int           `json:"block_size"`
	HeartbeatMS  int           `json:"heartbeat_ms"`
	Blocks       []storedBlock `json:"blocks"`
	Err          string        `json:"err,omitempty"`
}

// storedBlock ships one block (native or parity) to its holder.
type storedBlock struct {
	File   string `json:"file"`
	Stripe int    `json:"stripe"`
	Index  int    `json:"index"`
	Data   []byte `json:"data"`
}

// kv is one key-value record on the wire.
type kv struct {
	K string `json:"k"`
	V string `json:"v"`
}

// jobsMsg broadcasts the run's jobs ("jobs" RPC) before submission.
type jobsMsg struct {
	Jobs []JobSpec `json:"jobs"`
}

// fetchSpec names one block a worker must pull from a peer (or from its
// own store when Node is itself) before mapping.
type fetchSpec struct {
	Node   int    `json:"node"`
	Addr   string `json:"addr"`
	Stripe int    `json:"stripe"`
	Index  int    `json:"index"`
}

// mapReq runs one map task ("run-map" RPC). Fetch is empty for
// node-local input, the block's holder for rack/remote input, or the
// reconstruction sources when Degraded. Need, when positive, is the
// number of successful degraded fetches sufficient for reconstruction
// (the code's k): the worker races every Fetch entry, decodes from the
// first Need to arrive, and cancels the rest. Zero keeps the original
// wait-for-all gather byte-identical on the wire.
type mapReq struct {
	Job      int         `json:"job"`
	Task     int         `json:"task"`
	File     string      `json:"file"`
	Stripe   int         `json:"stripe"`
	Index    int         `json:"index"`
	Degraded bool        `json:"degraded,omitempty"`
	Need     int         `json:"need,omitempty"`
	Fetch    []fetchSpec `json:"fetch,omitempty"`
}

// mapResp reports a finished map task: per-reducer partition sizes (the
// records stay on the worker until reducers pull them), or the full
// output for map-only jobs.
type mapResp struct {
	PartBytes []float64 `json:"part_bytes,omitempty"`
	Output    []kv      `json:"output,omitempty"`
}

// chunkFetchReq tells a reducer's worker to pull one map-output
// partition from the mapper's worker ("fetch-chunk" RPC).
type chunkFetchReq struct {
	Job     int    `json:"job"`
	Reducer int    `json:"reducer"`
	MapTask int    `json:"map_task"`
	Node    int    `json:"node"` // mapper's node
	Addr    string `json:"addr"` // mapper's peer address
}

// reduceReq runs one reduce task over the partitions the worker has
// fetched ("run-reduce" RPC); reduceResp carries its sorted output.
type reduceReq struct {
	Job     int `json:"job"`
	Reducer int `json:"reducer"`
}

type reduceResp struct {
	Output []kv `json:"output"`
}

// repairReq rebuilds one lost block on the receiving worker ("repair-
// block" RPC, sent to the repair destination): fetch every source block
// from its peer, decode the lost block, and store it locally — the
// worker becomes the block's new holder.
type repairReq struct {
	File   string      `json:"file"`
	Stripe int         `json:"stripe"`
	Index  int         `json:"index"`
	Fetch  []fetchSpec `json:"fetch"`
}

// repairResp reports the rebuilt block's size.
type repairResp struct {
	Bytes int `json:"bytes"`
}

// peerReq is the one-shot worker↔worker request: op "block" serves a
// stored block, op "chunk" serves one map-output partition.
type peerReq struct {
	Op      string `json:"op"`
	File    string `json:"file,omitempty"`
	Stripe  int    `json:"stripe"`
	Index   int    `json:"index"`
	Job     int    `json:"job"`
	MapTask int    `json:"map_task"`
	Reducer int    `json:"reducer"`
}

type peerResp struct {
	Err  string `json:"err,omitempty"`
	Data []byte `json:"data,omitempty"`
	KVs  []kv   `json:"kvs,omitempty"`
}

// eventBody wraps a streamed trace event.
type eventBody struct {
	Event trace.Event `json:"event"`
}

// mustJSON marshals a value this package defined; failure is a
// programming error, not a runtime condition.
func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: marshaling %T: %v", v, err))
	}
	return b
}

// deadPeersError marks an operation that failed because specific peers
// were unreachable; the RPC layer copies the IDs into the response's
// Dead field so the master can feed them into failure recovery.
type deadPeersError struct {
	peers []int
	cause error
}

func (e *deadPeersError) Error() string {
	return fmt.Sprintf("cluster: peers %v unreachable: %v", e.peers, e.cause)
}

func (e *deadPeersError) Unwrap() error { return e.cause }
