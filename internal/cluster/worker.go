package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// MasterAddr is where the master listens.
	MasterAddr string
	// ListenAddr is the worker's peer listen address (default
	// "127.0.0.1:0"); other workers fetch blocks and shuffle partitions
	// from it.
	ListenAddr string
	// Drag adds a real delay to every map task. Zero in production; tests
	// and demos use it to stretch real task time so failures land mid-job.
	Drag time.Duration
}

type blockKey struct {
	file          string
	stripe, index int
}

type partKey struct{ job, task int }

type chunkKey struct{ job, reducer, mapTask int }

// Worker is one node's process: it holds the node's erasure-coded
// blocks, runs the real map/reduce functions on the master's command,
// serves blocks and shuffle partitions to peers, and heartbeats to the
// master over the registration connection.
type Worker struct {
	node      topology.NodeID
	code      *erasure.Code
	blockSize int
	hbEvery   time.Duration
	drag      time.Duration
	conn      *rpcConn
	peerLn    net.Listener
	epoch     time.Time

	mu    sync.Mutex
	jobs  []minimr.Job
	store map[blockKey][]byte
	// parts[job/task][reducer] holds the task's real map-output
	// partitions until reducers pull them.
	parts map[partKey][][]minimr.KeyValue
	// rbuf accumulates the shuffle chunks this node's reducers fetched.
	rbuf map[chunkKey][]kv

	hbStop    chan struct{}
	hbOnce    sync.Once
	done      chan struct{}
	closeOnce sync.Once
}

// StartWorker dials the master (with backoff — the master may still be
// starting), registers, receives its node identity and block share, and
// begins serving. It returns once the worker is fully operational.
func StartWorker(opts WorkerOptions) (*Worker, error) {
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	peerLn, err := net.Listen("tcp", opts.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker listen: %w", err)
	}

	var c net.Conn
	delay := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		c, err = net.Dial("tcp", opts.MasterAddr)
		if err == nil {
			break
		}
		if attempt >= 9 {
			peerLn.Close()
			return nil, fmt.Errorf("cluster: dialing master %s: %w", opts.MasterAddr, err)
		}
		time.Sleep(delay)
		delay *= 2
	}

	rc := newRPCConn(c)
	if err := rc.send(&frame{Kind: "register", Body: mustJSON(registerMsg{PeerAddr: peerLn.Addr().String()})}); err != nil {
		peerLn.Close()
		c.Close()
		return nil, fmt.Errorf("cluster: registering: %w", err)
	}
	var f frame
	if err := readFrame(rc.br, &f); err != nil || f.Kind != "registered" {
		peerLn.Close()
		c.Close()
		return nil, fmt.Errorf("cluster: registration reply: %v (kind %q)", err, f.Kind)
	}
	var msg registeredMsg
	if err := json.Unmarshal(f.Body, &msg); err != nil {
		peerLn.Close()
		c.Close()
		return nil, fmt.Errorf("cluster: decoding registration: %w", err)
	}
	if msg.Err != "" {
		peerLn.Close()
		c.Close()
		return nil, fmt.Errorf("cluster: master rejected registration: %s", msg.Err)
	}
	code, err := erasure.New(msg.CodeN, msg.CodeK,
		erasure.WithConstruction(erasure.Construction(msg.Construction)))
	if err != nil {
		peerLn.Close()
		c.Close()
		return nil, fmt.Errorf("cluster: rebuilding code: %w", err)
	}

	w := &Worker{
		node:      topology.NodeID(msg.Node),
		code:      code,
		blockSize: msg.BlockSize,
		hbEvery:   time.Duration(msg.HeartbeatMS) * time.Millisecond,
		drag:      opts.Drag,
		conn:      rc,
		peerLn:    peerLn,
		epoch:     time.Now(),
		store:     make(map[blockKey][]byte),
		parts:     make(map[partKey][][]minimr.KeyValue),
		rbuf:      make(map[chunkKey][]kv),
		hbStop:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, sb := range msg.Blocks {
		w.store[blockKey{file: sb.File, stripe: sb.Stripe, index: sb.Index}] = sb.Data
	}

	rc.serve = w.serve
	rc.onClose = func(error) { w.shutdown() } // master gone → worker exits
	rc.start()
	go w.heartbeatLoop()
	go w.peerAcceptLoop()
	return w, nil
}

// Node returns the node identity the master assigned.
func (w *Worker) Node() topology.NodeID { return w.node }

// Done is closed when the worker shuts down (its master connection
// died, or Close/Kill was called).
func (w *Worker) Done() <-chan struct{} { return w.done }

// shutdown releases everything except the master connection; it must
// not touch conn, because the connection's own teardown invokes it.
func (w *Worker) shutdown() {
	w.closeOnce.Do(func() {
		close(w.done)
		w.peerLn.Close()
	})
}

// Close shuts the worker down.
func (w *Worker) Close() {
	w.conn.close(errConnClosed) // idempotent; its onClose hook runs shutdown
	w.shutdown()
}

// Kill shuts the worker down abruptly, as a process crash would: the
// master connection drops mid-stream and the peer listener vanishes.
func (w *Worker) Kill() { w.Close() }

// StopHeartbeats halts the heartbeat loop while the worker keeps serving
// requests. Tests use it to exercise the master's pure deadline-based
// failure detection — the connection stays up, only the beats stop.
func (w *Worker) StopHeartbeats() {
	w.hbOnce.Do(func() { close(w.hbStop) })
}

func (w *Worker) heartbeatLoop() {
	t := time.NewTicker(w.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-w.hbStop:
			return
		case <-w.done:
			return
		case <-t.C:
			if err := w.conn.send(&frame{Kind: "hb"}); err != nil {
				return
			}
		}
	}
}

// emit streams one wire event to the master's merged trace; delivery is
// best-effort (a dying connection already surfaces elsewhere).
func (w *Worker) emit(ev trace.Event) {
	w.conn.send(&frame{Kind: "event", Body: mustJSON(eventBody{Event: ev})})
}

// realNow is real seconds since this worker started; its wire events
// carry this clock.
func (w *Worker) realNow() float64 { return time.Since(w.epoch).Seconds() }

// serve dispatches one master RPC.
func (w *Worker) serve(method string, body json.RawMessage) (any, error) {
	switch method {
	case "jobs":
		var msg jobsMsg
		if err := json.Unmarshal(body, &msg); err != nil {
			return nil, err
		}
		jobs, err := BuildJobs(msg.Jobs)
		if err != nil {
			return nil, err
		}
		w.mu.Lock()
		w.jobs = jobs
		// A fresh job set starts a fresh run: drop any partitions and
		// shuffle chunks left over from a previous one.
		w.parts = make(map[partKey][][]minimr.KeyValue)
		w.rbuf = make(map[chunkKey][]kv)
		w.mu.Unlock()
		return nil, nil
	case "run-map":
		var req mapReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return w.runMap(&req)
	case "fetch-chunk":
		var req chunkFetchReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return nil, w.fetchChunk(&req)
	case "run-reduce":
		var req reduceReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return w.runReduce(&req)
	case "repair-block":
		var req repairReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return w.repairBlock(&req)
	default:
		return nil, fmt.Errorf("cluster: unknown method %q", method)
	}
}

func (w *Worker) job(idx int) (minimr.Job, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if idx < 0 || idx >= len(w.jobs) {
		return minimr.Job{}, fmt.Errorf("cluster: unknown job %d (have %d)", idx, len(w.jobs))
	}
	return w.jobs[idx], nil
}

// runMap gathers the task's input (locally, from a peer, or by degraded
// reconstruction), runs the real map function, and keeps the partitions
// for reducers to pull. Only the partition sizes return to the master.
func (w *Worker) runMap(req *mapReq) (*mapResp, error) {
	job, err := w.job(req.Job)
	if err != nil {
		return nil, err
	}
	data, err := w.gatherInput(req)
	if err != nil {
		return nil, err
	}
	if w.drag > 0 {
		time.Sleep(w.drag)
	}

	numR := job.NumReducers
	parts := make([][]minimr.KeyValue, numR)
	bytes := make([]float64, numR)
	var out []kv
	emit := func(k, v string) {
		if numR == 0 {
			out = append(out, kv{K: k, V: v})
			return
		}
		p := minimr.PartitionOf(k, numR)
		parts[p] = append(parts[p], minimr.KeyValue{Key: k, Value: v})
		bytes[p] += float64(len(k) + len(v) + 2)
	}
	job.Map(data, emit)

	w.mu.Lock()
	w.parts[partKey{job: req.Job, task: req.Task}] = parts
	w.mu.Unlock()

	ev := trace.New(w.realNow(), trace.EvWireMap)
	ev.Job, ev.Task, ev.Node, ev.Bytes = req.Job, req.Task, int(w.node), float64(len(data))
	w.emit(ev)
	return &mapResp{PartBytes: bytes, Output: out}, nil
}

// gatherInput produces the task's input block: straight from the local
// store, one fetch from the block's holder, or — degraded — a concurrent
// fan-in of the reconstruction sources followed by a real Reed-Solomon
// decode. A positive Need turns the fan-in into a first-Need-wins race.
func (w *Worker) gatherInput(req *mapReq) ([]byte, error) {
	if len(req.Fetch) == 0 {
		return w.readLocal(req.File, req.Stripe, req.Index)
	}
	if !req.Degraded {
		return w.fetchBlock(req.File, req.Fetch[0])
	}
	if req.Need > 0 && req.Need < len(req.Fetch) {
		return w.gatherHedged(req)
	}

	srcIdx := make([]int, len(req.Fetch))
	sources := make([][]byte, len(req.Fetch))
	errs := make([]error, len(req.Fetch))
	var wg sync.WaitGroup
	for i, f := range req.Fetch {
		srcIdx[i] = f.Index
		wg.Add(1)
		go func(i int, f fetchSpec) {
			defer wg.Done()
			sources[i], errs[i] = w.fetchBlock(req.File, f)
		}(i, f)
	}
	wg.Wait()

	var dead []int
	var cause error
	for i, err := range errs {
		if err != nil {
			dead = append(dead, req.Fetch[i].Node)
			cause = err
		}
	}
	if len(dead) > 0 {
		return nil, &deadPeersError{peers: dead, cause: cause}
	}
	data, err := w.code.ReconstructBlock(req.Index, srcIdx, sources)
	if err != nil {
		return nil, fmt.Errorf("cluster: reconstructing %s stripe %d block %d: %w", req.File, req.Stripe, req.Index, err)
	}
	return data, nil
}

// gatherHedged is the redundant degraded fan-in: race every fetch in
// req.Fetch, decode from the first req.Need that succeed, and cancel the
// losers for real by closing their peer connections. Reed-Solomon
// decoding from any k survivors yields identical bytes, so which sources
// win changes only timing, never data. Fails with *deadPeersError only
// when fewer than Need sources remain reachable.
func (w *Worker) gatherHedged(req *mapReq) ([]byte, error) {
	type result struct {
		i    int
		data []byte
		err  error
	}
	results := make(chan result, len(req.Fetch))
	cancel := make(chan struct{})
	for i, f := range req.Fetch {
		go func(i int, f fetchSpec) {
			data, err := w.fetchBlockCancel(req.File, f, cancel)
			results <- result{i: i, data: data, err: err}
		}(i, f)
	}
	var srcIdx []int
	var sources [][]byte
	var dead []int
	var cause error
	for received := 0; received < len(req.Fetch) && len(sources) < req.Need; received++ {
		r := <-results
		if r.err != nil {
			dead = append(dead, req.Fetch[r.i].Node)
			cause = r.err
			continue
		}
		srcIdx = append(srcIdx, req.Fetch[r.i].Index)
		sources = append(sources, r.data)
	}
	close(cancel) // aborts the losers' in-flight fetches
	if len(sources) < req.Need {
		return nil, &deadPeersError{peers: dead, cause: cause}
	}
	// Arrival order races; decode from a deterministically ordered set.
	sort.Sort(&bySourceIndex{idx: srcIdx, data: sources})
	data, err := w.code.ReconstructBlock(req.Index, srcIdx, sources)
	if err != nil {
		return nil, fmt.Errorf("cluster: reconstructing %s stripe %d block %d: %w", req.File, req.Stripe, req.Index, err)
	}
	return data, nil
}

// bySourceIndex sorts a (source index, block data) pairing by index.
type bySourceIndex struct {
	idx  []int
	data [][]byte
}

func (s *bySourceIndex) Len() int           { return len(s.idx) }
func (s *bySourceIndex) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *bySourceIndex) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.data[i], s.data[j] = s.data[j], s.data[i]
}

func (w *Worker) readLocal(file string, stripe, index int) ([]byte, error) {
	w.mu.Lock()
	data, ok := w.store[blockKey{file: file, stripe: stripe, index: index}]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: node %d does not store %s stripe %d block %d", w.node, file, stripe, index)
	}
	return data, nil
}

// fetchBlock reads one source block: locally when this node holds it,
// otherwise from the holder's peer server (with retries). Unreachable
// peers come back as *deadPeersError so the master can recover.
func (w *Worker) fetchBlock(file string, f fetchSpec) ([]byte, error) {
	return w.fetchBlockCancel(file, f, nil)
}

// fetchBlockCancel is fetchBlock with cancellation: closing cancel
// aborts an in-flight peer fetch by closing its connection (a nil
// channel never cancels).
func (w *Worker) fetchBlockCancel(file string, f fetchSpec, cancel <-chan struct{}) ([]byte, error) {
	if f.Node == int(w.node) {
		return w.readLocal(file, f.Stripe, f.Index)
	}
	resp, err := w.peerCallCancel(f.Addr, peerReq{Op: "block", File: file, Stripe: f.Stripe, Index: f.Index}, cancel)
	if err != nil {
		return nil, &deadPeersError{peers: []int{f.Node}, cause: err}
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: peer %d: %s", f.Node, resp.Err)
	}
	ev := trace.New(w.realNow(), trace.EvWireFetch)
	ev.Node, ev.Src, ev.Bytes = int(w.node), f.Node, float64(len(resp.Data))
	ev.Name = file
	w.emit(ev)
	return resp.Data, nil
}

// fetchChunk pulls one map-output partition into this node's reduce
// buffer (from its own partition store when the mapper ran here).
func (w *Worker) fetchChunk(req *chunkFetchReq) error {
	var records []kv
	if req.Node == int(w.node) {
		w.mu.Lock()
		parts := w.parts[partKey{job: req.Job, task: req.MapTask}]
		if req.Reducer < len(parts) {
			for _, r := range parts[req.Reducer] {
				records = append(records, kv{K: r.Key, V: r.Value})
			}
		}
		w.mu.Unlock()
	} else {
		resp, err := w.peerCall(req.Addr, peerReq{Op: "chunk", Job: req.Job, MapTask: req.MapTask, Reducer: req.Reducer})
		if err != nil {
			return &deadPeersError{peers: []int{req.Node}, cause: err}
		}
		if resp.Err != "" {
			return fmt.Errorf("cluster: peer %d: %s", req.Node, resp.Err)
		}
		records = resp.KVs
	}

	w.mu.Lock()
	w.rbuf[chunkKey{job: req.Job, reducer: req.Reducer, mapTask: req.MapTask}] = records
	w.mu.Unlock()

	var bytes float64
	for _, r := range records {
		bytes += float64(len(r.K) + len(r.V) + 2)
	}
	ev := trace.New(w.realNow(), trace.EvWireShuffle)
	ev.Job, ev.Task, ev.Node, ev.Src, ev.Bytes = req.Job, req.Reducer, int(w.node), req.Node, bytes
	w.emit(ev)
	return nil
}

// runReduce runs the real reduce function over every partition this
// node fetched for the reducer, in deterministic order: chunks by map
// task index, then keys sorted.
func (w *Worker) runReduce(req *reduceReq) (*reduceResp, error) {
	job, err := w.job(req.Job)
	if err != nil {
		return nil, err
	}

	w.mu.Lock()
	var tasks []int
	for key := range w.rbuf {
		if key.job == req.Job && key.reducer == req.Reducer {
			tasks = append(tasks, key.mapTask)
		}
	}
	sort.Ints(tasks)
	var records []kv
	for _, t := range tasks {
		records = append(records, w.rbuf[chunkKey{job: req.Job, reducer: req.Reducer, mapTask: t}]...)
	}
	w.mu.Unlock()

	grouped := make(map[string][]string)
	for _, r := range records {
		grouped[r.K] = append(grouped[r.K], r.V)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []kv
	for _, k := range keys {
		job.Reduce(k, grouped[k], func(ok, ov string) {
			out = append(out, kv{K: ok, V: ov})
		})
	}

	ev := trace.New(w.realNow(), trace.EvWireReduce)
	ev.Job, ev.Task, ev.Node, ev.N = req.Job, req.Reducer, int(w.node), len(out)
	w.emit(ev)
	return &reduceResp{Output: out}, nil
}

// repairBlock executes one background repair on the master's command:
// fetch the source blocks from peers (concurrently, like a degraded
// read's fan-in), decode the lost block, and store it — this worker is
// the rebuilt block's new holder, so later local reads and peer fetches
// serve it like any block it registered with.
func (w *Worker) repairBlock(req *repairReq) (*repairResp, error) {
	if len(req.Fetch) == 0 {
		return nil, fmt.Errorf("cluster: repair of %s stripe %d block %d has no sources", req.File, req.Stripe, req.Index)
	}
	srcIdx := make([]int, len(req.Fetch))
	sources := make([][]byte, len(req.Fetch))
	errs := make([]error, len(req.Fetch))
	var wg sync.WaitGroup
	for i, f := range req.Fetch {
		srcIdx[i] = f.Index
		wg.Add(1)
		go func(i int, f fetchSpec) {
			defer wg.Done()
			sources[i], errs[i] = w.fetchBlock(req.File, f)
		}(i, f)
	}
	wg.Wait()

	var dead []int
	var cause error
	for i, err := range errs {
		if err != nil {
			dead = append(dead, req.Fetch[i].Node)
			cause = err
		}
	}
	if len(dead) > 0 {
		return nil, &deadPeersError{peers: dead, cause: cause}
	}
	data, err := w.code.ReconstructBlock(req.Index, srcIdx, sources)
	if err != nil {
		return nil, fmt.Errorf("cluster: repairing %s stripe %d block %d: %w", req.File, req.Stripe, req.Index, err)
	}
	w.mu.Lock()
	w.store[blockKey{file: req.File, stripe: req.Stripe, index: req.Index}] = data
	w.mu.Unlock()

	ev := trace.New(w.realNow(), trace.EvWireRepair)
	ev.Name, ev.Task, ev.N = req.File, req.Stripe, req.Index
	ev.Node, ev.Bytes = int(w.node), float64(len(data))
	w.emit(ev)
	return &repairResp{Bytes: len(data)}, nil
}

// errFetchCancelled marks a peer fetch aborted because its race was
// already won; it is never a peer-health signal.
var errFetchCancelled = errors.New("cluster: fetch cancelled")

// peerCall performs one one-shot request against a peer's server, with
// retries: workers may be mid-registration when the first fetches fly.
func (w *Worker) peerCall(addr string, req peerReq) (*peerResp, error) {
	return w.peerCallCancel(addr, req, nil)
}

// peerCallCancel is peerCall with cancellation: closing cancel skips
// further retries and closes the in-flight connection (a nil channel
// never cancels).
func (w *Worker) peerCallCancel(addr string, req peerReq, cancel <-chan struct{}) (*peerResp, error) {
	var lastErr error
	delay := 25 * time.Millisecond
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(delay)
			select {
			case <-cancel:
				t.Stop()
				return nil, errFetchCancelled
			case <-t.C:
			}
			delay *= 2
		}
		resp, err := w.peerCallOnce(addr, req, cancel)
		if err == nil {
			return resp, nil
		}
		select {
		case <-cancel:
			return nil, errFetchCancelled
		default:
		}
		lastErr = err
	}
	return nil, lastErr
}

func (w *Worker) peerCallOnce(addr string, req peerReq, cancel <-chan struct{}) (*peerResp, error) {
	if addr == "" {
		return nil, fmt.Errorf("cluster: peer has no address")
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cancel:
				c.Close() // unblocks any in-flight read or write
			case <-stop:
			}
		}()
	}
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrame(c, &frame{Kind: "peer", Body: mustJSON(req)}); err != nil {
		return nil, err
	}
	var f frame
	if err := readFrame(c, &f); err != nil {
		return nil, err
	}
	var resp peerResp
	if err := json.Unmarshal(f.Body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (w *Worker) peerAcceptLoop() {
	for {
		c, err := w.peerLn.Accept()
		if err != nil {
			return
		}
		go w.servePeer(c)
	}
}

// servePeer answers one one-shot peer request: a stored block or a
// buffered map-output partition.
func (w *Worker) servePeer(c net.Conn) {
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	var f frame
	if err := readFrame(c, &f); err != nil {
		return
	}
	var req peerReq
	if err := json.Unmarshal(f.Body, &req); err != nil {
		return
	}
	var resp peerResp
	switch req.Op {
	case "block":
		data, err := w.readLocal(req.File, req.Stripe, req.Index)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Data = data
		}
	case "chunk":
		w.mu.Lock()
		parts := w.parts[partKey{job: req.Job, task: req.MapTask}]
		if req.Reducer < len(parts) {
			for _, r := range parts[req.Reducer] {
				resp.KVs = append(resp.KVs, kv{K: r.Key, V: r.Value})
			}
		} else {
			resp.Err = fmt.Sprintf("no partition %d for job %d task %d", req.Reducer, req.Job, req.MapTask)
		}
		w.mu.Unlock()
	default:
		resp.Err = fmt.Sprintf("unknown peer op %q", req.Op)
	}
	writeFrame(c, &frame{Kind: "peer", Body: mustJSON(resp)})
}
