package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// MasterOptions configures the distributed master.
type MasterOptions struct {
	// Addr is the listen address for worker registration (default
	// "127.0.0.1:0" — loopback, kernel-assigned port).
	Addr string
	// HeartbeatEvery is the real heartbeat period workers must keep
	// (default 500 ms).
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many consecutive periods may pass without a
	// heartbeat before the worker is declared dead (default 4).
	HeartbeatMiss int
	// RPCTimeout bounds each master→worker RPC (default 30 s).
	RPCTimeout time.Duration
	// Engine configures the virtual-clock engine driving the run; its
	// scheduler, network model, and heartbeat cadence are exactly the
	// in-process minimr ones.
	Engine minimr.Options
}

func (o *MasterOptions) defaults() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = 4
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 30 * time.Second
	}
}

// remoteWorker is the master's handle on one registered worker process.
type remoteWorker struct {
	node topology.NodeID
	addr string // peer address other workers fetch from
	conn *rpcConn

	mu     sync.Mutex
	lastHB time.Time
	dead   bool
}

// Master runs minimr jobs across worker processes. It owns the virtual
// master loop (scheduling, locality, failure recovery — identical to the
// in-process engine) and drives workers over the wire for all real data
// work. One Master serves one Run at a time.
type Master struct {
	fs    *dfs.FS
	opts  MasterOptions
	code  *erasure.Code
	ln    net.Listener
	epoch time.Time

	emu  sync.Mutex // serializes the merged trace stream
	sink trace.Sink

	mu        sync.Mutex
	workers   map[topology.NodeID]*remoteWorker
	newlyDead []topology.NodeID // queue for the runtime's PollFailures
	closed    bool

	monitorStop chan struct{}
	acceptDone  chan struct{}
}

// NewMaster validates the options, starts listening, and begins
// accepting worker registrations. The DFS must use the Reed-Solomon
// *erasure.Code (its parameters ship to workers so they can rebuild the
// coder for degraded reads).
func NewMaster(fs *dfs.FS, opts MasterOptions) (*Master, error) {
	if fs == nil {
		return nil, fmt.Errorf("cluster: nil file system")
	}
	code, ok := fs.Code().(*erasure.Code)
	if !ok {
		return nil, fmt.Errorf("cluster: only Reed-Solomon codes can ship to workers, got %T", fs.Code())
	}
	opts.defaults()
	if err := opts.Engine.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	m := &Master{
		fs:          fs,
		opts:        opts,
		code:        code,
		ln:          ln,
		epoch:       time.Now(),
		sink:        opts.Engine.Trace,
		workers:     make(map[topology.NodeID]*remoteWorker),
		monitorStop: make(chan struct{}),
		acceptDone:  make(chan struct{}),
	}
	go m.acceptLoop()
	go m.monitor()
	return m, nil
}

// Addr returns the address workers register at.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// emit adds one event to the merged trace stream (virtual events from
// the simulation goroutine, wire events from worker reader goroutines).
func (m *Master) emit(e trace.Event) {
	if m.sink == nil {
		return
	}
	if e.Run == "" {
		e.Run = m.opts.Engine.TraceLabel
	}
	m.emu.Lock()
	m.sink.Emit(e)
	m.emu.Unlock()
}

func (m *Master) acceptLoop() {
	defer close(m.acceptDone)
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.register(c)
	}
}

// register performs the handshake on a fresh connection: the worker
// announces its peer address, the master assigns it the lowest alive
// node without a worker and ships that node's blocks plus the code and
// heartbeat geometry.
func (m *Master) register(c net.Conn) {
	rc := newRPCConn(c)
	var f frame
	if err := readFrame(rc.br, &f); err != nil || f.Kind != "register" {
		c.Close() // malformed handshake; nothing to salvage
		return
	}
	var reg registerMsg
	if err := json.Unmarshal(f.Body, &reg); err != nil {
		c.Close()
		return
	}

	m.mu.Lock()
	var node topology.NodeID = -1
	if !m.closed {
		for _, id := range m.fs.Cluster().AliveNodes() {
			if _, taken := m.workers[id]; !taken {
				node = id
				break
			}
		}
	}
	if node < 0 {
		m.mu.Unlock()
		rc.send(&frame{Kind: "registered", Body: mustJSON(registeredMsg{Err: "no free node"})})
		c.Close()
		return
	}
	w := &remoteWorker{node: node, addr: reg.PeerAddr, conn: rc, lastHB: time.Now()}
	m.workers[node] = w
	m.mu.Unlock()

	blocks := make([]storedBlock, 0)
	for _, sb := range m.fs.NodeContents(node) {
		blocks = append(blocks, storedBlock{
			File:   sb.File,
			Stripe: sb.Block.Stripe,
			Index:  sb.Block.Index,
			Data:   sb.Data,
		})
	}
	resp := registeredMsg{
		Node:         int(node),
		NumNodes:     m.fs.Cluster().NumNodes(),
		CodeN:        m.code.N(),
		CodeK:        m.code.K(),
		Construction: int(m.code.Construction()),
		BlockSize:    m.fs.BlockSize(),
		HeartbeatMS:  int(m.opts.HeartbeatEvery / time.Millisecond),
		Blocks:       blocks,
	}
	if err := rc.send(&frame{Kind: "registered", Body: mustJSON(resp)}); err != nil {
		m.declareDead(node, "handshake write failed")
		return
	}

	rc.notify = func(f *frame) { m.onNotify(w, f) }
	rc.onClose = func(err error) {
		if err != nil {
			m.declareDead(node, fmt.Sprintf("connection lost: %v", err))
		} else {
			m.declareDead(node, "connection lost")
		}
	}
	rc.start()

	ev := trace.New(m.realNow(), trace.EvWorkerJoin)
	ev.Node = int(node)
	ev.Name = reg.PeerAddr
	m.emit(ev)
}

// onNotify handles one-way frames from a worker: heartbeats refresh its
// deadline; events join the merged trace stream.
func (m *Master) onNotify(w *remoteWorker, f *frame) {
	switch f.Kind {
	case "hb":
		w.mu.Lock()
		w.lastHB = time.Now()
		w.mu.Unlock()
	case "event":
		var eb eventBody
		if err := json.Unmarshal(f.Body, &eb); err == nil {
			m.emit(eb.Event)
		}
	}
}

// sortedWorkers snapshots the worker table in node order so callers do
// not depend on map iteration order. Callers hold m.mu.
func (m *Master) sortedWorkers() []*remoteWorker {
	ids := make([]int, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	workers := make([]*remoteWorker, len(ids))
	for i, id := range ids {
		workers[i] = m.workers[topology.NodeID(id)]
	}
	return workers
}

// monitor declares workers dead when their real heartbeats miss the
// deadline, feeding them into the same failure-recovery path a simulated
// failure takes.
func (m *Master) monitor() {
	tick := time.NewTicker(m.opts.HeartbeatEvery / 2)
	defer tick.Stop()
	deadline := m.opts.HeartbeatEvery * time.Duration(m.opts.HeartbeatMiss)
	for {
		select {
		case <-m.monitorStop:
			return
		case now := <-tick.C:
			m.mu.Lock()
			var late []*remoteWorker
			for _, w := range m.sortedWorkers() {
				w.mu.Lock()
				if !w.dead && now.Sub(w.lastHB) > deadline {
					late = append(late, w)
				}
				w.mu.Unlock()
			}
			m.mu.Unlock()
			for _, w := range late {
				m.declareDead(w.node, fmt.Sprintf("missed %d heartbeats", m.opts.HeartbeatMiss))
			}
		}
	}
}

// declareDead marks a worker dead once: its connection is torn down (so
// in-flight RPCs fail fast), the node is queued for the runtime's
// failure poll, and a worker-lost event joins the trace stream.
func (m *Master) declareDead(node topology.NodeID, reason string) {
	m.mu.Lock()
	w := m.workers[node]
	if w == nil {
		m.mu.Unlock()
		return
	}
	w.mu.Lock()
	already := w.dead
	w.dead = true
	w.mu.Unlock()
	if already {
		m.mu.Unlock()
		return
	}
	m.newlyDead = append(m.newlyDead, node)
	m.mu.Unlock()

	w.conn.close(errConnClosed)
	ev := trace.New(m.realNow(), trace.EvWorkerLost)
	ev.Node = int(node)
	ev.Name = reason
	m.emit(ev)
}

// pollDead drains the newly-dead queue; the runtime calls it at every
// virtual heartbeat (runtime.Params.PollFailures).
func (m *Master) pollDead() []topology.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	nodes := m.newlyDead
	m.newlyDead = nil
	return nodes
}

// worker returns the live handle for a node, or nil if it has none or
// it is already dead.
func (m *Master) worker(node topology.NodeID) *remoteWorker {
	m.mu.Lock()
	w := m.workers[node]
	m.mu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if dead {
		return nil
	}
	return w
}

// workerAddr returns a node's peer address ("" when it has no worker).
func (m *Master) workerAddr(node topology.NodeID) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.workers[node]; w != nil {
		return w.addr
	}
	return ""
}

// callWorker performs one RPC against a node's worker and maps failures
// for the runtime: transport errors (timeout, dropped connection)
// declare the worker itself dead; far-side errors that implicate peers
// (a failed fetch from a dead mapper) declare those peers dead. Both
// come back as *runtime.DeadNodeError so the runtime re-executes through
// its normal failure path. Any other remote error aborts the run.
func (m *Master) callWorker(node topology.NodeID, method string, req, resp any) error {
	w := m.worker(node)
	if w == nil {
		return &runtime.DeadNodeError{Nodes: []topology.NodeID{node}}
	}
	err := w.conn.call(method, req, resp, m.opts.RPCTimeout)
	if err == nil {
		return nil
	}
	var re *remoteError
	if errors.As(err, &re) {
		if len(re.dead) > 0 {
			nodes := make([]topology.NodeID, len(re.dead))
			for i, id := range re.dead {
				nodes[i] = topology.NodeID(id)
				m.declareDead(nodes[i], fmt.Sprintf("unreachable during %s", method))
			}
			return &runtime.DeadNodeError{Nodes: nodes}
		}
		return re
	}
	m.declareDead(node, fmt.Sprintf("%s failed: %v", method, err))
	return &runtime.DeadNodeError{Nodes: []topology.NodeID{node}}
}

// realNow returns real seconds since the master started; wire events
// carry this clock, virtual events the simulation clock.
func (m *Master) realNow() float64 { return time.Since(m.epoch).Seconds() }

// waitWorkers blocks until every alive node has a registered worker.
func (m *Master) waitWorkers(ctx context.Context) error {
	for {
		m.mu.Lock()
		missing := 0
		for _, id := range m.fs.Cluster().AliveNodes() {
			if _, ok := m.workers[id]; !ok {
				missing++
			}
		}
		m.mu.Unlock()
		if missing == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d workers: %w", missing, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Run executes the jobs across the registered workers and reports like
// the in-process engine. It blocks until every alive node has a worker,
// broadcasts the job specs, then drives the shared virtual master loop
// with the cluster backend.
func (m *Master) Run(ctx context.Context, specs []JobSpec) (*minimr.Report, error) {
	jobs, err := BuildJobs(specs)
	if err != nil {
		return nil, err
	}
	// NewHarness revalidates options and jobs at submission time — the
	// master rejects malformed work before any worker sees it.
	h, err := minimr.NewHarness(m.fs, &m.opts.Engine, jobs)
	if err != nil {
		return nil, err
	}
	if err := m.waitWorkers(ctx); err != nil {
		return nil, err
	}

	msg := jobsMsg{Jobs: specs}
	for _, id := range m.fs.Cluster().AliveNodes() {
		if err := m.callWorker(id, "jobs", msg, nil); err != nil {
			var dead *runtime.DeadNodeError
			if errors.As(err, &dead) {
				continue // the run will recover it like any mid-run failure
			}
			return nil, err
		}
	}

	backend := newClusterBackend(m, h, jobs)
	res, err := runtime.Run(runtime.Params{
		Name:                "cluster",
		Ctx:                 ctx,
		Engine:              h.Engine,
		Cluster:             m.fs.Cluster(),
		Net:                 h.Net,
		Scheduler:           h.Scheduler,
		Env:                 h.Env,
		JobSched:            m.opts.Engine.JobSched,
		HeartbeatInterval:   m.opts.Engine.HeartbeatInterval,
		OutOfBandHeartbeats: m.opts.Engine.OutOfBandHeartbeats,
		MaxSimTime:          m.opts.Engine.MaxSimTime,
		Hedge:               m.opts.Engine.Hedge,
		Repair:              m.opts.Engine.Repair,
		PollFailures:        m.pollDead,
		Sink:                masterSink{m},
		Label:               m.opts.Engine.TraceLabel,
		TraceFlowRates:      m.opts.Engine.TraceFlowRates,
	}, backend, h.RJobs)
	if err != nil {
		return nil, err
	}
	return &minimr.Report{
		Scheduler:   res.Scheduler,
		Failed:      res.Failed,
		Jobs:        res.Jobs,
		Outputs:     backend.outputs,
		Makespan:    res.Makespan,
		BytesMoved:  res.BytesMoved,
		WastedBytes: res.WastedBytes,
		Repair:      res.Repair,
	}, nil
}

// masterSink routes the runtime's virtual events through the master's
// merged stream, interleaving them with the workers' wire events.
type masterSink struct{ m *Master }

func (s masterSink) Emit(e trace.Event) { s.m.emit(e) }

// Close shuts the master down: the listener stops, the monitor exits,
// and every worker connection closes (workers exit when their master
// connection dies).
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	workers := m.sortedWorkers()
	m.mu.Unlock()

	close(m.monitorStop)
	m.ln.Close() // unblocks acceptLoop
	for _, w := range workers {
		w.conn.close(errConnClosed)
	}
	<-m.acceptDone
}
