package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{Kind: "hb"},
		{Kind: "register", Body: mustJSON(registerMsg{PeerAddr: "127.0.0.1:9"})},
		{Kind: "req", Seq: 42, Method: "run-map", Body: mustJSON(mapReq{Job: 1, Task: 7, File: "input.txt", Degraded: true,
			Fetch: []fetchSpec{{Node: 3, Addr: "a", Stripe: 2, Index: 11}}})},
		{Kind: "resp", Seq: 42, Error: "boom", Dead: []int{3, 5}},
	}
	for _, in := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &in); err != nil {
			t.Fatalf("write %q: %v", in.Kind, err)
		}
		var out frame
		if err := readFrame(&buf, &out); err != nil {
			t.Fatalf("read %q: %v", in.Kind, err)
		}
		// Compare through JSON: RawMessage formatting may differ.
		var a, b any
		if err := json.Unmarshal(mustJSON(in), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(mustJSON(out), &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round trip changed frame %q:\n in: %+v\nout: %+v", in.Kind, in, out)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	huge := frame{Kind: "event", Body: mustJSON(strings.Repeat("x", maxFrame))}
	var buf bytes.Buffer
	if err := writeFrame(&buf, &huge); err == nil {
		t.Fatal("writeFrame accepted an oversized frame")
	}

	// A hostile length prefix must be rejected before allocation.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	var f frame
	if err := readFrame(bytes.NewReader(hdr), &f); err == nil {
		t.Fatal("readFrame accepted a hostile length prefix")
	}
}

func TestFrameStreamsSequentially(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		f := frame{Kind: "req", Seq: uint64(i), Method: "jobs"}
		if err := writeFrame(&buf, &f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		var f frame
		if err := readFrame(&buf, &f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d read out of order (seq %d)", i, f.Seq)
		}
	}
}
