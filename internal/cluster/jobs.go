package cluster

import (
	"fmt"

	"degradedfirst/internal/minimr"
)

// JobSpec is a wire-shippable job description. Map and reduce closures
// cannot cross process boundaries, so cluster jobs are named instances
// of the paper's workloads; master and workers instantiate the same
// minimr.Job from the spec, which keeps costs, partitioning, and the
// real functions identical on both sides.
type JobSpec struct {
	// Kind selects the workload: "wordcount", "grep", or "linecount".
	Kind string `json:"kind"`
	// Input is the DFS file to process.
	Input string `json:"input"`
	// Word is Grep's needle; ignored by the other kinds.
	Word string `json:"word,omitempty"`
	// NumReducers is the reduce task count.
	NumReducers int `json:"reducers"`
	// SubmitAt is the virtual submission time.
	SubmitAt float64 `json:"submit_at"`
	// Tenant, Weight and Deadline feed the master's job-level
	// scheduling policies (MasterOptions.Engine.JobSched). Optional.
	Tenant   string  `json:"tenant,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
}

// BuildJob instantiates the minimr job a spec names.
func BuildJob(spec JobSpec) (minimr.Job, error) {
	var job minimr.Job
	switch spec.Kind {
	case "wordcount":
		job = minimr.WordCountJob(spec.Input, spec.NumReducers)
	case "grep":
		if spec.Word == "" {
			return minimr.Job{}, fmt.Errorf("cluster: grep job needs a word")
		}
		job = minimr.GrepJob(spec.Input, spec.Word, spec.NumReducers)
	case "linecount":
		job = minimr.LineCountJob(spec.Input, spec.NumReducers)
	default:
		return minimr.Job{}, fmt.Errorf("cluster: unknown job kind %q", spec.Kind)
	}
	job.SubmitAt = spec.SubmitAt
	job.Tenant = spec.Tenant
	job.Weight = spec.Weight
	job.Deadline = spec.Deadline
	return job, nil
}

// BuildJobs instantiates every spec, in order.
func BuildJobs(specs []JobSpec) ([]minimr.Job, error) {
	jobs := make([]minimr.Job, len(specs))
	for i, spec := range specs {
		job, err := BuildJob(spec)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	return jobs, nil
}
