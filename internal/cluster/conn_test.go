package cluster

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestLateResponseAfterTimeoutIsDropped pins the demuxer's timeout
// contract: once a call times out, its sequence number is forgotten, so
// a response arriving late must be dropped on the floor — never
// delivered to the timed-out caller's buffer, and never to a retry
// (which holds a fresh sequence number).
func TestLateResponseAfterTimeoutIsDropped(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	rc := newRPCConn(cliEnd)
	rc.start()
	defer rc.close(errConnClosed)

	reqs := make(chan frame, 2)
	go func() {
		for {
			var f frame
			if err := readFrame(srvEnd, &f); err != nil {
				return
			}
			if f.Kind == "req" {
				reqs <- f
			}
		}
	}()

	// Call 1: the server reads the request but never answers in time.
	var out1 struct {
		V string `json:"v"`
	}
	err := rc.call("slow", struct{}{}, &out1, 50*time.Millisecond)
	if !errors.Is(err, errRPCTimeout) {
		t.Fatalf("err = %v, want %v", err, errRPCTimeout)
	}
	req1 := <-reqs

	// The answer lands after the timeout already deleted the waiter.
	if err := writeFrame(srvEnd, &frame{Kind: "resp", Seq: req1.Seq,
		Body: mustJSON(map[string]string{"v": "stale"})}); err != nil {
		t.Fatal(err)
	}

	// Call 2 (the retry): must get a fresh sequence number and see only
	// its own response. The read loop handles the stale frame first, so
	// a misrouted delivery would surface here.
	done := make(chan error, 1)
	var out2 struct {
		V string `json:"v"`
	}
	go func() { done <- rc.call("slow", struct{}{}, &out2, 5*time.Second) }()
	req2 := <-reqs
	if req2.Seq == req1.Seq {
		t.Fatalf("retry reused timed-out sequence number %d", req1.Seq)
	}
	if err := writeFrame(srvEnd, &frame{Kind: "resp", Seq: req2.Seq,
		Body: mustJSON(map[string]string{"v": "fresh"})}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("retry: %v", err)
	}
	if out2.V != "fresh" {
		t.Fatalf("retry received %q, want \"fresh\"", out2.V)
	}
	if out1.V != "" {
		t.Fatalf("late response mutated the timed-out call's buffer to %q", out1.V)
	}
}
