package cluster

import (
	"fmt"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// clusterBackend implements runtime.Backend and runtime.AsyncBackend by
// turning each task's work into RPCs against worker processes. Virtual
// costs stay exactly the in-process engine's (calibrated per-task times,
// planned transfers through the network model); the real bytes move
// between workers. All methods run on the simulation goroutine; only the
// run-map dispatch goroutines live outside it, and they communicate
// solely through each future's buffered channel.
type clusterBackend struct {
	m    *Master
	jobs []minimr.Job
	rng  *stats.RNG

	blocks  [][]erasure.BlockID
	holders [][]topology.NodeID
	files   []*dfs.File

	// reduceOut[job][reducer] holds a finished reducer's real output
	// between AwaitReduce and ReduceFinish.
	reduceOut [][][]kv
	outputs   []map[string]string

	// picked and reqs remember each degraded task's latest primary
	// sources and run-map request so SpareSources can extend the request
	// with spare fetches. Keyed by (job, task).
	picked map[[2]int][]dfs.Source
	reqs   map[[2]int]*mapReq
}

// mapFuture is Execute's output payload: the channel resolves when the
// worker's run-map RPC returns. Buffered so an abandoned future (its
// task requeued after a failure) never blocks the dispatch goroutine.
type mapFuture struct {
	ch chan mapOutcome
}

type mapOutcome struct {
	resp mapResp
	err  error
}

// mapDone is the resolved map output after AwaitOutput: where the real
// partitions live and how big each is.
type mapDone struct {
	node  topology.NodeID
	addr  string
	sizes []float64
}

// chunkSrc is a shuffle chunk's Data payload: which worker holds the
// partition. Deliver turns it into a fetch-chunk RPC.
type chunkSrc struct {
	node topology.NodeID
	addr string
	task int
}

func newClusterBackend(m *Master, h *minimr.Harness, jobs []minimr.Job) *clusterBackend {
	b := &clusterBackend{
		m:       m,
		jobs:    jobs,
		rng:     stats.NewRNG(m.opts.Engine.Seed),
		blocks:  h.Blocks,
		holders: h.Holders,
	}
	for i := range jobs {
		f, err := m.fs.File(jobs[i].Input)
		if err != nil {
			// NewHarness already resolved every input; this cannot fail.
			panic(fmt.Sprintf("cluster: input %q vanished: %v", jobs[i].Input, err))
		}
		b.files = append(b.files, f)
		b.reduceOut = append(b.reduceOut, make([][]kv, jobs[i].NumReducers))
		b.outputs = append(b.outputs, make(map[string]string))
	}
	return b
}

func (b *clusterBackend) speed(id topology.NodeID) float64 {
	return b.m.fs.Cluster().Node(id).SpeedFactor
}

// PlanInput implements runtime.Backend: the virtual transfers are the
// in-process engine's (one block from the holder, or k degraded-read
// sources), and the payload is the run-map request telling the worker
// which real fetches to perform.
func (b *clusterBackend) PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]runtime.Transfer, any, error) {
	block := b.blocks[job][task]
	blockBytes := float64(b.m.fs.BlockSize())
	req := &mapReq{Job: job, Task: task, File: b.jobs[job].Input, Stripe: block.Stripe, Index: block.Index}
	switch class {
	case sched.ClassNodeLocal:
		return nil, req, nil
	case sched.ClassRackLocal, sched.ClassRemote:
		holder := b.holders[job][task]
		req.Fetch = []fetchSpec{{
			Node:   int(holder),
			Addr:   b.m.workerAddr(holder),
			Stripe: block.Stripe,
			Index:  block.Index,
		}}
		return []runtime.Transfer{{Src: holder, Bytes: blockBytes}}, req, nil
	case sched.ClassDegraded:
		sources, err := dfs.PickRepairSources(b.m.fs.Cluster(), b.m.code, b.files[job].Placement,
			block, node, b.m.opts.Engine.SourceStrategy, b.rng)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: planning degraded read of %v: %w", block, err)
		}
		req.Degraded = true
		transfers := make([]runtime.Transfer, len(sources))
		for i, src := range sources {
			transfers[i] = runtime.Transfer{Src: src.Node, Bytes: blockBytes}
			req.Fetch = append(req.Fetch, fetchSpec{
				Node:   int(src.Node),
				Addr:   b.m.workerAddr(src.Node),
				Stripe: block.Stripe,
				Index:  src.Index,
			})
		}
		if b.picked == nil {
			b.picked = make(map[[2]int][]dfs.Source)
			b.reqs = make(map[[2]int]*mapReq)
		}
		b.picked[[2]int{job, task}] = sources
		b.reqs[[2]int{job, task}] = req
		return transfers, req, nil
	default:
		return nil, nil, fmt.Errorf("cluster: unknown class %v", class)
	}
}

// SpareSources implements runtime.HedgedBackend: surviving stripe blocks
// beyond the primaries planned for the latest degraded read,
// deterministically ordered by stripe index (no RNG draws). It also
// rewrites the pending run-map request into a first-k-wins race: Need
// becomes the primary count and the spares join Fetch, so the worker
// decodes from whichever k fetches finish first and cancels the rest.
// Plans that repair from fewer than k blocks (a locality-aware code's
// local group) are not any-k substitutable and get no spares.
func (b *clusterBackend) SpareSources(job, task int, node topology.NodeID, max int) ([]runtime.Transfer, error) {
	key := [2]int{job, task}
	req := b.reqs[key]
	if req == nil || !req.Degraded {
		return nil, fmt.Errorf("cluster: spare sources requested for non-degraded task %d/%d", job, task)
	}
	primaries := b.picked[key]
	if len(primaries) != b.m.code.K() {
		return nil, nil
	}
	block := b.blocks[job][task]
	spares := dfs.SpareSources(b.m.fs.Cluster(), b.files[job].Placement, block, primaries, max)
	if len(spares) == 0 {
		return nil, nil
	}
	req.Need = len(req.Fetch)
	transfers := make([]runtime.Transfer, len(spares))
	for i, src := range spares {
		transfers[i] = runtime.Transfer{Src: src.Node, Bytes: float64(b.m.fs.BlockSize())}
		req.Fetch = append(req.Fetch, fetchSpec{
			Node:   int(src.Node),
			Addr:   b.m.workerAddr(src.Node),
			Stripe: block.Stripe,
			Index:  src.Index,
		})
	}
	return transfers, nil
}

// Execute implements runtime.Backend: dispatch the real map work to the
// node's worker and charge the calibrated virtual CPU time. The RPC runs
// on its own goroutine; AwaitOutput collects it at the task's virtual
// completion instant.
func (b *clusterBackend) Execute(job, task int, node topology.NodeID, input any) (float64, any) {
	req := input.(*mapReq)
	fut := &mapFuture{ch: make(chan mapOutcome, 1)}
	go func() {
		var resp mapResp
		err := b.m.callWorker(node, "run-map", req, &resp)
		fut.ch <- mapOutcome{resp: resp, err: err}
	}()
	dur := b.jobs[job].MapCost.Seconds(float64(b.m.fs.BlockSize())) * b.speed(node)
	return dur, fut
}

// AwaitOutput implements runtime.AsyncBackend: block until the worker's
// map finished. Map-only jobs merge their output here; jobs with
// reducers resolve to the partition directory.
func (b *clusterBackend) AwaitOutput(job, task int, node topology.NodeID, output any) (any, error) {
	fut := output.(*mapFuture)
	o := <-fut.ch
	if o.err != nil {
		return nil, o.err
	}
	if b.jobs[job].NumReducers == 0 {
		out := b.outputs[job]
		for _, r := range o.resp.Output {
			out[r.K] = r.V
		}
		return &mapDone{node: node}, nil
	}
	return &mapDone{node: node, addr: b.m.workerAddr(node), sizes: o.resp.PartBytes}, nil
}

// Partitions implements runtime.Backend: one chunk per reducer, sized by
// the worker's real partition bytes, pointing at the worker holding the
// records.
func (b *clusterBackend) Partitions(job, task int, output any) []runtime.Chunk {
	d := output.(*mapDone)
	chunks := make([]runtime.Chunk, b.jobs[job].NumReducers)
	for r := range chunks {
		var bytes float64
		if r < len(d.sizes) {
			bytes = d.sizes[r]
		}
		chunks[r] = runtime.Chunk{Bytes: bytes, Data: chunkSrc{node: d.node, addr: d.addr, task: task}}
	}
	return chunks
}

// Deliver implements runtime.Backend: tell the reducer's worker to pull
// the partition from the mapper's worker. A dead mapper surfaces as
// *runtime.DeadNodeError, which marks the chunk undelivered and
// re-executes the lost map task.
func (b *clusterBackend) Deliver(job, reducer int, node topology.NodeID, c runtime.Chunk) error {
	src := c.Data.(chunkSrc)
	return b.m.callWorker(node, "fetch-chunk", &chunkFetchReq{
		Job:     job,
		Reducer: reducer,
		MapTask: src.task,
		Node:    int(src.node),
		Addr:    src.addr,
	}, nil)
}

// ReduceDuration implements runtime.Backend: calibrated from the real
// shuffle volume, as in-process.
func (b *clusterBackend) ReduceDuration(job, reducer int, node topology.NodeID, receivedBytes float64) float64 {
	return b.jobs[job].ReduceCost.Seconds(receivedBytes) * b.speed(node)
}

// ReduceReset implements runtime.Backend. On the wire it is a no-op: a
// restarted reducer re-fetches every partition deterministically, and a
// re-fetch overwrites any stale chunk a worker still buffers, so there
// is no remote state to clear.
func (b *clusterBackend) ReduceReset(job, reducer int) {
	b.reduceOut[job][reducer] = nil
}

// AwaitReduce implements runtime.AsyncBackend: run the real reduce on
// the reducer's worker at its virtual completion instant and keep the
// records for ReduceFinish.
func (b *clusterBackend) AwaitReduce(job, reducer int, node topology.NodeID) error {
	var resp reduceResp
	if err := b.m.callWorker(node, "run-reduce", &reduceReq{Job: job, Reducer: reducer}, &resp); err != nil {
		return err
	}
	b.reduceOut[job][reducer] = resp.Output
	return nil
}

// ReduceFinish implements runtime.Backend: merge the reducer's real
// output into the job output.
func (b *clusterBackend) ReduceFinish(job, reducer int) {
	out := b.outputs[job]
	for _, r := range b.reduceOut[job][reducer] {
		out[r.K] = r.V
	}
	b.reduceOut[job][reducer] = nil
}
