package cluster

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

// repairFS builds a DFS whose code leaves room for rebuilt blocks: a
// (6,4) stripe on 12 nodes, unlike the (12,10) testbed where every
// stripe spans the whole cluster and no node can host a repair.
func repairFS(t *testing.T, seed int64) (*dfs.FS, []byte) {
	t.Helper()
	clu := topology.MustNew(topology.Config{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	fs, err := dfs.New(clu, erasure.MustNew(6, 4), minimr.TestbedBlockSize,
		placement.RoundRobin{}, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(testBlocks, minimr.TestbedBlockSize, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	return fs, corpus
}

// TestLoopbackRepairHealsDFS is the distributed heal-to-full-redundancy
// scenario: a node fails before the run, the background healer drives
// real repair-block RPCs — each destination worker fetches the source
// blocks from its peers and runs the real Reed-Solomon decode — and
// afterwards the placement is fully redundant, every rebuilt block
// physically lives on its new holder's worker, and the virtual schedule
// is byte-identical to the in-process engine with the same config.
func TestLoopbackRepairHealsDFS(t *testing.T) {
	fs, corpus := repairFS(t, 6)
	fs.Cluster().FailNode(3)
	file, err := fs.File("input.txt")
	if err != nil {
		t.Fatal(err)
	}
	wantRepaired := len(file.Placement.NodeBlocks(3))
	if wantRepaired == 0 {
		t.Fatal("failed node held no blocks; scenario is vacuous")
	}

	mem := &trace.Memory{}
	opts := engineOpts(mem)
	opts.Repair = repair.Config{Enabled: true, RateFraction: 0.5}
	l, err := StartLocal(fs, MasterOptions{
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         opts,
	}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rep, err := l.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Foreground correctness is untouched by the healer.
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatal("cluster output diverges from ground truth with repair on")
	}

	st := rep.Repair
	if st == nil {
		t.Fatal("repair enabled with a failed node but Report.Repair is nil")
	}
	if st.BlocksRepaired != wantRepaired {
		t.Fatalf("BlocksRepaired = %d, want %d (all blocks of node 3)", st.BlocksRepaired, wantRepaired)
	}
	if st.FullRedundancyAt < 0 {
		t.Fatalf("never healed to full redundancy: %+v", st)
	}
	if st.Unrepairable != 0 {
		t.Fatalf("single failure within n-k produced unrepairable stripes: %+v", st)
	}

	// The master's placement is fully redundant again.
	for s := 0; s < file.NumStripes(); s++ {
		for i, h := range file.Placement.StripeHolders(s) {
			if !fs.Cluster().Alive(h) {
				t.Fatalf("stripe %d block %d still on dead node %d", s, i, h)
			}
		}
	}

	// Every repair really ran on a worker: one wire-repair event per
	// rebuilt block, and the rebuilt bytes are in the destination
	// worker's store — byte-identical to ground truth for native blocks.
	wire := 0
	for _, e := range mem.Events() {
		if e.Type != trace.EvWireRepair {
			continue
		}
		wire++
		w := l.WorkerFor(topology.NodeID(e.Node))
		if w == nil {
			t.Fatalf("wire-repair on node %d, which has no worker", e.Node)
		}
		data, err := w.readLocal(e.Name, e.Task, e.N)
		if err != nil {
			t.Fatalf("rebuilt block missing from worker %d's store: %v", e.Node, err)
		}
		if e.N < fs.Code().K() {
			truth, err := fs.ReadBlock(e.Name, erasure.BlockID{Stripe: e.Task, Index: e.N})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, truth) {
				t.Fatalf("worker %d rebuilt stripe %d block %d differs from ground truth", e.Node, e.Task, e.N)
			}
		} else if len(data) != fs.BlockSize() {
			t.Fatalf("worker %d rebuilt parity block has %d bytes, want %d", e.Node, len(data), fs.BlockSize())
		}
	}
	if wire != wantRepaired {
		t.Fatalf("wire-repair events = %d, want %d", wire, wantRepaired)
	}

	// The in-process engine on identical DFS contents produces the same
	// virtual schedule and the same repair timeline.
	refFS, _ := repairFS(t, 6)
	refFS.Cluster().FailNode(3)
	refOpts := engineOpts(nil)
	refOpts.Repair = repair.Config{Enabled: true, RateFraction: 0.5}
	ref, err := minimr.Run(refFS, refOpts, []minimr.Job{minimr.WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outputs[0], ref.Outputs[0]) {
		t.Fatal("cluster output diverges from the in-process engine")
	}
	if rep.Makespan != ref.Makespan || rep.BytesMoved != ref.BytesMoved {
		t.Fatalf("virtual schedules diverge: cluster (%v, %v), in-process (%v, %v)",
			rep.Makespan, rep.BytesMoved, ref.Makespan, ref.BytesMoved)
	}
	if !reflect.DeepEqual(st, ref.Repair) {
		t.Fatalf("repair timelines diverge:\ncluster    %+v\nin-process %+v", st, ref.Repair)
	}
}
