package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"degradedfirst/internal/minimr"
	"degradedfirst/internal/workload"
)

// TestProcessClusterSurvivesWorkerKill runs the real binaries — one
// dfmaster and twelve dfworker OS processes over loopback TCP — and
// SIGKILLs one worker mid-job. The master must detect the death and
// converge to the correct WordCount output.
func TestProcessClusterSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	dir := t.TempDir()
	masterBin := filepath.Join(dir, "dfmaster")
	workerBin := filepath.Join(dir, "dfworker")
	for bin, pkg := range map[string]string{
		masterBin: "degradedfirst/cmd/dfmaster",
		workerBin: "degradedfirst/cmd/dfworker",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	var masterOut bytes.Buffer
	master := exec.Command(masterBin,
		"-addr", "127.0.0.1:0",
		"-hb-every", "50ms", "-hb-miss", "4",
		"-seed", "1", "-reducers", "8")
	master.Stdout = &masterOut
	stderr, err := master.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer master.Process.Kill()

	// The master announces its kernel-assigned port on stderr.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.Fields(line[i+len("listening on "):])[0]
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("master never announced its address")
	}

	workers := make([]*exec.Cmd, 12)
	workerErr := make([]*bytes.Buffer, 12)
	for i := range workers {
		buf := &bytes.Buffer{}
		w := exec.Command(workerBin, "-master", addr, "-drag", "150ms")
		w.Stderr = buf
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		workerErr[i] = buf
		defer w.Process.Kill()
	}

	// Let registration and the first map wave happen, then SIGKILL one
	// worker mid-job (with -drag 150ms the job runs well past this).
	time.Sleep(250 * time.Millisecond)
	victim := workers[4]
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	// Reap the victim so exec's stderr copier finishes before the test
	// reads its buffer (a killed process returns a non-nil error).
	_ = victim.Wait()

	done := make(chan error, 1)
	go func() { done <- master.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("master failed: %v\nstdout:\n%s", err, masterOut.String())
		}
	case <-time.After(90 * time.Second):
		master.Process.Kill()
		t.Fatal("master did not finish after the worker kill")
	}

	var doc struct {
		Failed  []int               `json:"failed"`
		Outputs []map[string]string `json:"outputs"`
	}
	if err := json.Unmarshal(masterOut.Bytes(), &doc); err != nil {
		t.Fatalf("decoding master output: %v\n%s", err, masterOut.String())
	}

	// The victim's node ID is in its own startup banner.
	victimNode := -1
	if line := workerErr[4].String(); line != "" {
		fmt.Sscanf(line, "dfworker: registered as node %d", &victimNode)
	}
	if victimNode < 0 {
		t.Fatalf("victim never registered: %q", workerErr[4].String())
	}
	foundVictim := false
	for _, id := range doc.Failed {
		if id == victimNode {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Fatalf("killed node %d not in failed list %v", victimNode, doc.Failed)
	}

	// The output must match the corpus the master generated (same
	// deterministic generator, same seed and geometry as its defaults).
	corpus, err := workload.GenerateBlockAlignedCorpus(60, minimr.TestbedBlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := wantCounts(workload.CountWords(corpus))
	if len(doc.Outputs) != 1 || !reflect.DeepEqual(doc.Outputs[0], want) {
		t.Fatalf("process-cluster output diverges from ground truth (%d vs %d keys)",
			len(doc.Outputs[0]), len(want))
	}
}
