package cluster

import (
	"context"
	"fmt"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/topology"
)

// Local is an in-process loopback cluster: one master plus one worker
// per alive node, all over 127.0.0.1. It is the CI-friendly way to run
// the distributed runtime — real sockets, real RPCs, real heartbeats,
// no extra processes.
type Local struct {
	Master  *Master
	workers map[topology.NodeID]*Worker
}

// StartLocal builds the loopback cluster over an already-populated DFS.
// Nodes already failed in the DFS's cluster get no worker — the paper's
// pre-run failure injection. wopts.MasterAddr is ignored.
func StartLocal(fs *dfs.FS, mopts MasterOptions, wopts WorkerOptions) (*Local, error) {
	m, err := NewMaster(fs, mopts)
	if err != nil {
		return nil, err
	}
	l := &Local{Master: m, workers: make(map[topology.NodeID]*Worker)}
	wopts.MasterAddr = m.Addr()
	for range fs.Cluster().AliveNodes() {
		w, err := StartWorker(wopts)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: starting worker: %w", err)
		}
		l.workers[w.Node()] = w
	}
	return l, nil
}

// Run executes the jobs across the loopback cluster.
func (l *Local) Run(ctx context.Context, specs []JobSpec) (*minimr.Report, error) {
	return l.Master.Run(ctx, specs)
}

// WorkerFor returns the worker serving a node (nil if the node had
// none — it was failed before startup).
func (l *Local) WorkerFor(node topology.NodeID) *Worker { return l.workers[node] }

// Close tears the whole loopback cluster down.
func (l *Local) Close() {
	for _, w := range l.workers {
		w.Close()
	}
	l.Master.Close()
}
