package cluster

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

// killSink watches the merged trace stream and hard-kills the worker of
// the first node that finishes a map task — while the run is still in
// flight. The kill runs on its own goroutine: the sink is invoked with
// the master's stream lock held.
type killSink struct {
	l *Local

	mu     sync.Mutex
	victim topology.NodeID
	killed bool
}

func (s *killSink) Emit(e trace.Event) {
	if e.Type != trace.EvTaskFinish {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return
	}
	if w := s.l.WorkerFor(topology.NodeID(e.Node)); w != nil {
		s.killed = true
		s.victim = topology.NodeID(e.Node)
		go w.Kill()
	}
}

// TestLoopbackKillWorkerMidJob is the mid-job crash claim: hard-killing
// a worker while the job runs (dropping its connection, its blocks, and
// its buffered map output) still converges to the correct result via
// dead-worker detection and task re-execution.
func TestLoopbackKillWorkerMidJob(t *testing.T) {
	fs, corpus := testbedFS(t, 5)
	mem := &trace.Memory{}
	sink := &killSink{}
	opts := engineOpts(multiSink{mem, sink})
	l, err := StartLocal(fs, MasterOptions{
		// Detection of the kill is connection-based (the dead worker's
		// socket drops), so the heartbeat deadline can stay generous for
		// slow CI runners.
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         opts,
	}, WorkerOptions{
		// Stretch real task time so the kill lands mid-job.
		Drag: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sink.l = l

	rep, err := l.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	victim, killed := sink.victim, sink.killed
	sink.mu.Unlock()
	if !killed {
		t.Fatal("no worker was killed — the run finished before any map task did?")
	}
	foundVictim := false
	for _, id := range rep.Failed {
		if id == victim {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Fatalf("killed node %d not in failed list %v", victim, rep.Failed)
	}

	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatalf("output wrong after mid-job worker kill (%d vs %d keys)",
			len(rep.Outputs[0]), len(want))
	}

	// The failure must be visible in the merged stream: the master
	// declared the worker lost and re-planned work.
	var lost, requeues int
	for _, e := range mem.Events() {
		switch e.Type {
		case trace.EvWorkerLost:
			lost++
		case trace.EvTaskRequeue:
			requeues++
		}
	}
	if lost == 0 {
		t.Fatal("no worker-lost event in the merged stream")
	}
	if requeues == 0 {
		t.Fatal("no task was re-executed after the kill")
	}
}

// TestLoopbackHeartbeatDeadline is the pure failure-detection claim: a
// worker that stops heartbeating but keeps its connection open and keeps
// serving requests is still declared dead at the deadline, and the run
// completes without it.
//
// The victim alone gets a drag far past the detection deadline, so the
// run cannot finish before the master declares it dead — and while the
// master waits on the victim's stuck map tasks, the rest of the cluster
// idles, so even a 1-CPU runner keeps the other heartbeats flowing.
func TestLoopbackHeartbeatDeadline(t *testing.T) {
	fs, corpus := testbedFS(t, 6)
	m, err := NewMaster(fs, MasterOptions{
		// ~2 s of silence. Generous because a 1-CPU runner under -race can
		// starve every heartbeat goroutine for hundreds of milliseconds —
		// still far below the victim's 60 s drag, so the run cannot finish
		// before detection fires.
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         engineOpts(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const victim topology.NodeID = 7
	var victimWorker *Worker
	for i := 0; i < 12; i++ {
		opts := WorkerOptions{MasterAddr: m.Addr()}
		if topology.NodeID(i) == victim {
			opts.Drag = 60 * time.Second // never answers in time
		}
		w, err := StartWorker(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		// Sequential starts get node IDs in order; the drag must really
		// be on the victim.
		if w.Node() != topology.NodeID(i) {
			t.Fatalf("worker %d assigned node %d", i, w.Node())
		}
		if w.Node() == victim {
			victimWorker = w
		}
	}
	if victimWorker == nil {
		t.Fatalf("no worker took node %d", victim)
	}
	victimWorker.StopHeartbeats()

	rep, err := m.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	foundVictim := false
	for _, id := range rep.Failed {
		if id == victim {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Fatalf("silent node %d not declared dead (failed: %v)", victim, rep.Failed)
	}
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatal("output wrong after heartbeat-deadline failure")
	}
}

// multiSink fans one stream out to several sinks.
type multiSink []trace.Sink

func (m multiSink) Emit(e trace.Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
