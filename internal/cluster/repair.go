// The wire half of the background healer: the master plans repairs
// from its DFS metadata, but the rebuilt bytes come from the workers —
// the destination node's worker fetches the source blocks from its
// peers and runs the real Reed-Solomon decode, exactly as a degraded
// read does. The master then re-runs the reconstruction through the
// same dfs.RepairBlock path the in-process engine uses, which verifies
// against ground truth and enforces the double-write guard before the
// placement moves.

package cluster

import (
	"fmt"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/topology"
)

// ScanLostBlocks implements runtime.RepairBackend via the master's DFS.
func (b *clusterBackend) ScanLostBlocks(failed []topology.NodeID) ([]repair.StripePlan, error) {
	return b.m.fs.LostBlocks(failed)
}

// PlanStripeRepair implements runtime.RepairBackend: a launch-time
// re-plan from the master's live placement.
func (b *clusterBackend) PlanStripeRepair(key repair.Key) (repair.StripePlan, error) {
	return b.m.fs.PlanStripeRepair(key)
}

// CommitRepair implements runtime.RepairBackend: the destination's
// worker rebuilds the block for real over the wire, then the master
// verifies and commits the placement move. A dead destination or source
// surfaces as *runtime.DeadNodeError (via callWorker's mapping), which
// feeds the runtime's failure recovery; the repair is then re-queued.
// Like the in-process engines, it reports the foreground tasks whose
// input block came back so the runtime can de-degrade them.
func (b *clusterBackend) CommitRepair(key repair.Key, bp repair.BlockPlan) ([]runtime.RepairedTask, error) {
	req := &repairReq{File: key.File, Stripe: key.Stripe, Index: bp.Index}
	for _, src := range bp.Sources {
		req.Fetch = append(req.Fetch, fetchSpec{
			Node:   int(src.Node),
			Addr:   b.m.workerAddr(src.Node),
			Stripe: key.Stripe,
			Index:  src.Index,
		})
	}
	var resp repairResp
	if err := b.m.callWorker(bp.Dest, "repair-block", req, &resp); err != nil {
		return nil, err
	}
	block := erasure.BlockID{Stripe: key.Stripe, Index: bp.Index}
	if _, err := b.m.fs.RepairBlock(key.File, block, bp.Dest, bp.Sources); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var refs []runtime.RepairedTask
	for j := range b.jobs {
		if b.jobs[j].Input != key.File {
			continue
		}
		for t, tb := range b.blocks[j] {
			if tb == block {
				// Keep the cached holder in step with the placement, so a
				// later non-degraded read plans its fetch from the rebuilt
				// copy, not the dead node.
				b.holders[j][t] = bp.Dest
				refs = append(refs, runtime.RepairedTask{Job: j, Task: t})
			}
		}
	}
	return refs, nil
}

// RepairBlockBytes implements runtime.RepairBackend.
func (b *clusterBackend) RepairBlockBytes() float64 { return float64(b.m.fs.BlockSize()) }
