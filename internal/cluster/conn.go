package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

var (
	// errConnClosed fails calls whose connection died first.
	errConnClosed = errors.New("cluster: connection closed")
	// errRPCTimeout fails calls that outlived their deadline.
	errRPCTimeout = errors.New("cluster: rpc timed out")
)

// remoteError is a failure string reported by the far side of an RPC,
// with the node IDs it implicates (empty for plain application errors).
type remoteError struct {
	method string
	msg    string
	dead   []int
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("cluster: %s: %s", e.method, e.msg)
}

// rpcConn multiplexes one persistent connection: concurrent outgoing
// calls (matched to responses by sequence number), incoming requests
// (served on their own goroutines via serve), and one-way frames such as
// heartbeats and trace events (routed to notify). Both directions share
// the connection, so a worker can serve run-map while its heartbeats
// keep flowing.
type rpcConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex // serializes writeFrame on bw
	bw  *bufio.Writer

	// serve handles an incoming request frame; nil rejects all requests.
	// It runs on a fresh goroutine per request. A nil response with nil
	// error sends an empty ack.
	serve func(method string, body json.RawMessage) (any, error)
	// notify receives non-RPC frames (hb, event); may be nil. It runs on
	// the reader goroutine, so it must not block.
	notify func(f *frame)
	// onClose runs once when the connection dies, after pending calls
	// fail; may be nil.
	onClose func(err error)

	mu      sync.Mutex
	pending map[uint64]chan *frame
	nextSeq uint64
	closed  bool
	err     error
	done    chan struct{}
}

func newRPCConn(c net.Conn) *rpcConn {
	return &rpcConn{
		c:       c,
		br:      bufio.NewReader(c),
		bw:      bufio.NewWriter(c),
		pending: make(map[uint64]chan *frame),
		done:    make(chan struct{}),
	}
}

// start launches the reader loop. Set serve/notify/onClose first.
func (rc *rpcConn) start() {
	go rc.readLoop()
}

func (rc *rpcConn) readLoop() {
	for {
		f := new(frame)
		if err := readFrame(rc.br, f); err != nil {
			rc.close(err)
			return
		}
		switch f.Kind {
		case "resp":
			rc.mu.Lock()
			ch := rc.pending[f.Seq]
			delete(rc.pending, f.Seq)
			rc.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		case "req":
			go rc.serveReq(f)
		default:
			if rc.notify != nil {
				rc.notify(f)
			}
		}
	}
}

// serveReq runs one incoming request through the serve handler and
// writes the response, copying implicated peers into the Dead field.
func (rc *rpcConn) serveReq(f *frame) {
	resp := &frame{Kind: "resp", Seq: f.Seq}
	if rc.serve == nil {
		resp.Error = "no request handler"
	} else if out, err := rc.serve(f.Method, f.Body); err != nil {
		resp.Error = err.Error()
		var dp *deadPeersError
		if errors.As(err, &dp) {
			resp.Dead = dp.peers
		}
	} else if out != nil {
		b, merr := json.Marshal(out)
		if merr != nil {
			resp.Error = fmt.Sprintf("encoding %s response: %v", f.Method, merr)
		} else {
			resp.Body = b
		}
	}
	if err := rc.send(resp); err != nil {
		rc.close(err)
	}
}

// send writes one frame, serialized against concurrent senders.
func (rc *rpcConn) send(f *frame) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	if err := writeFrame(rc.bw, f); err != nil {
		return err
	}
	return rc.bw.Flush()
}

// call performs one RPC: req is marshaled as the request body, the
// response body (if any) is unmarshaled into resp (may be nil). Returns
// *remoteError for far-side failures, errRPCTimeout or errConnClosed
// for transport ones.
func (rc *rpcConn) call(method string, req, resp any, timeout time.Duration) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", method, err)
	}

	ch := make(chan *frame, 1)
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return errConnClosed
	}
	rc.nextSeq++
	seq := rc.nextSeq
	rc.pending[seq] = ch
	rc.mu.Unlock()

	if err := rc.send(&frame{Kind: "req", Seq: seq, Method: method, Body: body}); err != nil {
		rc.mu.Lock()
		delete(rc.pending, seq)
		rc.mu.Unlock()
		rc.close(err)
		return errConnClosed
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f := <-ch:
		if f == nil {
			return errConnClosed // channel closed by teardown
		}
		if f.Error != "" {
			return &remoteError{method: method, msg: f.Error, dead: f.Dead}
		}
		if resp != nil && len(f.Body) > 0 {
			if err := json.Unmarshal(f.Body, resp); err != nil {
				return fmt.Errorf("cluster: decoding %s response: %w", method, err)
			}
		}
		return nil
	case <-timer.C:
		rc.mu.Lock()
		delete(rc.pending, seq)
		rc.mu.Unlock()
		return fmt.Errorf("%w: %s after %v", errRPCTimeout, method, timeout)
	case <-rc.done:
		return errConnClosed
	}
}

// close tears the connection down once: pending calls fail, the
// underlying conn is closed, and onClose fires.
func (rc *rpcConn) close(err error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return
	}
	rc.closed = true
	rc.err = err
	pending := rc.pending
	rc.pending = make(map[uint64]chan *frame)
	close(rc.done)
	rc.mu.Unlock()

	rc.c.Close() // best-effort: the peer may have closed first
	for _, ch := range pending {
		close(ch)
	}
	if rc.onClose != nil {
		rc.onClose(err)
	}
}

// wait returns a channel closed when the connection dies.
func (rc *rpcConn) wait() <-chan struct{} { return rc.done }
