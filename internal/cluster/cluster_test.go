package cluster

import (
	"context"
	"reflect"
	"strconv"
	"testing"
	"time"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

const testBlocks = 60

// testbedFS builds the scaled testbed the in-process engine tests use:
// 12 slaves in 3 racks, (12,10) code, 64 KB blocks, round-robin
// placement, block-aligned corpus.
func testbedFS(t *testing.T, seed int64) (*dfs.FS, []byte) {
	t.Helper()
	clu := topology.MustNew(topology.Config{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	fs, err := dfs.New(clu, erasure.MustNew(12, 10), minimr.TestbedBlockSize,
		placement.RoundRobin{}, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(testBlocks, minimr.TestbedBlockSize, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	return fs, corpus
}

func engineOpts(sink trace.Sink) minimr.Options {
	return minimr.Options{
		Scheduler:           sched.KindLF,
		RackBps:             minimr.TestbedRackBps,
		OutOfBandHeartbeats: true,
		Seed:                1,
		Trace:               sink,
	}
}

func wantCounts(counts map[string]int) map[string]string {
	out := make(map[string]string, len(counts))
	for k, v := range counts {
		out[k] = strconv.Itoa(v)
	}
	return out
}

// TestLoopbackWordCountMatchesInProcess is the end-to-end equivalence
// claim: a WordCount over the (12,10)-coded DFS with one failed node,
// executed across real TCP workers, produces byte-identical output to
// the in-process engine on the same DFS contents — and since both draw
// their degraded-read sources from the same seeded RNG, the identical
// virtual schedule too.
func TestLoopbackWordCountMatchesInProcess(t *testing.T) {
	fs, corpus := testbedFS(t, 2)
	fs.Cluster().FailNode(3)
	mem := &trace.Memory{}
	l, err := StartLocal(fs, MasterOptions{
		// Generous real-failure deadline: nothing dies in this test, and
		// a 1-CPU CI runner can stall the whole process for a while.
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         engineOpts(mem),
	}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rep, err := l.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth and in-process reference over identical DFS contents.
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatalf("cluster output diverges from ground truth (%d vs %d keys)",
			len(rep.Outputs[0]), len(want))
	}
	refFS, _ := testbedFS(t, 2)
	refFS.Cluster().FailNode(3)
	ref, err := minimr.Run(refFS, engineOpts(nil), []minimr.Job{minimr.WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outputs[0], ref.Outputs[0]) {
		t.Fatal("cluster output diverges from the in-process engine")
	}
	if rep.Makespan != ref.Makespan {
		t.Fatalf("virtual schedules diverge: cluster makespan %v, in-process %v", rep.Makespan, ref.Makespan)
	}
	if rep.BytesMoved != ref.BytesMoved {
		t.Fatalf("virtual network volume diverges: cluster %v, in-process %v", rep.BytesMoved, ref.BytesMoved)
	}
	deg := rep.Jobs[0].CountByClass()[sched.ClassDegraded]
	if deg == 0 {
		t.Fatal("no degraded tasks despite the failed node")
	}

	// The merged trace stream (virtual events interleaved with the
	// workers' wire events) rebuilds the same result.
	events := mem.Events()
	res := runtime.BuildResult(events)
	if res.Scheduler != rep.Scheduler {
		t.Fatalf("rebuilt scheduler %q != %q", res.Scheduler, rep.Scheduler)
	}
	if res.Makespan != rep.Makespan {
		t.Fatalf("rebuilt makespan %v != %v", res.Makespan, rep.Makespan)
	}
	if res.BytesMoved != rep.BytesMoved {
		t.Fatalf("rebuilt bytes moved %v != %v", res.BytesMoved, rep.BytesMoved)
	}
	if len(res.Jobs) != 1 || res.Jobs[0].Runtime() != rep.Jobs[0].Runtime() {
		t.Fatal("rebuilt job results diverge from the report")
	}

	// The wire events themselves must be present: 11 workers joined, and
	// every map task really ran on a worker.
	byType := make(map[trace.Type]int)
	for _, e := range events {
		byType[e.Type]++
	}
	if byType[trace.EvWorkerJoin] != 11 {
		t.Fatalf("worker-join events = %d, want 11", byType[trace.EvWorkerJoin])
	}
	if byType[trace.EvWireMap] != testBlocks {
		t.Fatalf("wire-map events = %d, want %d", byType[trace.EvWireMap], testBlocks)
	}
	if byType[trace.EvWireReduce] != 8 {
		t.Fatalf("wire-reduce events = %d, want 8", byType[trace.EvWireReduce])
	}
	if byType[trace.EvWireFetch] == 0 || byType[trace.EvWireShuffle] == 0 {
		t.Fatal("no wire fetch/shuffle events recorded")
	}
}

// TestLoopbackHedgedWordCountMatchesInProcess pins the hedged fan-in on
// the real TCP backend: with one failed node and an eager spare (Δ=1),
// every degraded map races k+1 peer fetches, the worker decodes from the
// first k and really cancels the loser's connection — yet the output
// stays byte-identical to ground truth (any k shards reconstruct the
// same bytes) and the virtual schedule matches the in-process engine's
// hedged run exactly.
func TestLoopbackHedgedWordCountMatchesInProcess(t *testing.T) {
	fs, corpus := testbedFS(t, 2)
	fs.Cluster().FailNode(3)
	mem := &trace.Memory{}
	opts := engineOpts(mem)
	opts.Hedge = runtime.HedgePolicy{Extra: 1}
	l, err := StartLocal(fs, MasterOptions{
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         opts,
	}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rep, err := l.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatalf("hedged cluster output diverges from ground truth (%d vs %d keys)",
			len(rep.Outputs[0]), len(want))
	}

	refFS, _ := testbedFS(t, 2)
	refFS.Cluster().FailNode(3)
	refOpts := engineOpts(nil)
	refOpts.Hedge = runtime.HedgePolicy{Extra: 1}
	ref, err := minimr.Run(refFS, refOpts, []minimr.Job{minimr.WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outputs[0], ref.Outputs[0]) {
		t.Fatal("hedged cluster output diverges from the in-process engine")
	}
	if rep.Makespan != ref.Makespan || rep.BytesMoved != ref.BytesMoved || rep.WastedBytes != ref.WastedBytes {
		t.Fatalf("hedged virtual schedules diverge: cluster (%v, %v, %v), in-process (%v, %v, %v)",
			rep.Makespan, rep.BytesMoved, rep.WastedBytes,
			ref.Makespan, ref.BytesMoved, ref.WastedBytes)
	}

	// The hedged fan-ins recorded per-read latency distributions: every
	// degraded task holds exactly k winning flow latencies.
	deg := 0
	for _, task := range rep.Jobs[0].Tasks {
		if task.Class != sched.ClassDegraded {
			continue
		}
		deg++
		if len(task.FlowLatencies) != 10 {
			t.Fatalf("degraded task %d recorded %d flow latencies, want k=10",
				task.Task, len(task.FlowLatencies))
		}
	}
	if deg == 0 {
		t.Fatal("no degraded tasks despite the failed node")
	}
	q := rep.Jobs[0].FlowLatencyQuantiles(0.5, 0.99)
	if len(q) != 2 || q[0] <= 0 || q[1] < q[0] {
		t.Fatalf("implausible flow-latency quantiles %v", q)
	}

	// The merged trace stream carries the flow-latency events and
	// rebuilds the same waste accounting.
	events := mem.Events()
	lat := 0
	for _, e := range events {
		if e.Type == trace.EvFlowLatency {
			lat++
		}
	}
	// k won + 1 lost per degraded fan-in.
	if lat != deg*11 {
		t.Fatalf("flow-latency events = %d, want %d (11 per degraded read)", lat, deg*11)
	}
	res := runtime.BuildResult(events)
	if res.WastedBytes != rep.WastedBytes {
		t.Fatalf("rebuilt wasted bytes %v != %v", res.WastedBytes, rep.WastedBytes)
	}
}

// TestLoopbackGrepAndLineCount exercises the other named workloads over
// the wire, including a map-only grep.
func TestLoopbackGrepAndLineCount(t *testing.T) {
	fs, corpus := testbedFS(t, 3)
	l, err := StartLocal(fs, MasterOptions{
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         engineOpts(nil),
	}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rep, err := l.Run(context.Background(), []JobSpec{
		{Kind: "grep", Input: "input.txt", Word: "lorem", NumReducers: 4},
		{Kind: "linecount", Input: "input.txt", NumReducers: 2, SubmitAt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantGrep := wantCounts(workload.GrepLines(corpus, "lorem"))
	if !reflect.DeepEqual(rep.Outputs[0], wantGrep) {
		t.Fatal("grep output diverges from ground truth")
	}
	wantLines := wantCounts(workload.CountLines(corpus))
	if !reflect.DeepEqual(rep.Outputs[1], wantLines) {
		t.Fatal("linecount output diverges from ground truth")
	}
}

// TestMasterRejectsInvalidJobs pins the satellite requirement: the
// master reuses the engine's typed validation at submission time, before
// any worker sees the job.
func TestMasterRejectsInvalidJobs(t *testing.T) {
	fs, _ := testbedFS(t, 4)
	l, err := StartLocal(fs, MasterOptions{
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  20,
		Engine:         engineOpts(nil),
	}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := l.Run(context.Background(), nil); err == nil {
		t.Fatal("master accepted an empty job list")
	}
	if _, err := l.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: -1},
	}); err == nil {
		t.Fatal("master accepted a negative reducer count")
	}
	if _, err := l.Run(context.Background(), []JobSpec{
		{Kind: "grep", Input: "input.txt", NumReducers: 1},
	}); err == nil {
		t.Fatal("master accepted a grep job without a word")
	}
	if _, err := l.Run(context.Background(), []JobSpec{
		{Kind: "wordcount", Input: "input.txt", NumReducers: 2, SubmitAt: 5},
		{Kind: "wordcount", Input: "input.txt", NumReducers: 2, SubmitAt: 1},
	}); err == nil {
		t.Fatal("master accepted jobs with decreasing submit times")
	}

	// A well-formed job still runs after the rejections.
	rep, err := l.Run(context.Background(), []JobSpec{
		{Kind: "linecount", Input: "input.txt", NumReducers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs[0]) == 0 {
		t.Fatal("no output after rejected submissions")
	}
}
