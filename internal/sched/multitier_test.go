package sched

import (
	"testing"

	"degradedfirst/internal/topology"
)

// fatTree12 builds the 12-node 2x2x3 fat-tree cluster (nodes 0-2 edge
// 0, 3-5 edge 1, 6-8 edge 2, 9-11 edge 3; pods {0,1} and {2,3}).
func fatTree12(t *testing.T) *topology.Cluster {
	t.Helper()
	spec, err := topology.FatTree(topology.FatTreeConfig{
		Pods: 2, EdgesPerPod: 2, NodesPerEdge: 3, NodeBps: 100e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := topology.NewFromSpec(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPopRemoteDistanceAware checks that on a multi-tier fabric
// popRemote prefers the nearest remote holder — same pod before a
// core crossing — while task order breaks distance ties.
func TestPopRemoteDistanceAware(t *testing.T) {
	c := fatTree12(t)
	// Requesting node 0 (edge 0, pod 0). Task 0's holder is in the other
	// pod (distance 7), task 1's in the neighboring edge of pod 0
	// (distance 4).
	j := NewJob(0, []TaskSpec{
		{Holder: 9},
		{Holder: 3},
	})
	if got := j.popRemote(c, 0); got == nil || got.Index != 1 {
		t.Fatalf("popRemote picked %+v, want the same-pod task 1", got)
	}
	if got := j.popRemote(c, 0); got == nil || got.Index != 0 {
		t.Fatalf("popRemote picked %+v, want the remaining cross-pod task 0", got)
	}
	if j.popRemote(c, 0) != nil {
		t.Fatal("no remote tasks should remain")
	}

	// Equal distances fall back to task order: holders 4 and 3 are both
	// one edge over from node 0.
	j = NewJob(1, []TaskSpec{
		{Holder: 4},
		{Holder: 3},
	})
	if got := j.popRemote(c, 0); got == nil || got.Index != 0 {
		t.Fatalf("tie-break picked %+v, want task 0", got)
	}
}

// TestPopRemoteTwoLevelUnchanged pins the two-level degenerate case:
// a single remote distance, so the historical first-pending scan order
// must be preserved exactly.
func TestPopRemoteTwoLevelUnchanged(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 9, Racks: 3, MapSlotsPerNode: 1})
	// From node 0 (rack 0): tasks 0 and 2 are remote, task 1 rack-local.
	j := NewJob(0, []TaskSpec{
		{Holder: 8},
		{Holder: 1},
		{Holder: 3},
	})
	if got := j.popRemote(c, 0); got == nil || got.Index != 0 {
		t.Fatalf("two-level popRemote picked %+v, want first pending remote (task 0)", got)
	}
	if got := j.popRemote(c, 0); got == nil || got.Index != 2 {
		t.Fatalf("two-level popRemote picked %+v, want task 2", got)
	}
}
