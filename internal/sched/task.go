// Package sched implements the paper's three map-task scheduling
// algorithms as pure decision logic, decoupled from any execution engine:
//
//   - LocalityFirst (Algorithm 1): Hadoop's default — local tasks, then
//     remote tasks, then degraded tasks.
//   - BasicDegradedFirst (Algorithm 2): launches degraded tasks early,
//     paced so the fraction of launched degraded tasks never exceeds the
//     fraction of launched map tasks (m/M >= m_d/M_d), at most one
//     degraded task per heartbeat.
//   - EnhancedDegradedFirst (Algorithm 3): BDF plus locality preservation
//     (AssignToSlave) and rack awareness (AssignToRack).
//
// Both the discrete-event simulator (internal/mapred) and the
// real-execution engine (internal/minimr) drive these schedulers through
// the same Assign entry point, mirroring how the paper runs the same
// algorithm in simulation and on the Hadoop testbed.
package sched

import (
	"fmt"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/topology"
)

// Class is the scheduling class of an assignment, from the point of view
// of the node receiving the task.
type Class int

const (
	// ClassNodeLocal: input block stored on the assigned node.
	ClassNodeLocal Class = iota + 1
	// ClassRackLocal: input block stored in the assigned node's rack.
	ClassRackLocal
	// ClassRemote: input block stored in a different rack.
	ClassRemote
	// ClassDegraded: input block lost; requires a degraded read.
	ClassDegraded
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassNodeLocal:
		return "node-local"
	case ClassRackLocal:
		return "rack-local"
	case ClassRemote:
		return "remote"
	case ClassDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// IsLocal reports whether the class counts as "local" in the paper's sense.
func (c Class) IsLocal() bool { return c == ClassNodeLocal || c == ClassRackLocal }

// ParseClass maps a Class.String() name back to its Class, for consumers
// of recorded traces.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "node-local":
		return ClassNodeLocal, true
	case "rack-local":
		return ClassRackLocal, true
	case "remote":
		return ClassRemote, true
	case "degraded":
		return ClassDegraded, true
	}
	return 0, false
}

// TaskSpec describes one map task's input before scheduling.
type TaskSpec struct {
	// Block is the input block.
	Block erasure.BlockID
	// Holder is the node storing the block.
	Holder topology.NodeID
	// Lost marks the block unavailable (holder failed): the task is a
	// degraded task.
	Lost bool
}

// Task is one map task tracked by a Job.
type Task struct {
	// Index is the task's position within its job (dense from 0).
	Index int
	// Job is the owning job's ID.
	Job int
	TaskSpec

	assigned bool
}

// Assigned reports whether the task has been handed to a node.
func (t *Task) Assigned() bool { return t.assigned }

// Job tracks the unassigned map tasks of one MapReduce job, with the
// counters the degraded-first pacing rule needs: M (total map tasks),
// Md (total degraded tasks), m (launched map tasks), md (launched
// degraded tasks).
type Job struct {
	// ID is the job identifier (FIFO order = submission order).
	ID int

	tasks    []*Task
	byHolder map[topology.NodeID][]*Task // pending non-degraded, by holder
	degraded []*Task                     // pending degraded, task order

	total         int // M
	totalDegraded int // Md
	launched      int // m
	launchedDeg   int // md
}

// NewJob builds a job from task specs. The order of specs fixes task
// indices and the FIFO order within each class.
func NewJob(id int, specs []TaskSpec) *Job {
	j := &Job{
		ID:       id,
		byHolder: make(map[topology.NodeID][]*Task),
	}
	for i, s := range specs {
		t := &Task{Index: i, Job: id, TaskSpec: s}
		j.tasks = append(j.tasks, t)
		if s.Lost {
			j.degraded = append(j.degraded, t)
			j.totalDegraded++
		} else {
			j.byHolder[s.Holder] = append(j.byHolder[s.Holder], t)
		}
		j.total++
	}
	return j
}

// Totals returns (M, Md).
func (j *Job) Totals() (m, md int) { return j.total, j.totalDegraded }

// Launched returns (m, md).
func (j *Job) Launched() (m, md int) { return j.launched, j.launchedDeg }

// Done reports whether every map task has been assigned.
func (j *Job) Done() bool { return j.launched == j.total }

// PendingDegraded returns the number of unassigned degraded tasks.
func (j *Job) PendingDegraded() int { return j.totalDegraded - j.launchedDeg }

// Tasks returns all tasks in index order. The slice is shared; do not
// modify.
func (j *Job) Tasks() []*Task { return j.tasks }

// pendingLocalCount returns the number of unassigned node-local tasks for
// node id (used by EDF's AssignToSlave estimate).
func (j *Job) pendingLocalCount(id topology.NodeID) int {
	cnt := 0
	for _, t := range j.byHolder[id] {
		if !t.assigned {
			cnt++
		}
	}
	return cnt
}

// popNodeLocal takes the next unassigned task whose holder is exactly s.
func (j *Job) popNodeLocal(s topology.NodeID) *Task {
	return j.popFromHolder(s)
}

// popRackLocal takes the next unassigned task whose holder is an alive node
// in the given rack other than s (scanning nodes in ID order for
// determinism).
func (j *Job) popRackLocal(c *topology.Cluster, s topology.NodeID) *Task {
	for _, id := range c.RackNodes(c.RackOf(s)) {
		if id == s {
			continue
		}
		if t := j.popFromHolder(id); t != nil {
			return t
		}
	}
	return nil
}

// popRemote takes the next unassigned task whose holder is in a different
// rack from s. On multi-tier fabrics it is distance-aware: among remote
// holders it prefers the one with the smallest hop distance to s (same
// pod before core-crossing), breaking ties by task order. Two-level
// clusters have a single remote distance, so the pick degenerates to the
// historical first-pending-remote scan and stays bit-identical.
func (j *Job) popRemote(c *topology.Cluster, s topology.NodeID) *Task {
	myRack := c.RackOf(s)
	if c.NumTiers() == 1 {
		for _, t := range j.tasks {
			if t.assigned || t.Lost {
				continue
			}
			if c.RackOf(t.Holder) != myRack {
				j.take(t)
				return t
			}
		}
		return nil
	}
	var best *Task
	bestDist := 0
	for _, t := range j.tasks {
		if t.assigned || t.Lost || c.RackOf(t.Holder) == myRack {
			continue
		}
		if d := c.HopDistance(s, t.Holder); best == nil || d < bestDist {
			best, bestDist = t, d
			if d == 4 {
				break // one tier up is the remote minimum; no closer task exists
			}
		}
	}
	if best != nil {
		j.take(best)
	}
	return best
}

// popDegraded takes the next unassigned degraded task.
func (j *Job) popDegraded() *Task {
	for _, t := range j.degraded {
		if !t.assigned {
			j.take(t)
			return t
		}
	}
	return nil
}

func (j *Job) popFromHolder(id topology.NodeID) *Task {
	for _, t := range j.byHolder[id] {
		if !t.assigned {
			j.take(t)
			return t
		}
	}
	return nil
}

func (j *Job) take(t *Task) {
	if t.assigned {
		panic(fmt.Sprintf("sched: task %d of job %d assigned twice", t.Index, t.Job))
	}
	t.assigned = true
	j.launched++
	if t.Lost {
		j.launchedDeg++
	}
}

// MarkHolderLost reclassifies every *pending* task whose input lives on
// the failed holder as a degraded task, returning how many tasks changed.
// Used when a node fails mid-job (already-assigned tasks are handled by
// the framework via Requeue).
func (j *Job) MarkHolderLost(holder topology.NodeID) int {
	changed := 0
	kept := j.byHolder[holder][:0]
	for _, t := range j.byHolder[holder] {
		if t.assigned {
			kept = append(kept, t)
			continue
		}
		t.Lost = true
		j.degraded = append(j.degraded, t)
		j.totalDegraded++
		changed++
	}
	if len(kept) == 0 {
		delete(j.byHolder, holder)
	} else {
		j.byHolder[holder] = kept
	}
	return changed
}

// Requeue returns an assigned task to the pending pool — used when its
// executing node fails mid-task (Hadoop re-runs such tasks elsewhere).
// lost reports whether the task's input block is now unavailable; the
// task's classification and the pacing counters are adjusted accordingly.
func (j *Job) Requeue(t *Task, lost bool) {
	if !t.assigned {
		panic(fmt.Sprintf("sched: requeue of unassigned task %d of job %d", t.Index, t.Job))
	}
	j.launched--
	if t.Lost {
		j.launchedDeg--
	}
	t.assigned = false
	switch {
	case t.Lost == lost:
		// Classification unchanged; the task is still in its pool.
	case lost:
		// Was normal, now degraded: move pools and grow Md.
		j.removeFromHolderPool(t)
		t.Lost = true
		j.degraded = append(j.degraded, t)
		j.totalDegraded++
	default:
		// Was degraded, input recovered: move back to its holder pool.
		j.removeFromDegradedPool(t)
		t.Lost = false
		j.byHolder[t.Holder] = append(j.byHolder[t.Holder], t)
		j.totalDegraded--
	}
}

// Recover returns a *pending* degraded task to the normal pool with a
// new holder: the background repair subsystem rebuilt its input block
// there, so the task no longer needs a degraded read. Reports whether
// the task changed; assigned or non-degraded tasks are left alone (a
// running degraded read keeps its sources, and Requeue handles its
// reclassification if it is ever aborted).
func (j *Job) Recover(t *Task, holder topology.NodeID) bool {
	if t.assigned || !t.Lost {
		return false
	}
	j.removeFromDegradedPool(t)
	t.Lost = false
	t.Holder = holder
	j.byHolder[holder] = append(j.byHolder[holder], t)
	j.totalDegraded--
	return true
}

func (j *Job) removeFromHolderPool(t *Task) {
	pool := j.byHolder[t.Holder]
	for i, p := range pool {
		if p == t {
			j.byHolder[t.Holder] = append(pool[:i], pool[i+1:]...)
			return
		}
	}
}

func (j *Job) removeFromDegradedPool(t *Task) {
	for i, p := range j.degraded {
		if p == t {
			j.degraded = append(j.degraded[:i], j.degraded[i+1:]...)
			return
		}
	}
}
