package sched

import (
	"fmt"

	"degradedfirst/internal/topology"
)

// Heartbeat is one slave's request for work, carrying the information a
// real Hadoop heartbeat would.
type Heartbeat struct {
	// Now is the current (virtual) time in seconds.
	Now float64
	// Node is the heartbeating slave.
	Node topology.NodeID
	// FreeMapSlots is how many map slots the slave has available.
	FreeMapSlots int
}

// Env is the cluster-wide state the schedulers consult. The driving
// framework (simulator or minimr) keeps it current between heartbeats.
type Env struct {
	// Cluster provides topology and failure state.
	Cluster *topology.Cluster
	// Jobs are the running jobs in FIFO submission order. Finished jobs
	// should be removed by the framework.
	Jobs []*Job
	// PerTaskTime estimates the processing time of one map task on the
	// given node (seconds), reflecting heterogeneous processing power.
	// Used by EDF's locality-preservation heuristic. May be nil, in which
	// case a uniform estimate of 1 is used.
	PerTaskTime func(topology.NodeID) float64
	// DegradedReadTime is the expected time of one degraded read,
	// (R-1)kS/(RW) in the paper's notation. Used as EDF's rack-awareness
	// threshold.
	DegradedReadTime float64
}

func (e *Env) perTaskTime(id topology.NodeID) float64 {
	if e.PerTaskTime == nil {
		return 1
	}
	return e.PerTaskTime(id)
}

// Assignment is one scheduling decision.
type Assignment struct {
	Task  *Task
	Class Class
}

// Scheduler assigns map tasks in response to slave heartbeats.
type Scheduler interface {
	// Name identifies the algorithm ("LF", "BDF", "EDF").
	Name() string
	// Assign fills the slave's free map slots, mutating the jobs' pending
	// sets, and returns the assignments in launch order.
	Assign(env *Env, hb Heartbeat) []Assignment
}

// classify determines the class of task t when run on node s.
func classify(c *topology.Cluster, t *Task, s topology.NodeID) Class {
	if t.Lost {
		return ClassDegraded
	}
	switch c.LocalityOf(s, t.Holder) {
	case topology.NodeLocal:
		return ClassNodeLocal
	case topology.RackLocal:
		return ClassRackLocal
	default:
		return ClassRemote
	}
}

// popLocalOrRemote implements the shared tail of all three algorithms:
// prefer a node-local task, then rack-local, then remote, for job j on
// slave s. Returns nil when the job has no such pending task.
func popLocalOrRemote(env *Env, j *Job, s topology.NodeID) *Task {
	if t := j.popNodeLocal(s); t != nil {
		return t
	}
	if t := j.popRackLocal(env.Cluster, s); t != nil {
		return t
	}
	return j.popRemote(env.Cluster, s)
}

// LocalityFirst is Hadoop's default scheduling (Algorithm 1): for every
// free slot, assign a local task if one exists, else a remote task, else a
// degraded task.
type LocalityFirst struct{}

// Name implements Scheduler.
func (LocalityFirst) Name() string { return "LF" }

// Assign implements Scheduler.
func (LocalityFirst) Assign(env *Env, hb Heartbeat) []Assignment {
	var out []Assignment
	free := hb.FreeMapSlots
	for _, j := range env.Jobs {
		for free > 0 {
			t := popLocalOrRemote(env, j, hb.Node)
			if t == nil {
				t = j.popDegraded()
			}
			if t == nil {
				break // job exhausted; next job
			}
			out = append(out, Assignment{Task: t, Class: classify(env.Cluster, t, hb.Node)})
			free--
		}
		if free == 0 {
			break
		}
	}
	return out
}

// BasicDegradedFirst is Algorithm 2: before the per-slot local/remote
// loop, at most one degraded task is assigned per heartbeat, gated by the
// pacing rule m/M >= m_d/M_d, which spreads degraded launches evenly over
// the map phase.
type BasicDegradedFirst struct{}

// Name implements Scheduler.
func (BasicDegradedFirst) Name() string { return "BDF" }

// Assign implements Scheduler.
func (BasicDegradedFirst) Assign(env *Env, hb Heartbeat) []Assignment {
	return degradedFirstAssign(env, hb, nil)
}

// gates holds EDF's admission checks; nil gates (BDF) always admit.
type gates struct {
	assignToSlave func(s topology.NodeID) bool
	assignToRack  func(r topology.RackID) bool
	onDegraded    func(r topology.RackID, now float64)
}

// degradedFirstAssign is the shared body of Algorithms 2 and 3.
func degradedFirstAssign(env *Env, hb Heartbeat, g *gates) []Assignment {
	var out []Assignment
	free := hb.FreeMapSlots
	degradedAssigned := false
	for _, j := range env.Jobs {
		// Degraded-first branch: at most one per heartbeat across jobs.
		if !degradedAssigned && free > 0 && j.PendingDegraded() > 0 {
			m, md := j.Launched()
			total, totalDeg := j.Totals()
			// Pacing: launch a degraded task only while the launched
			// fraction of degraded tasks trails the overall fraction.
			paced := float64(m)*float64(totalDeg) >= float64(md)*float64(total)
			admit := paced
			if admit && g != nil {
				admit = g.assignToSlave(hb.Node) && g.assignToRack(env.Cluster.RackOf(hb.Node))
			}
			if admit {
				if t := j.popDegraded(); t != nil {
					out = append(out, Assignment{Task: t, Class: ClassDegraded})
					free--
					degradedAssigned = true
					if g != nil {
						g.onDegraded(env.Cluster.RackOf(hb.Node), hb.Now)
					}
				}
			}
		}
		// Local/remote fill for the remaining slots (degraded tasks are
		// not assigned here — that is the point of the pacing).
		for free > 0 {
			t := popLocalOrRemote(env, j, hb.Node)
			if t == nil {
				break
			}
			out = append(out, Assignment{Task: t, Class: classify(env.Cluster, t, hb.Node)})
			free--
		}
		if free == 0 {
			break
		}
	}
	// End-game: when nothing but degraded tasks remain in all jobs, strict
	// one-per-heartbeat pacing still applies, but the pacing ratio is
	// guaranteed to admit (m includes all launched locals), so no deadlock.
	return out
}

// EnhancedDegradedFirst is Algorithm 3: BDF plus locality preservation and
// rack awareness. It is stateful (per-rack last-degraded-launch times), so
// construct one instance per run with NewEnhancedDegradedFirst.
type EnhancedDegradedFirst struct {
	// lastDegraded[r] is when a degraded task was last assigned to rack r;
	// -inf-like sentinel before any assignment.
	lastDegraded []float64
}

// NewEnhancedDegradedFirst returns an EDF scheduler for a cluster with the
// given number of racks.
func NewEnhancedDegradedFirst(numRacks int) *EnhancedDegradedFirst {
	last := make([]float64, numRacks)
	for i := range last {
		last[i] = -1e18 // effectively "long ago": every rack starts admissible
	}
	return &EnhancedDegradedFirst{lastDegraded: last}
}

// Name implements Scheduler.
func (e *EnhancedDegradedFirst) Name() string { return "EDF" }

// Assign implements Scheduler.
func (e *EnhancedDegradedFirst) Assign(env *Env, hb Heartbeat) []Assignment {
	g := &gates{
		assignToSlave: func(s topology.NodeID) bool { return e.assignToSlave(env, s) },
		assignToRack:  func(r topology.RackID) bool { return e.assignToRack(env, hb.Now, r) },
		onDegraded:    func(r topology.RackID, now float64) { e.lastDegraded[r] = now },
	}
	return degradedFirstAssign(env, hb, g)
}

// assignToSlave implements locality preservation: admit slave s only if
// its estimated pending local work t_s does not exceed the cluster average
// E[t_s]. (The paper's prose, Section IV-C; the transcribed pseudo-code
// inverts the comparison — see DESIGN.md "Pseudo-code discrepancy".)
// The estimate accounts for heterogeneous processing power via
// Env.PerTaskTime, so fast slaves absorb degraded tasks even with deeper
// local queues.
func (e *EnhancedDegradedFirst) assignToSlave(env *Env, s topology.NodeID) bool {
	alive := env.Cluster.AliveNodes()
	if len(alive) == 0 {
		return false
	}
	var ts, sum float64
	for _, id := range alive {
		pending := 0
		for _, j := range env.Jobs {
			pending += j.pendingLocalCount(id)
		}
		node := env.Cluster.Node(id)
		slots := node.MapSlots
		if slots <= 0 {
			slots = 1
		}
		est := float64(pending) * env.perTaskTime(id) / float64(slots)
		sum += est
		if id == s {
			ts = est
		}
	}
	mean := sum / float64(len(alive))
	return ts <= mean
}

// assignToRack implements rack awareness: refuse rack r when its last
// degraded launch is more recent than both the cross-rack average and the
// expected degraded-read duration (it is likely still downloading).
func (e *EnhancedDegradedFirst) assignToRack(env *Env, now float64, r topology.RackID) bool {
	tr := now - e.lastDegraded[r]
	var sum float64
	for i := range e.lastDegraded {
		d := now - e.lastDegraded[i]
		sum += d
	}
	mean := sum / float64(len(e.lastDegraded))
	threshold := env.DegradedReadTime
	bound := mean
	if threshold < bound {
		bound = threshold
	}
	return tr >= bound
}

// EagerDegradedFirst is an ablation of the pacing rule: it assigns
// degraded tasks before local tasks with no pacing and no one-per-
// heartbeat limit. It demonstrates why Algorithm 2's m/M >= m_d/M_d rule
// matters: eager launching recreates the degraded-read network competition
// at the *start* of the map phase instead of the end.
type EagerDegradedFirst struct{}

// Name implements Scheduler.
func (EagerDegradedFirst) Name() string { return "EagerDF" }

// Assign implements Scheduler.
func (EagerDegradedFirst) Assign(env *Env, hb Heartbeat) []Assignment {
	var out []Assignment
	free := hb.FreeMapSlots
	for _, j := range env.Jobs {
		for free > 0 {
			t := j.popDegraded()
			if t == nil {
				t = popLocalOrRemote(env, j, hb.Node)
			}
			if t == nil {
				break
			}
			out = append(out, Assignment{Task: t, Class: classify(env.Cluster, t, hb.Node)})
			free--
		}
		if free == 0 {
			break
		}
	}
	return out
}

// Verify interface compliance.
var (
	_ Scheduler = LocalityFirst{}
	_ Scheduler = BasicDegradedFirst{}
	_ Scheduler = (*EnhancedDegradedFirst)(nil)
	_ Scheduler = EagerDegradedFirst{}
)

// Kind selects one of the three algorithms by name; both execution engines
// (the discrete-event simulator and the real-execution minimr) construct
// their scheduler from a Kind.
type Kind int

const (
	// KindLF is locality-first (Algorithm 1).
	KindLF Kind = iota + 1
	// KindBDF is basic degraded-first (Algorithm 2).
	KindBDF
	// KindEDF is enhanced degraded-first (Algorithm 3).
	KindEDF
	// KindEagerDF is the unpaced all-degraded-first ablation.
	KindEagerDF
	// KindDelayLF is the delay-scheduling baseline (Zaharia et al. 2010).
	KindDelayLF
)

// String returns the scheduler name.
func (k Kind) String() string {
	switch k {
	case KindLF:
		return "LF"
	case KindBDF:
		return "BDF"
	case KindEDF:
		return "EDF"
	case KindEagerDF:
		return "EagerDF"
	case KindDelayLF:
		return "DelayLF"
	default:
		return fmt.Sprintf("scheduler(%d)", int(k))
	}
}

// New constructs a fresh scheduler instance for a run on a cluster with
// the given number of racks.
func (k Kind) New(numRacks int) (Scheduler, error) {
	switch k {
	case KindLF:
		return LocalityFirst{}, nil
	case KindBDF:
		return BasicDegradedFirst{}, nil
	case KindEDF:
		return NewEnhancedDegradedFirst(numRacks), nil
	case KindEagerDF:
		return EagerDegradedFirst{}, nil
	case KindDelayLF:
		// D tuned to a few heartbeat rounds, as in the delay-scheduling
		// paper's small-delay recommendation.
		return NewDelayScheduling(3 * numRacks), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler kind %d", int(k))
	}
}
