package sched

import (
	"testing"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/topology"
)

func TestDelaySchedulingWaitsForLocality(t *testing.T) {
	c := fourNodeCluster()
	// One pending task whose holder is node 3 (remote for node 0).
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 3}})
	env := envFor(c, j)
	d := NewDelayScheduling(2)
	if d.Name() != "DelayLF" {
		t.Fatal("name wrong")
	}

	// First two opportunities from node 0: skipped.
	for i := 0; i < 2; i++ {
		if got := d.Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1}); len(got) != 0 {
			t.Fatalf("opportunity %d: task launched early (%v)", i, got)
		}
	}
	// Third: patience exhausted, remote launch.
	got := d.Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassRemote {
		t.Fatalf("expected a remote launch, got %v", got)
	}
	if !j.Done() {
		t.Fatal("job should be drained")
	}
}

func TestDelaySchedulingTakesLocalImmediately(t *testing.T) {
	c := fourNodeCluster()
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0}})
	env := envFor(c, j)
	d := NewDelayScheduling(5)
	got := d.Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassNodeLocal {
		t.Fatalf("local task should launch immediately, got %v", got)
	}
}

func TestDelaySchedulingLocalLaunchResetsPatience(t *testing.T) {
	c := fourNodeCluster()
	j := NewJob(0, []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1},
		{Block: erasure.BlockID{Stripe: 1, Index: 0}, Holder: 3},
	})
	env := envFor(c, j)
	d := NewDelayScheduling(2)
	// Node 0: task for holder 1 is rack-local -> launches, resets skips.
	got := d.Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassRackLocal {
		t.Fatalf("expected rack-local, got %v", got)
	}
	// Remaining task (holder 3) is remote for node 0: two skips again.
	for i := 0; i < 2; i++ {
		if got := d.Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1}); len(got) != 0 {
			t.Fatalf("skip %d violated", i)
		}
	}
	if got := d.Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1}); len(got) != 1 {
		t.Fatal("remote should launch after patience")
	}
}

func TestDelaySchedulingDegradedLast(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(0)
	j := NewJob(0, []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0, Lost: true},
	})
	env := envFor(c, j)
	d := NewDelayScheduling(1)
	if got := d.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1}); len(got) != 0 {
		t.Fatal("degraded task launched before patience ran out")
	}
	got := d.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("expected degraded launch, got %v", got)
	}
}

func TestDelaySchedulingZeroDelayIsLFLike(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(0)
	specs := specsFig4(c)
	jd := NewJob(0, specs)
	jl := NewJob(0, specs)
	d := NewDelayScheduling(0)
	lf := LocalityFirst{}
	for round := 0; round < 50 && (!jd.Done() || !jl.Done()); round++ {
		for node := 1; node < 4; node++ {
			hb := Heartbeat{Node: topology.NodeID(node), FreeMapSlots: 1}
			a := d.Assign(&Env{Cluster: c, Jobs: []*Job{jd}}, hb)
			b := lf.Assign(&Env{Cluster: c, Jobs: []*Job{jl}}, hb)
			if len(a) != len(b) {
				t.Fatalf("round %d node %d: delay(0) diverged from LF (%v vs %v)", round, node, a, b)
			}
			for i := range a {
				if a[i].Task.Index != b[i].Task.Index {
					t.Fatalf("round %d: task order diverged", round)
				}
			}
		}
	}
	if !jd.Done() || !jl.Done() {
		t.Fatal("jobs not drained")
	}
}

func TestDelayKindRegistered(t *testing.T) {
	if KindDelayLF.String() != "DelayLF" {
		t.Fatal("kind string wrong")
	}
	s, err := KindDelayLF.New(4)
	if err != nil || s.Name() != "DelayLF" {
		t.Fatalf("KindDelayLF.New: %v %v", s, err)
	}
	if NewDelayScheduling(-1).maxSkips != 0 {
		t.Fatal("negative maxSkips must clamp to 0")
	}
}
