package sched

import (
	"testing"
	"testing/quick"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// fourNodeCluster builds the Figure 4 cluster: 4 nodes in 2 racks, one map
// slot each. Node 0 plays the failed "Node 1" of the figure.
func fourNodeCluster() *topology.Cluster {
	return topology.MustNew(topology.Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
}

// specsFig4 builds 12 map tasks, 3 per node, with node 0 failed so its 3
// tasks are degraded (the Figure 4 workload).
func specsFig4(c *topology.Cluster) []TaskSpec {
	var specs []TaskSpec
	for s := 0; s < 6; s++ {
		for i := 0; i < 2; i++ {
			holder := topology.NodeID((s*2 + i) % 4)
			specs = append(specs, TaskSpec{
				Block:  erasure.BlockID{Stripe: s, Index: i},
				Holder: holder,
				Lost:   !c.Alive(holder),
			})
		}
	}
	return specs
}

func envFor(c *topology.Cluster, jobs ...*Job) *Env {
	return &Env{Cluster: c, Jobs: jobs, DegradedReadTime: 10}
}

func TestClassString(t *testing.T) {
	for _, cl := range []Class{ClassNodeLocal, ClassRackLocal, ClassRemote, ClassDegraded, Class(9)} {
		if cl.String() == "" {
			t.Fatal("empty class string")
		}
	}
	if !ClassNodeLocal.IsLocal() || !ClassRackLocal.IsLocal() || ClassRemote.IsLocal() || ClassDegraded.IsLocal() {
		t.Fatal("IsLocal wrong")
	}
}

func TestNewJobCounters(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(0)
	j := NewJob(0, specsFig4(c))
	m, md := j.Totals()
	if m != 12 || md != 3 {
		t.Fatalf("totals = %d/%d, want 12/3", m, md)
	}
	lm, lmd := j.Launched()
	if lm != 0 || lmd != 0 || j.Done() || j.PendingDegraded() != 3 {
		t.Fatal("fresh job state wrong")
	}
	if len(j.Tasks()) != 12 {
		t.Fatal("Tasks() wrong")
	}
}

func TestLocalityFirstOrder(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(0)
	j := NewJob(0, specsFig4(c))
	env := envFor(c, j)
	lf := LocalityFirst{}

	// Node 1 asks for everything at once: expect its 3 node-local tasks,
	// then rack-local (node 0 is failed so none pending non-degraded
	// there), then remote (nodes 2, 3 holdings), then degraded.
	got := lf.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 12})
	if len(got) != 12 {
		t.Fatalf("assigned %d tasks, want 12", len(got))
	}
	wantClasses := []Class{
		ClassNodeLocal, ClassNodeLocal, ClassNodeLocal,
		ClassRemote, ClassRemote, ClassRemote, ClassRemote, ClassRemote, ClassRemote,
		ClassDegraded, ClassDegraded, ClassDegraded,
	}
	for i, a := range got {
		if a.Class != wantClasses[i] {
			t.Fatalf("assignment %d class = %v, want %v (seq: %v)", i, a.Class, wantClasses[i], classesOf(got))
		}
	}
	if !j.Done() {
		t.Fatal("job should be drained")
	}
}

func classesOf(as []Assignment) []Class {
	out := make([]Class, len(as))
	for i, a := range as {
		out[i] = a.Class
	}
	return out
}

func TestLocalityFirstPrefersRackLocalOverRemote(t *testing.T) {
	c := fourNodeCluster() // racks {0,1}, {2,3}
	specs := []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 3}, // remote for node 0
		{Block: erasure.BlockID{Stripe: 0, Index: 1}, Holder: 1}, // rack-local for node 0
	}
	j := NewJob(0, specs)
	got := LocalityFirst{}.Assign(envFor(c, j), Heartbeat{Node: 0, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassRackLocal || got[0].Task.Holder != 1 {
		t.Fatalf("got %+v, want the rack-local task", got)
	}
}

func TestBDFPacingFollowsFigure4(t *testing.T) {
	// Replay the heartbeat sequence of the Figure 4 walk-through and check
	// the degraded tasks are launched as the 1st, 5th and 9th map tasks.
	c := fourNodeCluster()
	c.FailNode(0)
	j := NewJob(0, specsFig4(c))
	env := envFor(c, j)
	bdf := BasicDegradedFirst{}

	// Heartbeats arrive one slot at a time in the order the master polls
	// slaves (nodes 1, 2, 3 round-robin), as in the example.
	var classSeq []Class
	for hbRound := 0; len(classSeq) < 12 && hbRound < 100; hbRound++ {
		for _, node := range []topology.NodeID{1, 2, 3} {
			got := bdf.Assign(env, Heartbeat{Node: node, FreeMapSlots: 1})
			for _, a := range got {
				classSeq = append(classSeq, a.Class)
			}
		}
	}
	if len(classSeq) != 12 {
		t.Fatalf("launched %d tasks, want 12 (%v)", len(classSeq), classSeq)
	}
	degradedPositions := []int{}
	for i, cl := range classSeq {
		if cl == ClassDegraded {
			degradedPositions = append(degradedPositions, i+1) // 1-based
		}
	}
	if len(degradedPositions) != 3 || degradedPositions[0] != 1 || degradedPositions[1] != 5 || degradedPositions[2] != 9 {
		t.Fatalf("degraded tasks at positions %v, want [1 5 9] (seq %v)", degradedPositions, classSeq)
	}
}

func TestBDFOneDegradedPerHeartbeat(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(0)
	// All tasks degraded: even with many free slots, one degraded per
	// heartbeat.
	specs := []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0, Lost: true},
		{Block: erasure.BlockID{Stripe: 1, Index: 0}, Holder: 0, Lost: true},
		{Block: erasure.BlockID{Stripe: 2, Index: 0}, Holder: 0, Lost: true},
	}
	j := NewJob(0, specs)
	env := envFor(c, j)
	got := BasicDegradedFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 4})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("got %v, want exactly one degraded", classesOf(got))
	}
	// Next heartbeats pick up the rest, one each.
	got = BasicDegradedFirst{}.Assign(env, Heartbeat{Node: 2, FreeMapSlots: 4})
	if len(got) != 1 {
		t.Fatalf("second heartbeat got %d", len(got))
	}
	got = BasicDegradedFirst{}.Assign(env, Heartbeat{Node: 3, FreeMapSlots: 4})
	if len(got) != 1 {
		t.Fatalf("third heartbeat got %d", len(got))
	}
	if !j.Done() {
		t.Fatal("job should be drained")
	}
}

func TestDegradedFirstNormalModeEqualsLocalityFirst(t *testing.T) {
	// Without failures there are no degraded tasks: BDF and EDF must
	// produce exactly the same assignment sequence as LF.
	c := fourNodeCluster()
	seqFor := func(s Scheduler) []int {
		j := NewJob(0, specsFig4(c)) // no failure: nothing lost
		env := envFor(c, j)
		var seq []int
		for round := 0; round < 50 && !j.Done(); round++ {
			for node := 0; node < 4; node++ {
				for _, a := range s.Assign(env, Heartbeat{Node: topology.NodeID(node), FreeMapSlots: 1}) {
					seq = append(seq, a.Task.Index)
				}
			}
		}
		return seq
	}
	lf := seqFor(LocalityFirst{})
	bdf := seqFor(BasicDegradedFirst{})
	edf := seqFor(NewEnhancedDegradedFirst(c.NumRacks()))
	if len(lf) != 12 {
		t.Fatalf("LF only assigned %d", len(lf))
	}
	for i := range lf {
		if lf[i] != bdf[i] || lf[i] != edf[i] {
			t.Fatalf("normal-mode divergence at %d: lf=%v bdf=%v edf=%v", i, lf, bdf, edf)
		}
	}
}

func TestEDFAssignToSlaveRefusesBusySlave(t *testing.T) {
	// Node 1 holds far more pending local work than average: EDF must not
	// give it a degraded task; LF-ineligible nodes (low local load) get it.
	c := topology.MustNew(topology.Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
	c.FailNode(0)
	var specs []TaskSpec
	// 9 local tasks on node 1, 1 on nodes 2 and 3, 2 degraded.
	for i := 0; i < 9; i++ {
		specs = append(specs, TaskSpec{Block: erasure.BlockID{Stripe: i, Index: 0}, Holder: 1})
	}
	specs = append(specs,
		TaskSpec{Block: erasure.BlockID{Stripe: 9, Index: 0}, Holder: 2},
		TaskSpec{Block: erasure.BlockID{Stripe: 10, Index: 0}, Holder: 3},
		TaskSpec{Block: erasure.BlockID{Stripe: 11, Index: 0}, Holder: 0, Lost: true},
		TaskSpec{Block: erasure.BlockID{Stripe: 12, Index: 0}, Holder: 0, Lost: true},
	)
	j := NewJob(0, specs)
	env := envFor(c, j)
	edf := NewEnhancedDegradedFirst(c.NumRacks())

	got := edf.Assign(env, Heartbeat{Now: 0, Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassNodeLocal {
		t.Fatalf("busy slave got %v, want its node-local task", classesOf(got))
	}
	// Node 2 has little local work: it gets the degraded task.
	got = edf.Assign(env, Heartbeat{Now: 0, Node: 2, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("idle slave got %v, want degraded", classesOf(got))
	}
}

func TestEDFAssignToRackSpacing(t *testing.T) {
	// After a degraded launch in rack 1, another degraded task must not go
	// to rack 1 until the threshold elapses, but rack 0 is fine.
	c := topology.MustNew(topology.Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
	c.FailNode(0)
	specs := []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0, Lost: true},
		{Block: erasure.BlockID{Stripe: 1, Index: 0}, Holder: 0, Lost: true},
		{Block: erasure.BlockID{Stripe: 2, Index: 0}, Holder: 0, Lost: true},
	}
	j := NewJob(0, specs)
	env := envFor(c, j) // DegradedReadTime = 10
	edf := NewEnhancedDegradedFirst(c.NumRacks())

	got := edf.Assign(env, Heartbeat{Now: 0, Node: 2, FreeMapSlots: 1}) // rack 1
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("first degraded refused: %v", classesOf(got))
	}
	// Same rack, 3 s later: refused (t_r = 3 < 10).
	got = edf.Assign(env, Heartbeat{Now: 3, Node: 3, FreeMapSlots: 1})
	if len(got) != 0 {
		t.Fatalf("rack 1 should be cooling down, got %v", classesOf(got))
	}
	// Other rack is admissible immediately.
	got = edf.Assign(env, Heartbeat{Now: 3, Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("rack 0 refused: %v", classesOf(got))
	}
	// Rack 1 after the threshold: admissible again.
	got = edf.Assign(env, Heartbeat{Now: 11, Node: 3, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("rack 1 after cooldown refused: %v", classesOf(got))
	}
}

func TestMultiJobFIFO(t *testing.T) {
	// Two jobs: job 0's tasks are assigned before job 1's.
	c := fourNodeCluster()
	j0 := NewJob(0, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1}})
	j1 := NewJob(1, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1}})
	env := envFor(c, j0, j1)
	got := LocalityFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 2})
	if len(got) != 2 || got[0].Task.Job != 0 || got[1].Task.Job != 1 {
		t.Fatalf("FIFO violated: %+v", got)
	}
}

func TestPacingNeverDeadlocks(t *testing.T) {
	// Property: for random workloads and random heartbeat orders, every
	// scheduler eventually assigns every task exactly once.
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		c := topology.MustNew(topology.Config{Nodes: 8, Racks: 2, MapSlotsPerNode: 2})
		c.FailNode(topology.NodeID(rng.Intn(8)))
		var specs []TaskSpec
		nTasks := 5 + rng.Intn(40)
		for i := 0; i < nTasks; i++ {
			holder := topology.NodeID(rng.Intn(8))
			specs = append(specs, TaskSpec{
				Block:  erasure.BlockID{Stripe: i, Index: 0},
				Holder: holder,
				Lost:   !c.Alive(holder),
			})
		}
		for _, s := range []Scheduler{LocalityFirst{}, BasicDegradedFirst{}, NewEnhancedDegradedFirst(2)} {
			j := NewJob(0, specs)
			env := envFor(c, j)
			now := 0.0
			for round := 0; round < 10000 && !j.Done(); round++ {
				node := topology.NodeID(rng.Intn(8))
				if !c.Alive(node) {
					continue
				}
				s.Assign(env, Heartbeat{Now: now, Node: node, FreeMapSlots: 1 + rng.Intn(2)})
				now += 1.5
			}
			if !j.Done() {
				return false
			}
			m, md := j.Launched()
			tm, tmd := j.Totals()
			if m != tm || md != tmd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPacingInvariantProperty(t *testing.T) {
	// Property: under BDF, after every heartbeat the pacing invariant
	// m/M >= (md-1)/Md holds (the md-th launch required m/M >= (md-1)/Md
	// at launch time).
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		c := topology.MustNew(topology.Config{Nodes: 6, Racks: 2, MapSlotsPerNode: 2})
		c.FailNode(0)
		var specs []TaskSpec
		for i := 0; i < 30; i++ {
			holder := topology.NodeID(i % 6)
			specs = append(specs, TaskSpec{
				Block:  erasure.BlockID{Stripe: i, Index: 0},
				Holder: holder,
				Lost:   holder == 0,
			})
		}
		j := NewJob(0, specs)
		env := envFor(c, j)
		bdf := BasicDegradedFirst{}
		for round := 0; round < 2000 && !j.Done(); round++ {
			node := topology.NodeID(1 + rng.Intn(5))
			before, beforeDeg := j.Launched()
			got := bdf.Assign(env, Heartbeat{Node: node, FreeMapSlots: 1})
			M, Md := j.Totals()
			for _, a := range got {
				if a.Class == ClassDegraded {
					// Admission required m*Md >= md*M with the counters
					// as they were before this launch.
					if before*Md < beforeDeg*M {
						return false
					}
				}
			}
		}
		return j.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTaskDoubleAssignPanics(t *testing.T) {
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{}, Holder: 0}})
	tk := j.Tasks()[0]
	j.take(tk)
	defer func() {
		if recover() == nil {
			t.Fatal("double take did not panic")
		}
	}()
	j.take(tk)
}

func TestSchedulerNames(t *testing.T) {
	if (LocalityFirst{}).Name() != "LF" || (BasicDegradedFirst{}).Name() != "BDF" || NewEnhancedDegradedFirst(2).Name() != "EDF" {
		t.Fatal("scheduler names wrong")
	}
}

func TestMarkHolderLost(t *testing.T) {
	c := fourNodeCluster()
	j := NewJob(0, []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1},
		{Block: erasure.BlockID{Stripe: 1, Index: 0}, Holder: 1},
		{Block: erasure.BlockID{Stripe: 2, Index: 0}, Holder: 2},
	})
	// Assign one of node 1's tasks first: it must not be reclassified.
	env := envFor(c, j)
	got := LocalityFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Task.Holder != 1 {
		t.Fatalf("setup assignment wrong: %v", got)
	}
	changed := j.MarkHolderLost(1)
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	if _, md := j.Totals(); md != 1 {
		t.Fatalf("Md = %d, want 1", md)
	}
	if j.PendingDegraded() != 1 {
		t.Fatalf("pending degraded = %d", j.PendingDegraded())
	}
	// The assigned task keeps its original class.
	if got[0].Task.Lost {
		t.Fatal("assigned task must not be reclassified")
	}
	// Idempotent-ish: no more pending tasks on holder 1.
	if j.MarkHolderLost(1) != 0 {
		t.Fatal("second MarkHolderLost must change nothing")
	}
}

func TestRequeueNormalTask(t *testing.T) {
	c := fourNodeCluster()
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1}})
	env := envFor(c, j)
	got := LocalityFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1})
	tk := got[0].Task
	if m, _ := j.Launched(); m != 1 {
		t.Fatal("launch not counted")
	}
	j.Requeue(tk, false)
	if m, _ := j.Launched(); m != 0 {
		t.Fatal("requeue must decrement launched")
	}
	if tk.Assigned() || j.Done() {
		t.Fatal("task must be pending again")
	}
	// It can be assigned again, same class.
	got = LocalityFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassNodeLocal {
		t.Fatalf("relaunch wrong: %v", got)
	}
}

func TestRequeueBecomesDegraded(t *testing.T) {
	c := fourNodeCluster()
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1}})
	env := envFor(c, j)
	got := LocalityFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1})
	tk := got[0].Task
	c.FailNode(1)
	j.Requeue(tk, true)
	if !tk.Lost {
		t.Fatal("task must be degraded now")
	}
	if _, md := j.Totals(); md != 1 {
		t.Fatalf("Md = %d", md)
	}
	got = LocalityFirst{}.Assign(env, Heartbeat{Node: 2, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("relaunch should be degraded: %v", got)
	}
}

func TestRequeueDegradedBackToNormal(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(1)
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 1, Lost: true}})
	env := envFor(c, j)
	got := LocalityFirst{}.Assign(env, Heartbeat{Node: 2, FreeMapSlots: 1})
	tk := got[0].Task
	c.RecoverNode(1)
	j.Requeue(tk, false)
	if tk.Lost {
		t.Fatal("task should be normal again")
	}
	if _, md := j.Totals(); md != 0 {
		t.Fatalf("Md = %d, want 0", md)
	}
	got = LocalityFirst{}.Assign(env, Heartbeat{Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassNodeLocal {
		t.Fatalf("relaunch should be node-local: %v", got)
	}
}

func TestRequeueUnassignedPanics(t *testing.T) {
	j := NewJob(0, []TaskSpec{{Block: erasure.BlockID{}, Holder: 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("requeue of unassigned task must panic")
		}
	}()
	j.Requeue(j.Tasks()[0], false)
}

func TestEDFHeterogeneousPrefersFastSlaves(t *testing.T) {
	// Two slaves with equal pending local work, but node 1 is twice as
	// fast: its estimated local time t_s is half of node 2's, so EDF gives
	// the degraded task to the fast node and refuses the slow one.
	c := topology.MustNew(topology.Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
	c.FailNode(0)
	var specs []TaskSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, TaskSpec{Block: erasure.BlockID{Stripe: i, Index: 0}, Holder: 1})
		specs = append(specs, TaskSpec{Block: erasure.BlockID{Stripe: i, Index: 1}, Holder: 2})
	}
	specs = append(specs,
		TaskSpec{Block: erasure.BlockID{Stripe: 9, Index: 0}, Holder: 0, Lost: true},
		TaskSpec{Block: erasure.BlockID{Stripe: 9, Index: 1}, Holder: 0, Lost: true},
	)
	j := NewJob(0, specs)
	env := envFor(c, j)
	env.PerTaskTime = func(id topology.NodeID) float64 {
		if id == 1 {
			return 10 // fast node
		}
		return 20 // slow nodes
	}
	edf := NewEnhancedDegradedFirst(c.NumRacks())

	// Fast node 1: t_s = 4x10 = 40 equals the alive-mean ((40+80+0)/3 is
	// exceeded only by the slow node), so the degraded task is admitted.
	got := edf.Assign(env, Heartbeat{Now: 0, Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("fast node got %v, want the degraded task", classesOf(got))
	}
	// Slow node 2: t_s = 4x20 = 80 is above the mean -> degraded refused,
	// local assigned instead.
	got = edf.Assign(env, Heartbeat{Now: 100, Node: 2, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassNodeLocal {
		t.Fatalf("slow node got %v, want its local task", classesOf(got))
	}
}

func TestEDFDefaultPerTaskTime(t *testing.T) {
	// Env without PerTaskTime must still work (uniform estimate).
	c := fourNodeCluster()
	c.FailNode(0)
	j := NewJob(0, []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0, Lost: true},
	})
	env := &Env{Cluster: c, Jobs: []*Job{j}, DegradedReadTime: 5}
	edf := NewEnhancedDegradedFirst(c.NumRacks())
	got := edf.Assign(env, Heartbeat{Now: 0, Node: 1, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Class != ClassDegraded {
		t.Fatalf("got %v", classesOf(got))
	}
}

func BenchmarkEDFAssign(b *testing.B) {
	c := topology.MustNew(topology.Config{Nodes: 40, Racks: 4, MapSlotsPerNode: 4})
	c.FailNode(0)
	var specs []TaskSpec
	for i := 0; i < 1440; i++ {
		holder := topology.NodeID(i % 40)
		specs = append(specs, TaskSpec{
			Block:  erasure.BlockID{Stripe: i / 15, Index: i % 15},
			Holder: holder,
			Lost:   holder == 0,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j := NewJob(0, append([]TaskSpec(nil), specs...))
		env := envFor(c, j)
		edf := NewEnhancedDegradedFirst(4)
		b.StartTimer()
		for round := 0; !j.Done(); round++ {
			for node := 1; node < 40; node++ {
				edf.Assign(env, Heartbeat{Now: float64(round) * 3, Node: topology.NodeID(node), FreeMapSlots: 4})
			}
		}
	}
}

func TestEagerDegradedFirstTakesAllDegradedFirst(t *testing.T) {
	c := fourNodeCluster()
	c.FailNode(0)
	j := NewJob(0, specsFig4(c))
	env := envFor(c, j)
	got := (EagerDegradedFirst{}).Assign(env, Heartbeat{Node: 1, FreeMapSlots: 5})
	if len(got) != 5 {
		t.Fatalf("assigned %d", len(got))
	}
	// The three degraded tasks come first, then locals.
	for i := 0; i < 3; i++ {
		if got[i].Class != ClassDegraded {
			t.Fatalf("assignment %d = %v, want degraded (seq %v)", i, got[i].Class, classesOf(got))
		}
	}
	for i := 3; i < 5; i++ {
		if got[i].Class == ClassDegraded {
			t.Fatalf("too many degraded assignments: %v", classesOf(got))
		}
	}
	if (EagerDegradedFirst{}).Name() != "EagerDF" {
		t.Fatal("name wrong")
	}
}

func TestMultiJobDegradedOnePerHeartbeatAcrossJobs(t *testing.T) {
	// The isDegradedTaskAssigned flag spans the whole heartbeat: with two
	// jobs holding degraded tasks, a single heartbeat still launches at
	// most one degraded task in total.
	c := fourNodeCluster()
	c.FailNode(0)
	mk := func(id int) *Job {
		return NewJob(id, []TaskSpec{
			{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 0, Lost: true},
			{Block: erasure.BlockID{Stripe: 1, Index: 0}, Holder: 1},
		})
	}
	j0, j1 := mk(0), mk(1)
	env := envFor(c, j0, j1)
	got := (BasicDegradedFirst{}).Assign(env, Heartbeat{Node: 1, FreeMapSlots: 4})
	degraded := 0
	for _, a := range got {
		if a.Class == ClassDegraded {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("one heartbeat launched %d degraded tasks (%v)", degraded, classesOf(got))
	}
}

func TestRackLocalPreferenceScansNodeOrder(t *testing.T) {
	// popRackLocal scans rack peers in node-ID order for determinism.
	c := topology.MustNew(topology.Config{Nodes: 6, Racks: 2, MapSlotsPerNode: 1})
	j := NewJob(0, []TaskSpec{
		{Block: erasure.BlockID{Stripe: 0, Index: 0}, Holder: 2},
		{Block: erasure.BlockID{Stripe: 1, Index: 0}, Holder: 1},
	})
	env := envFor(c, j)
	got := (LocalityFirst{}).Assign(env, Heartbeat{Node: 0, FreeMapSlots: 1})
	if len(got) != 1 || got[0].Task.Holder != 1 {
		t.Fatalf("expected holder-1 task first (node order), got %+v", got)
	}
}
