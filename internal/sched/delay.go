package sched

import "degradedfirst/internal/topology"

// DelayScheduling is the fair/locality scheduler of Zaharia et al.
// (EuroSys 2010), cited as related work [35] by the paper: when the
// head-of-line job has no local task for the requesting slave, the job is
// skipped — it waits for a slave with local data — for up to D scheduling
// opportunities before it is allowed to launch a non-local (remote or
// degraded) task. It is provided as an additional baseline: like LF it is
// oblivious to degraded tasks, so in failure mode it still bunches
// degraded reads at the end of the map phase.
//
// Construct one instance per run with NewDelayScheduling.
type DelayScheduling struct {
	// maxSkips is D: how many opportunities a job forgoes waiting for
	// locality before accepting non-local tasks.
	maxSkips int
	// skips counts consecutive skipped opportunities per job ID.
	skips map[int]int
}

// NewDelayScheduling returns a delay scheduler that waits up to maxSkips
// scheduling opportunities for locality.
func NewDelayScheduling(maxSkips int) *DelayScheduling {
	if maxSkips < 0 {
		maxSkips = 0
	}
	return &DelayScheduling{maxSkips: maxSkips, skips: make(map[int]int)}
}

// Name implements Scheduler.
func (d *DelayScheduling) Name() string { return "DelayLF" }

// Assign implements Scheduler.
func (d *DelayScheduling) Assign(env *Env, hb Heartbeat) []Assignment {
	var out []Assignment
	free := hb.FreeMapSlots
	for _, j := range env.Jobs {
		for free > 0 {
			t := d.popWithDelay(env, j, hb.Node)
			if t == nil {
				break // job waits (or is exhausted); consider the next job
			}
			out = append(out, Assignment{Task: t, Class: classify(env.Cluster, t, hb.Node)})
			free--
		}
		if free == 0 {
			break
		}
	}
	return out
}

// popWithDelay takes a local task if available; otherwise the job skips
// this opportunity until it has waited maxSkips times, after which it
// accepts a remote then degraded task (and the skip counter resets).
func (d *DelayScheduling) popWithDelay(env *Env, j *Job, node topology.NodeID) *Task {
	if t := j.popNodeLocal(node); t != nil {
		d.skips[j.ID] = 0
		return t
	}
	if t := j.popRackLocal(env.Cluster, node); t != nil {
		d.skips[j.ID] = 0
		return t
	}
	if j.Done() {
		return nil
	}
	if d.skips[j.ID] < d.maxSkips {
		d.skips[j.ID]++
		return nil
	}
	// Patience exhausted: accept non-local work.
	if t := j.popRemote(env.Cluster, node); t != nil {
		d.skips[j.ID] = 0
		return t
	}
	if t := j.popDegraded(); t != nil {
		d.skips[j.ID] = 0
		return t
	}
	return nil
}

var _ Scheduler = (*DelayScheduling)(nil)
