package repair

import (
	"math"
	"testing"
)

func key(s int) Key { return Key{File: "f", Stripe: s} }

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{FIFO, MostAtRisk, Deadline} {
		got, ok := ParsePolicy(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePolicy("bogus"); ok {
		t.Fatal("ParsePolicy accepted bogus name")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config should validate: %v", err)
	}
	good := Config{Enabled: true, Policy: Deadline, RateFraction: 0.3, LinkBps: 1e9}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Enabled: true, Policy: Policy(99)},
		{Enabled: true, RateFraction: 1.5},
		{Enabled: true, RateFraction: -0.1},
		{Enabled: true, RateBps: math.Inf(1)},
		{Enabled: true, LinkBps: -1},
		{Enabled: true, Burst: -1},
		{Enabled: true, MaxConcurrent: -1},
		{Enabled: true, DetectDelay: -1},
		{Enabled: true, DeadlineHorizon: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEffectiveRate(t *testing.T) {
	c := Config{Enabled: true, RateFraction: 0.25, LinkBps: 1e9}
	if got := c.EffectiveRate(); got != 0.25e9 {
		t.Fatalf("EffectiveRate = %v, want 2.5e8", got)
	}
	c.RateBps = 42
	if got := c.EffectiveRate(); got != 42 {
		t.Fatalf("RateBps override: EffectiveRate = %v, want 42", got)
	}
	if got := (Config{Enabled: true}).EffectiveRate(); got != 0 {
		t.Fatalf("unthrottled config: EffectiveRate = %v, want 0", got)
	}
}

func TestStripePlanHelpers(t *testing.T) {
	p := StripePlan{
		N: 9, K: 6, Lost: 1,
		Blocks: []BlockPlan{{Index: 2, Sources: make([]Source, 6)}},
	}
	if got := p.ReadBytes(100); got != 600 {
		t.Fatalf("ReadBytes = %v, want 600", got)
	}
	if got := p.Spare(); got != 2 {
		t.Fatalf("Spare = %d, want 2", got)
	}
	p.Lost = 5
	if got := p.Spare(); got != 0 {
		t.Fatalf("Spare clamps at 0, got %d", got)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue(FIFO)
	q.Upsert(key(3), 1, 2, 0, 0, false)
	q.Upsert(key(1), 2, 0, 1, 0, false)
	q.Upsert(key(2), 1, 1, 2, 0, false)
	var got []int
	for q.Len() > 0 {
		it := q.Peek(nil)
		got = append(got, it.Key.Stripe)
		q.Remove(it.Key)
	}
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order = %v, want %v", got, want)
		}
	}
}

func TestQueueMostAtRiskOrder(t *testing.T) {
	q := NewQueue(MostAtRisk)
	q.Upsert(key(3), 1, 2, 0, 0, false)
	q.Upsert(key(1), 2, 0, 1, 0, false)
	q.Upsert(key(2), 1, 0, 2, 0, false) // same spare as stripe 1: seq breaks tie
	var got []int
	for q.Len() > 0 {
		it := q.Peek(nil)
		got = append(got, it.Key.Stripe)
		q.Remove(it.Key)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("most-at-risk order = %v, want %v", got, want)
		}
	}
}

func TestQueueDeadlineOrder(t *testing.T) {
	q := NewQueue(Deadline)
	q.Upsert(key(1), 1, 2, 0, 180, false)
	q.Upsert(key(2), 1, 0, 1, 61, false)
	q.Upsert(key(3), 1, 1, 2, 122, false)
	var got []int
	for q.Len() > 0 {
		it := q.Peek(nil)
		got = append(got, it.Key.Stripe)
		q.Remove(it.Key)
	}
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deadline order = %v, want %v", got, want)
		}
	}
}

func TestQueueBoostWinsUnderEveryPolicy(t *testing.T) {
	for _, p := range []Policy{FIFO, MostAtRisk, Deadline} {
		q := NewQueue(p)
		q.Upsert(key(1), 1, 0, 0, 10, false) // earliest, most at risk, tightest deadline
		q.Upsert(key(2), 1, 5, 9, 999, true) // but boosted
		if it := q.Peek(nil); it.Key.Stripe != 2 {
			t.Fatalf("policy %v: boosted item lost to %v", p, it.Key)
		}
	}
}

func TestQueueUpsertSemantics(t *testing.T) {
	q := NewQueue(Deadline)
	it := q.Upsert(key(1), 2, 1, 5, 100, false)
	// Re-upsert: lost/spare overwritten, deadline only tightens,
	// enqueue time preserved, boost sticky once set.
	again := q.Upsert(key(1), 1, 2, 9, 200, true)
	if again != it {
		t.Fatal("Upsert allocated a second item for the same key")
	}
	if it.Lost != 1 || it.Spare != 2 {
		t.Fatalf("lost/spare not refreshed: %+v", it)
	}
	if it.Deadline != 100 {
		t.Fatalf("deadline loosened to %v", it.Deadline)
	}
	if it.EnqueuedAt != 5 {
		t.Fatalf("enqueue time rewritten to %v", it.EnqueuedAt)
	}
	if !it.Boosted {
		t.Fatal("boost not applied")
	}
	q.Upsert(key(1), 1, 2, 9, 50, false)
	if it.Deadline != 50 {
		t.Fatalf("tighter deadline not taken: %v", it.Deadline)
	}
	if !it.Boosted {
		t.Fatal("boost not sticky")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestQueuePeekSkip(t *testing.T) {
	q := NewQueue(FIFO)
	q.Upsert(key(1), 1, 1, 0, 0, false)
	q.Upsert(key(2), 1, 1, 1, 0, false)
	it := q.Peek(func(k Key) bool { return k.Stripe == 1 })
	if it == nil || it.Key.Stripe != 2 {
		t.Fatalf("Peek with skip = %v, want stripe 2", it)
	}
	it = q.Peek(func(Key) bool { return true })
	if it != nil {
		t.Fatalf("Peek skipping all = %v, want nil", it)
	}
}

func TestQueueRemoveMissing(t *testing.T) {
	q := NewQueue(FIFO)
	q.Remove(key(9)) // no-op
	q.Upsert(key(1), 1, 1, 0, 0, false)
	q.Remove(key(1))
	if q.Len() != 0 || q.Get(key(1)) != nil {
		t.Fatal("Remove left residue")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0)
	ok, at := b.Take(5, 1e12)
	if !ok || at != 5 {
		t.Fatalf("unlimited bucket refused: ok=%v at=%v", ok, at)
	}
}

func TestBucketRefillAndReadyAt(t *testing.T) {
	b := NewBucket(100, 200) // 100 B/s, depth 200, starts full
	ok, _ := b.Take(0, 150)
	if !ok {
		t.Fatal("initial burst refused")
	}
	// 50 tokens left; need 150 more at 100 B/s => ready at t=1.
	ok, at := b.Take(0, 200)
	if ok || at != 1.5 {
		t.Fatalf("Take(0, 200) = %v, %v; want refused, ready at 1.5", ok, at)
	}
	// Tokens were not consumed by the refusal; at t=1.5 it admits.
	ok, _ = b.Take(1.5, 200)
	if !ok {
		t.Fatal("Take at readyAt refused")
	}
}

func TestBucketOversizedNeedNoDeadlock(t *testing.T) {
	b := NewBucket(100, 50) // burst smaller than the request
	ok, at := b.Take(0, 500)
	if ok {
		t.Fatal("oversized need admitted instantly")
	}
	// 50 tokens banked; 450 more at 100 B/s => ready at 4.5.
	if at != 4.5 {
		t.Fatalf("readyAt = %v, want 4.5", at)
	}
	ok, _ = b.Take(at, 500)
	if !ok {
		t.Fatal("oversized need refused at its own readyAt: deadlock")
	}
	// After the big spend the bucket clamps back to burst depth.
	ok, _ = b.Take(at, 51)
	if ok {
		t.Fatal("bucket retained tokens above burst after oversized spend")
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	b := NewBucket(100, 0)
	// Default depth is one second of refill: 100 tokens, starts full.
	if ok, _ := b.Take(0, 100); !ok {
		t.Fatal("default-burst bucket refused a one-second need")
	}
	if ok, _ := b.Take(0, 1); ok {
		t.Fatal("bucket not drained")
	}
}
