// Package repair holds the policy layer of the background repair
// subsystem: the work-queue ordering a proactive healer uses to decide
// which degraded stripe to rebuild next, and the token-bucket throttle
// bounding how much network bandwidth repair traffic may take from
// foreground MapReduce jobs.
//
// The package is deliberately engine-free: it knows nothing about the
// simulation clock, the network model, or the DFS. The runtime's repair
// manager (internal/runtime) drives a Queue and a Bucket with virtual
// times; the DFS (internal/dfs) produces the StripePlans the queue
// holds. Real systems split the same way — minio's MRF and cubeFS's
// Scheduler keep healing policy separate from both the store and the
// transport.
package repair

import (
	"fmt"
	"math"

	"degradedfirst/internal/topology"
)

// Key identifies one stripe of one file — the unit of repair work.
type Key struct {
	// File names the owning file (backends without a real file system
	// use a synthetic per-job name).
	File string
	// Stripe is the stripe index within the file.
	Stripe int
}

// String returns "file#stripe".
func (k Key) String() string { return fmt.Sprintf("%s#%d", k.File, k.Stripe) }

// Source is one surviving block a repair reads: the node holding it and
// its index within the stripe.
type Source struct {
	Node  topology.NodeID
	Index int
}

// BlockPlan describes the reconstruction of one lost block: read the
// sources, decode, and write the rebuilt block to Dest.
type BlockPlan struct {
	// Index is the lost block's index within the stripe.
	Index int
	// Dest is the node the rebuilt block will be written to.
	Dest topology.NodeID
	// Sources are the surviving blocks to read.
	Sources []Source
	// Local marks an LRC local-group repair (fewer than k sources).
	Local bool
}

// StripePlan is the repair plan for one stripe: every lost block with
// its sources and destination, or an unrepairable verdict.
type StripePlan struct {
	Key Key
	// N and K are the stripe's code parameters.
	N, K int
	// Lost is the number of lost blocks (len(Blocks) when repairable).
	Lost int
	// Blocks are the per-block plans, in block-index order. Empty when
	// the stripe is unrepairable.
	Blocks []BlockPlan
	// Unrepairable marks a stripe with more losses than the code
	// tolerates (> n-k): it is reported distinctly, never repaired.
	Unrepairable bool
}

// ReadBytes returns the total network read volume of the plan given the
// block size.
func (p *StripePlan) ReadBytes(blockSize float64) float64 {
	var total float64
	for _, b := range p.Blocks {
		total += float64(len(b.Sources)) * blockSize
	}
	return total
}

// Spare returns the stripe's surviving redundancy margin: how many
// further losses it tolerates before becoming unrepairable.
func (p *StripePlan) Spare() int {
	s := p.N - p.K - p.Lost
	if s < 0 {
		s = 0
	}
	return s
}

// Policy orders the repair queue.
type Policy int

const (
	// FIFO repairs stripes in discovery order.
	FIFO Policy = iota
	// MostAtRisk repairs the stripe with the least surviving redundancy
	// first — the stripe closest to data loss.
	MostAtRisk
	// Deadline repairs the stripe with the earliest repair deadline
	// first; deadlines shrink with remaining redundancy, so it
	// interpolates between FIFO and MostAtRisk.
	Deadline
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case MostAtRisk:
		return "most-at-risk"
	case Deadline:
		return "deadline"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a Policy.String() name back to its Policy.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "fifo":
		return FIFO, true
	case "most-at-risk":
		return MostAtRisk, true
	case "deadline":
		return Deadline, true
	}
	return 0, false
}

// Config configures the background repair subsystem. The zero value
// disables it entirely, keeping the runtime byte-identical to a build
// without the subsystem (pinned by the seed FIFO golden traces).
type Config struct {
	// Enabled turns the healer on.
	Enabled bool

	// Policy orders queued stripe repairs (default FIFO).
	Policy Policy

	// RateFraction bounds repair read traffic to this fraction of the
	// access-link capacity LinkBps. The engines default LinkBps to the
	// node NIC bandwidth, so RateFraction 0.25 means repair may consume
	// at most a quarter of one NIC. 0 with RateBps 0 means unthrottled.
	RateFraction float64
	// LinkBps is the link capacity RateFraction applies to; engines fill
	// it from their network config when left 0.
	LinkBps float64
	// RateBps, when positive, bounds repair read traffic directly in
	// bytes/second, overriding RateFraction.
	RateBps float64
	// Burst is the token-bucket depth in bytes; 0 defaults to one
	// stripe's read volume (the bucket never admits less than one whole
	// stripe launch, so an oversized stripe waits instead of deadlocking).
	Burst float64

	// MaxConcurrent bounds in-flight stripe repairs (default 1).
	MaxConcurrent int

	// DetectDelay is the lag in seconds between a node failure and the
	// scanner noticing the lost blocks (default 0: scan immediately).
	DetectDelay float64

	// DeadlineHorizon parameterizes the Deadline policy: a stripe
	// discovered at time t with spare redundancy s is assigned deadline
	// t + DeadlineHorizon*(s+1), so stripes one loss from unrepairable
	// get the tightest deadlines. Default 60s.
	DeadlineHorizon float64
}

// Active reports whether the configuration enables repair.
func (c Config) Active() bool { return c.Enabled }

// Validate checks an active configuration.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Policy != FIFO && c.Policy != MostAtRisk && c.Policy != Deadline {
		return fmt.Errorf("repair: unknown policy %d", int(c.Policy))
	}
	if c.RateFraction < 0 || c.RateFraction > 1 || math.IsNaN(c.RateFraction) {
		return fmt.Errorf("repair: rate fraction %v outside [0, 1]", c.RateFraction)
	}
	if c.RateBps < 0 || math.IsNaN(c.RateBps) || math.IsInf(c.RateBps, 0) {
		return fmt.Errorf("repair: invalid rate %v bytes/sec", c.RateBps)
	}
	if c.LinkBps < 0 || math.IsNaN(c.LinkBps) || math.IsInf(c.LinkBps, 0) {
		return fmt.Errorf("repair: invalid link capacity %v bytes/sec", c.LinkBps)
	}
	if c.Burst < 0 || math.IsNaN(c.Burst) {
		return fmt.Errorf("repair: negative burst %v", c.Burst)
	}
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("repair: negative max concurrent %d", c.MaxConcurrent)
	}
	if c.DetectDelay < 0 || math.IsNaN(c.DetectDelay) {
		return fmt.Errorf("repair: negative detect delay %v", c.DetectDelay)
	}
	if c.DeadlineHorizon < 0 || math.IsNaN(c.DeadlineHorizon) {
		return fmt.Errorf("repair: negative deadline horizon %v", c.DeadlineHorizon)
	}
	return nil
}

// EffectiveRate resolves the throttle to bytes/second: RateBps when set,
// else RateFraction of LinkBps. 0 means unthrottled.
func (c Config) EffectiveRate() float64 {
	if c.RateBps > 0 {
		return c.RateBps
	}
	return c.RateFraction * c.LinkBps
}

// Concurrency resolves MaxConcurrent's default.
func (c Config) Concurrency() int {
	if c.MaxConcurrent <= 0 {
		return 1
	}
	return c.MaxConcurrent
}

// Horizon resolves DeadlineHorizon's default.
func (c Config) Horizon() float64 {
	if c.DeadlineHorizon <= 0 {
		return 60
	}
	return c.DeadlineHorizon
}

// Item is one queued stripe repair.
type Item struct {
	Key Key
	// Lost is the number of blocks still pending repair.
	Lost int
	// Spare is the stripe's remaining redundancy margin.
	Spare int
	// EnqueuedAt is when the stripe first entered the queue (virtual
	// seconds); it fixes FIFO order across re-discoveries.
	EnqueuedAt float64
	// Deadline is the Deadline policy's target instant.
	Deadline float64
	// Boosted marks a stripe re-queued after its in-flight repair was
	// cancelled by a failure: it sorts before every unboosted item under
	// every policy.
	Boosted bool

	seq int
}

// Queue is the healer's work queue: at most one item per stripe,
// ordered by the configured policy. Not safe for concurrent use (the
// runtime drives it from the simulation goroutine).
type Queue struct {
	policy Policy
	items  []*Item
	index  map[Key]*Item
	seq    int
}

// NewQueue returns an empty queue ordered by the given policy.
func NewQueue(policy Policy) *Queue {
	return &Queue{policy: policy, index: make(map[Key]*Item)}
}

// Len returns the number of queued stripes.
func (q *Queue) Len() int { return len(q.items) }

// Get returns the queued item for key, or nil.
func (q *Queue) Get(key Key) *Item { return q.index[key] }

// Upsert adds a stripe to the queue or refreshes the existing entry:
// lost/spare are overwritten with the rescan's view, the deadline only
// tightens, boost is sticky, and the original enqueue time (hence FIFO
// position) is kept. Returns the queued item.
func (q *Queue) Upsert(key Key, lost, spare int, now, deadline float64, boost bool) *Item {
	if it, ok := q.index[key]; ok {
		it.Lost = lost
		it.Spare = spare
		if deadline < it.Deadline {
			it.Deadline = deadline
		}
		it.Boosted = it.Boosted || boost
		return it
	}
	it := &Item{
		Key:        key,
		Lost:       lost,
		Spare:      spare,
		EnqueuedAt: now,
		Deadline:   deadline,
		Boosted:    boost,
		seq:        q.seq,
	}
	q.seq++
	q.items = append(q.items, it)
	q.index[key] = it
	return it
}

// before reports whether a should be repaired before b under the
// queue's policy. Boosted items always win; ties break by discovery
// order so the order is total and deterministic.
func (q *Queue) before(a, b *Item) bool {
	if a.Boosted != b.Boosted {
		return a.Boosted
	}
	switch q.policy {
	case MostAtRisk:
		if a.Spare != b.Spare {
			return a.Spare < b.Spare
		}
	case Deadline:
		//lint:ignore floateq ordering tie-break must be exact or the relation stops being total
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
	}
	return a.seq < b.seq
}

// Peek returns the highest-priority item whose key skip admits (skip
// nil admits all), without removing it. Returns nil when none qualifies.
func (q *Queue) Peek(skip func(Key) bool) *Item {
	var best *Item
	for _, it := range q.items {
		if skip != nil && skip(it.Key) {
			continue
		}
		if best == nil || q.before(it, best) {
			best = it
		}
	}
	return best
}

// Remove deletes the item for key, if queued.
func (q *Queue) Remove(key Key) {
	it, ok := q.index[key]
	if !ok {
		return
	}
	delete(q.index, key)
	for i, x := range q.items {
		if x == it {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return
		}
	}
}

// Bucket is a virtual-time token bucket: Take either admits a launch
// immediately or reports when enough tokens will have accumulated. The
// effective depth of the bucket is max(burst, need), so a launch larger
// than the configured burst waits for its full cost instead of
// deadlocking — head-of-line blocking is the throttle semantics.
type Bucket struct {
	rate   float64 // bytes/second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   float64
}

// NewBucket returns a bucket refilling at rate bytes/second with the
// given depth. rate <= 0 disables throttling. The bucket starts full.
func NewBucket(rate, burst float64) *Bucket {
	if burst <= 0 {
		burst = rate // one second of refill as a sane default depth
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Take requests need bytes of repair budget at virtual time now. When
// the bucket holds enough tokens they are consumed and ok is true;
// otherwise ok is false and readyAt is the virtual instant the caller
// should retry (tokens are not consumed). now must not go backwards.
func (b *Bucket) Take(now, need float64) (ok bool, readyAt float64) {
	if b.rate <= 0 || need <= 0 {
		return true, now
	}
	b.refill(now, need)
	// The comparison tolerates float rounding: a retry scheduled at
	// readyAt refills to within one ulp of need, and refusing it would
	// re-arm an infinitesimally later retry forever.
	if b.tokens >= need*(1-1e-9) {
		b.tokens -= need
		if b.tokens < 0 {
			b.tokens = 0
		}
		return true, now
	}
	return false, now + (need-b.tokens)/b.rate
}

// refill accumulates tokens up to the effective depth for this request.
func (b *Bucket) refill(now, need float64) {
	cap := b.burst
	if need > cap {
		cap = need
	}
	if now > b.last {
		b.tokens += b.rate * (now - b.last)
	}
	b.last = now
	if b.tokens > cap {
		b.tokens = cap
	}
}
