package workload

import (
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/stats"
)

// MultiJobOptions configures the Section V-B multi-job experiment: 10 jobs
// whose inter-arrival times are exponential with mean 120 s.
type MultiJobOptions struct {
	// NumJobs is how many jobs to generate (paper: 10).
	NumJobs int
	// MeanInterArrival is the exponential inter-arrival mean in seconds
	// (paper: 120 s).
	MeanInterArrival float64
	// Template provides every per-job parameter except Name and SubmitAt.
	Template mapred.JobSpec
	// VaryBlocks, when positive, draws each job's block count uniformly
	// from [Template.NumBlocks/VaryBlocks, Template.NumBlocks] so jobs have
	// "different numbers of map tasks" as in the paper. Zero keeps the
	// template's count.
	VaryBlocks int
	// Seed drives arrival times and block-count variation.
	Seed int64
}

// GenerateMultiJob returns job specs with Poisson arrivals.
func GenerateMultiJob(opts MultiJobOptions) ([]mapred.JobSpec, error) {
	if opts.NumJobs <= 0 {
		return nil, fmt.Errorf("workload: NumJobs must be positive, got %d", opts.NumJobs)
	}
	if opts.MeanInterArrival < 0 {
		return nil, fmt.Errorf("workload: negative MeanInterArrival")
	}
	rng := stats.NewRNG(opts.Seed)
	jobs := make([]mapred.JobSpec, opts.NumJobs)
	at := 0.0
	for i := range jobs {
		j := opts.Template
		j.Name = fmt.Sprintf("job-%02d", i)
		j.SubmitAt = at
		if opts.VaryBlocks > 1 && j.NumBlocks > 0 {
			lo := j.NumBlocks / opts.VaryBlocks
			if lo < 1 {
				lo = 1
			}
			j.NumBlocks = lo + rng.Intn(j.NumBlocks-lo+1)
		}
		jobs[i] = j
		if opts.MeanInterArrival > 0 {
			at += rng.Exponential(opts.MeanInterArrival)
		}
	}
	return jobs, nil
}
