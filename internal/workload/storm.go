package workload

import (
	"fmt"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/stats"
)

// TenantSpec describes one tenant in a job storm.
type TenantSpec struct {
	// Name labels the tenant (job specs carry it in Tenant).
	Name string
	// Weight is the fair-share weight stamped on the tenant's jobs
	// (<= 0 means 1).
	Weight float64
	// Share is the tenant's relative probability of submitting each job
	// (<= 0 means 1). Shares need not sum to 1.
	Share float64
}

// StormOptions configures GenerateStorm: a large stream of small jobs
// from several tenants with a seeded Poisson arrival process — the
// multi-tenant "job storm" scenario that exercises the job-level
// scheduling policies.
type StormOptions struct {
	// NumJobs is the total job count across all tenants.
	NumJobs int
	// Tenants describes the submitting tenants (at least one).
	Tenants []TenantSpec
	// MeanInterArrival is the exponential inter-arrival mean in seconds
	// (0 = everything at t=0).
	MeanInterArrival float64
	// Template provides every per-job parameter except Name, SubmitAt,
	// Tenant, Weight and Deadline.
	Template mapred.JobSpec
	// VaryBlocks, when > 1, draws each job's block count uniformly from
	// [Template.NumBlocks/VaryBlocks, Template.NumBlocks].
	VaryBlocks int
	// DeadlineSlack, when positive, gives each job a deadline of
	// SubmitAt + uniform[0.5, 1.5) * DeadlineSlack (for the deadline
	// policy). Zero leaves deadlines unset.
	DeadlineSlack float64
	// Seed drives arrivals, tenant draws, block variation and slack.
	Seed int64
}

// GenerateStorm returns NumJobs job specs with Poisson arrivals, each
// assigned to a tenant drawn by share. Job i is named
// "<tenant>/j<i>"; SubmitAt is nondecreasing in slice order.
func GenerateStorm(opts StormOptions) ([]mapred.JobSpec, error) {
	if opts.NumJobs <= 0 {
		return nil, fmt.Errorf("workload: NumJobs must be positive, got %d", opts.NumJobs)
	}
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("workload: storm needs at least one tenant")
	}
	if opts.MeanInterArrival < 0 {
		return nil, fmt.Errorf("workload: negative MeanInterArrival")
	}
	if opts.DeadlineSlack < 0 {
		return nil, fmt.Errorf("workload: negative DeadlineSlack")
	}
	var totalShare float64
	for _, ts := range opts.Tenants {
		if ts.Name == "" {
			return nil, fmt.Errorf("workload: unnamed tenant")
		}
		totalShare += share(ts)
	}

	rng := stats.NewRNG(opts.Seed)
	jobs := make([]mapred.JobSpec, opts.NumJobs)
	at := 0.0
	for i := range jobs {
		// Weighted tenant draw by cumulative share.
		pick := rng.Float64() * totalShare
		tenant := opts.Tenants[len(opts.Tenants)-1]
		for _, ts := range opts.Tenants {
			if pick < share(ts) {
				tenant = ts
				break
			}
			pick -= share(ts)
		}

		j := opts.Template
		j.Name = fmt.Sprintf("%s/j%04d", tenant.Name, i)
		j.Tenant = tenant.Name
		j.Weight = tenant.Weight
		if j.Weight < 0 {
			j.Weight = 0
		}
		j.SubmitAt = at
		if opts.VaryBlocks > 1 && j.NumBlocks > 0 {
			lo := j.NumBlocks / opts.VaryBlocks
			if lo < 1 {
				lo = 1
			}
			j.NumBlocks = lo + rng.Intn(j.NumBlocks-lo+1)
		}
		if opts.DeadlineSlack > 0 {
			j.Deadline = j.SubmitAt + (0.5+rng.Float64())*opts.DeadlineSlack
		}
		jobs[i] = j
		if opts.MeanInterArrival > 0 {
			at += rng.Exponential(opts.MeanInterArrival)
		}
	}
	return jobs, nil
}

func share(ts TenantSpec) float64 {
	if ts.Share > 0 {
		return ts.Share
	}
	return 1
}
