// Package workload generates the inputs the paper's evaluation uses:
// a synthetic English-like text corpus (standing in for the Project
// Gutenberg data of Section VI) and multi-job arrival patterns
// (Section V-B's 10 jobs with exponential inter-arrival times).
package workload

import (
	"bytes"
	"fmt"
	"math"

	"degradedfirst/internal/stats"
)

// corpusVocabulary is a base vocabulary; word frequency follows a Zipf-like
// distribution so WordCount/Grep behave like they would on real text.
var _vocabulary = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"at", "be", "this", "have", "from", "or", "one", "had", "by", "word",
	"but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their", "if",
	"will", "up", "other", "about", "out", "many", "then", "them", "these", "so",
	"some", "her", "would", "make", "like", "him", "into", "time", "has", "look",
	"two", "more", "write", "go", "see", "number", "no", "way", "could", "people",
	"my", "than", "first", "water", "been", "call", "who", "oil", "its", "now",
	"find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
	"gutenberg", "whale", "ocean", "ship", "captain", "storm", "harbor", "voyage",
}

// CorpusOptions configures text generation.
type CorpusOptions struct {
	// Bytes is the approximate output size; the result is at least this
	// long (trimmed to exactly this length).
	Bytes int
	// WordsPerLine is the mean words per line (lines vary ±50%).
	WordsPerLine int
	// Seed drives the generator.
	Seed int64
}

// GenerateCorpus produces deterministic English-like text of exactly
// opts.Bytes bytes: Zipf-distributed words, newline-separated lines.
func GenerateCorpus(opts CorpusOptions) ([]byte, error) {
	if opts.Bytes <= 0 {
		return nil, fmt.Errorf("workload: corpus size must be positive, got %d", opts.Bytes)
	}
	if opts.WordsPerLine <= 0 {
		opts.WordsPerLine = 10
	}
	rng := stats.NewRNG(opts.Seed)
	var buf bytes.Buffer
	buf.Grow(opts.Bytes + 64)
	for buf.Len() < opts.Bytes {
		lineWords := 1 + int(float64(opts.WordsPerLine)*(0.5+rng.Float64()))
		for w := 0; w < lineWords; w++ {
			if w > 0 {
				buf.WriteByte(' ')
			}
			buf.WriteString(_vocabulary[zipfIndex(rng, len(_vocabulary))])
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()[:opts.Bytes], nil
}

// zipfIndex draws an index in [0, n) with probability proportional to
// 1/(i+1) — a simple Zipf(1) law via inverse-CDF on the harmonic sum.
func zipfIndex(rng *stats.RNG, n int) int {
	h := harmonic(n)
	target := rng.Float64() * h
	var acc float64
	for i := 0; i < n; i++ {
		acc += 1 / float64(i+1)
		if acc >= target {
			return i
		}
	}
	return n - 1
}

func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// GenerateBlockAlignedCorpus produces exactly numBlocks * blockSize bytes
// of text in which no line crosses a block boundary (blocks are padded
// with newlines). Hadoop's input splits re-align records across block
// boundaries; minimr's mappers see raw blocks, so the corpus guarantees
// alignment instead. Empty lines from the padding are skipped by both the
// reference counters and the jobs.
func GenerateBlockAlignedCorpus(numBlocks, blockSize int, seed int64) ([]byte, error) {
	if numBlocks <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("workload: numBlocks and blockSize must be positive")
	}
	if blockSize < 64 {
		return nil, fmt.Errorf("workload: blockSize %d too small for text lines", blockSize)
	}
	rng := stats.NewRNG(seed)
	out := make([]byte, 0, numBlocks*blockSize)
	var line bytes.Buffer
	for b := 0; b < numBlocks; b++ {
		used := 0
		for {
			line.Reset()
			words := 3 + rng.Intn(12)
			for w := 0; w < words; w++ {
				if w > 0 {
					line.WriteByte(' ')
				}
				line.WriteString(_vocabulary[zipfIndex(rng, len(_vocabulary))])
			}
			line.WriteByte('\n')
			if used+line.Len() > blockSize {
				break
			}
			out = append(out, line.Bytes()...)
			used += line.Len()
		}
		for ; used < blockSize; used++ {
			out = append(out, '\n')
		}
	}
	return out, nil
}

// CountWords returns the reference word counts of a corpus — ground truth
// for validating MapReduce outputs.
func CountWords(text []byte) map[string]int {
	counts := make(map[string]int)
	for _, w := range bytes.Fields(text) {
		counts[string(w)]++
	}
	return counts
}

// CountLines returns the reference per-line counts of a corpus.
func CountLines(text []byte) map[string]int {
	counts := make(map[string]int)
	for _, line := range bytes.Split(text, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		counts[string(line)]++
	}
	return counts
}

// GrepLines returns the lines containing the given word, with
// multiplicity — ground truth for the Grep job.
func GrepLines(text []byte, word string) map[string]int {
	counts := make(map[string]int)
	needle := []byte(word)
	for _, line := range bytes.Split(text, []byte{'\n'}) {
		if len(line) == 0 || !bytes.Contains(line, needle) {
			continue
		}
		counts[string(line)]++
	}
	return counts
}

// ZipfSkewness returns the ratio between the most frequent and the median
// word frequency of a corpus; used by tests to verify the distribution is
// actually skewed (real-text-like), not uniform.
func ZipfSkewness(text []byte) float64 {
	counts := CountWords(text)
	if len(counts) == 0 {
		return 0
	}
	freqs := make([]float64, 0, len(counts))
	//lint:ignore maporder freqs is reduced by max and median, both order-insensitive
	for _, c := range counts {
		freqs = append(freqs, float64(c))
	}
	maxF := 0.0
	for _, f := range freqs {
		if f > maxF {
			maxF = f
		}
	}
	med := stats.Median(freqs)
	if med == 0 || math.IsNaN(med) {
		return 0
	}
	return maxF / med
}
