package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"degradedfirst/internal/mapred"
)

func TestGenerateCorpusExactSize(t *testing.T) {
	for _, size := range []int{1, 100, 4096, 100000} {
		text, err := GenerateCorpus(CorpusOptions{Bytes: size, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(text) != size {
			t.Fatalf("size %d: got %d bytes", size, len(text))
		}
	}
	if _, err := GenerateCorpus(CorpusOptions{Bytes: 0}); err == nil {
		t.Fatal("zero size must fail")
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a, _ := GenerateCorpus(CorpusOptions{Bytes: 10000, Seed: 7})
	b, _ := GenerateCorpus(CorpusOptions{Bytes: 10000, Seed: 7})
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give same corpus")
	}
	c, _ := GenerateCorpus(CorpusOptions{Bytes: 10000, Seed: 8})
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestCorpusLooksLikeText(t *testing.T) {
	text, err := GenerateCorpus(CorpusOptions{Bytes: 200000, Seed: 2, WordsPerLine: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text, []byte{'\n'}) {
		t.Fatal("corpus has no lines")
	}
	words := CountWords(text)
	if len(words) < 50 {
		t.Fatalf("vocabulary too small: %d", len(words))
	}
	// Zipf skew: the top word should dominate the median word.
	if skew := ZipfSkewness(text); skew < 5 {
		t.Fatalf("corpus not skewed enough (max/median = %.1f)", skew)
	}
	if words["the"] < words["whale"] {
		t.Fatal("frequency order violates Zipf rank")
	}
}

func TestReferenceCounters(t *testing.T) {
	text := []byte("the whale\nthe whale\nship ahoy\n")
	wc := CountWords(text)
	if wc["the"] != 2 || wc["whale"] != 2 || wc["ship"] != 1 || wc["ahoy"] != 1 {
		t.Fatalf("CountWords = %v", wc)
	}
	lc := CountLines(text)
	if lc["the whale"] != 2 || lc["ship ahoy"] != 1 || len(lc) != 2 {
		t.Fatalf("CountLines = %v", lc)
	}
	gl := GrepLines(text, "whale")
	if gl["the whale"] != 2 || len(gl) != 1 {
		t.Fatalf("GrepLines = %v", gl)
	}
	if got := GrepLines(text, "submarine"); len(got) != 0 {
		t.Fatalf("GrepLines miss = %v", got)
	}
	if ZipfSkewness(nil) != 0 {
		t.Fatal("empty skewness must be 0")
	}
}

func TestGenerateMultiJob(t *testing.T) {
	tpl := mapred.DefaultJob()
	tpl.NumBlocks = 300
	jobs, err := GenerateMultiJob(MultiJobOptions{
		NumJobs:          10,
		MeanInterArrival: 120,
		Template:         tpl,
		VaryBlocks:       3,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 10 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[0].SubmitAt != 0 {
		t.Fatal("first job must arrive at 0")
	}
	varied := false
	for i, j := range jobs {
		if i > 0 && j.SubmitAt < jobs[i-1].SubmitAt {
			t.Fatal("arrivals must be nondecreasing")
		}
		if j.NumBlocks < 100 || j.NumBlocks > 300 {
			t.Fatalf("job %d blocks %d outside [100,300]", i, j.NumBlocks)
		}
		if j.NumBlocks != 300 {
			varied = true
		}
		if j.Name == "" {
			t.Fatal("job must be named")
		}
	}
	if !varied {
		t.Fatal("VaryBlocks had no effect")
	}
}

func TestGenerateMultiJobErrors(t *testing.T) {
	if _, err := GenerateMultiJob(MultiJobOptions{NumJobs: 0}); err == nil {
		t.Fatal("zero jobs must fail")
	}
	if _, err := GenerateMultiJob(MultiJobOptions{NumJobs: 1, MeanInterArrival: -1}); err == nil {
		t.Fatal("negative inter-arrival must fail")
	}
}

func TestMultiJobDeterministicProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		opts := MultiJobOptions{
			NumJobs:          1 + int(n)%12,
			MeanInterArrival: 60,
			Template:         mapred.DefaultJob(),
			Seed:             seed,
		}
		a, err1 := GenerateMultiJob(opts)
		b, err2 := GenerateMultiJob(opts)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGenerateStorm(t *testing.T) {
	tpl := mapred.DefaultJob()
	tpl.NumBlocks = 4
	jobs, err := GenerateStorm(StormOptions{
		NumJobs: 200,
		Tenants: []TenantSpec{
			{Name: "alpha", Weight: 4, Share: 0.5},
			{Name: "beta", Weight: 2, Share: 0.3},
			{Name: "gamma", Weight: 1, Share: 0.2},
		},
		MeanInterArrival: 0.5,
		Template:         tpl,
		VaryBlocks:       4,
		DeadlineSlack:    60,
		Seed:             11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	counts := map[string]int{}
	for i, j := range jobs {
		if i > 0 && j.SubmitAt < jobs[i-1].SubmitAt {
			t.Fatal("arrivals must be nondecreasing")
		}
		if j.Tenant == "" || j.Name == "" {
			t.Fatalf("job %d missing tenant/name: %+v", i, j)
		}
		counts[j.Tenant]++
		if j.NumBlocks < 1 || j.NumBlocks > 4 {
			t.Fatalf("job %d blocks %d outside [1,4]", i, j.NumBlocks)
		}
		if j.Deadline < j.SubmitAt+30 || j.Deadline > j.SubmitAt+90 {
			t.Fatalf("job %d deadline %v outside slack window of %v", i, j.Deadline, j.SubmitAt)
		}
		switch j.Tenant {
		case "alpha":
			if j.Weight != 4 {
				t.Fatalf("alpha weight = %v", j.Weight)
			}
		case "beta", "gamma":
		default:
			t.Fatalf("unknown tenant %q", j.Tenant)
		}
	}
	// All tenants submit, with share order roughly respected over 200 draws.
	if counts["alpha"] == 0 || counts["beta"] == 0 || counts["gamma"] == 0 {
		t.Fatalf("tenant draw skipped someone: %v", counts)
	}
	if counts["alpha"] < counts["gamma"] {
		t.Fatalf("share weighting inverted: %v", counts)
	}

	// Determinism.
	again, err := GenerateStorm(StormOptions{
		NumJobs:          200,
		Tenants:          []TenantSpec{{Name: "alpha", Weight: 4, Share: 0.5}, {Name: "beta", Weight: 2, Share: 0.3}, {Name: "gamma", Weight: 1, Share: 0.2}},
		MeanInterArrival: 0.5,
		Template:         tpl,
		VaryBlocks:       4,
		DeadlineSlack:    60,
		Seed:             11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("job %d not deterministic", i)
		}
	}
}

func TestGenerateStormErrors(t *testing.T) {
	tenants := []TenantSpec{{Name: "a"}}
	if _, err := GenerateStorm(StormOptions{NumJobs: 0, Tenants: tenants}); err == nil {
		t.Fatal("zero jobs must fail")
	}
	if _, err := GenerateStorm(StormOptions{NumJobs: 1}); err == nil {
		t.Fatal("no tenants must fail")
	}
	if _, err := GenerateStorm(StormOptions{NumJobs: 1, Tenants: []TenantSpec{{}}}); err == nil {
		t.Fatal("unnamed tenant must fail")
	}
	if _, err := GenerateStorm(StormOptions{NumJobs: 1, Tenants: tenants, MeanInterArrival: -1}); err == nil {
		t.Fatal("negative inter-arrival must fail")
	}
	if _, err := GenerateStorm(StormOptions{NumJobs: 1, Tenants: tenants, DeadlineSlack: -1}); err == nil {
		t.Fatal("negative slack must fail")
	}
}

func TestGenerateBlockAlignedCorpus(t *testing.T) {
	const blocks, bs = 8, 512
	text, err := GenerateBlockAlignedCorpus(blocks, bs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) != blocks*bs {
		t.Fatalf("size %d, want %d", len(text), blocks*bs)
	}
	// No line crosses a block boundary: the byte before each boundary is a
	// newline (blocks are newline-padded).
	for b := 1; b <= blocks; b++ {
		if text[b*bs-1] != '\n' {
			t.Fatalf("block %d does not end on a line boundary", b)
		}
	}
	// Per-block word counts sum to the whole-corpus count.
	whole := CountWords(text)
	merged := map[string]int{}
	for b := 0; b < blocks; b++ {
		for w, c := range CountWords(text[b*bs : (b+1)*bs]) {
			merged[w] += c
		}
	}
	if len(whole) != len(merged) {
		t.Fatalf("per-block counting diverges: %d vs %d words", len(merged), len(whole))
	}
	for w, c := range whole {
		if merged[w] != c {
			t.Fatalf("word %q: %d vs %d", w, merged[w], c)
		}
	}
	// Determinism.
	again, _ := GenerateBlockAlignedCorpus(blocks, bs, 3)
	if !bytes.Equal(text, again) {
		t.Fatal("not deterministic")
	}
}

func TestGenerateBlockAlignedCorpusErrors(t *testing.T) {
	if _, err := GenerateBlockAlignedCorpus(0, 512, 1); err == nil {
		t.Fatal("zero blocks must fail")
	}
	if _, err := GenerateBlockAlignedCorpus(1, 0, 1); err == nil {
		t.Fatal("zero block size must fail")
	}
	if _, err := GenerateBlockAlignedCorpus(1, 32, 1); err == nil {
		t.Fatal("too-small block size must fail")
	}
}
