// Package minimr is a real-execution MapReduce engine over the in-memory
// erasure-coded DFS: map and reduce functions actually run on real bytes,
// degraded reads genuinely reconstruct lost blocks with Reed-Solomon
// decoding, and the shuffle carries real intermediate key-value data.
//
// It is this reproduction's substitute for the paper's Hadoop 0.22.0 +
// HDFS-RAID testbed (Section VI): data transfer and CPU time are charged
// on a virtual clock (the same discrete-event engine and network model as
// the simulator), calibrated so per-task times match the paper's testbed,
// while all data-path computation is real. See DESIGN.md for the
// substitution rationale.
package minimr

import (
	"errors"
	"fmt"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// KeyValue is one intermediate or output record.
type KeyValue struct {
	Key, Value string
}

// Mapper processes one input block and emits intermediate records.
type Mapper func(block []byte, emit func(key, value string))

// Reducer processes one key's values and emits output records.
type Reducer func(key string, values []string, emit func(key, value string))

// Job is one MapReduce job over a DFS file.
type Job struct {
	// Name labels the job.
	Name string
	// Input is the DFS file name holding the job's input.
	Input string
	// Map and Reduce are the job's real functions.
	Map    Mapper
	Reduce Reducer
	// NumReducers is the reduce task count (must be positive when Reduce
	// is set; 0 with a nil Reduce makes a map-only job).
	NumReducers int
	// MapCost charges CPU seconds per map task: Fixed + PerMB * input MB.
	MapCost Cost
	// ReduceCost charges CPU seconds per reduce task: Fixed + PerMB *
	// received shuffle MB.
	ReduceCost Cost
	// SubmitAt is the submission time (FIFO order follows slice order; the
	// engine validates that SubmitAt is nondecreasing).
	SubmitAt float64
}

// Cost is a linear virtual-CPU-time model.
type Cost struct {
	Fixed float64
	PerMB float64
}

// Seconds returns the cost of processing the given byte volume.
func (c Cost) Seconds(bytes float64) float64 {
	return c.Fixed + c.PerMB*bytes/1e6
}

// Options configures the engine around a pre-populated DFS.
type Options struct {
	// Scheduler picks the algorithm (sched.KindLF/KindBDF/KindEDF).
	Scheduler sched.Kind
	// RackBps, NodeBps, CoreBps and NetMode configure the network model.
	RackBps, NodeBps, CoreBps float64
	NetMode                   netsim.Mode
	// SourceStrategy picks degraded-read sources (default RandomK).
	SourceStrategy dfs.SelectionStrategy
	// HeartbeatInterval defaults to 3 s.
	HeartbeatInterval float64
	// OutOfBandHeartbeats triggers immediate heartbeats on task completion.
	OutOfBandHeartbeats bool
	// Seed drives task-placement randomness (degraded source picks).
	Seed int64
	// MaxSimTime aborts runaway runs (default 1e7 virtual seconds).
	MaxSimTime float64
	// Trace receives the run's structured lifecycle events (nil = no
	// tracing); TraceLabel stamps each event's Run field so several runs
	// can share one sink.
	Trace      trace.Sink
	TraceLabel string

	// TraceFlowRates additionally emits a flow-rate event for every
	// bandwidth reallocation. High-volume; off by default.
	TraceFlowRates bool
}

func (o *Options) validate() error {
	if o.Scheduler == 0 {
		o.Scheduler = sched.KindLF
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 3
	}
	if o.SourceStrategy == 0 {
		o.SourceStrategy = dfs.RandomK
	}
	if o.NetMode == 0 {
		o.NetMode = netsim.FluidFairSharing
	}
	if o.MaxSimTime <= 0 {
		o.MaxSimTime = 1e7
	}
	if o.RackBps < 0 || o.NodeBps < 0 || o.CoreBps < 0 {
		return errors.New("minimr: negative bandwidth")
	}
	return nil
}

func (j *Job) validate() error {
	if j.Input == "" {
		return fmt.Errorf("minimr: job %q has no input", j.Name)
	}
	if j.Map == nil {
		return fmt.Errorf("minimr: job %q has no mapper", j.Name)
	}
	if j.Reduce == nil && j.NumReducers > 0 {
		return fmt.Errorf("minimr: job %q has reducers but no reduce function", j.Name)
	}
	if j.Reduce != nil && j.NumReducers <= 0 {
		return fmt.Errorf("minimr: job %q has a reduce function but no reducers", j.Name)
	}
	if j.SubmitAt < 0 {
		return fmt.Errorf("minimr: job %q has negative submit time", j.Name)
	}
	if j.MapCost.Fixed < 0 || j.MapCost.PerMB < 0 || j.ReduceCost.Fixed < 0 || j.ReduceCost.PerMB < 0 {
		return fmt.Errorf("minimr: job %q has negative costs", j.Name)
	}
	return nil
}

// Report is the outcome of one engine run: the simulator-style per-job
// results plus each job's real output records.
type Report struct {
	Scheduler string
	Failed    []topology.NodeID
	Jobs      []mapred.JobResult
	// Outputs[i] is job i's final reduce output (or map output for
	// map-only jobs), merged across reduce tasks.
	Outputs []map[string]string
	// Makespan is when the last job finished.
	Makespan float64
	// BytesMoved is the total network volume.
	BytesMoved float64
}
