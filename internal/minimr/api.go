// Package minimr is a real-execution MapReduce engine over the in-memory
// erasure-coded DFS: map and reduce functions actually run on real bytes,
// degraded reads genuinely reconstruct lost blocks with Reed-Solomon
// decoding, and the shuffle carries real intermediate key-value data.
//
// It is this reproduction's substitute for the paper's Hadoop 0.22.0 +
// HDFS-RAID testbed (Section VI): data transfer and CPU time are charged
// on a virtual clock (the same discrete-event engine and network model as
// the simulator), calibrated so per-task times match the paper's testbed,
// while all data-path computation is real. See DESIGN.md for the
// substitution rationale.
package minimr

import (
	"errors"
	"fmt"
	"math"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

// KeyValue is one intermediate or output record.
type KeyValue struct {
	Key, Value string
}

// Mapper processes one input block and emits intermediate records.
type Mapper func(block []byte, emit func(key, value string))

// Reducer processes one key's values and emits output records.
type Reducer func(key string, values []string, emit func(key, value string))

// Job is one MapReduce job over a DFS file.
type Job struct {
	// Name labels the job.
	Name string
	// Input is the DFS file name holding the job's input.
	Input string
	// Map and Reduce are the job's real functions.
	Map    Mapper
	Reduce Reducer
	// NumReducers is the reduce task count (must be positive when Reduce
	// is set; 0 with a nil Reduce makes a map-only job).
	NumReducers int
	// MapCost charges CPU seconds per map task: Fixed + PerMB * input MB.
	MapCost Cost
	// ReduceCost charges CPU seconds per reduce task: Fixed + PerMB *
	// received shuffle MB.
	ReduceCost Cost
	// SubmitAt is the submission time (FIFO order follows slice order; the
	// engine validates that SubmitAt is nondecreasing).
	SubmitAt float64
	// Tenant, Weight and Deadline feed the job-level scheduling
	// policies (Options.JobSched): fair-share weighting, per-tenant
	// quotas, EDF deadlines. Optional; zero values mean an anonymous
	// tenant, weight 1, and no deadline.
	Tenant   string
	Weight   float64
	Deadline float64
}

// Cost is a linear virtual-CPU-time model.
type Cost struct {
	Fixed float64
	PerMB float64
}

// Seconds returns the cost of processing the given byte volume.
func (c Cost) Seconds(bytes float64) float64 {
	return c.Fixed + c.PerMB*bytes/1e6
}

// Options configures the engine around a pre-populated DFS.
type Options struct {
	// Scheduler picks the algorithm (sched.KindLF/KindBDF/KindEDF).
	Scheduler sched.Kind
	// JobSched selects the job-level scheduling policy (which jobs may
	// take slots, above the task-placement Scheduler). The zero value
	// is the FIFO queue.
	JobSched jobsched.Config
	// RackBps, NodeBps, CoreBps and NetMode configure the network model.
	RackBps, NodeBps, CoreBps float64
	NetMode                   netsim.Mode
	// SourceStrategy picks degraded-read sources (default RandomK).
	SourceStrategy dfs.SelectionStrategy
	// Hedge configures redundant degraded-read fan-ins (k+Δ races,
	// deadline hedging). The zero value disables hedging and keeps runs
	// bit-identical to the unhedged engine.
	Hedge runtime.HedgePolicy
	// Repair configures the background repair subsystem: real block
	// reconstructions over the DFS, competing with foreground traffic.
	// The zero value disables it and keeps runs bit-identical to the
	// healer-free engine. When the throttle is a RateFraction and no
	// LinkBps is set, the node (falling back to rack) bandwidth is the
	// reference link capacity.
	Repair repair.Config
	// HeartbeatInterval defaults to 3 s.
	HeartbeatInterval float64
	// OutOfBandHeartbeats triggers immediate heartbeats on task completion.
	OutOfBandHeartbeats bool
	// Seed drives task-placement randomness (degraded source picks).
	Seed int64
	// MaxSimTime aborts runaway runs (default 1e7 virtual seconds).
	MaxSimTime float64
	// Trace receives the run's structured lifecycle events (nil = no
	// tracing); TraceLabel stamps each event's Run field so several runs
	// can share one sink.
	Trace      trace.Sink
	TraceLabel string

	// TraceFlowRates additionally emits a flow-rate event for every
	// bandwidth reallocation. High-volume; off by default.
	TraceFlowRates bool
}

// Validation errors. Each failure mode has a sentinel so callers —
// including the distributed runtime's master, which validates jobs at
// submission — can branch with errors.Is instead of matching message
// strings. Returned errors wrap the sentinel with the offending option
// or job name.
var (
	// ErrNegativeBandwidth rejects a negative or NaN RackBps/NodeBps/CoreBps.
	ErrNegativeBandwidth = errors.New("minimr: bandwidth must be nonnegative")
	// ErrBadHeartbeat rejects a negative or NaN HeartbeatInterval (zero
	// selects the 3 s default).
	ErrBadHeartbeat = errors.New("minimr: heartbeat interval must be positive")
	// ErrNoJobs rejects an empty job list.
	ErrNoJobs = errors.New("minimr: no jobs")
	// ErrNoInput rejects a job without an input file.
	ErrNoInput = errors.New("minimr: job has no input")
	// ErrNoMapper rejects a job without a map function.
	ErrNoMapper = errors.New("minimr: job has no mapper")
	// ErrReducersWithoutReduce rejects NumReducers > 0 with a nil Reduce.
	ErrReducersWithoutReduce = errors.New("minimr: job has reducers but no reduce function")
	// ErrReduceWithoutReducers rejects a non-nil Reduce with NumReducers <= 0.
	ErrReduceWithoutReducers = errors.New("minimr: job has a reduce function but no reducers")
	// ErrNegativeReducers rejects NumReducers < 0 (map-only jobs use 0).
	ErrNegativeReducers = errors.New("minimr: negative reducer count")
	// ErrBadSubmitTime rejects a negative or NaN SubmitAt.
	ErrBadSubmitTime = errors.New("minimr: negative submit time")
	// ErrNegativeCost rejects negative MapCost/ReduceCost components.
	ErrNegativeCost = errors.New("minimr: negative cost")
	// ErrBadWeight rejects a negative or NaN fair-share Weight.
	ErrBadWeight = errors.New("minimr: invalid job weight")
	// ErrBadDeadline rejects a negative or NaN Deadline.
	ErrBadDeadline = errors.New("minimr: invalid job deadline")
	// ErrSubmitOrder rejects a job list whose SubmitAt values decrease:
	// the FIFO queue follows slice order, so out-of-order times would
	// desynchronize queue position from submission time.
	ErrSubmitOrder = errors.New("minimr: jobs must be submitted in nondecreasing SubmitAt order")
)

// Validate normalizes zero-valued options to their defaults and rejects
// unusable values with a typed error.
func (o *Options) Validate() error {
	if o.Scheduler == 0 {
		o.Scheduler = sched.KindLF
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 3
	}
	if o.HeartbeatInterval < 0 || math.IsNaN(o.HeartbeatInterval) {
		return fmt.Errorf("%w, got %v", ErrBadHeartbeat, o.HeartbeatInterval)
	}
	if o.SourceStrategy == 0 {
		o.SourceStrategy = dfs.RandomK
	}
	if o.NetMode == 0 {
		o.NetMode = netsim.FluidFairSharing
	}
	if o.MaxSimTime <= 0 {
		o.MaxSimTime = 1e7
	}
	for _, bps := range []float64{o.RackBps, o.NodeBps, o.CoreBps} {
		if bps < 0 || math.IsNaN(bps) {
			return fmt.Errorf("%w, got %v", ErrNegativeBandwidth, bps)
		}
	}
	if err := o.Hedge.Validate(); err != nil {
		return fmt.Errorf("minimr: %w", err)
	}
	if err := o.Repair.Validate(); err != nil {
		return fmt.Errorf("minimr: %w", err)
	}
	if o.Repair.Active() && o.Repair.RateBps == 0 && o.Repair.LinkBps == 0 {
		if o.NodeBps > 0 {
			o.Repair.LinkBps = o.NodeBps
		} else {
			o.Repair.LinkBps = o.RackBps
		}
	}
	return o.JobSched.Validate()
}

// Validate rejects a malformed job with a typed error.
func (j *Job) Validate() error {
	if j.Input == "" {
		return fmt.Errorf("%w: job %q", ErrNoInput, j.Name)
	}
	if j.Map == nil {
		return fmt.Errorf("%w: job %q", ErrNoMapper, j.Name)
	}
	if j.NumReducers < 0 {
		return fmt.Errorf("%w: job %q has %d", ErrNegativeReducers, j.Name, j.NumReducers)
	}
	if j.Reduce == nil && j.NumReducers > 0 {
		return fmt.Errorf("%w: job %q", ErrReducersWithoutReduce, j.Name)
	}
	if j.Reduce != nil && j.NumReducers <= 0 {
		return fmt.Errorf("%w: job %q", ErrReduceWithoutReducers, j.Name)
	}
	if j.SubmitAt < 0 || math.IsNaN(j.SubmitAt) {
		return fmt.Errorf("%w: job %q at %v", ErrBadSubmitTime, j.Name, j.SubmitAt)
	}
	if j.MapCost.Fixed < 0 || j.MapCost.PerMB < 0 || j.ReduceCost.Fixed < 0 || j.ReduceCost.PerMB < 0 {
		return fmt.Errorf("%w: job %q", ErrNegativeCost, j.Name)
	}
	if j.Weight < 0 || math.IsNaN(j.Weight) {
		return fmt.Errorf("%w: job %q has %v", ErrBadWeight, j.Name, j.Weight)
	}
	if j.Deadline < 0 || math.IsNaN(j.Deadline) {
		return fmt.Errorf("%w: job %q has %v", ErrBadDeadline, j.Name, j.Deadline)
	}
	return nil
}

// ValidateJobs validates every job plus the cross-job constraint that
// SubmitAt is nondecreasing in slice (FIFO) order.
func ValidateJobs(jobs []Job) error {
	if len(jobs) == 0 {
		return ErrNoJobs
	}
	for i := range jobs {
		if err := jobs[i].Validate(); err != nil {
			return err
		}
		if i > 0 && jobs[i].SubmitAt < jobs[i-1].SubmitAt {
			return fmt.Errorf("%w: job %q at %v after %q at %v",
				ErrSubmitOrder, jobs[i].Name, jobs[i].SubmitAt, jobs[i-1].Name, jobs[i-1].SubmitAt)
		}
	}
	return nil
}

// Report is the outcome of one engine run: the simulator-style per-job
// results plus each job's real output records.
type Report struct {
	Scheduler string
	Failed    []topology.NodeID
	Jobs      []mapred.JobResult
	// Outputs[i] is job i's final reduce output (or map output for
	// map-only jobs), merged across reduce tasks.
	Outputs []map[string]string
	// Makespan is when the last job finished.
	Makespan float64
	// BytesMoved is the total network volume of completed transfers.
	BytesMoved float64
	// WastedBytes is the extra volume moved by redundant degraded-read
	// flows cancelled after the first k completed (hedged runs only).
	WastedBytes float64
	// Repair holds the background healer's metrics; nil when the run
	// emitted no repair events (repair disabled, or no failures).
	Repair *runtime.RepairStats
}
