package minimr

import (
	"bytes"
	"strconv"

	"degradedfirst/internal/netsim"
)

// The paper's testbed (Section VI) uses 64 MB blocks, 1 Gbps switches, and
// 15 GB of text (240 blocks). The reproduction scales all data volumes by
// 1024 so runs are laptop-sized, and scales bandwidth by the same factor so
// every transfer takes the same virtual time as on the testbed. CPU cost
// rates are calibrated per *real* megabyte from Table I's normal-map
// runtimes, then multiplied by the scale factor, so one scaled block costs
// exactly what one real block cost.
const (
	// TestbedScaleFactor shrinks data volumes relative to the testbed.
	TestbedScaleFactor = 1024
	// TestbedBlockSize is the scaled block size (64 MB / 1024 = 64 KB).
	TestbedBlockSize = 64 * 1024 * 1024 / TestbedScaleFactor
	// TestbedRackBps is the scaled switch bandwidth (1 Gbps / 1024).
	TestbedRackBps = netsim.Gbps / TestbedScaleFactor
	// TestbedNumBlocks is the testbed's input size in blocks (15 GB).
	TestbedNumBlocks = 240
)

// calibrated converts a per-real-MB CPU rate into the scaled Cost.
func calibrated(secPerRealMB float64) Cost {
	return Cost{PerMB: secPerRealMB * TestbedScaleFactor}
}

// Per-real-MB map rates derived from Table I's normal-map runtimes over
// 64 MB blocks: WordCount 30.94 s, Grep 11.69 s, LineCount 35.91 s.
var (
	_wordCountMapCost = calibrated(30.94 / 64)
	_grepMapCost      = calibrated(11.69 / 64)
	_lineCountMapCost = calibrated(35.91 / 64)
	// Reduce CPU rates per real MB of shuffled data (the bulk of the
	// paper's reduce runtimes is waiting for the map phase, which emerges
	// from the engine; this is only the compute tail).
	_sumReduceCost = calibrated(0.04)
)

// splitLines yields the non-empty lines of a block, trimming the newline
// padding that block-aligned corpora carry.
func splitLines(block []byte) [][]byte {
	var lines [][]byte
	for _, line := range bytes.Split(block, []byte{'\n'}) {
		line = bytes.Trim(line, "\x00 ")
		if len(line) > 0 {
			lines = append(lines, line)
		}
	}
	return lines
}

// sumReducer adds up numeric values for a key ("1" counts in all three
// jobs).
func sumReducer(key string, values []string, emit func(k, v string)) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
}

// WordCountJob builds the paper's WordCount: map tokenizes words and emits
// (word, 1); reduce sums the counts.
func WordCountJob(input string, reducers int) Job {
	return Job{
		Name:  "WordCount",
		Input: input,
		Map: func(block []byte, emit func(k, v string)) {
			for _, w := range bytes.Fields(bytes.Trim(block, "\x00")) {
				emit(string(w), "1")
			}
		},
		Reduce:      sumReducer,
		NumReducers: reducers,
		MapCost:     _wordCountMapCost,
		ReduceCost:  _sumReduceCost,
	}
}

// GrepJob builds the paper's Grep: map emits the lines containing the
// given word; reduce aggregates their occurrence counts.
func GrepJob(input, word string, reducers int) Job {
	needle := []byte(word)
	return Job{
		Name:  "Grep",
		Input: input,
		Map: func(block []byte, emit func(k, v string)) {
			for _, line := range splitLines(block) {
				if bytes.Contains(line, needle) {
					emit(string(line), "1")
				}
			}
		},
		Reduce:      sumReducer,
		NumReducers: reducers,
		MapCost:     _grepMapCost,
		ReduceCost:  _sumReduceCost,
	}
}

// LineCountJob builds the paper's LineCount: like WordCount over whole
// lines — it shuffles more data than Grep.
func LineCountJob(input string, reducers int) Job {
	return Job{
		Name:  "LineCount",
		Input: input,
		Map: func(block []byte, emit func(k, v string)) {
			for _, line := range splitLines(block) {
				emit(string(line), "1")
			}
		},
		Reduce:      sumReducer,
		NumReducers: reducers,
		MapCost:     _lineCountMapCost,
		ReduceCost:  _sumReduceCost,
	}
}
