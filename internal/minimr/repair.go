// The real-bytes half of the background healer: repairs delegate to the
// DFS, which reconstructs lost blocks from real surviving shards and
// verifies them against ground truth before the placement moves. The
// runtime charges the source reads through the shared network model, so
// repair traffic genuinely competes with foreground jobs.

package minimr

import (
	"fmt"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/topology"
)

// ScanLostBlocks implements runtime.RepairBackend via dfs.FS.LostBlocks.
func (b *realBackend) ScanLostBlocks(failed []topology.NodeID) ([]repair.StripePlan, error) {
	return b.fs.LostBlocks(failed)
}

// PlanStripeRepair implements runtime.RepairBackend: a launch-time
// re-plan from the live placement.
func (b *realBackend) PlanStripeRepair(key repair.Key) (repair.StripePlan, error) {
	return b.fs.PlanStripeRepair(key)
}

// CommitRepair implements runtime.RepairBackend: reconstruct the block
// for real, move its placement, and report the foreground tasks whose
// input came back (native blocks of some job's input file only; parity
// repairs back no task).
func (b *realBackend) CommitRepair(key repair.Key, bp repair.BlockPlan) ([]runtime.RepairedTask, error) {
	block := erasure.BlockID{Stripe: key.Stripe, Index: bp.Index}
	if _, err := b.fs.RepairBlock(key.File, block, bp.Dest, bp.Sources); err != nil {
		return nil, fmt.Errorf("minimr: %w", err)
	}
	var refs []runtime.RepairedTask
	for j := range b.jobs {
		if b.jobs[j].Input != key.File {
			continue
		}
		for t, tb := range b.blocks[j] {
			if tb == block {
				// Keep the cached holder in step with the placement, so a
				// later non-degraded read charges its transfer from the
				// rebuilt copy, not the dead node.
				b.holders[j][t] = bp.Dest
				refs = append(refs, runtime.RepairedTask{Job: j, Task: t})
			}
		}
	}
	return refs, nil
}

// RepairBlockBytes implements runtime.RepairBackend.
func (b *realBackend) RepairBlockBytes() float64 { return float64(b.fs.BlockSize()) }
