package minimr

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Run executes the jobs over the (already-populated, possibly
// failure-injected) DFS and returns the report. The DFS's cluster provides
// topology, slots, and failure state; Run does not mutate the failure
// state itself — inject failures before calling (as the paper does by
// killing a slave before submitting jobs). The heartbeat-driven master
// loop is the shared cluster runtime, driven here by a real-bytes backend
// that reads blocks, reconstructs lost ones, and runs the real map and
// reduce functions.
func Run(fs *dfs.FS, opts Options, jobs []Job) (*Report, error) {
	return RunContext(context.Background(), fs, opts, jobs)
}

// RunContext is Run with cancellation: ctx aborts the run at the next
// heartbeat.
func RunContext(ctx context.Context, fs *dfs.FS, opts Options, jobs []Job) (*Report, error) {
	if fs == nil {
		return nil, fmt.Errorf("minimr: nil file system")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("minimr: no jobs")
	}
	for i := range jobs {
		if err := jobs[i].validate(); err != nil {
			return nil, err
		}
		if i > 0 && jobs[i].SubmitAt < jobs[i-1].SubmitAt {
			return nil, fmt.Errorf("minimr: job %q submitted before its predecessor", jobs[i].Name)
		}
		if _, err := fs.File(jobs[i].Input); err != nil {
			return nil, err
		}
	}

	cluster := fs.Cluster()
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    opts.NetMode,
		NodeBps: opts.NodeBps,
		RackBps: opts.RackBps,
		CoreBps: opts.CoreBps,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := opts.Scheduler.New(cluster.NumRacks())
	if err != nil {
		return nil, err
	}

	// EDF needs a degraded-read-time threshold; derive it from the code,
	// block size and rack bandwidth as in the analysis.
	threshold := 0.0
	if opts.RackBps > 0 {
		r := float64(cluster.NumRacks())
		threshold = (r - 1) / r * float64(fs.Code().K()) * float64(fs.BlockSize()) / opts.RackBps
	}
	meanMapCost := 0.0
	for i := range jobs {
		meanMapCost += jobs[i].MapCost.Seconds(float64(fs.BlockSize()))
	}
	meanMapCost /= float64(len(jobs))
	env := &sched.Env{
		Cluster:          cluster,
		DegradedReadTime: threshold,
		PerTaskTime: func(id topology.NodeID) float64 {
			return meanMapCost * cluster.Node(id).SpeedFactor
		},
	}

	backend := &realBackend{
		fs:      fs,
		cluster: cluster,
		opts:    opts,
		jobs:    jobs,
		rng:     stats.NewRNG(opts.Seed),
	}
	rjobs := make([]runtime.JobSpec, len(jobs))
	for i := range jobs {
		file, err := fs.File(jobs[i].Input)
		if err != nil {
			return nil, err
		}
		natives := file.NativeBlocks()
		tasks := make([]sched.TaskSpec, len(natives))
		holders := make([]topology.NodeID, len(natives))
		for t, b := range natives {
			holders[t] = file.Placement.Holder(b)
			tasks[t] = sched.TaskSpec{Block: b, Holder: holders[t]}
		}
		backend.blocks = append(backend.blocks, natives)
		backend.holders = append(backend.holders, holders)
		backend.bufs = append(backend.bufs, make([][]KeyValue, jobs[i].NumReducers))
		backend.outputs = append(backend.outputs, make(map[string]string))
		rjobs[i] = runtime.JobSpec{
			Name:        jobs[i].Name,
			SubmitAt:    jobs[i].SubmitAt,
			Tasks:       tasks,
			NumReducers: jobs[i].NumReducers,
		}
	}

	res, err := runtime.Run(runtime.Params{
		Name:                "minimr",
		Ctx:                 ctx,
		Engine:              eng,
		Cluster:             cluster,
		Net:                 net,
		Scheduler:           scheduler,
		Env:                 env,
		HeartbeatInterval:   opts.HeartbeatInterval,
		OutOfBandHeartbeats: opts.OutOfBandHeartbeats,
		MaxSimTime:          opts.MaxSimTime,
		Sink:                opts.Trace,
		Label:               opts.TraceLabel,
		TraceFlowRates:      opts.TraceFlowRates,
	}, backend, rjobs)
	if err != nil {
		return nil, err
	}

	return &Report{
		Scheduler:  res.Scheduler,
		Failed:     res.Failed,
		Jobs:       res.Jobs,
		Outputs:    backend.outputs,
		Makespan:   res.Makespan,
		BytesMoved: res.BytesMoved,
	}, nil
}

// realBackend is the real-bytes runtime backend: map inputs are read (or
// Reed-Solomon reconstructed) from the DFS, the real map and reduce
// functions run over real records, and task costs are calibrated from the
// processed byte counts.
type realBackend struct {
	fs      *dfs.FS
	cluster *topology.Cluster
	opts    Options
	jobs    []Job
	rng     *stats.RNG
	blocks  [][]erasure.BlockID
	holders [][]topology.NodeID
	// bufs[job][reducer] accumulates the real intermediate records
	// delivered by the shuffle.
	bufs    [][][]KeyValue
	outputs []map[string]string
}

func (b *realBackend) speed(id topology.NodeID) float64 {
	return b.cluster.Node(id).SpeedFactor
}

// PlanInput implements runtime.Backend: read the block (local, rack, or
// remote: one block transfer from the holder), or reconstruct it for real
// via a degraded read (k source transfers).
func (b *realBackend) PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]runtime.Transfer, any, error) {
	js := b.jobs[job]
	block := b.blocks[job][task]
	blockBytes := float64(b.fs.BlockSize())
	switch class {
	case sched.ClassNodeLocal, sched.ClassRackLocal, sched.ClassRemote:
		data, err := b.fs.ReadBlock(js.Input, block)
		if err != nil {
			return nil, nil, fmt.Errorf("minimr: reading %v: %w", block, err)
		}
		if class == sched.ClassNodeLocal {
			return nil, data, nil
		}
		return []runtime.Transfer{{Src: b.holders[job][task], Bytes: blockBytes}}, data, nil
	case sched.ClassDegraded:
		// Reconstruct for real (Reed-Solomon decode over the surviving
		// blocks), then charge the k transfers through the network model.
		data, sources, err := b.fs.DegradedRead(js.Input, block, node, b.opts.SourceStrategy, b.rng)
		if err != nil {
			return nil, nil, fmt.Errorf("minimr: degraded read of %v: %w", block, err)
		}
		transfers := make([]runtime.Transfer, len(sources))
		for i, src := range sources {
			transfers[i] = runtime.Transfer{Src: src.Node, Bytes: blockBytes}
		}
		return transfers, data, nil
	default:
		return nil, nil, fmt.Errorf("minimr: unknown class %v", class)
	}
}

// Execute implements runtime.Backend: run the real map function,
// partition its output, and charge the calibrated CPU time.
func (b *realBackend) Execute(job, task int, node topology.NodeID, input any) (float64, any) {
	js := b.jobs[job]
	data := input.([]byte)
	numR := js.NumReducers
	parts := make([]partition, numR)
	emit := func(k, v string) {
		kv := KeyValue{Key: k, Value: v}
		bytes := float64(len(k) + len(v) + 2)
		if numR == 0 {
			// Map-only job: map output is the job output.
			b.outputs[job][k] = v
			return
		}
		p := partitionOf(k, numR)
		parts[p].kvs = append(parts[p].kvs, kv)
		parts[p].bytes += bytes
	}
	js.Map(data, emit)
	dur := js.MapCost.Seconds(float64(len(data))) * b.speed(node)
	return dur, parts
}

// Partitions implements runtime.Backend: hand each partition's real bytes
// and records to the shuffle.
func (b *realBackend) Partitions(job, task int, output any) []runtime.Chunk {
	parts := output.([]partition)
	chunks := make([]runtime.Chunk, len(parts))
	for i, p := range parts {
		chunks[i] = runtime.Chunk{Bytes: p.bytes, Data: p.kvs}
	}
	return chunks
}

// Deliver implements runtime.Backend: buffer the received records for the
// reduce phase.
func (b *realBackend) Deliver(job, reducer int, c runtime.Chunk) {
	if kvs, ok := c.Data.([]KeyValue); ok {
		b.bufs[job][reducer] = append(b.bufs[job][reducer], kvs...)
	}
}

// ReduceDuration implements runtime.Backend: calibrated from the real
// shuffle volume received.
func (b *realBackend) ReduceDuration(job, reducer int, node topology.NodeID, receivedBytes float64) float64 {
	return b.jobs[job].ReduceCost.Seconds(receivedBytes) * b.speed(node)
}

// ReduceReset implements runtime.Backend: drop the records buffered on
// the failed node; the restarted reducer re-fetches everything.
func (b *realBackend) ReduceReset(job, reducer int) {
	b.bufs[job][reducer] = nil
}

// ReduceFinish implements runtime.Backend: run the real reduce function
// over the received records and merge its output into the job output.
func (b *realBackend) ReduceFinish(job, reducer int) {
	js := b.jobs[job]
	grouped := make(map[string][]string)
	for _, kv := range b.bufs[job][reducer] {
		grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := b.outputs[job]
	for _, k := range keys {
		js.Reduce(k, grouped[k], func(ok, ov string) { out[ok] = ov })
	}
}

type partition struct {
	kvs   []KeyValue
	bytes float64
}

func partitionOf(key string, numR int) int {
	h := fnv.New32a()
	//lint:ignore errsink hash.Hash.Write is documented to never return an error
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numR))
}
