package minimr

import (
	"fmt"
	"hash/fnv"
	"sort"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Run executes the jobs over the (already-populated, possibly
// failure-injected) DFS and returns the report. The DFS's cluster provides
// topology, slots, and failure state; Run does not mutate the failure
// state itself — inject failures before calling (as the paper does by
// killing a slave before submitting jobs).
func Run(fs *dfs.FS, opts Options, jobs []Job) (*Report, error) {
	if fs == nil {
		return nil, fmt.Errorf("minimr: nil file system")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("minimr: no jobs")
	}
	for i := range jobs {
		if err := jobs[i].validate(); err != nil {
			return nil, err
		}
		if i > 0 && jobs[i].SubmitAt < jobs[i-1].SubmitAt {
			return nil, fmt.Errorf("minimr: job %q submitted before its predecessor", jobs[i].Name)
		}
		if _, err := fs.File(jobs[i].Input); err != nil {
			return nil, err
		}
	}

	cluster := fs.Cluster()
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    opts.NetMode,
		NodeBps: opts.NodeBps,
		RackBps: opts.RackBps,
		CoreBps: opts.CoreBps,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := opts.Scheduler.New(cluster.NumRacks())
	if err != nil {
		return nil, err
	}

	e := &engine{
		fs:        fs,
		opts:      opts,
		eng:       eng,
		cluster:   cluster,
		net:       net,
		rng:       stats.NewRNG(opts.Seed),
		scheduler: scheduler,
		slaves:    make([]*slaveState, cluster.NumNodes()),
	}
	// EDF needs a degraded-read-time threshold; derive it from the code,
	// block size and rack bandwidth as in the analysis.
	threshold := 0.0
	if opts.RackBps > 0 {
		r := float64(cluster.NumRacks())
		threshold = (r - 1) / r * float64(fs.Code().K()) * float64(fs.BlockSize()) / opts.RackBps
	}
	meanMapCost := 0.0
	for i := range jobs {
		meanMapCost += jobs[i].MapCost.Seconds(float64(fs.BlockSize()))
	}
	meanMapCost /= float64(len(jobs))
	e.env = &sched.Env{
		Cluster:          cluster,
		DegradedReadTime: threshold,
		PerTaskTime: func(id topology.NodeID) float64 {
			return meanMapCost * cluster.Node(id).SpeedFactor
		},
	}
	for i := range e.slaves {
		node := cluster.Node(topology.NodeID(i))
		e.slaves[i] = &slaveState{freeMap: node.MapSlots, freeReduce: node.ReduceSlots}
	}

	for i := range jobs {
		js, err := e.newJobState(i, jobs[i])
		if err != nil {
			return nil, err
		}
		e.jobs = append(e.jobs, js)
		eng.Schedule(js.job.SubmitAt, func() { e.submit(js) })
	}
	for i := 0; i < cluster.NumNodes(); i++ {
		id := topology.NodeID(i)
		offset := opts.HeartbeatInterval * float64(i) / float64(cluster.NumNodes())
		eng.Schedule(offset, func() { e.heartbeat(id) })
	}

	eng.Run()
	if e.err != nil {
		return nil, e.err
	}
	if e.finished != len(e.jobs) {
		return nil, fmt.Errorf("minimr: drained with %d/%d jobs finished", e.finished, len(e.jobs))
	}

	rep := &Report{
		Scheduler:  scheduler.Name(),
		Failed:     cluster.FailedNodes(),
		BytesMoved: net.BytesMoved,
	}
	for _, js := range e.jobs {
		jr := mapred.JobResult{
			Name:           js.job.Name,
			SubmitTime:     js.job.SubmitAt,
			FirstMapLaunch: js.firstMapLaunch,
			MapPhaseEnd:    js.mapPhaseEnd,
			FinishTime:     js.finishTime,
			Tasks:          js.tasks,
			Reduces:        js.reduceRecs,
		}
		if jr.FinishTime > rep.Makespan {
			rep.Makespan = jr.FinishTime
		}
		rep.Jobs = append(rep.Jobs, jr)
		rep.Outputs = append(rep.Outputs, js.output)
	}
	return rep, nil
}

type slaveState struct {
	freeMap    int
	freeReduce int
	oobPending bool
}

type reducerState struct {
	js         *jobState
	idx        int
	node       topology.NodeID
	launched   bool
	launchTime float64
	received   int
	buf        []KeyValue // real intermediate records received
	bytes      float64    // shuffle volume received
	started    bool
	done       bool
}

type partition struct {
	kvs   []KeyValue
	bytes float64
}

type pendingShuffle struct {
	src topology.NodeID
	p   partition
}

type jobState struct {
	idx  int
	job  Job
	file string
	sj   *sched.Job

	blocks []sched.TaskSpec

	submitted bool
	finishedJ bool

	mapsCompleted  int
	firstMapLaunch float64
	mapPhaseEnd    float64
	finishTime     float64

	reducersAssigned int
	reducersDone     int
	reducers         []*reducerState
	pending          [][]pendingShuffle

	tasks      []mapred.TaskRecord
	reduceRecs []mapred.ReduceRecord
	output     map[string]string
}

func (j *jobState) totalMaps() int { return len(j.blocks) }

type engine struct {
	fs        *dfs.FS
	opts      Options
	eng       *sim.Engine
	cluster   *topology.Cluster
	net       *netsim.Net
	rng       *stats.RNG
	scheduler sched.Scheduler
	env       *sched.Env
	jobs      []*jobState
	slaves    []*slaveState
	finished  int
	err       error
}

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *engine) allDone() bool { return e.finished == len(e.jobs) }

func (e *engine) speed(id topology.NodeID) float64 { return e.cluster.Node(id).SpeedFactor }

func (e *engine) newJobState(idx int, job Job) (*jobState, error) {
	file, err := e.fs.File(job.Input)
	if err != nil {
		return nil, err
	}
	natives := file.NativeBlocks()
	js := &jobState{
		idx:            idx,
		job:            job,
		file:           job.Input,
		firstMapLaunch: -1,
		tasks:          make([]mapred.TaskRecord, len(natives)),
		reducers:       make([]*reducerState, job.NumReducers),
		pending:        make([][]pendingShuffle, job.NumReducers),
		output:         make(map[string]string),
	}
	for i, b := range natives {
		js.blocks = append(js.blocks, sched.TaskSpec{Block: b, Holder: file.Placement.Holder(b)})
		_ = i
	}
	for r := range js.reducers {
		js.reducers[r] = &reducerState{js: js, idx: r}
	}
	return js, nil
}

// submit finalizes the scheduler view at submission time: lost flags
// reflect the failure state when the job enters the queue.
func (e *engine) submit(js *jobState) {
	specs := make([]sched.TaskSpec, len(js.blocks))
	for i, s := range js.blocks {
		s.Lost = !e.cluster.Alive(s.Holder)
		specs[i] = s
	}
	js.sj = sched.NewJob(js.idx, specs)
	js.submitted = true
	e.env.Jobs = append(e.env.Jobs, js.sj)
}

func (e *engine) heartbeat(id topology.NodeID) {
	if e.err != nil || e.allDone() {
		return
	}
	if e.eng.Now() > e.opts.MaxSimTime {
		e.fail(fmt.Errorf("minimr: exceeded MaxSimTime %.0fs with %d/%d jobs finished",
			e.opts.MaxSimTime, e.finished, len(e.jobs)))
		return
	}
	if e.cluster.Alive(id) {
		e.serve(id)
	}
	e.eng.Schedule(e.opts.HeartbeatInterval, func() { e.heartbeat(id) })
}

func (e *engine) oobHeartbeat(id topology.NodeID) {
	slave := e.slaves[id]
	if slave.oobPending || e.err != nil || e.allDone() {
		return
	}
	slave.oobPending = true
	e.eng.Schedule(0, func() {
		slave.oobPending = false
		if e.err == nil && !e.allDone() && e.cluster.Alive(id) {
			e.serve(id)
		}
	})
}

func (e *engine) serve(id topology.NodeID) {
	slave := e.slaves[id]
	if slave.freeMap > 0 && len(e.env.Jobs) > 0 {
		for _, a := range e.scheduler.Assign(e.env, sched.Heartbeat{
			Now:          e.eng.Now(),
			Node:         id,
			FreeMapSlots: slave.freeMap,
		}) {
			e.launchMap(a, id)
		}
		kept := e.env.Jobs[:0]
		for _, j := range e.env.Jobs {
			if !j.Done() {
				kept = append(kept, j)
			}
		}
		e.env.Jobs = kept
	}
	for slave.freeReduce > 0 {
		r := e.nextReducer()
		if r == nil {
			break
		}
		e.launchReducer(r, id)
	}
}

func (e *engine) nextReducer() *reducerState {
	for _, js := range e.jobs {
		if !js.submitted || js.finishedJ {
			continue
		}
		if js.reducersAssigned < len(js.reducers) {
			return js.reducers[js.reducersAssigned]
		}
	}
	return nil
}

func (e *engine) launchMap(a sched.Assignment, id topology.NodeID) {
	js := e.jobs[a.Task.Job]
	now := e.eng.Now()
	slave := e.slaves[id]
	if slave.freeMap <= 0 {
		e.fail(fmt.Errorf("minimr: scheduler overcommitted node %d", id))
		return
	}
	slave.freeMap--
	if js.firstMapLaunch < 0 {
		js.firstMapLaunch = now
	}
	rec := &js.tasks[a.Task.Index]
	*rec = mapred.TaskRecord{
		Job:        js.idx,
		Task:       a.Task.Index,
		Class:      a.Class,
		Node:       id,
		LaunchTime: now,
	}
	block := a.Task.Block
	blockBytes := float64(e.fs.BlockSize())

	switch a.Class {
	case sched.ClassNodeLocal, sched.ClassRackLocal, sched.ClassRemote:
		data, err := e.fs.ReadBlock(js.file, block)
		if err != nil {
			e.fail(fmt.Errorf("minimr: reading %v: %w", block, err))
			return
		}
		if a.Class == sched.ClassNodeLocal {
			e.runMap(js, rec, id, data)
			return
		}
		e.net.StartFlow(a.Task.Holder, id, blockBytes, func(*netsim.Flow) {
			e.runMap(js, rec, id, data)
		})
	case sched.ClassDegraded:
		// Reconstruct for real (Reed-Solomon decode over the surviving
		// blocks), then charge the k transfers through the network model.
		data, sources, err := e.fs.DegradedRead(js.file, block, id, e.opts.SourceStrategy, e.rng)
		if err != nil {
			e.fail(fmt.Errorf("minimr: degraded read of %v: %w", block, err))
			return
		}
		remaining := len(sources)
		for _, src := range sources {
			e.net.StartFlow(src.Node, id, blockBytes, func(*netsim.Flow) {
				remaining--
				if remaining == 0 {
					rec.DegradedReadTime = e.eng.Now() - rec.LaunchTime
					e.runMap(js, rec, id, data)
				}
			})
		}
	default:
		e.fail(fmt.Errorf("minimr: unknown class %v", a.Class))
	}
}

// runMap executes the real map function, partitions its output, and
// charges the calibrated CPU time before delivering the shuffle.
func (e *engine) runMap(js *jobState, rec *mapred.TaskRecord, id topology.NodeID, data []byte) {
	numR := len(js.reducers)
	parts := make([]partition, numR)
	emit := func(k, v string) {
		kv := KeyValue{Key: k, Value: v}
		bytes := float64(len(k) + len(v) + 2)
		if numR == 0 {
			// Map-only job: map output is the job output.
			js.output[k] = v
			return
		}
		p := partitionOf(k, numR)
		parts[p].kvs = append(parts[p].kvs, kv)
		parts[p].bytes += bytes
	}
	js.job.Map(data, emit)
	dur := js.job.MapCost.Seconds(float64(len(data))) * e.speed(id)
	e.eng.Schedule(dur, func() { e.completeMap(js, rec, id, parts) })
}

func partitionOf(key string, numR int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numR))
}

func (e *engine) completeMap(js *jobState, rec *mapred.TaskRecord, id topology.NodeID, parts []partition) {
	now := e.eng.Now()
	rec.FinishTime = now
	e.slaves[id].freeMap++
	js.mapsCompleted++

	for rIdx, p := range parts {
		r := js.reducers[rIdx]
		if r.launched {
			e.sendShuffle(id, r, p)
		} else {
			js.pending[rIdx] = append(js.pending[rIdx], pendingShuffle{src: id, p: p})
		}
	}

	if js.mapsCompleted == js.totalMaps() {
		js.mapPhaseEnd = now
		if len(js.reducers) == 0 {
			e.finishJob(js)
		} else {
			for _, r := range js.reducers {
				e.checkReducer(r)
			}
		}
	}
	if e.opts.OutOfBandHeartbeats {
		e.oobHeartbeat(id)
	}
}

func (e *engine) sendShuffle(src topology.NodeID, r *reducerState, p partition) {
	e.net.StartFlow(src, r.node, p.bytes, func(*netsim.Flow) {
		r.received++
		r.buf = append(r.buf, p.kvs...)
		r.bytes += p.bytes
		e.checkReducer(r)
	})
}

func (e *engine) launchReducer(r *reducerState, id topology.NodeID) {
	e.slaves[id].freeReduce--
	r.launched = true
	r.node = id
	r.launchTime = e.eng.Now()
	r.js.reducersAssigned++
	pending := r.js.pending[r.idx]
	r.js.pending[r.idx] = nil
	for _, ps := range pending {
		e.sendShuffle(ps.src, r, ps.p)
	}
}

func (e *engine) checkReducer(r *reducerState) {
	js := r.js
	if !r.launched || r.started || r.done {
		return
	}
	if js.mapsCompleted != js.totalMaps() || r.received != js.totalMaps() {
		return
	}
	r.started = true
	dur := js.job.ReduceCost.Seconds(r.bytes) * e.speed(r.node)
	e.eng.Schedule(dur, func() { e.completeReducer(r) })
}

// completeReducer runs the real reduce function over the received records
// and merges its output into the job output.
func (e *engine) completeReducer(r *reducerState) {
	js := r.js
	grouped := make(map[string][]string)
	for _, kv := range r.buf {
		grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		js.job.Reduce(k, grouped[k], func(ok, ov string) { js.output[ok] = ov })
	}

	now := e.eng.Now()
	r.done = true
	js.reduceRecs = append(js.reduceRecs, mapred.ReduceRecord{
		Job:        js.idx,
		Index:      r.idx,
		Node:       r.node,
		LaunchTime: r.launchTime,
		FinishTime: now,
	})
	e.slaves[r.node].freeReduce++
	js.reducersDone++
	if e.opts.OutOfBandHeartbeats {
		e.oobHeartbeat(r.node)
	}
	if js.reducersDone == len(js.reducers) {
		e.finishJob(js)
	}
}

func (e *engine) finishJob(js *jobState) {
	if js.finishedJ {
		return
	}
	js.finishedJ = true
	js.finishTime = e.eng.Now()
	e.finished++
}
