package minimr

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Run executes the jobs over the (already-populated, possibly
// failure-injected) DFS and returns the report. The DFS's cluster provides
// topology, slots, and failure state; Run does not mutate the failure
// state itself — inject failures before calling (as the paper does by
// killing a slave before submitting jobs). The heartbeat-driven master
// loop is the shared cluster runtime, driven here by a real-bytes backend
// that reads blocks, reconstructs lost ones, and runs the real map and
// reduce functions.
func Run(fs *dfs.FS, opts Options, jobs []Job) (*Report, error) {
	return RunContext(context.Background(), fs, opts, jobs)
}

// RunContext is Run with cancellation: ctx aborts the run at the next
// heartbeat.
func RunContext(ctx context.Context, fs *dfs.FS, opts Options, jobs []Job) (*Report, error) {
	h, err := NewHarness(fs, &opts, jobs)
	if err != nil {
		return nil, err
	}
	cluster := fs.Cluster()
	backend := &realBackend{
		fs:      fs,
		cluster: cluster,
		opts:    opts,
		jobs:    jobs,
		rng:     stats.NewRNG(opts.Seed),
		blocks:  h.Blocks,
		holders: h.Holders,
	}
	for i := range jobs {
		backend.bufs = append(backend.bufs, make([][]KeyValue, jobs[i].NumReducers))
		backend.outputs = append(backend.outputs, make(map[string]string))
	}

	res, err := runtime.Run(runtime.Params{
		Name:                "minimr",
		Ctx:                 ctx,
		Engine:              h.Engine,
		Cluster:             cluster,
		Net:                 h.Net,
		Scheduler:           h.Scheduler,
		Env:                 h.Env,
		JobSched:            opts.JobSched,
		HeartbeatInterval:   opts.HeartbeatInterval,
		OutOfBandHeartbeats: opts.OutOfBandHeartbeats,
		MaxSimTime:          opts.MaxSimTime,
		Hedge:               opts.Hedge,
		Repair:              opts.Repair,
		Sink:                opts.Trace,
		Label:               opts.TraceLabel,
		TraceFlowRates:      opts.TraceFlowRates,
	}, backend, h.RJobs)
	if err != nil {
		return nil, err
	}

	return &Report{
		Scheduler:   res.Scheduler,
		Failed:      res.Failed,
		Jobs:        res.Jobs,
		Outputs:     backend.outputs,
		Makespan:    res.Makespan,
		BytesMoved:  res.BytesMoved,
		WastedBytes: res.WastedBytes,
		Repair:      res.Repair,
	}, nil
}

// realBackend is the real-bytes runtime backend: map inputs are read (or
// Reed-Solomon reconstructed) from the DFS, the real map and reduce
// functions run over real records, and task costs are calibrated from the
// processed byte counts.
type realBackend struct {
	fs      *dfs.FS
	cluster *topology.Cluster
	opts    Options
	jobs    []Job
	rng     *stats.RNG
	blocks  [][]erasure.BlockID
	holders [][]topology.NodeID
	// bufs[job][reducer] accumulates the real intermediate records
	// delivered by the shuffle.
	bufs    [][][]KeyValue
	outputs []map[string]string
	// picked remembers each degraded task's latest primary sources so
	// SpareSources can exclude them. Keyed by (job, task).
	picked map[[2]int][]dfs.Source
}

func (b *realBackend) speed(id topology.NodeID) float64 {
	return b.cluster.Node(id).SpeedFactor
}

// PlanInput implements runtime.Backend: read the block (local, rack, or
// remote: one block transfer from the holder), or reconstruct it for real
// via a degraded read (k source transfers).
func (b *realBackend) PlanInput(job, task int, class sched.Class, node topology.NodeID) ([]runtime.Transfer, any, error) {
	js := b.jobs[job]
	block := b.blocks[job][task]
	blockBytes := float64(b.fs.BlockSize())
	switch class {
	case sched.ClassNodeLocal, sched.ClassRackLocal, sched.ClassRemote:
		data, err := b.fs.ReadBlock(js.Input, block)
		if err != nil {
			return nil, nil, fmt.Errorf("minimr: reading %v: %w", block, err)
		}
		if class == sched.ClassNodeLocal {
			return nil, data, nil
		}
		return []runtime.Transfer{{Src: b.holders[job][task], Bytes: blockBytes}}, data, nil
	case sched.ClassDegraded:
		// Reconstruct for real (Reed-Solomon decode over the surviving
		// blocks), then charge the k transfers through the network model.
		data, sources, err := b.fs.DegradedRead(js.Input, block, node, b.opts.SourceStrategy, b.rng)
		if err != nil {
			return nil, nil, fmt.Errorf("minimr: degraded read of %v: %w", block, err)
		}
		if b.picked == nil {
			b.picked = make(map[[2]int][]dfs.Source)
		}
		b.picked[[2]int{job, task}] = sources
		transfers := make([]runtime.Transfer, len(sources))
		for i, src := range sources {
			transfers[i] = runtime.Transfer{Src: src.Node, Bytes: blockBytes}
		}
		return transfers, data, nil
	default:
		return nil, nil, fmt.Errorf("minimr: unknown class %v", class)
	}
}

// SpareSources implements runtime.HedgedBackend: surviving stripe blocks
// beyond the primaries used by the latest DegradedRead, deterministically
// ordered by stripe index (no RNG draws). The reconstruction itself
// already happened in PlanInput — under the virtual clock the spare
// transfers only shape timing, and Reed-Solomon decoding from any k
// survivors yields identical bytes.
func (b *realBackend) SpareSources(job, task int, node topology.NodeID, max int) ([]runtime.Transfer, error) {
	js := b.jobs[job]
	f, err := b.fs.File(js.Input)
	if err != nil {
		return nil, fmt.Errorf("minimr: spare sources for %q: %w", js.Input, err)
	}
	primaries := b.picked[[2]int{job, task}]
	if len(primaries) != b.fs.Code().K() {
		// A locality-aware code repaired from a local group; such plans
		// are not any-k substitutable, so no spares.
		return nil, nil
	}
	block := b.blocks[job][task]
	spares := dfs.SpareSources(b.cluster, f.Placement, block, primaries, max)
	transfers := make([]runtime.Transfer, len(spares))
	for i, src := range spares {
		transfers[i] = runtime.Transfer{Src: src.Node, Bytes: float64(b.fs.BlockSize())}
	}
	return transfers, nil
}

// Execute implements runtime.Backend: run the real map function,
// partition its output, and charge the calibrated CPU time.
func (b *realBackend) Execute(job, task int, node topology.NodeID, input any) (float64, any) {
	js := b.jobs[job]
	data := input.([]byte)
	numR := js.NumReducers
	parts := make([]partition, numR)
	emit := func(k, v string) {
		kv := KeyValue{Key: k, Value: v}
		bytes := float64(len(k) + len(v) + 2)
		if numR == 0 {
			// Map-only job: map output is the job output.
			b.outputs[job][k] = v
			return
		}
		p := PartitionOf(k, numR)
		parts[p].kvs = append(parts[p].kvs, kv)
		parts[p].bytes += bytes
	}
	js.Map(data, emit)
	dur := js.MapCost.Seconds(float64(len(data))) * b.speed(node)
	return dur, parts
}

// Partitions implements runtime.Backend: hand each partition's real bytes
// and records to the shuffle.
func (b *realBackend) Partitions(job, task int, output any) []runtime.Chunk {
	parts := output.([]partition)
	chunks := make([]runtime.Chunk, len(parts))
	for i, p := range parts {
		chunks[i] = runtime.Chunk{Bytes: p.bytes, Data: p.kvs}
	}
	return chunks
}

// Deliver implements runtime.Backend: buffer the received records for the
// reduce phase.
func (b *realBackend) Deliver(job, reducer int, node topology.NodeID, c runtime.Chunk) error {
	if kvs, ok := c.Data.([]KeyValue); ok {
		b.bufs[job][reducer] = append(b.bufs[job][reducer], kvs...)
	}
	return nil
}

// ReduceDuration implements runtime.Backend: calibrated from the real
// shuffle volume received.
func (b *realBackend) ReduceDuration(job, reducer int, node topology.NodeID, receivedBytes float64) float64 {
	return b.jobs[job].ReduceCost.Seconds(receivedBytes) * b.speed(node)
}

// ReduceReset implements runtime.Backend: drop the records buffered on
// the failed node; the restarted reducer re-fetches everything.
func (b *realBackend) ReduceReset(job, reducer int) {
	b.bufs[job][reducer] = nil
}

// ReduceFinish implements runtime.Backend: run the real reduce function
// over the received records and merge its output into the job output.
func (b *realBackend) ReduceFinish(job, reducer int) {
	js := b.jobs[job]
	grouped := make(map[string][]string)
	for _, kv := range b.bufs[job][reducer] {
		grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := b.outputs[job]
	for _, k := range keys {
		js.Reduce(k, grouped[k], func(ok, ov string) { out[ok] = ov })
	}
}

type partition struct {
	kvs   []KeyValue
	bytes float64
}

// PartitionOf maps an intermediate key to its reducer index. It is
// exported because the distributed runtime's workers must partition map
// output exactly as the in-process engine does, or the two produce
// different shuffles for the same job.
func PartitionOf(key string, numR int) int {
	h := fnv.New32a()
	//lint:ignore errsink hash.Hash.Write is documented to never return an error
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numR))
}
