package minimr

import (
	"reflect"
	"strconv"
	"testing"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

const _testBlocks = 60

// testbedFS builds a scaled testbed: 12 slaves in 3 racks, (12,10) code,
// 64 KB blocks, round-robin placement, and a block-aligned corpus.
func testbedFS(t *testing.T, seed int64) (*dfs.FS, []byte) {
	t.Helper()
	cluster := topology.MustNew(topology.Config{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	fs, err := dfs.New(cluster, erasure.MustNew(12, 10), TestbedBlockSize,
		placement.RoundRobin{}, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(_testBlocks, TestbedBlockSize, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	return fs, corpus
}

func testOpts(kind sched.Kind) Options {
	return Options{
		Scheduler:           kind,
		RackBps:             TestbedRackBps,
		OutOfBandHeartbeats: true,
		Seed:                1,
	}
}

func wantCounts(counts map[string]int) map[string]string {
	out := make(map[string]string, len(counts))
	for k, v := range counts {
		out[k] = strconv.Itoa(v)
	}
	return out
}

func TestWordCountCorrectNormalMode(t *testing.T) {
	fs, corpus := testbedFS(t, 1)
	rep, err := Run(fs, testOpts(sched.KindLF), []Job{WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatalf("WordCount output diverges from ground truth (%d vs %d keys)",
			len(rep.Outputs[0]), len(want))
	}
	if len(rep.Failed) != 0 {
		t.Fatal("normal mode must have no failed nodes")
	}
	if rep.Jobs[0].Runtime() <= 0 {
		t.Fatal("no runtime recorded")
	}
}

func TestWordCountCorrectUnderFailureBothSchedulers(t *testing.T) {
	// The central correctness claim: a node failure changes *when* blocks
	// are read (degraded reads, reconstructed via Reed-Solomon) but never
	// *what* the job computes — under every scheduler.
	for _, kind := range []sched.Kind{sched.KindLF, sched.KindBDF, sched.KindEDF} {
		fs, corpus := testbedFS(t, 2)
		fs.Cluster().FailNode(3)
		rep, err := Run(fs, testOpts(kind), []Job{WordCountJob("input.txt", 8)})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		want := wantCounts(workload.CountWords(corpus))
		if !reflect.DeepEqual(rep.Outputs[0], want) {
			t.Fatalf("%v: output wrong under failure", kind)
		}
		deg := rep.Jobs[0].CountByClass()[sched.ClassDegraded]
		if deg == 0 {
			t.Fatalf("%v: no degraded tasks despite failure", kind)
		}
		// Exactly the native blocks held by the failed node are degraded.
		file, err := fs.File("input.txt")
		if err != nil {
			t.Fatal(err)
		}
		wantDeg := 0
		for _, b := range file.Placement.NodeBlocks(3) {
			if b.Index < fs.Code().K() {
				wantDeg++
			}
		}
		if deg != wantDeg {
			t.Fatalf("%v: degraded tasks = %d, want %d", kind, deg, wantDeg)
		}
	}
}

func TestGrepAndLineCountCorrect(t *testing.T) {
	fs, corpus := testbedFS(t, 3)
	fs.Cluster().FailNode(0)
	jobs := []Job{
		GrepJob("input.txt", "whale", 8),
		LineCountJob("input.txt", 8),
	}
	jobs[1].SubmitAt = 1
	rep, err := Run(fs, testOpts(sched.KindEDF), jobs)
	if err != nil {
		t.Fatal(err)
	}
	wantGrep := wantCounts(workload.GrepLines(corpus, "whale"))
	if !reflect.DeepEqual(rep.Outputs[0], wantGrep) {
		t.Fatalf("Grep output wrong: %d vs %d keys", len(rep.Outputs[0]), len(wantGrep))
	}
	if len(wantGrep) == 0 {
		t.Fatal("test corpus should contain 'whale' lines")
	}
	wantLines := wantCounts(workload.CountLines(corpus))
	if !reflect.DeepEqual(rep.Outputs[1], wantLines) {
		t.Fatalf("LineCount output wrong: %d vs %d keys", len(rep.Outputs[1]), len(wantLines))
	}
}

func TestEDFBeatsLFOnTestbed(t *testing.T) {
	runOne := func(kind sched.Kind) *Report {
		fs, _ := testbedFS(t, 4)
		fs.Cluster().FailNode(5)
		rep, err := Run(fs, testOpts(kind), []Job{WordCountJob("input.txt", 8)})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	lf := runOne(sched.KindLF)
	edf := runOne(sched.KindEDF)
	if edf.Jobs[0].Runtime() >= lf.Jobs[0].Runtime() {
		t.Fatalf("EDF runtime %.1f not below LF %.1f",
			edf.Jobs[0].Runtime(), lf.Jobs[0].Runtime())
	}
	if edf.Jobs[0].MeanDegradedRuntime() >= lf.Jobs[0].MeanDegradedRuntime() {
		t.Fatalf("EDF degraded-task runtime %.1f not below LF %.1f",
			edf.Jobs[0].MeanDegradedRuntime(), lf.Jobs[0].MeanDegradedRuntime())
	}
}

func TestMapOnlyJob(t *testing.T) {
	fs, corpus := testbedFS(t, 5)
	job := Job{
		Name:  "probe",
		Input: "input.txt",
		Map: func(block []byte, emit func(k, v string)) {
			emit("bytes"+strconv.Itoa(len(block)), "seen")
		},
		MapCost: Cost{Fixed: 1},
	}
	rep, err := Run(fs, testOpts(sched.KindLF), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].MapPhaseEnd != rep.Jobs[0].FinishTime {
		t.Fatal("map-only job must end with its map phase")
	}
	if rep.Outputs[0]["bytes"+strconv.Itoa(TestbedBlockSize)] != "seen" {
		t.Fatal("mapper did not observe full blocks")
	}
	_ = corpus
}

func TestValidationErrors(t *testing.T) {
	fs, _ := testbedFS(t, 6)
	good := WordCountJob("input.txt", 4)
	if _, err := Run(nil, testOpts(sched.KindLF), []Job{good}); err == nil {
		t.Fatal("nil fs must fail")
	}
	if _, err := Run(fs, testOpts(sched.KindLF), nil); err == nil {
		t.Fatal("no jobs must fail")
	}
	if _, err := Run(fs, Options{RackBps: -1}, []Job{good}); err == nil {
		t.Fatal("negative bandwidth must fail")
	}
	bad := []func(*Job){
		func(j *Job) { j.Input = "" },
		func(j *Job) { j.Input = "missing" },
		func(j *Job) { j.Map = nil },
		func(j *Job) { j.Reduce = nil },
		func(j *Job) { j.NumReducers = 0 },
		func(j *Job) { j.SubmitAt = -1 },
		func(j *Job) { j.MapCost.PerMB = -1 },
	}
	for i, mutate := range bad {
		j := WordCountJob("input.txt", 4)
		mutate(&j)
		if _, err := Run(fs, testOpts(sched.KindLF), []Job{j}); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	// Out-of-order submissions.
	j1 := WordCountJob("input.txt", 4)
	j1.SubmitAt = 10
	j2 := GrepJob("input.txt", "the", 4)
	if _, err := Run(fs, testOpts(sched.KindLF), []Job{j1, j2}); err == nil {
		t.Fatal("decreasing SubmitAt must fail")
	}
}

func TestMultiJobFIFOOnTestbed(t *testing.T) {
	fs, _ := testbedFS(t, 7)
	fs.Cluster().FailNode(2)
	jobs := []Job{
		WordCountJob("input.txt", 8),
		GrepJob("input.txt", "the", 8),
		LineCountJob("input.txt", 8),
	}
	jobs[1].SubmitAt = 1
	jobs[2].SubmitAt = 2
	rep, err := Run(fs, testOpts(sched.KindEDF), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 3 || len(rep.Outputs) != 3 {
		t.Fatalf("jobs = %d outputs = %d", len(rep.Jobs), len(rep.Outputs))
	}
	if rep.Jobs[0].FirstMapLaunch > rep.Jobs[1].FirstMapLaunch {
		t.Fatal("FIFO order violated")
	}
	if rep.Makespan <= 0 || rep.BytesMoved <= 0 {
		t.Fatal("aggregates missing")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Report {
		fs, _ := testbedFS(t, 8)
		fs.Cluster().FailNode(1)
		rep, err := Run(fs, testOpts(sched.KindEDF), []Job{WordCountJob("input.txt", 8)})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical reports")
	}
}

func TestCostSeconds(t *testing.T) {
	c := Cost{Fixed: 2, PerMB: 3}
	if got := c.Seconds(2e6); got != 8 {
		t.Fatalf("Seconds = %v, want 8", got)
	}
}

func TestPartitionOfStable(t *testing.T) {
	// Same key always lands on the same reducer, and partitions spread.
	seen := map[int]bool{}
	for _, k := range []string{"a", "b", "c", "whale", "the", "ocean", "ship", "storm"} {
		p1 := PartitionOf(k, 8)
		p2 := PartitionOf(k, 8)
		if p1 != p2 || p1 < 0 || p1 >= 8 {
			t.Fatalf("PartitionOf(%q) unstable or out of range", k)
		}
		seen[p1] = true
	}
	if len(seen) < 3 {
		t.Fatalf("partitioning too concentrated: %v", seen)
	}
}

func TestWordCountOverLRC(t *testing.T) {
	// The engine is code-agnostic: run WordCount over an LRC(10,2,2) DFS
	// with a failed node. Degraded reads use the local repair group (5
	// blocks instead of k=10), and the output stays bit-identical.
	cluster := topology.MustNew(topology.Config{
		Nodes: 14, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	code := erasure.MustNewLRC(10, 2, 2)
	fs, err := dfs.New(cluster, code, TestbedBlockSize, placement.RoundRobin{}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(40, TestbedBlockSize, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	cluster.FailNode(2)
	rep, err := Run(fs, testOpts(sched.KindEDF), []Job{WordCountJob("input.txt", 4)})
	if err != nil {
		t.Fatal(err)
	}
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatal("LRC-backed WordCount output wrong")
	}
	if deg := rep.Jobs[0].CountByClass()[sched.ClassDegraded]; deg == 0 {
		t.Fatal("expected degraded tasks")
	}

	// Compare network volume against an RS(14,10) run of the same shape:
	// LRC's local repairs move roughly half the degraded-read bytes.
	rsCluster := topology.MustNew(topology.Config{
		Nodes: 14, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	rsFS, err := dfs.New(rsCluster, erasure.MustNew(14, 10), TestbedBlockSize, placement.RoundRobin{}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsFS.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	rsCluster.FailNode(2)
	rsRep, err := Run(rsFS, testOpts(sched.KindEDF), []Job{WordCountJob("input.txt", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesMoved >= rsRep.BytesMoved {
		t.Fatalf("LRC run moved %.0f bytes, RS moved %.0f — local repair should be cheaper",
			rep.BytesMoved, rsRep.BytesMoved)
	}
}

func TestReducePhaseOrdering(t *testing.T) {
	fs, _ := testbedFS(t, 11)
	rep, err := Run(fs, testOpts(sched.KindLF), []Job{WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Jobs[0]
	if len(jr.Reduces) != 8 {
		t.Fatalf("reduces = %d", len(jr.Reduces))
	}
	for _, r := range jr.Reduces {
		if r.FinishTime < jr.MapPhaseEnd {
			t.Fatal("reduce finished before map phase end")
		}
		if r.LaunchTime > jr.MapPhaseEnd {
			t.Fatal("reducers should launch early (before map phase ends)")
		}
	}
	if jr.MeanReduceRuntime() <= 0 {
		t.Fatal("reduce runtimes missing")
	}
}

func TestGrepShufflesLessThanLineCount(t *testing.T) {
	// The paper picks Grep/LineCount to contrast shuffle volume:
	// LineCount emits every line, Grep only matching lines.
	fs, _ := testbedFS(t, 12)
	rep, err := Run(fs, testOpts(sched.KindLF), []Job{GrepJob("input.txt", "whale", 8)})
	if err != nil {
		t.Fatal(err)
	}
	grepBytes := rep.BytesMoved
	fs2, _ := testbedFS(t, 12)
	rep2, err := Run(fs2, testOpts(sched.KindLF), []Job{LineCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	if grepBytes >= rep2.BytesMoved {
		t.Fatalf("Grep moved %.0f bytes, LineCount %.0f — expected less", grepBytes, rep2.BytesMoved)
	}
}

func TestJobCostsMatchTableOneOrdering(t *testing.T) {
	// Per-block map costs must preserve Table I's ordering:
	// Grep < WordCount < LineCount.
	wc := WordCountJob("x", 1).MapCost.Seconds(float64(TestbedBlockSize))
	gr := GrepJob("x", "y", 1).MapCost.Seconds(float64(TestbedBlockSize))
	lc := LineCountJob("x", 1).MapCost.Seconds(float64(TestbedBlockSize))
	if !(gr < wc && wc < lc) {
		t.Fatalf("cost ordering wrong: grep=%.1f wordcount=%.1f linecount=%.1f", gr, wc, lc)
	}
	// And absolute values sit near the paper's 64 MB-block runtimes.
	if wc < 25 || wc > 36 {
		t.Fatalf("WordCount per-block cost %.1f s, want ~30.9 s", wc)
	}
	if gr < 9 || gr > 15 {
		t.Fatalf("Grep per-block cost %.1f s, want ~11.7 s", gr)
	}
	if lc < 30 || lc > 42 {
		t.Fatalf("LineCount per-block cost %.1f s, want ~35.9 s", lc)
	}
}

func TestTraceFlowRatesThreadsThrough(t *testing.T) {
	fs, _ := testbedFS(t, 5)
	var mem trace.Memory
	opts := testOpts(sched.KindLF)
	opts.Trace = &mem
	opts.TraceFlowRates = true
	if _, err := Run(fs, opts, []Job{WordCountJob("input.txt", 8)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range mem.Events() {
		if e.Type == trace.EvFlowRate {
			n++
		}
	}
	if n == 0 {
		t.Fatal("TraceFlowRates produced no flow-rate events on the testbed")
	}
}
