package minimr

import (
	"errors"
	"math"
	"testing"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want error // nil means valid
	}{
		{"zero value is valid", Options{}, nil},
		{"explicit settings are valid", Options{
			Scheduler: sched.KindBDF, RackBps: 1e9, HeartbeatInterval: 1,
		}, nil},
		{"negative rack bandwidth", Options{RackBps: -1}, ErrNegativeBandwidth},
		{"negative node bandwidth", Options{NodeBps: -1}, ErrNegativeBandwidth},
		{"negative core bandwidth", Options{CoreBps: -1}, ErrNegativeBandwidth},
		{"NaN bandwidth", Options{RackBps: math.NaN()}, ErrNegativeBandwidth},
		{"negative heartbeat", Options{HeartbeatInterval: -3}, ErrBadHeartbeat},
		{"NaN heartbeat", Options{HeartbeatInterval: math.NaN()}, ErrBadHeartbeat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestOptionsValidateDefaults(t *testing.T) {
	var o Options
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Scheduler != sched.KindLF {
		t.Errorf("Scheduler default = %v, want KindLF", o.Scheduler)
	}
	if o.HeartbeatInterval != 3 {
		t.Errorf("HeartbeatInterval default = %v, want 3", o.HeartbeatInterval)
	}
	if o.SourceStrategy != dfs.RandomK {
		t.Errorf("SourceStrategy default = %v, want RandomK", o.SourceStrategy)
	}
	if o.NetMode != netsim.FluidFairSharing {
		t.Errorf("NetMode default = %v, want FluidFairSharing", o.NetMode)
	}
	if o.MaxSimTime != 1e7 {
		t.Errorf("MaxSimTime default = %v, want 1e7", o.MaxSimTime)
	}
}

func TestJobValidate(t *testing.T) {
	mapper := func([]byte, func(string, string)) {}
	reducer := func(string, []string, func(string, string)) {}
	valid := func() Job {
		return Job{Name: "j", Input: "f", Map: mapper, Reduce: reducer, NumReducers: 2}
	}
	cases := []struct {
		name   string
		mutate func(*Job)
		want   error // nil means valid
	}{
		{"well-formed", func(*Job) {}, nil},
		{"map-only", func(j *Job) { j.Reduce = nil; j.NumReducers = 0 }, nil},
		{"no input", func(j *Job) { j.Input = "" }, ErrNoInput},
		{"no mapper", func(j *Job) { j.Map = nil }, ErrNoMapper},
		{"negative reducers", func(j *Job) { j.NumReducers = -1 }, ErrNegativeReducers},
		{"reducers without reduce", func(j *Job) { j.Reduce = nil }, ErrReducersWithoutReduce},
		{"reduce without reducers", func(j *Job) { j.NumReducers = 0 }, ErrReduceWithoutReducers},
		{"negative submit time", func(j *Job) { j.SubmitAt = -1 }, ErrBadSubmitTime},
		{"NaN submit time", func(j *Job) { j.SubmitAt = math.NaN() }, ErrBadSubmitTime},
		{"negative fixed map cost", func(j *Job) { j.MapCost.Fixed = -1 }, ErrNegativeCost},
		{"negative per-MB map cost", func(j *Job) { j.MapCost.PerMB = -1 }, ErrNegativeCost},
		{"negative fixed reduce cost", func(j *Job) { j.ReduceCost.Fixed = -1 }, ErrNegativeCost},
		{"negative per-MB reduce cost", func(j *Job) { j.ReduceCost.PerMB = -1 }, ErrNegativeCost},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := valid()
			tc.mutate(&j)
			err := j.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestValidateJobs(t *testing.T) {
	mapper := func([]byte, func(string, string)) {}
	job := func(at float64) Job {
		return Job{Name: "j", Input: "f", Map: mapper, SubmitAt: at}
	}
	if err := ValidateJobs(nil); !errors.Is(err, ErrNoJobs) {
		t.Fatalf("ValidateJobs(nil) = %v, want ErrNoJobs", err)
	}
	if err := ValidateJobs([]Job{job(0), {Name: "bad"}}); !errors.Is(err, ErrNoInput) {
		t.Fatalf("per-job validation not applied: %v", err)
	}
	if err := ValidateJobs([]Job{job(5), job(1)}); !errors.Is(err, ErrSubmitOrder) {
		t.Fatalf("decreasing submit times accepted: %v", err)
	}
	if err := ValidateJobs([]Job{job(1), job(1), job(2)}); err != nil {
		t.Fatalf("nondecreasing submit times rejected: %v", err)
	}
}
