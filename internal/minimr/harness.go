package minimr

import (
	"fmt"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

// Harness bundles the virtual-clock machinery one engine run needs:
// event engine, network model, scheduler, scheduling environment, and
// the runtime job specs (plus each task's input block and holder). Both
// the in-process engine (RunContext) and the distributed master
// (internal/cluster) build their runs from the same harness, so their
// virtual schedules are constructed identically.
type Harness struct {
	Engine    *sim.Engine
	Net       *netsim.Net
	Scheduler sched.Scheduler
	Env       *sched.Env
	// RJobs are the runtime-facing job specs, index-aligned with the jobs
	// passed to NewHarness.
	RJobs []runtime.JobSpec
	// Blocks[job][task] is the input block of task `task`, and
	// Holders[job][task] the node holding it.
	Blocks  [][]erasure.BlockID
	Holders [][]topology.NodeID
}

// NewHarness validates opts and jobs (normalizing opts defaults in
// place) and builds the run machinery over the already-populated DFS.
func NewHarness(fs *dfs.FS, opts *Options, jobs []Job) (*Harness, error) {
	if fs == nil {
		return nil, fmt.Errorf("minimr: nil file system")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateJobs(jobs); err != nil {
		return nil, err
	}

	cluster := fs.Cluster()
	eng := sim.New()
	net, err := netsim.New(eng, cluster, netsim.Config{
		Mode:    opts.NetMode,
		NodeBps: opts.NodeBps,
		RackBps: opts.RackBps,
		CoreBps: opts.CoreBps,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := opts.Scheduler.New(cluster.NumRacks())
	if err != nil {
		return nil, err
	}

	// EDF needs a degraded-read-time threshold; derive it from the code,
	// block size and rack bandwidth as in the analysis. On multi-tier
	// clusters the leaf-tier capacity of the fabric spec stands in for
	// the rack bandwidth unless the option overrides it.
	rackBps := opts.RackBps
	if rackBps == 0 {
		rackBps = cluster.Spec().Tiers[0].LinkBps
	}
	threshold := 0.0
	if rackBps > 0 {
		r := float64(cluster.NumRacks())
		threshold = (r - 1) / r * float64(fs.Code().K()) * float64(fs.BlockSize()) / rackBps
	}
	meanMapCost := 0.0
	for i := range jobs {
		meanMapCost += jobs[i].MapCost.Seconds(float64(fs.BlockSize()))
	}
	meanMapCost /= float64(len(jobs))
	env := &sched.Env{
		Cluster:          cluster,
		DegradedReadTime: threshold,
		PerTaskTime: func(id topology.NodeID) float64 {
			return meanMapCost * cluster.Node(id).SpeedFactor
		},
	}

	h := &Harness{
		Engine:    eng,
		Net:       net,
		Scheduler: scheduler,
		Env:       env,
		RJobs:     make([]runtime.JobSpec, len(jobs)),
	}
	for i := range jobs {
		file, err := fs.File(jobs[i].Input)
		if err != nil {
			return nil, err
		}
		natives := file.NativeBlocks()
		tasks := make([]sched.TaskSpec, len(natives))
		holders := make([]topology.NodeID, len(natives))
		for t, b := range natives {
			holders[t] = file.Placement.Holder(b)
			tasks[t] = sched.TaskSpec{Block: b, Holder: holders[t]}
		}
		h.Blocks = append(h.Blocks, natives)
		h.Holders = append(h.Holders, holders)
		h.RJobs[i] = runtime.JobSpec{
			Name:        jobs[i].Name,
			SubmitAt:    jobs[i].SubmitAt,
			Tasks:       tasks,
			NumReducers: jobs[i].NumReducers,
			Tenant:      jobs[i].Tenant,
			Weight:      jobs[i].Weight,
			Deadline:    jobs[i].Deadline,
		}
	}
	return h, nil
}
