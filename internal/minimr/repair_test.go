package minimr

import (
	"reflect"
	"testing"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/workload"
)

// TestRepairHealsDFSMidRun is the real-bytes heal-to-full-redundancy
// scenario: a node dies before the run, the background healer rebuilds
// every lost block (data and parity) from real surviving shards while
// the job runs, and afterwards the file has no lost blocks at all.
func TestRepairHealsDFSMidRun(t *testing.T) {
	// A (6,4) code on 12 nodes: unlike the (12,10) testbed, every stripe
	// leaves nodes free to host rebuilt blocks.
	cluster := topology.MustNew(topology.Config{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	fs, err := dfs.New(cluster, erasure.MustNew(6, 4), TestbedBlockSize,
		placement.RoundRobin{}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(_testBlocks, TestbedBlockSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	fs.Cluster().FailNode(3)
	file, err := fs.File("input.txt")
	if err != nil {
		t.Fatal(err)
	}
	wantRepaired := len(file.Placement.NodeBlocks(3))
	if wantRepaired == 0 {
		t.Fatal("failed node held no blocks; scenario is vacuous")
	}

	opts := testOpts(sched.KindEDF)
	opts.Repair = repair.Config{Enabled: true, RateFraction: 0.5}
	rep, err := Run(fs, opts, []Job{WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}

	// Foreground correctness is untouched by the healer.
	want := wantCounts(workload.CountWords(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatal("WordCount output diverges with background repair on")
	}

	st := rep.Repair
	if st == nil {
		t.Fatal("repair enabled with a failed node but Report.Repair is nil")
	}
	if st.BlocksRepaired != wantRepaired {
		t.Fatalf("BlocksRepaired = %d, want %d (all blocks of node 3)", st.BlocksRepaired, wantRepaired)
	}
	if st.FullRedundancyAt < 0 {
		t.Fatalf("never healed to full redundancy: %+v", st)
	}
	if st.Unrepairable != 0 {
		t.Fatalf("single failure within n-k produced unrepairable stripes: %+v", st)
	}

	// The DFS is fully redundant again: no lost native blocks, every
	// stripe holder alive, and every block readable without degradation.
	if lost := file.Placement.LostNativeBlocks(fs.Cluster()); len(lost) != 0 {
		t.Fatalf("lost native blocks after heal: %v", lost)
	}
	for s := 0; s < file.NumStripes(); s++ {
		for i, h := range file.Placement.StripeHolders(s) {
			if !fs.Cluster().Alive(h) {
				t.Fatalf("stripe %d block %d still on dead node %d", s, i, h)
			}
		}
	}
	for _, b := range file.NativeBlocks() {
		if _, err := fs.ReadBlock("input.txt", b); err != nil {
			t.Fatalf("block %v unreadable after heal: %v", b, err)
		}
	}
}

// TestRepairDisabledReportsNothing: the zero config leaves the DFS
// degraded and the report without repair stats.
func TestRepairDisabledReportsNothing(t *testing.T) {
	fs, _ := testbedFS(t, 6)
	fs.Cluster().FailNode(3)
	rep, err := Run(fs, testOpts(sched.KindLF), []Job{WordCountJob("input.txt", 8)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repair != nil {
		t.Fatalf("repair disabled but Report.Repair = %+v", rep.Repair)
	}
	file, err := fs.File("input.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Placement.NodeBlocks(3)) == 0 {
		t.Fatal("failed node lost its blocks without a healer")
	}
}

// TestRepairLRCUsesLocalGroups: with a true LRC code the healer repairs
// single losses from the surviving local group — strictly fewer source
// reads than full reconstructions.
func TestRepairLRCUsesLocalGroups(t *testing.T) {
	cluster := topology.MustNew(topology.Config{
		Nodes: 12, Racks: 4, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	code := erasure.MustNewLRC(4, 2, 1)
	fs, err := dfs.New(cluster, code, TestbedBlockSize, placement.RoundRobin{}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(40, TestbedBlockSize, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		t.Fatal(err)
	}
	cluster.FailNode(2)

	opts := testOpts(sched.KindEDF)
	opts.Repair = repair.Config{Enabled: true, RateFraction: 0.5}
	rep, err := Run(fs, opts, []Job{LineCountJob("input.txt", 4)})
	if err != nil {
		t.Fatal(err)
	}
	want := wantCounts(workload.CountLines(corpus))
	if !reflect.DeepEqual(rep.Outputs[0], want) {
		t.Fatal("LineCount output diverges with LRC background repair on")
	}
	st := rep.Repair
	if st == nil || st.FullRedundancyAt < 0 {
		t.Fatalf("LRC heal incomplete: %+v", st)
	}
	if st.LocalRepairs == 0 {
		t.Fatalf("no local-group repairs under LRC: %+v", st)
	}
	// Local repairs read fewer than k sources, so the total read volume
	// stays strictly below k reads per rebuilt block.
	if maxBytes := float64(st.BlocksRepaired) * float64(fs.Code().K()) * float64(fs.BlockSize()); st.RepairBytes >= maxBytes {
		t.Fatalf("RepairBytes = %v, want < %v (local repairs must be cheaper)", st.RepairBytes, maxBytes)
	}
}

func TestRepairOptionsValidation(t *testing.T) {
	fs, _ := testbedFS(t, 8)
	opts := testOpts(sched.KindLF)
	opts.Repair = repair.Config{Enabled: true, RateFraction: -1}
	if _, err := Run(fs, opts, []Job{WordCountJob("input.txt", 8)}); err == nil {
		t.Fatal("negative RateFraction must fail validation")
	}
}
