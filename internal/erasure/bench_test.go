package erasure

import (
	"testing"

	"degradedfirst/internal/gf256"
)

// benchShard matches the perf acceptance criteria: 64 KiB blocks.
const benchShard = 64 * 1024

func benchNative(k, size int) [][]byte {
	native := make([][]byte, k)
	for i := range native {
		native[i] = make([]byte, size)
		fillShard(native[i], byte(i+1))
	}
	return native
}

// BenchmarkEncode measures full-stripe parity generation for the paper's
// RS(14,10), kernel path vs the retained scalar reference driven over the
// same encoding rows.
func BenchmarkEncode(b *testing.B) {
	code := MustNew(14, 10)
	native := benchNative(10, benchShard)
	rows := make([][]byte, code.ParityShards())
	for i := range rows {
		rows[i] = code.EncodingRow(10 + i)
	}
	b.Run("kernel", func(b *testing.B) {
		b.SetBytes(int64(10 * benchShard))
		for i := 0; i < b.N; i++ {
			if _, err := code.Encode(native); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(10 * benchShard))
		parity := make([][]byte, len(rows))
		for i := range parity {
			parity[i] = make([]byte, benchShard)
		}
		for i := 0; i < b.N; i++ {
			for r, row := range rows {
				for j := range parity[r] {
					parity[r][j] = 0
				}
				for j, coeff := range row {
					gf256.RefMulSlice(coeff, native[j], parity[r])
				}
			}
		}
	})
}

// BenchmarkReconstructBlock measures a single degraded-read decode of a
// 64 KiB block: RS(14,10) losing a data block (general coefficients), and
// the LRC(12,2,2) local-group repair (pure XOR). The scalar variants drive
// the retained reference kernel over the same source shards and
// coefficients.
func BenchmarkReconstructBlock(b *testing.B) {
	code := MustNew(14, 10)
	native := benchNative(10, benchShard)
	stripe, err := code.EncodeStripe(native)
	if err != nil {
		b.Fatal(err)
	}
	srcIdx := make([]int, 0, 10)
	sources := make([][]byte, 0, 10)
	for i := 0; i < 14 && len(srcIdx) < 10; i++ {
		if i == 0 {
			continue
		}
		srcIdx = append(srcIdx, i)
		sources = append(sources, stripe[i])
	}
	b.Run("rs/kernel", func(b *testing.B) {
		b.SetBytes(int64(10 * benchShard))
		for i := 0; i < b.N; i++ {
			if _, err := code.ReconstructBlock(0, srcIdx, sources); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rs/scalar", func(b *testing.B) {
		b.SetBytes(int64(10 * benchShard))
		coeffs := decodeRow(b, code, 0, srcIdx)
		out := make([]byte, benchShard)
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = 0
			}
			for j, c := range coeffs {
				gf256.RefMulSlice(c, sources[j], out)
			}
		}
	})

	lrc := MustNewLRC(12, 2, 2)
	data := benchNative(12, benchShard)
	lstripe, err := lrc.EncodeStripe(data)
	if err != nil {
		b.Fatal(err)
	}
	group, ok := lrc.LocalRepairGroup(2)
	if !ok {
		b.Fatal("no local group")
	}
	lsources := make([][]byte, len(group))
	for i, idx := range group {
		lsources[i] = lstripe[idx]
	}
	b.Run("lrc-local/kernel", func(b *testing.B) {
		b.SetBytes(int64(len(group) * benchShard))
		for i := 0; i < b.N; i++ {
			if _, err := lrc.ReconstructBlock(2, group, lsources); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lrc-local/scalar", func(b *testing.B) {
		b.SetBytes(int64(len(group) * benchShard))
		out := make([]byte, benchShard)
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = 0
			}
			for _, s := range lsources {
				gf256.RefMulSlice(1, s, out)
			}
		}
	})
}

// decodeRow computes the coefficient row mapping the chosen sources to the
// lost block, exactly as ReconstructBlock does internally.
func decodeRow(b *testing.B, code *Code, idx int, srcIdx []int) []byte {
	b.Helper()
	rows := make([][]byte, len(srcIdx))
	for i, r := range srcIdx {
		rows[i] = code.EncodingRow(r)
	}
	sub, err := gf256.MatrixFromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := sub.Invert()
	if err != nil {
		b.Fatal(err)
	}
	encRow, err := gf256.MatrixFromRows([][]byte{code.EncodingRow(idx)})
	if err != nil {
		b.Fatal(err)
	}
	coeffs, err := encRow.Mul(dec)
	if err != nil {
		b.Fatal(err)
	}
	return coeffs.Row(0)
}
