// Package erasure implements systematic (n, k) Reed-Solomon erasure codes
// over GF(2^8), in the style used by HDFS-RAID: k native blocks are encoded
// into n-k parity blocks, and any k of the n blocks of a stripe suffice to
// reconstruct all blocks.
package erasure

import (
	"errors"
	"fmt"

	"degradedfirst/internal/gf256"
)

// Construction selects how the encoding matrix is built.
type Construction int

const (
	// VandermondeRS builds the encoding matrix from a Vandermonde matrix
	// transformed to systematic form (classic Reed-Solomon).
	VandermondeRS Construction = iota + 1
	// CauchyRS places a Cauchy matrix under an identity block
	// (Cauchy Reed-Solomon, Bloemer et al. 1995).
	CauchyRS
)

// String returns the construction name.
func (c Construction) String() string {
	switch c {
	case VandermondeRS:
		return "vandermonde"
	case CauchyRS:
		return "cauchy"
	default:
		return fmt.Sprintf("construction(%d)", int(c))
	}
}

// Errors returned by this package.
var (
	ErrInvalidParams     = errors.New("erasure: invalid (n, k) parameters")
	ErrTooFewShards      = errors.New("erasure: fewer than k shards available")
	ErrShardSizeMismatch = errors.New("erasure: shards have differing sizes")
	ErrShardCount        = errors.New("erasure: wrong number of shards")
)

// Coder is the interface shared by the Reed-Solomon Code and the LRC:
// everything the storage layer needs from an erasure code.
type Coder interface {
	// N is the stripe width; K the native (data) block count.
	N() int
	K() int
	// EncodeStripe returns all N shards for K data shards.
	EncodeStripe(data [][]byte) ([][]byte, error)
	// ReconstructBlock recovers one block from the given source shards.
	ReconstructBlock(idx int, srcIdx []int, sources [][]byte) ([]byte, error)
	// Verify checks a complete stripe's parity consistency.
	Verify(shards [][]byte) (bool, error)
}

// LocalRepairer is implemented by codes (like LRC) whose single-block
// repairs can read fewer than K blocks. The storage layer uses it to plan
// cheap degraded reads.
type LocalRepairer interface {
	// LocalRepairGroup returns the exact source set repairing block idx,
	// or ok=false when idx has no local group.
	LocalRepairGroup(idx int) (sources []int, ok bool)
}

// Verify interface compliance.
var (
	_ Coder         = (*Code)(nil)
	_ Coder         = (*LRC)(nil)
	_ LocalRepairer = (*LRC)(nil)
)

// Code is an immutable (n, k) systematic Reed-Solomon code. It is safe for
// concurrent use.
type Code struct {
	n, k int
	// enc is the n x k encoding matrix. Its top k rows form the identity,
	// so shards[0..k) are the native blocks verbatim.
	enc          *gf256.Matrix
	construction Construction
}

// Option configures New.
type Option func(*options)

type options struct {
	construction Construction
}

// WithConstruction selects the matrix construction (default VandermondeRS).
func WithConstruction(c Construction) Option {
	return func(o *options) { o.construction = c }
}

// New returns an (n, k) code. Requirements: 0 < k < n <= 256, and for the
// Cauchy construction n <= 256 as well (field size limit).
func New(n, k int, opts ...Option) (*Code, error) {
	o := options{construction: VandermondeRS}
	for _, opt := range opts {
		opt(&o)
	}
	if k <= 0 || n <= k || n > 256 {
		return nil, fmt.Errorf("%w: n=%d k=%d", ErrInvalidParams, n, k)
	}
	var enc *gf256.Matrix
	switch o.construction {
	case VandermondeRS:
		// Systematize: E = V * (topK(V))^-1 so the top k rows are identity.
		v := gf256.Vandermonde(n, k)
		topRows := make([]int, k)
		for i := range topRows {
			topRows[i] = i
		}
		top, err := v.SubMatrix(topRows)
		if err != nil {
			return nil, err
		}
		topInv, err := top.Invert()
		if err != nil {
			return nil, fmt.Errorf("erasure: systematizing Vandermonde: %w", err)
		}
		enc, err = v.Mul(topInv)
		if err != nil {
			return nil, err
		}
	case CauchyRS:
		enc = gf256.NewMatrix(n, k)
		for i := 0; i < k; i++ {
			enc.Set(i, i, 1)
		}
		cauchy := gf256.Cauchy(n-k, k)
		for i := 0; i < n-k; i++ {
			copy(enc.Row(k+i), cauchy.Row(i))
		}
	default:
		return nil, fmt.Errorf("erasure: unknown construction %v", o.construction)
	}
	return &Code{n: n, k: k, enc: enc, construction: o.construction}, nil
}

// MustNew is New but panics on error; for constant, known-good parameters.
func MustNew(n, k int, opts ...Option) *Code {
	c, err := New(n, k, opts...)
	if err != nil {
		panic(fmt.Sprintf("erasure: MustNew(%d, %d): %v", n, k, err))
	}
	return c
}

// N returns the stripe width (native + parity blocks).
func (c *Code) N() int { return c.n }

// K returns the number of native blocks per stripe.
func (c *Code) K() int { return c.k }

// ParityShards returns n - k.
func (c *Code) ParityShards() int { return c.n - c.k }

// Construction returns the matrix construction in use.
func (c *Code) Construction() Construction { return c.construction }

// EncodingRow returns a copy of row i of the n x k encoding matrix (rows
// [0, k) are the identity; [k, n) are the parity coefficients). Exposed for
// analysis and for benchmarking the kernels against the retained scalar
// reference on the exact production coefficients.
func (c *Code) EncodingRow(i int) []byte {
	return append([]byte(nil), c.enc.Row(i)...)
}

// String implements fmt.Stringer, e.g. "RS(12,10)/vandermonde".
func (c *Code) String() string {
	return fmt.Sprintf("RS(%d,%d)/%s", c.n, c.k, c.construction)
}

// StorageOverhead returns the redundancy overhead (n-k)/k, e.g. 0.2 for
// (12,10). 3-way replication corresponds to 2.0.
func (c *Code) StorageOverhead() float64 {
	return float64(c.n-c.k) / float64(c.k)
}

// Encode computes the n-k parity shards for k equal-length native shards.
// The native shards are not modified.
func (c *Code) Encode(native [][]byte) ([][]byte, error) {
	if err := c.checkShards(native, c.k); err != nil {
		return nil, err
	}
	size := len(native[0])
	parity := make([][]byte, c.n-c.k)
	for i := range parity {
		parity[i] = make([]byte, size)
		gf256.MulAddSlices(c.enc.Row(c.k+i), native, parity[i])
	}
	return parity, nil
}

// EncodeStripe returns all n shards of a stripe: the k native shards
// (aliasing the inputs) followed by freshly allocated parity shards.
func (c *Code) EncodeStripe(native [][]byte) ([][]byte, error) {
	parity, err := c.Encode(native)
	if err != nil {
		return nil, err
	}
	stripe := make([][]byte, 0, c.n)
	stripe = append(stripe, native...)
	stripe = append(stripe, parity...)
	return stripe, nil
}

// Reconstruct fills in the missing shards of a stripe in place. shards must
// have length n; missing shards are nil entries. At least k shards must be
// present. On success every entry of shards is non-nil and consistent with
// the code.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	present := make([]int, 0, c.n)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
		present = append(present, i)
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.k)
	}
	if len(present) == c.n {
		return nil // nothing missing
	}

	// Decode: pick the first k present shards, invert the corresponding
	// rows of the encoding matrix, recover the native shards, then re-encode
	// whatever else is missing.
	use := present[:c.k]
	sub, err := c.enc.SubMatrix(use)
	if err != nil {
		return err
	}
	dec, err := sub.Invert()
	if err != nil {
		return fmt.Errorf("erasure: decode matrix inversion: %w", err)
	}
	in := make([][]byte, c.k)
	for i, idx := range use {
		in[i] = shards[idx]
	}
	native := make([][]byte, c.k)
	needNativeDecode := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			needNativeDecode = true
		}
	}
	if needNativeDecode {
		out := make([][]byte, c.k)
		for i := range out {
			out[i] = make([]byte, size)
		}
		if err := dec.MulVec(in, out); err != nil {
			return err
		}
		for i := 0; i < c.k; i++ {
			if shards[i] == nil {
				shards[i] = out[i]
			}
			native[i] = shards[i]
		}
	} else {
		for i := 0; i < c.k; i++ {
			native[i] = shards[i]
		}
	}
	// Recompute any missing parity from the (now complete) native shards.
	for i := c.k; i < c.n; i++ {
		if shards[i] != nil {
			continue
		}
		p := make([]byte, size)
		gf256.MulAddSlices(c.enc.Row(i), native, p)
		shards[i] = p
	}
	return nil
}

// ReconstructBlock recovers only the shard at index idx from any k present
// shards, returning the reconstructed shard without mutating the stripe.
// This models a degraded read of a single lost block: the caller supplies
// the k downloaded shards, identified by sourceIdx.
func (c *Code) ReconstructBlock(idx int, sourceIdx []int, sources [][]byte) ([]byte, error) {
	if idx < 0 || idx >= c.n {
		return nil, fmt.Errorf("erasure: block index %d out of range [0,%d)", idx, c.n)
	}
	if len(sourceIdx) != c.k || len(sources) != c.k {
		return nil, fmt.Errorf("%w: degraded read needs exactly k=%d sources, got %d", ErrShardCount, c.k, len(sources))
	}
	size := len(sources[0])
	for i, s := range sources {
		if len(s) != size {
			return nil, ErrShardSizeMismatch
		}
		if sourceIdx[i] == idx {
			out := make([]byte, size)
			copy(out, s)
			return out, nil
		}
	}
	sub, err := c.enc.SubMatrix(sourceIdx)
	if err != nil {
		return nil, err
	}
	dec, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: degraded-read decode: %w", err)
	}
	// Row idx of enc * dec maps the chosen sources directly to shard idx.
	encRow, err := c.enc.SubMatrix([]int{idx})
	if err != nil {
		return nil, err
	}
	coeffs, err := encRow.Mul(dec)
	if err != nil {
		return nil, err
	}
	// The decode is positionwise (out[i] depends only on byte i of every
	// source), so large blocks are reconstructed in disjoint chunks across
	// a GOMAXPROCS-bounded set of workers — the degraded-read hot path of
	// the real-bytes engine. Output is byte-identical to the serial path.
	out := make([]byte, size)
	row := coeffs.Row(0)
	forEachChunk(size, reconstructWorkers(size), func(lo, hi int) {
		gf256.MulAddSlices(row, subSlices(sources, lo, hi), out[lo:hi])
	})
	return out, nil
}

// Verify reports whether a complete stripe is consistent: every parity shard
// equals the encoding of the native shards.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if err := c.checkShards(shards, c.n); err != nil {
		return false, err
	}
	parity, err := c.Encode(shards[:c.k])
	if err != nil {
		return false, err
	}
	for i, p := range parity {
		got := shards[c.k+i]
		for j := range p {
			if p[j] != got[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

func (c *Code) checkShards(shards [][]byte, want int) error {
	if len(shards) != want {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), want)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			return fmt.Errorf("erasure: shard %d is nil", i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
	}
	if size == 0 {
		return errors.New("erasure: zero-length shards")
	}
	return nil
}
