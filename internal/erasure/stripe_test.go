package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{1, 7, 64, 100, 128, 129, 1000} {
		data := make([]byte, size)
		rng.Read(data)
		stripes, err := SplitStripes(data, 4, 32)
		if err != nil {
			t.Fatal(err)
		}
		back, err := JoinStripes(stripes, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestSplitStripesShape(t *testing.T) {
	data := make([]byte, 100)
	stripes, err := SplitStripes(data, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	// 100 bytes / 30 per block = 4 blocks -> 2 stripes of k=2.
	if len(stripes) != 2 {
		t.Fatalf("got %d stripes, want 2", len(stripes))
	}
	for _, s := range stripes {
		if len(s) != 2 {
			t.Fatalf("stripe has %d blocks, want 2", len(s))
		}
		for _, b := range s {
			if len(b) != 30 {
				t.Fatalf("block size %d, want 30", len(b))
			}
		}
	}
}

func TestSplitStripesPadding(t *testing.T) {
	data := []byte{1, 2, 3}
	stripes, err := SplitStripes(data, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripes) != 1 {
		t.Fatalf("got %d stripes", len(stripes))
	}
	if stripes[0][1][1] != 0 {
		t.Fatal("tail must be zero padded")
	}
}

func TestSplitStripesErrors(t *testing.T) {
	if _, err := SplitStripes([]byte{1}, 0, 10); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := SplitStripes([]byte{1}, 2, 0); err == nil {
		t.Fatal("blockSize=0 must fail")
	}
	s, err := SplitStripes(nil, 2, 4)
	if err != nil || s != nil {
		t.Fatalf("empty data: %v %v", s, err)
	}
}

func TestJoinStripesTooShort(t *testing.T) {
	if _, err := JoinStripes(nil, 5); err == nil {
		t.Fatal("origLen beyond data must fail")
	}
}

func TestSplitJoinProperty(t *testing.T) {
	f := func(raw []byte, kSeed, bsSeed uint8) bool {
		k := 1 + int(kSeed)%6
		bs := 1 + int(bsSeed)%50
		stripes, err := SplitStripes(raw, k, bs)
		if err != nil {
			return false
		}
		back, err := JoinStripes(stripes, len(raw))
		if err != nil {
			return false
		}
		return bytes.Equal(back, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlockID(t *testing.T) {
	b := BlockID{Stripe: 2, Index: 3}
	if !b.IsParity(2) {
		t.Fatal("index 3 with k=2 is parity")
	}
	if b.IsParity(4) {
		t.Fatal("index 3 with k=4 is native")
	}
	if b.String() != "blk(s2,i3)" {
		t.Fatalf("String() = %q", b.String())
	}
}
