package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLRCValidation(t *testing.T) {
	bad := []struct{ k, l, g int }{
		{0, 1, 1}, {4, 0, 1}, {4, 2, 0}, {5, 2, 1}, {250, 5, 10},
	}
	for _, p := range bad {
		if _, err := NewLRC(p.k, p.l, p.g); err == nil {
			t.Errorf("NewLRC(%d,%d,%d) should fail", p.k, p.l, p.g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewLRC must panic on bad params")
		}
	}()
	MustNewLRC(0, 1, 1)
}

func TestLRCAccessors(t *testing.T) {
	c := MustNewLRC(12, 2, 2)
	if c.N() != 16 || c.K() != 12 || c.Groups() != 2 || c.GlobalParities() != 2 {
		t.Fatalf("accessors wrong: %v", c)
	}
	if c.String() != "LRC(12,2,2)" {
		t.Fatalf("String() = %q", c.String())
	}
	if overhead := c.StorageOverhead(); overhead != 4.0/12 {
		t.Fatalf("overhead = %v", overhead)
	}
}

func TestLRCGroupOf(t *testing.T) {
	c := MustNewLRC(12, 2, 2)
	if c.GroupOf(0) != 0 || c.GroupOf(5) != 0 || c.GroupOf(6) != 1 || c.GroupOf(11) != 1 {
		t.Fatal("data group mapping wrong")
	}
	if c.GroupOf(12) != 0 || c.GroupOf(13) != 1 {
		t.Fatal("local parity group mapping wrong")
	}
	if c.GroupOf(14) != -1 || c.GroupOf(15) != -1 || c.GroupOf(-1) != -1 || c.GroupOf(99) != -1 {
		t.Fatal("global parity / out of range must map to -1")
	}
}

func TestLRCLocalRepairGroup(t *testing.T) {
	c := MustNewLRC(6, 2, 2) // groups {0,1,2}+p6, {3,4,5}+p7; globals 8,9
	srcs, ok := c.LocalRepairGroup(1)
	if !ok {
		t.Fatal("data block must be locally repairable")
	}
	if !sameSet(srcs, []int{0, 2, 6}) {
		t.Fatalf("repair group of 1 = %v, want {0,2,6}", srcs)
	}
	// Local repair needs k/l = 3 blocks, far fewer than k = 6.
	if len(srcs) != 3 {
		t.Fatalf("local repair set size %d, want 3", len(srcs))
	}
	srcs, ok = c.LocalRepairGroup(7) // local parity of group 1
	if !ok || !sameSet(srcs, []int{3, 4, 5}) {
		t.Fatalf("repair group of parity 7 = %v ok=%v", srcs, ok)
	}
	if _, ok := c.LocalRepairGroup(8); ok {
		t.Fatal("global parity has no local group")
	}
}

func TestLRCEncodeVerify(t *testing.T) {
	c := MustNewLRC(6, 2, 2)
	rng := rand.New(rand.NewSource(1))
	data := randShards(rng, 6, 64)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripe) != 10 {
		t.Fatalf("stripe size %d", len(stripe))
	}
	ok, err := c.Verify(stripe)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
	// Local parity really is the group XOR.
	for j := 0; j < 64; j++ {
		if stripe[6][j] != stripe[0][j]^stripe[1][j]^stripe[2][j] {
			t.Fatal("local parity 0 is not the group XOR")
		}
	}
	stripe[8][3] ^= 1
	ok, err = c.Verify(stripe)
	if err != nil || ok {
		t.Fatal("Verify must catch global-parity corruption")
	}
}

func TestLRCEncodeErrors(t *testing.T) {
	c := MustNewLRC(4, 2, 1)
	if _, err := c.Encode([][]byte{{1}}); err == nil {
		t.Fatal("wrong data count must fail")
	}
	if _, err := c.Encode([][]byte{{1}, nil, {1}, {1}}); err == nil {
		t.Fatal("nil shard must fail")
	}
	if _, err := c.Encode([][]byte{{1}, {1, 2}, {1}, {1}}); err == nil {
		t.Fatal("ragged shards must fail")
	}
	if _, err := c.Encode([][]byte{{}, {}, {}, {}}); err == nil {
		t.Fatal("empty shards must fail")
	}
}

func TestLRCSingleFailureLocalRepair(t *testing.T) {
	c := MustNewLRC(12, 2, 2)
	rng := rand.New(rand.NewSource(2))
	stripe, err := c.EncodeStripe(randShards(rng, 12, 128))
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < c.N(); lost++ {
		group, ok := c.LocalRepairGroup(lost)
		if !ok {
			continue
		}
		srcs := make([][]byte, len(group))
		for i, idx := range group {
			srcs[i] = stripe[idx]
		}
		got, err := c.ReconstructBlock(lost, group, srcs)
		if err != nil {
			t.Fatalf("lost %d: %v", lost, err)
		}
		if !bytes.Equal(got, stripe[lost]) {
			t.Fatalf("lost %d: local repair produced wrong bytes", lost)
		}
	}
}

func TestLRCReconstructBlockGlobalPath(t *testing.T) {
	// Repair a data block from a non-local source set (forces the general
	// decode path).
	c := MustNewLRC(6, 2, 2)
	rng := rand.New(rand.NewSource(3))
	stripe, _ := c.EncodeStripe(randShards(rng, 6, 32))
	srcIdx := []int{1, 2, 3, 4, 5, 8} // block 0 lost; use global parity 8
	srcs := make([][]byte, len(srcIdx))
	for i, idx := range srcIdx {
		srcs[i] = stripe[idx]
	}
	got, err := c.ReconstructBlock(0, srcIdx, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stripe[0]) {
		t.Fatal("global-path repair wrong")
	}
	// Self in sources returns a copy.
	got, err = c.ReconstructBlock(1, srcIdx, srcs)
	if err != nil || !bytes.Equal(got, stripe[1]) {
		t.Fatal("self-source repair wrong")
	}
	// Errors.
	if _, err := c.ReconstructBlock(-1, srcIdx, srcs); err == nil {
		t.Fatal("bad index must fail")
	}
	if _, err := c.ReconstructBlock(0, []int{1}, srcs); err == nil {
		t.Fatal("mismatched lengths must fail")
	}
}

func TestLRCReconstructMultiFailure(t *testing.T) {
	// LRC(6,2,2) tolerates any pattern with enough independent equations:
	// certainly any single failure and the g+? patterns below.
	c := MustNewLRC(6, 2, 2)
	rng := rand.New(rand.NewSource(4))
	orig, _ := c.EncodeStripe(randShards(rng, 6, 64))
	recover := func(lost []int) error {
		work := make([][]byte, c.N())
		for i := range work {
			work[i] = append([]byte(nil), orig[i]...)
		}
		for _, idx := range lost {
			work[idx] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			return err
		}
		for i := range work {
			if !bytes.Equal(work[i], orig[i]) {
				t.Fatalf("lost %v: shard %d wrong after reconstruct", lost, i)
			}
		}
		return nil
	}
	recoverable := [][]int{
		{0}, {6}, {8},
		{0, 3},       // one data block per group: two local equations
		{0, 8},       // data + global parity
		{0, 1},       // two in one group: local eq + global eqs
		{0, 1, 3},    // three data blocks (2+1 across groups)
		{6, 7, 8, 9}, // all parities (re-encode)
		{0, 6},       // data + its own local parity -> needs globals
	}
	for _, lost := range recoverable {
		if err := recover(lost); err != nil {
			t.Errorf("pattern %v should be recoverable: %v", lost, err)
		}
	}
	// Unrecoverable: lose 3 data blocks of one group plus its parity ->
	// only 2 global equations for 3 unknowns.
	work := make([][]byte, c.N())
	for i := range work {
		work[i] = append([]byte(nil), orig[i]...)
	}
	for _, idx := range []int{0, 1, 2, 6} {
		work[idx] = nil
	}
	if err := c.Reconstruct(work); err == nil {
		t.Error("losing a whole group plus its parity must be unrecoverable with g=2... for 3 unknowns")
	}
}

func TestLRCReconstructShapeErrors(t *testing.T) {
	c := MustNewLRC(4, 2, 1)
	if err := c.Reconstruct(make([][]byte, 3)); err == nil {
		t.Fatal("wrong stripe width must fail")
	}
	if err := c.Reconstruct(make([][]byte, 7)); err == nil {
		t.Fatal("all-nil stripe must fail")
	}
	bad := make([][]byte, 7)
	bad[0] = []byte{1, 2}
	bad[1] = []byte{1}
	if err := c.Reconstruct(bad); err == nil {
		t.Fatal("ragged stripe must fail")
	}
}

func TestLRCRoundTripProperty(t *testing.T) {
	// Property: any single lost block is recoverable, and any pattern of
	// up to g random erasures plus intact local groups round-trips.
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := []struct{ k, l, g int }{{4, 2, 2}, {6, 2, 2}, {6, 3, 2}, {12, 2, 2}}
		p := params[rng.Intn(len(params))]
		c := MustNewLRC(p.k, p.l, p.g)
		orig, err := c.EncodeStripe(randShards(rng, p.k, 1+rng.Intn(100)))
		if err != nil {
			return false
		}
		lost := rng.Intn(c.N())
		work := make([][]byte, c.N())
		for i := range work {
			if i != lost {
				work[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			return false
		}
		for i := range work {
			if !bytes.Equal(work[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkLRCLocalRepair(b *testing.B) {
	c := MustNewLRC(12, 2, 2)
	rng := rand.New(rand.NewSource(1))
	stripe, _ := c.EncodeStripe(randShards(rng, 12, 64*1024))
	group, _ := c.LocalRepairGroup(0)
	srcs := make([][]byte, len(group))
	for i, idx := range group {
		srcs[i] = stripe[idx]
	}
	b.SetBytes(int64(len(group) * 64 * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReconstructBlock(0, group, srcs); err != nil {
			b.Fatal(err)
		}
	}
}
