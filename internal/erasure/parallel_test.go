package erasure

import (
	"bytes"
	"testing"

	"degradedfirst/internal/gf256"
)

func fillShard(b []byte, seed byte) {
	x := uint32(seed) + 9
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 8)
	}
}

func TestForEachChunkCoversRange(t *testing.T) {
	for _, size := range []int{0, 1, 7, 8, 9, 100, 4096, 65536, 65537} {
		for _, workers := range []int{1, 2, 3, 4, 16, 1000} {
			covered := make([]byte, size)
			var counts [1]int
			forEachChunk(size, 1, func(lo, hi int) { counts[0]++; _ = lo; _ = hi })
			forEachChunk(size, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("size=%d workers=%d: index %d covered %d times", size, workers, i, c)
				}
			}
		}
	}
}

// TestChunkedDecodeMatchesSerial drives the exact chunked kernel shape
// ReconstructBlock uses, with an explicit worker count > 1 so the
// goroutine fan-out runs even on single-CPU hosts (and under -race).
// The parallel result must be byte-identical to the serial kernel and to
// the scalar reference.
func TestChunkedDecodeMatchesSerial(t *testing.T) {
	const size = 192*1024 + 5 // above chunkParallelMin, odd tail
	const k = 10
	coeffs := make([]byte, k)
	sources := make([][]byte, k)
	for j := 0; j < k; j++ {
		coeffs[j] = byte(3*j + 2)
		sources[j] = make([]byte, size)
		fillShard(sources[j], byte(j))
	}
	serial := make([]byte, size)
	gf256.MulAddSlices(coeffs, sources, serial)
	ref := make([]byte, size)
	for j := range sources {
		gf256.RefMulSlice(coeffs[j], sources[j], ref)
	}
	for _, workers := range []int{2, 3, 8} {
		parallel := make([]byte, size)
		forEachChunk(size, workers, func(lo, hi int) {
			gf256.MulAddSlices(coeffs, subSlices(sources, lo, hi), parallel[lo:hi])
		})
		if !bytes.Equal(parallel, serial) {
			t.Fatalf("workers=%d: chunked decode diverges from serial kernel", workers)
		}
		if !bytes.Equal(parallel, ref) {
			t.Fatalf("workers=%d: chunked decode diverges from scalar reference", workers)
		}
	}
}

// TestReconstructBlockLargeShard covers the size regime where
// ReconstructBlock engages chunking (when GOMAXPROCS allows): the result
// must equal the original shard regardless.
func TestReconstructBlockLargeShard(t *testing.T) {
	code := MustNew(14, 10)
	size := 2 * chunkParallelMin
	native := make([][]byte, 10)
	for i := range native {
		native[i] = make([]byte, size)
		fillShard(native[i], byte(i))
	}
	stripe, err := code.EncodeStripe(native)
	if err != nil {
		t.Fatal(err)
	}
	// Lose shard 3; use shards 0-2, 4-10 as sources.
	srcIdx := make([]int, 0, 10)
	sources := make([][]byte, 0, 10)
	for i := 0; i < 14 && len(srcIdx) < 10; i++ {
		if i == 3 {
			continue
		}
		srcIdx = append(srcIdx, i)
		sources = append(sources, stripe[i])
	}
	got, err := code.ReconstructBlock(3, srcIdx, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, native[3]) {
		t.Fatal("large-shard ReconstructBlock returned wrong bytes")
	}
}

func TestLRCLocalRepairLargeShard(t *testing.T) {
	lrc := MustNewLRC(12, 2, 2)
	size := 2 * chunkParallelMin
	data := make([][]byte, 12)
	for i := range data {
		data[i] = make([]byte, size)
		fillShard(data[i], byte(i+40))
	}
	stripe, err := lrc.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	group, ok := lrc.LocalRepairGroup(2)
	if !ok {
		t.Fatal("data block 2 must have a local repair group")
	}
	sources := make([][]byte, len(group))
	for i, idx := range group {
		sources[i] = stripe[idx]
	}
	got, err := lrc.ReconstructBlock(2, group, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[2]) {
		t.Fatal("large-shard LRC local repair returned wrong bytes")
	}
}
