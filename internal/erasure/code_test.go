package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var _codings = []struct {
	n, k int
}{
	{4, 2}, {6, 4}, {8, 6}, {9, 6}, {12, 9}, {12, 10}, {14, 10}, {16, 12}, {20, 15},
}

func randShards(rng *rand.Rand, k, size int) [][]byte {
	shards := make([][]byte, k)
	for i := range shards {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	return shards
}

func TestNewRejectsBadParams(t *testing.T) {
	bad := []struct{ n, k int }{{2, 2}, {2, 3}, {0, 0}, {5, 0}, {5, -1}, {300, 10}}
	for _, p := range bad {
		if _, err := New(p.n, p.k); err == nil {
			t.Errorf("New(%d, %d) should fail", p.n, p.k)
		}
	}
}

func TestMustNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(2,2) did not panic")
		}
	}()
	MustNew(2, 2)
}

func TestCodeAccessors(t *testing.T) {
	c := MustNew(12, 10)
	if c.N() != 12 || c.K() != 10 || c.ParityShards() != 2 {
		t.Fatalf("accessors wrong: %v", c)
	}
	if c.Construction() != VandermondeRS {
		t.Fatalf("default construction = %v", c.Construction())
	}
	if got := c.String(); got != "RS(12,10)/vandermonde" {
		t.Fatalf("String() = %q", got)
	}
	if overhead := c.StorageOverhead(); overhead != 0.2 {
		t.Fatalf("StorageOverhead() = %v, want 0.2", overhead)
	}
	cc := MustNew(6, 4, WithConstruction(CauchyRS))
	if cc.Construction() != CauchyRS || cc.Construction().String() != "cauchy" {
		t.Fatalf("cauchy construction not applied")
	}
}

func TestEncodeSystematic(t *testing.T) {
	// Top k rows are identity: parity must be deterministic and native
	// shards are stored verbatim in EncodeStripe.
	rng := rand.New(rand.NewSource(7))
	for _, p := range _codings {
		c := MustNew(p.n, p.k)
		native := randShards(rng, p.k, 64)
		stripe, err := c.EncodeStripe(native)
		if err != nil {
			t.Fatal(err)
		}
		if len(stripe) != p.n {
			t.Fatalf("(%d,%d): stripe has %d shards", p.n, p.k, len(stripe))
		}
		for i := 0; i < p.k; i++ {
			if !bytes.Equal(stripe[i], native[i]) {
				t.Fatalf("(%d,%d): native shard %d mutated", p.n, p.k, i)
			}
		}
		ok, err := c.Verify(stripe)
		if err != nil || !ok {
			t.Fatalf("(%d,%d): Verify = %v, %v", p.n, p.k, ok, err)
		}
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// For a small code, exhaustively erase every subset of size <= n-k and
	// verify reconstruction restores the stripe byte-for-byte.
	const n, k = 6, 4
	for _, cons := range []Construction{VandermondeRS, CauchyRS} {
		c := MustNew(n, k, WithConstruction(cons))
		rng := rand.New(rand.NewSource(11))
		native := randShards(rng, k, 128)
		orig, err := c.EncodeStripe(native)
		if err != nil {
			t.Fatal(err)
		}
		for mask := 0; mask < (1 << n); mask++ {
			erased := 0
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					erased++
				}
			}
			if erased == 0 || erased > n-k {
				continue
			}
			work := make([][]byte, n)
			for i := range work {
				if mask&(1<<i) == 0 {
					work[i] = append([]byte(nil), orig[i]...)
				}
			}
			if err := c.Reconstruct(work); err != nil {
				t.Fatalf("%v mask %#x: %v", cons, mask, err)
			}
			for i := range work {
				if !bytes.Equal(work[i], orig[i]) {
					t.Fatalf("%v mask %#x: shard %d mismatch", cons, mask, i)
				}
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c := MustNew(4, 2)
	work := [][]byte{nil, nil, nil, {1, 2}}
	if err := c.Reconstruct(work); err == nil {
		t.Fatal("reconstruct with 1 < k shards must fail")
	}
}

func TestReconstructShapeErrors(t *testing.T) {
	c := MustNew(4, 2)
	if err := c.Reconstruct(make([][]byte, 3)); err == nil {
		t.Fatal("wrong shard count must fail")
	}
	work := [][]byte{{1, 2}, {1}, nil, nil}
	if err := c.Reconstruct(work); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestReconstructNoopWhenComplete(t *testing.T) {
	c := MustNew(4, 2)
	rng := rand.New(rand.NewSource(3))
	stripe, _ := c.EncodeStripe(randShards(rng, 2, 16))
	snapshot := make([][]byte, len(stripe))
	for i := range stripe {
		snapshot[i] = append([]byte(nil), stripe[i]...)
	}
	if err := c.Reconstruct(stripe); err != nil {
		t.Fatal(err)
	}
	for i := range stripe {
		if !bytes.Equal(stripe[i], snapshot[i]) {
			t.Fatal("complete stripe must not change")
		}
	}
}

func TestReconstructBlockDegradedRead(t *testing.T) {
	// Degraded read: reconstruct one lost block from k downloaded shards,
	// for every choice of lost block and many random source subsets.
	const n, k = 12, 10
	c := MustNew(n, k)
	rng := rand.New(rand.NewSource(13))
	stripe, err := c.EncodeStripe(randShards(rng, k, 256))
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < n; lost++ {
		for trial := 0; trial < 5; trial++ {
			// Pick k random surviving shards.
			perm := rng.Perm(n)
			srcIdx := make([]int, 0, k)
			for _, i := range perm {
				if i != lost && len(srcIdx) < k {
					srcIdx = append(srcIdx, i)
				}
			}
			sources := make([][]byte, k)
			for i, idx := range srcIdx {
				sources[i] = stripe[idx]
			}
			got, err := c.ReconstructBlock(lost, srcIdx, sources)
			if err != nil {
				t.Fatalf("lost=%d trial=%d: %v", lost, trial, err)
			}
			if !bytes.Equal(got, stripe[lost]) {
				t.Fatalf("lost=%d trial=%d: reconstructed block mismatch", lost, trial)
			}
		}
	}
}

func TestReconstructBlockWithSelfInSources(t *testing.T) {
	// If the requested block happens to be among the sources (not actually
	// lost), it is returned as a copy.
	c := MustNew(4, 2)
	rng := rand.New(rand.NewSource(5))
	stripe, _ := c.EncodeStripe(randShards(rng, 2, 8))
	got, err := c.ReconstructBlock(1, []int{0, 1}, [][]byte{stripe[0], stripe[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stripe[1]) {
		t.Fatal("should return the block itself")
	}
	got[0] ^= 0xff
	if bytes.Equal(got, stripe[1]) {
		t.Fatal("must return a copy, not an alias")
	}
}

func TestReconstructBlockErrors(t *testing.T) {
	c := MustNew(4, 2)
	if _, err := c.ReconstructBlock(9, []int{0, 1}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("index out of range must fail")
	}
	if _, err := c.ReconstructBlock(0, []int{1}, [][]byte{{1}}); err == nil {
		t.Fatal("wrong source count must fail")
	}
	if _, err := c.ReconstructBlock(0, []int{1, 2}, [][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("source size mismatch must fail")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c := MustNew(9, 6)
	rng := rand.New(rand.NewSource(17))
	stripe, _ := c.EncodeStripe(randShards(rng, 6, 32))
	stripe[7][5] ^= 1
	ok, err := c.Verify(stripe)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify must detect a corrupted parity byte")
	}
}

func TestEncodeErrors(t *testing.T) {
	c := MustNew(4, 2)
	if _, err := c.Encode([][]byte{{1, 2}}); err == nil {
		t.Fatal("wrong native count must fail")
	}
	if _, err := c.Encode([][]byte{{1, 2}, nil}); err == nil {
		t.Fatal("nil shard must fail")
	}
	if _, err := c.Encode([][]byte{{1, 2}, {3}}); err == nil {
		t.Fatal("mismatched sizes must fail")
	}
	if _, err := c.Encode([][]byte{{}, {}}); err == nil {
		t.Fatal("zero-length shards must fail")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: for random data, random (n,k) from the table, and a random
	// erasure pattern of <= n-k shards, Reconstruct restores the stripe.
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := _codings[rng.Intn(len(_codings))]
		cons := VandermondeRS
		if rng.Intn(2) == 1 {
			cons = CauchyRS
		}
		c := MustNew(p.n, p.k, WithConstruction(cons))
		size := 1 + rng.Intn(300)
		orig, err := c.EncodeStripe(randShards(rng, p.k, size))
		if err != nil {
			return false
		}
		nErase := 1 + rng.Intn(p.n-p.k)
		work := make([][]byte, p.n)
		for i := range work {
			work[i] = append([]byte(nil), orig[i]...)
		}
		for _, i := range rng.Perm(p.n)[:nErase] {
			work[i] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			return false
		}
		for i := range work {
			if !bytes.Equal(work[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("round-trip property failed: %v", err)
	}
}

func BenchmarkEncode12_10(b *testing.B) {
	c := MustNew(12, 10)
	rng := rand.New(rand.NewSource(1))
	native := randShards(rng, 10, 64*1024)
	b.SetBytes(int64(10 * 64 * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(native); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructOne12_10(b *testing.B) {
	c := MustNew(12, 10)
	rng := rand.New(rand.NewSource(1))
	stripe, _ := c.EncodeStripe(randShards(rng, 10, 64*1024))
	srcIdx := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sources := make([][]byte, len(srcIdx))
	for i, idx := range srcIdx {
		sources[i] = stripe[idx]
	}
	b.SetBytes(int64(10 * 64 * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReconstructBlock(0, srcIdx, sources); err != nil {
			b.Fatal(err)
		}
	}
}
