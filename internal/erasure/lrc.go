package erasure

import (
	"errors"
	"fmt"

	"degradedfirst/internal/gf256"
)

// LRC is an Azure-style Local Reconstruction Code (Huang et al., USENIX
// ATC 2012 — reference [20] of the paper). k data blocks are split into l
// local groups of k/l blocks; each group gets one XOR local parity, and g
// global Reed-Solomon parities cover all k data blocks. A single lost
// data block is repaired from its local group — k/l blocks instead of k —
// which is exactly the "special erasure code constructions ... to reduce
// the number of blocks read" that footnote 1 of the paper says
// degraded-first scheduling also applies to.
//
// Block layout within a stripe: indices [0, k) are data, [k, k+l) are the
// local parities (group i's parity at k+i), and [k+l, k+l+g) are the
// global parities.
type LRC struct {
	k, l, g   int
	groupSize int
	// global is the g x k matrix of global parity coefficients (Cauchy
	// rows, so any g columns are independent).
	global *gf256.Matrix
}

// NewLRC builds an LRC(k, l, g) code. k must be divisible by l; l and g
// must be positive.
func NewLRC(k, l, g int) (*LRC, error) {
	if k <= 0 || l <= 0 || g <= 0 {
		return nil, fmt.Errorf("%w: LRC(k=%d, l=%d, g=%d)", ErrInvalidParams, k, l, g)
	}
	if k%l != 0 {
		return nil, fmt.Errorf("%w: LRC k=%d not divisible by l=%d", ErrInvalidParams, k, l)
	}
	if k+l+g > 256 {
		return nil, fmt.Errorf("%w: LRC stripe width %d exceeds field size", ErrInvalidParams, k+l+g)
	}
	return &LRC{
		k: k, l: l, g: g,
		groupSize: k / l,
		global:    gf256.Cauchy(g, k),
	}, nil
}

// MustNewLRC is NewLRC but panics on error.
func MustNewLRC(k, l, g int) *LRC {
	c, err := NewLRC(k, l, g)
	if err != nil {
		panic(fmt.Sprintf("erasure: MustNewLRC(%d, %d, %d): %v", k, l, g, err))
	}
	return c
}

// N returns the stripe width k+l+g.
func (c *LRC) N() int { return c.k + c.l + c.g }

// K returns the data block count.
func (c *LRC) K() int { return c.k }

// Groups returns the number of local groups l.
func (c *LRC) Groups() int { return c.l }

// GlobalParities returns g.
func (c *LRC) GlobalParities() int { return c.g }

// String implements fmt.Stringer, e.g. "LRC(12,2,2)".
func (c *LRC) String() string { return fmt.Sprintf("LRC(%d,%d,%d)", c.k, c.l, c.g) }

// StorageOverhead returns (l+g)/k.
func (c *LRC) StorageOverhead() float64 { return float64(c.l+c.g) / float64(c.k) }

// GroupOf returns the local group of a data or local-parity block index,
// or -1 for global parities.
func (c *LRC) GroupOf(idx int) int {
	switch {
	case idx < 0 || idx >= c.N():
		return -1
	case idx < c.k:
		return idx / c.groupSize
	case idx < c.k+c.l:
		return idx - c.k
	default:
		return -1
	}
}

// LocalRepairGroup returns the block indices needed to repair block idx
// locally: for a data block, the rest of its group plus the group parity;
// for a local parity, the group's data. Global parities have no local
// group; ok is false and the caller must fall back to a global decode.
func (c *LRC) LocalRepairGroup(idx int) (sources []int, ok bool) {
	group := c.GroupOf(idx)
	if group < 0 {
		return nil, false
	}
	for i := group * c.groupSize; i < (group+1)*c.groupSize; i++ {
		if i != idx {
			sources = append(sources, i)
		}
	}
	if parity := c.k + group; parity != idx {
		sources = append(sources, parity)
	}
	return sources, true
}

// Encode computes the l local and g global parity shards for k data
// shards, returned as one slice in stripe order (locals then globals).
func (c *LRC) Encode(data [][]byte) ([][]byte, error) {
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	size := len(data[0])
	parity := make([][]byte, c.l+c.g)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	// Local parities: XOR of each group (word-wide AddSlice kernel).
	for grp := 0; grp < c.l; grp++ {
		for i := grp * c.groupSize; i < (grp+1)*c.groupSize; i++ {
			gf256.AddSlice(data[i], parity[grp])
		}
	}
	// Global parities: Cauchy combinations of all data, fused across the
	// k sources.
	for r := 0; r < c.g; r++ {
		gf256.MulAddSlices(c.global.Row(r), data, parity[c.l+r])
	}
	return parity, nil
}

// EncodeStripe returns all n shards: data (aliased) then parity.
func (c *LRC) EncodeStripe(data [][]byte) ([][]byte, error) {
	parity, err := c.Encode(data)
	if err != nil {
		return nil, err
	}
	stripe := make([][]byte, 0, c.N())
	stripe = append(stripe, data...)
	stripe = append(stripe, parity...)
	return stripe, nil
}

// ReconstructBlock repairs a single lost block from the provided sources.
// If srcIdx is exactly the block's local repair group the repair is a
// cheap XOR; otherwise a general decode over the supplied equations is
// attempted.
func (c *LRC) ReconstructBlock(idx int, srcIdx []int, sources [][]byte) ([]byte, error) {
	if idx < 0 || idx >= c.N() {
		return nil, fmt.Errorf("erasure: LRC block index %d out of range", idx)
	}
	if len(srcIdx) != len(sources) || len(sources) == 0 {
		return nil, fmt.Errorf("%w: %d indices for %d sources", ErrShardCount, len(srcIdx), len(sources))
	}
	size := len(sources[0])
	for i, s := range sources {
		if len(s) != size {
			return nil, ErrShardSizeMismatch
		}
		if srcIdx[i] == idx {
			out := make([]byte, size)
			copy(out, s)
			return out, nil
		}
	}
	// Local repair path: sources comprise the whole local group, so the
	// repair is a pure XOR — word-wide, and chunked across workers for
	// large blocks (byte-identical to the serial path; see forEachChunk).
	if group, ok := c.LocalRepairGroup(idx); ok && sameSet(group, srcIdx) {
		out := make([]byte, size)
		forEachChunk(size, reconstructWorkers(size), func(lo, hi int) {
			for _, s := range sources {
				gf256.AddSlice(s[lo:hi], out[lo:hi])
			}
		})
		return out, nil
	}
	// General path: reconstruct the whole stripe from what we have.
	shards := make([][]byte, c.N())
	for i, id := range srcIdx {
		if id < 0 || id >= c.N() {
			return nil, fmt.Errorf("erasure: LRC source index %d out of range", id)
		}
		shards[id] = sources[i]
	}
	if err := c.Reconstruct(shards); err != nil {
		return nil, err
	}
	return shards[idx], nil
}

// Reconstruct fills every nil shard of the stripe in place, solving the
// available parity equations over the missing data blocks. It returns an
// error when the erasure pattern is unrecoverable.
func (c *LRC) Reconstruct(shards [][]byte) error {
	if len(shards) != c.N() {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.N())
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
	}
	if size <= 0 {
		return errors.New("erasure: LRC stripe has no shards")
	}

	// Unknowns: the missing *data* blocks. Build one equation per
	// available parity block whose combination involves a missing data
	// block; constants fold in the known data.
	var missingData []int
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missingData = append(missingData, i)
		}
	}
	if len(missingData) > 0 {
		col := make(map[int]int, len(missingData))
		for j, idx := range missingData {
			col[idx] = j
		}
		var (
			eqCoeffs [][]byte
			eqRHS    [][]byte
		)
		addEq := func(coeffRow func(dataIdx int) byte, parityShard []byte) {
			co := make([]byte, len(missingData))
			involved := false
			rhs := make([]byte, size)
			copy(rhs, parityShard)
			for i := 0; i < c.k; i++ {
				coeff := coeffRow(i)
				if coeff == 0 {
					continue
				}
				if shards[i] != nil {
					gf256.MulSlice(coeff, shards[i], rhs) // move knowns to RHS
				} else {
					co[col[i]] = coeff
					involved = true
				}
			}
			if involved {
				eqCoeffs = append(eqCoeffs, co)
				eqRHS = append(eqRHS, rhs)
			}
		}
		for grp := 0; grp < c.l; grp++ {
			if shards[c.k+grp] == nil {
				continue
			}
			grp := grp
			addEq(func(i int) byte {
				if i/c.groupSize == grp {
					return 1
				}
				return 0
			}, shards[c.k+grp])
		}
		for r := 0; r < c.g; r++ {
			if shards[c.k+c.l+r] == nil {
				continue
			}
			row := c.global.Row(r)
			addEq(func(i int) byte { return row[i] }, shards[c.k+c.l+r])
		}
		if len(eqCoeffs) < len(missingData) {
			return fmt.Errorf("erasure: LRC pattern unrecoverable: %d unknowns, %d equations", len(missingData), len(eqCoeffs))
		}
		// Solve by Gaussian elimination over the equation set.
		solved, err := solveLinear(eqCoeffs, eqRHS, len(missingData), size)
		if err != nil {
			return fmt.Errorf("erasure: LRC pattern unrecoverable: %w", err)
		}
		for j, idx := range missingData {
			shards[idx] = solved[j]
		}
	}
	// All data present: recompute missing parities.
	parity, err := c.Encode(shards[:c.k])
	if err != nil {
		return err
	}
	for i := 0; i < c.l+c.g; i++ {
		if shards[c.k+i] == nil {
			shards[c.k+i] = parity[i]
		}
	}
	return nil
}

// Verify checks a complete stripe's parity consistency.
func (c *LRC) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.N() {
		return false, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.N())
	}
	for i, s := range shards {
		if s == nil {
			return false, fmt.Errorf("erasure: shard %d is nil", i)
		}
	}
	parity, err := c.Encode(shards[:c.k])
	if err != nil {
		return false, err
	}
	for i, p := range parity {
		got := shards[c.k+i]
		for j := range p {
			if p[j] != got[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

func (c *LRC) checkData(data [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("%w: got %d, want k=%d", ErrShardCount, len(data), c.k)
	}
	size := -1
	for i, s := range data {
		if s == nil {
			return fmt.Errorf("erasure: data shard %d is nil", i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
	}
	if size == 0 {
		return errors.New("erasure: zero-length shards")
	}
	return nil
}

// solveLinear solves A·x = b over GF(256), where A is rows x unknowns and
// each b row is a byte vector of length size. Rows may exceed unknowns
// (overdetermined but consistent systems are fine).
func solveLinear(a [][]byte, b [][]byte, unknowns, size int) ([][]byte, error) {
	// Work on copies.
	rows := len(a)
	mat := make([][]byte, rows)
	rhs := make([][]byte, rows)
	for i := range a {
		mat[i] = append([]byte(nil), a[i]...)
		rhs[i] = append([]byte(nil), b[i]...)
	}
	rank := 0
	for col := 0; col < unknowns; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, gf256.ErrSingular
		}
		mat[rank], mat[pivot] = mat[pivot], mat[rank]
		rhs[rank], rhs[pivot] = rhs[pivot], rhs[rank]
		inv := gf256.Inv(mat[rank][col])
		for j := range mat[rank] {
			mat[rank][j] = gf256.Mul(mat[rank][j], inv)
		}
		gf256.MulSliceSet(inv, append([]byte(nil), rhs[rank]...), rhs[rank])
		for r := 0; r < rows; r++ {
			if r == rank || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for j := range mat[r] {
				mat[r][j] ^= gf256.Mul(f, mat[rank][j])
			}
			gf256.MulSlice(f, rhs[rank], rhs[r])
		}
		rank++
	}
	out := make([][]byte, unknowns)
	for j := 0; j < unknowns; j++ {
		// After full elimination, row j has a 1 in column j.
		out[j] = make([]byte, size)
		copy(out[j], rhs[j])
	}
	return out, nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}
