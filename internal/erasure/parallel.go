package erasure

import (
	"runtime"
	"sync"
)

// chunkParallelMin is the shard size below which single-block
// reconstruction stays serial: goroutine fan-out costs more than it saves
// on small blocks.
const chunkParallelMin = 64 << 10

// reconstructWorkers returns how many workers a reconstruction over shards
// of the given size should use: 1 (serial) for small shards or single-CPU
// hosts, else GOMAXPROCS.
func reconstructWorkers(size int) int {
	if size < chunkParallelMin {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// forEachChunk splits [0, size) into at most `workers` contiguous chunks
// (8-byte aligned, so the uint64 kernels see whole words) and runs fn on
// each concurrently. fn must write only within its [lo, hi) chunk. Because
// the chunks are disjoint and the GF arithmetic is positionwise, the result
// is byte-identical to fn(0, size): parallelism changes scheduling, never
// output. With workers <= 1 it degrades to a plain serial call.
func forEachChunk(size, workers int, fn func(lo, hi int)) {
	if size <= 0 {
		return
	}
	if workers > size {
		workers = size
	}
	if workers <= 1 {
		fn(0, size)
		return
	}
	chunk := (size + workers - 1) / workers
	chunk = (chunk + 7) &^ 7
	var wg sync.WaitGroup
	for lo := 0; lo < size; lo += chunk {
		hi := min(lo+chunk, size)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// subSlices returns views of every shard restricted to [lo, hi); the
// chunked reconstruction kernels hand these to gf256.MulAddSlices.
func subSlices(srcs [][]byte, lo, hi int) [][]byte {
	out := make([][]byte, len(srcs))
	for j, s := range srcs {
		out[j] = s[lo:hi]
	}
	return out
}
