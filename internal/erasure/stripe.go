package erasure

import "fmt"

// SplitStripes divides a byte stream into stripes of k native blocks of
// blockSize bytes each, zero-padding the tail block of the final stripe.
// It returns the native blocks grouped per stripe. The input is copied.
//
// This mirrors HDFS-RAID, which groups a file's block stream into groups of
// k blocks and encodes each group independently.
func SplitStripes(data []byte, k, blockSize int) ([][][]byte, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrInvalidParams, k)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("erasure: blockSize must be positive, got %d", blockSize)
	}
	if len(data) == 0 {
		return nil, nil
	}
	nBlocks := (len(data) + blockSize - 1) / blockSize
	nStripes := (nBlocks + k - 1) / k
	stripes := make([][][]byte, nStripes)
	off := 0
	for s := 0; s < nStripes; s++ {
		blocks := make([][]byte, k)
		for b := 0; b < k; b++ {
			blk := make([]byte, blockSize)
			if off < len(data) {
				off += copy(blk, data[off:])
			}
			blocks[b] = blk
		}
		stripes[s] = blocks
	}
	return stripes, nil
}

// JoinStripes is the inverse of SplitStripes: it concatenates the native
// blocks of all stripes and truncates to origLen bytes.
func JoinStripes(stripes [][][]byte, origLen int) ([]byte, error) {
	out := make([]byte, 0, origLen)
	for _, blocks := range stripes {
		for _, b := range blocks {
			out = append(out, b...)
		}
	}
	if origLen > len(out) {
		return nil, fmt.Errorf("erasure: origLen %d exceeds available %d bytes", origLen, len(out))
	}
	return out[:origLen], nil
}

// BlockID identifies one block within an erasure-coded file: the stripe it
// belongs to and its index within the stripe (indices [0, k) are native
// blocks, [k, n) are parity blocks).
type BlockID struct {
	Stripe int
	Index  int
}

// IsParity reports whether the block is a parity block under code c.
func (b BlockID) IsParity(k int) bool { return b.Index >= k }

// String formats as "B{stripe,index}" for native or "P{stripe,index-k}"
// notation used in the paper's figures when k is unknown; plain form here.
func (b BlockID) String() string {
	return fmt.Sprintf("blk(s%d,i%d)", b.Stripe, b.Index)
}
