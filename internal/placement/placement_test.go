package placement

import (
	"testing"
	"testing/quick"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

func cluster40() *topology.Cluster {
	return topology.MustNew(topology.Config{Nodes: 40, Racks: 4, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1})
}

func allPolicies() []Policy {
	return []Policy{RackConstrainedRandom{}, RoundRobin{}, ParityDeclustered{}}
}

func TestPoliciesSatisfyInvariants(t *testing.T) {
	for _, pol := range allPolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			c := cluster40()
			rng := stats.NewRNG(1)
			p, err := pol.Place(c, 96, 20, 15, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(c); err != nil {
				t.Fatal(err)
			}
			if _, strict := pol.(RoundRobin); !strict {
				if err := p.ValidateRackConstraint(c); err != nil {
					t.Fatal(err)
				}
			}
			if p.N() != 20 || p.K() != 15 || p.NumStripes() != 96 {
				t.Fatalf("shape wrong: n=%d k=%d stripes=%d", p.N(), p.K(), p.NumStripes())
			}
			if p.NumNativeBlocks() != 96*15 {
				t.Fatalf("native blocks = %d", p.NumNativeBlocks())
			}
			// All blocks accounted for on nodes.
			total := 0
			for _, node := range c.Nodes() {
				total += len(p.NodeBlocks(node.ID))
			}
			if total != 96*20 {
				t.Fatalf("byNode total = %d, want %d", total, 96*20)
			}
		})
	}
}

func TestPlacementLoadBalance(t *testing.T) {
	// All three policies should spread blocks roughly evenly: with
	// 96 stripes * 20 blocks over 40 nodes, mean is 48 per node.
	for _, pol := range allPolicies() {
		c := cluster40()
		p, err := pol.Place(c, 96, 20, 15, stats.NewRNG(2))
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		minB, maxB := 1<<30, 0
		for _, node := range c.Nodes() {
			n := len(p.NodeBlocks(node.ID))
			if n < minB {
				minB = n
			}
			if n > maxB {
				maxB = n
			}
		}
		if maxB-minB > 8 {
			t.Errorf("%s: imbalanced placement, min %d max %d", pol.Name(), minB, maxB)
		}
	}
}

func TestHolderAndStripeHolders(t *testing.T) {
	c := cluster40()
	p, err := RoundRobin{}.Place(c, 2, 4, 2, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	holders := p.StripeHolders(0)
	if len(holders) != 4 {
		t.Fatalf("stripe holders = %v", holders)
	}
	for i, h := range holders {
		if p.Holder(erasure.BlockID{Stripe: 0, Index: i}) != h {
			t.Fatal("Holder disagrees with StripeHolders")
		}
	}
	// Round-robin determinism with rack interleaving (racks are nodes
	// 0-9, 10-19, 20-29, 30-39): order is 0,10,20,30,1,11,...
	if holders[0] != 0 || holders[1] != 10 || holders[2] != 20 || holders[3] != 30 {
		t.Fatalf("round robin stripe 0 holders = %v", holders)
	}
	if h1 := p.StripeHolders(1); h1[0] != 1 || h1[1] != 11 {
		t.Fatalf("round robin stripe 1 holders = %v", h1)
	}
}

func TestNativeBlocksOrder(t *testing.T) {
	c := cluster40()
	p, _ := RoundRobin{}.Place(c, 3, 4, 2, stats.NewRNG(4))
	nb := p.NativeBlocks()
	if len(nb) != 6 {
		t.Fatalf("native blocks = %v", nb)
	}
	if nb[0] != (erasure.BlockID{Stripe: 0, Index: 0}) || nb[5] != (erasure.BlockID{Stripe: 2, Index: 1}) {
		t.Fatalf("native block order wrong: %v", nb)
	}
}

func TestLostNativeBlocksAndSurvivors(t *testing.T) {
	c := cluster40()
	p, err := ParityDeclustered{}.Place(c, 24, 8, 6, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LostNativeBlocks(c); len(got) != 0 {
		t.Fatalf("no failure but %d lost blocks", len(got))
	}
	c.FailNode(0)
	lost := p.LostNativeBlocks(c)
	want := 0
	for _, b := range p.NodeBlocks(0) {
		if b.Index < 6 {
			want++
		}
	}
	if len(lost) != want {
		t.Fatalf("lost native = %d, want %d", len(lost), want)
	}
	for _, b := range lost {
		if p.Holder(b) != 0 {
			t.Fatal("lost block not held by failed node")
		}
	}
	idx, holders := p.SurvivorsOf(c, lost[0].Stripe)
	if len(idx) < 6 {
		t.Fatalf("only %d survivors for stripe %d", len(idx), lost[0].Stripe)
	}
	for i := range idx {
		if !c.Alive(holders[i]) {
			t.Fatal("survivor on failed node")
		}
		if idx[i] == lost[0].Index {
			t.Fatal("lost block listed as survivor")
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 8, Racks: 2, MapSlotsPerNode: 1})
	p := newPlacement(4, 2, 1)
	// Unassigned block.
	if err := p.Validate(c); err == nil {
		t.Fatal("unassigned block must fail validation")
	}
	// Duplicate node.
	p.assign(0, 0, 0)
	p.assign(0, 1, 0)
	p.assign(0, 2, 1)
	p.assign(0, 3, 2)
	if err := p.Validate(c); err == nil {
		t.Fatal("duplicate node must fail validation")
	}
	// Rack over-concentration: nodes 0..3 are rack 0; n-k=2 allowed.
	p2 := newPlacement(4, 2, 1)
	p2.assign(0, 0, 0)
	p2.assign(0, 1, 1)
	p2.assign(0, 2, 2)
	p2.assign(0, 3, 4)
	if err := p2.Validate(c); err != nil {
		t.Fatalf("basic validation should pass: %v", err)
	}
	if err := p2.ValidateRackConstraint(c); err == nil {
		t.Fatal("3 blocks in one rack with n-k=2 must fail strict validation")
	}
}

func TestPlaceParamValidation(t *testing.T) {
	c := cluster40()
	rng := stats.NewRNG(6)
	for _, pol := range allPolicies() {
		if _, err := pol.Place(c, 1, 2, 2, rng); err == nil {
			t.Errorf("%s: n<=k must fail", pol.Name())
		}
		if _, err := pol.Place(c, -1, 4, 2, rng); err == nil {
			t.Errorf("%s: negative stripes must fail", pol.Name())
		}
		if _, err := pol.Place(c, 1, 60, 40, rng); err == nil {
			t.Errorf("%s: n > alive nodes must fail", pol.Name())
		}
	}
}

func TestPlaceOnSmallestViableCluster(t *testing.T) {
	// The motivating example: 5 nodes, racks of 3+2, (4,2) code.
	c := topology.MustNew(topology.Config{Nodes: 5, Racks: 2, MapSlotsPerNode: 2, RackSizes: []int{3, 2}})
	for _, pol := range allPolicies() {
		p, err := pol.Place(c, 6, 4, 2, stats.NewRNG(7))
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := p.Validate(c); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if _, rr := pol.(RoundRobin); !rr {
			if err := p.ValidateRackConstraint(c); err != nil {
				t.Fatalf("%s: %v", pol.Name(), err)
			}
		}
	}
}

func TestPlaceSkipsFailedNodes(t *testing.T) {
	c := cluster40()
	c.FailNode(3)
	for _, pol := range allPolicies() {
		p, err := pol.Place(c, 10, 8, 6, stats.NewRNG(8))
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if got := p.NodeBlocks(3); len(got) != 0 {
			t.Errorf("%s: placed %d blocks on failed node", pol.Name(), len(got))
		}
	}
}

func TestPlacementInvariantProperty(t *testing.T) {
	// Property: for random cluster shapes and codes, every policy result
	// validates.
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		racks := 2 + rng.Intn(4)
		nodesPerRack := 3 + rng.Intn(6)
		c := topology.MustNew(topology.Config{
			Nodes: racks * nodesPerRack, Racks: racks, MapSlotsPerNode: 2,
		})
		codes := [][2]int{{4, 2}, {6, 4}, {8, 6}, {9, 6}}
		nk := codes[rng.Intn(len(codes))]
		n, k := nk[0], nk[1]
		if n > c.NumNodes() {
			return true
		}
		// The rack constraint needs ceil(n / (n-k)) racks available.
		needRacks := (n + (n - k) - 1) / (n - k)
		if needRacks > racks {
			return true
		}
		for _, pol := range allPolicies() {
			p, err := pol.Place(c, 1+rng.Intn(30), n, k, rng)
			if err != nil {
				return false
			}
			if err := p.Validate(c); err != nil {
				return false
			}
			if _, rr := pol.(RoundRobin); !rr {
				if err := p.ValidateRackConstraint(c); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExplicitPlacement(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
	e := Explicit{Assignments: [][]topology.NodeID{
		{0, 2, 1, 3},
		{1, 3, 0, 2},
	}}
	if e.Name() != "explicit" {
		t.Fatal("name wrong")
	}
	p, err := e.Place(c, 2, 4, 2, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Holder(erasure.BlockID{Stripe: 0, Index: 1}) != 2 ||
		p.Holder(erasure.BlockID{Stripe: 1, Index: 3}) != 2 {
		t.Fatal("explicit holders wrong")
	}
	if err := p.ValidateRackConstraint(c); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitPlacementErrors(t *testing.T) {
	c := topology.MustNew(topology.Config{Nodes: 4, Racks: 2, MapSlotsPerNode: 1})
	rng := stats.NewRNG(2)
	cases := []struct {
		name string
		e    Explicit
		n, k int
		st   int
	}{
		{"bad nk", Explicit{Assignments: [][]topology.NodeID{{0, 1}}}, 2, 2, 1},
		{"stripe count mismatch", Explicit{Assignments: [][]topology.NodeID{{0, 1, 2, 3}}}, 4, 2, 2},
		{"block count mismatch", Explicit{Assignments: [][]topology.NodeID{{0, 1, 2}}}, 4, 2, 1},
		{"invalid node", Explicit{Assignments: [][]topology.NodeID{{0, 1, 2, 9}}}, 4, 2, 1},
		{"duplicate node", Explicit{Assignments: [][]topology.NodeID{{0, 1, 2, 2}}}, 4, 2, 1},
	}
	for _, tc := range cases {
		if _, err := tc.e.Place(c, tc.st, tc.n, tc.k, rng); err == nil {
			t.Errorf("%s: should fail", tc.name)
		}
	}
}

func TestReassign(t *testing.T) {
	c := cluster40()
	p, err := RoundRobin{}.Place(c, 4, 6, 4, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	b := erasure.BlockID{Stripe: 2, Index: 1}
	from := p.Holder(b)
	// Pick a destination not holding any block of stripe 2.
	var to topology.NodeID = -1
	holders := make(map[topology.NodeID]bool)
	for _, h := range p.StripeHolders(2) {
		holders[h] = true
	}
	for _, node := range c.Nodes() {
		if !holders[node.ID] {
			to = node.ID
			break
		}
	}
	if to < 0 {
		t.Fatal("no free destination")
	}
	before := len(p.NodeBlocks(from))
	p.Reassign(b, to)
	if p.Holder(b) != to {
		t.Fatalf("Holder = %d, want %d", p.Holder(b), to)
	}
	if got := len(p.NodeBlocks(from)); got != before-1 {
		t.Fatalf("source inventory %d, want %d", got, before-1)
	}
	found := false
	for _, x := range p.NodeBlocks(to) {
		if x == b {
			found = true
		}
	}
	if !found {
		t.Fatal("block missing from destination inventory")
	}
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Self-reassign is a no-op.
	p.Reassign(b, to)
	if p.Holder(b) != to || len(p.NodeBlocks(to)) == 0 {
		t.Fatal("self-reassign corrupted state")
	}
}
